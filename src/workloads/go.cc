/**
 * @file
 * 099.go stand-in: control-heavy board scanning. Loads hit a 32KB
 * board (L1/L2), and a data-dependent ~50/50 branch per step keeps
 * the predictor honest; branches whose compare waits on an L2-hit
 * load resolve in the B-pipe, the paper's deeper-DET cost.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildGo(const KernelParams &p)
{
    constexpr Addr kBoardBase = 0x0A00'0000;
    constexpr std::int64_t kCells = 4096; // 8 B each = 32 KB
    const std::int64_t iters = scaledIters(12000, p.scale);

    isa::ProgramBuilder b("099.go");

    b.movi(R(8), static_cast<std::int64_t>(kBoardBase));
    b.movi(R(3), 0x676F676FLL);
    b.movi(R(5), iters);
    b.movi(R(31), 0);

    b.label("loop");
    rngStep(b, R(3));
    randomIndex(b, R(4), R(2), R(3), kCells - 1, 33, 15);
    b.shli(R(4), R(4), 3);
    b.add(R(10), R(8), R(4));
    b.ld8(R(6), R(10), 0);
    // Scan-direction decision on the (computable) walk state: the
    // compare never waits on memory, so its frequent mispredictions
    // are caught early, at A-DET.
    b.shri(R(7), R(3), 59);
    b.andi(R(7), R(7), 1);
    b.cmpi(isa::CmpCond::kEq, P(5), P(6), R(7), 1);
    b.br("stone");
    b.pred(P(5));
    // Empty point: territory accounting.
    b.add(R(31), R(31), R(6));
    b.shri(R(12), R(6), 3);
    b.xor_(R(31), R(31), R(12));
    b.add(R(14), R(12), R(6));
    b.andi(R(15), R(14), 0x1ff);
    b.add(R(31), R(31), R(15));
    b.br("join");
    b.label("stone");
    // Stone: liberty hash and a board update.
    b.xor_(R(31), R(31), R(6));
    b.addi(R(13), R(6), 7);
    b.st8(R(10), 0, R(13));
    b.label("join");
    loopBack(b, R(5), P(1), P(2), "loop");
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x099ULL ^ p.seedSalt);
    for (std::int64_t c = 0; c < kCells; ++c) {
        prog.poke64(kBoardBase + static_cast<Addr>(c) * 8,
                    rng.nextBelow(1 << 12));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
