/**
 * @file
 * 300.twolf stand-in. The paper notes twolf's memory-stall win is
 * "offset by an increase in additional cycles stalled in the front
 * end... due to the effective lengthening of the pipeline observed by
 * branch mispredictions resolved in the B-pipe". This kernel compares
 * two random cells of a 128KB array (L2-hit loads the compiler's
 * schedule does not cover) and branches on the outcome — so the
 * branch's compare usually waits on in-flight loads, deferring
 * mispredict detection to B-DET — then conditionally swaps the cells.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildTwolf(const KernelParams &p)
{
    constexpr Addr kCellBase = 0x0E00'0000;
    constexpr std::int64_t kCells = 4096; // 8 B each = 32 KB
    const std::int64_t iters = scaledIters(10000, p.scale);

    isa::ProgramBuilder b("300.twolf");

    b.movi(R(8), static_cast<std::int64_t>(kCellBase));
    b.movi(R(3), 0x74776F6CLL);
    b.movi(R(5), iters);
    b.movi(R(31), 0);

    b.label("loop");
    rngStep(b, R(3));
    randomIndex(b, R(4), R(2), R(3), kCells - 1, 31, 13);
    b.shli(R(4), R(4), 3);
    b.add(R(10), R(8), R(4));
    randomIndex(b, R(6), R(7), R(3), kCells - 1, 9, 25);
    b.shli(R(6), R(6), 3);
    b.add(R(11), R(8), R(6));
    b.ld8(R(12), R(10), 0); // cell cost 1
    b.ld8(R(13), R(11), 0); // cell cost 2
    // The swap decision depends on both loads: essentially random,
    // and the compare rarely has its operands by dispatch time.
    b.cmp(isa::CmpCond::kLt, P(5), P(6), R(12), R(13));
    b.br("swap");
    b.pred(P(5));
    b.add(R(31), R(31), R(12));
    b.br("join");
    b.label("swap");
    b.st8(R(10), 0, R(13));
    b.st8(R(11), 0, R(12));
    b.xor_(R(31), R(31), R(13));
    b.label("join");
    loopBack(b, R(5), P(1), P(2), "loop");
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x300ULL ^ p.seedSalt);
    for (std::int64_t c = 0; c < kCells; ++c) {
        prog.poke64(kCellBase + static_cast<Addr>(c) * 8,
                    rng.nextBelow(1 << 30));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
