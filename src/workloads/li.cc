/**
 * @file
 * 130.li stand-in. The lisp interpreter's working set is small: cons
 * cells fit the L1 with occasional excursions into a larger
 * environment. The kernel chases an 8KB cell list (L1-resident after
 * warmup) and touches a 64KB environment table per step, so most
 * misses are the short L1-to-L2 kind the two-pass design absorbs.
 */

#include "workloads/kernels.hh"

#include <numeric>
#include <vector>

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildLi(const KernelParams &p)
{
    constexpr Addr kCellBase = 0x0900'0000;
    constexpr std::int64_t kNumCells = 512; // 16 B each = 8 KB
    constexpr Addr kEnvBase = 0x0980'0000;
    constexpr std::int64_t kEnvEntries = 1024; // 8 KB
    const std::int64_t iters = scaledIters(10000, p.scale);

    isa::ProgramBuilder b("130.li");

    b.movi(R(1), static_cast<std::int64_t>(kCellBase));
    b.movi(R(8), static_cast<std::int64_t>(kEnvBase));
    b.movi(R(3), 0x6C697370LL); // "lisp"
    b.movi(R(5), iters);
    b.movi(R(15), 0); // sweep cursor
    b.movi(R(31), 0);

    b.label("loop");
    // GC-sweep-style walk: the cell address is computable, so the
    // A-pipe initiates these (L1-resident) loads itself.
    b.addi(R(15), R(15), 16);
    b.andi(R(16), R(15), (kNumCells - 1) * 16);
    b.add(R(17), R(1), R(16));
    b.ld8(R(2), R(17), 8); // car
    b.add(R(31), R(31), R(2));
    // Environment lookup with a computable index.
    rngStep(b, R(3));
    randomIndex(b, R(4), R(7), R(3), kEnvEntries - 1, 27, 17);
    b.shli(R(4), R(4), 3);
    b.add(R(9), R(8), R(4));
    b.ld8(R(10), R(9), 0);
    b.xor_(R(31), R(31), R(10));
    // Eval work on the fetched atom.
    b.add(R(11), R(10), R(2));
    b.shri(R(12), R(11), 4);
    b.xor_(R(13), R(11), R(12));
    b.andi(R(14), R(13), 0x3ff);
    b.add(R(31), R(31), R(14));
    // One binding chase per step: the only B-pipe load here.
    b.andi(R(18), R(2), (kNumCells - 1) * 16);
    b.add(R(19), R(1), R(18));
    b.ld8(R(20), R(19), 0);
    b.xor_(R(31), R(31), R(20));
    loopBack(b, R(5), P(1), P(2), "loop");
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();

    Rng rng(0x130ULL ^ p.seedSalt);
    std::vector<std::uint32_t> order(kNumCells);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size() - 1; i > 0; --i)
        std::swap(order[i], order[rng.nextBelow(i)]);
    for (std::int64_t k = 0; k < kNumCells; ++k) {
        const Addr rec =
            kCellBase + static_cast<Addr>(order[k]) * 16;
        prog.poke64(rec + 0,
                    kCellBase +
                        static_cast<Addr>(order[(k + 1) % kNumCells]) *
                            16);
        prog.poke64(rec + 8, rng.nextBelow(4096));
    }
    for (std::int64_t e = 0; e < kEnvEntries; ++e) {
        prog.poke64(kEnvBase + static_cast<Addr>(e) * 8,
                    rng.nextBelow(1 << 16));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
