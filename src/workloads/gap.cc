/**
 * @file
 * 254.gap stand-in. The paper observes that gap "executes most of its
 * substantial number of main memory accesses in the B-pipe, and thus
 * displays only a small performance improvement": its misses sit in
 * serial dependence chains the A-pipe cannot run past. This kernel is
 * a strict pointer chase over a 4MB workspace — each address depends
 * on the previous load — so consumers (including the next chase step)
 * defer and the chain serializes through the B-pipe.
 */

#include "workloads/kernels.hh"

#include <numeric>
#include <vector>

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildGap(const KernelParams &p)
{
    constexpr Addr kNodeBase = 0x2000'0000;
    constexpr std::int64_t kNumNodes = 65536; // 64 B each = 4 MB
    const std::int64_t iters = scaledIters(4000, p.scale);

    isa::ProgramBuilder b("254.gap");

    // r1: current node pointer; r5: counter; r31: checksum.
    constexpr Addr kCountBase = 0x2800'0000;
    constexpr std::int64_t kCountEntries = 512; // 4 KB, L1-resident

    b.movi(R(1), static_cast<std::int64_t>(kNodeBase));
    b.movi(R(5), iters);
    b.movi(R(31), 0);
    b.movi(R(8), static_cast<std::int64_t>(kCountBase));
    b.movi(R(10), 0);

    b.label("loop");
    b.ld8(R(2), R(1), 8); // payload (same line as the link)
    b.add(R(31), R(31), R(2));
    b.xori(R(31), R(31), 0x5a);
    // A little independent group-order bookkeeping: an L1-resident
    // counter table walked by the induction variable. This is all
    // the A-pipe can overlap with the serial chase.
    b.addi(R(10), R(10), 1);
    b.andi(R(11), R(10), kCountEntries - 1);
    b.shli(R(11), R(11), 3);
    b.add(R(12), R(8), R(11));
    b.ld8(R(13), R(12), 0);
    b.addi(R(13), R(13), 1);
    b.st8(R(12), 0, R(13));
    b.ld8(R(1), R(1), 0); // serial chase: the next address IS the load
    loopBack(b, R(5), P(1), P(2), "loop");
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();

    // A single random cycle through all nodes (Sattolo's algorithm)
    // guarantees the chase never revisits early nodes.
    Rng rng(0x254ULL ^ p.seedSalt);
    std::vector<std::uint32_t> order(kNumNodes);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size() - 1; i > 0; --i) {
        const std::size_t j = rng.nextBelow(i); // Sattolo: j < i
        std::swap(order[i], order[j]);
    }
    for (std::int64_t k = 0; k < kNumNodes; ++k) {
        const std::uint32_t cur = order[k];
        const std::uint32_t nxt = order[(k + 1) % kNumNodes];
        const Addr rec = kNodeBase + static_cast<Addr>(cur) * 64;
        prog.poke64(rec + 0, kNodeBase + static_cast<Addr>(nxt) * 64);
        prog.poke64(rec + 8, rng.nextBelow(100000));
    }
    // Every node lies on the single cycle, so starting the chase at
    // node 0 (kNodeBase) is always valid.
    return prog;
}

} // namespace workloads
} // namespace ff
