/**
 * @file
 * 255.vortex stand-in: an object store. Random 64-byte objects from a
 * 2MB heap are read (three fields), combined, and conditionally
 * updated — mixed L2/L3/memory locality with predicated stores.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildVortex(const KernelParams &p)
{
    constexpr Addr kObjBase = 0x0D00'0000;
    constexpr std::int64_t kObjects = 8192; // 64 B each = 512 KB
    const std::int64_t iters = scaledIters(10000, p.scale);

    isa::ProgramBuilder b("255.vortex");

    b.movi(R(8), static_cast<std::int64_t>(kObjBase));
    b.movi(R(3), 0x766F7274LL);
    b.movi(R(5), iters);
    b.movi(R(31), 0);
    b.movi(R(20), 1);
    b.movi(R(21), 0);

    b.label("loop");
    rngStep(b, R(3));
    randomIndex(b, R(4), R(2), R(3), kObjects - 1, 32, 12);
    // Most lookups touch the young generation (64 KB).
    b.shri(R(24), R(3), 49);
    b.andi(R(24), R(24), 15);
    b.cmpi(isa::CmpCond::kNe, P(3), P(4), R(24), 0);
    b.andi(R(25), R(4), 1023);
    b.mov(R(4), R(25));
    b.pred(P(3));
    b.shli(R(4), R(4), 6);
    b.add(R(10), R(8), R(4));
    b.ld8(R(6), R(10), 0);
    b.ld8(R(7), R(10), 8);
    b.ld8(R(11), R(10), 16);
    b.add(R(12), R(6), R(7));
    b.xor_(R(31), R(31), R(11));
    // Object-method work on the fetched members.
    b.shri(R(14), R(12), 3);
    b.xor_(R(15), R(12), R(14));
    b.add(R(16), R(15), R(11));
    b.shli(R(17), R(16), 2);
    b.xor_(R(18), R(16), R(17));
    b.andi(R(19), R(18), 0x7fff);
    b.add(R(31), R(31), R(19));
    // Transaction bookkeeping independent of the object fetch.
    b.addi(R(20), R(20), 5);
    b.xor_(R(21), R(21), R(20));
    b.shri(R(22), R(21), 7);
    b.add(R(23), R(22), R(20));
    b.andi(R(13), R(12), 1);
    b.cmpi(isa::CmpCond::kEq, P(5), P(6), R(13), 1);
    b.st8(R(10), 24, R(12));
    b.pred(P(5)); // conditional member update
    b.add(R(31), R(31), R(12));
    loopBack(b, R(5), P(1), P(2), "loop");
    b.add(R(31), R(31), R(23));
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x255ULL ^ p.seedSalt);
    for (std::int64_t o = 0; o < kObjects; ++o) {
        const Addr rec = kObjBase + static_cast<Addr>(o) * 64;
        prog.poke64(rec + 0, rng.nextBelow(1 << 16));
        prog.poke64(rec + 8, rng.nextBelow(1 << 16));
        prog.poke64(rec + 16, rng.nextBelow(1 << 24));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
