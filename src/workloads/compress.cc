/**
 * @file
 * 129.compress stand-in. The paper attributes compress's two-pass
 * gain to "the absorption of latencies from short but ubiquitous
 * misses": its hash-table probes mostly miss the small L1 and hit
 * the L2 (a 5-cycle latency the compiler's hit-latency schedule does
 * not cover). This kernel interleaves dictionary probes into a 128KB
 * table (L2 hits) with prefix-table probes into an L1-resident 8KB
 * table, plus the bit-twiddling of the coder itself.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildCompress(const KernelParams &p)
{
    constexpr Addr kTableBase = 0x3000'0000;
    constexpr std::int64_t kTableEntries = 16384; // 8 B each = 128 KB
    constexpr Addr kPrefixBase = 0x3800'0000;
    constexpr std::int64_t kPrefixEntries = 1024; // 8 KB, L1-resident
    const std::int64_t iters = scaledIters(12000, p.scale);

    isa::ProgramBuilder b("129.compress");

    b.movi(R(3), 0x636F6D70LL); // input state
    b.movi(R(5), iters);
    b.movi(R(8), static_cast<std::int64_t>(kTableBase));
    b.movi(R(9), static_cast<std::int64_t>(kPrefixBase));
    b.movi(R(31), 0);
    b.movi(R(20), 0); // output bit buffer

    b.label("loop");
    rngStep(b, R(3));
    // Hash the "symbol" into a dictionary slot (L2-dwelling table).
    randomIndex(b, R(4), R(2), R(3), kTableEntries - 1, 29, 11);
    // Half the symbols are recent (an L1-hot prefix of the table).
    b.shri(R(22), R(3), 51);
    b.andi(R(22), R(22), 3);
    b.cmpi(isa::CmpCond::kNe, P(5), P(6), R(22), 0);
    b.andi(R(23), R(4), 1023);
    b.mov(R(4), R(23));
    b.pred(P(5));
    b.shli(R(4), R(4), 3);
    b.add(R(10), R(8), R(4));
    b.ld8(R(11), R(10), 0); // probe: the short, ubiquitous miss
    // Prefix-table probe (stays in the L1).
    b.andi(R(12), R(3), kPrefixEntries - 1);
    b.shli(R(12), R(12), 3);
    b.add(R(13), R(9), R(12));
    b.ld8(R(14), R(13), 0);
    // Coder arithmetic: mixes both loads into the running output.
    b.add(R(15), R(11), R(14));
    b.shri(R(16), R(15), 7);
    b.xor_(R(15), R(15), R(16));
    b.shli(R(17), R(15), 9);
    b.xor_(R(18), R(15), R(17));
    b.add(R(20), R(20), R(18));
    b.shri(R(21), R(20), 13);
    b.xor_(R(20), R(20), R(21));
    b.add(R(31), R(31), R(11));
    // Dictionary update (read-modify-write).
    b.add(R(19), R(11), R(3));
    b.st8(R(10), 0, R(19));
    loopBack(b, R(5), P(1), P(2), "loop");
    b.add(R(31), R(31), R(20));
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x129ULL ^ p.seedSalt);
    for (std::int64_t e = 0; e < kTableEntries; ++e) {
        prog.poke64(kTableBase + static_cast<Addr>(e) * 8,
                    rng.nextBelow(1 << 20));
    }
    for (std::int64_t e = 0; e < kPrefixEntries; ++e) {
        prog.poke64(kPrefixBase + static_cast<Addr>(e) * 8,
                    rng.nextBelow(1 << 10));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
