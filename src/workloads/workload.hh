/**
 * @file
 * The workload registry: names, inputs and scheduled programs for the
 * Table 2 stand-in suite.
 */

#ifndef FF_WORKLOADS_WORKLOAD_HH
#define FF_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "compiler/scheduler.hh"
#include "isa/program.hh"

namespace ff
{
namespace workloads
{

/**
 * Which input set to build (Table 2's inputs column). kDefault is
 * the paper's listed input for that benchmark (SPEC Train / SPEC
 * Test / UMN reduced); kAlternate is a distinct input of the same
 * character (different seeds, ~30% longer) for cross-validation.
 */
enum class InputSet
{
    kDefault,
    kAlternate,
};

const char *inputSetName(InputSet in);

/** One benchmark of the suite, ready to simulate. */
struct Workload
{
    std::string name;      ///< e.g. "181.mcf"
    std::string input;     ///< description of the synthetic input
    isa::Program program;  ///< scheduled (issue-grouped) program
};

/** Names of the ten Table 2 stand-ins, in the paper's order. */
const std::vector<std::string> &workloadNames();

/**
 * Builds one workload by name.
 * @param scale percentage of default iterations (100 = bench size)
 * @param cfg   scheduler configuration (machine widths, latencies)
 * @param input which input set (default: the paper's Table 2 input)
 */
Workload buildWorkload(const std::string &name, int scale = 100,
                       const compiler::SchedulerConfig &cfg =
                           compiler::SchedulerConfig(),
                       InputSet input = InputSet::kDefault);

/** Builds the full suite. */
std::vector<Workload> buildAllWorkloads(
    int scale = 100,
    const compiler::SchedulerConfig &cfg = compiler::SchedulerConfig(),
    InputSet input = InputSet::kDefault);

} // namespace workloads
} // namespace ff

#endif // FF_WORKLOADS_WORKLOAD_HH
