/**
 * @file
 * The ten synthetic kernels standing in for the paper's Table 2
 * benchmarks. Each builder returns a *sequential* program (one
 * instruction per issue group); the workload registry schedules it
 * into wide EPIC groups with the compiler's list scheduler.
 *
 * The kernels are real programs with fixed-seed inputs: every CPU
 * model must produce the same checksum (stored to kChecksumAddr
 * before HALT). Their memory and branch behaviour targets each
 * benchmark's published character — see DESIGN.md Section 5.
 *
 * @param scale percentage of the default iteration count (100 = the
 *        bench-sized run; tests typically pass 3-10). Data footprints
 *        do not scale, so cache-level behaviour is preserved.
 */

#ifndef FF_WORKLOADS_KERNELS_HH
#define FF_WORKLOADS_KERNELS_HH

#include "isa/builder.hh"
#include "isa/program.hh"

namespace ff
{
namespace workloads
{

/** Where every kernel stores its final checksum before halting. */
inline constexpr Addr kChecksumAddr = 0x100;

/**
 * Kernel build parameters. @c scale is a percentage of the default
 * iteration count (100 = bench-sized); @c seedSalt perturbs the data
 * seeds, producing an alternate input set of the same character
 * (Table 2's inputs column).
 */
struct KernelParams
{
    int scale = 100;
    std::uint64_t seedSalt = 0;
};

/** Shorthand register constructors for kernel code. */
inline isa::RegId R(unsigned i) { return isa::intReg(i); }
inline isa::RegId F(unsigned i) { return isa::fpReg(i); }
inline isa::RegId P(unsigned i) { return isa::predReg(i); }

/** Scales a default iteration count by @p scale percent (min 8). */
inline std::int64_t
scaledIters(std::int64_t base, int scale)
{
    const std::int64_t v = base * scale / 100;
    return v < 8 ? 8 : v;
}

/** Emits: counter -= 1; if (counter > 0) goto label. */
void loopBack(isa::ProgramBuilder &b, isa::RegId counter,
              isa::RegId pt, isa::RegId pf, const std::string &label);

/** Emits: [kChecksumAddr] = checksum; halt. Clobbers @p scratch. */
void storeChecksumAndHalt(isa::ProgramBuilder &b, isa::RegId checksum,
                          isa::RegId scratch);

/**
 * Emits the 1-cycle Weyl recurrence state += 0x9E3779B97F4A7C15 used
 * by kernels needing a computable (non-memory-dependent) random
 * access stream — the property that lets the A-pipe run ahead and
 * overlap misses. The recurrence deliberately uses only single-cycle
 * ALU ops: like real address arithmetic, it never makes the A-pipe
 * defer for in-flight multi-cycle producers.
 */
void rngStep(isa::ProgramBuilder &b, isa::RegId state);

/**
 * Derives a pseudo-random index in [0, mask] from @p state with an
 * xorshift fold (golden-ratio Weyl steps disperse well under it).
 * All single-cycle ops; clobbers @p tmp.
 */
void randomIndex(isa::ProgramBuilder &b, isa::RegId dst,
                 isa::RegId tmp, isa::RegId state, std::int64_t mask,
                 unsigned shift1 = 31, unsigned shift2 = 13);

// --- kernel builders (sequential programs; see workload.cc) ---------
isa::Program buildGo(const KernelParams &p);       ///< 099.go
isa::Program buildCompress(const KernelParams &p); ///< 129.compress
isa::Program buildLi(const KernelParams &p);       ///< 130.li
isa::Program buildVpr(const KernelParams &p);      ///< 175.vpr
isa::Program buildMcf(const KernelParams &p);      ///< 181.mcf
isa::Program buildEquake(const KernelParams &p);   ///< 183.equake
isa::Program buildParser(const KernelParams &p);   ///< 197.parser
isa::Program buildGap(const KernelParams &p);      ///< 254.gap
isa::Program buildVortex(const KernelParams &p);   ///< 255.vortex
isa::Program buildTwolf(const KernelParams &p);    ///< 300.twolf

} // namespace workloads
} // namespace ff

#endif // FF_WORKLOADS_KERNELS_HH
