/**
 * @file
 * 183.equake stand-in. The paper highlights equake for "the
 * significant portion of the L3 cache misses started in the A-pipe"
 * — when locality is poor, overlapping long accesses dominates. This
 * kernel is a sparse matrix-vector product: val[]/col[] stream from
 * memory (compulsory misses), x[] gathers randomly from a 256KB
 * vector (L2/L3), and four rotating FP accumulators keep the
 * loop-carried FADD chain off the critical path.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildEquake(const KernelParams &p)
{
    constexpr Addr kValBase = 0x5000'0000; // doubles, streamed
    constexpr Addr kColBase = 0x6000'0000; // int64 indices, streamed
    constexpr Addr kVecBase = 0x7000'0000; // x[] gather vector
    constexpr std::int64_t kNnz = 24576;        // val+col = 384 KB
    constexpr std::int64_t kVecEntries = 32768; // 256 KB
    const std::int64_t iters = scaledIters(kNnz / 4, p.scale);

    isa::ProgramBuilder b("183.equake");

    b.movi(R(10), static_cast<std::int64_t>(kValBase));
    b.movi(R(11), static_cast<std::int64_t>(kColBase));
    b.movi(R(12), static_cast<std::int64_t>(kVecBase));
    b.movi(R(5), iters);

    // Four partial sums so the reduction does not serialize on the
    // 4-cycle FADD.
    for (unsigned acc = 1; acc <= 4; ++acc)
        b.itof(F(acc), R(0));

    b.label("loop");
    for (unsigned u = 0; u < 4; ++u) {
        const std::int64_t off = static_cast<std::int64_t>(u) * 8;
        b.ld8(R(20 + u), R(11), off);        // col[i+u]  (stream)
        b.ld8(F(10 + u), R(10), off);        // val[i+u]  (stream)
        b.shli(R(24 + u), R(20 + u), 3);
        b.add(R(28 + u), R(12), R(24 + u));
        b.ld8(F(20 + u), R(28 + u), 0);      // x[col[i+u]] (gather)
        b.fmul(F(30 + u), F(10 + u), F(20 + u));
        b.fadd(F(40 + u), F(30 + u), F(10 + u));
        b.fmul(F(44 + u), F(40 + u), F(20 + u));
        b.fadd(F(1 + u), F(1 + u), F(44 + u));
    }
    b.addi(R(10), R(10), 32);
    b.addi(R(11), R(11), 32);
    loopBack(b, R(5), P(1), P(2), "loop");

    // Combine the partial sums and derive an integer checksum.
    b.fadd(F(1), F(1), F(2));
    b.fadd(F(3), F(3), F(4));
    b.fadd(F(1), F(1), F(3));
    b.ftoi(R(31), F(1));
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x183ULL ^ p.seedSalt);
    for (std::int64_t i = 0; i < kNnz; ++i) {
        prog.pokeDouble(kValBase + static_cast<Addr>(i) * 8,
                        rng.nextDouble() * 4.0 - 2.0);
        prog.poke64(kColBase + static_cast<Addr>(i) * 8,
                    rng.nextBelow(kVecEntries));
    }
    for (std::int64_t i = 0; i < kVecEntries; ++i) {
        prog.pokeDouble(kVecBase + static_cast<Addr>(i) * 8,
                        rng.nextDouble() * 8.0);
    }
    return prog;
}

} // namespace workloads
} // namespace ff
