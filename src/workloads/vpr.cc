/**
 * @file
 * 175.vpr stand-in — the paper's one net *loss*. vpr defers "98% of
 * its long-latency floating point instructions, in chains, to the
 * B-pipe because the A-pipe does not stall for them to complete",
 * and additionally suffers store-conflict flushes. This kernel's
 * placement-cost loop carries a 16-cycle FDIV chain the scheduler
 * cannot cover, and each iteration stores a chain-dependent value
 * that the *next* iteration immediately loads — so the store is
 * usually deferred while the load pre-executes, tripping the ALAT.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildVpr(const KernelParams &p)
{
    constexpr Addr kABase = 0x0B00'0000; // a[] doubles
    constexpr Addr kBBase = 0x0B80'0000; // b[] doubles
    constexpr std::int64_t kEntries = 512; // 4 KB each (L1-resident)
    const std::int64_t iters = scaledIters(6000, p.scale);

    isa::ProgramBuilder b("175.vpr");

    b.movi(R(10), static_cast<std::int64_t>(kABase));
    b.movi(R(11), static_cast<std::int64_t>(kBBase));
    b.movi(R(5), iters);
    b.movi(R(7), kEntries * 8 - 72); // wrap bound for the walk
    b.itof(F(1), R(0));
    b.itof(F(6), R(0));
    b.itof(F(4), R(0));

    b.label("loop");
    b.ld8(F(2), R(10), 0); // a[i]
    b.ld8(F(3), R(11), 0); // b[i]
    // The cost recurrence is loop-carried THROUGH the divide: the
    // next fdiv consumes the previous one, so once the first divide
    // is in flight every FP successor defers, "in chains", exactly
    // the pathology the paper reports for vpr.
    b.fadd(F(7), F(4), F(2));
    b.fdiv(F(4), F(7), F(3));       // 16-cycle anticipable latency
    b.fadd(F(1), F(1), F(4));       // cost accumulation
    b.fmul(F(5), F(4), F(2));
    b.fadd(F(6), F(6), F(5));
    // The placement update writes a chain-dependent value a few
    // elements ahead; mostly far enough that the A-pipe's lead has
    // passed, but one update in eight lands close enough that a
    // pre-executed load raced the still-deferred store: a
    // store-conflict flush (Sec. 3.4).
    b.andi(R(16), R(5), 7);
    b.cmpi(isa::CmpCond::kEq, P(7), P(8), R(16), 0);
    b.st8(R(11), 24, F(4));
    b.pred(P(7));
    b.st8(R(11), 64, F(4));
    b.pred(P(8));
    // Walk both arrays, wrapping within the footprint.
    b.addi(R(10), R(10), 8);
    b.addi(R(11), R(11), 8);
    b.subi(R(12), R(10), static_cast<std::int64_t>(kABase));
    b.cmp(isa::CmpCond::kGt, P(3), P(4), R(12), R(7));
    b.movi(R(13), static_cast<std::int64_t>(kABase));
    b.mov(R(10), R(13));
    b.pred(P(3));
    b.movi(R(14), static_cast<std::int64_t>(kBBase));
    b.mov(R(11), R(14));
    b.pred(P(3));
    loopBack(b, R(5), P(1), P(2), "loop");

    b.fadd(F(1), F(1), F(6));
    b.ftoi(R(31), F(1));
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x175ULL ^ p.seedSalt);
    for (std::int64_t i = 0; i < kEntries; ++i) {
        prog.pokeDouble(kABase + static_cast<Addr>(i) * 8,
                        1.0 + rng.nextDouble() * 3.0);
        prog.pokeDouble(kBBase + static_cast<Addr>(i) * 8,
                        0.5 + rng.nextDouble() * 2.0);
    }
    return prog;
}

} // namespace workloads
} // namespace ff
