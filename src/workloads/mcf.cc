/**
 * @file
 * 181.mcf stand-in: the paper's headline benchmark. The real mcf
 * walks a huge arc array with poor locality; the dominant events are
 * L2/L3/memory misses whose consumers sit right behind them in the
 * schedule. Here a computable index stream visits 64-byte "arc"
 * records — mostly within a hot 512KB subset (L2/L3 territory), with
 * one in eight excursions into the cold 4MB array (main memory) — so
 * the A-pipe can run ahead, absorb the near misses and overlap the
 * far ones while each arc's cost computation defers.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildMcf(const KernelParams &p)
{
    using isa::CmpCond;
    constexpr Addr kArcBase = 0x1000'0000;
    constexpr std::int64_t kNumArcs = 65536;  // 64 B each = 4 MB
    constexpr std::int64_t kHotArcs = 4096;   // 256 KB hot subset
    const std::int64_t iters = scaledIters(3400, p.scale);

    isa::ProgramBuilder b("181.mcf");

    // r3: index state; r5: loop counter; r8: arc base; r31: checksum;
    // r22..r25: surrounding node bookkeeping (independent work).
    b.movi(R(3), 0x2545F4914F6CDD1DLL);
    b.movi(R(5), iters);
    b.movi(R(8), static_cast<std::int64_t>(kArcBase));
    b.movi(R(31), 0);
    b.movi(R(9), 977); // cost threshold
    b.movi(R(22), 1);
    b.movi(R(23), 0);

    // The loop body visits three arcs per iteration (real mcf loop
    // bodies are large relative to a 64-entry coupling queue, which
    // is what gives the B-to-A feedback path its value: the A-pipe's
    // lead is less than one iteration, so committed results reach
    // the A-file before the next dynamic instance dispatches).
    auto visit_arc = [&](const std::string &tag) {
        // Next arc index: pure ALU, never waits on memory.
        rngStep(b, R(3));
        randomIndex(b, R(4), R(2), R(3), kNumArcs - 1);
        // One visit in 16 leaves the hot subset (cold -> memory).
        b.shri(R(16), R(3), 45);
        b.andi(R(16), R(16), 15);
        b.cmpi(CmpCond::kNe, P(5), P(6), R(16), 0);
        b.andi(R(17), R(4), kHotArcs - 1);
        b.mov(R(4), R(17));
        b.pred(P(5)); // 15/16 of visits stay hot
        b.shli(R(4), R(4), 6);
        b.add(R(10), R(8), R(4)); // &arc

        // Arc record: cost @0, flow @8, upper @16 (one L1 line).
        b.ld8(R(11), R(10), 0);  // cost   -- the likely miss
        b.ld8(R(12), R(10), 8);  // flow
        b.ld8(R(13), R(10), 16); // upper

        // Reduced-cost computation: consumers of the miss.
        b.add(R(14), R(11), R(12));
        b.sub(R(15), R(13), R(14));
        b.shri(R(18), R(15), 2);
        b.xor_(R(19), R(15), R(18));
        b.add(R(20), R(19), R(11));
        b.andi(R(21), R(20), 1023);
        b.add(R(31), R(31), R(21));
        // Arc-status branch on the loaded data (real mcf tests arc
        // orientation/basis here): mostly taken, unresolvable at
        // A-DET whenever the arc lookup is still in flight.
        b.andi(R(2), R(15), 7);
        b.cmpi(CmpCond::kNe, P(7), P(8), R(2), 7);
        b.br("arc_update" + tag);
        b.pred(P(7));
        // Rare path: re-queue accounting only.
        b.addi(R(31), R(31), 13);
        b.br("arc_done" + tag);
        b.label("arc_update" + tag);
        b.cmp(CmpCond::kLt, P(1), P(2), R(15), R(9));
        b.st8(R(10), 8, R(14));
        b.pred(P(1)); // conditional flow update
        b.xor_(R(31), R(31), R(15));
        b.label("arc_done" + tag);

        // Simplex bookkeeping on node state: independent of the
        // misses, so the A-pipe keeps running during stalls.
        b.addi(R(22), R(22), 3);
        b.xor_(R(23), R(23), R(22));
        b.shri(R(24), R(23), 5);
        b.add(R(25), R(24), R(22));
        b.andi(R(25), R(25), 0xffff);
        b.add(R(26), R(25), R(23));
        b.shli(R(27), R(22), 2);
        b.xor_(R(26), R(26), R(27));
        b.shri(R(28), R(26), 9);
        b.add(R(29), R(28), R(25));
        b.xor_(R(30), R(29), R(23));
        b.andi(R(30), R(30), 0x1fff);
        b.add(R(31), R(31), R(30));
    };

    b.label("loop");
    visit_arc("_a");
    visit_arc("_b");
    visit_arc("_c");
    loopBack(b, R(5), P(3), P(4), "loop");
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();

    // Seed the arc array: cost/flow/upper per 64-byte record.
    Rng rng(0x181ULL ^ p.seedSalt);
    for (std::int64_t a = 0; a < kNumArcs; ++a) {
        const Addr rec = kArcBase + static_cast<Addr>(a) * 64;
        prog.poke64(rec + 0, rng.nextBelow(4096));
        prog.poke64(rec + 8, rng.nextBelow(1024));
        prog.poke64(rec + 16, rng.nextBelow(8192));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
