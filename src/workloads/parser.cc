/**
 * @file
 * 197.parser stand-in: dictionary lookups over a 512KB table. Each
 * probe's second access depends on the first probe's contents (a
 * chained bucket), producing the short dependent-load chains and
 * data-dependent control that characterize the real benchmark.
 */

#include "workloads/kernels.hh"

#include "common/random.hh"

namespace ff
{
namespace workloads
{

isa::Program
buildParser(const KernelParams &p)
{
    constexpr Addr kDictBase = 0x0C00'0000;
    constexpr std::int64_t kEntries = 16384; // 8 B each = 128 KB
    const std::int64_t iters = scaledIters(10000, p.scale);

    isa::ProgramBuilder b("197.parser");

    b.movi(R(8), static_cast<std::int64_t>(kDictBase));
    b.movi(R(3), 0x706172734CLL);
    b.movi(R(5), iters);
    b.movi(R(31), 0);
    b.movi(R(9), 1 << 14); // acceptance threshold
    b.movi(R(20), 2);
    b.movi(R(21), 0);

    b.label("loop");
    rngStep(b, R(3));
    randomIndex(b, R(4), R(2), R(3), kEntries - 1, 30, 14);
    // Common words: half the probes stay in a hot 16KB region.
    b.shri(R(24), R(3), 47);
    b.andi(R(24), R(24), 1);
    b.cmpi(isa::CmpCond::kEq, P(3), P(4), R(24), 0);
    b.andi(R(25), R(4), 2047);
    b.mov(R(4), R(25));
    b.pred(P(3));
    b.shli(R(4), R(4), 3);
    b.add(R(10), R(8), R(4));
    b.ld8(R(6), R(10), 0); // bucket head (L2/L3 territory)
    // Chained probe: the next slot comes from the loaded word.
    b.andi(R(7), R(6), kEntries - 1);
    b.shli(R(7), R(7), 3);
    b.add(R(11), R(8), R(7));
    b.ld8(R(12), R(11), 0); // dependent second probe
    // Linkage scoring on the fetched entries.
    b.add(R(13), R(12), R(6));
    b.shri(R(14), R(13), 5);
    b.xor_(R(15), R(13), R(14));
    b.shli(R(16), R(15), 3);
    b.xor_(R(17), R(15), R(16));
    b.andi(R(18), R(17), 0xfff);
    // Grammar state updates independent of the probes.
    b.addi(R(20), R(20), 9);
    b.xor_(R(21), R(21), R(20));
    b.shri(R(22), R(21), 11);
    b.add(R(23), R(22), R(20));
    b.cmp(isa::CmpCond::kLt, P(5), P(6), R(12), R(9));
    b.add(R(31), R(31), R(18));
    b.pred(P(5));
    b.xor_(R(31), R(31), R(6));
    b.pred(P(6));
    loopBack(b, R(5), P(1), P(2), "loop");
    b.add(R(31), R(31), R(23));
    storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    Rng rng(0x197ULL ^ p.seedSalt);
    for (std::int64_t e = 0; e < kEntries; ++e) {
        prog.poke64(kDictBase + static_cast<Addr>(e) * 8,
                    rng.nextBelow(1 << 20));
    }
    return prog;
}

} // namespace workloads
} // namespace ff
