#include "workloads/workload.hh"

#include <functional>
#include <map>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace ff
{
namespace workloads
{

void
loopBack(isa::ProgramBuilder &b, isa::RegId counter, isa::RegId pt,
         isa::RegId pf, const std::string &label)
{
    b.subi(counter, counter, 1);
    b.cmpi(isa::CmpCond::kGt, pt, pf, counter, 0);
    b.br(label);
    b.pred(pt);
}

void
storeChecksumAndHalt(isa::ProgramBuilder &b, isa::RegId checksum,
                     isa::RegId scratch)
{
    b.movi(scratch, static_cast<std::int64_t>(kChecksumAddr));
    b.st8(scratch, 0, checksum);
    b.halt();
}

void
rngStep(isa::ProgramBuilder &b, isa::RegId state)
{
    b.addi(state, state,
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
}

void
randomIndex(isa::ProgramBuilder &b, isa::RegId dst, isa::RegId tmp,
            isa::RegId state, std::int64_t mask, unsigned shift1,
            unsigned shift2)
{
    b.shri(tmp, state, static_cast<std::int64_t>(shift1));
    b.xor_(dst, state, tmp);
    b.shri(tmp, dst, static_cast<std::int64_t>(shift2));
    b.xor_(dst, dst, tmp);
    b.andi(dst, dst, mask);
}

namespace
{

struct KernelInfo
{
    std::function<isa::Program(const KernelParams &)> build;
    const char *input; ///< paper's Table 2 input + our stand-in
};

const std::map<std::string, KernelInfo> &
registry()
{
    static const std::map<std::string, KernelInfo> kRegistry = {
        {"099.go",
         {buildGo, "SPEC Train: synthetic board scan, 32KB board"}},
        {"129.compress",
         {buildCompress, "SPEC Train: synthetic hash probes, 128KB table"}},
        {"130.li",
         {buildLi, "SPEC Train: synthetic cell sweep, 8KB+8KB"}},
        {"175.vpr",
         {buildVpr, "SPEC Test: synthetic placement cost, fdiv chains"}},
        {"181.mcf",
         {buildMcf, "SPEC Test: synthetic arc visits, 4MB arcs"}},
        {"183.equake",
         {buildEquake, "SPEC Test: synthetic sparse matvec, ~1MB"}},
        {"197.parser",
         {buildParser, "UMN mdred: synthetic dictionary probes, 128KB"}},
        {"254.gap",
         {buildGap, "SPEC Test: synthetic serial chase, 4MB"}},
        {"255.vortex",
         {buildVortex, "UMN mdred: synthetic object store, 512KB"}},
        {"300.twolf",
         {buildTwolf, "UMN smred: synthetic swap evaluation, 32KB"}},
    };
    return kRegistry;
}

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> kNames = {
        "099.go",     "129.compress", "130.li",     "175.vpr",
        "181.mcf",    "183.equake",   "197.parser", "254.gap",
        "255.vortex",
        "300.twolf",
    };
    return kNames;
}

const char *
inputSetName(InputSet in)
{
    switch (in) {
      case InputSet::kDefault: return "default";
      case InputSet::kAlternate: return "alternate";
    }
    return "?";
}

Workload
buildWorkload(const std::string &name, int scale,
              const compiler::SchedulerConfig &cfg, InputSet input)
{
    auto it = registry().find(name);
    ff_fatal_if(it == registry().end(), "unknown workload '", name, "'");
    KernelParams params;
    params.scale = scale;
    if (input == InputSet::kAlternate) {
        // A distinct input of the same character: fresh data seeds
        // and a ~30% longer run.
        params.seedSalt = 0xA17E12A7E5EEDULL;
        params.scale = scale + scale * 3 / 10;
    }
    Workload w;
    w.name = name;
    w.input = it->second.input;
    if (input == InputSet::kAlternate)
        w.input += " [alternate]";
    w.program = compiler::schedule(it->second.build(params), cfg);
    return w;
}

std::vector<Workload>
buildAllWorkloads(int scale, const compiler::SchedulerConfig &cfg,
                  InputSet input)
{
    std::vector<Workload> out;
    out.reserve(workloadNames().size());
    for (const auto &n : workloadNames())
        out.push_back(buildWorkload(n, scale, cfg, input));
    return out;
}

} // namespace workloads
} // namespace ff
