/**
 * @file
 * Register liveness analysis over an ffvm program's control-flow
 * graph: classic iterative backward dataflow producing per-block
 * live-in/live-out sets and the peak register pressure per register
 * class. The workload kernels are written by hand against fixed
 * register assignments, so this is the "register allocator check" of
 * the toolchain: it verifies a program never holds more values live
 * than the architectural files provide (trivially true for ffvm's 64
 * per class, but the analysis also powers pressure reporting and is
 * the natural substrate for a future allocator).
 */

#ifndef FF_COMPILER_LIVENESS_HH
#define FF_COMPILER_LIVENESS_HH

#include <bitset>
#include <vector>

#include "cpu/regfile.hh"
#include "isa/program.hh"

namespace ff
{
namespace compiler
{

/** A set of architectural registers, one bit per dense slot. */
using RegSet = std::bitset<cpu::kNumRegSlots>;

/** One basic block of the control-flow graph. */
struct BasicBlock
{
    InstIdx begin;  ///< first instruction
    InstIdx end;    ///< one past the last instruction
    /** Indices (into the block vector) of possible successors. */
    std::vector<std::size_t> succs;

    RegSet use;     ///< read before any write within the block
    RegSet def;     ///< written within the block
    RegSet liveIn;
    RegSet liveOut;
};

/** Peak simultaneous liveness per register class. */
struct PressureReport
{
    unsigned maxLiveInt = 0;
    unsigned maxLiveFp = 0;
    unsigned maxLivePred = 0;

    /** True if every class fits its architectural file. */
    bool
    fits() const
    {
        return maxLiveInt <= isa::kNumIntRegs &&
               maxLiveFp <= isa::kNumFpRegs &&
               maxLivePred <= isa::kNumPredRegs;
    }
};

/** Computed liveness over a whole program. */
class Liveness
{
  public:
    /** Builds the CFG and runs the dataflow to a fixpoint. */
    explicit Liveness(const isa::Program &prog);

    const std::vector<BasicBlock> &blocks() const { return _blocks; }

    /** The block containing instruction @p i. */
    const BasicBlock &blockOf(InstIdx i) const;

    /** Registers live immediately before instruction @p i executes. */
    RegSet liveBefore(InstIdx i) const;

    /** Peak pressure across every program point. */
    PressureReport pressure() const;

  private:
    const isa::Program &_prog;
    std::vector<BasicBlock> _blocks;
    std::vector<std::size_t> _blockOf; ///< inst -> block index
};

} // namespace compiler
} // namespace ff

#endif // FF_COMPILER_LIVENESS_HH
