/**
 * @file
 * The issue-group-forming list scheduler — this repo's stand-in for
 * the IMPACT/Intel compilers of the paper. It takes a sequential
 * program (one instruction per group), partitions it into basic
 * blocks, and list-schedules each block into wide EPIC issue groups
 * under the machine's resource widths, assuming L1-hit load latency.
 *
 * The scheduler never moves instructions across basic blocks (no
 * global code motion, no speculation): the paper's premise is that
 * the *static* schedule is good on hits and the microarchitecture
 * absorbs unanticipated misses.
 */

#ifndef FF_COMPILER_SCHEDULER_HH
#define FF_COMPILER_SCHEDULER_HH

#include <vector>

#include "compiler/depgraph.hh"
#include "isa/program.hh"

namespace ff
{
namespace compiler
{

/** Options controlling issue-group formation. */
struct SchedulerConfig
{
    isa::GroupLimits limits;   ///< machine resource widths (Table 1)
    SchedLatencies latencies;  ///< assumed operation latencies

    /**
     * Optional memory disambiguator (see analysis::MemDep). When
     * null — the default — memory ordering is the conservative legacy
     * chain and output is bit-identical to prior versions; when set,
     * must-not-alias pairs lose their ordering edge and loads may
     * hoist across provably independent stores.
     */
    const AliasOracle *alias = nullptr;
};

/**
 * Partitions @p sequential into basic blocks and returns the indices
 * of block leaders (entry, branch targets, fall-throughs after
 * branches and halts), sorted ascending.
 */
std::vector<InstIdx> findBlockLeaders(const isa::Program &sequential);

/**
 * Schedules @p sequential into issue groups. The input is typically a
 * builder-produced program with a stop bit on every instruction; the
 * output preserves per-block instruction semantics while packing
 * independent operations into shared issue groups and spacing
 * dependent ones by assumed latency. Branch targets are remapped.
 *
 * The result is validated; scheduling failures are simulator bugs
 * and panic.
 */
isa::Program schedule(const isa::Program &sequential,
                      const SchedulerConfig &cfg = SchedulerConfig());

} // namespace compiler
} // namespace ff

#endif // FF_COMPILER_SCHEDULER_HH
