#include "compiler/liveness.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compiler/scheduler.hh"

namespace ff
{
namespace compiler
{

using cpu::regSlot;
using isa::Instruction;
using isa::Program;

namespace
{

/** Adds instruction @p in's reads (minus already-defined) to use/def. */
void
accumulate(const Instruction &in, RegSet *use, RegSet *def)
{
    std::array<isa::RegId, 4> srcs;
    const unsigned ns = in.sources(srcs);
    for (unsigned s = 0; s < ns; ++s) {
        const int slot = regSlot(srcs[s]);
        if (slot < 0 || srcs[s].idx == 0)
            continue;
        if (!def->test(static_cast<std::size_t>(slot)))
            use->set(static_cast<std::size_t>(slot));
    }
    // Predicated instructions may leave the old value intact, so a
    // predicated write is NOT a kill: model it as a read-modify-write
    // (conservative for liveness: keeps the incoming value live).
    const bool conditional =
        !(in.qpred.cls == isa::RegClass::kPred && in.qpred.idx == 0);
    std::array<isa::RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    for (unsigned d = 0; d < nd; ++d) {
        const int slot = regSlot(dsts[d]);
        if (slot < 0 || dsts[d].idx == 0)
            continue;
        if (conditional) {
            if (!def->test(static_cast<std::size_t>(slot)))
                use->set(static_cast<std::size_t>(slot));
        }
        def->set(static_cast<std::size_t>(slot));
    }
}

} // namespace

Liveness::Liveness(const Program &prog) : _prog(prog)
{
    // Blocks follow the scheduler's leader rules.
    const std::vector<InstIdx> leaders = findBlockLeaders(prog);
    const InstIdx n = prog.size();
    _blockOf.assign(n, 0);
    for (std::size_t b = 0; b < leaders.size(); ++b) {
        BasicBlock blk;
        blk.begin = leaders[b];
        blk.end = (b + 1 < leaders.size()) ? leaders[b + 1] : n;
        for (InstIdx i = blk.begin; i < blk.end; ++i) {
            _blockOf[i] = b;
            accumulate(prog.inst(i), &blk.use, &blk.def);
        }
        _blocks.push_back(std::move(blk));
    }

    // Successor edges: fall-through (unless the block ends in a halt)
    // plus the branch target.
    auto block_index_of = [&](InstIdx i) -> std::size_t {
        ff_panic_if(i >= n, "successor out of range");
        return _blockOf[i];
    };
    for (std::size_t b = 0; b < _blocks.size(); ++b) {
        BasicBlock &blk = _blocks[b];
        const Instruction &last = prog.inst(blk.end - 1);
        bool falls_through = !last.isHalt();
        if (last.isBranch()) {
            blk.succs.push_back(
                block_index_of(static_cast<InstIdx>(last.imm)));
            // A branch qualified by p0 is unconditional.
            if (last.qpred.cls == isa::RegClass::kPred &&
                last.qpred.idx == 0) {
                falls_through = false;
            }
        }
        if (falls_through && blk.end < n)
            blk.succs.push_back(block_index_of(blk.end));
    }

    // Iterate liveIn = use | (liveOut & ~def) to a fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = _blocks.size(); b-- > 0;) {
            BasicBlock &blk = _blocks[b];
            RegSet out;
            for (std::size_t s : blk.succs)
                out |= _blocks[s].liveIn;
            const RegSet in = blk.use | (out & ~blk.def);
            if (out != blk.liveOut || in != blk.liveIn) {
                blk.liveOut = out;
                blk.liveIn = in;
                changed = true;
            }
        }
    }
}

const BasicBlock &
Liveness::blockOf(InstIdx i) const
{
    return _blocks.at(_blockOf.at(i));
}

RegSet
Liveness::liveBefore(InstIdx i) const
{
    const BasicBlock &blk = blockOf(i);
    // Walk backward from the block's end to just before i.
    RegSet live = blk.liveOut;
    for (InstIdx j = blk.end; j-- > i + 1;) {
        // (applied in reverse: live = (live - def) | use)
        RegSet use, def;
        accumulate(_prog.inst(j), &use, &def);
        live &= ~def;
        live |= use;
    }
    {
        // Include instruction i's own reads? No: "before i executes"
        // means i's sources are necessarily live; fold them in so the
        // pressure number reflects what a register allocator must
        // keep resident at that point.
        RegSet use, def;
        accumulate(_prog.inst(i), &use, &def);
        live &= ~def;
        live |= use;
    }
    return live;
}

PressureReport
Liveness::pressure() const
{
    PressureReport r;
    for (InstIdx i = 0; i < _prog.size(); ++i) {
        const RegSet live = liveBefore(i);
        unsigned ints = 0, fps = 0, preds = 0;
        for (std::size_t s = 0; s < cpu::kNumRegSlots; ++s) {
            if (!live.test(s))
                continue;
            if (s < isa::kNumIntRegs)
                ++ints;
            else if (s < isa::kNumIntRegs + isa::kNumFpRegs)
                ++fps;
            else
                ++preds;
        }
        r.maxLiveInt = std::max(r.maxLiveInt, ints);
        r.maxLiveFp = std::max(r.maxLiveFp, fps);
        r.maxLivePred = std::max(r.maxLivePred, preds);
    }
    return r;
}

} // namespace compiler
} // namespace ff
