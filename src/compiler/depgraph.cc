#include "compiler/depgraph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ff
{
namespace compiler
{

using isa::Instruction;
using isa::RegClass;
using isa::RegId;

namespace
{

/** Dense index for a register id, for last-writer/reader tables. */
int
regSlot(RegId r)
{
    switch (r.cls) {
      case RegClass::kInt:
        return r.idx;
      case RegClass::kFp:
        return isa::kNumIntRegs + r.idx;
      case RegClass::kPred:
        return isa::kNumIntRegs + isa::kNumFpRegs + r.idx;
      case RegClass::kNone:
        return -1;
    }
    return -1;
}

constexpr int kNumSlots =
    isa::kNumIntRegs + isa::kNumFpRegs + isa::kNumPredRegs;

} // namespace

DepGraph::DepGraph(const std::vector<Instruction> &insts,
                   std::uint32_t begin, std::uint32_t end,
                   const SchedLatencies &lat,
                   const AliasOracle *oracle)
{
    ff_panic_if(end < begin, "bad block range");
    _n = end - begin;
    _succ.assign(_n, {});
    _inDegree.assign(_n, 0);
    _height.assign(_n, 0);

    // Last writer / readers since that writer, per register slot.
    std::vector<std::int32_t> last_writer(kNumSlots, -1);
    std::vector<std::vector<std::uint32_t>> readers(kNumSlots);

    std::int32_t last_store = -1;
    std::int32_t last_mem = -1; // most recent memory op of any kind
    // Oracle path only: every older memory op, for pairwise checks.
    // The legacy chain relies on transitivity (each mem op orders
    // behind the previous), which pruning individual edges breaks, so
    // alias-aware ordering must test all pairs explicitly.
    std::vector<std::uint32_t> older_mem;

    for (std::uint32_t li = 0; li < _n; ++li) {
        const Instruction &in = insts[begin + li];

        std::array<RegId, 4> srcs;
        unsigned ns = in.sources(srcs);
        for (unsigned s = 0; s < ns; ++s) {
            int slot = regSlot(srcs[s]);
            if (slot < 0)
                continue;
            // Hardwired always-zero/true registers carry no deps.
            if (srcs[s].idx == 0)
                continue;
            if (last_writer[slot] >= 0) {
                const Instruction &prod = insts[begin + last_writer[slot]];
                addEdge(static_cast<std::uint32_t>(last_writer[slot]), li,
                        std::max(1u, lat.latencyOf(prod)),
                        DepKind::kRaw, srcs[s]);
            }
            readers[slot].push_back(li);
        }

        std::array<RegId, 2> dsts;
        unsigned nd = in.destinations(dsts);
        for (unsigned d = 0; d < nd; ++d) {
            int slot = regSlot(dsts[d]);
            if (slot < 0)
                continue;
            if (last_writer[slot] >= 0 &&
                last_writer[slot] != static_cast<std::int32_t>(li)) {
                // WAW: one cycle apart at minimum. A same-instruction
                // repeat (aliased cmp destination pair) is not an
                // ordering constraint — the verifier reports it as a
                // predicate-sanity error instead.
                addEdge(static_cast<std::uint32_t>(last_writer[slot]), li,
                        1, DepKind::kWaw, dsts[d]);
            }
            for (std::uint32_t r : readers[slot]) {
                if (r != li) {
                    // WAR: same group is fine.
                    addEdge(r, li, 0, DepKind::kWar, dsts[d]);
                }
            }
            readers[slot].clear();
            last_writer[slot] = static_cast<std::int32_t>(li);
        }

        if (in.isMem()) {
            if (oracle != nullptr) {
                // Pairwise ordering against every older memory op the
                // oracle cannot prove independent. Stores conflict
                // with any older access; loads only with older stores.
                for (std::uint32_t j : older_mem) {
                    const Instruction &old = insts[begin + j];
                    if (!in.isStore() && !old.isStore())
                        continue; // load/load never orders
                    if (oracle->alias(begin + j, begin + li) ==
                        AliasResult::kMustNotAlias) {
                        continue;
                    }
                    addEdge(j, li, 1, DepKind::kMemOrder);
                }
                older_mem.push_back(li);
            } else if (in.isStore()) {
                // Stores order behind every older memory operation.
                if (last_mem >= 0) {
                    addEdge(static_cast<std::uint32_t>(last_mem), li, 1,
                            DepKind::kMemOrder);
                }
                last_store = static_cast<std::int32_t>(li);
            } else {
                // Loads order behind older stores only.
                if (last_store >= 0) {
                    addEdge(static_cast<std::uint32_t>(last_store), li, 1,
                            DepKind::kMemOrder);
                }
            }
            if (oracle == nullptr) {
                last_mem = static_cast<std::int32_t>(li);
            }
        }

        // Block-terminating control: everything precedes the branch
        // or halt (separation 0 -- may share its final group).
        if (in.isBranch() || in.isHalt()) {
            for (std::uint32_t j = 0; j < li; ++j)
                addEdge(j, li, 0, DepKind::kControl);
        }
    }

    // Heights by reverse topological sweep. Edges always go from a
    // lower local index to a higher one, so a reverse index sweep is a
    // valid reverse-topological order.
    for (std::uint32_t i = _n; i-- > 0;) {
        unsigned h = 0;
        for (std::uint32_t ei : _succ[i]) {
            const DepEdge &e = _edges[ei];
            h = std::max(h, _height[e.to] + std::max(e.minSep, 0u));
        }
        _height[i] = h;
    }
}

void
DepGraph::addEdge(std::uint32_t from, std::uint32_t to, unsigned sep,
                  DepKind kind, RegId reg)
{
    ff_panic_if(from >= to, "dependence edge must go forward");
    _edges.push_back({from, to, sep, kind, reg});
    _succ[from].push_back(static_cast<std::uint32_t>(_edges.size() - 1));
    ++_inDegree[to];
}

const char *
depKindName(DepKind k)
{
    switch (k) {
      case DepKind::kRaw: return "RAW";
      case DepKind::kWaw: return "WAW";
      case DepKind::kWar: return "WAR";
      case DepKind::kMemOrder: return "memory-order";
      case DepKind::kControl: return "control";
    }
    return "?";
}

} // namespace compiler
} // namespace ff
