#include "compiler/scheduler.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"

namespace ff
{
namespace compiler
{

using isa::Instruction;
using isa::Program;
using isa::UnitClass;

std::vector<InstIdx>
findBlockLeaders(const Program &sequential)
{
    std::set<InstIdx> leaders;
    leaders.insert(0);
    const InstIdx n = sequential.size();
    for (InstIdx i = 0; i < n; ++i) {
        const Instruction &in = sequential.inst(i);
        if (in.isBranch()) {
            leaders.insert(static_cast<InstIdx>(in.imm));
            if (i + 1 < n)
                leaders.insert(i + 1);
        } else if (in.isHalt()) {
            if (i + 1 < n)
                leaders.insert(i + 1);
        }
    }
    return {leaders.begin(), leaders.end()};
}

namespace
{

/** Per-cycle resource occupancy during list scheduling. */
struct CycleResources
{
    unsigned total = 0;
    unsigned alu = 0;
    unsigned mem = 0;
    unsigned fp = 0;
    unsigned br = 0;

    bool
    fits(const Instruction &in, const isa::GroupLimits &lim) const
    {
        if (total + 1 > lim.issueWidth)
            return false;
        switch (in.unit()) {
          case UnitClass::kAlu:
            return alu + 1 <= lim.aluUnits;
          case UnitClass::kMem:
            return mem + 1 <= lim.memUnits;
          case UnitClass::kFp:
            return fp + 1 <= lim.fpUnits;
          case UnitClass::kBranch:
            return br + 1 <= lim.branchUnits;
        }
        return false;
    }

    void
    occupy(const Instruction &in)
    {
        ++total;
        switch (in.unit()) {
          case UnitClass::kAlu: ++alu; break;
          case UnitClass::kMem: ++mem; break;
          case UnitClass::kFp: ++fp; break;
          case UnitClass::kBranch: ++br; break;
        }
    }
};

/** Schedules one block; appends (cycle, local index) assignments. */
void
scheduleBlock(const Program &prog, InstIdx begin, InstIdx end,
              const SchedulerConfig &cfg,
              std::vector<std::pair<unsigned, InstIdx>> &out)
{
    const std::uint32_t n = end - begin;
    DepGraph graph(prog.insts(), begin, end, cfg.latencies, cfg.alias);

    std::vector<unsigned> remaining_preds(n);
    std::vector<unsigned> earliest(n, 0);
    std::vector<bool> scheduled(n, false);
    for (std::uint32_t i = 0; i < n; ++i)
        remaining_preds[i] = graph.inDegree(i);

    unsigned num_done = 0;
    unsigned cycle = 0;
    while (num_done < n) {
        CycleResources res;
        // Memory ops placed in this cycle, as (original local index,
        // is-store). Groups are emitted in original-index order, and
        // the machine forbids any memory op from following a store in
        // its group. The legacy dependence chain enforces that by
        // construction, but an alias oracle prunes those edges, so
        // group formation must re-check the slot-order rule itself.
        std::vector<std::pair<std::uint32_t, bool>> group_mem;
        auto group_admits = [&](std::uint32_t i, bool is_store) {
            for (const auto &[j, j_store] : group_mem) {
                if (j_store && j < i)
                    return false; // i would follow the store at j
                if (is_store && j > i)
                    return false; // j would follow the store at i
            }
            return true;
        };
        // Fill the cycle to fixpoint: placing an instruction releases
        // its sep-0 successors (e.g. a branch reading no results),
        // which may join the same issue group.
        for (;;) {
            std::vector<std::uint32_t> ready;
            for (std::uint32_t i = 0; i < n; ++i) {
                if (!scheduled[i] && remaining_preds[i] == 0 &&
                    earliest[i] <= cycle) {
                    ready.push_back(i);
                }
            }
            std::sort(ready.begin(), ready.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          if (graph.height(a) != graph.height(b))
                              return graph.height(a) > graph.height(b);
                          return a < b;
                      });
            bool placed_any = false;
            for (std::uint32_t i : ready) {
                const Instruction &in = prog.inst(begin + i);
                if (!res.fits(in, cfg.limits))
                    continue;
                if (in.isMem() && !group_admits(i, in.isStore()))
                    continue;
                res.occupy(in);
                if (in.isMem())
                    group_mem.emplace_back(i, in.isStore());
                scheduled[i] = true;
                out.emplace_back(cycle, begin + i);
                ++num_done;
                placed_any = true;
                for (std::uint32_t ei : graph.succs(i)) {
                    const DepEdge &e = graph.edges()[ei];
                    --remaining_preds[e.to];
                    earliest[e.to] =
                        std::max(earliest[e.to], cycle + e.minSep);
                }
            }
            if (!placed_any)
                break;
        }
        ++cycle;
        ff_panic_if(cycle > 64u * (n + 4), "scheduler livelock in '",
                    prog.name(), "'");
    }
}

} // namespace

Program
schedule(const Program &sequential, const SchedulerConfig &cfg)
{
    std::string err = sequential.validate(cfg.limits);
    ff_panic_if(!err.empty(), "unschedulable input program '",
                sequential.name(), "': ", err);

    std::vector<InstIdx> leaders = findBlockLeaders(sequential);
    const InstIdx n = sequential.size();

    std::vector<Instruction> out;
    out.reserve(n);
    // Maps old block-leader index -> new index of the block's start.
    std::map<InstIdx, InstIdx> new_block_start;
    // Maps output position -> old index, for debugging/tests.
    for (std::size_t b = 0; b < leaders.size(); ++b) {
        const InstIdx begin = leaders[b];
        const InstIdx end =
            (b + 1 < leaders.size()) ? leaders[b + 1] : n;
        new_block_start[begin] = static_cast<InstIdx>(out.size());

        std::vector<std::pair<unsigned, InstIdx>> placement;
        scheduleBlock(sequential, begin, end, cfg, placement);
        // Emit in (cycle, original index) order; a cycle boundary
        // becomes a stop bit on the last instruction of the group.
        std::stable_sort(placement.begin(), placement.end());
        for (std::size_t k = 0; k < placement.size(); ++k) {
            Instruction in = sequential.inst(placement[k].second);
            in.stop = (k + 1 == placement.size()) ||
                      (placement[k + 1].first != placement[k].first);
            out.push_back(in);
        }
    }

    // Remap branch targets through the block-start map.
    for (Instruction &in : out) {
        if (in.isBranch()) {
            auto it = new_block_start.find(static_cast<InstIdx>(in.imm));
            ff_panic_if(it == new_block_start.end(),
                        "branch target is not a block leader after "
                        "scheduling");
            in.imm = static_cast<std::int64_t>(it->second);
        }
    }

    Program result(sequential.name(), std::move(out));
    // Carry the data image over.
    for (const auto &[base, page] : sequential.dataImage().pages())
        result.pokeBytes(base, page.data(), page.size());

    err = result.validate(cfg.limits);
    ff_panic_if(!err.empty(), "scheduler produced invalid program '",
                result.name(), "': ", err);
    return result;
}

} // namespace compiler
} // namespace ff
