/**
 * @file
 * Dependence analysis over a basic block of ffvm instructions, used
 * by the list scheduler to form issue groups. Edges carry a minimum
 * cycle separation: RAW edges carry the producer's assumed latency,
 * WAW and memory-ordering edges carry 1 (different groups), and WAR
 * edges carry 0 (same group is legal under EPIC read-before-group
 * semantics).
 */

#ifndef FF_COMPILER_DEPGRAPH_HH
#define FF_COMPILER_DEPGRAPH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ff
{
namespace compiler
{

/** Alias verdict for a pair of memory accesses. */
enum class AliasResult : std::uint8_t
{
    kMustNotAlias, ///< byte ranges provably never overlap
    kMayAlias,     ///< unknown: keep conservative ordering
    kMustAlias,    ///< byte ranges provably overlap
};

/**
 * Abstract memory-disambiguation interface the dependence graph
 * consults to prune memory-ordering edges. Implemented by
 * analysis::MemDep; declared here so the compiler layer needs no
 * dependence on the analysis library. Queries use program-wide
 * instruction indices; a must-not-alias answer for two accesses in
 * the same basic block licenses reordering them.
 */
class AliasOracle
{
  public:
    virtual ~AliasOracle() = default;

    /** Alias relation between memory instructions @p a and @p b. */
    virtual AliasResult alias(InstIdx a, InstIdx b) const = 0;
};

/**
 * Latencies the compiler *assumes* when spacing dependent
 * instructions — notably the load latency, which it optimistically
 * sets to the L1 hit time (the central premise of the paper: the
 * static schedule capitalizes on hits and eats stalls on misses).
 */
struct SchedLatencies
{
    unsigned loadLatency = 2; ///< assumed (L1-hit) load-use latency

    /** Assumed producer-to-consumer latency for @p in. */
    unsigned
    latencyOf(const isa::Instruction &in) const
    {
        if (in.isLoad())
            return loadLatency;
        return in.execLatency();
    }
};

/** Why a dependence edge exists (for scheduling and diagnostics). */
enum class DepKind : std::uint8_t
{
    kRaw,      ///< read-after-write through a register
    kWaw,      ///< write-after-write to the same register
    kWar,      ///< write-after-read (same group is legal)
    kMemOrder, ///< conservative memory ordering against a store
    kControl,  ///< ordering against block-terminating control flow
};

const char *depKindName(DepKind k);

/** One dependence edge between instructions of a block. */
struct DepEdge
{
    std::uint32_t from;   ///< producer, index local to the block
    std::uint32_t to;     ///< consumer, index local to the block
    unsigned minSep;      ///< minimum cycle separation (0 = same group)
    DepKind kind = DepKind::kControl; ///< why the edge exists
    isa::RegId reg;       ///< carrying register for RAW/WAW/WAR edges
};

/**
 * Dependence graph over one basic block. Indices are local (0 is the
 * block's first instruction).
 */
class DepGraph
{
  public:
    /**
     * Builds the graph for instructions [begin, end) of @p insts.
     * Memory ordering is conservative: stores order against all other
     * memory operations; loads may reorder freely with loads. Every
     * instruction is ordered no later than a block-terminating branch.
     *
     * With a non-null @p oracle, memory-ordering edges whose two
     * accesses the oracle proves must-not-alias are omitted, so
     * independent loads hoist across stores. The oracle's indices are
     * program-wide (@p begin + local index). Without an oracle the
     * edge set is exactly the legacy conservative chain.
     */
    DepGraph(const std::vector<isa::Instruction> &insts,
             std::uint32_t begin, std::uint32_t end,
             const SchedLatencies &lat,
             const AliasOracle *oracle = nullptr);

    std::uint32_t size() const { return _n; }

    const std::vector<DepEdge> &edges() const { return _edges; }

    /** Outgoing edges of local instruction @p i. */
    const std::vector<std::uint32_t> &succs(std::uint32_t i) const
    {
        return _succ[i];
    }

    /** Number of incoming edges of @p i (for topological release). */
    unsigned inDegree(std::uint32_t i) const { return _inDegree[i]; }

    /**
     * Critical-path height of @p i : longest separation-weighted path
     * from i to any sink. Used as list-scheduling priority.
     */
    unsigned height(std::uint32_t i) const { return _height[i]; }

  private:
    void addEdge(std::uint32_t from, std::uint32_t to, unsigned sep,
                 DepKind kind, isa::RegId reg = isa::noReg());

    std::uint32_t _n;
    std::vector<DepEdge> _edges;
    std::vector<std::vector<std::uint32_t>> _succ; ///< edge indices
    std::vector<unsigned> _inDegree;
    std::vector<unsigned> _height;
};

} // namespace compiler
} // namespace ff

#endif // FF_COMPILER_DEPGRAPH_HH
