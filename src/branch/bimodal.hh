/**
 * @file
 * Bimodal (PC-indexed, history-free) and tournament (21264-style)
 * direction predictors, for the predictor-quality ablation.
 */

#ifndef FF_BRANCH_BIMODAL_HH
#define FF_BRANCH_BIMODAL_HH

#include <vector>

#include "branch/gshare.hh"
#include "branch/predictor.hh"

namespace ff
{
namespace branch
{

/** Classic bimodal predictor: a 2-bit counter per (hashed) PC. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries = 1024);

    Prediction predict(Addr pc) override;
    void update(const Prediction &p, bool taken) override;
    void reset() override;

    void save(serial::Writer &w) const override;
    void restore(serial::Reader &r) override;

  private:
    std::vector<std::uint8_t> _table;
    std::uint64_t _mask;
};

/**
 * Tournament predictor: bimodal and gshare components with a
 * PC-indexed 2-bit chooser (0-1 favour bimodal, 2-3 favour gshare),
 * after the Alpha 21264's local/global arrangement.
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(unsigned entries = 1024);

    Prediction predict(Addr pc) override;
    void update(const Prediction &p, bool taken) override;
    void reset() override;

    void save(serial::Writer &w) const override;
    void restore(serial::Reader &r) override;

  private:
    GsharePredictor _gshare;
    BimodalPredictor _bimodal;
    std::vector<std::uint8_t> _chooser;
    std::uint64_t _mask;
};

} // namespace branch
} // namespace ff

#endif // FF_BRANCH_BIMODAL_HH
