/**
 * @file
 * The 1024-entry gshare direction predictor of Table 1: a global
 * history register XOR-folded with the branch PC indexing a table of
 * 2-bit saturating counters. Branch targets are direct in ffvm, so
 * no BTB is needed; the front end reads targets from the decoded
 * instruction.
 *
 * Predictions are made speculatively at fetch (shifting the predicted
 * direction into the history); each resolved branch calls update()
 * with its Prediction token, which trains the counter it actually
 * used and, on a misprediction, restores the history to the
 * pre-branch value extended with the real outcome — wiping any
 * wrong-path pollution in one step.
 */

#ifndef FF_BRANCH_GSHARE_HH
#define FF_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "common/types.hh"

namespace ff
{
namespace branch
{

/** gshare direction predictor with 2-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit GsharePredictor(unsigned entries = 1024);

    /** Predicts the branch at @p pc; shifts speculative history. */
    Prediction predict(Addr pc) override;

    /**
     * Trains on the resolved outcome; on a misprediction, restores
     * the global history to the branch's pre-prediction value
     * extended with the actual direction. Squashed (wrong-path)
     * predictions must never be updated.
     */
    void update(const Prediction &p, bool taken) override;

    std::uint64_t history() const { return _history; }

    void resetStats() { _stats.reset(); }
    void reset() override;

    void save(serial::Writer &w) const override;
    void restore(serial::Reader &r) override;

  private:
    std::vector<std::uint8_t> _table; ///< 2-bit counters
    std::uint64_t _history = 0;
    std::uint64_t _mask;
};

} // namespace branch
} // namespace ff

#endif // FF_BRANCH_GSHARE_HH
