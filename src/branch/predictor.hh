/**
 * @file
 * The branch direction-predictor interface and factory. Table 1's
 * machine uses gshare; bimodal and tournament (21264-style) designs
 * are provided for the predictor-quality ablation — the two-pass
 * B-DET misprediction penalty makes the design more sensitive to
 * predictor quality than the baseline, which this lets us measure.
 */

#ifndef FF_BRANCH_PREDICTOR_HH
#define FF_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace ff
{
namespace branch
{

/** Prediction statistics. */
struct PredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    void reset() { *this = PredictorStats(); }
};

/**
 * Token returned at predict time and surrendered at resolve time.
 * Components unused by a given predictor stay zero.
 */
struct Prediction
{
    bool taken = false;
    std::uint32_t index = 0;          ///< primary counter consulted
    std::uint64_t historyBefore = 0;  ///< history before this branch
    std::uint32_t index2 = 0;         ///< secondary counter (tournament)
    std::uint32_t chooserIndex = 0;   ///< chooser entry (tournament)
    bool component1Taken = false;     ///< primary's own prediction
    bool component2Taken = false;     ///< secondary's prediction
    bool usedComponent2 = false;      ///< chooser picked the secondary
};

/** Abstract direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicts the branch at @p pc; shifts speculative state. */
    virtual Prediction predict(Addr pc) = 0;

    /**
     * Trains on the resolved outcome and repairs speculative state
     * on a misprediction. Squashed (wrong-path) predictions must
     * never be updated.
     */
    virtual void update(const Prediction &p, bool taken) = 0;

    virtual const PredictorStats &stats() const { return _stats; }
    virtual void reset() = 0;

  protected:
    PredictorStats _stats;
};

/** Which predictor to build (CoreConfig::predictorKind). */
enum class PredictorKind
{
    kGshare,     ///< Table 1's 1024-entry gshare
    kBimodal,    ///< PC-indexed 2-bit counters, no history
    kTournament, ///< bimodal + gshare + PC-indexed chooser
};

const char *predictorKindName(PredictorKind k);

/** Builds a predictor of @p kind with @p entries counters/table. */
std::unique_ptr<DirectionPredictor> makePredictor(PredictorKind kind,
                                                  unsigned entries);

} // namespace branch
} // namespace ff

#endif // FF_BRANCH_PREDICTOR_HH
