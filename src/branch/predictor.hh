/**
 * @file
 * The branch direction-predictor interface and factory. Table 1's
 * machine uses gshare; bimodal and tournament (21264-style) designs
 * are provided for the predictor-quality ablation — the two-pass
 * B-DET misprediction penalty makes the design more sensitive to
 * predictor quality than the baseline, which this lets us measure.
 */

#ifndef FF_BRANCH_PREDICTOR_HH
#define FF_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace ff
{
namespace branch
{

/** Prediction statistics. */
struct PredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    void reset() { *this = PredictorStats(); }
};

/**
 * Token returned at predict time and surrendered at resolve time.
 * Components unused by a given predictor stay zero.
 */
struct Prediction
{
    bool taken = false;
    std::uint32_t index = 0;          ///< primary counter consulted
    std::uint64_t historyBefore = 0;  ///< history before this branch
    std::uint32_t index2 = 0;         ///< secondary counter (tournament)
    std::uint32_t chooserIndex = 0;   ///< chooser entry (tournament)
    bool component1Taken = false;     ///< primary's own prediction
    bool component2Taken = false;     ///< secondary's prediction
    bool usedComponent2 = false;      ///< chooser picked the secondary
};

/** Snapshot encoding of a Prediction token (all components). */
inline void
savePrediction(serial::Writer &w, const Prediction &p)
{
    w.boolean(p.taken);
    w.u32(p.index);
    w.u64(p.historyBefore);
    w.u32(p.index2);
    w.u32(p.chooserIndex);
    w.boolean(p.component1Taken);
    w.boolean(p.component2Taken);
    w.boolean(p.usedComponent2);
}

inline void
restorePrediction(serial::Reader &r, Prediction &p)
{
    p.taken = r.boolean();
    p.index = r.u32();
    p.historyBefore = r.u64();
    p.index2 = r.u32();
    p.chooserIndex = r.u32();
    p.component1Taken = r.boolean();
    p.component2Taken = r.boolean();
    p.usedComponent2 = r.boolean();
}

/** Abstract direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicts the branch at @p pc; shifts speculative state. */
    virtual Prediction predict(Addr pc) = 0;

    /**
     * Trains on the resolved outcome and repairs speculative state
     * on a misprediction. Squashed (wrong-path) predictions must
     * never be updated.
     */
    virtual void update(const Prediction &p, bool taken) = 0;

    virtual const PredictorStats &stats() const { return _stats; }
    virtual void reset() = 0;

    /**
     * Snapshot hooks: counter tables, speculative history and stats.
     * The bundled predictors all implement them; the default panics
     * so a future predictor can't silently snapshot partial state.
     */
    virtual void
    save(serial::Writer &w) const
    {
        (void)w;
        ff_panic("predictor does not support snapshots");
    }

    virtual void
    restore(serial::Reader &r)
    {
        (void)r;
        ff_panic("predictor does not support snapshots");
    }

  protected:
    void
    saveStats(serial::Writer &w) const
    {
        w.u64(_stats.lookups);
        w.u64(_stats.mispredicts);
    }

    void
    restoreStats(serial::Reader &r)
    {
        _stats.lookups = r.u64();
        _stats.mispredicts = r.u64();
    }

    PredictorStats _stats;
};

/** Which predictor to build (CoreConfig::predictorKind). */
enum class PredictorKind
{
    kGshare,     ///< Table 1's 1024-entry gshare
    kBimodal,    ///< PC-indexed 2-bit counters, no history
    kTournament, ///< bimodal + gshare + PC-indexed chooser
};

const char *predictorKindName(PredictorKind k);

/** Builds a predictor of @p kind with @p entries counters/table. */
std::unique_ptr<DirectionPredictor> makePredictor(PredictorKind kind,
                                                  unsigned entries);

} // namespace branch
} // namespace ff

#endif // FF_BRANCH_PREDICTOR_HH
