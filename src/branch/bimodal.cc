#include "branch/bimodal.hh"

#include "common/logging.hh"

namespace ff
{
namespace branch
{

// ---------------------------------------------------------------------
// Bimodal
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned entries)
    : _table(entries, 1), // weakly not-taken
      _mask(entries - 1)
{
    ff_fatal_if(entries == 0 || (entries & (entries - 1)) != 0,
                "bimodal table size must be a power of two");
}

Prediction
BimodalPredictor::predict(Addr pc)
{
    ++_stats.lookups;
    Prediction p;
    p.index = static_cast<std::uint32_t>((pc >> 4) & _mask);
    p.taken = _table[p.index] >= 2;
    return p;
}

void
BimodalPredictor::update(const Prediction &p, bool taken)
{
    std::uint8_t &ctr = _table[p.index];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    if (taken != p.taken)
        ++_stats.mispredicts;
}

void
BimodalPredictor::reset()
{
    for (auto &c : _table)
        c = 1;
    _stats.reset();
}

void
BimodalPredictor::save(serial::Writer &w) const
{
    w.u64(_table.size());
    w.bytes(_table.data(), _table.size());
    saveStats(w);
}

void
BimodalPredictor::restore(serial::Reader &r)
{
    if (r.seq(1) != _table.size()) {
        r.fail();
        return;
    }
    r.bytes(_table.data(), _table.size());
    restoreStats(r);
}

// ---------------------------------------------------------------------
// Tournament
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(unsigned entries)
    : _gshare(entries),
      _bimodal(entries),
      _chooser(entries, 2), // weakly favour gshare
      _mask(entries - 1)
{
}

Prediction
TournamentPredictor::predict(Addr pc)
{
    ++_stats.lookups;
    const Prediction g = _gshare.predict(pc);
    const Prediction b = _bimodal.predict(pc);

    Prediction p;
    p.chooserIndex = static_cast<std::uint32_t>((pc >> 4) & _mask);
    p.usedComponent2 = _chooser[p.chooserIndex] < 2; // 2 = bimodal
    // Primary slot carries gshare's state, secondary bimodal's.
    p.index = g.index;
    p.historyBefore = g.historyBefore;
    p.component1Taken = g.taken;
    p.index2 = b.index;
    p.component2Taken = b.taken;
    p.taken = p.usedComponent2 ? b.taken : g.taken;
    return p;
}

void
TournamentPredictor::update(const Prediction &p, bool taken)
{
    // Rebuild each component's token and train it (this also
    // repairs gshare's speculative history on ITS mispredictions).
    Prediction g;
    g.index = p.index;
    g.historyBefore = p.historyBefore;
    g.taken = p.component1Taken;
    _gshare.update(g, taken);

    Prediction b;
    b.index = p.index2;
    b.taken = p.component2Taken;
    _bimodal.update(b, taken);

    // Chooser trains toward whichever component was right (when they
    // disagreed).
    const bool g_right = g.taken == taken;
    const bool b_right = b.taken == taken;
    std::uint8_t &ch = _chooser[p.chooserIndex];
    if (g_right && !b_right) {
        if (ch < 3)
            ++ch;
    } else if (b_right && !g_right) {
        if (ch > 0)
            --ch;
    }
    if (taken != p.taken)
        ++_stats.mispredicts;
}

void
TournamentPredictor::reset()
{
    _gshare.reset();
    _bimodal.reset();
    for (auto &c : _chooser)
        c = 2;
    _stats.reset();
}

void
TournamentPredictor::save(serial::Writer &w) const
{
    _gshare.save(w);
    _bimodal.save(w);
    w.u64(_chooser.size());
    w.bytes(_chooser.data(), _chooser.size());
    saveStats(w);
}

void
TournamentPredictor::restore(serial::Reader &r)
{
    _gshare.restore(r);
    _bimodal.restore(r);
    if (r.seq(1) != _chooser.size()) {
        r.fail();
        return;
    }
    r.bytes(_chooser.data(), _chooser.size());
    restoreStats(r);
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

const char *
predictorKindName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::kGshare: return "gshare";
      case PredictorKind::kBimodal: return "bimodal";
      case PredictorKind::kTournament: return "tournament";
    }
    return "?";
}

std::unique_ptr<DirectionPredictor>
makePredictor(PredictorKind kind, unsigned entries)
{
    switch (kind) {
      case PredictorKind::kGshare:
        return std::make_unique<GsharePredictor>(entries);
      case PredictorKind::kBimodal:
        return std::make_unique<BimodalPredictor>(entries);
      case PredictorKind::kTournament:
        return std::make_unique<TournamentPredictor>(entries);
    }
    ff_panic("unknown predictor kind");
}

} // namespace branch
} // namespace ff
