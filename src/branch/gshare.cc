#include "branch/gshare.hh"

#include "common/logging.hh"

namespace ff
{
namespace branch
{

GsharePredictor::GsharePredictor(unsigned entries)
    : _table(entries, 1), // weakly not-taken
      _mask(entries - 1)
{
    ff_fatal_if(entries == 0 || (entries & (entries - 1)) != 0,
                "gshare table size must be a power of two");
}

Prediction
GsharePredictor::predict(Addr pc)
{
    ++_stats.lookups;
    Prediction p;
    p.historyBefore = _history;
    // Instruction addresses step by 16 bytes; drop the low bits
    // before folding in history.
    p.index = static_cast<std::uint32_t>(((pc >> 4) ^ _history) & _mask);
    p.taken = _table[p.index] >= 2;
    _history = ((_history << 1) | (p.taken ? 1 : 0)) & _mask;
    return p;
}

void
GsharePredictor::update(const Prediction &p, bool taken)
{
    std::uint8_t &ctr = _table[p.index];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    if (taken != p.taken) {
        ++_stats.mispredicts;
        _history = ((p.historyBefore << 1) | (taken ? 1 : 0)) & _mask;
    }
}

void
GsharePredictor::reset()
{
    for (auto &c : _table)
        c = 1;
    _history = 0;
    _stats.reset();
}

void
GsharePredictor::save(serial::Writer &w) const
{
    w.u64(_table.size());
    w.bytes(_table.data(), _table.size());
    w.u64(_history);
    saveStats(w);
}

void
GsharePredictor::restore(serial::Reader &r)
{
    if (r.seq(1) != _table.size()) {
        r.fail();
        return;
    }
    r.bytes(_table.data(), _table.size());
    _history = r.u64();
    restoreStats(r);
}

} // namespace branch
} // namespace ff
