#include "sim/batch.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <unordered_set>

#include "common/engine_trace.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "sim/result_cache.hh"
#include "sim/snapshot.hh"

namespace ff
{
namespace sim
{

namespace
{

/** Per-process override installed by --jobs; 0 = none. */
std::atomic<unsigned> g_jobsOverride{0};

} // namespace

void
setJobs(unsigned jobs)
{
    g_jobsOverride.store(jobs, std::memory_order_relaxed);
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned o = g_jobsOverride.load(std::memory_order_relaxed);
    if (o != 0)
        return o;
    return defaultJobCount();
}

unsigned
parseJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            ff_fatal_if(i + 1 >= argc, arg, " requires a count");
            value = argv[++i];
        } else {
            argv[out++] = argv[i];
            continue;
        }
        char *end = nullptr;
        const long v = std::strtol(value, &end, 10);
        ff_fatal_if(end == value || *end != '\0' || v <= 0,
                    "bad job count '", value, "'");
        jobs = static_cast<unsigned>(v);
    }
    argc = out;
    argv[argc] = nullptr;
    if (jobs != 0)
        setJobs(jobs);
    return jobs;
}

namespace
{

/**
 * The sampled-aware batch executor: taken whenever any job samples.
 * Three phases over position-stable vectors (deterministic at any
 * thread count):
 *
 *   A. one functional checkpoint pass per (program, normalized
 *      sampling parameters) group — the plan is kind- and
 *      config-independent, so every model replaying one program
 *      shares it;
 *   B. one pool unit per detailed interval replay of every sampled
 *      job (plain jobs ride along as single units), so a lone
 *      sampled job still saturates the workers;
 *   C. serial stitching and cache stores.
 */
std::vector<SimOutcome>
runSampledBatch(std::span<const SimJob> jobs, unsigned threads)
{
    std::vector<SimOutcome> out(jobs.size());

    // ---- cache pass (serial: file reads, no simulation) ------------
    const bool cache = resultCacheEnabled();
    std::vector<std::string> keys(jobs.size());
    std::vector<char> resolved(jobs.size(), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SimJob &j = jobs[i];
        ff_fatal_if(j.sampled.enabled() && j.metrics.enabled(),
                    "sampled jobs cannot collect metrics (observers "
                    "need the whole run)");
        if (!cache || j.metrics.enabled())
            continue;
        keys[i] = resultCacheKey(*j.program, j.kind, j.cfg,
                                 j.maxCycles, j.sampled);
        if (resultCacheLookup(keys[i], out[i]))
            resolved[i] = 1;
    }

    // ---- group sampled jobs by (program, sampling parameters) ------
    struct PlanGroup
    {
        std::size_t first; ///< representative job index
        SampledPlan plan;
    };
    using PlanKey =
        std::tuple<const isa::Program *, std::uint64_t, std::uint64_t,
                   std::uint64_t, std::uint64_t>;
    std::map<PlanKey, std::size_t> groupOf;
    std::vector<PlanGroup> groups;
    std::vector<std::size_t> jobGroup(jobs.size(), SIZE_MAX);
    std::vector<std::size_t> pending; // unresolved jobs, any bin
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (resolved[i])
            continue;
        pending.push_back(i);
        if (!jobs[i].sampled.enabled())
            continue;
        const SampledOptions o = jobs[i].sampled.normalized();
        const PlanKey k{jobs[i].program, o.intervalCycles,
                        o.detailCycles, o.warmupCycles,
                        o.maxIntervals};
        const auto [it, fresh] = groupOf.emplace(k, groups.size());
        if (fresh)
            groups.push_back(PlanGroup{i, SampledPlan{}});
        jobGroup[i] = it->second;
    }

    const unsigned n = resolveJobs(threads);
    ff_trace(trace::kEngine, 0, "BATCH",
             jobs.size() << " jobs (sampled): "
                         << (jobs.size() - pending.size())
                         << " cached, " << groups.size()
                         << " checkpoint plans, " << n << " threads");

    // ---- phase A: one checkpoint pass per plan group ---------------
    auto plan_one = [&](std::size_t g) {
        const SimJob &j = jobs[groups[g].first];
        verifyProgram(*j.program, j.cfg.limits);
        groups[g].plan =
            sampledCheckpointPass(*j.program, j.sampled.normalized());
    };

    // ---- phase B: every interval replay is its own pool unit -------
    struct Unit
    {
        std::size_t job;
        std::size_t interval; ///< SIZE_MAX = plain (whole) job
    };
    std::vector<Unit> units;
    std::vector<std::vector<IntervalMeasure>> measures(jobs.size());
    auto flatten_units = [&]() {
        for (const std::size_t i : pending) {
            if (jobGroup[i] == SIZE_MAX) {
                units.push_back(Unit{i, SIZE_MAX});
                continue;
            }
            const SampledPlan &plan = groups[jobGroup[i]].plan;
            measures[i].resize(plan.checkpoints.size());
            for (std::size_t k = 0; k < plan.checkpoints.size(); ++k)
                units.push_back(Unit{i, k});
        }
    };
    auto unit_one = [&](std::size_t u) {
        const Unit &unit = units[u];
        const SimJob &j = jobs[unit.job];
        if (unit.interval == SIZE_MAX) {
            engine::ScopedSpan span("job");
            out[unit.job] = simulate(*j.program, j.kind, j.cfg,
                                     j.maxCycles, j.metrics);
            return;
        }
        const SampledPlan &plan = groups[jobGroup[unit.job]].plan;
        measures[unit.job][unit.interval] = measureInterval(
            *j.program, j.kind, j.cfg, plan, unit.interval);
    };

    if (n <= 1) {
        for (std::size_t g = 0; g < groups.size(); ++g)
            plan_one(g);
        flatten_units();
        for (std::size_t u = 0; u < units.size(); ++u)
            unit_one(u);
    } else {
        ThreadPool pool(n);
        if (!groups.empty())
            pool.parallelFor(groups.size(), plan_one);
        flatten_units();
        if (!units.empty())
            pool.parallelFor(units.size(), unit_one);
    }

    // ---- phase C: stitch, then store once per content address ------
    for (const std::size_t i : pending) {
        if (jobGroup[i] == SIZE_MAX)
            continue;
        out[i] = stitchSampled(jobs[i].kind, groups[jobGroup[i]].plan,
                               measures[i]);
    }
    if (cache) {
        std::unordered_set<std::string> stored;
        for (const std::size_t i : pending) {
            if (keys[i].empty() || !stored.insert(keys[i]).second)
                continue;
            resultCacheStore(keys[i], out[i]);
        }
    }
    return out;
}

} // namespace

std::vector<SimOutcome>
runBatch(std::span<const SimJob> jobs, unsigned threads)
{
    std::vector<SimOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    for (const SimJob &j : jobs)
        ff_fatal_if(j.program == nullptr, "SimJob without a program");

    bool any_sampled = false;
    for (const SimJob &j : jobs)
        any_sampled = any_sampled || j.sampled.enabled();
    if (any_sampled)
        return runSampledBatch(jobs, threads);

    auto run_one = [&](std::size_t i) {
        engine::ScopedSpan span("job");
        out[i] = simulateCached(jobs[i]);
    };

    const unsigned n = resolveJobs(threads);
    ff_trace(trace::kEngine, 0, "BATCH",
             "run " << jobs.size() << " jobs on " << n << " threads");
    if (n <= 1 || jobs.size() == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            run_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(jobs.size(), run_one);
    return out;
}

SimOutcome
simulateCached(const SimJob &j)
{
    if (j.sampled.enabled()) {
        ff_fatal_if(j.metrics.enabled(),
                    "sampled jobs cannot collect metrics (observers "
                    "need the whole run)");
        // Sampled outcomes are keyed separately: the sampling
        // parameters join the content address, so a sampled estimate
        // can never answer a detailed query (or vice versa).
        if (!resultCacheEnabled()) {
            return simulateSampled(*j.program, j.kind, j.cfg,
                                   j.sampled, j.maxCycles);
        }
        const std::string key = resultCacheKey(
            *j.program, j.kind, j.cfg, j.maxCycles, j.sampled);
        SimOutcome out;
        if (resultCacheLookup(key, out))
            return out;
        out = simulateSampled(*j.program, j.kind, j.cfg, j.sampled,
                              j.maxCycles);
        resultCacheStore(key, out);
        return out;
    }
    // Metered runs feed observers that must see every cycle; the
    // cache would hand back a record without the metrics payload.
    if (j.metrics.enabled() || !resultCacheEnabled()) {
        return simulate(*j.program, j.kind, j.cfg, j.maxCycles,
                        j.metrics);
    }
    const std::string key =
        resultCacheKey(*j.program, j.kind, j.cfg, j.maxCycles);
    SimOutcome out;
    if (resultCacheLookup(key, out))
        return out;
    out = simulate(*j.program, j.kind, j.cfg, j.maxCycles, j.metrics);
    resultCacheStore(key, out);
    return out;
}

namespace
{

/** Builds the row-major workloads x variants job grid. */
std::vector<SimJob>
sweepJobs(std::span<const workloads::Workload> workloads,
          std::span<const SweepVariant> variants,
          std::uint64_t max_cycles)
{
    std::vector<SimJob> jobs;
    jobs.reserve(workloads.size() * variants.size());
    for (const workloads::Workload &w : workloads) {
        for (const SweepVariant &v : variants) {
            SimJob j;
            j.program = &w.program;
            j.kind = v.kind;
            j.cfg = v.cfg;
            j.maxCycles = max_cycles;
            j.metrics = v.metrics;
            j.sampled = v.sampled;
            jobs.push_back(j);
        }
    }
    return jobs;
}

/**
 * The warm-up-sharing executor. Cells fall into three bins: cache
 * hits (resolved before any simulation), metered cells (always run
 * cold under simulate()), and fork candidates — grouped by (program,
 * kind, canonical config, budget) so each group executes the shared
 * warm-up prefix exactly once and every member resumes from the
 * snapshot. All phases index into position-stable vectors, so the
 * outcome order — and every outcome bit — is independent of the job
 * count.
 */
std::vector<SimOutcome>
runForkedBatch(std::span<const SimJob> jobs, const SweepOptions &opts)
{
    std::vector<SimOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    for (const SimJob &j : jobs)
        ff_fatal_if(j.program == nullptr, "SimJob without a program");

    // ---- cache pass (serial: file reads, no simulation) ------------
    const bool cache = resultCacheEnabled();
    std::vector<std::string> keys(jobs.size());
    std::vector<char> resolved(jobs.size(), 0);
    if (cache) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SimJob &j = jobs[i];
            if (j.metrics.enabled())
                continue;
            keys[i] = resultCacheKey(*j.program, j.kind, j.cfg,
                                     j.maxCycles);
            if (resultCacheLookup(keys[i], out[i]))
                resolved[i] = 1;
        }
    }

    // ---- group the fork candidates ---------------------------------
    struct Group
    {
        std::size_t first; ///< representative job index
        WarmupResult warm;
    };
    using GroupKey = std::tuple<const isa::Program *, unsigned,
                                std::uint64_t, std::uint64_t>;
    std::map<GroupKey, std::size_t> groupOf;
    std::vector<Group> groups;
    std::vector<std::size_t> cellGroup(jobs.size(), SIZE_MAX);
    std::vector<std::size_t> pending; // unresolved cells, any bin
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (resolved[i])
            continue;
        pending.push_back(i);
        const SimJob &j = jobs[i];
        if (j.metrics.enabled())
            continue; // cold metered run; no fork
        const GroupKey k{j.program, static_cast<unsigned>(j.kind),
                         canonicalConfigHash(j.cfg), j.maxCycles};
        const auto [it, fresh] = groupOf.emplace(k, groups.size());
        if (fresh)
            groups.push_back(Group{i, WarmupResult{}});
        cellGroup[i] = it->second;
    }

    const unsigned n = resolveJobs(opts.threads);
    ff_trace(trace::kEngine, 0, "SWEEP",
             jobs.size() << " cells: "
                         << (jobs.size() - pending.size())
                         << " cached, " << groups.size()
                         << " warm-up groups, " << n << " threads");

    // ---- phase A: one shared warm-up per group ---------------------
    auto warm_one = [&](std::size_t g) {
        const SimJob &j = jobs[groups[g].first];
        groups[g].warm = runWarmup(*j.program, j.kind, j.cfg,
                                   opts.warmupCycles, j.maxCycles);
    };
    // ---- phase B: fork every member / run metered cells cold -------
    auto finish_one = [&](std::size_t p) {
        const std::size_t i = pending[p];
        const SimJob &j = jobs[i];
        if (cellGroup[i] == SIZE_MAX) {
            engine::ScopedSpan span("job");
            out[i] = simulate(*j.program, j.kind, j.cfg, j.maxCycles,
                              j.metrics);
            return;
        }
        const WarmupResult &warm = groups[cellGroup[i]].warm;
        out[i] = warm.completed
            ? warm.outcome
            : resumeSnapshot(*j.program, j.kind, j.cfg, warm.snap,
                             j.maxCycles);
    };

    if (n <= 1) {
        for (std::size_t g = 0; g < groups.size(); ++g)
            warm_one(g);
        for (std::size_t p = 0; p < pending.size(); ++p)
            finish_one(p);
    } else {
        ThreadPool pool(n);
        if (!groups.empty())
            pool.parallelFor(groups.size(), warm_one);
        if (!pending.empty())
            pool.parallelFor(pending.size(), finish_one);
    }

    // ---- store pass: once per unique content address ---------------
    if (cache) {
        std::unordered_set<std::string> stored;
        for (const std::size_t i : pending) {
            if (keys[i].empty() || !stored.insert(keys[i]).second)
                continue;
            resultCacheStore(keys[i], out[i]);
        }
    }
    return out;
}

} // namespace

std::vector<SimOutcome>
runSweep(std::span<const workloads::Workload> workloads,
         std::span<const SweepVariant> variants, unsigned threads)
{
    return runBatch(
        sweepJobs(workloads, variants, kDefaultMaxCycles), threads);
}

std::vector<SimOutcome>
runSweep(std::span<const workloads::Workload> workloads,
         std::span<const SweepVariant> variants,
         const SweepOptions &opts)
{
    const std::vector<SimJob> jobs =
        sweepJobs(workloads, variants, opts.maxCycles);
    // Sampled cells replay from functional checkpoints — a shared
    // timed warm-up prefix has nothing to fork for them — so a grid
    // with any sampled column routes through the sampled-aware batch
    // engine instead of the warm-up-sharing executor.
    bool any_sampled = false;
    for (const SweepVariant &v : variants)
        any_sampled = any_sampled || v.sampled.enabled();
    if (opts.warmupCycles == 0 || any_sampled)
        return runBatch(jobs, opts.threads);
    return runForkedBatch(jobs, opts);
}

std::vector<FunctionalOutcome>
runFunctionalBatch(std::span<const isa::Program *const> programs,
                   unsigned threads)
{
    std::vector<FunctionalOutcome> out(programs.size());
    if (programs.empty())
        return out;

    auto run_one = [&](std::size_t i) {
        ff_fatal_if(programs[i] == nullptr,
                    "functional batch without a program");
        out[i] = runFunctional(*programs[i]);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || programs.size() == 1) {
        for (std::size_t i = 0; i < programs.size(); ++i)
            run_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(programs.size(), run_one);
    return out;
}

std::vector<workloads::Workload>
buildWorkloadsParallel(std::span<const std::string> names, int scale,
                       workloads::InputSet input, unsigned threads)
{
    std::vector<workloads::Workload> out(names.size());
    if (names.empty())
        return out;

    auto build_one = [&](std::size_t i) {
        engine::ScopedSpan span("build");
        out[i] = workloads::buildWorkload(
            names[i], scale, compiler::SchedulerConfig(), input);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || names.size() == 1) {
        for (std::size_t i = 0; i < names.size(); ++i)
            build_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(names.size(), build_one);
    return out;
}

} // namespace sim
} // namespace ff
