#include "sim/batch.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <unordered_set>

#include "common/engine_trace.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "sim/result_cache.hh"
#include "sim/snapshot.hh"

namespace ff
{
namespace sim
{

namespace
{

/** Per-process override installed by --jobs; 0 = none. */
std::atomic<unsigned> g_jobsOverride{0};

} // namespace

void
setJobs(unsigned jobs)
{
    g_jobsOverride.store(jobs, std::memory_order_relaxed);
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned o = g_jobsOverride.load(std::memory_order_relaxed);
    if (o != 0)
        return o;
    return defaultJobCount();
}

unsigned
parseJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            ff_fatal_if(i + 1 >= argc, arg, " requires a count");
            value = argv[++i];
        } else {
            argv[out++] = argv[i];
            continue;
        }
        char *end = nullptr;
        const long v = std::strtol(value, &end, 10);
        ff_fatal_if(end == value || *end != '\0' || v <= 0,
                    "bad job count '", value, "'");
        jobs = static_cast<unsigned>(v);
    }
    argc = out;
    argv[argc] = nullptr;
    if (jobs != 0)
        setJobs(jobs);
    return jobs;
}

std::vector<SimOutcome>
runBatch(std::span<const SimJob> jobs, unsigned threads)
{
    std::vector<SimOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    for (const SimJob &j : jobs)
        ff_fatal_if(j.program == nullptr, "SimJob without a program");

    auto run_one = [&](std::size_t i) {
        engine::ScopedSpan span("job");
        out[i] = simulateCached(jobs[i]);
    };

    const unsigned n = resolveJobs(threads);
    ff_trace(trace::kEngine, 0, "BATCH",
             "run " << jobs.size() << " jobs on " << n << " threads");
    if (n <= 1 || jobs.size() == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            run_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(jobs.size(), run_one);
    return out;
}

SimOutcome
simulateCached(const SimJob &j)
{
    // Metered runs feed observers that must see every cycle; the
    // cache would hand back a record without the metrics payload.
    if (j.metrics.enabled() || !resultCacheEnabled()) {
        return simulate(*j.program, j.kind, j.cfg, j.maxCycles,
                        j.metrics);
    }
    const std::string key =
        resultCacheKey(*j.program, j.kind, j.cfg, j.maxCycles);
    SimOutcome out;
    if (resultCacheLookup(key, out))
        return out;
    out = simulate(*j.program, j.kind, j.cfg, j.maxCycles, j.metrics);
    resultCacheStore(key, out);
    return out;
}

namespace
{

/** Builds the row-major workloads x variants job grid. */
std::vector<SimJob>
sweepJobs(std::span<const workloads::Workload> workloads,
          std::span<const SweepVariant> variants,
          std::uint64_t max_cycles)
{
    std::vector<SimJob> jobs;
    jobs.reserve(workloads.size() * variants.size());
    for (const workloads::Workload &w : workloads) {
        for (const SweepVariant &v : variants) {
            SimJob j;
            j.program = &w.program;
            j.kind = v.kind;
            j.cfg = v.cfg;
            j.maxCycles = max_cycles;
            j.metrics = v.metrics;
            jobs.push_back(j);
        }
    }
    return jobs;
}

/**
 * The warm-up-sharing executor. Cells fall into three bins: cache
 * hits (resolved before any simulation), metered cells (always run
 * cold under simulate()), and fork candidates — grouped by (program,
 * kind, canonical config, budget) so each group executes the shared
 * warm-up prefix exactly once and every member resumes from the
 * snapshot. All phases index into position-stable vectors, so the
 * outcome order — and every outcome bit — is independent of the job
 * count.
 */
std::vector<SimOutcome>
runForkedBatch(std::span<const SimJob> jobs, const SweepOptions &opts)
{
    std::vector<SimOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    for (const SimJob &j : jobs)
        ff_fatal_if(j.program == nullptr, "SimJob without a program");

    // ---- cache pass (serial: file reads, no simulation) ------------
    const bool cache = resultCacheEnabled();
    std::vector<std::string> keys(jobs.size());
    std::vector<char> resolved(jobs.size(), 0);
    if (cache) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SimJob &j = jobs[i];
            if (j.metrics.enabled())
                continue;
            keys[i] = resultCacheKey(*j.program, j.kind, j.cfg,
                                     j.maxCycles);
            if (resultCacheLookup(keys[i], out[i]))
                resolved[i] = 1;
        }
    }

    // ---- group the fork candidates ---------------------------------
    struct Group
    {
        std::size_t first; ///< representative job index
        WarmupResult warm;
    };
    using GroupKey = std::tuple<const isa::Program *, unsigned,
                                std::uint64_t, std::uint64_t>;
    std::map<GroupKey, std::size_t> groupOf;
    std::vector<Group> groups;
    std::vector<std::size_t> cellGroup(jobs.size(), SIZE_MAX);
    std::vector<std::size_t> pending; // unresolved cells, any bin
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (resolved[i])
            continue;
        pending.push_back(i);
        const SimJob &j = jobs[i];
        if (j.metrics.enabled())
            continue; // cold metered run; no fork
        const GroupKey k{j.program, static_cast<unsigned>(j.kind),
                         canonicalConfigHash(j.cfg), j.maxCycles};
        const auto [it, fresh] = groupOf.emplace(k, groups.size());
        if (fresh)
            groups.push_back(Group{i, WarmupResult{}});
        cellGroup[i] = it->second;
    }

    const unsigned n = resolveJobs(opts.threads);
    ff_trace(trace::kEngine, 0, "SWEEP",
             jobs.size() << " cells: "
                         << (jobs.size() - pending.size())
                         << " cached, " << groups.size()
                         << " warm-up groups, " << n << " threads");

    // ---- phase A: one shared warm-up per group ---------------------
    auto warm_one = [&](std::size_t g) {
        const SimJob &j = jobs[groups[g].first];
        groups[g].warm = runWarmup(*j.program, j.kind, j.cfg,
                                   opts.warmupCycles, j.maxCycles);
    };
    // ---- phase B: fork every member / run metered cells cold -------
    auto finish_one = [&](std::size_t p) {
        const std::size_t i = pending[p];
        const SimJob &j = jobs[i];
        if (cellGroup[i] == SIZE_MAX) {
            engine::ScopedSpan span("job");
            out[i] = simulate(*j.program, j.kind, j.cfg, j.maxCycles,
                              j.metrics);
            return;
        }
        const WarmupResult &warm = groups[cellGroup[i]].warm;
        out[i] = warm.completed
            ? warm.outcome
            : resumeSnapshot(*j.program, j.kind, j.cfg, warm.snap,
                             j.maxCycles);
    };

    if (n <= 1) {
        for (std::size_t g = 0; g < groups.size(); ++g)
            warm_one(g);
        for (std::size_t p = 0; p < pending.size(); ++p)
            finish_one(p);
    } else {
        ThreadPool pool(n);
        if (!groups.empty())
            pool.parallelFor(groups.size(), warm_one);
        if (!pending.empty())
            pool.parallelFor(pending.size(), finish_one);
    }

    // ---- store pass: once per unique content address ---------------
    if (cache) {
        std::unordered_set<std::string> stored;
        for (const std::size_t i : pending) {
            if (keys[i].empty() || !stored.insert(keys[i]).second)
                continue;
            resultCacheStore(keys[i], out[i]);
        }
    }
    return out;
}

} // namespace

std::vector<SimOutcome>
runSweep(std::span<const workloads::Workload> workloads,
         std::span<const SweepVariant> variants, unsigned threads)
{
    return runBatch(
        sweepJobs(workloads, variants, kDefaultMaxCycles), threads);
}

std::vector<SimOutcome>
runSweep(std::span<const workloads::Workload> workloads,
         std::span<const SweepVariant> variants,
         const SweepOptions &opts)
{
    const std::vector<SimJob> jobs =
        sweepJobs(workloads, variants, opts.maxCycles);
    if (opts.warmupCycles == 0)
        return runBatch(jobs, opts.threads);
    return runForkedBatch(jobs, opts);
}

std::vector<FunctionalOutcome>
runFunctionalBatch(std::span<const isa::Program *const> programs,
                   unsigned threads)
{
    std::vector<FunctionalOutcome> out(programs.size());
    if (programs.empty())
        return out;

    auto run_one = [&](std::size_t i) {
        ff_fatal_if(programs[i] == nullptr,
                    "functional batch without a program");
        out[i] = runFunctional(*programs[i]);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || programs.size() == 1) {
        for (std::size_t i = 0; i < programs.size(); ++i)
            run_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(programs.size(), run_one);
    return out;
}

std::vector<workloads::Workload>
buildWorkloadsParallel(std::span<const std::string> names, int scale,
                       workloads::InputSet input, unsigned threads)
{
    std::vector<workloads::Workload> out(names.size());
    if (names.empty())
        return out;

    auto build_one = [&](std::size_t i) {
        engine::ScopedSpan span("build");
        out[i] = workloads::buildWorkload(
            names[i], scale, compiler::SchedulerConfig(), input);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || names.size() == 1) {
        for (std::size_t i = 0; i < names.size(); ++i)
            build_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(names.size(), build_one);
    return out;
}

} // namespace sim
} // namespace ff
