#include "sim/batch.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace ff
{
namespace sim
{

namespace
{

/** Per-process override installed by --jobs; 0 = none. */
std::atomic<unsigned> g_jobsOverride{0};

} // namespace

void
setJobs(unsigned jobs)
{
    g_jobsOverride.store(jobs, std::memory_order_relaxed);
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned o = g_jobsOverride.load(std::memory_order_relaxed);
    if (o != 0)
        return o;
    return defaultJobCount();
}

unsigned
parseJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            ff_fatal_if(i + 1 >= argc, arg, " requires a count");
            value = argv[++i];
        } else {
            argv[out++] = argv[i];
            continue;
        }
        char *end = nullptr;
        const long v = std::strtol(value, &end, 10);
        ff_fatal_if(end == value || *end != '\0' || v <= 0,
                    "bad job count '", value, "'");
        jobs = static_cast<unsigned>(v);
    }
    argc = out;
    argv[argc] = nullptr;
    if (jobs != 0)
        setJobs(jobs);
    return jobs;
}

std::vector<SimOutcome>
runBatch(std::span<const SimJob> jobs, unsigned threads)
{
    std::vector<SimOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    for (const SimJob &j : jobs)
        ff_fatal_if(j.program == nullptr, "SimJob without a program");

    auto run_one = [&](std::size_t i) {
        const SimJob &j = jobs[i];
        out[i] = simulate(*j.program, j.kind, j.cfg, j.maxCycles,
                          j.metrics);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || jobs.size() == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            run_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(jobs.size(), run_one);
    return out;
}

std::vector<SimOutcome>
runSweep(std::span<const workloads::Workload> workloads,
         std::span<const SweepVariant> variants, unsigned threads)
{
    std::vector<SimJob> jobs;
    jobs.reserve(workloads.size() * variants.size());
    for (const workloads::Workload &w : workloads) {
        for (const SweepVariant &v : variants) {
            SimJob j;
            j.program = &w.program;
            j.kind = v.kind;
            j.cfg = v.cfg;
            j.metrics = v.metrics;
            jobs.push_back(j);
        }
    }
    return runBatch(jobs, threads);
}

std::vector<FunctionalOutcome>
runFunctionalBatch(std::span<const isa::Program *const> programs,
                   unsigned threads)
{
    std::vector<FunctionalOutcome> out(programs.size());
    if (programs.empty())
        return out;

    auto run_one = [&](std::size_t i) {
        ff_fatal_if(programs[i] == nullptr,
                    "functional batch without a program");
        out[i] = runFunctional(*programs[i]);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || programs.size() == 1) {
        for (std::size_t i = 0; i < programs.size(); ++i)
            run_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(programs.size(), run_one);
    return out;
}

std::vector<workloads::Workload>
buildWorkloadsParallel(std::span<const std::string> names, int scale,
                       workloads::InputSet input, unsigned threads)
{
    std::vector<workloads::Workload> out(names.size());
    if (names.empty())
        return out;

    auto build_one = [&](std::size_t i) {
        out[i] = workloads::buildWorkload(
            names[i], scale, compiler::SchedulerConfig(), input);
    };

    const unsigned n = resolveJobs(threads);
    if (n <= 1 || names.size() == 1) {
        for (std::size_t i = 0; i < names.size(); ++i)
            build_one(i);
        return out;
    }
    ThreadPool pool(n);
    pool.parallelFor(names.size(), build_one);
    return out;
}

} // namespace sim
} // namespace ff
