#include "sim/machine_config.hh"

#include <sstream>

namespace ff
{
namespace sim
{

cpu::CoreConfig
table1Config()
{
    // CoreConfig's defaults are Table 1; this function exists so the
    // benches say what they mean and tests can detect drift.
    return cpu::CoreConfig();
}

std::string
describeConfig(const cpu::CoreConfig &cfg)
{
    std::ostringstream oss;
    const auto &m = cfg.mem;
    oss << "Functional Units : " << cfg.limits.issueWidth << "-issue, "
        << cfg.limits.aluUnits << " ALU, " << cfg.limits.memUnits
        << " Memory, " << cfg.limits.fpUnits << " FP, "
        << cfg.limits.branchUnits << " Branch\n";
    oss << "L1I Cache        : " << m.l1i.latency << " cycle, "
        << m.l1i.sizeBytes / 1024 << "KB, " << m.l1i.assoc << "-way, "
        << m.l1i.lineBytes << "B lines\n";
    oss << "L1D Cache        : " << m.l1d.latency << " cycle, "
        << m.l1d.sizeBytes / 1024 << "KB, " << m.l1d.assoc << "-way, "
        << m.l1d.lineBytes << "B lines\n";
    oss << "L2 Cache         : " << m.l2.latency << " cycles, "
        << m.l2.sizeBytes / 1024 << "KB, " << m.l2.assoc << "-way, "
        << m.l2.lineBytes << "B lines\n";
    oss << "L3 Cache         : " << m.l3.latency << " cycles, "
        << m.l3.sizeBytes / 1024 << "KB, " << m.l3.assoc << "-way, "
        << m.l3.lineBytes << "B lines\n";
    oss << "Max Outst. Loads : " << m.maxOutstandingLoads << "\n";
    oss << "Main memory      : " << m.memoryLatency << " cycles\n";
    oss << "Branch Predictor : " << cfg.predictorEntries
        << "-entry gshare\n";
    oss << "Coupling Queue   : " << cfg.couplingQueueSize
        << " entry\n";
    oss << "Two-pass ALAT    : "
        << (cfg.alatCapacity == 0
                ? std::string("perfect (no capacity conflicts)")
                : std::to_string(cfg.alatCapacity) + " entries")
        << "\n";
    oss << "Feedback latency : "
        << (cfg.feedbackEnabled
                ? std::to_string(cfg.feedbackLatency) + " cycles"
                : std::string("disabled (inf)"))
        << "\n";
    return oss.str();
}

} // namespace sim
} // namespace ff
