/**
 * @file
 * Canonical machine configurations for the experiments: Table 1 of
 * the paper is the default CoreConfig; helpers render it for bench
 * headers and build the named variants the figures sweep.
 */

#ifndef FF_SIM_MACHINE_CONFIG_HH
#define FF_SIM_MACHINE_CONFIG_HH

#include <string>

#include "cpu/config.hh"

namespace ff
{
namespace sim
{

/** The experimental machine of Table 1. */
cpu::CoreConfig table1Config();

/** Multi-line, Table-1-shaped description of @p cfg. */
std::string describeConfig(const cpu::CoreConfig &cfg);

} // namespace sim
} // namespace ff

#endif // FF_SIM_MACHINE_CONFIG_HH
