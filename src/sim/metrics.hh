/**
 * @file
 * The machine-readable metrics path of the experiment harness: a
 * MetricsSession attaches the profiling/telemetry observer clients to
 * a timed model through the CoreObserver seam, harvests them into a
 * versioned MetricsRecord after the run, and the export helpers
 * render the record — together with the run's aggregate statistics
 * and configuration — as a JSON document matching
 * tools/metrics_schema.json, or as a human-readable top-K
 * stall-attribution table. simulate()/runBatch()/runSweep() accept
 * MetricsOptions and carry the resulting record in the SimOutcome,
 * so a sweep emits one metrics record per (workload, configuration)
 * cell.
 */

#ifndef FF_SIM_METRICS_HH
#define FF_SIM_METRICS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "cpu/config.hh"
#include "cpu/core/model_factory.hh"
#include "cpu/core/pipeview_observer.hh"
#include "cpu/core/profile_observer.hh"
#include "cpu/core/telemetry_observer.hh"

namespace ff
{
namespace cpu
{
class CoreBase;
} // namespace cpu

namespace sim
{

struct SimOutcome;

/**
 * Version of the exported JSON document. Bump on any
 * backwards-incompatible change to the emitted structure, and keep
 * tools/metrics_schema.json in lock step (the bench-smoke gate
 * validates every emitted document against it).
 * v2: optional "sampled" object carrying the sampled-simulation
 * estimator fields (mean/stddev/stderr/CI, interval coverage).
 */
inline constexpr unsigned kMetricsSchemaVersion = 2;

/** What to collect during a run. All off (the default) is free. */
struct MetricsOptions
{
    bool profile = false;   ///< per-instruction attribution
    bool telemetry = false; ///< occupancy histograms + time series
    bool pipeview = false;  ///< per-dynamic-instruction lifecycle events
    Cycle epochCycles = cpu::TelemetryObserver::kDefaultEpochCycles;
    /** Event cap of the pipeview recording (drops past it). */
    std::size_t pipeviewMaxEvents =
        cpu::PipeViewObserver::kDefaultMaxEvents;

    bool enabled() const { return profile || telemetry || pipeview; }
};

/** One harvested run's worth of profile + telemetry data. */
struct MetricsRecord
{
    unsigned schemaVersion = kMetricsSchemaVersion;
    MetricsOptions options;

    /** One active static instruction of the profile table. */
    struct ProfileRow
    {
        InstIdx idx = 0;
        std::int32_t srcLine = -1; ///< assembler provenance, -1 if none
        std::string text;          ///< disassembly
        cpu::InstProfile prof;
    };

    /** Active rows, descending stall cycles. Empty unless profiling. */
    std::vector<ProfileRow> profile;
    /** Cycles pending after the final retirement, by class. */
    std::array<std::uint64_t, cpu::kNumCycleClasses> unattributed{};

    /** Histograms/counters/series. Empty unless telemetry. */
    metrics::Registry telemetry;

    /** Lifecycle event stream in firing order. Empty unless pipeview;
     *  sim::buildPipeTrace() packages it into an ffpipe container. */
    std::vector<cpu::PipeEvent> pipeEvents;
    /** Events dropped past the pipeview cap. */
    std::uint64_t pipeDropped = 0;
};

/**
 * Owns the observer clients for one run: construct, attach() to the
 * model, run the model, then harvest(). Attaching to a functional
 * (non-CoreBase) model is a no-op and harvests an empty record.
 */
class MetricsSession
{
  public:
    /** @p prog and @p cfg must outlive the session. */
    MetricsSession(const isa::Program &prog,
                   const cpu::CoreConfig &cfg,
                   const MetricsOptions &opt);

    MetricsSession(const MetricsSession &) = delete;
    MetricsSession &operator=(const MetricsSession &) = delete;

    /** Builds the requested observers and attaches them to @p model
     *  (no-op for models outside the CoreBase kernel). */
    void attach(cpu::CpuModel &model);

    /** True if attach() found a timed core and observers are live. */
    bool attached() const { return _core != nullptr; }

    /** Closes the collection and moves the data into a record. */
    MetricsRecord harvest();

  private:
    const isa::Program &_prog;
    const cpu::CoreConfig &_cfg;
    MetricsOptions _opt;
    std::unique_ptr<cpu::ProfileObserver> _profile;
    std::unique_ptr<cpu::TelemetryObserver> _telemetry;
    std::unique_ptr<cpu::PipeViewObserver> _pipeview;
    cpu::FanoutObserver _fanout;
    cpu::CoreBase *_core = nullptr;
};

/**
 * Renders the full versioned JSON document for one run:
 * {schemaVersion, program, model, config, run, cycles, branch,
 * twopass, profile, telemetry}. @p outcome must carry the record
 * (outcome.metrics != nullptr).
 */
std::string metricsToJson(const SimOutcome &outcome,
                          const cpu::CoreConfig &cfg,
                          const std::string &program);

/**
 * Human-readable top-@p k stall-attribution table of a profiled
 * record (all active rows when @p k is 0), with the per-class cycle
 * split, deferral and flush counts, and source provenance per row.
 */
std::string renderProfileTable(const MetricsRecord &rec,
                               unsigned k = 20);

} // namespace sim
} // namespace ff

#endif // FF_SIM_METRICS_HH
