/**
 * @file
 * Whole-machine snapshots of a timed model mid-run, and the warm-up
 * fork primitive built on them. A Snapshot captures every bit of
 * simulation state a CoreBase-derived model owns (core kernel, memory
 * hierarchy, predictor, front end, model structures) behind a
 * versioned binary format, keyed by content hashes of the program and
 * the canonicalized configuration so a snapshot can never silently be
 * restored onto the wrong machine.
 *
 * The sweep engine uses runWarmup()/resumeSnapshot() to execute a
 * shared warm-up prefix once per (program, kind, config) group and
 * fork each sweep cell from the saved state; because restore is
 * bit-exact, forked runs are bit-identical to cold ones.
 */

#ifndef FF_SIM_SNAPSHOT_HH
#define FF_SIM_SNAPSHOT_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "sim/harness.hh"

namespace ff
{
namespace sim
{

/**
 * Bumped whenever any component's save()/restore() encoding changes;
 * decodeSnapshot() rejects other versions, and the result cache
 * folds this into its keys so stale on-disk artifacts age out.
 */
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/** A timed model frozen mid-run. */
struct Snapshot
{
    CpuKind kind = CpuKind::kBaseline; ///< model the state belongs to
    std::uint64_t cycle = 0;        ///< resume point
    std::uint64_t programHash = 0;  ///< programContentHash()
    std::uint64_t configHash = 0;   ///< canonicalConfigHash()
    std::vector<std::uint8_t> state; ///< CpuModel::saveState bytes
};

/**
 * Writes every CoreConfig field (group limits, cache geometries,
 * memory timing, predictor, front end, two-pass and run-ahead knobs)
 * into @p w in a fixed order. This is the canonical byte image of a
 * configuration: equal images mean models behave identically, and
 * both the snapshot guard hash and the result-cache key are digests
 * of it.
 */
void canonicalizeConfig(const cpu::CoreConfig &cfg, serial::Writer &w);

/** 64-bit digest of canonicalizeConfig() for snapshot guards. */
std::uint64_t canonicalConfigHash(const cpu::CoreConfig &cfg);

/**
 * Content hash of the full program image: the instruction stream
 * hash plus the initial data image. Program::instStreamHash() alone
 * deliberately ignores data, but simulation results depend on it.
 */
std::uint64_t programContentHash(const isa::Program &prog);

/**
 * Captures @p model (which must advertise supportsSnapshot()) into a
 * Snapshot stamped with the identity hashes of @p prog and @p cfg —
 * pass the same pair the model was constructed from.
 */
Snapshot saveSnapshot(const cpu::CpuModel &model, CpuKind kind,
                      const isa::Program &prog,
                      const cpu::CoreConfig &cfg);

/**
 * Restores @p snap onto a freshly constructed @p model. Fatal if the
 * snapshot belongs to a different (kind, program, config) triple or
 * the state bytes are structurally corrupt: inside the simulator a
 * bad snapshot is a bug, never a recoverable condition.
 */
void restoreSnapshot(cpu::CpuModel &model, const Snapshot &snap,
                     CpuKind kind, const isa::Program &prog,
                     const cpu::CoreConfig &cfg);

/** Serializes @p snap into the versioned container format. */
std::vector<std::uint8_t> encodeSnapshot(const Snapshot &snap);

/**
 * Decodes a container produced by encodeSnapshot(). Non-fatal:
 * returns false (leaving @p out unspecified) on truncation, bad
 * magic, or a foreign format version.
 */
bool decodeSnapshot(const std::vector<std::uint8_t> &bytes,
                    Snapshot &out);

/**
 * Like decodeSnapshot() but fatal with a precise diagnosis. A
 * container written by a different kSnapshotFormatVersion (e.g. a
 * stale on-disk artifact from before a format bump) reports both
 * versions; corruption and bad magic get their own message. Use this
 * wherever a snapshot is trusted input rather than a probe.
 */
Snapshot decodeSnapshotOrDie(const std::vector<std::uint8_t> &bytes);

/** What runWarmup() produced. */
struct WarmupResult
{
    /**
     * True if the program halted (or the cycle budget expired)
     * during warm-up — the run is finished and @p outcome holds its
     * complete result; no fork is possible or needed.
     */
    bool completed = false;
    SimOutcome outcome; ///< valid iff completed
    Snapshot snap;      ///< valid iff !completed
};

/**
 * Runs the first @p warmup_cycles of (@p prog, @p kind, @p cfg) and
 * snapshots the machine, so any number of equal-config runs can fork
 * from the saved state instead of repeating the prefix. The program
 * passes the standard verification wall first.
 *
 * Budget semantics: both parameters count total simulated cycles
 * from cycle 0; the warm-up leg runs min(warmup_cycles, max_cycles)
 * and a prefix that already completes the program (or exhausts the
 * whole budget) reports a finished outcome instead of a snapshot.
 */
WarmupResult runWarmup(const isa::Program &prog, CpuKind kind,
                       const cpu::CoreConfig &cfg,
                       std::uint64_t warmup_cycles,
                       std::uint64_t max_cycles = kDefaultMaxCycles);

/**
 * The fork half: constructs a fresh model, restores @p snap, and
 * runs to completion under the same overall @p max_cycles budget a
 * cold simulate() would have.
 *
 * Budget semantics: @p max_cycles counts *total* simulated cycles
 * from cycle 0, not cycles remaining after the fork — the resumed
 * run gets max_cycles - snap.cycle further cycles, so forked and
 * cold runs of one budget are bit-identical. A budget at or below
 * the snapshot cycle leaves the resumed model no room to advance
 * and is rejected fatally (it could only ever report a spurious
 * timeout).
 */
SimOutcome resumeSnapshot(const isa::Program &prog, CpuKind kind,
                          const cpu::CoreConfig &cfg,
                          const Snapshot &snap,
                          std::uint64_t max_cycles = kDefaultMaxCycles);

} // namespace sim
} // namespace ff

#endif // FF_SIM_SNAPSHOT_HH
