/**
 * @file
 * Plain-text reporting utilities shared by the bench binaries: an
 * aligned table renderer plus formatting helpers for the paper's
 * figure/table shapes.
 */

#ifndef FF_SIM_REPORT_HH
#define FF_SIM_REPORT_HH

#include <string>
#include <vector>

#include "cpu/cycle_classes.hh"
#include "memory/hierarchy.hh"

namespace ff
{
namespace sim
{

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Sets the header row. */
    void header(std::vector<std::string> cells);

    /** Appends a data row. */
    void row(std::vector<std::string> cells);

    /** Renders with padded columns and a rule under the header. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> _rows;
    bool _hasHeader = false;
};

/** Fixed-precision double ("1.234"). */
std::string fixed(double v, int precision = 3);

/** Percentage with one decimal ("42.5%"). */
std::string pct(double fraction);

/**
 * One Figure 6 row: cycle-class breakdown normalized to
 * @p baseline_cycles ("0.12/0.03/... total=0.77").
 */
std::vector<std::string> fig6Cells(const cpu::CycleAccounting &acct,
                                   std::uint64_t baseline_cycles);


} // namespace sim
} // namespace ff

#endif // FF_SIM_REPORT_HH
