/**
 * @file
 * The parallel experiment engine. Every experiment in the repo is a
 * grid of independent, deterministic sim::simulate() calls; runBatch
 * executes such a grid across a work-stealing thread pool and returns
 * the outcomes in submission order, so every table, figure and
 * fingerprint a bench prints is bit-identical to the serial run
 * regardless of the job count.
 *
 * Job-count resolution, everywhere a count of 0 is passed:
 *   1. the per-process override (setJobs(), set by --jobs in benches),
 *   2. else the FF_JOBS environment variable,
 *   3. else the hardware concurrency.
 */

#ifndef FF_SIM_BATCH_HH
#define FF_SIM_BATCH_HH

#include <span>
#include <vector>

#include "sim/harness.hh"
#include "sim/sampled.hh"
#include "workloads/workload.hh"

namespace ff
{
namespace sim
{

/** One simulation of the experiment grid. */
struct SimJob
{
    /** Program to run; must outlive the batch. */
    const isa::Program *program = nullptr;
    CpuKind kind = CpuKind::kBaseline;
    cpu::CoreConfig cfg;
    std::uint64_t maxCycles = kDefaultMaxCycles;
    /** Profile/telemetry collection for this job (off by default;
     *  read-only observers, so aggregate results are unaffected). */
    MetricsOptions metrics{};
    /** Sampled simulation for this job (disabled by default). A
     *  sampled job estimates run time from replayed intervals; see
     *  sim/sampled.hh. Mutually exclusive with metrics collection. */
    SampledOptions sampled{};
};

/**
 * Runs every job, fanned out over @p threads workers (0 = resolved
 * default), and returns outcomes with outcome[i] belonging to
 * jobs[i]. A resolved count of 1 runs inline on the calling thread —
 * "--jobs 1" is genuinely serial, not a one-thread pool.
 *
 * Sampled jobs are decomposed: one functional checkpoint pass per
 * (program, sampling parameters) — shared across model kinds — then
 * every detailed interval replay of every job becomes its own pool
 * unit, so a single sampled job already saturates the workers.
 * Outcomes remain bit-identical at any thread count.
 */
std::vector<SimOutcome> runBatch(std::span<const SimJob> jobs,
                                 unsigned threads = 0);

/** One (model, configuration) column of a sweep grid. */
struct SweepVariant
{
    CpuKind kind = CpuKind::kBaseline;
    cpu::CoreConfig cfg;
    /** Metrics collection for every cell of this column; each
     *  outcome then carries its own MetricsRecord. */
    MetricsOptions metrics{};
    /** Sampled simulation for every cell of this column. */
    SampledOptions sampled{};
};

/**
 * Crosses workloads x variants into one batch (row-major: outcome
 * [w * variants.size() + v] is workload w under variant v) and runs
 * it. The canonical shape of the figure/ablation benches: every
 * workload column-swept over kinds and config overrides.
 */
std::vector<SimOutcome> runSweep(
    std::span<const workloads::Workload> workloads,
    std::span<const SweepVariant> variants, unsigned threads = 0);

/** Execution knobs for the warm-up-sharing sweep engine. */
struct SweepOptions
{
    unsigned threads = 0; ///< 0 = resolved default (see header rules)

    /**
     * Shared warm-up prefix length in cycles; 0 disables forking.
     * Cells agreeing on (program, kind, canonical config) execute
     * the first warmupCycles once, snapshot the machine, and fork
     * every member from the saved state. Restore is bit-exact, so
     * outcomes are bit-identical to cold runs at any job count.
     */
    std::uint64_t warmupCycles = 0;

    /** Per-cell cycle budget (total simulated cycles, warm-up
     *  included), matching simulate()'s parameter. */
    std::uint64_t maxCycles = kDefaultMaxCycles;
};

/**
 * As runSweep(workloads, variants, threads), plus warm-up forking
 * per @p opts. Cells resolved by the result cache skip simulation
 * entirely; cells collecting metrics always run cold and unmetered
 * observers-free cells fork from the group snapshot.
 */
std::vector<SimOutcome> runSweep(
    std::span<const workloads::Workload> workloads,
    std::span<const SweepVariant> variants, const SweepOptions &opts);

/**
 * One cache-aware simulation: consults the result cache (when
 * configured and the job collects no metrics), simulating and
 * storing on a miss. runBatch routes every job through this, so any
 * bench inherits caching by setting FF_CACHE_DIR / --cache-dir.
 */
SimOutcome simulateCached(const SimJob &job);

/** Functional-reference outcomes for a set of programs, in order. */
std::vector<FunctionalOutcome> runFunctionalBatch(
    std::span<const isa::Program *const> programs,
    unsigned threads = 0);

/**
 * Builds the named workloads concurrently (scheduling is itself a
 * measurable serial cost at bench scale); result[i] is names[i].
 */
std::vector<workloads::Workload> buildWorkloadsParallel(
    std::span<const std::string> names, int scale,
    workloads::InputSet input = workloads::InputSet::kDefault,
    unsigned threads = 0);

/**
 * Sets the per-process job-count override (0 clears it back to
 * FF_JOBS / hardware concurrency). Call before spawning batches.
 */
void setJobs(unsigned jobs);

/** Resolves a requested count (0 = default) per the header rules. */
unsigned resolveJobs(unsigned requested);

/**
 * Strips "--jobs N" / "--jobs=N" / "-j N" from argv (adjusting argc)
 * and installs the value via setJobs(). Returns the parsed count, or
 * 0 if the flag was absent. Benches call this first so positional
 * arguments (scale, "alt") keep their meaning.
 */
unsigned parseJobsFlag(int &argc, char **argv);

} // namespace sim
} // namespace ff

#endif // FF_SIM_BATCH_HH
