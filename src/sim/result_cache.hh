/**
 * @file
 * Content-addressed on-disk cache of simulation outcomes. A timed
 * run is a pure function of (program image, model kind, canonical
 * configuration, cycle budget); the cache keys each outcome by a
 * SHA-256 digest of exactly those inputs, so re-running a sweep the
 * simulator has seen before costs a file read instead of millions of
 * simulated cycles.
 *
 * The store is a directory of small binary files (two-level fan-out:
 * <dir>/<key[0:2]>/<key[2:]>.ffr) written atomically via a temp file
 * and rename, safe under concurrent sweeps. Corrupt, truncated or
 * stale-versioned entries are treated as misses — a bad file can
 * never poison an experiment, only slow it down. Runs that collect
 * metrics bypass the cache entirely (observers must see the whole
 * run).
 *
 * Configuration: ffvm --cache-dir=DIR or the FF_CACHE_DIR
 * environment variable enable the cache; FF_CACHE_BYPASS=1 (or
 * setResultCacheBypass) skips lookups but still refreshes entries.
 */

#ifndef FF_SIM_RESULT_CACHE_HH
#define FF_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <string>

#include "sim/harness.hh"
#include "sim/sampled.hh"

namespace ff
{
namespace sim
{

/**
 * Entry-format version, folded into every key and checked in every
 * entry header. Bump whenever the SimOutcome encoding or the key
 * recipe changes; old entries then age out as unreachable keys.
 * v2: sampling parameters joined the key and entries grew an
 * optional SampledEstimate tail.
 */
inline constexpr std::uint32_t kResultCacheVersion = 2;

/** Lifetime counters, for benches and the cache tests. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;    ///< lookups answered from disk
    std::uint64_t misses = 0;  ///< lookups that found no usable entry
    std::uint64_t stores = 0;  ///< entries written
    std::uint64_t errors = 0;  ///< corrupt/stale entries or IO failures
};

/**
 * The content address of one run: a SHA-256 hex digest over the
 * cache version, snapshot format version, model kind, full program
 * image (code and data), canonicalized configuration, cycle budget,
 * and the (normalized) sampling parameters — a sampled estimate and
 * the detailed run it approximates always live under distinct keys.
 */
std::string resultCacheKey(const isa::Program &prog, CpuKind kind,
                           const cpu::CoreConfig &cfg,
                           std::uint64_t max_cycles,
                           const SampledOptions &sampled =
                               SampledOptions());

/**
 * Points the cache at @p dir (created on first store), overriding
 * FF_CACHE_DIR; the empty string disables the cache even when the
 * environment sets one.
 */
void setResultCacheDir(const std::string &dir);

/** Active cache directory ("" = disabled). */
std::string resultCacheDir();

/** True if a cache directory is configured. */
bool resultCacheEnabled();

/**
 * Bypass mode: lookups always miss, stores still happen — i.e.
 * re-measure everything and refresh the cache. Seeded from
 * FF_CACHE_BYPASS (any non-empty value but "0").
 */
void setResultCacheBypass(bool bypass);

/** Current bypass setting (see setResultCacheBypass()). */
bool resultCacheBypass();

/**
 * Loads the outcome stored under @p key into @p out. Counts a hit or
 * a miss; returns false (a miss) when the cache is disabled, in
 * bypass mode, the entry is absent, or the entry fails validation.
 */
bool resultCacheLookup(const std::string &key, SimOutcome &out);

/**
 * Persists @p outcome under @p key (atomic write). Returns false on
 * IO failure — callers lose nothing but future hits. No-op when the
 * cache is disabled or the outcome carries metrics.
 */
bool resultCacheStore(const std::string &key, const SimOutcome &outcome);

/** Snapshot of the lifetime counters. */
ResultCacheStats resultCacheStats();

/** Zeroes the lifetime counters (benches call this per phase). */
void resetResultCacheStats();

// --- verification cache ---------------------------------------------
//
// ffcheck admission results are pure functions of (instruction
// stream, checker version, machine widths), so known-clean verdicts
// persist alongside the simulation outcomes: a warm sweep skips both
// the simulation and the O(program) static analysis in front of it.
// Only *clean* programs are recorded — errors are fatal upstream and
// must stay loud on every run. Counted separately from the result
// cache so cache-behavior tests can tell the two populations apart.

/** Lifetime counters of the verification cache. */
struct VerifyCacheStats
{
    std::uint64_t hits = 0;   ///< known-clean verdicts read from disk
    std::uint64_t misses = 0; ///< programs that had to be re-checked
    std::uint64_t stores = 0; ///< clean verdicts written
    std::uint64_t errors = 0; ///< corrupt entries or IO failures
};

/**
 * Content address of one verification: SHA-256 over the cache
 * version, the ffcheck version, the instruction-stream hash (data
 * image and srcLine provenance excluded — neither feeds a check),
 * and the group limits.
 */
std::string verifyCacheKey(const isa::Program &prog,
                           const isa::GroupLimits &limits);

/** True when @p key is recorded as known-clean (counts hit/miss). */
bool verifyCacheLookup(const std::string &key);

/** Records @p key as known-clean. Same atomicity as the result
 *  store; returns false when disabled or on IO failure. */
bool verifyCacheStore(const std::string &key);

/** Snapshot of the verification-cache counters. */
VerifyCacheStats verifyCacheStats();

/** Zeroes the verification-cache counters. */
void resetVerifyCacheStats();

} // namespace sim
} // namespace ff

#endif // FF_SIM_RESULT_CACHE_HH
