/**
 * @file
 * The experiment harness: runs any CPU model on a program to
 * completion, collects every statistic the paper's tables and
 * figures need, and fingerprints architectural state so benches and
 * tests can cross-check correctness for free. Models are built
 * exclusively through cpu::makeModel — this header deliberately
 * includes no concrete model header.
 */

#ifndef FF_SIM_HARNESS_HH
#define FF_SIM_HARNESS_HH

#include <cstdint>
#include <string>

#include <memory>

#include "cpu/core/functional_result.hh"
#include "cpu/core/model_factory.hh"
#include "cpu/cpu.hh"
#include "cpu/model_stats.hh"
#include "sim/machine_config.hh"
#include "sim/metrics.hh"

namespace ff
{
namespace sim
{

struct SampledEstimate; // sim/sampled.hh

// CpuKind migrated to the cpu core layer with the model factory; the
// sim spelling stays valid for the existing benches and tests.
using cpu::CpuKind;
// Deliberate re-export for sim:: consumers even in TUs that render no
// names. NOLINT(misc-unused-using-decls)
using cpu::cpuKindName; // NOLINT(misc-unused-using-decls)

/** Everything a bench needs from one simulation. */
struct SimOutcome
{
    CpuKind kind;
    cpu::RunResult run;
    cpu::CycleAccounting cycles;
    memory::AccessStats accesses;
    branch::PredictorStats branches;
    cpu::TwoPassStats twopass;       ///< two-pass kinds only
    memory::AlatStats alat;          ///< two-pass kinds only
    cpu::RunaheadStats runahead;     ///< run-ahead kind only
    std::uint64_t regFingerprint = 0;
    std::uint64_t memFingerprint = 0;
    std::uint64_t checksum = 0;      ///< word at the checksum address

    /**
     * Harvested profile/telemetry data; null unless the run asked
     * for metrics. Shared so outcomes stay cheap to copy through the
     * batch engine.
     */
    std::shared_ptr<const MetricsRecord> metrics;

    /**
     * Statistical estimate of a sampled run (sim/sampled.hh); null
     * for detailed runs. When set, run.cycles and the cycle-class
     * accounting are estimates (instruction counts and fingerprints
     * stay exact — they come from the functional pass).
     */
    std::shared_ptr<const SampledEstimate> sampled;
};

/** Default cycle budget: generous, but stops runaway models. */
inline constexpr std::uint64_t kDefaultMaxCycles = 400'000'000ULL;

/**
 * Runs @p kind on @p prog. Fails fatally if the model does not halt
 * within @p max_cycles (a timed model that cannot finish a workload
 * is a simulator bug, not a result). When @p metrics enables
 * collection, the outcome carries the harvested MetricsRecord; the
 * observers are strictly read-only, so every other outcome field is
 * bit-identical to an unmetered run.
 */
SimOutcome simulate(const isa::Program &prog, CpuKind kind,
                    const cpu::CoreConfig &cfg = table1Config(),
                    std::uint64_t max_cycles = kDefaultMaxCycles,
                    const MetricsOptions &metrics = MetricsOptions());

/**
 * The load-time ffcheck verification wall simulate() runs before
 * constructing a model: errors are fatal, results are memoized by
 * (instruction-stream hash, limits). Exposed so alternate entry
 * points into timed simulation (snapshot warm-up/resume) give every
 * program the same admission check exactly once.
 */
void verifyProgram(const isa::Program &prog,
                   const isa::GroupLimits &limits);

/**
 * Harvests the aggregate outcome fields (accounting, access and
 * model statistics, fingerprints) from a completed model run.
 * Shared by simulate() and drivers (ffvm) that construct models
 * directly but still want the standard outcome/export shape.
 */
SimOutcome collectOutcome(cpu::CpuModel &model, CpuKind kind,
                          const cpu::RunResult &run);

/** Functional-reference outcome for equivalence checks. */
struct FunctionalOutcome
{
    cpu::FunctionalResult result;
    std::uint64_t regFingerprint = 0;
    std::uint64_t memFingerprint = 0;
    std::uint64_t checksum = 0;
};

FunctionalOutcome runFunctional(const isa::Program &prog);

} // namespace sim
} // namespace ff

#endif // FF_SIM_HARNESS_HH
