/**
 * @file
 * The experiment harness: runs any CPU model on a program to
 * completion, collects every statistic the paper's tables and
 * figures need, and fingerprints architectural state so benches and
 * tests can cross-check correctness for free.
 */

#ifndef FF_SIM_HARNESS_HH
#define FF_SIM_HARNESS_HH

#include <cstdint>
#include <string>

#include "cpu/baseline/baseline_cpu.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/runahead/runahead_cpu.hh"
#include "cpu/twopass/twopass_cpu.hh"
#include "sim/machine_config.hh"

namespace ff
{
namespace sim
{

/** Which timed model to run. */
enum class CpuKind
{
    kBaseline,       ///< Figure 6 "base"
    kTwoPass,        ///< Figure 6 "2P"
    kTwoPassRegroup, ///< Figure 6 "2Pre"
    kRunahead,       ///< Sec. 2 comparison model
};

const char *cpuKindName(CpuKind k);

/** Everything a bench needs from one simulation. */
struct SimOutcome
{
    CpuKind kind;
    cpu::RunResult run;
    cpu::CycleAccounting cycles;
    memory::AccessStats accesses;
    branch::PredictorStats branches;
    cpu::TwoPassStats twopass;       ///< two-pass kinds only
    memory::AlatStats alat;          ///< two-pass kinds only
    cpu::RunaheadStats runahead;     ///< run-ahead kind only
    std::uint64_t regFingerprint = 0;
    std::uint64_t memFingerprint = 0;
    std::uint64_t checksum = 0;      ///< word at the checksum address
};

/** Default cycle budget: generous, but stops runaway models. */
inline constexpr std::uint64_t kDefaultMaxCycles = 400'000'000ULL;

/**
 * Runs @p kind on @p prog. Fails fatally if the model does not halt
 * within @p max_cycles (a timed model that cannot finish a workload
 * is a simulator bug, not a result).
 */
SimOutcome simulate(const isa::Program &prog, CpuKind kind,
                    const cpu::CoreConfig &cfg = table1Config(),
                    std::uint64_t max_cycles = kDefaultMaxCycles);

/** Functional-reference outcome for equivalence checks. */
struct FunctionalOutcome
{
    cpu::FunctionalCpu::Result result;
    std::uint64_t regFingerprint = 0;
    std::uint64_t memFingerprint = 0;
    std::uint64_t checksum = 0;
};

FunctionalOutcome runFunctional(const isa::Program &prog);

} // namespace sim
} // namespace ff

#endif // FF_SIM_HARNESS_HH
