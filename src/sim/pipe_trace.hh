/**
 * @file
 * The ffpipe trace container: one run's pipeline lifecycle events
 * (PipeViewObserver) plus the engine layer's wall-clock spans
 * (engine::TraceData) behind a compact versioned binary format, with
 * exporters to Chrome trace-event JSON (Perfetto /
 * chrome://tracing) and to the Konata-style ASCII lane rendering
 * shared by `ffvm --pipeview` and `tools/ffview`.
 *
 * Like the snapshot (FSNP) and result-cache (FFRC) formats, the
 * header carries content hashes of the traced program and the
 * canonical configuration, so a trace can always be matched back to
 * the exact machine that produced it. Decoding is non-fatal: a
 * truncated or corrupt file reports failure instead of aborting, and
 * a corrupt length can never trigger a huge allocation (the
 * serial::Reader seq() guard).
 */

#ifndef FF_SIM_PIPE_TRACE_HH
#define FF_SIM_PIPE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/engine_trace.hh"
#include "cpu/core/pipeview_observer.hh"
#include "sim/harness.hh"

namespace ff
{
namespace sim
{

/** Bumped on any incompatible change to the ffpipe encoding. */
inline constexpr std::uint32_t kPipeTraceFormatVersion = 1;

/** One run's worth of pipeline + engine timeline data. */
struct PipeTrace
{
    CpuKind kind = CpuKind::kTwoPass; ///< model that produced it
    std::uint64_t programHash = 0;    ///< programContentHash()
    std::uint64_t configHash = 0;     ///< canonicalConfigHash()
    std::string programName;          ///< display name of the program
    std::uint64_t cycles = 0;         ///< run length in cycles
    std::uint64_t dropped = 0;        ///< events past the observer cap

    /** Static-instruction text for every index appearing in events. */
    struct InstText
    {
        InstIdx idx = 0;
        std::int32_t srcLine = -1; ///< assembler provenance, -1 if none
        std::string text;          ///< disassembly
    };
    std::vector<InstText> text; ///< ascending by idx

    /** The recorded event stream, in firing order. */
    std::vector<cpu::PipeEvent> events;

    /** Engine-layer spans; empty unless engine tracing was on. */
    engine::TraceData engine;
};

/**
 * Assembles a PipeTrace from a finished observed run: stamps the
 * identity hashes of (@p prog, @p cfg), takes ownership of the
 * recorded @p events (a MetricsRecord's pipeEvents), and collects
 * disassembly text for every static instruction they reference.
 */
PipeTrace buildPipeTrace(const isa::Program &prog,
                         const cpu::CoreConfig &cfg, CpuKind kind,
                         std::uint64_t cycles,
                         std::vector<cpu::PipeEvent> events,
                         std::uint64_t dropped,
                         const std::string &program_name);

/** Serializes @p t into the versioned ffpipe container. */
std::vector<std::uint8_t> encodePipeTrace(const PipeTrace &t);

/**
 * Decodes a container produced by encodePipeTrace(). Non-fatal:
 * returns false (leaving @p out unspecified) on truncation, bad
 * magic, a foreign format version, or out-of-range enum/index
 * payloads.
 */
bool decodePipeTrace(const std::vector<std::uint8_t> &bytes,
                     PipeTrace &out);

/**
 * The reconstructed lifetime of one dynamic instruction. Cycle
 * fields are kNeverCycle when the stage never happened (e.g. a
 * pre-executed instruction never replays; an instruction in flight
 * at a conflict flush never retires).
 */
struct PipeLifetime
{
    DynId id = 0;
    InstIdx idx = 0;
    Cycle dispatch = kNeverCycle;
    Cycle replay = kNeverCycle;
    Cycle retire = kNeverCycle;
    Cycle squash = kNeverCycle;
    Cycle feedback = kNeverCycle;  ///< first feedback apply
    cpu::DeferReason defer = cpu::DeferReason::kNone;
    bool deferred = false;
};

/**
 * Replays @p events into per-dynamic-instruction lifetimes, in
 * dispatch order. Resolves group retires to individual instructions
 * through the coupling queue's FIFO program order, and applies the
 * two flush semantics: a conflict flush squashes everything in
 * flight immediately, while a B-DET flush squashes what survives the
 * same-cycle retirement of the pre-branch prefix.
 */
std::vector<PipeLifetime>
buildPipeLifetimes(const std::vector<cpu::PipeEvent> &events);

/**
 * Renders @p t as Chrome trace-event JSON (the "traceEvents" array
 * form) loadable in Perfetto or chrome://tracing: named A-pipe /
 * B-pipe / CQ / feedback tracks for the core (1 simulated cycle = 1
 * microsecond) and one lane per engine thread for the recorded
 * engine spans.
 */
std::string pipeTraceToChromeJson(const PipeTrace &t);

/**
 * Renders the first @p rows dynamic-instruction lifetimes with id >=
 * @p from_id as an ASCII lane diagram (one row per dynamic
 * instruction, columns are cycles relative to its dispatch, capped
 * at @p width columns). Deterministic for a deterministic run: the
 * pipeview smoke test pins a golden rendering.
 */
std::string renderPipeView(const PipeTrace &t, unsigned rows = 32,
                           DynId from_id = 1, unsigned width = 64);

} // namespace sim
} // namespace ff

#endif // FF_SIM_PIPE_TRACE_HH
