#include "sim/sampled.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/engine_trace.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "cpu/functional/functional_cpu.hh"
#include "sim/batch.hh"
#include "sim/snapshot.hh"
#include "workloads/kernels.hh"

namespace ff
{
namespace sim
{

SampledOptions
SampledOptions::normalized() const
{
    SampledOptions n = *this;
    if (!n.enabled())
        return n;
    if (n.detailCycles == 0)
        n.detailCycles = n.intervalCycles / 8 > 0
            ? n.intervalCycles / 8
            : 1;
    if (n.warmupCycles == 0) {
        // Functional warming rebuilds cache and predictor state from
        // the checkpoint's history, so the detailed warm-up only has
        // to fill the pipeline and drain warp transients — about a
        // window's worth of cycles at typical CPI (detailCycles is in
        // slots; the floor covers the front-end depth plus a few
        // memory round trips even for tiny windows).
        n.warmupCycles = n.detailCycles > 512 ? n.detailCycles : 512;
    }
    if (n.maxIntervals == 0)
        n.maxIntervals = 64;
    if (n.maxIntervals < 2)
        n.maxIntervals = 2; // variance needs at least two windows
    return n;
}

SampledPlan
sampledCheckpointPass(const isa::Program &prog,
                      const SampledOptions &opts)
{
    engine::ScopedSpan span("sample-plan");
    SampledPlan plan;
    plan.opts = opts.normalized();
    ff_panic_if(!plan.opts.enabled(),
                "sampledCheckpointPass() without sampling enabled");

    plan.spacing = plan.opts.intervalCycles;

    cpu::FunctionalCpu fcpu(prog);
    cpu::WarmHistory hist;
    fcpu.setWarmHistory(&hist);
    // Stratified placement: one checkpoint lands uniformly at random
    // inside each spacing-sized stratum of the instruction axis
    // instead of exactly on the grid. The synthetic kernels are
    // strongly periodic, and a fixed grid whose spacing resonates
    // with a loop period would sample one phase offset over and over
    // (classic systematic-sampling aliasing). The jitter stream is
    // seeded from the program, so plans — and therefore sampled
    // outcomes — stay bit-reproducible.
    Rng jitter(prog.instStreamHash() ^ plan.spacing);
    cpu::FunctionalResult res;
    // Checkpoint 0 is the entry state and its replay is an *exact*
    // detailed prefix of one full stratum, not a sampled window: the
    // cold-start transient (compulsory misses, predictor training)
    // decays far too sharply for a point sample in stratum 0 to
    // carry it with useful variance. Every later stratum gets one
    // checkpoint at a uniformly jittered position — synthetic
    // kernels are strongly periodic, and a fixed grid whose spacing
    // resonates with a loop period would sample one phase offset
    // over and over (classic systematic-sampling aliasing). The
    // jitter stream is seeded from the program, so plans — and
    // therefore sampled outcomes — stay bit-reproducible.
    std::uint64_t next = 0;
    for (;;) {
        if (next > 0) {
            res = fcpu.run(next);
            if (res.halted)
                break;
        }
        if (plan.checkpoints.size() >= plan.opts.maxIntervals) {
            // Geometric thinning: double the spacing, keeping one
            // checkpoint per doubled stratum. The entry checkpoint
            // always survives — its exact prefix simply grows to the
            // doubled stratum 0, which also swallows old stratum 1,
            // so checkpoint 1 is dropped outright. Each later pair's
            // survivor is a coin flip: always keeping, say, the even
            // index would leave every surviving position jittered
            // within the *first half* of its doubled stratum, and
            // any drifting phase would be systematically
            // oversampled. The memory images are copy-on-write, so
            // a dropped checkpoint only ever cost a page-table copy
            // plus its share of warm history.
            std::vector<SampledCheckpoint> kept;
            kept.reserve(plan.checkpoints.size() / 2 + 1);
            kept.push_back(std::move(plan.checkpoints[0]));
            for (std::size_t i = 2; i < plan.checkpoints.size();
                 i += 2) {
                const std::size_t pick =
                    i + 1 < plan.checkpoints.size()
                        ? i + jitter.nextBelow(2)
                        : i;
                kept.push_back(std::move(plan.checkpoints[pick]));
            }
            plan.checkpoints.swap(kept);
            plan.spacing *= 2;
        }
        SampledCheckpoint cp;
        cp.pc = fcpu.pc();
        cp.instsBefore = res.instsExecuted;
        cp.regs = fcpu.regs();
        cp.mem = fcpu.mem();
        cp.warm = hist.snapshot();
        plan.checkpoints.push_back(std::move(cp));
        // Group granularity may overshoot a boundary; always advance
        // into the first stratum strictly ahead of the current
        // position, then jitter within it.
        const std::uint64_t stratum =
            res.instsExecuted / plan.spacing + 1;
        next = stratum * plan.spacing +
               jitter.nextBelow(plan.spacing);
    }
    plan.functional = res;
    plan.regFingerprint = fcpu.regs().fingerprint();
    plan.memFingerprint = fcpu.mem().fingerprint();
    plan.checksum = fcpu.mem().read64(workloads::kChecksumAddr);
    return plan;
}

IntervalMeasure
measureInterval(const isa::Program &prog, CpuKind kind,
                const cpu::CoreConfig &cfg, const SampledPlan &plan,
                std::size_t index)
{
    engine::ScopedSpan span("sample-replay");
    const SampledOptions &opts = plan.opts;
    const SampledCheckpoint &cp = plan.checkpoints[index];
    const bool prefix = index == 0;
    const bool dbg2 = std::getenv("FF_SAMPLE_DEBUG2") != nullptr;
    auto tick = std::chrono::steady_clock::now();
    auto lap = [&tick]() {
        const auto now = std::chrono::steady_clock::now();
        const auto us = std::chrono::duration_cast<
                            std::chrono::microseconds>(now - tick)
                            .count();
        tick = now;
        return static_cast<long long>(us);
    };
    // Interval 0 is the exact cold-start prefix: a plain cold model
    // measured from the entry for one whole stratum, so the sharply
    // decaying startup transient is accounted exactly instead of
    // point-sampled. Every other interval warps a fresh model to the
    // checkpoint's architectural state and functionally warms its
    // caches and predictor from the recorded history. The warped
    // model is run directly — a snapshot round trip here would be
    // bit-identical (test_sampled verifies the warp+warm
    // fingerprints) and per-interval serialization is the kind of
    // overhead sampling exists to avoid. Warped models skip their
    // data-image load (the warp supplies complete memory, and the
    // checkpoint's copy-on-write image makes that a page-table
    // copy).
    const std::unique_ptr<cpu::CpuModel> model =
        cpu::makeModel(kind, prog, cfg, /*load_image=*/prefix);
    const long long t_make = lap();
    if (!prefix) {
        model->warpArchState(cp.regs, cp.mem, cp.pc);
        model->warmMicroArch(cp.warm);
    }
    const long long t_warm = lap();

    IntervalMeasure m;
    cpu::RunResult pre;
    if (!prefix && opts.warmupCycles > 0)
        pre = model->run(opts.warmupCycles);
    if (pre.halted) {
        // The whole program tail fit inside the warm-up: report the
        // warm-up leg as the (partial) window so the tail is counted.
        m.cycles = pre.cycles;
        m.insts = pre.instsRetired;
        m.groups = pre.groupsRetired;
        m.halted = true;
        m.classCounts = model->cycleAccounting().counts;
        return m;
    }
    const cpu::CycleAccounting warm_acct = model->cycleAccounting();

    // Measured leg: instruction-budgeted. The window ends when the
    // slot target has retired (run() budgets cycles, so chase the
    // target in chunks — each assumes the remaining slots retire at
    // the peak IPC of 2, which caps the overshoot past the slot
    // target while stall-heavy phases still converge in a
    // logarithmic number of re-arms). A fixed slot count keeps the
    // per-window CPI denominator constant: a cycle-budgeted window
    // landing in a stall-heavy phase would retire almost nothing and
    // its tiny denominator would blow up the CPI estimate. The
    // prefix's target is the full stratum width.
    const std::uint64_t target =
        prefix ? plan.spacing : opts.detailCycles;
    cpu::RunResult run = pre;
    std::uint64_t budget = pre.cycles;
    bool need_rearm = !prefix && opts.warmupCycles > 0;
    while (!run.halted &&
           run.instsRetired - pre.instsRetired < target) {
        const std::uint64_t remaining =
            target - (run.instsRetired - pre.instsRetired);
        if (need_rearm)
            model->rearmResume();
        need_rearm = true;
        budget += remaining / 2 < 16 ? 16 : remaining / 2;
        run = model->run(budget);
    }

    if (dbg2) {
        std::fprintf(stderr,
                     "[sample] make=%lld warm=%lld run=%lld "
                     "us, simcycles=%llu\n",
                     t_make, t_warm, lap(),
                     static_cast<unsigned long long>(run.cycles));
    }
    m.cycles = run.cycles - pre.cycles;
    m.insts = run.instsRetired - pre.instsRetired;
    m.groups = run.groupsRetired - pre.groupsRetired;
    m.halted = run.halted;
    for (unsigned c = 0; c < cpu::kNumCycleClasses; ++c) {
        m.classCounts[c] = model->cycleAccounting().counts[c] -
                           warm_acct.counts[c];
    }
    return m;
}

SimOutcome
stitchSampled(CpuKind kind, const SampledPlan &plan,
              const std::vector<IntervalMeasure> &measures)
{
    auto est = std::make_shared<SampledEstimate>();
    est->options = plan.opts;
    est->spacing = plan.spacing;
    est->intervalsTotal = measures.size();
    est->totalInsts = plan.functional.instsExecuted;

    // The estimate splits the run at the first stratum boundary:
    //
    //   cycles  =  prefix  +  (totalInsts - prefixInsts) * meanCPI
    //
    // The prefix (interval 0) is an exact detailed measurement of
    // stratum 0 from the cold entry state, so the cold-start
    // transient contributes its true cycle count. The remaining
    // strata are a systematic sample over the instruction axis:
    // full windows (those the slot budget — not HALT — ended) each
    // contribute one per-window CPI observation, and the unbiased
    // steady-state estimate is their mean (averaging per-window IPC
    // instead would overweight high-IPC phases — instruction-uniform
    // positions land in them more often per cycle of the run).
    // Partial windows still count toward the sampled totals.
    double sum = 0.0, sumsq = 0.0;
    std::array<std::uint64_t, cpu::kNumCycleClasses> prefix_classes{};
    std::array<std::uint64_t, cpu::kNumCycleClasses> rest_classes{};
    std::uint64_t rest_cycles = 0;
    const bool dbg = std::getenv("FF_SAMPLE_DEBUG") != nullptr;
    for (std::size_t i = 0; i < measures.size(); ++i) {
        const IntervalMeasure &m = measures[i];
        if (dbg) {
            std::fprintf(stderr,
                         "[sample] window cycles=%llu insts=%llu "
                         "cpi=%.3f halted=%d%s\n",
                         static_cast<unsigned long long>(m.cycles),
                         static_cast<unsigned long long>(m.insts),
                         m.insts > 0 ? static_cast<double>(m.cycles) /
                                           static_cast<double>(m.insts)
                                     : 0.0,
                         m.halted ? 1 : 0,
                         i == 0 ? " (prefix)" : "");
        }
        est->sampledCycles += m.cycles;
        est->sampledInsts += m.insts;
        if (i == 0) {
            est->prefixCycles = m.cycles;
            est->prefixInsts = m.insts;
            prefix_classes = m.classCounts;
            continue;
        }
        rest_cycles += m.cycles;
        for (unsigned c = 0; c < cpu::kNumCycleClasses; ++c)
            rest_classes[c] += m.classCounts[c];
        // A full window that retired nothing has no finite CPI; it
        // can only arise from a window shorter than one load-miss
        // latency, which normalized() floors protect against.
        if (m.halted || m.insts == 0)
            continue;
        const double cpi = static_cast<double>(m.cycles) /
                           static_cast<double>(m.insts);
        sum += cpi;
        sumsq += cpi * cpi;
        ++est->intervalsMeasured;
    }

    const std::uint64_t rest_insts =
        est->totalInsts > est->prefixInsts
            ? est->totalInsts - est->prefixInsts
            : 0;
    const std::uint64_t n = est->intervalsMeasured;
    if (n > 0 && rest_insts > 0) {
        const double cpi_mean = sum / static_cast<double>(n);
        est->estimatedCycles =
            static_cast<double>(est->prefixCycles) +
            static_cast<double>(rest_insts) * cpi_mean;
        est->ipcMean = est->estimatedCycles > 0.0
            ? static_cast<double>(est->totalInsts) /
                  est->estimatedCycles
            : 0.0;
        if (n > 1) {
            const double var =
                (sumsq - sum * sum / static_cast<double>(n)) /
                static_cast<double>(n - 1);
            const double cpi_sd = var > 0.0 ? std::sqrt(var) : 0.0;
            const double cpi_se =
                cpi_sd / std::sqrt(static_cast<double>(n));
            // Only the sampled part carries estimation error: the
            // cycle-count spread is rest_insts * the CPI spread,
            // mapped to IPC space through the delta method
            // (d(T/C) = -T/C^2).
            const double dcyc_sd =
                cpi_sd * static_cast<double>(rest_insts);
            const double dcyc_se =
                cpi_se * static_cast<double>(rest_insts);
            const double j =
                est->estimatedCycles > 0.0
                    ? static_cast<double>(est->totalInsts) /
                          (est->estimatedCycles * est->estimatedCycles)
                    : 0.0;
            est->ipcStdDev = dcyc_sd * j;
            est->ipcStdErr = dcyc_se * j;
            est->ipcCi95 = 1.96 * est->ipcStdErr;
        }
    } else if (est->sampledCycles > 0 && est->sampledInsts > 0) {
        // No usable steady-state windows: either the program fit
        // inside the prefix (the measurement is exact) or every
        // window halted (the windows jointly cover the entire run).
        // Either way the overall ratio is the estimate, with no
        // sampling spread to report.
        est->ipcMean = static_cast<double>(est->sampledInsts) /
                       static_cast<double>(est->sampledCycles);
        est->estimatedCycles =
            static_cast<double>(est->totalInsts) / est->ipcMean;
    }

    SimOutcome out;
    out.kind = kind;
    out.run.halted = true; // the functional pass completed the program
    out.run.cycles =
        static_cast<Cycle>(std::llround(est->estimatedCycles));
    out.run.instsRetired = plan.functional.instsExecuted;
    out.run.groupsRetired = plan.functional.groupsExecuted;

    // Cycle-class accounting: the prefix's counts are exact; the
    // sampled windows' mix is scaled to the estimated steady-state
    // length. Rounding residue lands in kUnstalled so the classes
    // sum to the estimated cycle count.
    {
        const double rest_scale =
            rest_cycles > 0
                ? (est->estimatedCycles -
                   static_cast<double>(est->prefixCycles)) /
                      static_cast<double>(rest_cycles)
                : 0.0;
        std::uint64_t assigned = 0;
        for (unsigned c = 0; c < cpu::kNumCycleClasses; ++c) {
            out.cycles.counts[c] =
                prefix_classes[c] +
                static_cast<std::uint64_t>(std::llround(
                    static_cast<double>(rest_classes[c]) *
                    rest_scale));
            assigned += out.cycles.counts[c];
        }
        const unsigned un =
            static_cast<unsigned>(cpu::CycleClass::kUnstalled);
        if (assigned > out.run.cycles) {
            const std::uint64_t over = assigned - out.run.cycles;
            out.cycles.counts[un] -= over < out.cycles.counts[un]
                ? over
                : out.cycles.counts[un];
        } else {
            out.cycles.counts[un] += out.run.cycles - assigned;
        }
    }

    out.regFingerprint = plan.regFingerprint;
    out.memFingerprint = plan.memFingerprint;
    out.checksum = plan.checksum;
    out.sampled = std::move(est);
    return out;
}

SimOutcome
simulateSampled(const isa::Program &prog, CpuKind kind,
                const cpu::CoreConfig &cfg,
                const SampledOptions &sampled,
                std::uint64_t max_cycles, unsigned threads)
{
    (void)max_cycles; // cache-key parity only; see header
    const SampledOptions opts = sampled.normalized();
    ff_fatal_if(!opts.enabled(),
                "simulateSampled() without --sample parameters");
    verifyProgram(prog, cfg.limits);

    const bool dbg = std::getenv("FF_SAMPLE_DEBUG") != nullptr;
    const auto t0 = std::chrono::steady_clock::now();
    const SampledPlan plan = sampledCheckpointPass(prog, opts);
    const auto t1 = std::chrono::steady_clock::now();

    std::vector<IntervalMeasure> measures(plan.checkpoints.size());
    auto measure_one = [&](std::size_t i) {
        const auto mt0 = std::chrono::steady_clock::now();
        measures[i] = measureInterval(prog, kind, cfg, plan, i);
        if (std::getenv("FF_SAMPLE_DEBUG2") != nullptr) {
            const auto mt1 = std::chrono::steady_clock::now();
            std::fprintf(stderr, "[sample] interval %zu total=%lldus\n",
                         i,
                         static_cast<long long>(
                             std::chrono::duration_cast<
                                 std::chrono::microseconds>(mt1 - mt0)
                                 .count()));
        }
    };
    const unsigned n = resolveJobs(threads);
    if (n <= 1 || plan.checkpoints.size() <= 1) {
        for (std::size_t i = 0; i < plan.checkpoints.size(); ++i)
            measure_one(i);
    } else {
        ThreadPool pool(n);
        pool.parallelFor(plan.checkpoints.size(), measure_one);
    }
    if (dbg) {
        const auto t2 = std::chrono::steady_clock::now();
        const auto us = [](auto a, auto b) {
            return std::chrono::duration_cast<
                       std::chrono::microseconds>(b - a)
                .count();
        };
        std::fprintf(stderr,
                     "[sample] plan=%lldus replay=%lldus "
                     "intervals=%zu\n",
                     static_cast<long long>(us(t0, t1)),
                     static_cast<long long>(us(t1, t2)),
                     plan.checkpoints.size());
    }
    return stitchSampled(kind, plan, measures);
}

} // namespace sim
} // namespace ff
