#include "sim/snapshot.hh"

#include <cstring>
#include <memory>

#include "common/engine_trace.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace ff
{
namespace sim
{

namespace
{

/** Container magic: "FSNP" (flea-flicker snapshot). */
constexpr std::uint32_t kSnapshotMagic = serial::tag("FSNP");

/** First 8 digest bytes as a little-endian 64-bit guard hash. */
std::uint64_t
digest64(Sha256 &h)
{
    const std::array<std::uint8_t, 32> d = h.digest();
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
    return v;
}

} // namespace

void
canonicalizeConfig(const cpu::CoreConfig &cfg, serial::Writer &w)
{
    // Field order is frozen; append new fields at the end and bump
    // kSnapshotFormatVersion when the machine grows new knobs.
    w.u32(cfg.limits.issueWidth);
    w.u32(cfg.limits.aluUnits);
    w.u32(cfg.limits.memUnits);
    w.u32(cfg.limits.fpUnits);
    w.u32(cfg.limits.branchUnits);

    for (const memory::CacheGeometry *g :
         {&cfg.mem.l1i, &cfg.mem.l1d, &cfg.mem.l2, &cfg.mem.l3}) {
        w.u64(g->sizeBytes);
        w.u32(g->assoc);
        w.u32(g->lineBytes);
        w.u32(g->latency);
    }
    w.u32(cfg.mem.memoryLatency);
    w.u32(cfg.mem.maxOutstandingLoads);
    w.u32(cfg.mem.prefetchDegree);

    w.u32(cfg.predictorEntries);
    w.u32(static_cast<std::uint32_t>(cfg.predictorKind));
    w.u32(cfg.frontEndDepth);
    w.u32(cfg.fetchQueueGroups);
    w.u32(cfg.branchResolveDelay);

    w.u32(cfg.couplingQueueSize);
    w.u32(cfg.alatCapacity);
    w.u32(cfg.storeBufferSize);
    w.u32(cfg.feedbackLatency);
    w.boolean(cfg.feedbackEnabled);
    w.boolean(cfg.regroup);
    w.boolean(cfg.aPipeStallsOnAnticipable);
    w.boolean(cfg.aPipeHasFpUnits);
    w.u32(cfg.aPipeThrottlePercent);
    w.u32(cfg.bFlushRepairPenalty);
    w.boolean(cfg.wawStall);
    w.u32(cfg.selfCheckInterval);
    w.u32(cfg.runaheadEntryDelay);
}

std::uint64_t
canonicalConfigHash(const cpu::CoreConfig &cfg)
{
    serial::Writer w;
    canonicalizeConfig(cfg, w);
    Sha256 h;
    h.update(w.buffer().data(), w.buffer().size());
    return digest64(h);
}

std::uint64_t
programContentHash(const isa::Program &prog)
{
    serial::Writer w;
    w.u64(prog.instStreamHash());
    // instStreamHash() covers code only; results also depend on the
    // initial data image, so fold the pages in (std::map iterates in
    // address order — deterministic).
    for (const auto &[base, bytes] : prog.dataImage().pages()) {
        w.u64(base);
        w.u64(bytes.size());
        w.bytes(bytes.data(), bytes.size());
    }
    Sha256 h;
    h.update(w.buffer().data(), w.buffer().size());
    return digest64(h);
}

Snapshot
saveSnapshot(const cpu::CpuModel &model, CpuKind kind,
             const isa::Program &prog, const cpu::CoreConfig &cfg)
{
    ff_fatal_if(!model.supportsSnapshot(), "model ", cpuKindName(kind),
                " does not support snapshots");
    Snapshot snap;
    snap.kind = kind;
    snap.cycle = model.currentCycle();
    snap.programHash = programContentHash(prog);
    snap.configHash = canonicalConfigHash(cfg);
    serial::Writer w;
    model.saveState(w);
    snap.state = w.take();
    return snap;
}

void
restoreSnapshot(cpu::CpuModel &model, const Snapshot &snap,
                CpuKind kind, const isa::Program &prog,
                const cpu::CoreConfig &cfg)
{
    ff_fatal_if(!model.supportsSnapshot(), "model ", cpuKindName(kind),
                " does not support snapshots");
    ff_fatal_if(snap.kind != kind, "snapshot of model ",
                cpuKindName(snap.kind), " cannot restore a ",
                cpuKindName(kind), " model");
    ff_fatal_if(snap.programHash != programContentHash(prog),
                "snapshot belongs to a different program than '",
                prog.name(), "'");
    ff_fatal_if(snap.configHash != canonicalConfigHash(cfg),
                "snapshot belongs to a different machine "
                "configuration");
    serial::Reader r(snap.state);
    model.restoreState(r);
    ff_fatal_if(!r.ok(), "structurally corrupt snapshot for '",
                prog.name(), "' (", cpuKindName(kind), ", cycle ",
                snap.cycle, ")");
    ff_fatal_if(model.currentCycle() != snap.cycle,
                "snapshot restore desynchronized: header cycle ",
                snap.cycle, " vs model cycle ", model.currentCycle());
}

std::vector<std::uint8_t>
encodeSnapshot(const Snapshot &snap)
{
    serial::Writer w;
    w.u32(kSnapshotMagic);
    w.u32(kSnapshotFormatVersion);
    w.u8(static_cast<std::uint8_t>(snap.kind));
    w.u64(snap.cycle);
    w.u64(snap.programHash);
    w.u64(snap.configHash);
    w.u64(snap.state.size());
    w.bytes(snap.state.data(), snap.state.size());
    return w.take();
}

namespace
{

enum class DecodeError
{
    kNone,
    kBadMagic,
    kBadVersion,
    kMalformed, ///< truncated, trailing bytes, or bad kind
};

DecodeError
decodeSnapshotImpl(const std::vector<std::uint8_t> &bytes,
                   Snapshot &out, std::uint32_t &version)
{
    serial::Reader r(bytes);
    const std::uint32_t magic = r.u32();
    version = r.u32();
    if (!r.ok())
        return DecodeError::kMalformed;
    if (magic != kSnapshotMagic)
        return DecodeError::kBadMagic;
    if (version != kSnapshotFormatVersion)
        return DecodeError::kBadVersion;
    const std::uint8_t kind = r.u8();
    if (kind >= cpu::kNumCpuKinds)
        return DecodeError::kMalformed;
    out.kind = static_cast<CpuKind>(kind);
    out.cycle = r.u64();
    out.programHash = r.u64();
    out.configHash = r.u64();
    const std::size_t n = r.seq(1);
    out.state.resize(n);
    r.bytes(out.state.data(), n);
    return r.ok() && r.atEnd() ? DecodeError::kNone
                               : DecodeError::kMalformed;
}

} // namespace

bool
decodeSnapshot(const std::vector<std::uint8_t> &bytes, Snapshot &out)
{
    std::uint32_t version = 0;
    return decodeSnapshotImpl(bytes, out, version) ==
           DecodeError::kNone;
}

Snapshot
decodeSnapshotOrDie(const std::vector<std::uint8_t> &bytes)
{
    Snapshot out;
    std::uint32_t version = 0;
    const DecodeError err = decodeSnapshotImpl(bytes, out, version);
    ff_fatal_if(err == DecodeError::kBadVersion,
                "snapshot container has format version ", version,
                " but this build reads version ",
                kSnapshotFormatVersion,
                "; regenerate the snapshot (stale artifact?)");
    ff_fatal_if(err == DecodeError::kBadMagic,
                "not a snapshot container (bad magic)");
    ff_fatal_if(err != DecodeError::kNone,
                "snapshot container is truncated or corrupt");
    return out;
}

WarmupResult
runWarmup(const isa::Program &prog, CpuKind kind,
          const cpu::CoreConfig &cfg, std::uint64_t warmup_cycles,
          std::uint64_t max_cycles)
{
    engine::ScopedSpan span("warmup");
    verifyProgram(prog, cfg.limits);
    const std::unique_ptr<cpu::CpuModel> model =
        cpu::makeModel(kind, prog, cfg);

    WarmupResult res;
    const std::uint64_t budget =
        warmup_cycles < max_cycles ? warmup_cycles : max_cycles;
    const cpu::RunResult run = model->run(budget);
    if (run.halted || budget >= max_cycles) {
        // The whole run fit inside the warm-up prefix: report it as
        // a finished outcome (fatal on timeout, matching simulate()).
        ff_fatal_if(!run.halted, "model ", cpuKindName(kind),
                    " did not halt within ", max_cycles,
                    " cycles on '", prog.name(), "'");
        res.completed = true;
        res.outcome = collectOutcome(*model, kind, run);
        return res;
    }
    res.snap = saveSnapshot(*model, kind, prog, cfg);
    return res;
}

SimOutcome
resumeSnapshot(const isa::Program &prog, CpuKind kind,
               const cpu::CoreConfig &cfg, const Snapshot &snap,
               std::uint64_t max_cycles)
{
    engine::ScopedSpan span("fork-resume");
    // The budget is total simulated cycles (see header): resuming a
    // cycle-N snapshot under a budget <= N cannot advance the model
    // a single cycle and would misreport as a timeout below.
    ff_fatal_if(max_cycles <= snap.cycle,
                "resumeSnapshot() budget of ", max_cycles,
                " cycles does not reach past the snapshot's warm-up "
                "point (cycle ", snap.cycle,
                "); the budget counts total simulated cycles, not "
                "cycles after the fork");
    verifyProgram(prog, cfg.limits);
    const std::unique_ptr<cpu::CpuModel> model =
        cpu::makeModel(kind, prog, cfg);
    restoreSnapshot(*model, snap, kind, prog, cfg);

    const cpu::RunResult run = model->run(max_cycles);
    ff_fatal_if(!run.halted, "model ", cpuKindName(kind),
                " did not halt within ", max_cycles, " cycles on '",
                prog.name(), "' (resumed from cycle ", snap.cycle,
                ")");
    return collectOutcome(*model, kind, run);
}

} // namespace sim
} // namespace ff
