#include "sim/harness.hh"

#include <memory>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace ff
{
namespace sim
{

const char *
cpuKindName(CpuKind k)
{
    switch (k) {
      case CpuKind::kBaseline: return "base";
      case CpuKind::kTwoPass: return "2P";
      case CpuKind::kTwoPassRegroup: return "2Pre";
      case CpuKind::kRunahead: return "runahead";
    }
    return "?";
}

SimOutcome
simulate(const isa::Program &prog, CpuKind kind,
         const cpu::CoreConfig &cfg, std::uint64_t max_cycles)
{
    SimOutcome out;
    out.kind = kind;

    cpu::CoreConfig run_cfg = cfg;
    if (kind == CpuKind::kTwoPassRegroup)
        run_cfg.regroup = true;

    std::unique_ptr<cpu::CpuModel> model;
    switch (kind) {
      case CpuKind::kBaseline:
        model = std::make_unique<cpu::BaselineCpu>(prog, run_cfg);
        break;
      case CpuKind::kTwoPass:
      case CpuKind::kTwoPassRegroup:
        model = std::make_unique<cpu::TwoPassCpu>(prog, run_cfg);
        break;
      case CpuKind::kRunahead:
        model = std::make_unique<cpu::RunaheadCpu>(prog, run_cfg);
        break;
    }

    out.run = model->run(max_cycles);
    ff_fatal_if(!out.run.halted, "model ", cpuKindName(kind),
                " did not halt within ", max_cycles, " cycles on '",
                prog.name(), "'");

    out.cycles = model->cycleAccounting();
    out.accesses = model->hierarchy().accessStats();
    out.branches = model->predictor().stats();
    out.regFingerprint = model->archRegs().fingerprint();
    out.memFingerprint = model->memState().fingerprint();
    out.checksum = model->memState().read64(workloads::kChecksumAddr);

    if (auto *tp = dynamic_cast<cpu::TwoPassCpu *>(model.get())) {
        out.twopass = tp->stats();
        out.alat = tp->alatStats();
    }
    if (auto *ra = dynamic_cast<cpu::RunaheadCpu *>(model.get()))
        out.runahead = ra->runaheadStats();
    return out;
}

FunctionalOutcome
runFunctional(const isa::Program &prog)
{
    FunctionalOutcome out;
    cpu::FunctionalCpu ref(prog);
    out.result = ref.run();
    ff_fatal_if(!out.result.halted, "functional reference did not halt "
                                    "on '",
                prog.name(), "'");
    out.regFingerprint = ref.regs().fingerprint();
    out.memFingerprint = ref.mem().fingerprint();
    out.checksum = ref.mem().read64(workloads::kChecksumAddr);
    return out;
}

} // namespace sim
} // namespace ff
