#include "sim/harness.hh"

#include <memory>
#include <mutex>
#include <unordered_set>

#include "analysis/ffcheck.hh"
#include "common/logging.hh"
#include "cpu/functional/functional_cpu.hh"
#include "sim/result_cache.hh"
#include "workloads/kernels.hh"

namespace ff
{
namespace sim
{

namespace
{

/**
 * Memo of programs that already passed the verification wall, keyed
 * by (instruction-stream hash, group limits): every bench simulates
 * the same program under 3-4 models and ffcheck's result depends only
 * on the code and the limits, so re-verification is pure overhead.
 * Mutex-guarded because runBatch() verifies from worker threads.
 * Failures are fatal and therefore never cached.
 */
std::mutex g_verifiedMu;
std::unordered_set<std::uint64_t> g_verified;

std::uint64_t
verifyKey(const isa::Program &prog, const isa::GroupLimits &limits)
{
    std::uint64_t h = prog.instStreamHash();
    const unsigned fields[] = {limits.issueWidth, limits.aluUnits,
                               limits.memUnits, limits.fpUnits,
                               limits.branchUnits};
    for (unsigned f : fields) {
        h ^= f + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    }
    return h;
}

} // namespace

/**
 * Load-time verification wall: every program entering the harness is
 * run through the ffcheck static verifier, so a workload (bundled or
 * user-supplied) that violates the EPIC structural invariants fails
 * fast with diagnostics instead of misbehaving mid-simulation.
 * Warnings (e.g. reads of architectural zero) are tolerated here;
 * errors are simulator-input bugs and fatal. Results are memoized by
 * program content so repeated simulate() calls on one program (the
 * base/2P/2Pre pattern of every bench) verify once.
 */
void
verifyProgram(const isa::Program &prog, const isa::GroupLimits &limits)
{
    const std::uint64_t key = verifyKey(prog, limits);
    {
        std::lock_guard<std::mutex> lk(g_verifiedMu);
        if (g_verified.count(key) != 0)
            return;
    }
    // Second tier: the on-disk verification cache (keyed by the
    // ffcheck version as well, so a checker upgrade re-verifies
    // everything). Only known-clean verdicts live there.
    const std::string ckey = verifyCacheKey(prog, limits);
    if (verifyCacheLookup(ckey)) {
        std::lock_guard<std::mutex> lk(g_verifiedMu);
        g_verified.insert(key);
        return;
    }
    analysis::CheckOptions opts;
    opts.limits = limits;
    opts.reportPressure = false;
    const analysis::Report rep = analysis::check(prog, opts);
    ff_fatal_if(rep.errors() > 0, "ffcheck rejected program '",
                prog.name(), "':\n",
                analysis::render(rep, prog.name()));
    verifyCacheStore(ckey);
    std::lock_guard<std::mutex> lk(g_verifiedMu);
    g_verified.insert(key);
}

SimOutcome
collectOutcome(cpu::CpuModel &model, CpuKind kind,
               const cpu::RunResult &run)
{
    SimOutcome out;
    out.kind = kind;
    out.run = run;
    out.cycles = model.cycleAccounting();
    out.accesses = model.hierarchy().accessStats();
    out.branches = model.predictor().stats();
    out.regFingerprint = model.archRegs().fingerprint();
    out.memFingerprint = model.memState().fingerprint();
    out.checksum = model.memState().read64(workloads::kChecksumAddr);

    cpu::ModelStats ms;
    model.collectStats(ms);
    out.twopass = ms.twopass;
    out.alat = ms.alat;
    out.runahead = ms.runahead;
    return out;
}

SimOutcome
simulate(const isa::Program &prog, CpuKind kind,
         const cpu::CoreConfig &cfg, std::uint64_t max_cycles,
         const MetricsOptions &metrics)
{
    verifyProgram(prog, cfg.limits);

    // The factory owns the kind-to-model mapping (including the
    // regroup override for kTwoPassRegroup).
    const std::unique_ptr<cpu::CpuModel> model =
        cpu::makeModel(kind, prog, cfg);

    MetricsSession session(prog, cfg, metrics);
    session.attach(*model);

    const cpu::RunResult run = model->run(max_cycles);
    ff_fatal_if(!run.halted, "model ", cpuKindName(kind),
                " did not halt within ", max_cycles, " cycles on '",
                prog.name(), "'");

    SimOutcome out = collectOutcome(*model, kind, run);
    if (session.attached()) {
        out.metrics = std::make_shared<const MetricsRecord>(
            session.harvest());
    }
    return out;
}

FunctionalOutcome
runFunctional(const isa::Program &prog)
{
    FunctionalOutcome out;
    verifyProgram(prog, isa::GroupLimits());
    cpu::FunctionalCpu ref(prog);
    out.result = ref.run();
    ff_fatal_if(!out.result.halted, "functional reference did not halt "
                                    "on '",
                prog.name(), "'");
    out.regFingerprint = ref.regs().fingerprint();
    out.memFingerprint = ref.mem().fingerprint();
    out.checksum = ref.mem().read64(workloads::kChecksumAddr);
    return out;
}

} // namespace sim
} // namespace ff
