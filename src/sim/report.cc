#include "sim/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ff
{
namespace sim
{

void
TextTable::header(std::vector<std::string> cells)
{
    _rows.insert(_rows.begin(), std::move(cells));
    _hasHeader = true;
}

void
TextTable::row(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    for (const auto &r : _rows) {
        if (widths.size() < r.size())
            widths.resize(r.size(), 0);
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }
    std::ostringstream oss;
    for (std::size_t i = 0; i < _rows.size(); ++i) {
        const auto &r = _rows[i];
        for (std::size_t c = 0; c < r.size(); ++c) {
            oss << r[c];
            if (c + 1 < r.size()) {
                oss << std::string(widths[c] - r[c].size() + 2, ' ');
            }
        }
        oss << '\n';
        if (i == 0 && _hasHeader) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            oss << std::string(total, '-') << '\n';
        }
    }
    return oss.str();
}

std::string
fixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
pct(double fraction)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

std::vector<std::string>
fig6Cells(const cpu::CycleAccounting &acct,
          std::uint64_t baseline_cycles)
{
    std::vector<std::string> cells;
    const double norm =
        baseline_cycles == 0 ? 1.0
                             : static_cast<double>(baseline_cycles);
    for (unsigned i = 0; i < cpu::kNumCycleClasses; ++i) {
        cells.push_back(
            fixed(static_cast<double>(acct.counts[i]) / norm));
    }
    cells.push_back(
        fixed(static_cast<double>(acct.total()) / norm));
    return cells;
}


} // namespace sim
} // namespace ff
