/**
 * @file
 * Sampled simulation: snapshot-interval sampling with parallel
 * detailed replay and statistical stitching (SMARTS-style systematic
 * sampling adapted to this simulator's checkpoint machinery).
 *
 * A sampled run replaces one long detailed simulation with three
 * phases:
 *
 *  1. Checkpoint pass — the untimed functional reference executes the
 *     whole program once, dropping architectural checkpoints
 *     (register file + memory + resume PC) every intervalCycles
 *     retired slots. This pass is 1-2 orders of magnitude faster than
 *     detailed simulation and also yields the exact dynamic
 *     instruction count and final architectural fingerprints.
 *  2. Parallel detailed replay — interval 0 re-runs stratum 0 from
 *     the cold entry state, measuring the startup transient exactly;
 *     for every other checkpoint, a fresh timed model is warped to
 *     the checkpoint's architectural state, its caches and predictor
 *     are functionally warmed by replaying the checkpoint's recorded
 *     access history (see cpu/warm_history.hh), run for warmupCycles
 *     of detailed warm-up to fill the pipeline, and then measured
 *     for detailCycles retired slots. Intervals are independent, so
 *     they fan out across the work-stealing thread pool.
 *  3. Stitching — the estimate is the exact prefix plus the mean
 *     per-window CPI times the remaining instructions, with
 *     standard-error and 95%-confidence fields; cycle-class
 *     accounting is the exact prefix plus the measured windows' mix
 *     scaled to the estimated steady-state length.
 *
 * The estimate is carried on SimOutcome::sampled, keyed separately in
 * the result cache (the sampling parameters join the key), and
 * exported in the versioned metrics JSON under "sampled".
 */

#ifndef FF_SIM_SAMPLED_HH
#define FF_SIM_SAMPLED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/harness.hh"

namespace ff
{
namespace sim
{

/**
 * Sampling configuration. intervalCycles == 0 (the default) means
 * detailed simulation; any other value enables sampling. Fields left
 * at 0 are derived by normalized(): detail = interval/8 (min 1),
 * warm-up = detail (min 512), maxIntervals = 64.
 *
 * Units: intervalCycles is the checkpoint spacing in *retired
 * instruction slots* of the functional pass (the pass has no clock; a
 * slot is its closest cycle proxy), and detailCycles is the measured
 * window length, also in retired slots — the window is a fixed-size
 * slice of the instruction axis, which keeps the per-window CPI
 * denominator constant (see stitchSampled()). Only warmupCycles is in
 * *detailed-model cycles*: warm-up flushes time-domain transients
 * (pipeline fill, in-flight misses), so its natural budget is time.
 */
struct SampledOptions
{
    std::uint64_t intervalCycles = 0; ///< checkpoint spacing (slots)
    std::uint64_t detailCycles = 0;   ///< measured window (slots)
    std::uint64_t warmupCycles = 0;   ///< detailed warm-up (cycles)
    std::uint64_t maxIntervals = 0;   ///< checkpoint count cap

    bool enabled() const { return intervalCycles != 0; }

    /**
     * Fills derived defaults (see the class comment) and floors
     * maxIntervals at 2 — a single window has no variance estimate.
     * Result-cache keys and plan sharing both use the normalized
     * form, so equivalent spellings coincide.
     */
    SampledOptions normalized() const;
};

/** The statistical result of a sampled run (SimOutcome::sampled). */
struct SampledEstimate
{
    SampledOptions options;  ///< normalized sampling configuration

    std::uint64_t spacing = 0; ///< final stratum width after thinning
    std::uint64_t intervalsTotal = 0;    ///< checkpoints replayed
    std::uint64_t intervalsMeasured = 0; ///< full steady-state windows
    std::uint64_t sampledCycles = 0; ///< detailed cycles measured
    std::uint64_t sampledInsts = 0;  ///< slots retired in the windows
    std::uint64_t totalInsts = 0;    ///< exact (functional pass)
    /**
     * The exact cold-start prefix (interval 0): stratum 0 measured
     * detailed from the entry state, so the startup transient enters
     * the estimate at its true cost instead of being point-sampled.
     */
    std::uint64_t prefixCycles = 0;
    std::uint64_t prefixInsts = 0;

    /**
     * The estimator works in CPI space (checkpoints are instruction-
     * spaced, so mean per-window CPI is the unbiased steady-state
     * statistic; see stitchSampled()): estimatedCycles is the exact
     * prefix plus mean CPI times the remaining instructions, ipcMean
     * is totalInsts / estimatedCycles, and the spread fields carry
     * the sampled part's error mapped to IPC space through the
     * delta method.
     */
    double ipcMean = 0.0;   ///< totalInsts / estimatedCycles
    double ipcStdDev = 0.0; ///< sample stddev, IPC space
    double ipcStdErr = 0.0; ///< stddev / sqrt(n), IPC space
    double ipcCi95 = 0.0;   ///< +/- 1.96 * stderr
    double estimatedCycles = 0.0; ///< prefix + cpiMean * rest
};

/** One architectural checkpoint of the functional pass. */
struct SampledCheckpoint
{
    InstIdx pc = 0; ///< issue-group leader to resume at
    std::uint64_t instsBefore = 0; ///< slots retired before @p pc
    cpu::RegFile regs;
    /**
     * The complete memory image at this point. SparseMemory pages
     * are copy-on-write, so this costs a page-table copy when the
     * checkpoint is taken and the functional pass only materializes
     * the pages it dirties afterwards — the plan stays O(footprint +
     * pages written), not O(footprint x checkpoints).
     */
    memory::SparseMemory mem;
    /**
     * Recent fetch/data/branch event history ending at this point,
     * frozen flat (see cpu::WarmSnapshot) and replayed untimed into
     * the replay model's caches and predictor (functional warming).
     * Raw addresses and directions only, so the history — like the
     * rest of the checkpoint — is valid for every model kind and
     * machine configuration.
     */
    cpu::WarmSnapshot warm;
};

/**
 * Everything the replay phase needs, produced by one functional pass.
 * Depends only on (program, sampling options) — never on the model
 * kind or machine configuration — so one plan is shared read-only by
 * every model replaying the same program.
 */
struct SampledPlan
{
    SampledOptions opts;        ///< normalized
    std::uint64_t spacing = 0;  ///< final spacing after thinning
    cpu::FunctionalResult functional; ///< exact whole-run counts
    std::uint64_t regFingerprint = 0; ///< exact final arch state
    std::uint64_t memFingerprint = 0;
    std::uint64_t checksum = 0;
    std::vector<SampledCheckpoint> checkpoints;
};

/** What one detailed replay measured (deltas over its window). */
struct IntervalMeasure
{
    std::uint64_t cycles = 0; ///< detailed cycles in the window
    std::uint64_t insts = 0;  ///< slots retired in the window
    std::uint64_t groups = 0;
    bool halted = false; ///< program completed inside this replay
    std::array<std::uint64_t, cpu::kNumCycleClasses> classCounts{};
};

/**
 * Phase 1: runs the functional reference over @p prog. Checkpoint 0
 * is the entry state (its replay measures stratum 0 exactly, cold);
 * every later spacing-sized stratum of the instruction axis gets
 * one checkpoint at a uniformly jittered position.
 * When the checkpoint count would exceed opts.maxIntervals, every
 * other checkpoint is dropped and the spacing doubles — long
 * programs degrade to coarser sampling instead of unbounded memory,
 * and copy-on-write memory images keep the discarded checkpoints
 * cheap.
 */
SampledPlan sampledCheckpointPass(const isa::Program &prog,
                                  const SampledOptions &opts);

/**
 * Phase 2, one interval. Interval 0 is the exact cold-start prefix:
 * a cold model measured from the entry for one whole stratum
 * (plan.spacing slots). Every other interval warps a fresh model to
 * its checkpoint, functionally warms it from the checkpoint's
 * history, runs opts.warmupCycles of detailed warm-up, re-arms the
 * run latch, and measures until opts.detailCycles further slots
 * retire. A replay that halts during warm-up reports the warm-up
 * leg itself as the (final, partial) window so short program tails
 * are never lost.
 */
IntervalMeasure measureInterval(const isa::Program &prog, CpuKind kind,
                                const cpu::CoreConfig &cfg,
                                const SampledPlan &plan,
                                std::size_t index);

/**
 * Phase 3: combines the per-interval measures into a whole-run
 * SimOutcome. Instruction/group totals and architectural fingerprints
 * are exact (functional pass); cycles are estimated as totalInsts
 * times the mean per-window CPI — the unbiased statistic for windows
 * systematically placed along the instruction axis (a mean of window
 * IPCs would overweight high-IPC phases). Partial windows — those
 * that halted — are excluded from the mean and variance, but counted
 * in the sampled totals; cycle-class accounting is the measured mix
 * scaled
 * to the estimated length. Model statistics (branch, two-pass, ALAT,
 * run-ahead) are left zero — a sampled outcome estimates time, not
 * microarchitectural event counts. run.halted is true: the functional
 * pass proved the program completes.
 */
SimOutcome stitchSampled(CpuKind kind, const SampledPlan &plan,
                         const std::vector<IntervalMeasure> &measures);

/**
 * The three phases end to end, with phase 2 fanned out over
 * @p threads workers (0 = resolved default; 1 = inline). Determinism:
 * every interval is an independent single-model replay and stitching
 * folds them in checkpoint order, so the outcome is bit-identical at
 * any thread count. @p max_cycles is accepted for signature parity
 * with simulate() and joins the cache key, but sampled replay budgets
 * are per-interval (warmupCycles + detailCycles), not whole-run.
 */
SimOutcome simulateSampled(const isa::Program &prog, CpuKind kind,
                           const cpu::CoreConfig &cfg = table1Config(),
                           const SampledOptions &sampled =
                               SampledOptions(),
                           std::uint64_t max_cycles = kDefaultMaxCycles,
                           unsigned threads = 0);

} // namespace sim
} // namespace ff

#endif // FF_SIM_SAMPLED_HH
