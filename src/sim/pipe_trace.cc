#include "sim/pipe_trace.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/metrics.hh"
#include "common/serialize.hh"
#include "isa/disasm.hh"
#include "sim/snapshot.hh"

namespace ff
{
namespace sim
{

namespace
{

/** Container magic: "FFPT" (flea-flicker pipe trace). */
constexpr std::uint32_t kPipeTraceMagic = serial::tag("FFPT");

constexpr std::uint32_t kTextTag = serial::tag("TEXT");
constexpr std::uint32_t kEventTag = serial::tag("EVNT");
constexpr std::uint32_t kEngineTag = serial::tag("ENGS");

} // namespace

PipeTrace
buildPipeTrace(const isa::Program &prog, const cpu::CoreConfig &cfg,
               CpuKind kind, std::uint64_t cycles,
               std::vector<cpu::PipeEvent> events,
               std::uint64_t dropped,
               const std::string &program_name)
{
    PipeTrace t;
    t.kind = kind;
    t.programHash = programContentHash(prog);
    t.configHash = canonicalConfigHash(cfg);
    t.programName = program_name;
    t.cycles = cycles;
    t.dropped = dropped;
    t.events = std::move(events);

    // Text rows for every static index the events reference, in
    // ascending order (std::map keeps it sorted).
    std::map<InstIdx, bool> used;
    for (const cpu::PipeEvent &e : t.events) {
        switch (e.kind) {
          case cpu::PipeEventKind::kDispatch:
          case cpu::PipeEventKind::kDefer:
          case cpu::PipeEventKind::kReplay:
          case cpu::PipeEventKind::kFlush:
          case cpu::PipeEventKind::kRetire:
            if (e.idx < prog.size())
                used.emplace(e.idx, true);
            break;
          default:
            break;
        }
    }
    t.text.reserve(used.size());
    for (const auto &entry : used) {
        PipeTrace::InstText row;
        row.idx = entry.first;
        row.srcLine = prog.inst(entry.first).srcLine;
        row.text = isa::disasm(prog.inst(entry.first));
        t.text.push_back(std::move(row));
    }
    return t;
}

std::vector<std::uint8_t>
encodePipeTrace(const PipeTrace &t)
{
    serial::Writer w;
    w.u32(kPipeTraceMagic);
    w.u32(kPipeTraceFormatVersion);
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.u64(t.programHash);
    w.u64(t.configHash);
    w.str(t.programName);
    w.u64(t.cycles);
    w.u64(t.dropped);

    w.section(kTextTag);
    w.u64(t.text.size());
    for (const PipeTrace::InstText &row : t.text) {
        w.u32(row.idx);
        w.i64(row.srcLine);
        w.str(row.text);
    }

    w.section(kEventTag);
    w.u64(t.events.size());
    for (const cpu::PipeEvent &e : t.events) {
        w.u64(e.cycle);
        w.u64(e.id);
        w.u32(e.idx);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u8(e.a);
        w.u16(e.b);
    }

    w.section(kEngineTag);
    w.u64(t.engine.names.size());
    for (const std::string &n : t.engine.names)
        w.str(n);
    w.u64(t.engine.lanes.size());
    for (const std::string &l : t.engine.lanes)
        w.str(l);
    w.u64(t.engine.spans.size());
    for (const engine::TraceSpan &s : t.engine.spans) {
        w.u32(s.name);
        w.u32(s.lane);
        w.u64(s.startUs);
        w.u64(s.durUs);
        w.boolean(s.instant);
    }
    return w.take();
}

bool
decodePipeTrace(const std::vector<std::uint8_t> &bytes, PipeTrace &out)
{
    serial::Reader r(bytes);
    if (r.u32() != kPipeTraceMagic ||
        r.u32() != kPipeTraceFormatVersion) {
        return false;
    }
    const std::uint8_t kind = r.u8();
    if (kind >= cpu::kNumCpuKinds)
        return false;
    out.kind = static_cast<CpuKind>(kind);
    out.programHash = r.u64();
    out.configHash = r.u64();
    out.programName = r.str();
    out.cycles = r.u64();
    out.dropped = r.u64();

    if (!r.section(kTextTag))
        return false;
    out.text.clear();
    const std::size_t nt = r.seq(13); // u32 + i64 + min str
    out.text.reserve(nt);
    for (std::size_t i = 0; i < nt && r.ok(); ++i) {
        PipeTrace::InstText row;
        row.idx = r.u32();
        row.srcLine = static_cast<std::int32_t>(r.i64());
        row.text = r.str();
        out.text.push_back(std::move(row));
    }

    if (!r.section(kEventTag))
        return false;
    out.events.clear();
    const std::size_t ne = r.seq(24);
    out.events.reserve(ne);
    for (std::size_t i = 0; i < ne && r.ok(); ++i) {
        cpu::PipeEvent e;
        e.cycle = r.u64();
        e.id = r.u64();
        e.idx = r.u32();
        const std::uint8_t k = r.u8();
        if (k >= cpu::kNumPipeEventKinds)
            return false;
        e.kind = static_cast<cpu::PipeEventKind>(k);
        e.a = r.u8();
        e.b = r.u16();
        out.events.push_back(e);
    }

    if (!r.section(kEngineTag))
        return false;
    out.engine = engine::TraceData{};
    const std::size_t nn = r.seq(8);
    out.engine.names.reserve(nn);
    for (std::size_t i = 0; i < nn && r.ok(); ++i)
        out.engine.names.push_back(r.str());
    const std::size_t nl = r.seq(8);
    out.engine.lanes.reserve(nl);
    for (std::size_t i = 0; i < nl && r.ok(); ++i)
        out.engine.lanes.push_back(r.str());
    const std::size_t ns = r.seq(25);
    out.engine.spans.reserve(ns);
    for (std::size_t i = 0; i < ns && r.ok(); ++i) {
        engine::TraceSpan s;
        s.name = r.u32();
        s.lane = r.u32();
        s.startUs = r.u64();
        s.durUs = r.u64();
        s.instant = r.boolean();
        if (r.ok() && (s.name >= out.engine.names.size() ||
                       s.lane >= out.engine.lanes.size())) {
            return false;
        }
        out.engine.spans.push_back(s);
    }
    return r.ok() && r.atEnd();
}

std::vector<PipeLifetime>
buildPipeLifetimes(const std::vector<cpu::PipeEvent> &events)
{
    std::vector<PipeLifetime> lives;
    std::unordered_map<DynId, std::size_t> byId;
    std::deque<std::size_t> inFlight; // dispatch (program) order
    bool bdetPending = false;

    auto squashAll = [&](Cycle now) {
        for (const std::size_t k : inFlight)
            lives[k].squash = now;
        inFlight.clear();
    };

    for (const cpu::PipeEvent &e : events) {
        switch (e.kind) {
          case cpu::PipeEventKind::kDispatch: {
            PipeLifetime l;
            l.id = e.id;
            l.idx = e.idx;
            l.dispatch = e.cycle;
            byId.emplace(e.id, lives.size());
            inFlight.push_back(lives.size());
            lives.push_back(l);
            break;
          }
          case cpu::PipeEventKind::kDefer: {
            const auto it = byId.find(e.id);
            if (it != byId.end()) {
                lives[it->second].deferred = true;
                lives[it->second].defer =
                    static_cast<cpu::DeferReason>(e.a);
            }
            break;
          }
          case cpu::PipeEventKind::kReplay: {
            const auto it = byId.find(e.id);
            if (it != byId.end())
                lives[it->second].replay = e.cycle;
            break;
          }
          case cpu::PipeEventKind::kFeedback: {
            const auto it = byId.find(e.id);
            if (it != byId.end() &&
                lives[it->second].feedback == kNeverCycle) {
                lives[it->second].feedback = e.cycle;
            }
            break;
          }
          case cpu::PipeEventKind::kRetire: {
            // The coupling queue is FIFO in program order, so a
            // group retire of N slots retires the N oldest in-flight
            // dynamic instructions.
            for (std::uint16_t s = 0; s < e.b && !inFlight.empty();
                 ++s) {
                lives[inFlight.front()].retire = e.cycle;
                inFlight.pop_front();
            }
            if (bdetPending) {
                // The B-DET flush event preceded this retire in the
                // same cycle: everything younger than the retired
                // prefix is wrong-path.
                squashAll(e.cycle);
                bdetPending = false;
            }
            break;
          }
          case cpu::PipeEventKind::kFlush: {
            if (static_cast<cpu::FlushKind>(e.a) ==
                cpu::FlushKind::kConflict) {
                squashAll(e.cycle);
            } else {
                bdetPending = true;
            }
            break;
          }
          case cpu::PipeEventKind::kCycleClass:
            break;
        }
    }
    return lives;
}

// --------------------------------------------------------------------
// Chrome trace-event JSON export.
// --------------------------------------------------------------------

namespace
{

/** Core process tracks. */
constexpr std::uint64_t kCorePid = 1;
constexpr std::uint64_t kEnginePid = 2;
constexpr std::uint64_t kApipeTid = 1;
constexpr std::uint64_t kBpipeTid = 2;
constexpr std::uint64_t kCqTid = 3;
constexpr std::uint64_t kFeedbackTid = 4;

void
emitMeta(metrics::JsonWriter &w, std::uint64_t pid, std::uint64_t tid,
         const char *what, const std::string &name)
{
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", pid);
    if (tid != 0)
        w.kv("tid", tid);
    w.kv("name", what);
    w.key("args");
    w.beginObject();
    w.kv("name", name);
    w.endObject();
    w.endObject();
}

void
beginEvent(metrics::JsonWriter &w, const char *ph, std::uint64_t pid,
           std::uint64_t tid, std::uint64_t ts,
           const std::string &name)
{
    w.beginObject();
    w.kv("ph", ph);
    w.kv("pid", pid);
    w.kv("tid", tid);
    w.kv("ts", ts);
    w.kv("name", name);
}

} // namespace

std::string
pipeTraceToChromeJson(const PipeTrace &t)
{
    std::ostringstream os;
    metrics::JsonWriter w(os);

    std::unordered_map<InstIdx, const PipeTrace::InstText *> text;
    for (const PipeTrace::InstText &row : t.text)
        text.emplace(row.idx, &row);
    auto nameOf = [&](InstIdx idx) {
        std::string name = "@";
        name += std::to_string(idx);
        const auto it = text.find(idx);
        if (it != text.end()) {
            name += ' ';
            name += it->second->text;
        }
        return name;
    };

    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();

    // ---- track naming metadata -------------------------------------
    emitMeta(w, kCorePid, 0, "process_name",
             std::string("core ") + cpuKindName(t.kind) + " (" +
                 t.programName + ")");
    emitMeta(w, kCorePid, kApipeTid, "thread_name", "A-pipe");
    emitMeta(w, kCorePid, kBpipeTid, "thread_name", "B-pipe");
    emitMeta(w, kCorePid, kCqTid, "thread_name", "CQ");
    emitMeta(w, kCorePid, kFeedbackTid, "thread_name", "feedback");

    // ---- core events: 1 simulated cycle = 1 us ---------------------
    std::uint64_t cqDepth = 0;
    bool bdetPending = false;
    Cycle clsStart = 0;
    std::uint8_t cls = 0;
    bool haveCls = false;

    auto emitCqSample = [&](Cycle now) {
        beginEvent(w, "C", kCorePid, kCqTid, now, "cq");
        w.key("args");
        w.beginObject();
        w.kv("depth", cqDepth);
        w.endObject();
        w.endObject();
    };
    auto closeClsSpan = [&](Cycle end) {
        if (!haveCls || end <= clsStart)
            return;
        beginEvent(w, "X", kCorePid, kBpipeTid, clsStart,
                   cpu::cycleClassName(
                       static_cast<cpu::CycleClass>(cls)));
        w.kv("dur", end - clsStart);
        w.endObject();
    };

    for (const cpu::PipeEvent &e : t.events) {
        switch (e.kind) {
          case cpu::PipeEventKind::kDispatch:
            beginEvent(w, "i", kCorePid, kApipeTid, e.cycle,
                       nameOf(e.idx));
            w.kv("s", "t");
            w.key("args");
            w.beginObject();
            w.kv("id", e.id);
            w.endObject();
            w.endObject();
            ++cqDepth;
            emitCqSample(e.cycle);
            break;
          case cpu::PipeEventKind::kDefer:
            beginEvent(w, "i", kCorePid, kApipeTid, e.cycle,
                       std::string("defer:") +
                           cpu::deferReasonName(
                               static_cast<cpu::DeferReason>(e.a)));
            w.kv("s", "t");
            w.key("args");
            w.beginObject();
            w.kv("id", e.id);
            w.kv("inst", nameOf(e.idx));
            w.endObject();
            w.endObject();
            break;
          case cpu::PipeEventKind::kReplay:
            beginEvent(w, "i", kCorePid, kBpipeTid, e.cycle,
                       "replay " + nameOf(e.idx));
            w.kv("s", "t");
            w.key("args");
            w.beginObject();
            w.kv("id", e.id);
            w.endObject();
            w.endObject();
            break;
          case cpu::PipeEventKind::kFeedback:
            beginEvent(w, "i", kCorePid, kFeedbackTid, e.cycle,
                       "apply");
            w.kv("s", "t");
            w.key("args");
            w.beginObject();
            w.kv("id", e.id);
            w.kv("slot", static_cast<std::uint64_t>(e.b));
            w.endObject();
            w.endObject();
            break;
          case cpu::PipeEventKind::kRetire:
            beginEvent(w, "i", kCorePid, kBpipeTid, e.cycle,
                       "retire " + nameOf(e.idx) + " x" +
                           std::to_string(e.b));
            w.kv("s", "t");
            w.endObject();
            cqDepth -= std::min<std::uint64_t>(cqDepth, e.b);
            if (bdetPending) {
                cqDepth = 0;
                bdetPending = false;
            }
            emitCqSample(e.cycle);
            break;
          case cpu::PipeEventKind::kFlush:
            beginEvent(w, "i", kCorePid, kBpipeTid, e.cycle,
                       std::string("flush:") +
                           cpu::flushKindName(
                               static_cast<cpu::FlushKind>(e.a)));
            w.kv("s", "p");
            w.endObject();
            if (static_cast<cpu::FlushKind>(e.a) ==
                cpu::FlushKind::kConflict) {
                cqDepth = 0;
                emitCqSample(e.cycle);
            } else {
                bdetPending = true;
            }
            break;
          case cpu::PipeEventKind::kCycleClass:
            closeClsSpan(e.cycle);
            clsStart = e.cycle;
            cls = e.a;
            haveCls = true;
            break;
        }
    }
    closeClsSpan(t.cycles);

    // ---- engine lanes: already in wall-clock microseconds ----------
    if (!t.engine.spans.empty()) {
        emitMeta(w, kEnginePid, 0, "process_name", "engine");
        for (std::size_t l = 0; l < t.engine.lanes.size(); ++l) {
            emitMeta(w, kEnginePid, l + 1, "thread_name",
                     t.engine.lanes[l]);
        }
        for (const engine::TraceSpan &s : t.engine.spans) {
            const std::string &name = t.engine.names[s.name];
            if (s.instant) {
                beginEvent(w, "i", kEnginePid, s.lane + 1, s.startUs,
                           name);
                w.kv("s", "t");
                w.endObject();
            } else {
                beginEvent(w, "X", kEnginePid, s.lane + 1, s.startUs,
                           name);
                w.kv("dur", s.durUs);
                w.endObject();
            }
        }
    }

    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

// --------------------------------------------------------------------
// ASCII lane rendering (shared by ffvm --pipeview and ffview).
// --------------------------------------------------------------------

std::string
renderPipeView(const PipeTrace &t, unsigned rows, DynId from_id,
               unsigned width)
{
    if (width < 8)
        width = 8;
    std::ostringstream os;
    os << "ffpipe: model=" << cpuKindName(t.kind) << " program="
       << t.programName << " cycles=" << t.cycles << "\n";
    os << "events: " << t.events.size() << " recorded, " << t.dropped
       << " dropped\n";

    const std::vector<PipeLifetime> lives =
        buildPipeLifetimes(t.events);
    if (lives.empty()) {
        os << "(no per-instruction lifecycle events -- only the "
              "two-pass models dispatch through the coupling "
              "queue)\n";
        return os.str();
    }

    os << "glyphs: A pre-executed dispatch   d deferred dispatch   "
          ". in queue\n"
          "        r B replay   R retire   x squash   f feedback   "
          "> clipped\n\n";

    std::unordered_map<InstIdx, const PipeTrace::InstText *> text;
    for (const PipeTrace::InstText &row : t.text)
        text.emplace(row.idx, &row);

    char head[64];
    std::snprintf(head, sizeof(head), "%6s %-5s %7s  %-24s %s\n",
                  "id", "@idx", "cycle", "instruction", "pipeline");
    os << head;

    unsigned shown = 0;
    for (const PipeLifetime &l : lives) {
        if (l.id < from_id)
            continue;
        if (shown >= rows)
            break;
        ++shown;

        // The lane: columns are cycles since dispatch.
        Cycle end = l.dispatch;
        for (const Cycle c : {l.replay, l.retire, l.squash,
                              l.feedback}) {
            if (c != kNeverCycle && c > end)
                end = c;
        }
        const std::uint64_t span = end - l.dispatch + 1;
        const bool clipped = span > width;
        const std::size_t cols =
            clipped ? width : static_cast<std::size_t>(span);
        std::string lane(cols, '.');
        auto put = [&](Cycle c, char g) {
            if (c == kNeverCycle)
                return;
            const std::uint64_t pos = c - l.dispatch;
            if (pos < cols)
                lane[static_cast<std::size_t>(pos)] = g;
        };
        put(l.feedback, 'f');
        put(l.replay, 'r');
        put(l.retire, 'R');
        put(l.squash, 'x');
        lane[0] = l.deferred ? 'd' : 'A';
        if (clipped)
            lane[cols - 1] = '>';

        const auto it = text.find(l.idx);
        std::string dis = it != text.end() ? it->second->text
                                           : std::string("?");
        if (dis.size() > 24)
            dis = dis.substr(0, 21) + "...";

        char prefix[80];
        std::snprintf(prefix, sizeof(prefix),
                      "%6llu @%-4u %7llu  %-24s ",
                      static_cast<unsigned long long>(l.id), l.idx,
                      static_cast<unsigned long long>(l.dispatch),
                      dis.c_str());
        os << prefix << lane << "\n";
    }
    if (shown == 0)
        os << "(no dynamic instructions with id >= " << from_id
           << ")\n";
    return os.str();
}

} // namespace sim
} // namespace ff
