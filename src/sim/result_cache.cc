#include "sim/result_cache.hh"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <vector>

#include <unistd.h>

#include "analysis/ffcheck.hh"
#include "common/engine_trace.hh"
#include "common/hash.hh"
#include "common/serialize.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"

namespace ff
{
namespace sim
{

namespace
{

namespace fs = std::filesystem;

/** Entry magic: "FFRC" (flea-flicker result cache). */
constexpr std::uint32_t kCacheMagic = serial::tag("FFRC");

/** Entry magic: "FFVC" (flea-flicker verify cache). */
constexpr std::uint32_t kVerifyMagic = serial::tag("FFVC");

std::mutex g_cfgMu;
std::string g_dir;       // explicit override (valid when g_dirSet)
bool g_dirSet = false;   // setResultCacheDir() called
bool g_bypass = false;
bool g_bypassSet = false;

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_stores{0};
std::atomic<std::uint64_t> g_errors{0};

std::atomic<std::uint64_t> g_vHits{0};
std::atomic<std::uint64_t> g_vMisses{0};
std::atomic<std::uint64_t> g_vStores{0};
std::atomic<std::uint64_t> g_vErrors{0};

/** Monotonic suffix so concurrent stores never share a temp file. */
std::atomic<std::uint64_t> g_tmpSeq{0};

std::string
envOr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::string(v) : fallback;
}

fs::path
entryPath(const std::string &dir, const std::string &key)
{
    // Two-level fan-out keeps directories small under big sweeps.
    return fs::path(dir) / key.substr(0, 2) / (key.substr(2) + ".ffr");
}

fs::path
verifyEntryPath(const std::string &dir, const std::string &key)
{
    return fs::path(dir) / key.substr(0, 2) / (key.substr(2) + ".ffv");
}

void
saveAccessStats(serial::Writer &w, const memory::AccessStats &s)
{
    for (const auto &row : s.counts)
        for (const std::uint64_t c : row)
            w.u64(c);
    for (const auto &row : s.weightedCycles)
        for (const std::uint64_t c : row)
            w.u64(c);
}

void
restoreAccessStats(serial::Reader &r, memory::AccessStats &s)
{
    for (auto &row : s.counts)
        for (std::uint64_t &c : row)
            c = r.u64();
    for (auto &row : s.weightedCycles)
        for (std::uint64_t &c : row)
            c = r.u64();
}

void
saveTwoPassStats(serial::Writer &w, const cpu::TwoPassStats &s)
{
    w.u64(s.dispatched);
    w.u64(s.preExecuted);
    w.u64(s.deferred);
    for (const std::uint64_t c : s.deferredByReason)
        w.u64(c);
    w.u64(s.loadsInA);
    w.u64(s.loadsInB);
    w.u64(s.storesInA);
    w.u64(s.storesInB);
    w.u64(s.loadsPastDeferredStore);
    w.u64(s.storeConflictFlushes);
    w.u64(s.storeForwardings);
    w.u64(s.branchesResolvedInA);
    w.u64(s.branchesResolvedInB);
    w.u64(s.aDetMispredicts);
    w.u64(s.bDetMispredicts);
    w.u64(s.aStallCqFull);
    w.u64(s.aStallAnticipable);
    w.u64(s.aStallThrottled);
    w.u64(s.regroupedGroups);
    w.u64(s.feedbackApplied);
    w.u64(s.feedbackDropped);
    w.u64(s.registersRepaired);
}

void
restoreTwoPassStats(serial::Reader &r, cpu::TwoPassStats &s)
{
    s.dispatched = r.u64();
    s.preExecuted = r.u64();
    s.deferred = r.u64();
    for (std::uint64_t &c : s.deferredByReason)
        c = r.u64();
    s.loadsInA = r.u64();
    s.loadsInB = r.u64();
    s.storesInA = r.u64();
    s.storesInB = r.u64();
    s.loadsPastDeferredStore = r.u64();
    s.storeConflictFlushes = r.u64();
    s.storeForwardings = r.u64();
    s.branchesResolvedInA = r.u64();
    s.branchesResolvedInB = r.u64();
    s.aDetMispredicts = r.u64();
    s.bDetMispredicts = r.u64();
    s.aStallCqFull = r.u64();
    s.aStallAnticipable = r.u64();
    s.aStallThrottled = r.u64();
    s.regroupedGroups = r.u64();
    s.feedbackApplied = r.u64();
    s.feedbackDropped = r.u64();
    s.registersRepaired = r.u64();
}

void
encodeOutcome(serial::Writer &w, const SimOutcome &o)
{
    w.u8(static_cast<std::uint8_t>(o.kind));
    w.boolean(o.run.halted);
    w.u64(o.run.cycles);
    w.u64(o.run.instsRetired);
    w.u64(o.run.groupsRetired);
    for (const std::uint64_t c : o.cycles.counts)
        w.u64(c);
    saveAccessStats(w, o.accesses);
    w.u64(o.branches.lookups);
    w.u64(o.branches.mispredicts);
    saveTwoPassStats(w, o.twopass);
    w.u64(o.alat.allocations);
    w.u64(o.alat.storeInvalidations);
    w.u64(o.alat.capacityEvictions);
    w.u64(o.alat.checksPassed);
    w.u64(o.alat.checksFailed);
    w.u64(o.runahead.episodes);
    w.u64(o.runahead.runaheadCycles);
    w.u64(o.runahead.runaheadLoads);
    w.u64(o.runahead.runaheadInsts);
    w.u64(o.runahead.invResults);
    w.u64(o.regFingerprint);
    w.u64(o.memFingerprint);
    w.u64(o.checksum);
    // Optional sampled-estimate tail (v2).
    w.boolean(o.sampled != nullptr);
    if (o.sampled != nullptr) {
        const SampledEstimate &e = *o.sampled;
        w.u64(e.options.intervalCycles);
        w.u64(e.options.detailCycles);
        w.u64(e.options.warmupCycles);
        w.u64(e.options.maxIntervals);
        w.u64(e.spacing);
        w.u64(e.intervalsTotal);
        w.u64(e.intervalsMeasured);
        w.u64(e.sampledCycles);
        w.u64(e.sampledInsts);
        w.u64(e.totalInsts);
        w.u64(e.prefixCycles);
        w.u64(e.prefixInsts);
        w.f64(e.ipcMean);
        w.f64(e.ipcStdDev);
        w.f64(e.ipcStdErr);
        w.f64(e.ipcCi95);
        w.f64(e.estimatedCycles);
    }
}

bool
decodeOutcome(serial::Reader &r, SimOutcome &o)
{
    const std::uint8_t kind = r.u8();
    if (kind >= cpu::kNumCpuKinds)
        return false;
    o.kind = static_cast<CpuKind>(kind);
    o.run.halted = r.boolean();
    o.run.cycles = r.u64();
    o.run.instsRetired = r.u64();
    o.run.groupsRetired = r.u64();
    for (std::uint64_t &c : o.cycles.counts)
        c = r.u64();
    restoreAccessStats(r, o.accesses);
    o.branches.lookups = r.u64();
    o.branches.mispredicts = r.u64();
    restoreTwoPassStats(r, o.twopass);
    o.alat.allocations = r.u64();
    o.alat.storeInvalidations = r.u64();
    o.alat.capacityEvictions = r.u64();
    o.alat.checksPassed = r.u64();
    o.alat.checksFailed = r.u64();
    o.runahead.episodes = r.u64();
    o.runahead.runaheadCycles = r.u64();
    o.runahead.runaheadLoads = r.u64();
    o.runahead.runaheadInsts = r.u64();
    o.runahead.invResults = r.u64();
    o.regFingerprint = r.u64();
    o.memFingerprint = r.u64();
    o.checksum = r.u64();
    o.metrics.reset();
    o.sampled.reset();
    if (r.boolean()) {
        auto e = std::make_shared<SampledEstimate>();
        e->options.intervalCycles = r.u64();
        e->options.detailCycles = r.u64();
        e->options.warmupCycles = r.u64();
        e->options.maxIntervals = r.u64();
        e->spacing = r.u64();
        e->intervalsTotal = r.u64();
        e->intervalsMeasured = r.u64();
        e->sampledCycles = r.u64();
        e->sampledInsts = r.u64();
        e->totalInsts = r.u64();
        e->prefixCycles = r.u64();
        e->prefixInsts = r.u64();
        e->ipcMean = r.f64();
        e->ipcStdDev = r.f64();
        e->ipcStdErr = r.f64();
        e->ipcCi95 = r.f64();
        e->estimatedCycles = r.f64();
        o.sampled = std::move(e);
    }
    return r.ok();
}

} // namespace

std::string
resultCacheKey(const isa::Program &prog, CpuKind kind,
               const cpu::CoreConfig &cfg, std::uint64_t max_cycles,
               const SampledOptions &sampled)
{
    serial::Writer w;
    w.u32(kCacheMagic);
    w.u32(kResultCacheVersion);
    w.u32(kSnapshotFormatVersion);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(programContentHash(prog));
    canonicalizeConfig(cfg, w);
    w.u64(max_cycles);
    // Normalized, so equivalent sampling spellings share an address;
    // the disabled marker keeps detailed keys distinct from every
    // sampled one.
    const SampledOptions s = sampled.normalized();
    w.boolean(s.enabled());
    if (s.enabled()) {
        w.u64(s.intervalCycles);
        w.u64(s.detailCycles);
        w.u64(s.warmupCycles);
        w.u64(s.maxIntervals);
    }
    return Sha256::hex(w.buffer().data(), w.buffer().size());
}

void
setResultCacheDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lk(g_cfgMu);
    g_dir = dir;
    g_dirSet = true;
}

std::string
resultCacheDir()
{
    std::lock_guard<std::mutex> lk(g_cfgMu);
    if (!g_dirSet) {
        g_dir = envOr("FF_CACHE_DIR", "");
        g_dirSet = true;
    }
    return g_dir;
}

bool
resultCacheEnabled()
{
    return !resultCacheDir().empty();
}

void
setResultCacheBypass(bool bypass)
{
    std::lock_guard<std::mutex> lk(g_cfgMu);
    g_bypass = bypass;
    g_bypassSet = true;
}

bool
resultCacheBypass()
{
    std::lock_guard<std::mutex> lk(g_cfgMu);
    if (!g_bypassSet) {
        const std::string v = envOr("FF_CACHE_BYPASS", "");
        g_bypass = !v.empty() && v != "0";
        g_bypassSet = true;
    }
    return g_bypass;
}

bool
resultCacheLookup(const std::string &key, SimOutcome &out)
{
    const std::string dir = resultCacheDir();
    if (dir.empty())
        return false;
    if (resultCacheBypass()) {
        ++g_misses;
        engine::traceInstant("cache-miss");
        return false;
    }

    std::error_code ec;
    const fs::path path = entryPath(dir, key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++g_misses;
        engine::traceInstant("cache-miss");
        ff_trace(trace::kEngine, 0, "CACHE", "miss " << key);
        return false;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    serial::Reader r(bytes);
    if (r.u32() != kCacheMagic || r.u32() != kResultCacheVersion ||
        r.str() != key || !decodeOutcome(r, out) || !r.atEnd()) {
        // Corrupt or stale: drop the entry so the refreshed store
        // below it replaces a known-bad file, then report a miss.
        fs::remove(path, ec);
        ++g_errors;
        ++g_misses;
        engine::traceInstant("cache-miss");
        ff_trace(trace::kEngine, 0, "CACHE", "corrupt " << key);
        return false;
    }
    ++g_hits;
    engine::traceInstant("cache-hit");
    ff_trace(trace::kEngine, 0, "CACHE", "hit " << key);
    return true;
}

bool
resultCacheStore(const std::string &key, const SimOutcome &outcome)
{
    const std::string dir = resultCacheDir();
    if (dir.empty())
        return false;
    // Metered outcomes carry observer-harvested payloads the binary
    // format deliberately excludes; caching them would return a
    // stripped record on the next lookup.
    if (outcome.metrics != nullptr)
        return false;

    serial::Writer w;
    w.u32(kCacheMagic);
    w.u32(kResultCacheVersion);
    w.str(key);
    encodeOutcome(w, outcome);

    std::error_code ec;
    const fs::path path = entryPath(dir, key);
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
        ++g_errors;
        return false;
    }
    // Temp names carry the pid so concurrent sweeps in separate
    // processes can race on one key; rename makes the winner atomic.
    const fs::path tmp =
        path.parent_path() /
        (key.substr(2) + ".tmp" + std::to_string(::getpid()) + "." +
         std::to_string(g_tmpSeq.fetch_add(1)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(
                reinterpret_cast<const char *>(w.buffer().data()),
                static_cast<std::streamsize>(w.buffer().size()))) {
            ++g_errors;
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        ++g_errors;
        fs::remove(tmp, ec);
        return false;
    }
    ++g_stores;
    return true;
}

std::string
verifyCacheKey(const isa::Program &prog, const isa::GroupLimits &limits)
{
    serial::Writer w;
    w.u32(kVerifyMagic);
    w.u32(kResultCacheVersion);
    w.u32(analysis::kFfcheckVersion);
    w.u64(prog.instStreamHash());
    w.u32(limits.issueWidth);
    w.u32(limits.aluUnits);
    w.u32(limits.memUnits);
    w.u32(limits.fpUnits);
    w.u32(limits.branchUnits);
    return Sha256::hex(w.buffer().data(), w.buffer().size());
}

bool
verifyCacheLookup(const std::string &key)
{
    const std::string dir = resultCacheDir();
    if (dir.empty())
        return false;
    if (resultCacheBypass()) {
        ++g_vMisses;
        return false;
    }

    std::error_code ec;
    const fs::path path = verifyEntryPath(dir, key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++g_vMisses;
        return false;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    serial::Reader r(bytes);
    if (r.u32() != kVerifyMagic || r.u32() != kResultCacheVersion ||
        r.str() != key || !r.atEnd()) {
        fs::remove(path, ec);
        ++g_vErrors;
        ++g_vMisses;
        return false;
    }
    ++g_vHits;
    return true;
}

bool
verifyCacheStore(const std::string &key)
{
    const std::string dir = resultCacheDir();
    if (dir.empty())
        return false;

    serial::Writer w;
    w.u32(kVerifyMagic);
    w.u32(kResultCacheVersion);
    w.str(key);

    std::error_code ec;
    const fs::path path = verifyEntryPath(dir, key);
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
        ++g_vErrors;
        return false;
    }
    const fs::path tmp =
        path.parent_path() /
        (key.substr(2) + ".tmp" + std::to_string(::getpid()) + "." +
         std::to_string(g_tmpSeq.fetch_add(1)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(
                reinterpret_cast<const char *>(w.buffer().data()),
                static_cast<std::streamsize>(w.buffer().size()))) {
            ++g_vErrors;
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        ++g_vErrors;
        fs::remove(tmp, ec);
        return false;
    }
    ++g_vStores;
    return true;
}

VerifyCacheStats
verifyCacheStats()
{
    VerifyCacheStats s;
    s.hits = g_vHits.load();
    s.misses = g_vMisses.load();
    s.stores = g_vStores.load();
    s.errors = g_vErrors.load();
    return s;
}

void
resetVerifyCacheStats()
{
    g_vHits = 0;
    g_vMisses = 0;
    g_vStores = 0;
    g_vErrors = 0;
}

ResultCacheStats
resultCacheStats()
{
    ResultCacheStats s;
    s.hits = g_hits.load();
    s.misses = g_misses.load();
    s.stores = g_stores.load();
    s.errors = g_errors.load();
    return s;
}

void
resetResultCacheStats()
{
    g_hits = 0;
    g_misses = 0;
    g_stores = 0;
    g_errors = 0;
}

} // namespace sim
} // namespace ff
