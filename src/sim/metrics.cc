#include "sim/metrics.hh"

#include <sstream>

#include "cpu/core/core_base.hh"
#include "isa/disasm.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "sim/sampled.hh"

namespace ff
{
namespace sim
{

MetricsSession::MetricsSession(const isa::Program &prog,
                               const cpu::CoreConfig &cfg,
                               const MetricsOptions &opt)
    : _prog(prog), _cfg(cfg), _opt(opt)
{
}

void
MetricsSession::attach(cpu::CpuModel &model)
{
    if (!_opt.enabled())
        return;
    cpu::CoreBase *core = model.asCoreBase();
    if (core == nullptr)
        return; // functional model: nothing to observe
    _core = core;
    if (_opt.profile) {
        _profile = std::make_unique<cpu::ProfileObserver>(_prog);
        _fanout.add(_profile.get());
    }
    if (_opt.telemetry) {
        _telemetry = std::make_unique<cpu::TelemetryObserver>(
            *core, _cfg.couplingQueueSize,
            _cfg.mem.maxOutstandingLoads, _opt.epochCycles);
        _fanout.add(_telemetry.get());
    }
    if (_opt.pipeview) {
        _pipeview = std::make_unique<cpu::PipeViewObserver>(
            _opt.pipeviewMaxEvents);
        _fanout.add(_pipeview.get());
    }
    core->setObserver(&_fanout);
}

MetricsRecord
MetricsSession::harvest()
{
    MetricsRecord rec;
    rec.options = _opt;
    if (_core == nullptr)
        return rec;
    // Detach before harvesting so a (misuse) later run cannot write
    // into moved-from observers.
    _core->setObserver(nullptr);

    if (_profile != nullptr) {
        rec.unattributed = _profile->unattributed();
        const std::vector<InstIdx> order =
            _profile->topByStallCycles(0);
        rec.profile.reserve(order.size());
        for (InstIdx i : order) {
            MetricsRecord::ProfileRow row;
            row.idx = i;
            row.srcLine = _prog.inst(i).srcLine;
            row.text = isa::disasm(_prog.inst(i));
            row.prof = _profile->at(i);
            rec.profile.push_back(std::move(row));
        }
    }
    if (_telemetry != nullptr) {
        _telemetry->finish();
        rec.telemetry = _telemetry->takeRegistry();
    }
    if (_pipeview != nullptr) {
        rec.pipeDropped = _pipeview->dropped();
        rec.pipeEvents = _pipeview->take();
    }
    return rec;
}

namespace
{

void
emitCycleArray(metrics::JsonWriter &w, const char *key,
               const std::array<std::uint64_t,
                                cpu::kNumCycleClasses> &counts)
{
    w.key(key);
    w.beginObject();
    for (unsigned c = 0; c < cpu::kNumCycleClasses; ++c) {
        w.kv(cpu::cycleClassName(static_cast<cpu::CycleClass>(c)),
             counts[c]);
    }
    w.endObject();
}

void
emitConfig(metrics::JsonWriter &w, const cpu::CoreConfig &cfg)
{
    w.key("config");
    w.beginObject();
    w.kv("issueWidth", cfg.limits.issueWidth);
    w.kv("aluUnits", cfg.limits.aluUnits);
    w.kv("memUnits", cfg.limits.memUnits);
    w.kv("fpUnits", cfg.limits.fpUnits);
    w.kv("branchUnits", cfg.limits.branchUnits);
    w.kv("frontEndDepth", cfg.frontEndDepth);
    w.kv("couplingQueueSize", cfg.couplingQueueSize);
    w.kv("alatCapacity", cfg.alatCapacity);
    w.kv("storeBufferSize", cfg.storeBufferSize);
    w.kv("feedbackLatency", cfg.feedbackLatency);
    w.kv("feedbackEnabled", cfg.feedbackEnabled);
    w.kv("regroup", cfg.regroup);
    w.kv("aPipeHasFpUnits", cfg.aPipeHasFpUnits);
    w.kv("aPipeThrottlePercent", cfg.aPipeThrottlePercent);
    w.kv("predictor",
         branch::predictorKindName(cfg.predictorKind));
    w.kv("predictorEntries", cfg.predictorEntries);
    w.kv("memoryLatency", cfg.mem.memoryLatency);
    w.kv("maxOutstandingLoads", cfg.mem.maxOutstandingLoads);
    w.kv("prefetchDegree", cfg.mem.prefetchDegree);
    w.endObject();
}

void
emitProfile(metrics::JsonWriter &w, const MetricsRecord &rec)
{
    w.key("profile");
    w.beginObject();
    w.kv("enabled", rec.options.profile);
    emitCycleArray(w, "unattributed", rec.unattributed);
    w.key("rows");
    w.beginArray();
    for (const MetricsRecord::ProfileRow &row : rec.profile) {
        w.beginObject();
        w.kv("inst", row.idx);
        w.kv("srcLine", row.srcLine);
        w.kv("text", row.text);
        w.kv("retires", row.prof.retires);
        w.kv("slots", row.prof.slots);
        w.kv("stallCycles", row.prof.stallCycles());
        emitCycleArray(w, "cycles", row.prof.cycles);
        w.key("defers");
        w.beginObject();
        for (unsigned r = 1; r < cpu::kNumDeferReasons; ++r) {
            w.kv(cpu::deferReasonName(
                     static_cast<cpu::DeferReason>(r)),
                 row.prof.defers[r]);
        }
        w.endObject();
        w.key("flushes");
        w.beginObject();
        for (unsigned k = 0; k < cpu::kNumFlushKinds; ++k) {
            w.kv(cpu::flushKindName(static_cast<cpu::FlushKind>(k)),
                 row.prof.flushes[k]);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

std::string
metricsToJson(const SimOutcome &outcome, const cpu::CoreConfig &cfg,
              const std::string &program)
{
    std::ostringstream os;
    metrics::JsonWriter w(os);

    w.beginObject();
    w.kv("schemaVersion", kMetricsSchemaVersion);
    w.kv("program", program);
    w.kv("model", cpuKindName(outcome.kind));
    emitConfig(w, cfg);

    w.key("run");
    w.beginObject();
    w.kv("halted", outcome.run.halted);
    w.kv("cycles", outcome.run.cycles);
    w.kv("instsRetired", outcome.run.instsRetired);
    w.kv("groupsRetired", outcome.run.groupsRetired);
    w.kv("ipc", outcome.run.ipc());
    w.endObject();

    emitCycleArray(w, "cycles", outcome.cycles.counts);

    w.key("branch");
    w.beginObject();
    w.kv("lookups", outcome.branches.lookups);
    w.kv("mispredicts", outcome.branches.mispredicts);
    w.endObject();

    // Two-pass counters are emitted unconditionally (zero for the
    // baseline/run-ahead kinds) so the document shape is stable.
    const cpu::TwoPassStats &tp = outcome.twopass;
    w.key("twopass");
    w.beginObject();
    w.kv("dispatched", tp.dispatched);
    w.kv("preExecuted", tp.preExecuted);
    w.kv("deferred", tp.deferred);
    w.key("deferredByReason");
    w.beginObject();
    for (unsigned r = 1; r < cpu::kNumDeferReasons; ++r) {
        w.kv(cpu::deferReasonName(static_cast<cpu::DeferReason>(r)),
             tp.deferredByReason[r]);
    }
    w.endObject();
    w.kv("storeConflictFlushes", tp.storeConflictFlushes);
    w.kv("bDetMispredicts", tp.bDetMispredicts);
    w.kv("feedbackApplied", tp.feedbackApplied);
    w.kv("feedbackDropped", tp.feedbackDropped);
    w.endObject();

    if (outcome.sampled != nullptr) {
        const SampledEstimate &e = *outcome.sampled;
        w.key("sampled");
        w.beginObject();
        w.kv("intervalCycles", e.options.intervalCycles);
        w.kv("detailCycles", e.options.detailCycles);
        w.kv("warmupCycles", e.options.warmupCycles);
        w.kv("maxIntervals", e.options.maxIntervals);
        w.kv("spacing", e.spacing);
        w.kv("intervalsTotal", e.intervalsTotal);
        w.kv("intervalsMeasured", e.intervalsMeasured);
        w.kv("sampledCycles", e.sampledCycles);
        w.kv("sampledInsts", e.sampledInsts);
        w.kv("totalInsts", e.totalInsts);
        w.kv("prefixCycles", e.prefixCycles);
        w.kv("prefixInsts", e.prefixInsts);
        w.kv("ipcMean", e.ipcMean);
        w.kv("ipcStdDev", e.ipcStdDev);
        w.kv("ipcStdErr", e.ipcStdErr);
        w.kv("ipcCi95", e.ipcCi95);
        w.kv("estimatedCycles", e.estimatedCycles);
        w.endObject();
    }

    if (outcome.metrics != nullptr) {
        const MetricsRecord &rec = *outcome.metrics;
        emitProfile(w, rec);
        w.key("telemetry");
        w.beginObject();
        w.kv("enabled", rec.options.telemetry);
        w.kv("epochCycles",
             static_cast<std::uint64_t>(rec.options.epochCycles));
        w.key("data");
        rec.telemetry.toJson(w);
        w.endObject();
    }

    w.endObject();
    os << '\n';
    return os.str();
}

std::string
renderProfileTable(const MetricsRecord &rec, unsigned k)
{
    std::uint64_t total_stall = 0;
    for (const auto &row : rec.profile)
        total_stall += row.prof.stallCycles();
    for (unsigned c = 0; c < cpu::kNumCycleClasses; ++c) {
        if (static_cast<cpu::CycleClass>(c) !=
            cpu::CycleClass::kUnstalled) {
            total_stall += rec.unattributed[c];
        }
    }

    TextTable t;
    t.header({"#", "inst", "line", "retires", "stall", "stall%",
              "load", "nonload", "res", "fe", "apipe", "defers",
              "flush", "text"});

    unsigned rank = 0;
    for (const auto &row : rec.profile) {
        if (k != 0 && rank >= k)
            break;
        if (row.prof.stallCycles() == 0)
            break; // rows are stall-sorted: nothing left to attribute
        ++rank;
        const auto cls = [&](cpu::CycleClass c) {
            return std::to_string(
                row.prof.cycles[static_cast<unsigned>(c)]);
        };
        std::uint64_t flushes = 0;
        for (std::uint64_t f : row.prof.flushes)
            flushes += f;
        t.row({std::to_string(rank), std::to_string(row.idx),
               row.srcLine < 0 ? "-" : std::to_string(row.srcLine),
               std::to_string(row.prof.retires),
               std::to_string(row.prof.stallCycles()),
               total_stall == 0
                   ? "0.0%"
                   : pct(static_cast<double>(row.prof.stallCycles()) /
                         static_cast<double>(total_stall)),
               cls(cpu::CycleClass::kLoadStall),
               cls(cpu::CycleClass::kNonLoadDepStall),
               cls(cpu::CycleClass::kResourceStall),
               cls(cpu::CycleClass::kFrontEndStall),
               cls(cpu::CycleClass::kApipeStall),
               std::to_string(row.prof.totalDefers()),
               std::to_string(flushes), row.text});
    }
    return t.render();
}

} // namespace sim
} // namespace ff
