#include "memory/sparse_memory.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace ff
{
namespace memory
{

const SparseMemory::Page *
SparseMemory::findPage(Addr a) const
{
    auto it = _pages.find(a / kPageBytes);
    return it == _pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::pageFor(Addr a)
{
    std::shared_ptr<Page> &slot = _pages[a / kPageBytes];
    if (slot == nullptr) {
        slot = std::make_shared<Page>();
        slot->fill(0);
    } else if (slot.use_count() > 1) {
        // Copy-on-write: the page is shared with a checkpoint or
        // another machine's copy; clone before mutating.
        slot = std::make_shared<Page>(*slot);
    }
    return *slot;
}

std::uint8_t
SparseMemory::readByte(Addr a) const
{
    const Page *p = findPage(a);
    return p ? (*p)[a % kPageBytes] : 0;
}

void
SparseMemory::writeByte(Addr a, std::uint8_t v)
{
    pageFor(a)[a % kPageBytes] = v;
}

std::uint64_t
SparseMemory::read(Addr a, unsigned size) const
{
    ff_panic_if(size > 8, "oversized memory read");
    // Fast path: the access stays inside one page, so one page lookup
    // serves every byte (the byte loop below costs a hash probe per
    // byte, and this is the simulator-wide load path).
    if (size > 0 && a / kPageBytes == (a + size - 1) / kPageBytes) {
        const Page *p = findPage(a);
        if (p == nullptr)
            return 0;
        const std::uint8_t *b = p->data() + a % kPageBytes;
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(readByte(a + i)) << (8 * i);
    return v;
}

void
SparseMemory::write(Addr a, std::uint64_t v, unsigned size)
{
    ff_panic_if(size > 8, "oversized memory write");
    if (size > 0 && a / kPageBytes == (a + size - 1) / kPageBytes) {
        std::uint8_t *b = &pageFor(a)[a % kPageBytes];
        for (unsigned i = 0; i < size; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SparseMemory::loadPages(
    const std::map<Addr, std::vector<std::uint8_t>> &pages)
{
    for (const auto &[base, bytes] : pages) {
        std::size_t i = 0;
        while (i < bytes.size()) {
            Page &p = pageFor(base + i);
            const std::size_t off = (base + i) % kPageBytes;
            const std::size_t chunk =
                std::min(bytes.size() - i, kPageBytes - off);
            std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(i),
                      bytes.begin() +
                          static_cast<std::ptrdiff_t>(i + chunk),
                      p.begin() + static_cast<std::ptrdiff_t>(off));
            i += chunk;
        }
    }
}

void
SparseMemory::save(serial::Writer &w) const
{
    std::vector<Addr> page_nos;
    page_nos.reserve(_pages.size());
    for (const auto &[page_no, page] : _pages)
        page_nos.push_back(page_no);
    std::sort(page_nos.begin(), page_nos.end());

    w.u64(page_nos.size());
    for (const Addr page_no : page_nos) {
        w.u64(page_no);
        w.bytes(_pages.at(page_no)->data(), kPageBytes);
    }
}

void
SparseMemory::restore(serial::Reader &r)
{
    _pages.clear();
    const std::size_t n = r.seq(8 + kPageBytes);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr page_no = r.u64();
        auto p = std::make_shared<Page>();
        r.bytes(p->data(), kPageBytes);
        _pages[page_no] = std::move(p);
    }
}

std::uint64_t
SparseMemory::fingerprint() const
{
    // Hash each non-zero page independently, then combine with
    // addition so iteration order doesn't matter.
    std::uint64_t total = 0;
    for (const auto &[page_no, page] : _pages) {
        bool all_zero = true;
        for (std::uint8_t b : *page) {
            if (b != 0) {
                all_zero = false;
                break;
            }
        }
        if (all_zero)
            continue;
        std::uint64_t h = 1469598103934665603ULL ^ page_no;
        for (std::uint8_t b : *page) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        total += h;
    }
    return total;
}

} // namespace memory
} // namespace ff
