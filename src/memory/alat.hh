/**
 * @file
 * The two-pass ALAT of Section 3.4: a dynamic-ID-indexed conflict
 * detector, distinct from any architectural ALAT. Loads executed in
 * the A-pipe allocate entries; stores *executed in the B-pipe*
 * (i.e. deferred stores) delete overlapping entries; the merge of a
 * pre-executed load checks that its entry survived. A missing entry
 * means a conflicting older store intervened and speculative state
 * must be flushed.
 *
 * Table 1 models a perfect ALAT (no capacity conflicts); a finite
 * FIFO-evicting mode is provided for the capacity ablation, in which
 * evictions manifest as false-positive conflicts (safe, slower).
 */

#ifndef FF_MEMORY_ALAT_HH
#define FF_MEMORY_ALAT_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/serialize.hh"
#include "common/types.hh"

namespace ff
{
namespace memory
{

/** Statistics the experiments report about ALAT behaviour. */
struct AlatStats
{
    std::uint64_t allocations = 0;
    std::uint64_t storeInvalidations = 0; ///< entries killed by stores
    std::uint64_t capacityEvictions = 0;
    std::uint64_t checksPassed = 0;
    std::uint64_t checksFailed = 0;

    void reset() { *this = AlatStats(); }
};

/** DynID-indexed load-tracking table. */
class Alat
{
  public:
    /** @param capacity maximum live entries; 0 means perfect. */
    explicit Alat(unsigned capacity = 0) : _capacity(capacity) {}

    /** Tracks an A-pipe load of [addr, addr+size). */
    void allocate(DynId id, Addr addr, unsigned size);

    /** A deferred store executed in the B-pipe: kill overlaps. */
    void invalidateOverlap(Addr addr, unsigned size);

    /**
     * Merge-time check of a pre-executed load: true if its entry is
     * still live (no conflicting store intervened; also no capacity
     * eviction in finite mode).
     */
    bool check(DynId id);

    /** Releases the entry after a successful merge. */
    void remove(DynId id);

    /** Flush support: drops entries younger than @p boundary. */
    void squashYoungerThan(DynId boundary);

    void clear();

    std::size_t liveEntries() const { return _entries.size(); }
    const AlatStats &stats() const { return _stats; }
    AlatStats &stats() { return _stats; }

    /**
     * Snapshot hooks. The allocation-order fifo is captured alongside
     * the live entries so finite-capacity eviction order survives the
     * round trip.
     */
    void save(serial::Writer &w) const;
    void restore(serial::Reader &r);

  private:
    struct Entry
    {
        Addr addr;
        unsigned size;
    };

    unsigned _capacity;
    std::unordered_map<DynId, Entry> _entries;
    std::deque<DynId> _fifo; ///< allocation order, for finite eviction
    AlatStats _stats;
};

} // namespace memory
} // namespace ff

#endif // FF_MEMORY_ALAT_HH
