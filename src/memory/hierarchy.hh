/**
 * @file
 * The four-level memory hierarchy of Table 1: split 16KB L1I/L1D,
 * unified 256KB L2 and 1.5MB L3, 145-cycle main memory, with up to
 * 16 outstanding loads (MSHRs) and merging of accesses into in-flight
 * fills. Caches are tag-only; values come from SparseMemory.
 *
 * Every access records its initiator (baseline pipe, A-pipe, B-pipe)
 * and the level that serviced it, weighted by latency — exactly the
 * accounting behind the paper's Figure 7.
 */

#ifndef FF_MEMORY_HIERARCHY_HH
#define FF_MEMORY_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serialize.hh"
#include "memory/cache.hh"

namespace ff
{
namespace memory
{

/** Which level serviced an access. */
enum class MemLevel : std::uint8_t
{
    kL1 = 0,
    kL2 = 1,
    kL3 = 2,
    kMemory = 3,
};
inline constexpr unsigned kNumMemLevels = 4;

const char *memLevelName(MemLevel l);

/** What kind of access is being made. */
enum class AccessKind : std::uint8_t
{
    kInstFetch,
    kLoad,
    kStore,
};

/** Who initiated the access (Figure 7's categories). */
enum class Initiator : std::uint8_t
{
    kBaseline = 0,
    kApipe = 1,
    kBpipe = 2,
    kRunahead = 3,
};
inline constexpr unsigned kNumInitiators = 4;

/** Configuration of the full hierarchy (defaults per Table 1). */
struct MemoryConfig
{
    CacheGeometry l1i{16 * 1024, 4, 64, 2};
    CacheGeometry l1d{16 * 1024, 4, 64, 2};
    CacheGeometry l2{256 * 1024, 8, 128, 5};
    CacheGeometry l3{3 * 512 * 1024, 12, 128, 15};
    unsigned memoryLatency = 145;
    unsigned maxOutstandingLoads = 16;

    /**
     * Next-line hardware prefetch degree on the data side: a demand
     * load miss also requests the following N L1 lines (0 = off,
     * the Table 1 machine). Prefetches use their own request slots
     * (no MSHR pressure) — an idealization noted in DESIGN.md.
     */
    unsigned prefetchDegree = 0;
};

/** Outcome of a timed access. */
struct AccessResult
{
    MemLevel level;    ///< level that services the access
    unsigned latency;  ///< cycles until the value is usable
    bool mergedInFlight = false; ///< folded into an outstanding fill
};

/** Per-(initiator, level) access accounting for Figure 7. */
struct AccessStats
{
    std::array<std::array<std::uint64_t, kNumMemLevels>, kNumInitiators>
        counts{};
    std::array<std::array<std::uint64_t, kNumMemLevels>, kNumInitiators>
        weightedCycles{};

    void
    record(Initiator who, MemLevel level, unsigned latency)
    {
        auto w = static_cast<unsigned>(who);
        auto l = static_cast<unsigned>(level);
        ++counts[w][l];
        weightedCycles[w][l] += latency;
    }

    void reset() { counts = {}; weightedCycles = {}; }
};

/**
 * The timed memory system. Call tick(now) once per cycle before any
 * access in that cycle so due fills land first.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const MemoryConfig &cfg);

    /**
     * Processes fills that complete at or before @p now and releases
     * MSHRs of completed loads. Called once per simulated cycle by
     * every core model, so the nothing-due case is two comparisons
     * against cached minima — no container traversal.
     */
    void
    tick(Cycle now)
    {
        if (_nextFillDue <= now)
            drainFills(now);
        if (!_outstandingLoads.empty() &&
            _outstandingLoads.front() <= now) {
            releaseLoads(now);
        }
    }

    /**
     * Performs a timed access.
     *
     * Loads that miss the L1 are either merged into an in-flight fill
     * of the same L1 line (no new MSHR) or allocate an MSHR slot --
     * callers must have checked loadSlotAvailable(). Stores never
     * take an MSHR (a write buffer is assumed); they allocate lines
     * (write-allocate) and dirty them. Instruction fetches go through
     * the L1I and share L2/L3.
     */
    AccessResult access(AccessKind kind, Initiator who, Addr addr,
                        Cycle now);

    /**
     * Untimed warming access: probes and fills the tag hierarchy
     * exactly like a completed timed access — L1 hit updates LRU, a
     * miss installs the line in every level below the hit level, with
     * stores dirtying the L1 line — but schedules no fills, takes no
     * MSHR and advances no clock. Replaying an access history through
     * this reconstructs hot tag/LRU state for sampled-simulation
     * checkpoints. Hit/miss counters do tick (warming is visible in
     * raw cache statistics, never in timing).
     */
    void warmAccess(AccessKind kind, Addr addr);

    /** True if a load missing the L1 could allocate an MSHR now. */
    bool loadSlotAvailable(Cycle now) const;

    /** Current number of loads outstanding past the L1. */
    unsigned outstandingLoads(Cycle now) const;

    /** Data-side next-line prefetches issued so far. */
    std::uint64_t prefetchesIssued() const { return _prefetches; }

    /** Data-side (load/store) accounting — Figure 7's input. */
    const AccessStats &accessStats() const { return _stats; }
    AccessStats &accessStats() { return _stats; }

    /** Instruction-fetch accounting, kept separate from Figure 7. */
    const AccessStats &instAccessStats() const { return _instStats; }

    Cache &l1i() { return _l1i; }
    Cache &l1d() { return _l1d; }
    Cache &l2() { return _l2; }
    Cache &l3() { return _l3; }
    const MemoryConfig &config() const { return _cfg; }

    /** Clears all tag state, fills and stats. */
    void reset();

    /**
     * Snapshot hooks: all four caches, pending fills in completion
     * order (insertion order among same-cycle fills is preserved, so
     * install order replays exactly), in-flight merge maps, the MSHR
     * min-heap verbatim, and every statistic.
     */
    void save(serial::Writer &w) const;
    void restore(serial::Reader &r);

  private:
    struct PendingFill
    {
        Addr l1Line;       ///< L1-granularity line address
        bool isInst;       ///< fill L1I instead of L1D
        bool dirty;        ///< install dirty in the L1 (store fill)
        MemLevel from;     ///< level that supplied the line
    };

    /** Looks up levels below L1; schedules the fill; returns result. */
    AccessResult missPath(AccessKind kind, Addr addr, bool is_inst,
                          Cycle now);

    /** Installs every fill due by @p now (slow half of tick()). */
    void drainFills(Cycle now);
    /** Pops completed loads off the MSHR heap (slow half of tick()). */
    void releaseLoads(Cycle now);

    /**
     * Queues a fill of @p line, keeping the table sorted by due cycle
     * with same-cycle fills in insertion order (the multimap ordering
     * this table replaced, so install order replays identically).
     */
    void scheduleFill(Cycle due, const PendingFill &fill);

    /** _nextFillDue value meaning "no fill in flight". */
    static constexpr Cycle kNoFill =
        std::numeric_limits<Cycle>::max();

    MemoryConfig _cfg;
    Cache _l1i;
    Cache _l1d;
    Cache _l2;
    Cache _l3;

    /**
     * Fills in flight as a flat table sorted by completion cycle.
     * Bounded by MSHRs + prefetch degree in practice, so the O(n)
     * sorted insert and front erase beat node allocation.
     */
    std::vector<std::pair<Cycle, PendingFill>> _pendingFills;
    /** Due cycle of the earliest pending fill, or kNoFill. */
    Cycle _nextFillDue = kNoFill;

    /** L1-line -> completion cycle, for merge detection. */
    std::unordered_map<Addr, Cycle> _inFlightData;
    std::unordered_map<Addr, Cycle> _inFlightInst;

    /**
     * Completion cycles of loads occupying MSHRs, as a min-heap on
     * completion cycle. Expired entries are purged in tick(now), so
     * outstandingLoads() — called per dispatched load — is O(1) in
     * the common case: once the heap minimum is past @c now, every
     * entry is.
     */
    std::vector<Cycle> _outstandingLoads;

    AccessStats _stats;
    AccessStats _instStats;
    std::uint64_t _prefetches = 0;
};

} // namespace memory
} // namespace ff

#endif // FF_MEMORY_HIERARCHY_HH
