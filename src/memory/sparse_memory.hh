/**
 * @file
 * Byte-addressable sparse memory backing the simulated machine's
 * architectural (and, in the A-pipe, speculative) data state. Pages
 * are allocated on first touch; untouched bytes read as zero, so
 * wrong-path and pre-executed accesses to arbitrary addresses are
 * always safe (EPIC speculative loads are non-faulting).
 */

#ifndef FF_MEMORY_SPARSE_MEMORY_HH
#define FF_MEMORY_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace ff
{
namespace memory
{

/**
 * Sparse, zero-initialized, 64-bit address space.
 *
 * Pages are held by shared pointer and copied on write: copying a
 * SparseMemory duplicates only the page table, and the first store to
 * a shared page clones that one page. Value semantics are unchanged —
 * a copy never observes the original's later writes — but copies cost
 * O(touched pages) pointer bumps instead of O(footprint) bytes. The
 * sampled-simulation machinery leans on this: checkpoints are full
 * memory images taken every few thousand instructions, and each
 * detailed replay warps a fresh model to one of them.
 */
class SparseMemory
{
  public:
    static constexpr Addr kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    SparseMemory() = default;

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    /** Little-endian multi-byte accessors. @p size in {1,2,4,8}. */
    std::uint64_t read(Addr a, unsigned size) const;
    void write(Addr a, std::uint64_t v, unsigned size);

    std::uint64_t read64(Addr a) const { return read(a, 8); }
    std::uint32_t read32(Addr a) const
    {
        return static_cast<std::uint32_t>(read(a, 4));
    }
    void write64(Addr a, std::uint64_t v) { write(a, v, 8); }
    void write32(Addr a, std::uint32_t v) { write(a, v, 4); }

    /** Loads an initial data image (page-base -> page-bytes map). */
    void
    loadPages(const std::map<Addr, std::vector<std::uint8_t>> &pages);

    /**
     * Order-insensitive FNV-1a digest of all touched pages; used by
     * tests to compare final memory states across CPU models.
     * Trailing all-zero pages hash identically to untouched ones.
     */
    std::uint64_t fingerprint() const;

    std::size_t touchedPages() const { return _pages.size(); }

    /**
     * Snapshot hooks. Pages are written sorted by base address so the
     * encoded bytes are deterministic; restore() replaces the entire
     * contents.
     */
    void save(serial::Writer &w) const;
    void restore(serial::Reader &r);

  private:
    const Page *findPage(Addr a) const;
    /** Write-path lookup: allocates or clones so the page is unique. */
    Page &pageFor(Addr a);

    std::unordered_map<Addr, std::shared_ptr<Page>> _pages;
};

} // namespace memory
} // namespace ff

#endif // FF_MEMORY_SPARSE_MEMORY_HH
