/**
 * @file
 * The speculative store buffer of Section 3.4. Stores executed in the
 * A-pipe never touch architectural memory; their (address, value)
 * pairs wait here and forward, byte-accurately, to younger A-pipe
 * loads. When a pre-executed store reaches the B-pipe its entry is
 * committed to memory and released. Flushes squash younger entries.
 */

#ifndef FF_MEMORY_STORE_BUFFER_HH
#define FF_MEMORY_STORE_BUFFER_HH

#include <cstdint>
#include <deque>

#include "common/serialize.hh"
#include "common/types.hh"
#include "memory/sparse_memory.hh"

namespace ff
{
namespace memory
{

/** One buffered speculative store. */
struct StoreBufferEntry
{
    DynId id;
    Addr addr;
    unsigned size;
    std::uint64_t value;
};

/** In-order buffer of A-pipe-executed stores awaiting commit. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(std::size_t capacity = 64)
        : _capacity(capacity)
    {
    }

    bool full() const { return _entries.size() >= _capacity; }
    bool empty() const { return _entries.empty(); }
    std::size_t size() const { return _entries.size(); }

    /**
     * Buffers a store. Entries must arrive in ascending DynId order
     * (the A-pipe executes in order); violations panic.
     */
    void insert(DynId id, Addr addr, unsigned size, std::uint64_t value);

    /**
     * Composes the value an A-pipe load observes: per byte, the
     * youngest buffered store older than @p load_id covering that
     * byte wins; uncovered bytes come from @p mem.
     *
     * @param any_forwarded set true if at least one byte came from
     *        the buffer (store-to-load forwarding occurred)
     */
    std::uint64_t read(DynId load_id, Addr addr, unsigned size,
                       const SparseMemory &mem,
                       bool *any_forwarded = nullptr) const;

    /**
     * Commits the oldest entry (which must carry @p id) into @p mem
     * and releases it. The B-pipe calls this when a pre-executed
     * store merges.
     */
    void commitOldest(DynId id, SparseMemory &mem);

    /** Removes every entry younger than @p boundary (flush). */
    void squashYoungerThan(DynId boundary);

    void clear() { _entries.clear(); }

    const std::deque<StoreBufferEntry> &entries() const
    {
        return _entries;
    }

    /** Snapshot hooks: capacity (verified on restore) + entries. */
    void
    save(serial::Writer &w) const
    {
        w.u64(_capacity);
        w.u64(_entries.size());
        for (const StoreBufferEntry &e : _entries) {
            w.u64(e.id);
            w.u64(e.addr);
            w.u32(e.size);
            w.u64(e.value);
        }
    }

    void
    restore(serial::Reader &r)
    {
        if (r.u64() != _capacity) {
            r.fail();
            return;
        }
        _entries.clear();
        const std::size_t n = r.seq(28);
        for (std::size_t i = 0; i < n; ++i) {
            StoreBufferEntry e;
            e.id = r.u64();
            e.addr = r.u64();
            e.size = r.u32();
            e.value = r.u64();
            _entries.push_back(e);
        }
    }

  private:
    std::size_t _capacity;
    std::deque<StoreBufferEntry> _entries; ///< oldest first
};

} // namespace memory
} // namespace ff

#endif // FF_MEMORY_STORE_BUFFER_HH
