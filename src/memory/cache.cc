#include "memory/cache.hh"

#include "common/logging.hh"

namespace ff
{
namespace memory
{

Cache::Cache(std::string name, const CacheGeometry &geom)
    : _name(std::move(name)), _geom(geom)
{
    ff_fatal_if(geom.lineBytes == 0 ||
                    (geom.lineBytes & (geom.lineBytes - 1)) != 0,
                _name, ": line size must be a power of two");
    ff_fatal_if(geom.assoc == 0, _name, ": zero associativity");
    ff_fatal_if(geom.sizeBytes % (geom.lineBytes * geom.assoc) != 0,
                _name, ": size not divisible by line*assoc");
    _numSets = geom.sizeBytes / (geom.lineBytes * geom.assoc);
    ff_fatal_if(_numSets == 0, _name, ": zero sets");
    _lines.assign(_numSets * geom.assoc, Line());

    while ((static_cast<Addr>(1) << _lineShift) < geom.lineBytes)
        ++_lineShift;
    _pow2Sets = (_numSets & (_numSets - 1)) == 0;
    if (_pow2Sets) {
        while ((static_cast<std::size_t>(1) << _setShift) < _numSets)
            ++_setShift;
        _setMask = static_cast<Addr>(_numSets) - 1;
    }
}

bool
Cache::access(Addr a, bool set_dirty)
{
    Line *set = &_lines[setIndex(a) * _geom.assoc];
    const Addr tag = tagOf(a);
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lruStamp = ++_clock;
            if (set_dirty)
                set[w].dirty = true;
            ++_hits;
            return true;
        }
    }
    ++_misses;
    return false;
}

bool
Cache::contains(Addr a) const
{
    const Line *set = &_lines[setIndex(a) * _geom.assoc];
    const Addr tag = tagOf(a);
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

Eviction
Cache::insert(Addr a, bool dirty)
{
    Line *set = &_lines[setIndex(a) * _geom.assoc];
    const Addr tag = tagOf(a);
    // Already present (e.g. racing fills): refresh only.
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lruStamp = ++_clock;
            set[w].dirty = set[w].dirty || dirty;
            return {};
        }
    }
    // Choose an invalid way, else the LRU way.
    unsigned victim = 0;
    bool found_invalid = false;
    std::uint64_t oldest = ~0ULL;
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (!set[w].valid) {
            victim = w;
            found_invalid = true;
            break;
        }
        if (set[w].lruStamp < oldest) {
            oldest = set[w].lruStamp;
            victim = w;
        }
    }
    Eviction ev;
    if (!found_invalid) {
        ev.valid = true;
        ev.dirty = set[victim].dirty;
        // Reconstruct the victim's line address.
        ev.lineAddr = (set[victim].tag * _numSets + setIndex(a)) *
                      _geom.lineBytes;
        ++_evictions;
        if (ev.dirty)
            ++_writebacks;
    }
    set[victim] = {true, dirty, tag, ++_clock};
    return ev;
}

void
Cache::invalidate(Addr a)
{
    Line *set = &_lines[setIndex(a) * _geom.assoc];
    const Addr tag = tagOf(a);
    for (unsigned w = 0; w < _geom.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            return;
        }
    }
}

void
Cache::save(serial::Writer &w) const
{
    w.u64(_geom.sizeBytes);
    w.u32(_geom.assoc);
    w.u32(_geom.lineBytes);
    w.u32(_geom.latency);
    for (const Line &l : _lines) {
        w.boolean(l.valid);
        w.boolean(l.dirty);
        w.u64(l.tag);
        w.u64(l.lruStamp);
    }
    w.u64(_clock);
    w.u64(_hits);
    w.u64(_misses);
    w.u64(_evictions);
    w.u64(_writebacks);
}

void
Cache::restore(serial::Reader &r)
{
    if (r.u64() != _geom.sizeBytes || r.u32() != _geom.assoc ||
        r.u32() != _geom.lineBytes || r.u32() != _geom.latency) {
        r.fail();
        return;
    }
    for (Line &l : _lines) {
        l.valid = r.boolean();
        l.dirty = r.boolean();
        l.tag = r.u64();
        l.lruStamp = r.u64();
    }
    _clock = r.u64();
    _hits = r.u64();
    _misses = r.u64();
    _evictions = r.u64();
    _writebacks = r.u64();
}

void
Cache::reset()
{
    for (auto &l : _lines)
        l = Line();
    _clock = 0;
    _hits = _misses = _evictions = _writebacks = 0;
}

} // namespace memory
} // namespace ff
