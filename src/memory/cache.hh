/**
 * @file
 * A tag-only set-associative cache with true-LRU replacement. Data
 * values live in SparseMemory (the functional source of truth); the
 * caches model *timing* state: presence, dirtiness and recency.
 */

#ifndef FF_MEMORY_CACHE_HH
#define FF_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ff
{
namespace memory
{

/** Geometry and access time of one cache level. */
struct CacheGeometry
{
    std::size_t sizeBytes;
    unsigned assoc;
    unsigned lineBytes;
    /** Load-to-use latency when the access is serviced here. */
    unsigned latency;
};

/** Result of inserting a line: what was evicted, if anything. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
};

/** One level of tag state. */
class Cache
{
  public:
    Cache(std::string name, const CacheGeometry &geom);

    const std::string &name() const { return _name; }
    const CacheGeometry &geometry() const { return _geom; }

    /** Line-aligns @p a for this level. */
    Addr lineAddr(Addr a) const { return a & ~static_cast<Addr>(
        _geom.lineBytes - 1); }

    /**
     * Probes for @p a; updates LRU on hit.
     * @param set_dirty mark the line dirty on hit (store access)
     * @return true on hit
     */
    bool access(Addr a, bool set_dirty);

    /** Probe without touching LRU/dirty state (for tests/debug). */
    bool contains(Addr a) const;

    /**
     * Installs the line containing @p a, evicting the LRU way if the
     * set is full.
     * @param dirty install in dirty state (store fill)
     */
    Eviction insert(Addr a, bool dirty);

    /** Invalidates a line if present (back-invalidation). */
    void invalidate(Addr a);

    /** Drops all tag state (used between harness runs). */
    void reset();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }
    std::uint64_t writebacks() const { return _writebacks; }

    /**
     * Snapshot hooks: geometry is verified (a snapshot only restores
     * onto an identically configured cache), then the per-line tag/
     * LRU state, the LRU clock and the counters. Derived indexing
     * fields are constructor-computed and never serialized.
     */
    void save(serial::Writer &w) const;
    void restore(serial::Reader &r);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    // Set/tag extraction runs on every access of every level — the
    // hottest address arithmetic in the simulator. Line size is
    // power-of-two by construction; when the set count is too (every
    // Table 1 geometry), the div/mod pair reduces to shift/mask.
    std::size_t setIndex(Addr a) const
    {
        const Addr line = a >> _lineShift;
        return _pow2Sets ? static_cast<std::size_t>(line & _setMask)
                         : static_cast<std::size_t>(line % _numSets);
    }

    Addr tagOf(Addr a) const
    {
        const Addr line = a >> _lineShift;
        return _pow2Sets ? line >> _setShift : line / _numSets;
    }

    std::string _name;
    CacheGeometry _geom;
    std::size_t _numSets;
    unsigned _lineShift = 0;  ///< log2(lineBytes)
    bool _pow2Sets = false;   ///< set count is a power of two
    unsigned _setShift = 0;   ///< log2(numSets) when _pow2Sets
    Addr _setMask = 0;        ///< numSets - 1 when _pow2Sets
    std::vector<Line> _lines; ///< _numSets * assoc, set-major
    std::uint64_t _clock = 0; ///< LRU timestamp source

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
    std::uint64_t _writebacks = 0;
};

} // namespace memory
} // namespace ff

#endif // FF_MEMORY_CACHE_HH
