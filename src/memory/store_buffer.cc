#include "memory/store_buffer.hh"

#include "common/logging.hh"

namespace ff
{
namespace memory
{

void
StoreBuffer::insert(DynId id, Addr addr, unsigned size,
                    std::uint64_t value)
{
    ff_panic_if(full(), "store buffer overflow (caller must check)");
    ff_panic_if(!_entries.empty() && _entries.back().id >= id,
                "store buffer entries out of order");
    _entries.push_back({id, addr, size, value});
}

std::uint64_t
StoreBuffer::read(DynId load_id, Addr addr, unsigned size,
                  const SparseMemory &mem, bool *any_forwarded) const
{
    std::uint64_t result = 0;
    bool forwarded = false;
    for (unsigned byte = 0; byte < size; ++byte) {
        const Addr a = addr + byte;
        std::uint8_t v = 0;
        bool from_buffer = false;
        // Youngest-first scan for the byte's most recent older store.
        for (auto it = _entries.rbegin(); it != _entries.rend(); ++it) {
            if (it->id >= load_id)
                continue;
            if (a >= it->addr && a < it->addr + it->size) {
                v = static_cast<std::uint8_t>(
                    it->value >> (8 * (a - it->addr)));
                from_buffer = true;
                break;
            }
        }
        if (!from_buffer)
            v = mem.readByte(a);
        else
            forwarded = true;
        result |= static_cast<std::uint64_t>(v) << (8 * byte);
    }
    if (any_forwarded)
        *any_forwarded = forwarded;
    return result;
}

void
StoreBuffer::commitOldest(DynId id, SparseMemory &mem)
{
    ff_panic_if(_entries.empty(), "commit from empty store buffer");
    const StoreBufferEntry &e = _entries.front();
    ff_panic_if(e.id != id, "store buffer commit order violation: head ",
                e.id, " vs requested ", id);
    mem.write(e.addr, e.value, e.size);
    _entries.pop_front();
}

void
StoreBuffer::squashYoungerThan(DynId boundary)
{
    while (!_entries.empty() && _entries.back().id > boundary)
        _entries.pop_back();
}

} // namespace memory
} // namespace ff
