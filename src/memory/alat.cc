#include "memory/alat.hh"

namespace ff
{
namespace memory
{

void
Alat::allocate(DynId id, Addr addr, unsigned size)
{
    ++_stats.allocations;
    // Reclaim fifo slots whose entries were already released (merged
    // loads or squashes) before deciding whether a real eviction is
    // needed.
    while (!_fifo.empty() &&
           _entries.find(_fifo.front()) == _entries.end()) {
        _fifo.pop_front();
    }
    if (_capacity != 0 && _entries.size() >= _capacity) {
        // FIFO-evict the oldest still-live entry.
        while (!_fifo.empty()) {
            DynId victim = _fifo.front();
            _fifo.pop_front();
            auto it = _entries.find(victim);
            if (it != _entries.end()) {
                _entries.erase(it);
                ++_stats.capacityEvictions;
                break;
            }
        }
    }
    _entries[id] = {addr, size};
    _fifo.push_back(id);
}

void
Alat::invalidateOverlap(Addr addr, unsigned size)
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        const bool overlap = addr < it->second.addr + it->second.size &&
                             it->second.addr < addr + size;
        if (overlap) {
            it = _entries.erase(it);
            ++_stats.storeInvalidations;
        } else {
            ++it;
        }
    }
}

bool
Alat::check(DynId id)
{
    const bool present = _entries.count(id) != 0;
    if (present)
        ++_stats.checksPassed;
    else
        ++_stats.checksFailed;
    return present;
}

void
Alat::remove(DynId id)
{
    _entries.erase(id);
}

void
Alat::squashYoungerThan(DynId boundary)
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        if (it->first > boundary)
            it = _entries.erase(it);
        else
            ++it;
    }
    while (!_fifo.empty() && _fifo.back() > boundary)
        _fifo.pop_back();
}

void
Alat::clear()
{
    _entries.clear();
    _fifo.clear();
}

} // namespace memory
} // namespace ff
