#include "memory/alat.hh"

#include <algorithm>
#include <vector>

namespace ff
{
namespace memory
{

void
Alat::allocate(DynId id, Addr addr, unsigned size)
{
    ++_stats.allocations;
    // Reclaim fifo slots whose entries were already released (merged
    // loads or squashes) before deciding whether a real eviction is
    // needed.
    while (!_fifo.empty() &&
           _entries.find(_fifo.front()) == _entries.end()) {
        _fifo.pop_front();
    }
    if (_capacity != 0 && _entries.size() >= _capacity) {
        // FIFO-evict the oldest still-live entry.
        while (!_fifo.empty()) {
            DynId victim = _fifo.front();
            _fifo.pop_front();
            auto it = _entries.find(victim);
            if (it != _entries.end()) {
                _entries.erase(it);
                ++_stats.capacityEvictions;
                break;
            }
        }
    }
    _entries[id] = {addr, size};
    _fifo.push_back(id);
}

void
Alat::invalidateOverlap(Addr addr, unsigned size)
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        const bool overlap = addr < it->second.addr + it->second.size &&
                             it->second.addr < addr + size;
        if (overlap) {
            it = _entries.erase(it);
            ++_stats.storeInvalidations;
        } else {
            ++it;
        }
    }
}

bool
Alat::check(DynId id)
{
    const bool present = _entries.count(id) != 0;
    if (present)
        ++_stats.checksPassed;
    else
        ++_stats.checksFailed;
    return present;
}

void
Alat::remove(DynId id)
{
    _entries.erase(id);
}

void
Alat::squashYoungerThan(DynId boundary)
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        if (it->first > boundary)
            it = _entries.erase(it);
        else
            ++it;
    }
    while (!_fifo.empty() && _fifo.back() > boundary)
        _fifo.pop_back();
}

void
Alat::clear()
{
    _entries.clear();
    _fifo.clear();
}

void
Alat::save(serial::Writer &w) const
{
    w.u32(_capacity);

    // Entries sorted by id: lookup is by key, so order is semantics-
    // free, but sorting makes the encoded bytes deterministic.
    std::vector<DynId> ids;
    ids.reserve(_entries.size());
    for (const auto &[id, e] : _entries)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (const DynId id : ids) {
        const Entry &e = _entries.at(id);
        w.u64(id);
        w.u64(e.addr);
        w.u32(e.size);
    }

    // The fifo keeps allocation order (including slots whose entries
    // were already released) — eviction order depends on it.
    w.u64(_fifo.size());
    for (const DynId id : _fifo)
        w.u64(id);

    w.u64(_stats.allocations);
    w.u64(_stats.storeInvalidations);
    w.u64(_stats.capacityEvictions);
    w.u64(_stats.checksPassed);
    w.u64(_stats.checksFailed);
}

void
Alat::restore(serial::Reader &r)
{
    if (r.u32() != _capacity) {
        r.fail();
        return;
    }
    _entries.clear();
    _fifo.clear();
    const std::size_t entries = r.seq(20);
    for (std::size_t i = 0; i < entries; ++i) {
        const DynId id = r.u64();
        Entry e;
        e.addr = r.u64();
        e.size = r.u32();
        _entries[id] = e;
    }
    const std::size_t fifo = r.seq(8);
    for (std::size_t i = 0; i < fifo; ++i)
        _fifo.push_back(r.u64());
    _stats.allocations = r.u64();
    _stats.storeInvalidations = r.u64();
    _stats.capacityEvictions = r.u64();
    _stats.checksPassed = r.u64();
    _stats.checksFailed = r.u64();
}

} // namespace memory
} // namespace ff
