#include "memory/hierarchy.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"

namespace ff
{
namespace memory
{

const char *
memLevelName(MemLevel l)
{
    switch (l) {
      case MemLevel::kL1: return "L1";
      case MemLevel::kL2: return "L2";
      case MemLevel::kL3: return "L3";
      case MemLevel::kMemory: return "Mem";
    }
    return "?";
}

Hierarchy::Hierarchy(const MemoryConfig &cfg)
    : _cfg(cfg),
      _l1i("l1i", cfg.l1i),
      _l1d("l1d", cfg.l1d),
      _l2("l2", cfg.l2),
      _l3("l3", cfg.l3)
{
}

void
Hierarchy::drainFills(Cycle now)
{
    while (!_pendingFills.empty() && _pendingFills.front().first <= now) {
        const PendingFill f = _pendingFills.front().second;
        _pendingFills.erase(_pendingFills.begin());

        // Install bottom-up so inclusive-ish state is sensible.
        if (f.from == MemLevel::kMemory) {
            _l3.insert(f.l1Line, false);
            _l2.insert(f.l1Line, false);
        } else if (f.from == MemLevel::kL3) {
            _l2.insert(f.l1Line, false);
        }
        Cache &l1 = f.isInst ? _l1i : _l1d;
        l1.insert(f.l1Line, f.dirty);

        auto &in_flight = f.isInst ? _inFlightInst : _inFlightData;
        in_flight.erase(f.l1Line);
    }
    _nextFillDue =
        _pendingFills.empty() ? kNoFill : _pendingFills.front().first;
}

void
Hierarchy::releaseLoads(Cycle now)
{
    // Expire MSHRs whose loads have completed (heap min first).
    while (!_outstandingLoads.empty() && _outstandingLoads.front() <= now) {
        std::pop_heap(_outstandingLoads.begin(), _outstandingLoads.end(),
                      std::greater<Cycle>());
        _outstandingLoads.pop_back();
    }
}

void
Hierarchy::scheduleFill(Cycle due, const PendingFill &fill)
{
    // upper_bound keeps same-cycle fills in insertion order.
    auto pos = std::upper_bound(
        _pendingFills.begin(), _pendingFills.end(), due,
        [](Cycle d, const std::pair<Cycle, PendingFill> &p) {
            return d < p.first;
        });
    _pendingFills.insert(pos, {due, fill});
    if (due < _nextFillDue)
        _nextFillDue = due;
}

bool
Hierarchy::loadSlotAvailable(Cycle now) const
{
    return outstandingLoads(now) < _cfg.maxOutstandingLoads;
}

unsigned
Hierarchy::outstandingLoads(Cycle now) const
{
    if (_outstandingLoads.empty())
        return 0;
    // tick(now) purged everything due; if the heap minimum is still in
    // the future, so is every entry.
    if (_outstandingLoads.front() > now)
        return static_cast<unsigned>(_outstandingLoads.size());
    // Queried ahead of the purge (e.g. a probe at a later cycle):
    // count exactly.
    unsigned n = 0;
    for (Cycle c : _outstandingLoads) {
        if (c > now)
            ++n;
    }
    return n;
}

AccessResult
Hierarchy::missPath(AccessKind kind, Addr addr, bool is_inst, Cycle now)
{
    AccessResult r{};
    const bool is_store = kind == AccessKind::kStore;
    if (_l2.access(addr, false)) {
        r.level = MemLevel::kL2;
        r.latency = _cfg.l2.latency;
    } else if (_l3.access(addr, false)) {
        r.level = MemLevel::kL3;
        r.latency = _cfg.l3.latency;
    } else {
        r.level = MemLevel::kMemory;
        r.latency = _cfg.memoryLatency;
    }

    Cache &l1 = is_inst ? _l1i : _l1d;
    const Addr line = l1.lineAddr(addr);
    const Cycle due = now + r.latency;
    scheduleFill(due, PendingFill{line, is_inst, is_store, r.level});
    auto &in_flight = is_inst ? _inFlightInst : _inFlightData;
    in_flight.emplace(line, due);

    if (kind == AccessKind::kLoad) {
        _outstandingLoads.push_back(due);
        std::push_heap(_outstandingLoads.begin(), _outstandingLoads.end(),
                       std::greater<Cycle>());
    }
    return r;
}

void
Hierarchy::warmAccess(AccessKind kind, Addr addr)
{
    const bool is_inst = kind == AccessKind::kInstFetch;
    const bool is_store = kind == AccessKind::kStore;
    Cache &l1 = is_inst ? _l1i : _l1d;
    if (l1.access(addr, is_store))
        return;
    // Mirror the drainFills() install policy: a line fetched from
    // memory lands in L3+L2+L1, from the L3 in L2+L1, from the L2 in
    // the L1 only.
    const Addr line = l1.lineAddr(addr);
    if (!_l2.access(addr, false)) {
        if (!_l3.access(addr, false))
            _l3.insert(line, false);
        _l2.insert(line, false);
    }
    l1.insert(line, is_store);
}

AccessResult
Hierarchy::access(AccessKind kind, Initiator who, Addr addr, Cycle now)
{
    const bool is_inst = kind == AccessKind::kInstFetch;
    const bool is_store = kind == AccessKind::kStore;
    Cache &l1 = is_inst ? _l1i : _l1d;

    AccessResult r{};
    if (l1.access(addr, is_store)) {
        r.level = MemLevel::kL1;
        r.latency = l1.geometry().latency;
    } else {
        // Merge into an in-flight fill of the same L1 line?
        auto &in_flight = is_inst ? _inFlightInst : _inFlightData;
        auto it = in_flight.find(l1.lineAddr(addr));
        if (it != in_flight.end()) {
            const Cycle due = it->second;
            r.latency = static_cast<unsigned>(
                std::max<Cycle>(l1.geometry().latency,
                                due > now ? due - now : 0));
            // Attribute to the L1 for stats: the long-latency portion
            // was charged to the access that started the fill.
            r.level = MemLevel::kL1;
            r.mergedInFlight = true;
        } else {
            r = missPath(kind, addr, is_inst, now);
            if (kind == AccessKind::kLoad && _cfg.prefetchDegree > 0) {
                // Next-line prefetch behind the demand miss.
                const unsigned line = l1.geometry().lineBytes;
                for (unsigned d = 1; d <= _cfg.prefetchDegree; ++d) {
                    const Addr next =
                        l1.lineAddr(addr) + static_cast<Addr>(d) * line;
                    if (l1.contains(next) ||
                        in_flight.count(l1.lineAddr(next)) != 0) {
                        continue;
                    }
                    ++_prefetches;
                    // Probe the lower levels (LRU-touching, like a
                    // real prefetch) and schedule the fill; no MSHR.
                    unsigned lat;
                    if (_l2.access(next, false))
                        lat = _cfg.l2.latency;
                    else if (_l3.access(next, false))
                        lat = _cfg.l3.latency;
                    else
                        lat = _cfg.memoryLatency;
                    const Cycle due = now + lat;
                    scheduleFill(due,
                                 PendingFill{l1.lineAddr(next), is_inst,
                                             false, MemLevel::kL1});
                    in_flight.emplace(l1.lineAddr(next), due);
                }
            }
        }
    }
    if (is_inst)
        _instStats.record(who, r.level, r.latency);
    else
        _stats.record(who, r.level, r.latency);
    return r;
}

namespace
{

void
saveAccessStats(serial::Writer &w, const AccessStats &s)
{
    for (unsigned i = 0; i < kNumInitiators; ++i) {
        for (unsigned l = 0; l < kNumMemLevels; ++l) {
            w.u64(s.counts[i][l]);
            w.u64(s.weightedCycles[i][l]);
        }
    }
}

void
restoreAccessStats(serial::Reader &r, AccessStats &s)
{
    for (unsigned i = 0; i < kNumInitiators; ++i) {
        for (unsigned l = 0; l < kNumMemLevels; ++l) {
            s.counts[i][l] = r.u64();
            s.weightedCycles[i][l] = r.u64();
        }
    }
}

void
saveInFlight(serial::Writer &w,
             const std::unordered_map<Addr, Cycle> &m)
{
    // Sorted by line address: lookups are keyed, so order is
    // semantics-free, but sorting makes the encoding deterministic.
    std::vector<std::pair<Addr, Cycle>> v(m.begin(), m.end());
    std::sort(v.begin(), v.end());
    w.u64(v.size());
    for (const auto &[line, due] : v) {
        w.u64(line);
        w.u64(due);
    }
}

void
restoreInFlight(serial::Reader &r, std::unordered_map<Addr, Cycle> &m)
{
    m.clear();
    const std::size_t n = r.seq(16);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr line = r.u64();
        m[line] = r.u64();
    }
}

} // namespace

void
Hierarchy::save(serial::Writer &w) const
{
    _l1i.save(w);
    _l1d.save(w);
    _l2.save(w);
    _l3.save(w);

    w.u64(_pendingFills.size());
    for (const auto &[due, f] : _pendingFills) {
        w.u64(due);
        w.u64(f.l1Line);
        w.boolean(f.isInst);
        w.boolean(f.dirty);
        w.u8(static_cast<std::uint8_t>(f.from));
    }

    saveInFlight(w, _inFlightData);
    saveInFlight(w, _inFlightInst);

    // The heap vector verbatim: layout determines pop order among
    // equal completion cycles.
    w.u64(_outstandingLoads.size());
    for (const Cycle c : _outstandingLoads)
        w.u64(c);

    saveAccessStats(w, _stats);
    saveAccessStats(w, _instStats);
    w.u64(_prefetches);
}

void
Hierarchy::restore(serial::Reader &r)
{
    _l1i.restore(r);
    _l1d.restore(r);
    _l2.restore(r);
    _l3.restore(r);

    _pendingFills.clear();
    const std::size_t fills = r.seq(19);
    _pendingFills.reserve(fills);
    for (std::size_t i = 0; i < fills; ++i) {
        const Cycle due = r.u64();
        PendingFill f;
        f.l1Line = r.u64();
        f.isInst = r.boolean();
        f.dirty = r.boolean();
        f.from = static_cast<MemLevel>(r.u8());
        // The stream is already sorted (saved in table order).
        _pendingFills.push_back({due, f});
    }
    _nextFillDue =
        _pendingFills.empty() ? kNoFill : _pendingFills.front().first;

    restoreInFlight(r, _inFlightData);
    restoreInFlight(r, _inFlightInst);

    _outstandingLoads.clear();
    const std::size_t loads = r.seq(8);
    for (std::size_t i = 0; i < loads; ++i)
        _outstandingLoads.push_back(r.u64());

    restoreAccessStats(r, _stats);
    restoreAccessStats(r, _instStats);
    _prefetches = r.u64();
}

void
Hierarchy::reset()
{
    _l1i.reset();
    _l1d.reset();
    _l2.reset();
    _l3.reset();
    _pendingFills.clear();
    _nextFillDue = kNoFill;
    _inFlightData.clear();
    _inFlightInst.clear();
    _outstandingLoads.clear();
    _stats.reset();
    _instStats.reset();
    _prefetches = 0;
}

} // namespace memory
} // namespace ff
