#include "analysis/memdep.hh"

#include "common/logging.hh"

namespace ff
{
namespace analysis
{

using compiler::AliasResult;
using isa::Instruction;
using isa::Opcode;
using isa::RegClass;
using isa::RegId;

namespace
{

/** Copy-chain chase depth: movi/mov/add-imm chains longer than this
 *  resolve to the nearest opaque def instead (still sound). */
constexpr int kMaxChase = 8;

} // namespace

unsigned
MemDep::accessBytes(const Instruction &in)
{
    return (in.op == Opcode::kLd4 || in.op == Opcode::kSt4) ? 4 : 8;
}

MemDep::MemDep(const Cfg &cfg, const ReachingDefs &rd)
    : _cfg(cfg), _rd(rd)
{
    const isa::Program &prog = _cfg.program();
    _addr.resize(prog.size());
    for (InstIdx i = 0; i < prog.size(); ++i) {
        const Instruction &in = prog.inst(i);
        if (!in.isMem())
            continue;
        SymAddr a =
            resolveBase(i, in.src1, kMaxChase, _cfg.blockIndexOf(i));
        if (a.valid)
            a.disp += static_cast<std::uint64_t>(in.imm);
        _addr[i] = a;
    }
}

SymAddr
MemDep::resolveBase(InstIdx at, RegId reg, int depth,
                    std::size_t useBlock) const
{
    SymAddr a;
    if (reg.cls != RegClass::kInt)
        return a;
    if (reg.idx == 0) {
        // r0 is hardwired zero: an absolute address.
        a.valid = true;
        a.isConst = true;
        return a;
    }
    const std::optional<InstIdx> def = _rd.uniqueDef(at, reg);
    if (!def.has_value())
        return a;
    const Instruction &d = _cfg.program().inst(*def);
    if (d.op == Opcode::kMovi) {
        // A constant base is an absolute fact whatever block it is in.
        a.valid = true;
        a.isConst = true;
        a.disp = static_cast<std::uint64_t>(d.imm);
        return a;
    }
    // Chasing a copy that lives in a *different* block could mix two
    // dynamic instances of the origin (e.g. an increment captured last
    // iteration), so the chase is confined to the use's own block;
    // everything else becomes an opaque origin, which is sound because
    // the unique reaching def guarantees no intervening write between
    // two same-block uses.
    if (depth > 0 && _cfg.blockIndexOf(*def) == useBlock) {
        if (d.op == Opcode::kMov)
            return resolveBase(*def, d.src1, depth - 1, useBlock);
        if ((d.op == Opcode::kAdd || d.op == Opcode::kSub) &&
            d.src2IsImm) {
            SymAddr inner =
                resolveBase(*def, d.src1, depth - 1, useBlock);
            if (inner.valid) {
                const std::uint64_t off =
                    static_cast<std::uint64_t>(d.imm);
                inner.disp += d.op == Opcode::kAdd ? off : 0 - off;
            }
            return inner;
        }
    }
    // Opaque but well-defined origin: the unique defining write.
    a.valid = true;
    a.origin = *def;
    return a;
}

AliasResult
MemDep::alias(InstIdx a, InstIdx b) const
{
    const isa::Program &prog = _cfg.program();
    ff_panic_if(a >= prog.size() || b >= prog.size(),
                "alias query out of range");
    if (!prog.inst(a).isMem() || !prog.inst(b).isMem())
        return AliasResult::kMayAlias;
    const SymAddr &sa = _addr[a];
    const SymAddr &sb = _addr[b];
    if (!sa.valid || !sb.valid)
        return AliasResult::kMayAlias;
    if (sa.isConst != sb.isConst)
        return AliasResult::kMayAlias; // unrelated bases
    if (!sa.isConst) {
        if (sa.origin != sb.origin)
            return AliasResult::kMayAlias;
        // Instruction origins: the "same dynamic base value" argument
        // only holds when both uses sit in one basic block.
        if (_cfg.blockIndexOf(a) != _cfg.blockIndexOf(b))
            return AliasResult::kMayAlias;
    }
    // Same base: compare byte intervals [disp, disp + size).
    const std::uint64_t alo = sa.disp;
    const std::uint64_t ahi = alo + accessBytes(prog.inst(a));
    const std::uint64_t blo = sb.disp;
    const std::uint64_t bhi = blo + accessBytes(prog.inst(b));
    if (ahi <= blo || bhi <= alo)
        return AliasResult::kMustNotAlias;
    return AliasResult::kMustAlias;
}

isa::Program
scheduleWithAlias(const isa::Program &sequential,
                  const compiler::SchedulerConfig &cfg)
{
    if (cfg.alias != nullptr)
        return compiler::schedule(sequential, cfg);
    const Cfg graph(sequential);
    const ReachingDefs rd(graph);
    const MemDep md(graph, rd);
    compiler::SchedulerConfig with = cfg;
    with.alias = &md;
    return compiler::schedule(sequential, with);
}

} // namespace analysis
} // namespace ff
