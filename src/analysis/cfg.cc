#include "analysis/cfg.hh"

#include "common/logging.hh"
#include "compiler/scheduler.hh"

namespace ff
{
namespace analysis
{

using isa::Instruction;
using isa::Program;

Cfg::Cfg(const Program &prog) : _prog(prog)
{
    ff_panic_if(prog.size() == 0, "CFG over an empty program");

    const std::vector<InstIdx> leaders =
        compiler::findBlockLeaders(prog);
    const InstIdx n = prog.size();
    _blockOf.assign(n, 0);
    _blocks.reserve(leaders.size());
    for (std::size_t b = 0; b < leaders.size(); ++b) {
        CfgBlock blk;
        blk.begin = leaders[b];
        blk.end = (b + 1 < leaders.size()) ? leaders[b + 1] : n;
        for (InstIdx i = blk.begin; i < blk.end; ++i)
            _blockOf[i] = b;
        _blocks.push_back(std::move(blk));
    }

    // Successor edges: fall-through (unless the block ends in a halt
    // or an unconditional branch) plus the branch target.
    for (std::size_t b = 0; b < _blocks.size(); ++b) {
        CfgBlock &blk = _blocks[b];
        const Instruction &last = prog.inst(blk.end - 1);
        bool falls_through = !last.isHalt();
        if (last.isBranch()) {
            const InstIdx tgt = static_cast<InstIdx>(last.imm);
            ff_panic_if(tgt >= n, "branch target out of range");
            blk.succs.push_back(_blockOf[tgt]);
            // A branch qualified by p0 is unconditional.
            if (last.qpred.cls == isa::RegClass::kPred &&
                last.qpred.idx == 0) {
                falls_through = false;
            }
        }
        if (falls_through && blk.end < n)
            blk.succs.push_back(_blockOf[blk.end]);
    }
    for (std::size_t b = 0; b < _blocks.size(); ++b) {
        for (std::size_t s : _blocks[b].succs)
            _blocks[s].preds.push_back(b);
    }
}

} // namespace analysis
} // namespace ff
