/**
 * @file
 * The whole-program control-flow graph every dataflow analysis walks.
 * Blocks follow the scheduler's leader rules (entry, branch targets,
 * fall-throughs after branches and halts); edges are fall-through
 * plus branch targets, with predecessor lists materialized so both
 * forward and backward analyses iterate efficiently. One Cfg is built
 * per program and shared by every analysis instantiated over it.
 */

#ifndef FF_ANALYSIS_CFG_HH
#define FF_ANALYSIS_CFG_HH

#include <vector>

#include "isa/program.hh"

namespace ff
{
namespace analysis
{

/** One basic block: an instruction range plus its CFG edges. */
struct CfgBlock
{
    InstIdx begin; ///< first instruction
    InstIdx end;   ///< one past the last instruction
    /** Indices (into the block vector) of possible successors. */
    std::vector<std::size_t> succs;
    /** Indices of possible predecessors (inverse of succs). */
    std::vector<std::size_t> preds;
};

/** The control-flow graph of one program. Block 0 is the entry. */
class Cfg
{
  public:
    /** Partitions @p prog into blocks and wires the edges. */
    explicit Cfg(const isa::Program &prog);

    const isa::Program &program() const { return _prog; }

    const std::vector<CfgBlock> &blocks() const { return _blocks; }

    std::size_t numBlocks() const { return _blocks.size(); }

    /** Index of the block containing instruction @p i. */
    std::size_t blockIndexOf(InstIdx i) const { return _blockOf.at(i); }

    /** The block containing instruction @p i. */
    const CfgBlock &blockOf(InstIdx i) const
    {
        return _blocks[blockIndexOf(i)];
    }

  private:
    const isa::Program &_prog;
    std::vector<CfgBlock> _blocks;
    std::vector<std::size_t> _blockOf; ///< inst -> block index
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_CFG_HH
