#include "analysis/ffcheck.hh"

#include <algorithm>
#include <deque>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/constprop.hh"
#include "analysis/liveness.hh"
#include "analysis/memdep.hh"
#include "analysis/range.hh"
#include "analysis/reachdefs.hh"
#include "compiler/depgraph.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

using compiler::AliasResult;
using compiler::DepEdge;
using compiler::DepGraph;
using compiler::DepKind;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::RegClass;
using isa::RegId;

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::kNote: return "note";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "?";
}

const char *
checkName(CheckId id)
{
    switch (id) {
      case CheckId::kUninitRead: return "uninit-read";
      case CheckId::kUninitPredicate: return "uninit-predicate";
      case CheckId::kGroupRaw: return "group-raw";
      case CheckId::kGroupWaw: return "group-waw";
      case CheckId::kGroupMemOrder: return "group-mem-order";
      case CheckId::kAliasStoreOrder: return "alias-store-order";
      case CheckId::kGroupOversubscribed: return "group-oversubscribed";
      case CheckId::kBranchTarget: return "branch-target";
      case CheckId::kBranchNotGroupFinal: return "branch-not-group-final";
      case CheckId::kFallOffEnd: return "fall-off-end";
      case CheckId::kHaltUnreachable: return "halt-unreachable";
      case CheckId::kUnreachableCode: return "unreachable-code";
      case CheckId::kPredPairAliased: return "pred-pair-aliased";
      case CheckId::kPredDestClass: return "pred-dest-class";
      case CheckId::kWriteHardwired: return "write-hardwired";
      case CheckId::kRegOutOfRange: return "reg-out-of-range";
      case CheckId::kMissingFinalStop: return "missing-final-stop";
      case CheckId::kNoHalt: return "no-halt";
      case CheckId::kNullAccess: return "null-access";
      case CheckId::kMisalignedAccess: return "misaligned-access";
      case CheckId::kRegPressure: return "reg-pressure";
    }
    return "?";
}

std::string
render(const Report &report, const std::string &source, bool show_notes)
{
    std::ostringstream oss;
    for (const Finding &f : report.findings) {
        if (f.severity == Severity::kNote && !show_notes)
            continue;
        oss << source;
        if (f.srcLine > 0)
            oss << ':' << f.srcLine;
        oss << ": " << severityName(f.severity) << ": ["
            << checkName(f.id) << "] " << f.message << '\n';
    }
    return oss.str();
}

namespace
{

bool
regInRange(RegId r)
{
    switch (r.cls) {
      case RegClass::kNone:
        return true;
      case RegClass::kInt:
        return r.idx < isa::kNumIntRegs;
      case RegClass::kFp:
        return r.idx < isa::kNumFpRegs;
      case RegClass::kPred:
        return r.idx < isa::kNumPredRegs;
    }
    return false;
}

bool
hardwired(RegId r)
{
    return r.cls != RegClass::kNone && r.idx == 0;
}

/** Collects the checker state for one run. */
class Checker
{
  public:
    Checker(const Program &prog, const CheckOptions &opts)
        : _prog(prog), _opts(opts)
    {
    }

    Report
    run()
    {
        if (_prog.size() == 0) {
            add(CheckId::kNoHalt, Severity::kError, kInvalidInstIdx,
                "program is empty");
            return std::move(_report);
        }
        const bool sound = structural();
        if (sound) {
            // The remaining passes are dataflow analyses over the CFG
            // (see analysis/dataflow.hh), so they only run on programs
            // whose registers and branch structure are intact. All of
            // them share one CFG.
            const Cfg cfg(_prog);
            const ReachingDefs rd(cfg);
            controlFlow(cfg);
            defBeforeUse(rd);
            constantMemory(cfg);
            const MemDep md(cfg, rd);
            groups(md);
            if (_opts.reportPressure) {
                const Liveness live(cfg);
                pressure(live);
            }
        }
        std::stable_sort(_report.findings.begin(),
                         _report.findings.end(),
                         [](const Finding &a, const Finding &b) {
                             return a.inst < b.inst;
                         });
        return std::move(_report);
    }

  private:
    void
    add(CheckId id, Severity sev, InstIdx inst, std::string msg)
    {
        Finding f;
        f.id = id;
        f.severity = sev;
        f.inst = inst;
        if (inst != kInvalidInstIdx && inst < _prog.size())
            f.srcLine = _prog.inst(inst).srcLine;
        f.message = std::move(msg);
        _report.findings.push_back(std::move(f));
    }

    std::string
    at(InstIdx i) const
    {
        return "inst " + std::to_string(i);
    }

    /**
     * Per-instruction structural checks. Returns false if the damage
     * (bad register indices, wild branch targets) makes the CFG
     * passes unsafe to run.
     */
    bool
    structural()
    {
        const InstIdx n = _prog.size();
        bool sound = true;
        bool has_halt = false;

        if (!_prog.inst(n - 1).stop) {
            add(CheckId::kMissingFinalStop, Severity::kError, n - 1,
                at(n - 1) + ": final instruction lacks a stop bit");
        }
        for (InstIdx i = 0; i < n; ++i) {
            const Instruction &in = _prog.inst(i);
            if (in.isHalt())
                has_halt = true;

            for (const RegId r :
                 {in.qpred, in.dst, in.dst2, in.src1, in.src2}) {
                if (!regInRange(r)) {
                    add(CheckId::kRegOutOfRange, Severity::kError, i,
                        at(i) + ": register index " +
                            std::to_string(r.idx) +
                            " is beyond the 64-entry file");
                    sound = false;
                }
            }
            if (in.qpred.cls != RegClass::kPred) {
                add(CheckId::kRegOutOfRange, Severity::kError, i,
                    at(i) +
                        ": qualifying predicate is not a predicate "
                        "register");
                sound = false;
            }

            std::array<RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d) {
                if (hardwired(dsts[d])) {
                    add(CheckId::kWriteHardwired, Severity::kError, i,
                        at(i) + ": write to hardwired " +
                            isa::regName(dsts[d]));
                }
            }

            if (in.op == Opcode::kCmp || in.op == Opcode::kFcmp) {
                if (in.dst.cls != RegClass::kPred ||
                    in.dst2.cls != RegClass::kPred) {
                    add(CheckId::kPredDestClass, Severity::kError, i,
                        at(i) + ": compare destinations must be "
                                "predicate registers");
                } else if (in.dst == in.dst2) {
                    add(CheckId::kPredPairAliased, Severity::kError, i,
                        at(i) + ": complementary predicate pair "
                                "aliases " +
                            isa::regName(in.dst) +
                            " (the pair must be distinct)");
                }
            }

            if (in.isBranch()) {
                if (!in.stop) {
                    add(CheckId::kBranchNotGroupFinal, Severity::kError,
                        i,
                        at(i) + ": branch is not the final slot of "
                                "its issue group");
                }
                if (in.imm < 0 ||
                    in.imm >= static_cast<std::int64_t>(n)) {
                    add(CheckId::kBranchTarget, Severity::kError, i,
                        at(i) + ": branch target " +
                            std::to_string(in.imm) +
                            " is outside the program");
                    sound = false;
                } else if (!_prog.isGroupLeader(
                               static_cast<InstIdx>(in.imm))) {
                    add(CheckId::kBranchTarget, Severity::kError, i,
                        at(i) + ": branch target " +
                            std::to_string(in.imm) +
                            " is not an issue-group leader");
                }
            }
        }
        if (!has_halt) {
            add(CheckId::kNoHalt, Severity::kError, kInvalidInstIdx,
                "program has no halt instruction");
        }
        return sound;
    }

    /** True if @p blk can fall through past its last instruction. */
    static bool
    fallsThrough(const Program &prog, const CfgBlock &blk)
    {
        const Instruction &last = prog.inst(blk.end - 1);
        if (last.isHalt())
            return false;
        return !(last.isBranch() && hardwired(last.qpred));
    }

    void
    controlFlow(const Cfg &cfg)
    {
        const auto &blocks = cfg.blocks();
        const std::size_t nb = blocks.size();

        // Forward reachability from the entry block.
        std::vector<bool> reachable(nb, false);
        std::deque<std::size_t> work{0};
        reachable[0] = true;
        while (!work.empty()) {
            const std::size_t b = work.front();
            work.pop_front();
            for (std::size_t s : blocks[b].succs) {
                if (!reachable[s]) {
                    reachable[s] = true;
                    work.push_back(s);
                }
            }
        }

        std::vector<bool> falls_off(nb, false);
        bool any_halt = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (_prog.inst(blocks[b].end - 1).isHalt())
                any_halt = true;
            if (!reachable[b]) {
                add(CheckId::kUnreachableCode, Severity::kWarning,
                    blocks[b].begin,
                    at(blocks[b].begin) + ": block is unreachable "
                                          "from the entry");
                continue;
            }
            if (fallsThrough(_prog, blocks[b]) &&
                blocks[b].end == _prog.size()) {
                falls_off[b] = true;
                add(CheckId::kFallOffEnd, Severity::kError,
                    blocks[b].end - 1,
                    at(blocks[b].end - 1) +
                        ": control can run past the last "
                        "instruction of the program");
            }
        }

        // Backward reachability from halt-terminated blocks: every
        // reachable block must have *some* path to a halt, or the
        // program can only end by running forever (or falling off,
        // which is reported separately).
        if (any_halt) {
            std::vector<bool> reaches_halt(nb, false);
            std::deque<std::size_t> back;
            for (std::size_t b = 0; b < nb; ++b) {
                if (reachable[b] &&
                    _prog.inst(blocks[b].end - 1).isHalt()) {
                    reaches_halt[b] = true;
                    back.push_back(b);
                }
            }
            while (!back.empty()) {
                const std::size_t b = back.front();
                back.pop_front();
                for (std::size_t p : blocks[b].preds) {
                    if (!reaches_halt[p]) {
                        reaches_halt[p] = true;
                        back.push_back(p);
                    }
                }
            }
            for (std::size_t b = 0; b < nb; ++b) {
                if (reachable[b] && !reaches_halt[b] && !falls_off[b]) {
                    add(CheckId::kHaltUnreachable, Severity::kError,
                        blocks[b].begin,
                        at(blocks[b].begin) +
                            ": no path from here reaches a halt "
                            "(infinite loop)");
                }
            }
        }
    }

    /**
     * Whole-program flow-sensitive def-before-use: a read is
     * uninitialized when the entry pseudo-definition of the register
     * may reach it, i.e. some path from the entry performs no write
     * first. ffvm resets registers to zero, so the behavior is
     * defined — hence a warning, promoted to an error by strict
     * consumers. One finding per register, at its first flagged read.
     */
    void
    defBeforeUse(const ReachingDefs &rd)
    {
        std::vector<bool> reported(cpu::kNumRegSlots, false);
        for (InstIdx i = 0; i < _prog.size(); ++i) {
            const Instruction &in = _prog.inst(i);
            std::array<RegId, 6> regs;
            std::array<RegId, 4> srcs;
            unsigned n = in.sources(srcs);
            std::copy(srcs.begin(), srcs.begin() + n, regs.begin());
            // A predicated write reads the old value it may retain.
            if (!hardwired(in.qpred)) {
                std::array<RegId, 2> dsts;
                const unsigned nd = in.destinations(dsts);
                for (unsigned d = 0; d < nd; ++d)
                    regs[n++] = dsts[d];
            }
            for (unsigned s = 0; s < n; ++s) {
                const RegId reg = regs[s];
                const int slot = cpu::regSlot(reg);
                if (slot < 0 || reg.idx == 0 ||
                    reported[static_cast<std::size_t>(slot)]) {
                    continue;
                }
                if (!rd.entryReaches(i, reg))
                    continue;
                reported[static_cast<std::size_t>(slot)] = true;
                const bool pred = reg.cls == RegClass::kPred;
                add(pred ? CheckId::kUninitPredicate
                         : CheckId::kUninitRead,
                    Severity::kWarning, i,
                    at(i) + ": " + isa::regName(reg) +
                        " is read before any write reaches it" +
                        (pred ? " (predicate defaults to false)"
                              : " (reads architectural zero)"));
            }
        }
    }

    /**
     * Issue-group legality: rebuild the dependence graph over each
     * group in isolation; any edge demanding one or more cycles of
     * separation between two slots of the same group breaks the EPIC
     * independence contract the two-pass merge logic assumes. Memory
     * pairs go through the alias analysis: provably disjoint accesses
     * are legal groupmates, provably overlapping ones escalate to the
     * dedicated alias-store-order diagnostic. Also counts functional-
     * unit demand against the machine widths.
     */
    void
    groups(const MemDep &md)
    {
        const InstIdx n = _prog.size();
        for (InstIdx leader = 0; leader < n;
             leader = _prog.groupEnd(leader)) {
            const InstIdx end = _prog.groupEnd(leader);
            const DepGraph graph(_prog.insts(), leader, end,
                                 _opts.latencies, &md);
            for (const DepEdge &e : graph.edges()) {
                if (e.minSep == 0)
                    continue; // WAR/control: same group is legal
                const InstIdx to = leader + e.to;
                const InstIdx from = leader + e.from;
                CheckId id;
                std::string what;
                switch (e.kind) {
                  case DepKind::kRaw:
                    id = CheckId::kGroupRaw;
                    what = "reads " + isa::regName(e.reg) +
                           " written by inst " + std::to_string(from) +
                           " in the same issue group";
                    break;
                  case DepKind::kWaw:
                    id = CheckId::kGroupWaw;
                    what = "rewrites " + isa::regName(e.reg) +
                           " already written by inst " +
                           std::to_string(from) +
                           " in the same issue group";
                    break;
                  default:
                    if (md.alias(from, to) == AliasResult::kMustAlias) {
                        id = CheckId::kAliasStoreOrder;
                        what = "memory access provably overlaps the "
                               "bytes touched by inst " +
                               std::to_string(from) +
                               " in the same issue group";
                    } else {
                        id = CheckId::kGroupMemOrder;
                        what = "memory operation cannot share a group "
                               "with the store at inst " +
                               std::to_string(from);
                    }
                    break;
                }
                add(id, Severity::kError, to, at(to) + ": " + what);
            }

            // The slot-order rule is stricter than the pairwise alias
            // verdicts: once a store issues in a group, no later slot
            // may be a memory operation at all -- even a provably
            // disjoint one -- because the two-pass merge replays
            // memory in slot order. The oracle prunes exactly those
            // edges from the graph above, so re-check structurally;
            // pairs the oracle kept were already reported per edge.
            for (InstIdx i = leader; i < end; ++i) {
                if (!_prog.inst(i).isMem())
                    continue;
                InstIdx store_at = end;
                bool all_pruned = true;
                for (InstIdx j = leader; j < i; ++j) {
                    if (!_prog.inst(j).isStore())
                        continue;
                    if (store_at == end)
                        store_at = j;
                    if (md.alias(j, i) != AliasResult::kMustNotAlias)
                        all_pruned = false;
                }
                if (store_at != end && all_pruned) {
                    add(CheckId::kGroupMemOrder, Severity::kError, i,
                        at(i) +
                            ": memory operation cannot share a group "
                            "with the store at inst " +
                            std::to_string(store_at) +
                            " (slot-order memory rule)");
                }
            }

            unsigned alu = 0, mem = 0, fp = 0, br = 0;
            for (InstIdx i = leader; i < end; ++i) {
                switch (_prog.inst(i).unit()) {
                  case isa::UnitClass::kAlu: ++alu; break;
                  case isa::UnitClass::kMem: ++mem; break;
                  case isa::UnitClass::kFp: ++fp; break;
                  case isa::UnitClass::kBranch: ++br; break;
                }
            }
            const unsigned total = end - leader;
            const isa::GroupLimits &lim = _opts.limits;
            if (total > lim.issueWidth || alu > lim.aluUnits ||
                mem > lim.memUnits || fp > lim.fpUnits ||
                br > lim.branchUnits) {
                std::ostringstream oss;
                oss << at(leader)
                    << ": issue group oversubscribes the machine ("
                    << total << " slots, " << alu << " alu, " << mem
                    << " mem, " << fp << " fp, " << br
                    << " br vs width " << lim.issueWidth << ", "
                    << lim.aluUnits << " alu, " << lim.memUnits
                    << " mem, " << lim.fpUnits << " fp, "
                    << lim.branchUnits << " br)";
                add(CheckId::kGroupOversubscribed, Severity::kError,
                    leader, oss.str());
            }
        }
    }

    /**
     * Memory address diagnostics. Constant propagation proves exact
     * effective addresses null or misaligned; value-range propagation
     * extends the alignment proof to non-constant addresses whose
     * low bits are pinned by their construction (masks, shifts,
     * scaled indices).
     */
    void
    constantMemory(const Cfg &cfg)
    {
        const ConstProp cp(cfg);
        const RangeProp rp(cfg);
        for (InstIdx i = 0; i < _prog.size(); ++i) {
            const Instruction &in = _prog.inst(i);
            if (!in.isMem())
                continue;
            const unsigned size = MemDep::accessBytes(in);
            const auto ea = cp.effectiveAddress(i);
            if (ea) {
                std::ostringstream hex;
                hex << "0x" << std::hex << *ea;
                if (*ea == 0) {
                    add(CheckId::kNullAccess, Severity::kError, i,
                        at(i) +
                            ": effective address is statically null");
                } else if (*ea % size != 0) {
                    add(CheckId::kMisalignedAccess, Severity::kError, i,
                        at(i) + ": effective address " + hex.str() +
                            " is not " + std::to_string(size) +
                            "-byte aligned");
                }
                continue;
            }
            // Not a compile-time constant: fall back on ranges.
            const Range r = rp.effectiveAddress(i);
            if (r.provablyZero()) {
                add(CheckId::kNullAccess, Severity::kError, i,
                    at(i) + ": effective address is provably null on "
                            "every path");
            } else if (r.provablyMisaligned(size)) {
                add(CheckId::kMisalignedAccess, Severity::kError, i,
                    at(i) + ": effective address is provably " +
                        std::to_string(r.rem % size) + " mod " +
                        std::to_string(size) +
                        ", never " + std::to_string(size) +
                        "-byte aligned");
            }
        }
    }

    void
    pressure(const Liveness &live)
    {
        const PressureReport p = live.pressure();
        std::ostringstream oss;
        oss << "peak register pressure: " << p.maxLiveInt << " int, "
            << p.maxLiveFp << " fp, " << p.maxLivePred
            << " pred (files hold " << isa::kNumIntRegs << "/"
            << isa::kNumFpRegs << "/" << isa::kNumPredRegs << ")";
        add(CheckId::kRegPressure,
            p.fits() ? Severity::kNote : Severity::kError,
            kInvalidInstIdx, oss.str());
    }

    const Program &_prog;
    const CheckOptions &_opts;
    Report _report;
};

} // namespace

Report
check(const Program &prog, const CheckOptions &opts)
{
    return Checker(prog, opts).run();
}

} // namespace analysis
} // namespace ff
