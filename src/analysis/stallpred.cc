#include "analysis/stallpred.hh"

#include <algorithm>
#include <array>

#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

StallPredictor::StallPredictor(const Cfg &cfg,
                               const StallModelOptions &opts)
    : _cfg(cfg), _opts(opts)
{
}

StallPrediction
StallPredictor::predict(double effLoadLatency) const
{
    const isa::Program &prog = _cfg.program();
    StallPrediction out;
    out.loadStallByInst.assign(prog.size(), 0.0);
    out.blocks.reserve(_cfg.numBlocks());

    // Per-slot earliest consumer-issue cycle, relative to block entry.
    // Values live across one block walk only: registers produced
    // before the block are treated as ready, which matches steady
    // state (the previous block's trailing latencies overlap this
    // block's leading groups) and keeps the model purely static.
    std::vector<double> ready(cpu::kNumRegSlots, 0.0);
    std::vector<InstIdx> producer(cpu::kNumRegSlots, kInvalidInstIdx);
    std::vector<char> producerIsLoad(cpu::kNumRegSlots, 0);

    std::array<isa::RegId, 4> srcs;
    std::array<isa::RegId, 2> dsts;

    for (std::size_t b = 0; b < _cfg.numBlocks(); ++b) {
        const CfgBlock &blk = _cfg.blocks()[b];
        std::fill(ready.begin(), ready.end(), 0.0);
        std::fill(producer.begin(), producer.end(), kInvalidInstIdx);
        std::fill(producerIsLoad.begin(), producerIsLoad.end(), 0);

        PredictedBlock pb;
        pb.block = b;
        pb.begin = blk.begin;
        pb.end = blk.end;

        double t = 0; // cycle the next group may issue at
        InstIdx g = blk.begin;
        while (g < blk.end) {
            InstIdx ge = g;
            while (ge < blk.end && !prog.insts()[ge].stop)
                ++ge;
            if (ge < blk.end)
                ++ge; // the stop slot belongs to this group

            // The whole group waits for the slowest operand; remember
            // which producer pinned issue. On ties a load wins the
            // attribution — its latency is what a schedule could hide.
            double issueAt = t;
            InstIdx gate = kInvalidInstIdx;
            bool gateLoad = false;
            const auto consider = [&](isa::RegId r) {
                const unsigned slot = cpu::regSlot(r);
                const double rdy = ready[slot];
                if (rdy > issueAt ||
                    (rdy == issueAt && rdy > t && !gateLoad &&
                     producerIsLoad[slot] != 0)) {
                    issueAt = rdy;
                    gate = producer[slot];
                    gateLoad = producerIsLoad[slot] != 0;
                }
            };
            for (InstIdx i = g; i < ge; ++i) {
                const isa::Instruction &in = prog.insts()[i];
                const unsigned n = in.sources(srcs);
                for (unsigned k = 0; k < n; ++k)
                    consider(srcs[k]);
                if (_opts.wawStall) {
                    const unsigned nd = in.destinations(dsts);
                    for (unsigned k = 0; k < nd; ++k)
                        consider(dsts[k]);
                }
            }

            const double stall = issueAt - t;
            if (stall > 0) {
                if (gateLoad) {
                    pb.loadStall += stall;
                    if (gate != kInvalidInstIdx)
                        out.loadStallByInst[gate] += stall;
                } else {
                    pb.otherStall += stall;
                }
            }

            for (InstIdx i = g; i < ge; ++i) {
                const isa::Instruction &in = prog.insts()[i];
                const bool ld = in.isLoad();
                const double lat =
                    ld ? effLoadLatency
                       : static_cast<double>(
                             std::max(1u, in.execLatency()));
                const unsigned nd = in.destinations(dsts);
                for (unsigned k = 0; k < nd; ++k) {
                    const unsigned slot = cpu::regSlot(dsts[k]);
                    ready[slot] = issueAt + lat;
                    producer[slot] = i;
                    producerIsLoad[slot] = ld ? 1 : 0;
                }
            }

            t = issueAt + 1;
            pb.groups += 1;
            g = ge;
        }

        pb.cycles = t;
        out.blocks.push_back(pb);
    }

    return out;
}

} // namespace analysis
} // namespace ff
