/**
 * @file
 * Forward constant propagation over an ffvm program's control-flow
 * graph. Registers reset to zero architecturally, so the entry state
 * is all-constant-zero; the transfer function follows movi/mov and
 * add/sub/and/or/xor/shl/shr/sra/mul chains and drops to bottom on
 * anything else (loads, FP, predicated writes that may retain the
 * old value, CFG joins of differing constants). The verifier uses
 * the result to prove effective addresses of memory operations
 * statically null or misaligned; only *must* facts are reported, so
 * the lattice is deliberately conservative.
 */

#ifndef FF_ANALYSIS_CONSTPROP_HH
#define FF_ANALYSIS_CONSTPROP_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/cfg.hh"
#include "isa/program.hh"

namespace ff
{
namespace analysis
{

/** One lattice cell: unknown (bottom) or a known 64-bit constant. */
struct ConstVal
{
    bool known = false;
    std::uint64_t value = 0;

    static ConstVal bottom() { return {}; }
    static ConstVal of(std::uint64_t v) { return {true, v}; }

    bool operator==(const ConstVal &) const = default;
};

/** Constant state for every dense register slot at one point. */
using ConstState = std::vector<ConstVal>;

/** Per-program constant-propagation result. */
class ConstProp
{
  public:
    /** Runs the dataflow to a fixpoint over @p cfg. */
    explicit ConstProp(const Cfg &cfg);

    /**
     * The known constant value of @p reg immediately before
     * instruction @p i executes, or nullopt if not provably constant.
     */
    std::optional<std::uint64_t> valueBefore(InstIdx i,
                                             isa::RegId reg) const;

    /**
     * The provably constant effective address of memory instruction
     * @p i ([src1 + imm]), or nullopt.
     */
    std::optional<std::uint64_t> effectiveAddress(InstIdx i) const;

    /** Applies instruction @p in to @p state (exposed for tests). */
    static void transfer(const isa::Instruction &in, ConstState *state);

  private:
    const Cfg &_cfg;
    std::vector<ConstState> _blockIn; ///< per-block entry state
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_CONSTPROP_HH
