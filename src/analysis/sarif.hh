/**
 * @file
 * Machine-readable renderings of ffcheck reports: SARIF 2.1.0 (the
 * static-analysis interchange format CI systems ingest for code
 * scanning) and a flat JSON diagnostics array for scripting. Both are
 * deterministic — findings keep report order and the rule catalog is
 * emitted in CheckId order — so golden-file tests can diff them
 * byte-for-byte.
 */

#ifndef FF_ANALYSIS_SARIF_HH
#define FF_ANALYSIS_SARIF_HH

#include <string>

#include "analysis/diagnostics.hh"

namespace ff
{
namespace analysis
{

/**
 * Renders @p report as a SARIF 2.1.0 log with one run. @p source is
 * the artifact URI findings point at (the .s path or program name).
 * The tool component carries every CheckId as a reportingDescriptor;
 * notes map to SARIF level "note", warnings/errors to theirs.
 */
std::string renderSarif(const Report &report, const std::string &source);

/**
 * Renders @p report as a flat JSON object:
 *   {"source": ..., "errors": N, "warnings": N,
 *    "findings": [{"check", "severity", "inst", "line", "message"}]}
 */
std::string renderJson(const Report &report, const std::string &source);

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_SARIF_HH
