/**
 * @file
 * Whole-program reaching definitions over the dataflow engine: a
 * forward may-analysis tracking, for every program point, which
 * definitions (register-writing instructions, plus one pseudo-
 * definition per register for the architectural reset value) may
 * supply the value of each register. Consumers:
 *
 *   - ffcheck's flow-sensitive def-before-use diagnostic: a use is
 *     uninitialized iff the entry pseudo-definition of its register
 *     reaches it along some path;
 *   - the memory-dependence analysis, which assigns symbolic address
 *     bases from unique reaching definitions.
 *
 * Soundness: gen/kill transfer over the finite powerset of definition
 * sites; predicated writes generate but do not kill (the old value
 * may be retained), so the reaching set over-approximates — a
 * definition reported as the *unique* reaching def really is the only
 * possible writer on every path.
 */

#ifndef FF_ANALYSIS_REACHDEFS_HH
#define FF_ANALYSIS_REACHDEFS_HH

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "analysis/cfg.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

/** Sentinel definition index for "the architectural reset value". */
inline constexpr std::uint32_t kEntryDef =
    std::numeric_limits<std::uint32_t>::max();

/** Per-program reaching-definitions result. */
class ReachingDefs
{
  public:
    /** Runs the dataflow to a fixpoint over @p cfg. */
    explicit ReachingDefs(const Cfg &cfg);

    /**
     * Definitions of @p reg that may reach the point immediately
     * before instruction @p i: instruction indices, possibly
     * including kEntryDef for the architectural reset value.
     */
    std::vector<std::uint32_t> defsReaching(InstIdx i,
                                            isa::RegId reg) const;

    /**
     * True if the entry pseudo-definition of @p reg (i.e. no write
     * at all) may reach instruction @p i along some path.
     */
    bool entryReaches(InstIdx i, isa::RegId reg) const;

    /**
     * The unique instruction whose write supplies @p reg at @p i, or
     * nullopt when several definitions (or the reset value) may
     * reach. A predicated write is never unique — it may retain the
     * value of the def it shadows.
     */
    std::optional<InstIdx> uniqueDef(InstIdx i, isa::RegId reg) const;

  private:
    /** Dense bitvector over definition sites. */
    using DefSet = std::vector<std::uint64_t>;

    friend struct ReachDefsPolicy;

    bool defKills(InstIdx def) const;
    DefSet stateBefore(InstIdx i) const;
    void applyInst(InstIdx i, DefSet &state) const;

    const Cfg &_cfg;
    /** Definition sites: one per (instruction, destination) write,
     *  plus kNumRegSlots leading pseudo-defs for the entry state. */
    std::vector<InstIdx> _defInst;  ///< site -> instruction
    std::vector<int> _defSlot;      ///< site -> register slot
    std::vector<std::vector<std::uint32_t>> _slotDefs; ///< slot -> sites
    std::vector<std::vector<std::uint32_t>> _instSites; ///< inst -> sites
    std::size_t _numSites = 0;
    std::vector<DefSet> _blockIn;   ///< per-block entry state
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_REACHDEFS_HH
