#include "analysis/sarif.hh"

#include <cstdio>
#include <sstream>

#include "analysis/ffcheck.hh"

namespace ff
{
namespace analysis
{

namespace
{

/** Every diagnostic, in CheckId order, for the SARIF rule catalog. */
constexpr CheckId kAllChecks[] = {
    CheckId::kUninitRead,
    CheckId::kUninitPredicate,
    CheckId::kGroupRaw,
    CheckId::kGroupWaw,
    CheckId::kGroupMemOrder,
    CheckId::kAliasStoreOrder,
    CheckId::kGroupOversubscribed,
    CheckId::kBranchTarget,
    CheckId::kBranchNotGroupFinal,
    CheckId::kFallOffEnd,
    CheckId::kHaltUnreachable,
    CheckId::kUnreachableCode,
    CheckId::kPredPairAliased,
    CheckId::kPredDestClass,
    CheckId::kWriteHardwired,
    CheckId::kRegOutOfRange,
    CheckId::kMissingFinalStop,
    CheckId::kNoHalt,
    CheckId::kNullAccess,
    CheckId::kMisalignedAccess,
    CheckId::kRegPressure,
};

/** One-line rule description for the SARIF catalog. */
const char *
checkDescription(CheckId id)
{
    switch (id) {
      case CheckId::kUninitRead:
        return "Register read before any write reaches it.";
      case CheckId::kUninitPredicate:
        return "Predicate read before any write reaches it.";
      case CheckId::kGroupRaw:
        return "Read-after-write inside one issue group.";
      case CheckId::kGroupWaw:
        return "Write-after-write inside one issue group.";
      case CheckId::kGroupMemOrder:
        return "Possibly conflicting memory pair inside one issue "
               "group.";
      case CheckId::kAliasStoreOrder:
        return "Provably overlapping store/load pair inside one issue "
               "group.";
      case CheckId::kGroupOversubscribed:
        return "Issue group exceeds machine resource widths.";
      case CheckId::kBranchTarget:
        return "Branch target out of range or not a group leader.";
      case CheckId::kBranchNotGroupFinal:
        return "Branch is not the final slot of its issue group.";
      case CheckId::kFallOffEnd:
        return "Control can run past the last instruction.";
      case CheckId::kHaltUnreachable:
        return "No path reaches a halt (infinite loop).";
      case CheckId::kUnreachableCode:
        return "Block is unreachable from the entry.";
      case CheckId::kPredPairAliased:
        return "Complementary compare predicates alias.";
      case CheckId::kPredDestClass:
        return "Compare destination is not a predicate register.";
      case CheckId::kWriteHardwired:
        return "Write to a hardwired register.";
      case CheckId::kRegOutOfRange:
        return "Register index beyond the file.";
      case CheckId::kMissingFinalStop:
        return "Final instruction lacks a stop bit.";
      case CheckId::kNoHalt:
        return "Program has no halt instruction.";
      case CheckId::kNullAccess:
        return "Effective address is provably null.";
      case CheckId::kMisalignedAccess:
        return "Effective address is provably misaligned.";
      case CheckId::kRegPressure:
        return "Peak register pressure per class.";
    }
    return "";
}

/** JSON string escaping (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
sarifLevel(Severity s)
{
    switch (s) {
      case Severity::kNote: return "note";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "none";
}

} // namespace

std::string
renderSarif(const Report &report, const std::string &source)
{
    std::ostringstream o;
    o << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"ffcheck\",\n"
      << "          \"version\": \"" << kFfcheckVersion << "\",\n"
      << "          \"rules\": [\n";
    bool first = true;
    for (const CheckId id : kAllChecks) {
        if (!first)
            o << ",\n";
        first = false;
        o << "            {\"id\": \"" << checkName(id)
          << "\", \"shortDescription\": {\"text\": \""
          << jsonEscape(checkDescription(id)) << "\"}}";
    }
    o << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
    first = true;
    for (const Finding &f : report.findings) {
        if (!first)
            o << ",\n";
        first = false;
        o << "        {\n"
          << "          \"ruleId\": \"" << checkName(f.id) << "\",\n"
          << "          \"level\": \"" << sarifLevel(f.severity)
          << "\",\n"
          << "          \"message\": {\"text\": \""
          << jsonEscape(f.message) << "\"},\n"
          << "          \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": \""
          << jsonEscape(source) << "\"}";
        if (f.srcLine > 0)
            o << ", \"region\": {\"startLine\": " << f.srcLine << "}";
        o << "}}]";
        if (f.inst != kInvalidInstIdx)
            o << ",\n          \"properties\": {\"inst\": " << f.inst
              << "}";
        o << "\n        }";
    }
    o << "\n      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
    return o.str();
}

std::string
renderJson(const Report &report, const std::string &source)
{
    std::ostringstream o;
    o << "{\n"
      << "  \"source\": \"" << jsonEscape(source) << "\",\n"
      << "  \"ffcheckVersion\": " << kFfcheckVersion << ",\n"
      << "  \"errors\": " << report.errors() << ",\n"
      << "  \"warnings\": " << report.warnings() << ",\n"
      << "  \"findings\": [\n";
    bool first = true;
    for (const Finding &f : report.findings) {
        if (!first)
            o << ",\n";
        first = false;
        o << "    {\"check\": \"" << checkName(f.id)
          << "\", \"severity\": \"" << severityName(f.severity)
          << "\", \"inst\": ";
        if (f.inst == kInvalidInstIdx)
            o << -1;
        else
            o << f.inst;
        o << ", \"line\": " << f.srcLine << ", \"message\": \""
          << jsonEscape(f.message) << "\"}";
    }
    o << "\n  ]\n"
      << "}\n";
    return o.str();
}

} // namespace analysis
} // namespace ff
