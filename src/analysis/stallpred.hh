/**
 * @file
 * Static stall prediction: an analytical model of the in-order
 * baseline core's issue behavior over each basic block. The baseline
 * stalls a whole issue group until every operand of every slot is
 * ready (plus, with wawStall, its destinations), so a block's cost
 * per execution is fully determined by the group structure, the
 * producer latencies and the *effective* load-use latency — which is
 * the one free parameter: the L1 hit time when everything hits,
 * higher when misses are folded in.
 *
 * The predictor walks each block once per queried latency and
 * attributes every bubble cycle to the producer that gated the group,
 * classifying it load vs non-load exactly like the simulator's
 * per-cycle accounting (CycleClass::kLoadStall vs
 * kNonLoadDepStall). tools/ffstall cross-validates these predictions
 * against ProfileObserver's measured stall attribution.
 */

#ifndef FF_ANALYSIS_STALLPRED_HH
#define FF_ANALYSIS_STALLPRED_HH

#include <vector>

#include "analysis/cfg.hh"

namespace ff
{
namespace analysis
{

/** Model knobs mirroring the baseline core's issue rules. */
struct StallModelOptions
{
    /** Destination registers must also be ready (CoreConfig::wawStall
     *  default-true behavior). */
    bool wawStall = true;
};

/** Predicted per-execution cost of one basic block. */
struct PredictedBlock
{
    std::size_t block = 0; ///< CFG block index
    InstIdx begin = 0;
    InstIdx end = 0;
    unsigned groups = 0;    ///< issue groups in the block
    double cycles = 0;      ///< issue cycles per execution
    double loadStall = 0;   ///< bubbles gated by a load result
    double otherStall = 0;  ///< bubbles gated by a non-load producer
};

/** Whole-program prediction at one effective load latency. */
struct StallPrediction
{
    std::vector<PredictedBlock> blocks;

    /** Bubble cycles per block execution attributed to each load
     *  instruction (indexed by program InstIdx; zero elsewhere). */
    std::vector<double> loadStallByInst;

    double
    totalLoadStall() const
    {
        double s = 0;
        for (const PredictedBlock &b : blocks)
            s += b.loadStall;
        return s;
    }
};

/** Analytical in-order issue model over a program's CFG. */
class StallPredictor
{
  public:
    explicit StallPredictor(const Cfg &cfg,
                            const StallModelOptions &opts = {});

    /**
     * Predicts per-block issue cycles and stall attribution with
     * loads completing @p effLoadLatency cycles after issue (may be
     * fractional: an average over hit/miss mix).
     */
    StallPrediction predict(double effLoadLatency) const;

  private:
    const Cfg &_cfg;
    StallModelOptions _opts;
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_STALLPRED_HH
