/**
 * @file
 * Whole-program register liveness as an instantiation of the generic
 * dataflow engine: classic backward may-analysis over the Cfg with
 * per-block use/def summaries, producing live-in/live-out sets at
 * every block and the peak register pressure per register class.
 * This replaces the hand-rolled fixpoint that previously lived in
 * src/compiler/liveness.* — same facts, but computed by the shared
 * solver every other analysis also runs on.
 *
 * Soundness: the transfer function live = use | (live & ~def) is
 * monotone over the finite powerset lattice of register slots, and
 * predicated writes are modeled as read-modify-write (they may retain
 * the old value), so the analysis over-approximates liveness — a
 * register reported dead is dead on every path.
 */

#ifndef FF_ANALYSIS_LIVENESS_HH
#define FF_ANALYSIS_LIVENESS_HH

#include <bitset>
#include <memory>
#include <vector>

#include "analysis/cfg.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

/** A set of architectural registers, one bit per dense slot. */
using RegSet = std::bitset<cpu::kNumRegSlots>;

/** Peak simultaneous liveness per register class. */
struct PressureReport
{
    unsigned maxLiveInt = 0;
    unsigned maxLiveFp = 0;
    unsigned maxLivePred = 0;

    /** True if every class fits its architectural file. */
    bool
    fits() const
    {
        return maxLiveInt <= isa::kNumIntRegs &&
               maxLiveFp <= isa::kNumFpRegs &&
               maxLivePred <= isa::kNumPredRegs;
    }
};

/** Computed liveness over a whole program. */
class Liveness
{
  public:
    /** Runs the dataflow over an existing (shared) CFG. */
    explicit Liveness(const Cfg &cfg);

    /** Convenience: builds a private CFG for @p prog first. */
    explicit Liveness(const isa::Program &prog);

    const Cfg &cfg() const { return _cfg; }

    /** Registers live on entry to block @p b. */
    const RegSet &liveIn(std::size_t b) const { return _liveIn[b]; }

    /** Registers live on exit from block @p b. */
    const RegSet &liveOut(std::size_t b) const { return _liveOut[b]; }

    /** Read-before-write summary of block @p b. */
    const RegSet &use(std::size_t b) const { return _use[b]; }

    /** Written-within summary of block @p b. */
    const RegSet &def(std::size_t b) const { return _def[b]; }

    /** Registers live immediately before instruction @p i executes
     *  (including @p i's own sources, the allocator view). */
    RegSet liveBefore(InstIdx i) const;

    /** Peak pressure across every program point. */
    PressureReport pressure() const;

    /**
     * Adds instruction @p in's reads (minus already-defined) to
     * @p use and its writes to @p def; predicated writes count as
     * read-modify-write. Exposed for tests and sibling analyses.
     */
    static void accumulate(const isa::Instruction &in, RegSet *use,
                           RegSet *def);

  private:
    void solve();

    std::unique_ptr<const Cfg> _owned; ///< set by the Program ctor
    const Cfg &_cfg;
    std::vector<RegSet> _use, _def;
    std::vector<RegSet> _liveIn, _liveOut;
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_LIVENESS_HH
