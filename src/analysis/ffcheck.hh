/**
 * @file
 * ffcheck — the static program verifier for assembled ffvm programs.
 * The flea-flicker pipeline's correctness argument rests on structural
 * invariants of the EPIC program itself (issue-group independence,
 * def-before-use, legal branch targets); ffcheck proves them before a
 * program burns simulated cycles. It layers on the existing compiler
 * passes: compiler::DepGraph supplies intra-group dependence legality,
 * compiler::Liveness supplies the CFG, def-before-use and register
 * pressure, and a small constant-propagation pass (analysis::ConstProp)
 * flags statically null or misaligned effective addresses.
 *
 * Diagnostic catalog (see analysis::CheckId):
 *   - def-before-use: registers live-in to the entry block
 *   - issue-group legality: intra-group RAW/WAW/memory-order and
 *     functional-unit oversubscription against a machine's GroupLimits
 *   - control flow: branch targets, fall-off-the-end, halt
 *     reachability, unreachable code
 *   - predicate sanity: aliased cmp/fcmp destination pairs, non-
 *     predicate destinations, predicates read before any write
 *   - memory: statically null / misaligned ld4/ld8/st4/st8 addresses
 *   - reporting: peak register pressure per class
 */

#ifndef FF_ANALYSIS_FFCHECK_HH
#define FF_ANALYSIS_FFCHECK_HH

#include "analysis/diagnostics.hh"
#include "compiler/scheduler.hh"
#include "isa/program.hh"

namespace ff
{
namespace analysis
{

/** Knobs for one verification run. */
struct CheckOptions
{
    /** Machine resource widths groups are checked against. */
    isa::GroupLimits limits;

    /** Latencies used when rebuilding dependence edges. */
    compiler::SchedLatencies latencies;

    /** Emit the register-pressure note (kRegPressure). */
    bool reportPressure = true;
};

/**
 * Runs the full diagnostic pipeline over @p prog. Structural damage
 * that would make the later passes meaningless (register indices out
 * of range, branch targets outside the program) short-circuits the
 * run: the report then carries only the structural findings.
 */
Report check(const isa::Program &prog,
             const CheckOptions &opts = CheckOptions());

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_FFCHECK_HH
