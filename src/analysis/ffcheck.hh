/**
 * @file
 * ffcheck — the static program verifier for assembled ffvm programs.
 * The flea-flicker pipeline's correctness argument rests on structural
 * invariants of the EPIC program itself (issue-group independence,
 * def-before-use, legal branch targets); ffcheck proves them before a
 * program burns simulated cycles. Version 2 is built on the shared
 * whole-program dataflow engine (analysis/dataflow.hh): reaching
 * definitions drive flow-sensitive def-before-use, constant and
 * value-range propagation prove addresses null or misaligned, and the
 * memory-dependence analysis splits intra-group memory pairs into
 * provably-disjoint (legal), provably-overlapping (alias-store-order)
 * and unknown (conservative group-mem-order).
 *
 * Diagnostic catalog (see analysis::CheckId):
 *   - def-before-use: reads the entry pseudo-definition may reach
 *   - issue-group legality: intra-group RAW/WAW/memory-order and
 *     functional-unit oversubscription against a machine's GroupLimits
 *   - alias: store/load pairs in one group with provably overlapping
 *     byte ranges
 *   - control flow: branch targets, fall-off-the-end, halt
 *     reachability, unreachable code
 *   - predicate sanity: aliased cmp/fcmp destination pairs, non-
 *     predicate destinations, predicates read before any write
 *   - memory: statically null / provably misaligned effective
 *     addresses, including non-constant addresses with pinned low bits
 *   - reporting: peak register pressure per class
 */

#ifndef FF_ANALYSIS_FFCHECK_HH
#define FF_ANALYSIS_FFCHECK_HH

#include "analysis/diagnostics.hh"
#include "compiler/scheduler.hh"
#include "isa/program.hh"

namespace ff
{
namespace analysis
{

/**
 * Verifier version, part of the persistent verify-cache key: bump it
 * whenever a diagnostic is added, removed or reclassified so cached
 * verdicts from older versions are not replayed.
 */
inline constexpr std::uint32_t kFfcheckVersion = 2;

/** Knobs for one verification run. */
struct CheckOptions
{
    /** Machine resource widths groups are checked against. */
    isa::GroupLimits limits;

    /** Latencies used when rebuilding dependence edges. */
    compiler::SchedLatencies latencies;

    /** Emit the register-pressure note (kRegPressure). */
    bool reportPressure = true;
};

/**
 * Runs the full diagnostic pipeline over @p prog. Structural damage
 * that would make the later passes meaningless (register indices out
 * of range, branch targets outside the program) short-circuits the
 * run: the report then carries only the structural findings.
 */
Report check(const isa::Program &prog,
             const CheckOptions &opts = CheckOptions());

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_FFCHECK_HH
