#include "analysis/reachdefs.hh"

#include "analysis/dataflow.hh"
#include "common/logging.hh"

namespace ff
{
namespace analysis
{

using cpu::regSlot;
using isa::Instruction;

namespace
{

inline void
setBit(std::vector<std::uint64_t> &v, std::uint32_t bit)
{
    v[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}

inline void
clearBit(std::vector<std::uint64_t> &v, std::uint32_t bit)
{
    v[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63));
}

inline bool
testBit(const std::vector<std::uint64_t> &v, std::uint32_t bit)
{
    return (v[bit >> 6] >> (bit & 63)) & 1;
}

} // namespace

/** Forward may-analysis policy: union meet, gen/kill transfer. */
struct ReachDefsPolicy
{
    using State = std::vector<std::uint64_t>;
    static constexpr Direction kDirection = Direction::kForward;

    const ReachingDefs &rd;
    std::size_t words;

    State initialState() const { return State(words, 0); }

    State
    boundaryState() const
    {
        // On entry every register holds its architectural reset
        // value: the per-slot pseudo-definitions reach.
        State s(words, 0);
        for (std::uint32_t slot = 0; slot < cpu::kNumRegSlots; ++slot)
            setBit(s, slot);
        return s;
    }

    bool
    meetInto(State &into, const State &from) const
    {
        bool changed = false;
        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t merged = into[w] | from[w];
            if (merged != into[w]) {
                into[w] = merged;
                changed = true;
            }
        }
        return changed;
    }

    void
    transferBlock(const Cfg &cfg, std::size_t b, State &state) const
    {
        const CfgBlock &blk = cfg.blocks()[b];
        for (InstIdx i = blk.begin; i < blk.end; ++i)
            rd.applyInst(i, state);
    }
};

ReachingDefs::ReachingDefs(const Cfg &cfg) : _cfg(cfg)
{
    const isa::Program &prog = _cfg.program();

    // Number the definition sites: the first kNumRegSlots are the
    // entry pseudo-definitions (site == slot), then one per real
    // register write in program order.
    _slotDefs.assign(cpu::kNumRegSlots, {});
    _instSites.assign(prog.size(), {});
    for (std::uint32_t slot = 0; slot < cpu::kNumRegSlots; ++slot) {
        _defInst.push_back(kInvalidInstIdx);
        _defSlot.push_back(static_cast<int>(slot));
        _slotDefs[slot].push_back(slot);
    }
    for (InstIdx i = 0; i < prog.size(); ++i) {
        std::array<isa::RegId, 2> dsts;
        const unsigned nd = prog.inst(i).destinations(dsts);
        for (unsigned d = 0; d < nd; ++d) {
            const int slot = regSlot(dsts[d]);
            if (slot < 0 || dsts[d].idx == 0)
                continue; // hardwired or no destination
            const std::uint32_t site =
                static_cast<std::uint32_t>(_defInst.size());
            _defInst.push_back(i);
            _defSlot.push_back(slot);
            _slotDefs[static_cast<std::size_t>(slot)].push_back(site);
            _instSites[i].push_back(site);
        }
    }
    _numSites = _defInst.size();

    const ReachDefsPolicy policy{*this, (_numSites + 63) / 64};
    const DataflowSolver<ReachDefsPolicy> solver(_cfg, policy);
    _blockIn.resize(_cfg.numBlocks());
    for (std::size_t b = 0; b < _cfg.numBlocks(); ++b)
        _blockIn[b] = solver.in(b);
}

bool
ReachingDefs::defKills(InstIdx def) const
{
    // A write qualified by anything but the hardwired p0 may leave
    // the old value in place, so it generates without killing.
    const Instruction &in = _cfg.program().inst(def);
    return in.qpred.cls == isa::RegClass::kPred && in.qpred.idx == 0;
}

void
ReachingDefs::applyInst(InstIdx i, DefSet &state) const
{
    const std::vector<std::uint32_t> &sites = _instSites[i];
    if (sites.empty())
        return;
    const bool kills = defKills(i);
    for (const std::uint32_t site : sites) {
        if (kills) {
            for (const std::uint32_t other :
                 _slotDefs[static_cast<std::size_t>(_defSlot[site])])
                clearBit(state, other);
        }
        setBit(state, site);
    }
}

ReachingDefs::DefSet
ReachingDefs::stateBefore(InstIdx i) const
{
    const std::size_t b = _cfg.blockIndexOf(i);
    DefSet state = _blockIn[b];
    for (InstIdx j = _cfg.blocks()[b].begin; j < i; ++j)
        applyInst(j, state);
    return state;
}

std::vector<std::uint32_t>
ReachingDefs::defsReaching(InstIdx i, isa::RegId reg) const
{
    std::vector<std::uint32_t> out;
    const int slot = regSlot(reg);
    if (slot < 0)
        return out;
    const DefSet state = stateBefore(i);
    for (const std::uint32_t site :
         _slotDefs[static_cast<std::size_t>(slot)]) {
        if (!testBit(state, site))
            continue;
        out.push_back(site < cpu::kNumRegSlots ? kEntryDef
                                               : _defInst[site]);
    }
    return out;
}

bool
ReachingDefs::entryReaches(InstIdx i, isa::RegId reg) const
{
    const int slot = regSlot(reg);
    if (slot < 0 || reg.idx == 0)
        return false; // hardwired registers are always defined
    const DefSet state = stateBefore(i);
    return testBit(state, static_cast<std::uint32_t>(slot));
}

std::optional<InstIdx>
ReachingDefs::uniqueDef(InstIdx i, isa::RegId reg) const
{
    const int slot = regSlot(reg);
    if (slot < 0 || reg.idx == 0)
        return std::nullopt;
    const DefSet state = stateBefore(i);
    std::optional<InstIdx> only;
    for (const std::uint32_t site :
         _slotDefs[static_cast<std::size_t>(slot)]) {
        if (!testBit(state, site))
            continue;
        if (site < cpu::kNumRegSlots || only.has_value())
            return std::nullopt; // reset value, or several writers
        only = _defInst[site];
    }
    // A predicated write never kills, so it can only be "unique" when
    // the shadowed def died some other way — reject it regardless.
    if (only.has_value() && !defKills(*only))
        return std::nullopt;
    return only;
}

} // namespace analysis
} // namespace ff
