#include "analysis/liveness.hh"

#include <algorithm>

#include "analysis/dataflow.hh"

namespace ff
{
namespace analysis
{

using cpu::regSlot;
using isa::Instruction;

void
Liveness::accumulate(const Instruction &in, RegSet *use, RegSet *def)
{
    std::array<isa::RegId, 4> srcs;
    const unsigned ns = in.sources(srcs);
    for (unsigned s = 0; s < ns; ++s) {
        const int slot = regSlot(srcs[s]);
        if (slot < 0 || srcs[s].idx == 0)
            continue;
        if (!def->test(static_cast<std::size_t>(slot)))
            use->set(static_cast<std::size_t>(slot));
    }
    // Predicated instructions may leave the old value intact, so a
    // predicated write is NOT a kill: model it as a read-modify-write
    // (conservative for liveness: keeps the incoming value live).
    const bool conditional =
        !(in.qpred.cls == isa::RegClass::kPred && in.qpred.idx == 0);
    std::array<isa::RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    for (unsigned d = 0; d < nd; ++d) {
        const int slot = regSlot(dsts[d]);
        if (slot < 0 || dsts[d].idx == 0)
            continue;
        if (conditional) {
            if (!def->test(static_cast<std::size_t>(slot)))
                use->set(static_cast<std::size_t>(slot));
        }
        def->set(static_cast<std::size_t>(slot));
    }
}

namespace
{

/** Backward may-analysis policy: live = use | (live & ~def). */
struct LivenessPolicy
{
    using State = RegSet;
    static constexpr Direction kDirection = Direction::kBackward;

    const std::vector<RegSet> &use;
    const std::vector<RegSet> &def;

    State boundaryState() const { return {}; }
    State initialState() const { return {}; }

    bool
    meetInto(State &into, const State &from) const
    {
        const State merged = into | from;
        if (merged == into)
            return false;
        into = merged;
        return true;
    }

    void
    transferBlock(const Cfg &cfg, std::size_t b, State &state) const
    {
        (void)cfg;
        state = use[b] | (state & ~def[b]);
    }
};

} // namespace

Liveness::Liveness(const Cfg &cfg) : _cfg(cfg)
{
    solve();
}

Liveness::Liveness(const isa::Program &prog)
    : _owned(std::make_unique<Cfg>(prog)), _cfg(*_owned)
{
    solve();
}

void
Liveness::solve()
{
    const std::size_t nb = _cfg.numBlocks();
    _use.assign(nb, {});
    _def.assign(nb, {});
    for (std::size_t b = 0; b < nb; ++b) {
        const CfgBlock &blk = _cfg.blocks()[b];
        for (InstIdx i = blk.begin; i < blk.end; ++i)
            accumulate(_cfg.program().inst(i), &_use[b], &_def[b]);
    }

    const LivenessPolicy policy{_use, _def};
    const DataflowSolver<LivenessPolicy> solver(_cfg, policy);
    _liveIn.resize(nb);
    _liveOut.resize(nb);
    for (std::size_t b = 0; b < nb; ++b) {
        // Backward: the flow input is the block's exit state.
        _liveOut[b] = solver.in(b);
        _liveIn[b] = solver.out(b);
    }
}

RegSet
Liveness::liveBefore(InstIdx i) const
{
    const std::size_t b = _cfg.blockIndexOf(i);
    const CfgBlock &blk = _cfg.blocks()[b];
    // Walk backward from the block's end to just before i, folding
    // in i's own reads so the pressure number reflects what a
    // register allocator must keep resident at that point.
    RegSet live = _liveOut[b];
    for (InstIdx j = blk.end; j-- > i;) {
        RegSet use, def;
        accumulate(_cfg.program().inst(j), &use, &def);
        live &= ~def;
        live |= use;
    }
    return live;
}

PressureReport
Liveness::pressure() const
{
    PressureReport r;
    for (InstIdx i = 0; i < _cfg.program().size(); ++i) {
        const RegSet live = liveBefore(i);
        unsigned ints = 0, fps = 0, preds = 0;
        for (std::size_t s = 0; s < cpu::kNumRegSlots; ++s) {
            if (!live.test(s))
                continue;
            if (s < isa::kNumIntRegs)
                ++ints;
            else if (s < isa::kNumIntRegs + isa::kNumFpRegs)
                ++fps;
            else
                ++preds;
        }
        r.maxLiveInt = std::max(r.maxLiveInt, ints);
        r.maxLiveFp = std::max(r.maxLiveFp, fps);
        r.maxLivePred = std::max(r.maxLivePred, preds);
    }
    return r;
}

} // namespace analysis
} // namespace ff
