#include "analysis/range.hh"

#include <algorithm>

#include "analysis/dataflow.hh"
#include "common/logging.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

using cpu::kNumRegSlots;
using cpu::regSlot;
using isa::Instruction;
using isa::Opcode;
using isa::RegClass;
using isa::RegId;

namespace
{

constexpr std::uint64_t kMax = ~std::uint64_t{0};
constexpr std::uint8_t kMaxAlign = 63; ///< mod 2^63 is "exact enough"
constexpr std::uint8_t kWidenAfter = 3; ///< interval growths before widening

inline std::uint64_t
alignMask(std::uint8_t k)
{
    return (std::uint64_t{1} << k) - 1; // k <= 63 by construction
}

inline std::uint8_t
trailingZeros(std::uint64_t v)
{
    if (v == 0)
        return kMaxAlign;
    std::uint8_t n = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++n;
    }
    return n;
}

Range
addRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    // Interval: sound only when neither bound wraps.
    if (a.hi <= kMax - b.hi) {
        r.lo = a.lo + b.lo;
        r.hi = a.hi + b.hi;
    }
    // Congruence is exact under wraparound.
    r.alignLog2 = std::min(a.alignLog2, b.alignLog2);
    r.rem = (a.rem + b.rem) & alignMask(r.alignLog2);
    return r;
}

Range
subRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    if (a.lo >= b.hi) { // no wrap on either bound
        r.lo = a.lo - b.hi;
        r.hi = a.hi - b.lo;
    }
    r.alignLog2 = std::min(a.alignLog2, b.alignLog2);
    r.rem = (a.rem - b.rem) & alignMask(r.alignLog2);
    return r;
}

Range
andRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    r.hi = std::min(a.hi, b.hi); // x & y <= min(x, y)
    // Low bits: (x & y) mod 2^k == (x mod 2^k) & (y mod 2^k).
    r.alignLog2 = std::min(a.alignLog2, b.alignLog2);
    r.rem = (a.rem & b.rem) & alignMask(r.alignLog2);
    // Masking with a constant whose low bits are clear forces
    // alignment regardless of the other operand.
    if (b.isConstant()) {
        const std::uint8_t z = trailingZeros(b.lo);
        if (z > r.alignLog2) {
            r.alignLog2 = z;
            r.rem = 0;
        }
    }
    return r;
}

Range
orRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    r.lo = std::max(a.lo, b.lo); // x | y >= max(x, y)
    if (a.hi <= kMax - b.hi)
        r.hi = a.hi + b.hi; // x | y <= x + y
    r.alignLog2 = std::min(a.alignLog2, b.alignLog2);
    r.rem = (a.rem | b.rem) & alignMask(r.alignLog2);
    return r;
}

Range
xorRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    r.alignLog2 = std::min(a.alignLog2, b.alignLog2);
    r.rem = (a.rem ^ b.rem) & alignMask(r.alignLog2);
    return r;
}

Range
shlRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    if (!b.isConstant())
        return r;
    const unsigned s = static_cast<unsigned>(b.lo & 63);
    if (s == 0)
        return a;
    if (a.hi <= (kMax >> s)) {
        r.lo = a.lo << s;
        r.hi = a.hi << s;
    }
    r.alignLog2 = static_cast<std::uint8_t>(
        std::min<unsigned>(kMaxAlign, a.alignLog2 + s));
    r.rem = (a.rem << s) & alignMask(r.alignLog2);
    return r;
}

Range
shrRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    if (!b.isConstant())
        return r;
    const unsigned s = static_cast<unsigned>(b.lo & 63);
    r.lo = a.lo >> s;
    r.hi = a.hi >> s;
    return r;
}

Range
mulRanges(const Range &a, const Range &b)
{
    Range r = Range::top();
    if (a.hi == 0 || b.hi <= kMax / a.hi) {
        r.lo = a.lo * b.lo;
        r.hi = a.hi * b.hi;
    }
    // (ra + m*2^ka)(rb + n*2^kb) ≡ ra*rb (mod 2^min(ka, kb)); when
    // both remainders are zero the product gains the sum of factors.
    if (a.rem == 0 && b.rem == 0) {
        r.alignLog2 = static_cast<std::uint8_t>(std::min<unsigned>(
            kMaxAlign, a.alignLog2 + b.alignLog2));
        r.rem = 0;
    } else {
        r.alignLog2 = std::min(a.alignLog2, b.alignLog2);
        r.rem = (a.rem * b.rem) & alignMask(r.alignLog2);
    }
    return r;
}

/** Reads a register out of @p state (hardwired zeros included). */
Range
readReg(const RangeState &state, RegId r)
{
    if (r.idx == 0 && r.cls != RegClass::kNone)
        return Range::constant(r.cls == RegClass::kPred ? 1 : 0);
    const int slot = regSlot(r);
    if (slot < 0)
        return Range::top();
    return state.regs[static_cast<std::size_t>(slot)];
}

/** Integer ALU result range, or top for unmodeled opcodes. */
Range
evalInt(const Instruction &in, const RangeState &state)
{
    const Range a = readReg(state, in.src1);
    const Range b =
        in.src2IsImm
            ? Range::constant(static_cast<std::uint64_t>(in.imm))
            : readReg(state, in.src2);
    switch (in.op) {
      case Opcode::kMovi:
        return Range::constant(static_cast<std::uint64_t>(in.imm));
      case Opcode::kMov: return a;
      case Opcode::kAdd: return addRanges(a, b);
      case Opcode::kSub: return subRanges(a, b);
      case Opcode::kAnd: return andRanges(a, b);
      case Opcode::kOr:  return orRanges(a, b);
      case Opcode::kXor: return xorRanges(a, b);
      case Opcode::kShl: return shlRanges(a, b);
      case Opcode::kShr: return shrRanges(a, b);
      case Opcode::kMul: return mulRanges(a, b);
      default:
        return Range::top();
    }
}

} // namespace

Range
Range::constant(std::uint64_t c)
{
    Range r;
    r.lo = r.hi = c;
    r.alignLog2 = kMaxAlign;
    r.rem = c & alignMask(kMaxAlign);
    return r;
}

bool
Range::provablyMisaligned(std::uint64_t align) const
{
    if (align <= 1)
        return false;
    if (isConstant())
        return (lo % align) != 0;
    const std::uint8_t need = trailingZeros(align);
    return alignLog2 >= need && (rem % align) != 0;
}

bool
Range::provablyAligned(std::uint64_t align) const
{
    if (align <= 1)
        return true;
    if (isConstant())
        return (lo % align) == 0;
    const std::uint8_t need = trailingZeros(align);
    return alignLog2 >= need && (rem % align) == 0;
}

bool
Range::joinInto(const Range &from)
{
    bool changed = false;

    std::uint64_t nlo = std::min(lo, from.lo);
    std::uint64_t nhi = std::max(hi, from.hi);
    if (nlo != lo || nhi != hi) {
        if (++grows >= kWidenAfter) {
            // Widen: jump straight to the extremes that moved so a
            // loop-carried interval converges in O(1) more passes.
            if (nlo != lo)
                nlo = 0;
            if (nhi != hi)
                nhi = kMax;
        }
        lo = nlo;
        hi = nhi;
        changed = true;
    }

    // Common congruence: the largest k <= min(ka, kb) on which the
    // two remainders agree.
    std::uint8_t k = std::min(alignLog2, from.alignLog2);
    if (((rem ^ from.rem) & alignMask(k)) != 0) {
        const std::uint8_t diff = trailingZeros(rem ^ from.rem);
        k = std::min(k, diff);
    }
    const std::uint64_t nrem = rem & alignMask(k);
    if (k != alignLog2 || nrem != rem) {
        alignLog2 = k;
        rem = nrem;
        changed = true;
    }
    return changed;
}

void
RangeProp::transfer(const Instruction &in, RangeState *state)
{
    std::array<RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    if (nd == 0)
        return;

    Range result = Range::top();
    if (nd == 1 && dsts[0].cls == RegClass::kInt && !in.isLoad())
        result = evalInt(in, *state);

    const bool conditional =
        !(in.qpred.cls == RegClass::kPred && in.qpred.idx == 0);
    for (unsigned d = 0; d < nd; ++d) {
        const int slot = regSlot(dsts[d]);
        if (slot < 0 || dsts[d].idx == 0)
            continue; // hardwired: writes are dropped
        Range next = (d == 0) ? result : Range::top();
        if (dsts[d].cls == RegClass::kPred) {
            // Predicates only ever hold 0 or 1.
            next.lo = 0;
            next.hi = std::min<std::uint64_t>(next.hi, 1);
        }
        if (conditional)
            next.joinInto(
                (*state).regs[static_cast<std::size_t>(slot)]);
        (*state).regs[static_cast<std::size_t>(slot)] = next;
    }
}

/** Forward must-analysis policy with the seeded-flag wrapper. */
struct RangePolicy
{
    using State = RangeState;
    static constexpr Direction kDirection = Direction::kForward;

    State initialState() const { return {}; } // unreached: identity

    State
    boundaryState() const
    {
        // Architectural reset: every register is exactly zero.
        State s;
        s.seeded = true;
        s.regs.assign(kNumRegSlots, Range::constant(0));
        return s;
    }

    bool
    meetInto(State &into, const State &from) const
    {
        if (!from.seeded)
            return false;
        if (!into.seeded) {
            into = from;
            return true;
        }
        bool changed = false;
        for (std::size_t s = 0; s < into.regs.size(); ++s)
            changed |= into.regs[s].joinInto(from.regs[s]);
        return changed;
    }

    void
    transferBlock(const Cfg &cfg, std::size_t b, State &state) const
    {
        if (!state.seeded)
            return; // unreachable blocks propagate nothing
        const CfgBlock &blk = cfg.blocks()[b];
        for (InstIdx i = blk.begin; i < blk.end; ++i)
            RangeProp::transfer(cfg.program().inst(i), &state);
    }
};

RangeProp::RangeProp(const Cfg &cfg) : _cfg(cfg)
{
    const RangePolicy policy;
    const DataflowSolver<RangePolicy> solver(_cfg, policy);
    _blockIn.resize(_cfg.numBlocks());
    for (std::size_t b = 0; b < _cfg.numBlocks(); ++b)
        _blockIn[b] = solver.in(b);
}

Range
RangeProp::rangeBefore(InstIdx i, RegId reg) const
{
    if (reg.idx == 0 && reg.cls != RegClass::kNone)
        return Range::constant(reg.cls == RegClass::kPred ? 1 : 0);
    const int slot = regSlot(reg);
    if (slot < 0)
        return Range::top();
    const std::size_t b = _cfg.blockIndexOf(i);
    if (!_blockIn[b].seeded)
        return Range::top(); // unreachable: claim nothing
    RangeState state = _blockIn[b];
    for (InstIdx j = _cfg.blocks()[b].begin; j < i; ++j)
        transfer(_cfg.program().inst(j), &state);
    return state.regs[static_cast<std::size_t>(slot)];
}

Range
RangeProp::effectiveAddress(InstIdx i) const
{
    const Instruction &in = _cfg.program().inst(i);
    if (!in.isMem())
        return Range::top();
    return addRanges(
        rangeBefore(i, in.src1),
        Range::constant(static_cast<std::uint64_t>(in.imm)));
}

} // namespace analysis
} // namespace ff
