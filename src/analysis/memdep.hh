/**
 * @file
 * Field-sensitive memory-dependence analysis over base+offset
 * addressing, built on reaching definitions. Every memory operation's
 * address [src1 + imm] is resolved to a symbolic form
 *
 *     base-origin + displacement
 *
 * where the origin is either an absolute constant or the unique
 * instruction whose write supplies the base register (chased through
 * mov/movi/add-immediate copy chains). Two accesses with the *same*
 * origin compare by byte interval — disjoint [disp, disp+size) means
 * must-not-alias, identical overlap means must-alias — which is what
 * makes distinct fields off one base pointer independent.
 *
 * Soundness of must-not-alias: constant origins are absolute
 * program-wide facts. Instruction origins are only meaningful when
 * both accesses observe the same dynamic instance of the defining
 * write; alias() therefore reports kMayAlias for instruction-origin
 * pairs in *different* basic blocks, and within one block the unique
 * reaching def guarantees both uses read the same value (any
 * intervening redefinition would itself be the nearer unique def).
 * This is exactly the contract the per-block scheduler needs.
 */

#ifndef FF_ANALYSIS_MEMDEP_HH
#define FF_ANALYSIS_MEMDEP_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/reachdefs.hh"
#include "compiler/depgraph.hh"
#include "compiler/scheduler.hh"

namespace ff
{
namespace analysis
{

/** A memory address in symbolic base+displacement form. */
struct SymAddr
{
    bool valid = false;   ///< resolution succeeded
    bool isConst = false; ///< origin is an absolute constant
    InstIdx origin = kInvalidInstIdx; ///< defining inst (non-const)
    std::uint64_t disp = 0; ///< byte displacement (absolute if const)
};

/** Whole-program memory-dependence / alias analysis. */
class MemDep : public compiler::AliasOracle
{
  public:
    /** Builds symbolic addresses for every memory operation of
     *  @p cfg's program, using @p rd for base resolution. */
    MemDep(const Cfg &cfg, const ReachingDefs &rd);

    /** Symbolic address of memory instruction @p i (invalid if the
     *  base could not be resolved or @p i is not a memory op). */
    const SymAddr &addressOf(InstIdx i) const { return _addr[i]; }

    /** Access size in bytes of memory instruction @p i. */
    static unsigned accessBytes(const isa::Instruction &in);

    /** Alias relation between memory instructions @p a and @p b.
     *  Must-not-alias is sound program-wide for constant origins and
     *  within a basic block for instruction origins. */
    compiler::AliasResult alias(InstIdx a, InstIdx b) const override;

  private:
    SymAddr resolveBase(InstIdx at, isa::RegId reg, int depth,
                        std::size_t useBlock) const;

    const Cfg &_cfg;
    const ReachingDefs &_rd;
    std::vector<SymAddr> _addr; ///< per-instruction symbolic address
};

/**
 * Convenience driver for alias-aware scheduling: runs reaching
 * definitions and memory dependence over @p sequential and schedules
 * it with the oracle plugged in. With @p cfg.alias already set the
 * caller's oracle wins. Produces bit-identical output to plain
 * compiler::schedule whenever no memory edge is prunable.
 */
isa::Program scheduleWithAlias(
    const isa::Program &sequential,
    const compiler::SchedulerConfig &cfg = compiler::SchedulerConfig());

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_MEMDEP_HH
