/**
 * @file
 * Structured findings produced by the ffcheck static verifier: a
 * severity, a check identifier, the offending instruction (with its
 * .s source line when the assembler recorded one) and a rendered
 * message. Downstream surfaces (the ffcheck CLI, ffvm --verify, the
 * harness load hook and the tests) all consume this one vocabulary.
 */

#ifndef FF_ANALYSIS_DIAGNOSTICS_HH
#define FF_ANALYSIS_DIAGNOSTICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ff
{
namespace analysis
{

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    kNote,    ///< informational (e.g. register-pressure report)
    kWarning, ///< suspicious but architecturally defined behavior
    kError,   ///< violates an invariant the pipeline relies on
};

const char *severityName(Severity s);

/** Which ffcheck diagnostic produced a finding. */
enum class CheckId : std::uint8_t
{
    // Def-before-use.
    kUninitRead,        ///< int/fp register read before any write
    kUninitPredicate,   ///< predicate read before any write

    // Issue-group legality (EPIC independence rules).
    kGroupRaw,          ///< intra-group read-after-write
    kGroupWaw,          ///< intra-group write-after-write
    kGroupMemOrder,     ///< intra-group memory-ordering violation
    kAliasStoreOrder,   ///< store/load in one group provably overlap
    kGroupOversubscribed, ///< group exceeds machine resource widths

    // Control flow.
    kBranchTarget,      ///< branch target out of range / not a leader
    kBranchNotGroupFinal, ///< branch is not the last slot of its group
    kFallOffEnd,        ///< a path runs past the last instruction
    kHaltUnreachable,   ///< halt not reachable from a reachable block
    kUnreachableCode,   ///< block unreachable from the entry

    // Predicate sanity.
    kPredPairAliased,   ///< cmp/fcmp complementary dests are the same
    kPredDestClass,     ///< cmp/fcmp destination is not a predicate

    // Structural.
    kWriteHardwired,    ///< write to r0/f0/p0
    kRegOutOfRange,     ///< register index beyond the file
    kMissingFinalStop,  ///< last instruction lacks a stop bit
    kNoHalt,            ///< program contains no halt at all

    // Constant-propagation memory checks.
    kNullAccess,        ///< effective address statically zero
    kMisalignedAccess,  ///< effective address statically misaligned

    // Reporting.
    kRegPressure,       ///< peak liveness per register class
};

/** Stable short name used in rendered diagnostics ("group-raw"). */
const char *checkName(CheckId id);

/** One diagnostic finding. */
struct Finding
{
    CheckId id;
    Severity severity;
    InstIdx inst = kInvalidInstIdx; ///< offending instruction, if any
    std::int32_t srcLine = -1;      ///< 1-based .s line, -1 if unknown
    std::string message;            ///< human-readable description
};

/** The outcome of one verification run. */
struct Report
{
    std::vector<Finding> findings;

    unsigned
    count(Severity s) const
    {
        unsigned n = 0;
        for (const Finding &f : findings) {
            if (f.severity == s)
                ++n;
        }
        return n;
    }

    unsigned errors() const { return count(Severity::kError); }
    unsigned warnings() const { return count(Severity::kWarning); }

    /** True if the program passed (strict also rejects warnings). */
    bool
    clean(bool strict = false) const
    {
        return errors() == 0 && (!strict || warnings() == 0);
    }
};

/**
 * Renders @p report one finding per line:
 *   "<source>:<line>: error: [group-raw] inst 5: ..." .
 * @p source prefixes each line (typically the .s path or program
 * name); findings without a source line omit the ":<line>" part.
 * Notes are included only when @p show_notes is set.
 */
std::string render(const Report &report, const std::string &source,
                   bool show_notes = false);

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_DIAGNOSTICS_HH
