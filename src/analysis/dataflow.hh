/**
 * @file
 * The generic iterative dataflow engine: a worklist solver over the
 * program Cfg, parameterized by direction and by an analysis policy
 * supplying the lattice (boundary/initial states, a meet) and the
 * block transfer function. Every whole-program analysis in this
 * directory — liveness, reaching definitions, constant and value-
 * range propagation, memory dependence — is an instantiation of this
 * one solver, so each soundness argument reduces to "the transfer
 * function is monotone and the lattice has finite height (or the
 * policy's meet widens)".
 *
 * The policy type must provide:
 *
 *   using State = ...;           // one lattice element
 *   static constexpr Direction kDirection = Direction::kForward;
 *   State boundaryState() const; // entry (forward) / exit (backward)
 *   State initialState() const;  // identity of the meet ("unvisited")
 *   // Meets @p from into @p into; returns true if @p into changed.
 *   bool meetInto(State &into, const State &from) const;
 *   // Applies block @p b of @p cfg to @p state in flow direction.
 *   void transferBlock(const Cfg &cfg, std::size_t b,
 *                      State &state) const;
 *
 * initialState() must be the meet's identity element, so blocks not
 * yet reached along any path contribute nothing at joins (forward
 * analyses then automatically treat unreachable code as "no facts").
 * meetInto() doubles as the convergence test, so policies that widen
 * (value ranges) simply make their meet saturating.
 */

#ifndef FF_ANALYSIS_DATAFLOW_HH
#define FF_ANALYSIS_DATAFLOW_HH

#include <deque>
#include <vector>

#include "analysis/cfg.hh"

namespace ff
{
namespace analysis
{

/** Which way facts flow through the CFG. */
enum class Direction
{
    kForward,  ///< facts flow entry -> exit (reaching defs, ranges)
    kBackward, ///< facts flow exit -> entry (liveness)
};

/**
 * Runs @p policy over @p cfg to a fixpoint and stores the per-block
 * states. For a forward analysis in(b) is the state at block entry
 * and out(b) at block exit; for a backward analysis in(b) is the
 * state at block *exit* (the flow input) and out(b) at block entry.
 */
template <typename Policy>
class DataflowSolver
{
  public:
    using State = typename Policy::State;

    DataflowSolver(const Cfg &cfg, const Policy &policy)
        : _cfg(cfg), _policy(policy)
    {
        solve();
    }

    /** Flow-input state of block @p b (entry forward, exit backward). */
    const State &in(std::size_t b) const { return _in[b]; }

    /** Flow-output state of block @p b (exit forward, entry backward). */
    const State &out(std::size_t b) const { return _out[b]; }

  private:
    static constexpr bool kForward =
        Policy::kDirection == Direction::kForward;

    /** Flow-predecessors of @p b: CFG preds forward, succs backward. */
    const std::vector<std::size_t> &
    flowPreds(std::size_t b) const
    {
        const CfgBlock &blk = _cfg.blocks()[b];
        return kForward ? blk.preds : blk.succs;
    }

    const std::vector<std::size_t> &
    flowSuccs(std::size_t b) const
    {
        const CfgBlock &blk = _cfg.blocks()[b];
        return kForward ? blk.succs : blk.preds;
    }

    /** True if @p b receives the boundary state: the entry block
     *  forward (even when loops branch back to it), any block with
     *  no flow-predecessors backward (halt-terminated exits). */
    bool
    isBoundary(std::size_t b) const
    {
        if (kForward)
            return b == 0;
        return flowPreds(b).empty();
    }

    void
    solve()
    {
        const std::size_t nb = _cfg.numBlocks();
        _in.assign(nb, _policy.initialState());
        _out.assign(nb, _policy.initialState());

        // Seed every block, in flow order (entry first forward, exits
        // first backward) so the common reducible case converges in
        // near-linear passes.
        std::deque<std::size_t> work;
        std::vector<bool> queued(nb, true);
        for (std::size_t k = 0; k < nb; ++k)
            work.push_back(kForward ? k : nb - 1 - k);

        while (!work.empty()) {
            const std::size_t b = work.front();
            work.pop_front();
            queued[b] = false;

            State in = _policy.initialState();
            if (isBoundary(b))
                _policy.meetInto(in, _policy.boundaryState());
            for (std::size_t p : flowPreds(b))
                _policy.meetInto(in, _out[p]);

            State out = in;
            _policy.transferBlock(_cfg, b, out);
            _in[b] = std::move(in);
            if (_policy.meetInto(_out[b], out)) {
                for (std::size_t s : flowSuccs(b)) {
                    if (!queued[s]) {
                        queued[s] = true;
                        work.push_back(s);
                    }
                }
            }
        }
    }

    const Cfg &_cfg;
    const Policy &_policy;
    std::vector<State> _in;
    std::vector<State> _out;
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_DATAFLOW_HH
