/**
 * @file
 * Integer value-range propagation over the dataflow engine: a forward
 * must-analysis generalizing constant propagation. Each register
 * carries an unsigned interval [lo, hi] plus a power-of-two congruence
 * (value ≡ rem mod 2^alignLog2), so the verifier can prove alignment
 * and nullness facts about effective addresses that are *not*
 * compile-time constants — e.g. a base built as `x << 3 | 4` is
 * provably 4 mod 8 whatever x is.
 *
 * Congruence arithmetic is exact under 64-bit wraparound, so it
 * survives operations whose interval must fall to top on possible
 * overflow. Termination: the congruence lattice has height <= 64 per
 * slot, and the join widens an interval to the extremes after a small
 * number of growths, so each cell takes finitely many values.
 */

#ifndef FF_ANALYSIS_RANGE_HH
#define FF_ANALYSIS_RANGE_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "isa/program.hh"

namespace ff
{
namespace analysis
{

/** One lattice cell: interval plus power-of-two congruence. */
struct Range
{
    std::uint64_t lo = 0;                   ///< value >= lo
    std::uint64_t hi = ~std::uint64_t{0};   ///< value <= hi
    std::uint64_t rem = 0;  ///< value ≡ rem (mod 2^alignLog2)
    std::uint8_t alignLog2 = 0;
    std::uint8_t grows = 0; ///< join growth count, drives widening

    static Range top() { return {}; }
    static Range constant(std::uint64_t c);

    bool isConstant() const { return lo == hi; }
    bool provablyZero() const { return lo == 0 && hi == 0; }

    /** True if the value can never be zero on any path. */
    bool
    provablyNonZero() const
    {
        return lo > 0 || rem != 0;
    }

    /** True if value % align is provably nonzero (align a power of
     *  two): a memory access at this address must fault or straddle. */
    bool provablyMisaligned(std::uint64_t align) const;

    /** True if value % align is provably zero (align a power of two). */
    bool provablyAligned(std::uint64_t align) const;

    /**
     * Widening join: grows this cell to cover @p from; after a few
     * interval growths the bounds jump to the extremes so loops
     * converge. Returns true if this cell changed. grows is carried
     * metadata and excluded from the change test.
     */
    bool joinInto(const Range &from);

    bool
    operator==(const Range &o) const
    {
        return lo == o.lo && hi == o.hi && rem == o.rem &&
               alignLog2 == o.alignLog2;
    }
};

/** Range state for every dense register slot at one point. */
struct RangeState
{
    bool seeded = false; ///< false: no path reaches (meet identity)
    std::vector<Range> regs;
};

/** Per-program value-range propagation result. */
class RangeProp
{
  public:
    /** Runs the dataflow to a fixpoint over @p cfg. */
    explicit RangeProp(const Cfg &cfg);

    /** The value range of @p reg immediately before instruction
     *  @p i executes; top() for unreachable code or unknown values. */
    Range rangeBefore(InstIdx i, isa::RegId reg) const;

    /** The range of memory instruction @p i's effective address
     *  ([src1 + imm]); top() if @p i is not a memory operation. */
    Range effectiveAddress(InstIdx i) const;

    /** Applies instruction @p in to @p state (exposed for tests). */
    static void transfer(const isa::Instruction &in, RangeState *state);

  private:
    const Cfg &_cfg;
    std::vector<RangeState> _blockIn; ///< per-block entry state
};

} // namespace analysis
} // namespace ff

#endif // FF_ANALYSIS_RANGE_HH
