#include "analysis/constprop.hh"

#include "analysis/dataflow.hh"
#include "common/logging.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

using cpu::kNumRegSlots;
using cpu::regSlot;
using isa::Instruction;
using isa::Opcode;
using isa::RegClass;
using isa::RegId;

namespace
{

/** Lattice meet: equal constants stay, anything else is bottom. */
ConstVal
meet(const ConstVal &a, const ConstVal &b)
{
    if (a.known && b.known && a.value == b.value)
        return a;
    return ConstVal::bottom();
}

/** Meets @p from into @p into; true if @p into changed. */
bool
meetState(ConstState *into, const ConstState &from)
{
    bool changed = false;
    for (std::size_t s = 0; s < into->size(); ++s) {
        const ConstVal m = meet((*into)[s], from[s]);
        if (!(m == (*into)[s])) {
            (*into)[s] = m;
            changed = true;
        }
    }
    return changed;
}

/** Reads a register out of @p state (hardwired zeros included). */
ConstVal
readReg(const ConstState &state, RegId r)
{
    if (r.idx == 0)
        return ConstVal::of(0); // r0/f0 read as zero, p0 as one below
    const int slot = regSlot(r);
    if (slot < 0)
        return ConstVal::bottom();
    return state[static_cast<std::size_t>(slot)];
}

/**
 * Integer ALU result mirroring cpu::evaluate's semantics, or bottom
 * for opcodes the propagation does not model.
 */
ConstVal
evalInt(const Instruction &in, const ConstState &state)
{
    const ConstVal a = readReg(state, in.src1);
    ConstVal b;
    if (in.src2IsImm) {
        b = ConstVal::of(static_cast<std::uint64_t>(in.imm));
    } else {
        b = readReg(state, in.src2);
    }
    if (in.op == Opcode::kMovi)
        return ConstVal::of(static_cast<std::uint64_t>(in.imm));
    if (in.op == Opcode::kMov)
        return a;
    if (!a.known || !b.known)
        return ConstVal::bottom();
    const std::uint64_t x = a.value, y = b.value;
    switch (in.op) {
      case Opcode::kAdd: return ConstVal::of(x + y);
      case Opcode::kSub: return ConstVal::of(x - y);
      case Opcode::kAnd: return ConstVal::of(x & y);
      case Opcode::kOr:  return ConstVal::of(x | y);
      case Opcode::kXor: return ConstVal::of(x ^ y);
      case Opcode::kShl: return ConstVal::of(x << (y & 63));
      case Opcode::kShr: return ConstVal::of(x >> (y & 63));
      case Opcode::kSra:
        return ConstVal::of(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(x) >> (y & 63)));
      case Opcode::kMul: return ConstVal::of(x * y);
      default:
        return ConstVal::bottom();
    }
}

} // namespace

void
ConstProp::transfer(const Instruction &in, ConstState *state)
{
    std::array<RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    if (nd == 0)
        return;

    // Only single-destination integer-class results are modeled;
    // cmp/fcmp pairs, FP results and loads all go to bottom.
    ConstVal result = ConstVal::bottom();
    if (nd == 1 && dsts[0].cls == RegClass::kInt && !in.isLoad())
        result = evalInt(in, *state);

    // A predicated write may retain the old value, so it merges.
    const bool conditional =
        !(in.qpred.cls == RegClass::kPred && in.qpred.idx == 0);
    for (unsigned d = 0; d < nd; ++d) {
        const int slot = regSlot(dsts[d]);
        if (slot < 0 || dsts[d].idx == 0)
            continue; // hardwired: writes are dropped
        ConstVal next = (d == 0) ? result : ConstVal::bottom();
        if (conditional)
            next = meet((*state)[static_cast<std::size_t>(slot)], next);
        (*state)[static_cast<std::size_t>(slot)] = next;
    }
}

namespace
{

/** Seeded-flag wrapper so the solver's initial state — "no path
 *  reaches here yet" — is the meet identity for a must-analysis. */
struct ConstPropState
{
    bool seeded = false;
    ConstState regs;
};

/** Forward must-analysis policy over the constant lattice. */
struct ConstPropPolicy
{
    using State = ConstPropState;
    static constexpr Direction kDirection = Direction::kForward;

    State initialState() const { return {}; }

    State
    boundaryState() const
    {
        // Architectural reset: every register starts at zero.
        return {true, ConstState(kNumRegSlots, ConstVal::of(0))};
    }

    bool
    meetInto(State &into, const State &from) const
    {
        if (!from.seeded)
            return false;
        if (!into.seeded) {
            into = from;
            return true;
        }
        return meetState(&into.regs, from.regs);
    }

    void
    transferBlock(const Cfg &cfg, std::size_t b, State &state) const
    {
        if (!state.seeded)
            return; // unreachable blocks propagate nothing
        const CfgBlock &blk = cfg.blocks()[b];
        for (InstIdx i = blk.begin; i < blk.end; ++i)
            ConstProp::transfer(cfg.program().inst(i), &state.regs);
    }
};

} // namespace

ConstProp::ConstProp(const Cfg &cfg) : _cfg(cfg)
{
    const ConstPropPolicy policy;
    const DataflowSolver<ConstPropPolicy> solver(_cfg, policy);

    // Unreached blocks keep an all-bottom entry state, so queries on
    // unreachable code never claim a constant.
    _blockIn.assign(_cfg.numBlocks(),
                    ConstState(kNumRegSlots, ConstVal::bottom()));
    for (std::size_t b = 0; b < _cfg.numBlocks(); ++b) {
        if (solver.in(b).seeded)
            _blockIn[b] = solver.in(b).regs;
    }
}

std::optional<std::uint64_t>
ConstProp::valueBefore(InstIdx i, RegId reg) const
{
    if (reg.idx == 0 && reg.cls != RegClass::kNone) {
        // Hardwired: r0/f0 are zero, p0 is one.
        return reg.cls == RegClass::kPred ? 1 : 0;
    }
    const int slot = regSlot(reg);
    if (slot < 0)
        return std::nullopt;
    const std::size_t b = _cfg.blockIndexOf(i);
    ConstState state = _blockIn[b];
    for (InstIdx j = _cfg.blocks()[b].begin; j < i; ++j)
        transfer(_cfg.program().inst(j), &state);
    const ConstVal v = state[static_cast<std::size_t>(slot)];
    if (!v.known)
        return std::nullopt;
    return v.value;
}

std::optional<std::uint64_t>
ConstProp::effectiveAddress(InstIdx i) const
{
    const Instruction &in = _cfg.program().inst(i);
    if (!in.isMem())
        return std::nullopt;
    const auto base = valueBefore(i, in.src1);
    if (!base)
        return std::nullopt;
    return *base + static_cast<std::uint64_t>(in.imm);
}

} // namespace analysis
} // namespace ff
