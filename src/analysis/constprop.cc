#include "analysis/constprop.hh"

#include <deque>

#include "common/logging.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace analysis
{

using compiler::BasicBlock;
using cpu::kNumRegSlots;
using cpu::regSlot;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::RegClass;
using isa::RegId;

namespace
{

/** Lattice meet: equal constants stay, anything else is bottom. */
ConstVal
meet(const ConstVal &a, const ConstVal &b)
{
    if (a.known && b.known && a.value == b.value)
        return a;
    return ConstVal::bottom();
}

/** Meets @p from into @p into; true if @p into changed. */
bool
meetState(ConstState *into, const ConstState &from)
{
    bool changed = false;
    for (std::size_t s = 0; s < into->size(); ++s) {
        const ConstVal m = meet((*into)[s], from[s]);
        if (!(m == (*into)[s])) {
            (*into)[s] = m;
            changed = true;
        }
    }
    return changed;
}

/** Reads a register out of @p state (hardwired zeros included). */
ConstVal
readReg(const ConstState &state, RegId r)
{
    if (r.idx == 0)
        return ConstVal::of(0); // r0/f0 read as zero, p0 as one below
    const int slot = regSlot(r);
    if (slot < 0)
        return ConstVal::bottom();
    return state[static_cast<std::size_t>(slot)];
}

/**
 * Integer ALU result mirroring cpu::evaluate's semantics, or bottom
 * for opcodes the propagation does not model.
 */
ConstVal
evalInt(const Instruction &in, const ConstState &state)
{
    const ConstVal a = readReg(state, in.src1);
    ConstVal b;
    if (in.src2IsImm) {
        b = ConstVal::of(static_cast<std::uint64_t>(in.imm));
    } else {
        b = readReg(state, in.src2);
    }
    if (in.op == Opcode::kMovi)
        return ConstVal::of(static_cast<std::uint64_t>(in.imm));
    if (in.op == Opcode::kMov)
        return a;
    if (!a.known || !b.known)
        return ConstVal::bottom();
    const std::uint64_t x = a.value, y = b.value;
    switch (in.op) {
      case Opcode::kAdd: return ConstVal::of(x + y);
      case Opcode::kSub: return ConstVal::of(x - y);
      case Opcode::kAnd: return ConstVal::of(x & y);
      case Opcode::kOr:  return ConstVal::of(x | y);
      case Opcode::kXor: return ConstVal::of(x ^ y);
      case Opcode::kShl: return ConstVal::of(x << (y & 63));
      case Opcode::kShr: return ConstVal::of(x >> (y & 63));
      case Opcode::kSra:
        return ConstVal::of(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(x) >> (y & 63)));
      case Opcode::kMul: return ConstVal::of(x * y);
      default:
        return ConstVal::bottom();
    }
}

} // namespace

void
ConstProp::transfer(const Instruction &in, ConstState *state)
{
    std::array<RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    if (nd == 0)
        return;

    // Only single-destination integer-class results are modeled;
    // cmp/fcmp pairs, FP results and loads all go to bottom.
    ConstVal result = ConstVal::bottom();
    if (nd == 1 && dsts[0].cls == RegClass::kInt && !in.isLoad())
        result = evalInt(in, *state);

    // A predicated write may retain the old value, so it merges.
    const bool conditional =
        !(in.qpred.cls == RegClass::kPred && in.qpred.idx == 0);
    for (unsigned d = 0; d < nd; ++d) {
        const int slot = regSlot(dsts[d]);
        if (slot < 0 || dsts[d].idx == 0)
            continue; // hardwired: writes are dropped
        ConstVal next = (d == 0) ? result : ConstVal::bottom();
        if (conditional)
            next = meet((*state)[static_cast<std::size_t>(slot)], next);
        (*state)[static_cast<std::size_t>(slot)] = next;
    }
}

ConstProp::ConstProp(const Program &prog, const compiler::Liveness &live)
    : _prog(prog), _live(live)
{
    const auto &blocks = live.blocks();
    ff_panic_if(blocks.empty(), "const-prop over an empty program");

    // Unreached blocks keep an all-bottom entry state, so queries on
    // unreachable code never claim a constant.
    _blockIn.assign(blocks.size(),
                    ConstState(kNumRegSlots, ConstVal::bottom()));
    std::vector<bool> seeded(blocks.size(), false);

    // Architectural reset: every register starts at zero.
    _blockIn[0].assign(kNumRegSlots, ConstVal::of(0));
    seeded[0] = true;

    std::deque<std::size_t> work{0};
    std::vector<bool> queued(blocks.size(), false);
    queued[0] = true;
    while (!work.empty()) {
        const std::size_t b = work.front();
        work.pop_front();
        queued[b] = false;

        ConstState out = _blockIn[b];
        for (InstIdx i = blocks[b].begin; i < blocks[b].end; ++i)
            transfer(prog.inst(i), &out);

        for (std::size_t s : blocks[b].succs) {
            bool changed;
            if (!seeded[s]) {
                _blockIn[s] = out;
                seeded[s] = true;
                changed = true;
            } else {
                changed = meetState(&_blockIn[s], out);
            }
            if (changed && !queued[s]) {
                work.push_back(s);
                queued[s] = true;
            }
        }
    }
}

std::optional<std::uint64_t>
ConstProp::valueBefore(InstIdx i, RegId reg) const
{
    if (reg.idx == 0 && reg.cls != RegClass::kNone) {
        // Hardwired: r0/f0 are zero, p0 is one.
        return reg.cls == RegClass::kPred ? 1 : 0;
    }
    const int slot = regSlot(reg);
    if (slot < 0)
        return std::nullopt;
    const BasicBlock &blk = _live.blockOf(i);
    // _blockOf is private to Liveness; recover the block's index by
    // position so we can look up its entry state.
    const std::size_t b =
        static_cast<std::size_t>(&blk - _live.blocks().data());
    ConstState state = _blockIn[b];
    for (InstIdx j = blk.begin; j < i; ++j)
        transfer(_prog.inst(j), &state);
    const ConstVal v = state[static_cast<std::size_t>(slot)];
    if (!v.known)
        return std::nullopt;
    return v.value;
}

std::optional<std::uint64_t>
ConstProp::effectiveAddress(InstIdx i) const
{
    const Instruction &in = _prog.inst(i);
    if (!in.isMem())
        return std::nullopt;
    const auto base = valueBefore(i, in.src1);
    if (!base)
        return std::nullopt;
    return *base + static_cast<std::uint64_t>(in.imm);
}

} // namespace analysis
} // namespace ff
