/**
 * @file
 * Fundamental scalar types shared by every subsystem of the simulator.
 */

#ifndef FF_COMMON_TYPES_HH
#define FF_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ff
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A virtual memory address in the simulated machine (byte-granular). */
using Addr = std::uint64_t;

/** Contents of an integer register (also used to carry raw FP bits). */
using RegVal = std::uint64_t;

/**
 * Identity of a dynamic instruction. Monotonically increasing over a
 * run; large enough to be unique for the lifetime of any simulation
 * (the paper's "DynID", sized "sufficiently large to guarantee
 * uniqueness within the machine at any given moment" -- we simply
 * never wrap).
 */
using DynId = std::uint64_t;

/** Sentinel used where a DynId is absent. */
inline constexpr DynId kInvalidDynId =
    std::numeric_limits<DynId>::max();

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Static instruction index within a Program. */
using InstIdx = std::uint32_t;

inline constexpr InstIdx kInvalidInstIdx =
    std::numeric_limits<InstIdx>::max();

} // namespace ff

#endif // FF_COMMON_TYPES_HH
