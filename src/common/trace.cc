#include "common/trace.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ff
{
namespace trace
{

namespace
{
// The only process-global mutable state reachable from simulate():
// enabled() runs on every traced statement of every batch worker, so
// the mask is a relaxed atomic (tracing is configuration, not
// synchronization); the capture buffer is mutex-guarded so concurrent
// emitters interleave whole lines rather than bytes.
std::atomic<std::uint32_t> g_mask{kNone};
std::mutex g_bufferMu;
bool g_capture = false;
std::string g_buffer;
} // namespace

void
enable(std::uint32_t mask)
{
    g_mask.fetch_or(mask, std::memory_order_relaxed);
}

void
disable()
{
    g_mask.store(kNone, std::memory_order_relaxed);
}

bool
enabled(std::uint32_t mask)
{
    return (g_mask.load(std::memory_order_relaxed) & mask) != 0;
}

void
captureToBuffer(bool on)
{
    std::lock_guard<std::mutex> lk(g_bufferMu);
    g_capture = on;
    if (on)
        g_buffer.clear();
}

std::string
takeBuffer()
{
    std::lock_guard<std::mutex> lk(g_bufferMu);
    std::string out;
    out.swap(g_buffer);
    return out;
}

void
emit(Cycle cycle, const char *tag, const std::string &msg)
{
    char head[64];
    std::snprintf(head, sizeof(head), "%10llu: %-8s: ",
                  static_cast<unsigned long long>(cycle), tag);
    std::lock_guard<std::mutex> lk(g_bufferMu);
    if (g_capture) {
        g_buffer += head;
        g_buffer += msg;
        g_buffer += '\n';
    } else {
        std::fprintf(stderr, "%s%s\n", head, msg.c_str());
    }
}

} // namespace trace
} // namespace ff
