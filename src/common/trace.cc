#include "common/trace.hh"

#include <cstdio>

namespace ff
{
namespace trace
{

namespace
{
std::uint32_t g_mask = kNone;
bool g_capture = false;
std::string g_buffer;
} // namespace

void
enable(std::uint32_t mask)
{
    g_mask |= mask;
}

void
disable()
{
    g_mask = kNone;
}

bool
enabled(std::uint32_t mask)
{
    return (g_mask & mask) != 0;
}

void
captureToBuffer(bool on)
{
    g_capture = on;
    if (on)
        g_buffer.clear();
}

std::string
takeBuffer()
{
    std::string out;
    out.swap(g_buffer);
    return out;
}

void
emit(Cycle cycle, const char *tag, const std::string &msg)
{
    char head[64];
    std::snprintf(head, sizeof(head), "%10llu: %-8s: ",
                  static_cast<unsigned long long>(cycle), tag);
    if (g_capture) {
        g_buffer += head;
        g_buffer += msg;
        g_buffer += '\n';
    } else {
        std::fprintf(stderr, "%s%s\n", head, msg.c_str());
    }
}

} // namespace trace
} // namespace ff
