#include "common/trace.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ff
{
namespace trace
{

namespace
{
// Process-global mutable state reachable from simulate(): the mask
// lives inline in the header (trace::detail::g_mask) so enabled()
// inlines; the capture buffer is mutex-guarded so concurrent emitters
// interleave whole lines rather than bytes.
std::mutex g_bufferMu;
bool g_capture = false;
std::string g_buffer;
} // namespace

void
enable(std::uint32_t mask)
{
    detail::g_mask.fetch_or(mask, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_mask.store(kNone, std::memory_order_relaxed);
}

void
captureToBuffer(bool on)
{
    std::lock_guard<std::mutex> lk(g_bufferMu);
    g_capture = on;
    if (on)
        g_buffer.clear();
}

std::string
takeBuffer()
{
    std::lock_guard<std::mutex> lk(g_bufferMu);
    std::string out;
    out.swap(g_buffer);
    return out;
}

void
emit(Cycle cycle, const char *tag, const std::string &msg)
{
    char head[64];
    std::snprintf(head, sizeof(head), "%10llu: %-8s: ",
                  static_cast<unsigned long long>(cycle), tag);
    std::lock_guard<std::mutex> lk(g_bufferMu);
    if (g_capture) {
        g_buffer += head;
        g_buffer += msg;
        g_buffer += '\n';
    } else {
        std::fprintf(stderr, "%s%s\n", head, msg.c_str());
    }
}

} // namespace trace
} // namespace ff
