/**
 * @file
 * The metrics layer: named counters, fixed-bucket histograms and
 * fixed-rate time series collected into a Registry, plus a small
 * streaming JSON writer the export path renders them with. The
 * layer is passive — nothing in the simulator samples into a
 * Registry unless an observer client is attached, so the zero-cost
 * guarantee of the CoreObserver seam carries through: an unattached
 * run pays exactly one null-pointer test per event site and no
 * metrics work at all.
 */

#ifndef FF_COMMON_METRICS_HH
#define FF_COMMON_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace ff
{
namespace metrics
{

/**
 * Minimal streaming JSON writer: objects, arrays, keys and scalar
 * values with correct comma placement and string escaping. The
 * emitter never buffers — callers stream directly into an ostream —
 * and panics (in debug) only through misuse of the nesting calls.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : _os(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emits the key of the next member of the enclosing object. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(double d);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(std::uint32_t v) { value(std::uint64_t(v)); }
    void value(std::int32_t v) { value(std::int64_t(v)); }

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** Escapes @p s per RFC 8259 (quotes, backslash, control chars). */
    static std::string escape(std::string_view s);

  private:
    /** Emits the separating comma when needed. */
    void preValue();

    std::ostream &_os;
    /** One element per open container: true once a member was emitted. */
    std::vector<bool> _needComma;
    bool _afterKey = false;
};

/** A named, monotonically adjustable 64-bit event counter. */
class Counter
{
  public:
    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t v) { _value += v; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Fixed-bucket histogram over [min, max) with uniform bucket width;
 * out-of-range samples land in underflow/overflow. Mirrors
 * stats::Distribution but lives below it so the metrics layer stays
 * free of the logging dependency and exports natively to JSON.
 */
class Histogram
{
  public:
    Histogram(std::int64_t min, std::int64_t max,
              std::size_t num_buckets);

    void sample(std::int64_t v);

    std::int64_t min() const { return _min; }
    std::int64_t max() const { return _max; }
    std::uint64_t samples() const { return _samples; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    double mean() const;
    /** Smallest sample value >= the q-quantile (0 <= q <= 1). */
    std::int64_t quantile(double q) const;

    void reset();

  private:
    std::int64_t _min;
    std::int64_t _max;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::int64_t _sum = 0;
};

/**
 * Fixed-rate time series: samples are folded into epochs of
 * @c epochCycles simulated cycles and each completed epoch stores the
 * epoch mean, so a multi-million-cycle run exports as a bounded,
 * plot-ready vector. finish() closes the partial trailing epoch.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Cycle epoch_cycles);

    /** Folds @p v into the epoch containing @p now (cycles must be
     *  non-decreasing across calls). */
    void sample(Cycle now, double v);

    /** Flushes the in-progress epoch, if it holds any samples. */
    void finish();

    Cycle epochCycles() const { return _epoch; }
    /** Mean value per completed epoch, in time order. */
    const std::vector<double> &points() const { return _points; }

    void reset();

  private:
    void flushEpoch();

    Cycle _epoch;
    std::uint64_t _curEpoch = 0;
    double _sum = 0.0;
    std::uint64_t _count = 0;
    std::vector<double> _points;
};

/**
 * Registry of named metrics belonging to one run. Creation is
 * idempotent per name within a kind (re-requesting returns the same
 * instance); names must be unique within their kind. The registry is
 * a passive container — attach/detach policy belongs to whoever owns
 * the observers feeding it.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;
    Registry(Registry &&) = default;
    Registry &operator=(Registry &&) = default;

    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name, std::int64_t min,
                         std::int64_t max, std::size_t buckets);
    TimeSeries &series(const std::string &name, Cycle epoch_cycles);

    const std::map<std::string, Counter> &counters() const
    {
        return _counters;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return _histograms;
    }
    const std::map<std::string, TimeSeries> &seriesMap() const
    {
        return _series;
    }

    /** Closes every series' trailing epoch. */
    void finish();

    /**
     * Renders the registry as one JSON object with "counters",
     * "histograms" and "series" members (see tools/metrics_schema.json
     * for the document schema this feeds).
     */
    void toJson(JsonWriter &w) const;

  private:
    std::map<std::string, Counter> _counters;
    std::map<std::string, Histogram> _histograms;
    std::map<std::string, TimeSeries> _series;
};

} // namespace metrics
} // namespace ff

#endif // FF_COMMON_METRICS_HH
