#include "common/engine_trace.hh"

#include <chrono>
#include <mutex>
#include <unordered_map>

namespace ff
{
namespace engine
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Recorder state behind one mutex; spans are per-job, not per-cycle,
 *  so contention is negligible. */
struct Recorder
{
    std::mutex mu;
    Clock::time_point epoch;
    std::uint64_t generation = 0; ///< bumps on every traceEnable()
    TraceData data;
    std::unordered_map<std::string, std::uint32_t> nameIdx;
};

Recorder &
recorder()
{
    static Recorder r;
    return r;
}

/** Per-thread lane identity, resolved lazily per enable-generation so
 *  a thread keeps one lane per recording window. */
struct ThreadLane
{
    std::uint64_t generation = 0;
    std::uint32_t lane = 0;
    std::string name; ///< set by laneName(); empty = default
};

thread_local ThreadLane t_lane;

/** Must hold r.mu. */
std::uint32_t
internName(Recorder &r, const char *name)
{
    const auto [it, fresh] =
        r.nameIdx.emplace(name, static_cast<std::uint32_t>(
                                    r.data.names.size()));
    if (fresh)
        r.data.names.push_back(name);
    return it->second;
}

/** Must hold r.mu. */
std::uint32_t
laneOf(Recorder &r)
{
    if (t_lane.generation == r.generation &&
        !r.data.lanes.empty()) {
        return t_lane.lane;
    }
    t_lane.generation = r.generation;
    t_lane.lane = static_cast<std::uint32_t>(r.data.lanes.size());
    r.data.lanes.push_back(
        t_lane.name.empty()
            ? "thread-" + std::to_string(t_lane.lane)
            : t_lane.name);
    return t_lane.lane;
}

std::uint64_t
sinceEpochUs(const Recorder &r)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - r.epoch)
            .count());
}

} // namespace

void
traceEnable()
{
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lk(r.mu);
    r.data = TraceData{};
    r.nameIdx.clear();
    r.epoch = Clock::now();
    ++r.generation;
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

TraceData
traceStop()
{
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lk(r.mu);
    detail::g_enabled.store(false, std::memory_order_relaxed);
    ++r.generation; // spans still open are discarded at destruction
    TraceData out = std::move(r.data);
    r.data = TraceData{};
    r.nameIdx.clear();
    return out;
}

void
laneName(const std::string &name)
{
    t_lane.name = name;
    t_lane.generation = 0; // re-resolve on next record
}

void
traceInstant(const char *name)
{
    if (!traceEnabled())
        return;
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lk(r.mu);
    TraceSpan s;
    s.startUs = sinceEpochUs(r);
    s.name = internName(r, name);
    s.lane = laneOf(r);
    s.instant = true;
    r.data.spans.push_back(s);
}

ScopedSpan::ScopedSpan(const char *name) : _name(name)
{
    if (!traceEnabled())
        return;
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lk(r.mu);
    _startUs = sinceEpochUs(r);
    _generation = r.generation;
    _active = true;
}

ScopedSpan::~ScopedSpan()
{
    if (!_active || !traceEnabled())
        return;
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lk(r.mu);
    if (r.generation != _generation)
        return; // recording window changed under the span

    TraceSpan s;
    s.startUs = _startUs;
    s.durUs = sinceEpochUs(r) - _startUs;
    s.name = internName(r, _name);
    s.lane = laneOf(r);
    r.data.spans.push_back(s);
}

} // namespace engine
} // namespace ff
