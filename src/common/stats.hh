/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar
 * counters, averages, distributions and formulas, collected into
 * per-component StatGroups that can be dumped as text.
 */

#ifndef FF_COMMON_STATS_HH
#define FF_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace ff
{
namespace stats
{

/** A named, monotonically adjustable 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }

    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    void reset() { _sum = 0.0; _count = 0; }
    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }

    double
    mean() const
    {
        return _count == 0 ? 0.0 : _sum / static_cast<double>(_count);
    }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * Fixed-bucket histogram over [min, max) with uniform bucket width;
 * out-of-range samples land in underflow/overflow.
 */
class Distribution
{
  public:
    Distribution() : Distribution(0, 1, 1) {}

    /**
     * @param min lowest in-range sample (inclusive)
     * @param max highest in-range sample (exclusive)
     * @param num_buckets number of uniform buckets across [min, max)
     */
    Distribution(std::int64_t min, std::int64_t max,
                 std::size_t num_buckets)
        : _min(min), _max(max), _buckets(num_buckets, 0)
    {
        ff_panic_if(max <= min, "bad distribution range");
        ff_panic_if(num_buckets == 0, "zero distribution buckets");
    }

    void
    sample(std::int64_t v)
    {
        ++_samples;
        _sum += v;
        if (v < _min) {
            ++_underflow;
        } else if (v >= _max) {
            ++_overflow;
        } else {
            std::size_t idx = static_cast<std::size_t>(
                (v - _min) * static_cast<std::int64_t>(_buckets.size()) /
                (_max - _min));
            ++_buckets[idx];
        }
    }

    std::uint64_t samples() const { return _samples; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    double
    mean() const
    {
        return _samples == 0
            ? 0.0
            : static_cast<double>(_sum) / static_cast<double>(_samples);
    }

    void
    reset()
    {
        _samples = _underflow = _overflow = 0;
        _sum = 0;
        for (auto &b : _buckets)
            b = 0;
    }

    /** Snapshot hook: serializes range, buckets and counters. */
    void
    save(serial::Writer &w) const
    {
        w.i64(_min);
        w.i64(_max);
        w.u64(_buckets.size());
        for (const std::uint64_t b : _buckets)
            w.u64(b);
        w.u64(_samples);
        w.u64(_underflow);
        w.u64(_overflow);
        w.i64(_sum);
    }

    /** Inverse of save(); flags mismatched geometry via r.fail(). */
    void
    restore(serial::Reader &r)
    {
        if (r.i64() != _min || r.i64() != _max ||
            r.seq(8) != _buckets.size()) {
            r.fail();
            return;
        }
        for (std::uint64_t &b : _buckets)
            b = r.u64();
        _samples = r.u64();
        _underflow = r.u64();
        _overflow = r.u64();
        _sum = r.i64();
    }

  private:
    std::int64_t _min;
    std::int64_t _max;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::int64_t _sum = 0;
};

/**
 * Registry of named statistics belonging to one simulated component.
 * Components register their stats once; the harness dumps or resets
 * every registered stat by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    Scalar &
    addScalar(const std::string &stat_name, std::string desc = "")
    {
        auto [it, inserted] = _scalars.try_emplace(stat_name);
        ff_panic_if(!inserted, "duplicate scalar stat ", stat_name);
        _descs[stat_name] = std::move(desc);
        return it->second;
    }

    Average &
    addAverage(const std::string &stat_name, std::string desc = "")
    {
        auto [it, inserted] = _averages.try_emplace(stat_name);
        ff_panic_if(!inserted, "duplicate average stat ", stat_name);
        _descs[stat_name] = std::move(desc);
        return it->second;
    }

    Distribution &
    addDistribution(const std::string &stat_name, std::int64_t min,
                    std::int64_t max, std::size_t buckets,
                    std::string desc = "")
    {
        auto [it, inserted] =
            _dists.try_emplace(stat_name, Distribution(min, max, buckets));
        ff_panic_if(!inserted, "duplicate distribution stat ", stat_name);
        _descs[stat_name] = std::move(desc);
        return it->second;
    }

    const std::string &name() const { return _name; }

    /** Looks up a scalar; panics if absent. */
    const Scalar &scalar(const std::string &stat_name) const;

    void reset();

    /** Renders all stats as "group.stat value  # desc" lines. */
    std::string dump() const;

    const std::map<std::string, Scalar> &scalars() const
    {
        return _scalars;
    }
    const std::map<std::string, Average> &averages() const
    {
        return _averages;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return _dists;
    }

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Average> _averages;
    std::map<std::string, Distribution> _dists;
    std::map<std::string, std::string> _descs;
};

} // namespace stats
} // namespace ff

#endif // FF_COMMON_STATS_HH
