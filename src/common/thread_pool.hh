/**
 * @file
 * A work-stealing thread pool for the experiment engine. Each worker
 * owns a deque of tasks: it pushes and pops at the back (LIFO, cache
 * warm) and victims are robbed from the front (FIFO, oldest first),
 * the classic Chase-Lev discipline implemented here with per-deque
 * locks — contention is one uncontended lock per task in the common
 * case, far below the cost of a simulate() call.
 *
 * parallelFor() is the deterministic fan-out primitive built on top:
 * indices are claimed from a shared atomic counter, results land in
 * caller-indexed slots, and the first exception (if any) is rethrown
 * on the calling thread after the loop quiesces.
 */

#ifndef FF_COMMON_THREAD_POOL_HH
#define FF_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ff
{

/**
 * Number of workers to use when the caller does not say: the FF_JOBS
 * environment variable if set to a positive integer, else the
 * hardware concurrency (at least 1).
 */
unsigned defaultJobCount();

/** Work-stealing pool of persistent worker threads. */
class ThreadPool
{
  public:
    /**
     * Starts @p threads workers (0 = defaultJobCount()). A pool of
     * one worker still runs tasks on that worker, preserving the
     * submit/wait protocol of larger pools.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /**
     * Enqueues @p task and returns a future for its completion. An
     * exception escaping the task is captured into the future.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Runs fn(i) for every i in [0, n), fanned out across the
     * workers; the calling thread participates, so a pool is never
     * idle-blocked on its own caller. Rethrows the first task
     * exception after every index has been claimed and finished.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    struct Task
    {
        std::function<void()> fn;
        std::promise<void> done;
    };

    /** One worker's lock-guarded deque (back = hot end). */
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<Task> q;
    };

    void workerLoop(unsigned self);

    /** Pops from own back, else steals from a victim's front. */
    bool takeTask(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> _queues;
    std::vector<std::thread> _workers;

    std::mutex _sleepMu;
    std::condition_variable _wake;
    std::atomic<std::size_t> _queued{0};  ///< enqueued, not yet taken
    std::atomic<unsigned> _nextQueue{0};  ///< round-robin submit cursor
    std::atomic<bool> _stop{false};
};

} // namespace ff

#endif // FF_COMMON_THREAD_POOL_HH
