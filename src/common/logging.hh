/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for advisories.
 */

#ifndef FF_COMMON_LOGGING_HH
#define FF_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ff
{

namespace detail
{

/** Formats and emits a log line, optionally aborting. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Stream-concatenates a parameter pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Invariant check that is always on (unlike assert()). Use for
 * conditions that indicate a simulator bug regardless of build type.
 */
#define ff_panic_if(cond, ...)                                          \
    do {                                                                \
        if (cond) {                                                     \
            ::ff::detail::panicImpl(__FILE__, __LINE__,                 \
                ::ff::detail::concat("panic condition '" #cond         \
                                     "' occurred: ", __VA_ARGS__));     \
        }                                                               \
    } while (0)

/** Unconditional simulator-bug abort. */
#define ff_panic(...)                                                   \
    ::ff::detail::panicImpl(__FILE__, __LINE__,                         \
                            ::ff::detail::concat(__VA_ARGS__))

/** Unconditional user-error exit. */
#define ff_fatal(...)                                                   \
    ::ff::detail::fatalImpl(__FILE__, __LINE__,                         \
                            ::ff::detail::concat(__VA_ARGS__))

/** User-error exit when a configuration constraint is violated. */
#define ff_fatal_if(cond, ...)                                          \
    do {                                                                \
        if (cond) {                                                     \
            ::ff::detail::fatalImpl(__FILE__, __LINE__,                 \
                ::ff::detail::concat(__VA_ARGS__));                     \
        }                                                               \
    } while (0)

#define ff_warn(...)                                                    \
    ::ff::detail::warnImpl(__FILE__, __LINE__,                          \
                           ::ff::detail::concat(__VA_ARGS__))

#define ff_inform(...)                                                  \
    ::ff::detail::informImpl(::ff::detail::concat(__VA_ARGS__))

} // namespace ff

#endif // FF_COMMON_LOGGING_HH
