#include "common/metrics.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace ff
{
namespace metrics
{

// ---- JsonWriter ----------------------------------------------------

void
JsonWriter::preValue()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (!_needComma.empty()) {
        if (_needComma.back())
            _os << ',';
        _needComma.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    _os << '{';
    _needComma.push_back(false);
}

void
JsonWriter::endObject()
{
    ff_panic_if(_needComma.empty(), "JsonWriter: endObject underflow");
    _needComma.pop_back();
    _os << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    _os << '[';
    _needComma.push_back(false);
}

void
JsonWriter::endArray()
{
    ff_panic_if(_needComma.empty(), "JsonWriter: endArray underflow");
    _needComma.pop_back();
    _os << ']';
}

void
JsonWriter::key(std::string_view k)
{
    ff_panic_if(_needComma.empty(),
                "JsonWriter: key outside an object");
    if (_needComma.back())
        _os << ',';
    _needComma.back() = true;
    _os << '"' << escape(k) << "\":";
    _afterKey = true;
}

void
JsonWriter::value(std::string_view s)
{
    preValue();
    _os << '"' << escape(s) << '"';
}

void
JsonWriter::value(bool b)
{
    preValue();
    _os << (b ? "true" : "false");
}

void
JsonWriter::value(double d)
{
    preValue();
    // JSON has no NaN/Infinity literals; clamp to null-equivalent 0.
    if (!std::isfinite(d))
        d = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", d);
    _os << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    _os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    _os << v;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ---- Histogram -----------------------------------------------------

Histogram::Histogram(std::int64_t min, std::int64_t max,
                     std::size_t num_buckets)
    : _min(min), _max(max), _buckets(num_buckets, 0)
{
    ff_panic_if(max <= min, "bad histogram range");
    ff_panic_if(num_buckets == 0, "zero histogram buckets");
}

void
Histogram::sample(std::int64_t v)
{
    ++_samples;
    _sum += v;
    if (v < _min) {
        ++_underflow;
    } else if (v >= _max) {
        ++_overflow;
    } else {
        const std::size_t idx = static_cast<std::size_t>(
            (v - _min) * static_cast<std::int64_t>(_buckets.size()) /
            (_max - _min));
        ++_buckets[idx];
    }
}

double
Histogram::mean() const
{
    return _samples == 0
        ? 0.0
        : static_cast<double>(_sum) / static_cast<double>(_samples);
}

std::int64_t
Histogram::quantile(double q) const
{
    if (_samples == 0)
        return _min;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(_samples));
    std::uint64_t seen = _underflow;
    if (seen > target)
        return _min;
    const std::int64_t width =
        (_max - _min) / static_cast<std::int64_t>(_buckets.size());
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen > target)
            return _min + static_cast<std::int64_t>(i) *
                              (width == 0 ? 1 : width);
    }
    return _max;
}

void
Histogram::reset()
{
    _samples = _underflow = _overflow = 0;
    _sum = 0;
    for (auto &b : _buckets)
        b = 0;
}

// ---- TimeSeries ----------------------------------------------------

TimeSeries::TimeSeries(Cycle epoch_cycles) : _epoch(epoch_cycles)
{
    ff_panic_if(epoch_cycles == 0, "zero time-series epoch");
}

void
TimeSeries::sample(Cycle now, double v)
{
    const std::uint64_t epoch = now / _epoch;
    while (_curEpoch < epoch) {
        flushEpoch();
        ++_curEpoch;
    }
    _sum += v;
    ++_count;
}

void
TimeSeries::flushEpoch()
{
    _points.push_back(
        _count == 0 ? 0.0 : _sum / static_cast<double>(_count));
    _sum = 0.0;
    _count = 0;
}

void
TimeSeries::finish()
{
    if (_count != 0) {
        flushEpoch();
        ++_curEpoch;
    }
}

void
TimeSeries::reset()
{
    _curEpoch = 0;
    _sum = 0.0;
    _count = 0;
    _points.clear();
}

// ---- Registry ------------------------------------------------------

Counter &
Registry::counter(const std::string &name)
{
    return _counters[name];
}

Histogram &
Registry::histogram(const std::string &name, std::int64_t min,
                    std::int64_t max, std::size_t buckets)
{
    auto it = _histograms.find(name);
    if (it == _histograms.end()) {
        it = _histograms.emplace(name, Histogram(min, max, buckets))
                 .first;
    }
    return it->second;
}

TimeSeries &
Registry::series(const std::string &name, Cycle epoch_cycles)
{
    auto it = _series.find(name);
    if (it == _series.end())
        it = _series.emplace(name, TimeSeries(epoch_cycles)).first;
    return it->second;
}

void
Registry::finish()
{
    for (auto &[name, s] : _series)
        s.finish();
}

void
Registry::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, c] : _counters)
        w.kv(name, c.value());
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : _histograms) {
        w.key(name);
        w.beginObject();
        w.kv("min", h.min());
        w.kv("max", h.max());
        w.kv("samples", h.samples());
        w.kv("underflow", h.underflow());
        w.kv("overflow", h.overflow());
        w.kv("mean", h.mean());
        w.key("buckets");
        w.beginArray();
        for (std::uint64_t b : h.buckets())
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.key("series");
    w.beginObject();
    for (const auto &[name, s] : _series) {
        w.key(name);
        w.beginObject();
        w.kv("epochCycles", static_cast<std::uint64_t>(
                                s.epochCycles()));
        w.key("points");
        w.beginArray();
        for (double p : s.points())
            w.value(p);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace metrics
} // namespace ff
