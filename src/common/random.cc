#include "common/random.hh"

#include "common/logging.hh"

namespace ff
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : _s)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    ff_panic_if(bound == 0, "nextBelow(0)");
    // Debiased modulo via rejection on the top range.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    ff_panic_if(hi < lo, "nextRange with hi < lo");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace ff
