/**
 * @file
 * Byte-stream serialization primitives behind every versioned binary
 * format in the repo (model snapshots, the on-disk result cache).
 * Encoding is explicit little-endian regardless of host order, so a
 * snapshot or cache entry written on one machine decodes on any
 * other.
 *
 * Writer appends into a growable byte buffer and cannot fail. Reader
 * is deliberately non-fatal: any structural problem (truncation, a
 * mismatched section tag, an implausible container size) latches a
 * sticky failure flag instead of panicking, and every subsequent read
 * returns zeros. Callers decide the policy — the snapshot layer
 * treats !ok() as a fatal simulator bug, while the result cache
 * treats it as a miss so a corrupt or stale cache file can never
 * poison an experiment.
 */

#ifndef FF_COMMON_SERIALIZE_HH
#define FF_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ff
{
namespace serial
{

/** Four-character section tag, e.g. tag("HIER"). */
constexpr std::uint32_t
tag(const char (&s)[5])
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[1]))
               << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[2]))
               << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[3]))
               << 24;
}

/** Append-only little-endian encoder. */
class Writer
{
  public:
    /** Appends one byte. */
    void u8(std::uint8_t v) { _buf.push_back(v); }

    /** Appends @p v as two little-endian bytes. */
    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    /** Appends @p v as four little-endian bytes. */
    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    /** Appends @p v as eight little-endian bytes. */
    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    /** Appends @p v two's-complement, as u64(). */
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Appends @p v as a single 0/1 byte. */
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Appends the IEEE-754 bit pattern of @p v (u64 layout). */
    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Appends @p n raw bytes from @p p. */
    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        _buf.insert(_buf.end(), b, b + n);
    }

    /** Appends a u64 length followed by the string bytes. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** Marks the start of a section; Reader::section() checks it. */
    void section(std::uint32_t t) { u32(t); }

    /** The bytes written so far. */
    const std::vector<std::uint8_t> &buffer() const { return _buf; }

    /** Moves the buffer out, leaving the writer empty. */
    std::vector<std::uint8_t> take() { return std::move(_buf); }

  private:
    std::vector<std::uint8_t> _buf;
};

/** Bounds-checked little-endian decoder with a sticky failure flag. */
class Reader
{
  public:
    /** Reads from @p size bytes at @p data (not owned). */
    Reader(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
    }

    /** Reads from @p buf (not owned; must outlive the reader). */
    explicit Reader(const std::vector<std::uint8_t> &buf)
        : Reader(buf.data(), buf.size())
    {
    }

    /** Reads one byte; 0 on failure. */
    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return _data[_pos++];
    }

    /** Reads a little-endian u16. */
    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        const std::uint16_t hi = u8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    /** Reads a little-endian u32. */
    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        const std::uint32_t hi = u16();
        return lo | (hi << 16);
    }

    /** Reads a little-endian u64. */
    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    /** Reads a two's-complement i64. */
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    /** Reads a boolean byte. */
    bool boolean() { return u8() != 0; }

    /** Reads an IEEE-754 double from its u64 bit pattern. */
    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    /** Reads @p n raw bytes into @p p; zero-fills on failure. */
    void
    bytes(void *p, std::size_t n)
    {
        if (!take(n)) {
            std::memset(p, 0, n);
            return;
        }
        std::memcpy(p, _data + _pos, n);
        _pos += n;
    }

    /** Reads a length-prefixed string (see Writer::str()). */
    std::string
    str()
    {
        const std::size_t n = seq(1);
        std::string s(n, '\0');
        bytes(s.data(), n);
        return s;
    }

    /**
     * Container element count written by Writer::u64(size); fails if
     * the remaining bytes cannot possibly hold @p elem_min bytes per
     * element, so a corrupt length can never trigger a huge
     * allocation.
     */
    std::size_t
    seq(std::size_t elem_min)
    {
        const std::uint64_t n = u64();
        if (elem_min != 0 && n > remaining() / elem_min) {
            fail();
            return 0;
        }
        return static_cast<std::size_t>(n);
    }

    /** Consumes a section tag; fails (and returns false) on mismatch. */
    bool
    section(std::uint32_t expect)
    {
        if (u32() != expect)
            fail();
        return ok();
    }

    /** False once any read has failed (sticky). */
    bool ok() const { return _ok; }

    /** Latches the failure flag explicitly. */
    void fail() { _ok = false; }

    /** Bytes left to read. */
    std::size_t remaining() const { return _size - _pos; }

    /** True when every byte has been consumed. */
    bool atEnd() const { return _pos == _size; }

  private:
    bool
    take(std::size_t n)
    {
        if (!_ok || n > remaining()) {
            fail();
            return false;
        }
        return true;
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    bool _ok = true;
};

} // namespace serial
} // namespace ff

#endif // FF_COMMON_SERIALIZE_HH
