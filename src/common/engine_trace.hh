/**
 * @file
 * Wall-clock span recording for the experiment engine: batch jobs,
 * warm-up forks, thread-pool worker lanes, result-cache hits and
 * misses. Where the PipeViewObserver records *simulated* cycles for
 * one core, this records *host* microseconds across every engine
 * thread, and the two streams merge into one ffpipe container so a
 * whole sweep is a single Perfetto-loadable timeline.
 *
 * The recorder is process-global and off by default; when disabled,
 * every entry point is one relaxed atomic load (the engine hot paths
 * pay nothing). When enabled, spans and instants are interned and
 * appended under a mutex — coarse-grained by design, since engine
 * spans are per-job (milliseconds), not per-cycle.
 */

#ifndef FF_COMMON_ENGINE_TRACE_HH
#define FF_COMMON_ENGINE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ff
{
namespace engine
{

/** One completed span or instant on an engine lane. */
struct TraceSpan
{
    std::uint32_t name = 0;    ///< index into TraceData::names
    std::uint32_t lane = 0;    ///< index into TraceData::lanes
    std::uint64_t startUs = 0; ///< microseconds since traceEnable()
    std::uint64_t durUs = 0;   ///< 0 for instants
    bool instant = false;      ///< true: a point event, not a span
};

/** Everything one enable/stop window recorded. */
struct TraceData
{
    std::vector<std::string> names; ///< interned span/instant names
    std::vector<std::string> lanes; ///< lane (thread) display names
    std::vector<TraceSpan> spans;   ///< in completion order
};

namespace detail
{
/** Global on/off latch; inline so traceEnabled() is one load. */
inline std::atomic<bool> g_enabled{false};
} // namespace detail

/** True while the recorder is collecting. */
inline bool
traceEnabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Clears any previous recording and starts a new one (epoch = now). */
void traceEnable();

/** Stops recording and moves the collected data out. */
TraceData traceStop();

/**
 * Names the calling thread's lane in subsequent recordings (e.g.
 * "worker-3"); threads that never call it get "thread-N". Cheap
 * enough to call unconditionally at thread start.
 */
void laneName(const std::string &name);

/** Records a point event on the calling thread's lane. */
void traceInstant(const char *name);

/**
 * RAII span on the calling thread's lane: records [construction,
 * destruction) when tracing was enabled at construction. A span that
 * outlives traceStop() is discarded.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *_name;
    std::uint64_t _startUs = 0;
    std::uint64_t _generation = 0;
    bool _active = false;
};

} // namespace engine
} // namespace ff

#endif // FF_COMMON_ENGINE_TRACE_HH
