/**
 * @file
 * A bounded FIFO with random access to live entries, used for the
 * coupling queue, front-end decoupling queue, and feedback buffer.
 */

#ifndef FF_COMMON_FIFO_HH
#define FF_COMMON_FIFO_HH

#include <cstddef>
#include <deque>

#include "common/logging.hh"

namespace ff
{

/**
 * Bounded first-in/first-out queue. Unlike std::queue it exposes
 * iteration over in-flight entries (needed for flush routines that
 * invalidate everything younger than some instruction) and enforces
 * a capacity.
 */
template <typename T>
class BoundedFifo
{
  public:
    explicit BoundedFifo(std::size_t capacity) : _capacity(capacity)
    {
        ff_panic_if(capacity == 0, "zero-capacity fifo");
    }

    bool empty() const { return _q.empty(); }
    bool full() const { return _q.size() >= _capacity; }
    std::size_t size() const { return _q.size(); }
    std::size_t capacity() const { return _capacity; }
    std::size_t freeSlots() const { return _capacity - _q.size(); }

    void
    push(T v)
    {
        ff_panic_if(full(), "push to full fifo");
        _q.push_back(std::move(v));
    }

    T &front() { ff_panic_if(empty(), "front of empty fifo");
                 return _q.front(); }
    const T &front() const { ff_panic_if(empty(), "front of empty fifo");
                             return _q.front(); }
    T &back() { ff_panic_if(empty(), "back of empty fifo");
                return _q.back(); }

    void
    pop()
    {
        ff_panic_if(empty(), "pop of empty fifo");
        _q.pop_front();
    }

    /** Random access: index 0 is the oldest entry. */
    T &at(std::size_t i) { return _q.at(i); }
    const T &at(std::size_t i) const { return _q.at(i); }

    /** Drops the youngest entry (used by squash routines). */
    void
    popBack()
    {
        ff_panic_if(empty(), "popBack of empty fifo");
        _q.pop_back();
    }

    void clear() { _q.clear(); }

    auto begin() { return _q.begin(); }
    auto end() { return _q.end(); }
    auto begin() const { return _q.begin(); }
    auto end() const { return _q.end(); }

  private:
    std::size_t _capacity;
    std::deque<T> _q;
};

} // namespace ff

#endif // FF_COMMON_FIFO_HH
