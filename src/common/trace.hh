/**
 * @file
 * Lightweight, flag-gated debug tracing. Components emit trace lines
 * tagged with a category; the harness (or a test) enables categories
 * globally. Zero cost when the category is off beyond one branch.
 */

#ifndef FF_COMMON_TRACE_HH
#define FF_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/types.hh"

namespace ff
{
namespace trace
{

/** Trace categories; bitmask-combinable. */
enum Category : std::uint32_t
{
    kNone     = 0,
    kFetch    = 1u << 0,
    kIssue    = 1u << 1,
    kExec     = 1u << 2,
    kMem      = 1u << 3,
    kBranch   = 1u << 4,
    kApipe    = 1u << 5,
    kBpipe    = 1u << 6,
    kFlush    = 1u << 7,
    kFeedback = 1u << 8,
    kCore     = 1u << 9,  ///< CoreObserver events (TraceObserver)
    kEngine   = 1u << 10, ///< engine layer: thread pool, batch, cache
    kAll      = ~0u,
};

namespace detail
{
/**
 * The global category mask. Inline here (not hidden in trace.cc) so
 * enabled() compiles down to one relaxed load + AND at every traced
 * statement on the per-cycle path instead of a cross-TU call.
 */
inline std::atomic<std::uint32_t> g_mask{kNone};
} // namespace detail

/** Enables the given categories (bitwise OR with current mask). */
void enable(std::uint32_t mask);

/** Disables all tracing. */
void disable();

/** True if any of the given categories is enabled. */
inline bool
enabled(std::uint32_t mask)
{
    return (detail::g_mask.load(std::memory_order_relaxed) & mask) != 0;
}

/**
 * Redirects trace output into an internal buffer instead of stderr
 * (used by the case-study example and by tests that assert on traces).
 */
void captureToBuffer(bool on);

/** Returns and clears the capture buffer. */
std::string takeBuffer();

/** Emits one trace line: "<cycle>: <tag>: <msg>". */
void emit(Cycle cycle, const char *tag, const std::string &msg);

} // namespace trace
} // namespace ff

/** Emit a trace line if the category is enabled. */
#define ff_trace(category, cycle, tag, ...)                              \
    do {                                                                 \
        if (::ff::trace::enabled(category)) {                            \
            std::ostringstream ff_trace_oss;                             \
            ff_trace_oss << __VA_ARGS__;                                 \
            ::ff::trace::emit(cycle, tag, ff_trace_oss.str());           \
        }                                                                \
    } while (0)

#endif // FF_COMMON_TRACE_HH
