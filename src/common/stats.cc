#include "common/stats.hh"

#include <sstream>

namespace ff
{
namespace stats
{

const Scalar &
StatGroup::scalar(const std::string &stat_name) const
{
    auto it = _scalars.find(stat_name);
    ff_panic_if(it == _scalars.end(), "unknown scalar stat ", _name, ".",
                stat_name);
    return it->second;
}

void
StatGroup::reset()
{
    for (auto &[k, s] : _scalars)
        s.reset();
    for (auto &[k, a] : _averages)
        a.reset();
    for (auto &[k, d] : _dists)
        d.reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream oss;
    for (const auto &[k, s] : _scalars) {
        oss << _name << '.' << k << ' ' << s.value();
        auto d = _descs.find(k);
        if (d != _descs.end() && !d->second.empty())
            oss << "  # " << d->second;
        oss << '\n';
    }
    for (const auto &[k, a] : _averages) {
        oss << _name << '.' << k << ' ' << a.mean() << " (n="
            << a.count() << ")";
        auto d = _descs.find(k);
        if (d != _descs.end() && !d->second.empty())
            oss << "  # " << d->second;
        oss << '\n';
    }
    for (const auto &[k, dist] : _dists) {
        oss << _name << '.' << k << " mean=" << dist.mean() << " n="
            << dist.samples() << " under=" << dist.underflow()
            << " over=" << dist.overflow() << '\n';
    }
    return oss.str();
}

} // namespace stats
} // namespace ff
