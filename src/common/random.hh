/**
 * @file
 * Deterministic pseudo-random number generation for workload inputs
 * and property tests. Simulation results must be bit-reproducible
 * across platforms, so we carry our own generator (splitmix64 /
 * xoshiro256**) instead of relying on std:: distribution behaviour.
 */

#ifndef FF_COMMON_RANDOM_HH
#define FF_COMMON_RANDOM_HH

#include <cstdint>

namespace ff
{

/**
 * xoshiro256** seeded through splitmix64. Deterministic across
 * platforms and fast enough to sit inside workload generators.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform in [0, bound). bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    std::uint64_t _s[4];
};

} // namespace ff

#endif // FF_COMMON_RANDOM_HH
