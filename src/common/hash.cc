#include "common/hash.hh"

#include <cstring>

#include "common/logging.hh"

namespace ff
{

namespace
{

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t
rotr(std::uint32_t v, unsigned n)
{
    return (v >> n) | (v << (32 - n));
}

} // namespace

Sha256::Sha256()
    : _h{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
         0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{
    _block.fill(0);
}

void
Sha256::compress(const std::uint8_t *block)
{
    std::uint32_t w[64];
    for (unsigned i = 0; i < 16; ++i) {
        w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
               static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
               static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (unsigned i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^
                                 rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^
                                 rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = _h[0], b = _h[1], c = _h[2], d = _h[3];
    std::uint32_t e = _h[4], f = _h[5], g = _h[6], h = _h[7];
    for (unsigned i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    _h[0] += a;
    _h[1] += b;
    _h[2] += c;
    _h[3] += d;
    _h[4] += e;
    _h[5] += f;
    _h[6] += g;
    _h[7] += h;
}

void
Sha256::update(const void *data, std::size_t n)
{
    ff_panic_if(_finalized, "Sha256 update after digest");
    const auto *p = static_cast<const std::uint8_t *>(data);
    _totalBytes += n;
    while (n > 0) {
        const std::size_t room = 64 - _blockFill;
        const std::size_t chunk = n < room ? n : room;
        std::memcpy(_block.data() + _blockFill, p, chunk);
        _blockFill += chunk;
        p += chunk;
        n -= chunk;
        if (_blockFill == 64) {
            compress(_block.data());
            _blockFill = 0;
        }
    }
}

std::array<std::uint8_t, 32>
Sha256::digest()
{
    ff_panic_if(_finalized, "Sha256 digest is one-shot");
    _finalized = true;

    const std::uint64_t bits = _totalBytes * 8;
    _block[_blockFill++] = 0x80;
    if (_blockFill > 56) {
        std::memset(_block.data() + _blockFill, 0, 64 - _blockFill);
        compress(_block.data());
        _blockFill = 0;
    }
    std::memset(_block.data() + _blockFill, 0, 56 - _blockFill);
    for (unsigned i = 0; i < 8; ++i)
        _block[56 + i] =
            static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    compress(_block.data());

    std::array<std::uint8_t, 32> out;
    for (unsigned i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(_h[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(_h[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(_h[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(_h[i]);
    }
    return out;
}

std::string
Sha256::hexDigest()
{
    static const char kHex[] = "0123456789abcdef";
    const std::array<std::uint8_t, 32> d = digest();
    std::string s;
    s.reserve(64);
    for (const std::uint8_t b : d) {
        s.push_back(kHex[b >> 4]);
        s.push_back(kHex[b & 0xf]);
    }
    return s;
}

std::string
Sha256::hex(const void *data, std::size_t n)
{
    Sha256 h;
    h.update(data, n);
    return h.hexDigest();
}

} // namespace ff
