#include "common/thread_pool.hh"

#include <cstdlib>
#include <string>

#include "common/engine_trace.hh"
#include "common/logging.hh"

namespace ff
{

unsigned
defaultJobCount()
{
    if (const char *env = std::getenv("FF_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        ff_warn("ignoring malformed FF_JOBS='", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultJobCount();
    _queues.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _queues.push_back(std::make_unique<WorkerQueue>());
    _workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(_sleepMu);
        _stop.store(true, std::memory_order_release);
    }
    _wake.notify_all();
    for (auto &w : _workers)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    Task t;
    t.fn = std::move(task);
    std::future<void> fut = t.done.get_future();

    // Round-robin placement spreads independent submissions; the
    // stealing protocol rebalances any skew.
    const unsigned home = _nextQueue.fetch_add(
                              1, std::memory_order_relaxed) %
                          static_cast<unsigned>(_queues.size());
    {
        std::lock_guard<std::mutex> lk(_queues[home]->mu);
        _queues[home]->q.push_back(std::move(t));
    }
    _queued.fetch_add(1, std::memory_order_release);
    _wake.notify_one();
    return fut;
}

bool
ThreadPool::takeTask(unsigned self, Task &out)
{
    // Own queue first, hot end.
    {
        WorkerQueue &mine = *_queues[self];
        std::lock_guard<std::mutex> lk(mine.mu);
        if (!mine.q.empty()) {
            out = std::move(mine.q.back());
            mine.q.pop_back();
            _queued.fetch_sub(1, std::memory_order_release);
            return true;
        }
    }
    // Steal the oldest task from the first non-empty victim.
    const unsigned n = static_cast<unsigned>(_queues.size());
    for (unsigned d = 1; d < n; ++d) {
        WorkerQueue &victim = *_queues[(self + d) % n];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.q.empty()) {
            out = std::move(victim.q.front());
            victim.q.pop_front();
            _queued.fetch_sub(1, std::memory_order_release);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    engine::laneName("worker-" + std::to_string(self));
    for (;;) {
        Task t;
        if (takeTask(self, t)) {
            try {
                t.fn();
                t.done.set_value();
            } catch (...) {
                t.done.set_exception(std::current_exception());
            }
            continue;
        }
        std::unique_lock<std::mutex> lk(_sleepMu);
        _wake.wait(lk, [this] {
            return _stop.load(std::memory_order_acquire) ||
                   _queued.load(std::memory_order_acquire) != 0;
        });
        if (_stop.load(std::memory_order_acquire) &&
            _queued.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Shared claim counter: each participant takes the next unclaimed
    // index. Work assignment is nondeterministic; callers regain
    // determinism by writing results into slot [i].
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto first_error = std::make_shared<std::once_flag>();
    auto error = std::make_shared<std::exception_ptr>();

    auto drain = [next, first_error, error, &fn, n] {
        for (;;) {
            const std::size_t i =
                next->fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::call_once(*first_error, [&] {
                    *error = std::current_exception();
                });
            }
        }
    };

    // One helper task per worker is enough: each drains the counter.
    std::vector<std::future<void>> helpers;
    const std::size_t fanout =
        n < _workers.size() ? n : _workers.size();
    helpers.reserve(fanout);
    for (std::size_t w = 0; w < fanout; ++w)
        helpers.push_back(submit(drain));

    drain(); // the caller participates instead of blocking idle

    for (auto &h : helpers)
        h.get();
    if (*error)
        std::rethrow_exception(*error);
}

} // namespace ff
