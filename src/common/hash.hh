/**
 * @file
 * Self-contained SHA-256 for content addressing (the on-disk result
 * cache keys its entries by the digest of program + configuration).
 * Implemented locally so the simulator keeps zero external
 * dependencies; this is FIPS 180-4 SHA-256, validated against the
 * published test vectors in tests/common/test_hash.cc.
 */

#ifndef FF_COMMON_HASH_HH
#define FF_COMMON_HASH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ff
{

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    /** Fresh hasher in the FIPS 180-4 initial state. */
    Sha256();

    /** Absorbs @p n bytes at @p data. */
    void update(const void *data, std::size_t n);

    /** Absorbs the bytes of @p s. */
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finalizes and returns the 32-byte digest. One-shot. */
    std::array<std::uint8_t, 32> digest();

    /** Finalizes and returns the digest as 64 lowercase hex chars. */
    std::string hexDigest();

    /** Convenience one-shot hex digest of a buffer. */
    static std::string hex(const void *data, std::size_t n);

  private:
    void compress(const std::uint8_t *block);

    std::array<std::uint32_t, 8> _h;
    std::array<std::uint8_t, 64> _block;
    std::uint64_t _totalBytes = 0;
    std::size_t _blockFill = 0;
    bool _finalized = false;
};

} // namespace ff

#endif // FF_COMMON_HASH_HH
