#include "cpu/stats_report.hh"

#include "common/stats.hh"

namespace ff
{
namespace cpu
{

std::string
commonStatsReport(const CycleAccounting &acct,
                  const branch::PredictorStats &branches,
                  const memory::AccessStats &accesses)
{
    stats::StatGroup cyc("cycles");
    for (unsigned i = 0; i < kNumCycleClasses; ++i) {
        cyc.addScalar(cycleClassName(static_cast<CycleClass>(i))) +=
            acct.counts[i];
    }
    cyc.addScalar("total") += acct.total();

    stats::StatGroup br("branch");
    br.addScalar("lookups") += branches.lookups;
    br.addScalar("mispredicts") += branches.mispredicts;

    stats::StatGroup mem("mem");
    static const char *kWho[] = {"base", "apipe", "bpipe", "runahead"};
    for (unsigned w = 0; w < memory::kNumInitiators; ++w) {
        for (unsigned l = 0; l < memory::kNumMemLevels; ++l) {
            const auto c = accesses.counts[w][l];
            if (c == 0)
                continue;
            const std::string base =
                std::string(kWho[w]) + "." +
                memory::memLevelName(
                    static_cast<memory::MemLevel>(l));
            mem.addScalar(base + ".accesses") += c;
            mem.addScalar(base + ".cycles") +=
                accesses.weightedCycles[w][l];
        }
    }
    return cyc.dump() + br.dump() + mem.dump();
}

} // namespace cpu
} // namespace ff
