#include "cpu/twopass/regrouper.hh"

#include <array>
#include <bitset>

#include "common/logging.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace cpu
{

namespace
{

/** Mutable resource tally for a window under construction. */
struct Resources
{
    unsigned total = 0;
    unsigned alu = 0;
    unsigned mem = 0;
    unsigned fp = 0;
    unsigned br = 0;

    bool
    add(const isa::Instruction &in, const isa::GroupLimits &lim)
    {
        if (total + 1 > lim.issueWidth)
            return false;
        switch (in.unit()) {
          case isa::UnitClass::kAlu:
            if (alu + 1 > lim.aluUnits)
                return false;
            ++alu;
            break;
          case isa::UnitClass::kMem:
            if (mem + 1 > lim.memUnits)
                return false;
            ++mem;
            break;
          case isa::UnitClass::kFp:
            if (fp + 1 > lim.fpUnits)
                return false;
            ++fp;
            break;
          case isa::UnitClass::kBranch:
            if (br + 1 > lim.branchUnits)
                return false;
            ++br;
            break;
        }
        ++total;
        return true;
    }
};

} // namespace

RetireWindow
headGroupWindow(const CouplingQueue &cq)
{
    ff_panic_if(cq.empty(), "retire window on empty coupling queue");
    std::size_t i = 0;
    while (true) {
        ff_panic_if(i >= cq.size(),
                    "coupling queue holds a torn issue group");
        if (cq.at(i).groupEnd)
            break;
        ++i;
    }
    return {i + 1, 1};
}

RetireWindow
extendRetireWindow(
    const CouplingQueue &cq, const isa::Program &prog,
    const isa::GroupLimits &limits, Cycle now, RetireWindow w,
    const std::function<bool(const CqEntry &)> &entry_ready)
{
    // Window-so-far properties for the fusion rules.
    Resources res;
    std::bitset<kNumRegSlots> deferred_writes;
    bool has_deferred_store = false;
    bool blocked = false;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = cq.at(k);
        const isa::Instruction &in = prog.inst(e.idx);
        // The head group is taken as-is: it was a legal issue group,
        // so add() cannot overflow on it.
        res.add(in, limits);
        if (e.status == CqStatus::kDeferred) {
            if (in.isBranch()) {
                blocked = true;
                break;
            }
            if (in.isStore())
                has_deferred_store = true;
            std::array<isa::RegId, 2> dsts;
            unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                deferred_writes.set(regSlot(dsts[d]));
        }
        if (in.isHalt()) {
            blocked = true;
            break;
        }
    }

    while (!blocked) {
        // Locate the next group [w.entries, g_end] fully in the CQ.
        std::size_t g_end = w.entries;
        bool complete = false;
        while (g_end < cq.size()) {
            if (cq.at(g_end).groupEnd) {
                complete = true;
                break;
            }
            ++g_end;
        }
        if (!complete)
            break;
        if (cq.at(w.entries).enqueuedAt >= now)
            break; // the A-pipe must stay a cycle ahead

        // Trial-fuse: all rules must pass before committing.
        Resources trial = res;
        std::bitset<kNumRegSlots> trial_deferred = deferred_writes;
        bool trial_def_store = has_deferred_store;
        bool ok = true;
        bool trial_blocked = false;
        for (std::size_t k = w.entries; k <= g_end; ++k) {
            const CqEntry &e = cq.at(k);
            const isa::Instruction &in = prog.inst(e.idx);
            if (!trial.add(in, limits) || !entry_ready(e)) {
                ok = false;
                break;
            }
            // A pre-executed load's merge-time ALAT check must see
            // every older store invalidation: it cannot fuse behind
            // a deferred store.
            if (trial_def_store && e.isLoad &&
                e.status == CqStatus::kPreExecuted) {
                ok = false;
                break;
            }
            std::array<isa::RegId, 4> srcs;
            unsigned ns = in.sources(srcs);
            for (unsigned s = 0; s < ns && ok; ++s) {
                const int slot = regSlot(srcs[s]);
                if (slot >= 0 && srcs[s].idx != 0 &&
                    trial_deferred.test(slot)) {
                    ok = false; // still dependent on a deferred result
                }
            }
            if (!ok)
                break;
            if (e.status == CqStatus::kDeferred) {
                if (in.isBranch())
                    trial_blocked = true; // unresolved control
                if (in.isStore())
                    trial_def_store = true;
                std::array<isa::RegId, 2> dsts;
                unsigned nd = in.destinations(dsts);
                for (unsigned d = 0; d < nd; ++d)
                    trial_deferred.set(regSlot(dsts[d]));
            }
            if (in.isHalt())
                trial_blocked = true;
        }
        if (!ok)
            break;
        res = trial;
        deferred_writes = trial_deferred;
        has_deferred_store = trial_def_store;
        blocked = trial_blocked;
        w.entries = g_end + 1;
        ++w.groups;
    }
    return w;
}

} // namespace cpu
} // namespace ff
