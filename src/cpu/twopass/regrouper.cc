#include "cpu/twopass/regrouper.hh"

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

RetireWindow
headGroupWindow(const CouplingQueue &cq)
{
    ff_panic_if(cq.empty(), "retire window on empty coupling queue");
    std::size_t i = 0;
    while (true) {
        ff_panic_if(i >= cq.size(),
                    "coupling queue holds a torn issue group");
        if (cq.groupEnd(i))
            break;
        ++i;
    }
    return {i + 1, 1};
}

} // namespace cpu
} // namespace ff
