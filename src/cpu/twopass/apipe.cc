#include "cpu/twopass/apipe.hh"

#include "common/trace.hh"
#include "cpu/exec.hh"

namespace ff
{
namespace cpu
{

using isa::Instruction;

bool
APipe::anticipableStall(const FetchedGroup &g, Cycle now) const
{
    for (InstIdx i = g.leader; i < g.end; ++i) {
        const Instruction &in = _ctx.prog.inst(i);
        std::array<isa::RegId, 4> srcs;
        const unsigned ns = in.sources(srcs);
        for (unsigned s = 0; s < ns; ++s) {
            const isa::RegId r = srcs[s];
            if (_ctx.ms.afile.valid(r) && !_ctx.ms.afile.readyBy(r, now) &&
                _ctx.ms.afile.kindOf(r) == PendingKind::kNonLoad) {
                return true;
            }
        }
    }
    return false;
}

void
APipe::step(Cycle now)
{
    if (_ctx.ms.aHalted || !_ctx.fe.headReady(now))
        return;
    if (_ctx.cfg.aPipeThrottlePercent != 0) {
        // Issue moderation: when run-ahead is mostly producing
        // deferred instructions, pre-execution has stopped paying for
        // the queue space it consumes -- pause and let the B-pipe
        // clear the backlog (Sec. 3.5's suggested investigation).
        if (_throttled) {
            if (_ctx.ms.cq.size() * 4 <= _ctx.ms.cq.capacity()) {
                _throttled = false;
            } else {
                ++_ctx.stats.aStallThrottled;
                return;
            }
        } else if (_deferHistoryCount * 100 >=
                       _ctx.cfg.aPipeThrottlePercent * 64 &&
                   _ctx.ms.cq.size() * 2 > _ctx.ms.cq.capacity()) {
            _throttled = true;
            ++_ctx.stats.aStallThrottled;
            return;
        }
    }
    const FetchedGroup g = _ctx.fe.head();
    if (_ctx.ms.cq.freeSlots() <
        static_cast<std::size_t>(g.end - g.leader)) {
        ++_ctx.stats.aStallCqFull;
        return;
    }
    if (_ctx.cfg.aPipeStallsOnAnticipable && anticipableStall(g, now)) {
        ++_ctx.stats.aStallAnticipable;
        return;
    }
    _ctx.fe.pop(); // before any A-DET redirect clears the fetch queue
    dispatchGroup(g, now);
}

void
APipe::dispatchGroup(const FetchedGroup &g, Cycle now)
{
    for (InstIdx i = g.leader; i < g.end; ++i) {
        const Instruction &in = _ctx.prog.inst(i);
        const DynId id = _ctx.ms.nextId++;
        ++_ctx.stats.dispatched;
        if (_ctx.ms.observer != nullptr)
            _ctx.ms.observer->onDispatch(now, i, id);

        CqEntry e;
        e.idx = i;
        e.id = id;
        e.enqueuedAt = now;
        e.groupEnd = (i + 1 == g.end);
        e.isLoad = in.isLoad();
        e.isStore = in.isStore();
        e.isBranch = in.isBranch();
        if (e.isBranch) {
            e.predictedTaken = g.predictedTaken;
            e.prediction = g.prediction;
            e.fallthrough = g.end;
        }

        // ---- operand availability in the A-file ---------------------
        DeferReason reason = DeferReason::kNone;
        auto check = [&](isa::RegId r) {
            if (reason != DeferReason::kNone || !r.valid())
                return;
            if (!_ctx.ms.afile.valid(r))
                reason = DeferReason::kOperandInvalid;
            else if (!_ctx.ms.afile.readyBy(r, now))
                reason = DeferReason::kOperandInFlight;
        };
        check(in.qpred);
        bool qp = false;
        if (reason == DeferReason::kNone) {
            qp = _ctx.ms.afile.readPred(in.qpred);
            if (qp || in.isBranch()) {
                check(in.src1);
                if (!in.src2IsImm)
                    check(in.src2);
            }
        }

        // ---- structural availability ---------------------------------
        if (reason == DeferReason::kNone && !_ctx.cfg.aPipeHasFpUnits &&
            in.unit() == isa::UnitClass::kFp) {
            // Partial replication (Sec. 3.7): no FP units in the
            // A-pipe; the B-pipe keeps the complete set.
            reason = DeferReason::kNoFunctionalUnit;
        }
        if (reason == DeferReason::kNone && in.isLoad() &&
            _ctx.ms.conflictRetryContains(i)) {
            // Fallback after this load's conflict flush; lifted once
            // the machine makes retirement progress.
            reason = DeferReason::kConflictRetry;
        }
        if (reason == DeferReason::kNone && qp && in.isLoad() &&
            !_ctx.hier.loadSlotAvailable(now)) {
            reason = DeferReason::kMshrFull;
        }
        if (reason == DeferReason::kNone && qp && in.isStore() &&
            _ctx.sbuf.full()) {
            reason = DeferReason::kStoreBufferFull;
        }

        // Track the recent deferral rate for the issue throttle.
        const bool is_deferred = reason != DeferReason::kNone;
        _deferHistoryCount += (is_deferred ? 1 : 0);
        _deferHistoryCount -= (_deferHistory >> 63) & 1;
        _deferHistory = (_deferHistory << 1) | (is_deferred ? 1 : 0);

        if (reason != DeferReason::kNone) {
            // ---- defer to the B-pipe --------------------------------
            e.status = CqStatus::kDeferred;
            e.reason = reason;
            ++_ctx.stats.deferred;
            ++_ctx.stats
                  .deferredByReason[static_cast<unsigned>(reason)];
            std::array<isa::RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                _ctx.ms.afile.markDeferred(dsts[d], id);
            if (_ctx.ms.observer != nullptr)
                _ctx.ms.observer->onDefer(now, i, id, reason);
            ff_trace(trace::kApipe, now, "A-DEFER",
                     "@" << i << " id " << id << " reason "
                         << static_cast<unsigned>(reason));
            _ctx.ms.cq.push(e);
            continue;
        }

        // ---- pre-execute in the A-pipe ------------------------------
        e.status = CqStatus::kPreExecuted;
        e.predTrue = qp;
        e.readyAt = now;
        ++_ctx.stats.preExecuted;

        if (in.isBranch()) {
            // The direction is known: resolve the prediction at A-DET.
            e.branchResolvedInA = true;
            e.actualTaken = qp;
            ++_ctx.stats.branchesResolvedInA;
            _ctx.pred.update(e.prediction, qp);
            if (qp != g.predictedTaken) {
                ++_ctx.stats.aDetMispredicts;
                const InstIdx target =
                    qp ? static_cast<InstIdx>(in.imm) : g.end;
                _ctx.fe.redirect(target,
                                 now + 1 + _ctx.cfg.branchResolveDelay);
                ff_trace(trace::kBranch, now, "A-DET",
                         "mispredict @" << i << " -> @" << target);
            }
            _ctx.ms.cq.push(e);
            continue;
        }

        if (in.isHalt()) {
            _ctx.ms.aHalted = true;
            _ctx.ms.cq.push(e);
            continue;
        }

        if (!qp) {
            // Nullified: completes with no effects.
            _ctx.ms.cq.push(e);
            continue;
        }

        const RegVal s1 =
            in.src1.valid() ? _ctx.ms.afile.read(in.src1) : 0;
        const RegVal s2 = operandSrc2(
            in, in.src2.valid() ? _ctx.ms.afile.read(in.src2) : 0);
        EvalResult ev = evaluate(in, qp, s1, s2);

        if (in.isLoad()) {
            ++_ctx.stats.loadsInA;
            if (_ctx.ms.cq.deferredStores() > 0)
                ++_ctx.stats.loadsPastDeferredStore;
            bool forwarded = false;
            const std::uint64_t raw = _ctx.sbuf.read(
                id, ev.addr, ev.size, _ctx.mem, &forwarded);
            if (forwarded)
                ++_ctx.stats.storeForwardings;
            _ctx.alat.allocate(id, ev.addr, ev.size);
            const memory::AccessResult ar =
                _ctx.hier.access(memory::AccessKind::kLoad,
                                 memory::Initiator::kApipe, ev.addr,
                                 now);
            e.writesDst = true;
            e.dstVal = loadExtend(in.op, raw);
            e.readyAt = now + ar.latency;
            e.addr = ev.addr;
            e.size = ev.size;
            _ctx.ms.afile.writeExecuted(in.dst, e.dstVal, id, e.readyAt,
                                     PendingKind::kLoad);
            ff_trace(trace::kApipe, now, "A-LOAD",
                     "@" << i << " id " << id << " ["
                         << std::hex << ev.addr << std::dec << "] "
                         << memory::memLevelName(ar.level) << " ready@"
                         << e.readyAt);
        } else if (in.isStore()) {
            ++_ctx.stats.storesInA;
            _ctx.sbuf.insert(id, ev.addr, ev.size, ev.storeVal);
            _ctx.hier.access(memory::AccessKind::kStore,
                             memory::Initiator::kApipe, ev.addr, now);
            e.addr = ev.addr;
            e.size = ev.size;
            ff_trace(trace::kApipe, now, "A-STORE",
                     "@" << i << " id " << id << " [" << std::hex
                         << ev.addr << std::dec << "] buffered");
        } else {
            const unsigned lat = in.execLatency();
            e.readyAt = now + lat;
            e.writesDst = ev.writesDst;
            e.writesDst2 = ev.writesDst2;
            e.dstVal = ev.dstVal;
            e.dst2Val = ev.dst2Val;
            if (ev.writesDst) {
                _ctx.ms.afile.writeExecuted(in.dst, ev.dstVal, id,
                                         e.readyAt,
                                         PendingKind::kNonLoad);
            }
            if (ev.writesDst2) {
                _ctx.ms.afile.writeExecuted(in.dst2, ev.dst2Val, id,
                                         e.readyAt,
                                         PendingKind::kNonLoad);
            }
        }
        _ctx.ms.cq.push(e);
    }
}

} // namespace cpu
} // namespace ff
