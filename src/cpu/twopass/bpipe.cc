#include "cpu/twopass/bpipe.hh"

#include "common/trace.hh"
#include "cpu/exec.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

using isa::Instruction;

CycleClass
BPipe::prescanWindow(const RetireWindow &w, Cycle now) const
{
    unsigned deferred_loads = 0;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = _ctx.cq.at(k);
        const Instruction &in = _ctx.prog.inst(e.idx);
        if (e.status == CqStatus::kPreExecuted) {
            if (e.readyAt > now) {
                // A "dangling dependence": the result was started in
                // the A-pipe but has not arrived (Sec. 3.1).
                return e.isLoad ? CycleClass::kLoadStall
                                : CycleClass::kNonLoadDepStall;
            }
            continue;
        }
        // Deferred: operand readiness against B-pipe producers. The
        // nullification shortcut uses the current predicate value;
        // in-window pre-executed producers may still flip it at apply
        // time, a deliberate (conservatively safe) simplification.
        if (!_ctx.bsb.ready(in.qpred, now))
            return stallClassFor(_ctx.bsb, in.qpred);
        const bool qp = _ctx.bfile.readPred(in.qpred);
        if (qp || in.isBranch()) {
            if (in.src1.valid() && !_ctx.bsb.ready(in.src1, now))
                return stallClassFor(_ctx.bsb, in.src1);
            if (in.src2.valid() && !in.src2IsImm &&
                !_ctx.bsb.ready(in.src2, now)) {
                return stallClassFor(_ctx.bsb, in.src2);
            }
        }
        if (e.isLoad && qp)
            ++deferred_loads;
    }
    if (deferred_loads > 0 && _ctx.hier.outstandingLoads(now) > 0 &&
        _ctx.hier.outstandingLoads(now) + deferred_loads >
            _ctx.cfg.mem.maxOutstandingLoads) {
        // Stalling only helps while an outstanding load could retire
        // and free an MSHR; a group carrying more loads than the
        // machine has MSHRs must still issue eventually.
        return CycleClass::kResourceStall;
    }
    return CycleClass::kUnstalled;
}

CycleClass
BPipe::step(Cycle now, RunResult &res)
{
    if (_ctx.cq.empty()) {
        // Distinguish "the A-pipe has work but has not delivered it"
        // (the paper's A-pipe stall: A must stay a cycle ahead) from
        // a genuinely starved front end.
        if (_ctx.fe.headReady(now))
            return CycleClass::kApipeStall;
        return CycleClass::kFrontEndStall;
    }
    ff_panic_if(_ctx.cq.at(0).enqueuedAt >= now,
                "B-pipe observed a same-cycle A-pipe dispatch");

    RetireWindow w = headGroupWindow(_ctx.cq);
    const CycleClass cls = prescanWindow(w, now);
    if (cls != CycleClass::kUnstalled)
        return cls;

    if (_ctx.cfg.regroup) {
        // Fuse follow-on groups whose every entry could retire right
        // now: pre-execution made their leading stop bits
        // superfluous.
        auto entry_ready = [&](const CqEntry &e) {
            if (e.status == CqStatus::kPreExecuted)
                return e.readyAt <= now;
            const isa::Instruction &in = _ctx.prog.inst(e.idx);
            if (!_ctx.bsb.ready(in.qpred, now))
                return false;
            const bool qp = _ctx.bfile.readPred(in.qpred);
            if (qp || in.isBranch()) {
                if (in.src1.valid() && !_ctx.bsb.ready(in.src1, now))
                    return false;
                if (in.src2.valid() && !in.src2IsImm &&
                    !_ctx.bsb.ready(in.src2, now)) {
                    return false;
                }
            }
            if (e.isLoad && qp && !_ctx.hier.loadSlotAvailable(now))
                return false;
            return true;
        };
        w = extendRetireWindow(_ctx.cq, _ctx.prog, _ctx.cfg.limits,
                               now, w, entry_ready);
    }

    // Merge-time ALAT checks (Sec. 3.4). Only reached when the whole
    // window is otherwise ready; a missing entry is a store conflict.
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = _ctx.cq.at(k);
        if (e.status == CqStatus::kPreExecuted && e.isLoad &&
            e.predTrue && !_ctx.alat.check(e.id)) {
            ++_ctx.stats.storeConflictFlushes;
            ff_trace(trace::kFlush, now, "CONFLICT",
                     "load id " << e.id << " @" << e.idx
                                << " lost its ALAT entry");
            conflictFlush(e, now);
            return CycleClass::kFrontEndStall;
        }
    }

    applyWindow(w, now, res);
    return CycleClass::kUnstalled;
}

void
BPipe::applyWindow(const RetireWindow &w, Cycle now, RunResult &res)
{
    _ctx.stats.regroupedGroups += w.groups - 1;
    const InstIdx leader = _ctx.cq.at(0).idx;

    std::size_t applied = 0;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = _ctx.cq.at(k);
        const Instruction &in = _ctx.prog.inst(e.idx);
        ++res.instsRetired;
        ++applied;
        if (e.groupEnd)
            ++res.groupsRetired;

        if (in.isHalt()) {
            res.halted = true;
            break;
        }

        if (e.status == CqStatus::kPreExecuted) {
            // ---- merge (MRG stage) ----------------------------------
            if (e.predTrue && !e.isBranch) {
                if (e.isStore)
                    _ctx.sbuf.commitOldest(e.id, _ctx.mem);
                if (e.isLoad)
                    _ctx.alat.remove(e.id);
                if (e.writesDst)
                    _ctx.bfile.write(in.dst, e.dstVal);
                if (e.writesDst2)
                    _ctx.bfile.write(in.dst2, e.dst2Val);
            }
            // Mark the A-file copy of these values architectural.
            std::array<isa::RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                _ctx.afile.commitMatch(dsts[d], e.id);
            continue;
        }

        // ---- first execution of a deferred instruction --------------
        const bool qp = _ctx.bfile.readPred(in.qpred);
        const RegVal s1 =
            in.src1.valid() ? _ctx.bfile.read(in.src1) : 0;
        const RegVal s2 = operandSrc2(
            in, in.src2.valid() ? _ctx.bfile.read(in.src2) : 0);
        EvalResult ev = evaluate(in, qp, s1, s2);

        if (ev.isBranch) {
            ++_ctx.stats.branchesResolvedInB;
            _ctx.pred.update(e.prediction, ev.taken);
            if (ev.taken != e.predictedTaken) {
                ++_ctx.stats.bDetMispredicts;
                // Retire everything up to and including the branch,
                // then flush the wrong path (Sec. 3.6).
                bDetFlush(e, ev.taken, now);
                for (std::size_t p = 0; p < applied; ++p)
                    _ctx.cq.pop();
                _ctx.cq.clear(); // everything remaining is younger
                if (_ctx.shared.observer != nullptr) {
                    _ctx.shared.observer->onGroupRetire(
                        now, leader, static_cast<unsigned>(applied));
                }
                return;
            }
            _feedback.schedule(in, e.id, now);
            continue;
        }

        if (ev.predTrue) {
            if (ev.isMemAccess) {
                if (in.isLoad()) {
                    ++_ctx.stats.loadsInB;
                    const memory::AccessResult ar = _ctx.hier.access(
                        memory::AccessKind::kLoad,
                        memory::Initiator::kBpipe, ev.addr, now);
                    ev.dstVal = loadExtend(
                        in.op, _ctx.mem.read(ev.addr, ev.size));
                    _ctx.bfile.write(in.dst, ev.dstVal);
                    _ctx.bsb.setPending(in.dst, now + ar.latency,
                                        PendingKind::kLoad);
                    ff_trace(trace::kBpipe, now, "B-LOAD",
                             "@" << e.idx << " id " << e.id << " "
                                 << memory::memLevelName(ar.level));
                } else {
                    ++_ctx.stats.storesInB;
                    _ctx.mem.write(ev.addr, ev.storeVal, ev.size);
                    // Deferred stores kill matching ALAT entries: any
                    // younger pre-executed load that read this address
                    // will fail its merge-time check (Sec. 3.4).
                    _ctx.alat.invalidateOverlap(ev.addr, ev.size);
                    _ctx.hier.access(memory::AccessKind::kStore,
                                     memory::Initiator::kBpipe,
                                     ev.addr, now);
                }
            } else {
                const unsigned lat = in.execLatency();
                if (ev.writesDst) {
                    _ctx.bfile.write(in.dst, ev.dstVal);
                    if (lat > 1) {
                        _ctx.bsb.setPending(in.dst, now + lat,
                                            PendingKind::kNonLoad);
                    }
                }
                if (ev.writesDst2) {
                    _ctx.bfile.write(in.dst2, ev.dst2Val);
                    if (lat > 1) {
                        _ctx.bsb.setPending(in.dst2, now + lat,
                                            PendingKind::kNonLoad);
                    }
                }
            }
        }
        _feedback.schedule(in, e.id, now);
    }

    for (std::size_t p = 0; p < applied; ++p)
        _ctx.cq.pop();
    // Retirement progress: the conflicted window is past; lift the
    // non-speculative fallback.
    _ctx.shared.conflictRetry.clear();
    if (_ctx.shared.observer != nullptr) {
        _ctx.shared.observer->onGroupRetire(
            now, leader, static_cast<unsigned>(applied));
    }
}

// --------------------------------------------------------------------
// Flush routines (Secs. 3.4, 3.6).
// --------------------------------------------------------------------

void
BPipe::bDetFlush(const CqEntry &branch, bool taken, Cycle now)
{
    const Instruction &in = _ctx.prog.inst(branch.idx);
    const InstIdx target =
        taken ? static_cast<InstIdx>(in.imm) : branch.fallthrough;

    _ctx.sbuf.squashYoungerThan(branch.id);
    _ctx.alat.squashYoungerThan(branch.id);
    _feedback.squashYoungerThan(branch.id);

    _ctx.stats.registersRepaired +=
        _ctx.afile.repairFromArch(_ctx.bfile);
    _ctx.fe.redirect(target, now + 1 + _ctx.cfg.branchResolveDelay +
                                 _ctx.cfg.bFlushRepairPenalty);
    _ctx.shared.aHalted = false;
    if (_ctx.shared.observer != nullptr)
        _ctx.shared.observer->onFlush(now, FlushKind::kBDet, target);
    ff_trace(trace::kFlush, now, "B-DET",
             "mispredict id " << branch.id << " -> @" << target);
}

void
BPipe::conflictFlush(const CqEntry &offender, Cycle now)
{
    // Forward progress: the offending load executes in the B-pipe on
    // its retries instead of speculating again.
    _ctx.shared.conflictRetry.insert(offender.idx);
    // Nothing from the head window has been applied; restart the
    // whole speculative machine at the head group's leader. (The
    // paper resumes at the offending load; restarting at its group
    // boundary is slightly coarser and strictly safe.)
    const InstIdx leader = _ctx.prog.groupStart(_ctx.cq.at(0).idx);
    _ctx.cq.clear();
    _ctx.sbuf.clear();
    _ctx.alat.clear();
    _feedback.clear();
    _ctx.stats.registersRepaired +=
        _ctx.afile.repairFromArch(_ctx.bfile);
    _ctx.fe.redirect(leader, now + 1 + _ctx.cfg.branchResolveDelay +
                                 _ctx.cfg.bFlushRepairPenalty);
    _ctx.shared.aHalted = false;
    if (_ctx.shared.observer != nullptr) {
        _ctx.shared.observer->onFlush(now, FlushKind::kConflict,
                                      leader);
    }
}

} // namespace cpu
} // namespace ff
