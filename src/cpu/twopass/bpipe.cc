#include "cpu/twopass/bpipe.hh"

#include "common/trace.hh"
#include "cpu/exec.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

using isa::Instruction;

CycleClass
BPipe::prescanWindow(const RetireWindow &w, Cycle now) const
{
    const CouplingQueue &cq = _ctx.ms.cq;
    unsigned deferred_loads = 0;
    for (std::size_t k = 0; k < w.entries; ++k) {
        if (cq.preExecuted(k)) {
            if (cq.readyAt(k) > now) {
                // A "dangling dependence": the result was started in
                // the A-pipe but has not arrived (Sec. 3.1).
                return cq.isLoad(k) ? CycleClass::kLoadStall
                                    : CycleClass::kNonLoadDepStall;
            }
            continue;
        }
        // Deferred: operand readiness against B-pipe producers. The
        // nullification shortcut uses the current predicate value;
        // in-window pre-executed producers may still flip it at apply
        // time, a deliberate (conservatively safe) simplification.
        const Instruction &in = _ctx.prog.inst(cq.idx(k));
        if (!_ctx.ms.sb.ready(in.qpred, now))
            return stallClassFor(_ctx.ms.sb, in.qpred);
        const bool qp = _ctx.ms.regs.readPred(in.qpred);
        if (qp || in.isBranch()) {
            if (in.src1.valid() && !_ctx.ms.sb.ready(in.src1, now))
                return stallClassFor(_ctx.ms.sb, in.src1);
            if (in.src2.valid() && !in.src2IsImm &&
                !_ctx.ms.sb.ready(in.src2, now)) {
                return stallClassFor(_ctx.ms.sb, in.src2);
            }
        }
        if (cq.isLoad(k) && qp)
            ++deferred_loads;
    }
    if (deferred_loads > 0 && _ctx.hier.outstandingLoads(now) > 0 &&
        _ctx.hier.outstandingLoads(now) + deferred_loads >
            _ctx.cfg.mem.maxOutstandingLoads) {
        // Stalling only helps while an outstanding load could retire
        // and free an MSHR; a group carrying more loads than the
        // machine has MSHRs must still issue eventually.
        return CycleClass::kResourceStall;
    }
    return CycleClass::kUnstalled;
}

CycleClass
BPipe::step(Cycle now, RunResult &res)
{
    CouplingQueue &cq = _ctx.ms.cq;
    if (cq.empty()) {
        // Distinguish "the A-pipe has work but has not delivered it"
        // (the paper's A-pipe stall: A must stay a cycle ahead) from
        // a genuinely starved front end.
        if (_ctx.fe.headReady(now))
            return CycleClass::kApipeStall;
        return CycleClass::kFrontEndStall;
    }
    ff_panic_if(cq.enqueuedAt(0) >= now,
                "B-pipe observed a same-cycle A-pipe dispatch");

    RetireWindow w = headGroupWindow(cq);
    const CycleClass cls = prescanWindow(w, now);
    if (cls != CycleClass::kUnstalled)
        return cls;

    if (_ctx.cfg.regroup) {
        // Fuse follow-on groups whose every entry could retire right
        // now: pre-execution made their leading stop bits
        // superfluous.
        auto entry_ready = [&](std::size_t k) {
            if (cq.preExecuted(k))
                return cq.readyAt(k) <= now;
            const isa::Instruction &in = _ctx.prog.inst(cq.idx(k));
            if (!_ctx.ms.sb.ready(in.qpred, now))
                return false;
            const bool qp = _ctx.ms.regs.readPred(in.qpred);
            if (qp || in.isBranch()) {
                if (in.src1.valid() && !_ctx.ms.sb.ready(in.src1, now))
                    return false;
                if (in.src2.valid() && !in.src2IsImm &&
                    !_ctx.ms.sb.ready(in.src2, now)) {
                    return false;
                }
            }
            if (cq.isLoad(k) && qp && !_ctx.hier.loadSlotAvailable(now))
                return false;
            return true;
        };
        w = extendRetireWindow(cq, _ctx.prog, _ctx.cfg.limits, now, w,
                               entry_ready);
    }

    // Merge-time ALAT checks (Sec. 3.4). Only reached when the whole
    // window is otherwise ready; a missing entry is a store conflict.
    for (std::size_t k = 0; k < w.entries; ++k) {
        if (cq.preExecuted(k) && cq.isLoad(k) && cq.predTrue(k) &&
            !_ctx.alat.check(cq.id(k))) {
            ++_ctx.stats.storeConflictFlushes;
            ff_trace(trace::kFlush, now, "CONFLICT",
                     "load id " << cq.id(k) << " @" << cq.idx(k)
                                << " lost its ALAT entry");
            conflictFlush(cq.entry(k), now);
            return CycleClass::kFrontEndStall;
        }
    }

    applyWindow(w, now, res);
    return CycleClass::kUnstalled;
}

void
BPipe::applyWindow(const RetireWindow &w, Cycle now, RunResult &res)
{
    CouplingQueue &cq = _ctx.ms.cq;
    _ctx.stats.regroupedGroups += w.groups - 1;
    const InstIdx leader = cq.idx(0);

    std::size_t applied = 0;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const Instruction &in = _ctx.prog.inst(cq.idx(k));
        const DynId id = cq.id(k);
        ++res.instsRetired;
        ++applied;
        if (cq.groupEnd(k))
            ++res.groupsRetired;

        if (in.isHalt()) {
            res.halted = true;
            break;
        }

        if (cq.preExecuted(k)) {
            // ---- merge (MRG stage) ----------------------------------
            if (cq.predTrue(k) && !cq.isBranch(k)) {
                if (cq.isStore(k))
                    _ctx.sbuf.commitOldest(id, _ctx.mem);
                if (cq.isLoad(k))
                    _ctx.alat.remove(id);
                if (cq.writesDst(k))
                    _ctx.ms.regs.write(in.dst, cq.dstVal(k));
                if (cq.writesDst2(k))
                    _ctx.ms.regs.write(in.dst2, cq.dst2Val(k));
            }
            // Mark the A-file copy of these values architectural.
            std::array<isa::RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                _ctx.ms.afile.commitMatch(dsts[d], id);
            continue;
        }

        // ---- first execution of a deferred instruction --------------
        if (_ctx.ms.observer != nullptr)
            _ctx.ms.observer->onReplay(now, cq.idx(k), id);
        const bool qp = _ctx.ms.regs.readPred(in.qpred);
        const RegVal s1 =
            in.src1.valid() ? _ctx.ms.regs.read(in.src1) : 0;
        const RegVal s2 = operandSrc2(
            in, in.src2.valid() ? _ctx.ms.regs.read(in.src2) : 0);
        EvalResult ev = evaluate(in, qp, s1, s2);

        if (ev.isBranch) {
            ++_ctx.stats.branchesResolvedInB;
            _ctx.pred.update(cq.prediction(k), ev.taken);
            if (ev.taken != cq.predictedTaken(k)) {
                ++_ctx.stats.bDetMispredicts;
                // Retire everything up to and including the branch,
                // then flush the wrong path (Sec. 3.6).
                bDetFlush(cq.entry(k), ev.taken, now);
                for (std::size_t p = 0; p < applied; ++p)
                    cq.pop();
                cq.clear(); // everything remaining is younger
                if (_ctx.ms.observer != nullptr) {
                    _ctx.ms.observer->onGroupRetire(
                        now, leader, static_cast<unsigned>(applied));
                }
                return;
            }
            _feedback.schedule(in, id, now);
            continue;
        }

        if (ev.predTrue) {
            if (ev.isMemAccess) {
                if (in.isLoad()) {
                    ++_ctx.stats.loadsInB;
                    const memory::AccessResult ar = _ctx.hier.access(
                        memory::AccessKind::kLoad,
                        memory::Initiator::kBpipe, ev.addr, now);
                    ev.dstVal = loadExtend(
                        in.op, _ctx.mem.read(ev.addr, ev.size));
                    _ctx.ms.regs.write(in.dst, ev.dstVal);
                    _ctx.ms.sb.setPending(in.dst, now + ar.latency,
                                          PendingKind::kLoad);
                    ff_trace(trace::kBpipe, now, "B-LOAD",
                             "@" << cq.idx(k) << " id " << id << " "
                                 << memory::memLevelName(ar.level));
                } else {
                    ++_ctx.stats.storesInB;
                    _ctx.mem.write(ev.addr, ev.storeVal, ev.size);
                    // Deferred stores kill matching ALAT entries: any
                    // younger pre-executed load that read this address
                    // will fail its merge-time check (Sec. 3.4).
                    _ctx.alat.invalidateOverlap(ev.addr, ev.size);
                    _ctx.hier.access(memory::AccessKind::kStore,
                                     memory::Initiator::kBpipe,
                                     ev.addr, now);
                }
            } else {
                const unsigned lat = in.execLatency();
                if (ev.writesDst) {
                    _ctx.ms.regs.write(in.dst, ev.dstVal);
                    if (lat > 1) {
                        _ctx.ms.sb.setPending(in.dst, now + lat,
                                              PendingKind::kNonLoad);
                    }
                }
                if (ev.writesDst2) {
                    _ctx.ms.regs.write(in.dst2, ev.dst2Val);
                    if (lat > 1) {
                        _ctx.ms.sb.setPending(in.dst2, now + lat,
                                              PendingKind::kNonLoad);
                    }
                }
            }
        }
        _feedback.schedule(in, id, now);
    }

    for (std::size_t p = 0; p < applied; ++p)
        cq.pop();
    // Retirement progress: the conflicted window is past; lift the
    // non-speculative fallback.
    _ctx.ms.conflictRetryClear();
    if (_ctx.ms.observer != nullptr) {
        _ctx.ms.observer->onGroupRetire(
            now, leader, static_cast<unsigned>(applied));
    }
}

// --------------------------------------------------------------------
// Flush routines (Secs. 3.4, 3.6).
// --------------------------------------------------------------------

void
BPipe::bDetFlush(const CqEntry &branch, bool taken, Cycle now)
{
    const Instruction &in = _ctx.prog.inst(branch.idx);
    const InstIdx target =
        taken ? static_cast<InstIdx>(in.imm) : branch.fallthrough;

    _ctx.sbuf.squashYoungerThan(branch.id);
    _ctx.alat.squashYoungerThan(branch.id);
    _feedback.squashYoungerThan(branch.id);

    _ctx.stats.registersRepaired +=
        _ctx.ms.afile.repairFromArch(_ctx.ms.regs);
    _ctx.fe.redirect(target, now + 1 + _ctx.cfg.branchResolveDelay +
                                 _ctx.cfg.bFlushRepairPenalty);
    _ctx.ms.aHalted = false;
    if (_ctx.ms.observer != nullptr)
        _ctx.ms.observer->onFlush(now, FlushKind::kBDet, target);
    ff_trace(trace::kFlush, now, "B-DET",
             "mispredict id " << branch.id << " -> @" << target);
}

void
BPipe::conflictFlush(const CqEntry &offender, Cycle now)
{
    // Forward progress: the offending load executes in the B-pipe on
    // its retries instead of speculating again.
    _ctx.ms.conflictRetryInsert(offender.idx);
    // Nothing from the head window has been applied; restart the
    // whole speculative machine at the head group's leader. (The
    // paper resumes at the offending load; restarting at its group
    // boundary is slightly coarser and strictly safe.)
    const InstIdx leader = _ctx.prog.groupStart(_ctx.ms.cq.idx(0));
    _ctx.ms.cq.clear();
    _ctx.sbuf.clear();
    _ctx.alat.clear();
    _feedback.clear();
    _ctx.stats.registersRepaired +=
        _ctx.ms.afile.repairFromArch(_ctx.ms.regs);
    _ctx.fe.redirect(leader, now + 1 + _ctx.cfg.branchResolveDelay +
                                 _ctx.cfg.bFlushRepairPenalty);
    _ctx.ms.aHalted = false;
    if (_ctx.ms.observer != nullptr) {
        _ctx.ms.observer->onFlush(now, FlushKind::kConflict, leader);
    }
}

} // namespace cpu
} // namespace ff
