#include "cpu/twopass/feedback.hh"

#include "common/trace.hh"

namespace ff
{
namespace cpu
{

void
FeedbackPath::schedule(const isa::Instruction &in, DynId id, Cycle now)
{
    if (!_cfg.feedbackEnabled)
        return;
    std::array<isa::RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    for (unsigned d = 0; d < nd; ++d) {
        _q.push_back({dsts[d], _ms.regs.read(dsts[d]), id,
                      now + _cfg.feedbackLatency});
    }
}

void
FeedbackPath::apply(Cycle now)
{
    while (!_q.empty() && _q.front().applyAt <= now) {
        const Pending f = _q.front();
        _q.pop_front();
        if (_ms.afile.applyFeedback(f.reg, f.value, f.id)) {
            ++_stats.feedbackApplied;
            if (_ms.observer != nullptr) {
                _ms.observer->onFeedbackApply(
                    now, f.id,
                    static_cast<unsigned>(regSlot(f.reg)));
            }
            ff_trace(trace::kFeedback, now, "FEEDBK",
                     isa::regName(f.reg) << " <- " << f.value << " (id "
                                         << f.id << ")");
        } else {
            ++_stats.feedbackDropped;
        }
    }
}

void
FeedbackPath::squashYoungerThan(DynId boundary)
{
    while (!_q.empty() && _q.back().id > boundary)
        _q.pop_back();
}

} // namespace cpu
} // namespace ff
