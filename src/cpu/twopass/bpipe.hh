/**
 * @file
 * The backup (architectural) pipeline of Sections 3.1–3.6: per
 * cycle it prescans the retire window at the coupling-queue head for
 * blockers (dangling A-pipe results, unready deferred operands, MSHR
 * pressure), optionally fuses follow-on groups (2Pre regrouping),
 * runs merge-time ALAT checks, and applies the window — merging
 * pre-executed results into the B-file, executing deferred
 * instructions for the first time, resolving deferred branches
 * (B-DET), and scheduling feedback. Also owns both flush recoveries:
 * the B-DET misprediction flush and the store-conflict flush.
 */

#ifndef FF_CPU_TWOPASS_BPIPE_HH
#define FF_CPU_TWOPASS_BPIPE_HH

#include "cpu/cpu.hh"
#include "cpu/twopass/feedback.hh"
#include "cpu/twopass/pipe_context.hh"
#include "cpu/twopass/regrouper.hh"

namespace ff
{
namespace cpu
{

/** The B-pipe merge/retire stage unit. */
class BPipe
{
  public:
    BPipe(const PipeContext &ctx, FeedbackPath &feedback)
        : _ctx(ctx), _feedback(feedback)
    {
    }

    /**
     * One retire attempt at @p now.
     * @return the cycle's classification; retires the head window
     *         (and possibly flushes) when progress was made
     */
    CycleClass step(Cycle now, RunResult &res);

    /**
     * Scans the retire window for the first blocker.
     * @return kUnstalled when the whole window may retire
     */
    CycleClass prescanWindow(const RetireWindow &w, Cycle now) const;

    // Exposed for direct unit testing against hand-built fixtures.

    /** B-DET misprediction flush (Sec. 3.6). */
    void bDetFlush(const CqEntry &branch, bool taken, Cycle now);
    /** Store-conflict flush (Sec. 3.4). */
    void conflictFlush(const CqEntry &offender, Cycle now);

  private:
    void applyWindow(const RetireWindow &w, Cycle now, RunResult &res);

    PipeContext _ctx;
    FeedbackPath &_feedback;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_BPIPE_HH
