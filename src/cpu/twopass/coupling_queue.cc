// The coupling queue is header-only; this translation unit exists so
// the build system owns a home for future out-of-line growth and to
// anchor the header's compilation.
#include "cpu/twopass/coupling_queue.hh"
