/**
 * @file
 * The coupling queue (CQ) and coupling result store (CRS) of
 * Section 3.1. Every instruction flows, in order, from the A-pipe's
 * dispatch into this FIFO on its way to the B-pipe. Pre-executed
 * entries carry their results (the CRS payload, folded into the
 * entry); deferred entries carry only identity and will execute for
 * the first time in the B-pipe.
 */

#ifndef FF_CPU_TWOPASS_COUPLING_QUEUE_HH
#define FF_CPU_TWOPASS_COUPLING_QUEUE_HH

#include "branch/gshare.hh"
#include "common/fifo.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "cpu/model_stats.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** Disposition of an instruction as it left the A-pipe. */
enum class CqStatus : std::uint8_t
{
    kPreExecuted, ///< completed in A (result, possibly in-flight, in CRS)
    kDeferred,    ///< suppressed in A; executes in B
};

// DeferReason lives in cpu/model_stats.hh so the core layer's
// observer seam can name it without depending on two-pass headers.

/** One CQ entry with its CRS payload. */
struct CqEntry
{
    InstIdx idx = 0;       ///< static instruction index
    DynId id = 0;          ///< dynamic id
    Cycle enqueuedAt = 0;  ///< A-pipe dispatch cycle
    CqStatus status = CqStatus::kDeferred;
    DeferReason reason = DeferReason::kNone;
    bool groupEnd = false; ///< carries the (original) stop bit

    // ---- CRS payload (meaningful when pre-executed) -----------------
    bool predTrue = false;
    bool writesDst = false;
    bool writesDst2 = false;
    RegVal dstVal = 0;
    RegVal dst2Val = 0;
    Cycle readyAt = 0;     ///< when the result is usable ("dangling"
                           ///< dependences scoreboard on this)

    // ---- memory bookkeeping ----------------------------------------
    bool isLoad = false;
    bool isStore = false;
    Addr addr = 0;
    unsigned size = 0;

    // ---- branch bookkeeping -----------------------------------------
    bool isBranch = false;
    bool branchResolvedInA = false;
    bool actualTaken = false;     ///< valid when resolved in A
    bool predictedTaken = false;
    InstIdx fallthrough = 0;      ///< next leader when not taken
    branch::Prediction prediction{};
};

/** The bounded, flushable instruction FIFO between the pipes. */
class CouplingQueue
{
  public:
    explicit CouplingQueue(std::size_t capacity) : _fifo(capacity) {}

    bool empty() const { return _fifo.empty(); }
    bool full() const { return _fifo.full(); }
    std::size_t size() const { return _fifo.size(); }
    std::size_t freeSlots() const { return _fifo.freeSlots(); }
    std::size_t capacity() const { return _fifo.capacity(); }

    void
    push(const CqEntry &e)
    {
        _fifo.push(e);
        if (isDeferredStore(e))
            ++_deferredStores;
    }

    const CqEntry &at(std::size_t i) const { return _fifo.at(i); }

    void
    pop()
    {
        if (isDeferredStore(_fifo.at(0)))
            --_deferredStores;
        _fifo.pop();
    }

    void
    clear()
    {
        _fifo.clear();
        _deferredStores = 0;
    }

    /** Removes every entry with id greater than @p boundary. */
    void
    squashYoungerThan(DynId boundary)
    {
        while (!_fifo.empty() && _fifo.at(_fifo.size() - 1).id > boundary) {
            if (isDeferredStore(_fifo.at(_fifo.size() - 1)))
                --_deferredStores;
            _fifo.popBack();
        }
    }

    /**
     * Number of deferred stores currently queued (Sec. 4 stat). The
     * A-pipe asks this for every dispatched load, so it is maintained
     * incrementally rather than scanned; entries are immutable once
     * queued (there is deliberately no mutable at()), which keeps the
     * count exact.
     */
    unsigned deferredStores() const { return _deferredStores; }

    /**
     * Snapshot hooks: every entry (CRS payload included) in queue
     * order. The deferred-store count is rebuilt by re-pushing.
     */
    void
    save(serial::Writer &w) const
    {
        w.u64(_fifo.capacity());
        w.u64(_fifo.size());
        for (std::size_t i = 0; i < _fifo.size(); ++i) {
            const CqEntry &e = _fifo.at(i);
            w.u32(e.idx);
            w.u64(e.id);
            w.u64(e.enqueuedAt);
            w.u8(static_cast<std::uint8_t>(e.status));
            w.u8(static_cast<std::uint8_t>(e.reason));
            w.boolean(e.groupEnd);
            w.boolean(e.predTrue);
            w.boolean(e.writesDst);
            w.boolean(e.writesDst2);
            w.u64(e.dstVal);
            w.u64(e.dst2Val);
            w.u64(e.readyAt);
            w.boolean(e.isLoad);
            w.boolean(e.isStore);
            w.u64(e.addr);
            w.u32(e.size);
            w.boolean(e.isBranch);
            w.boolean(e.branchResolvedInA);
            w.boolean(e.actualTaken);
            w.boolean(e.predictedTaken);
            w.u32(e.fallthrough);
            branch::savePrediction(w, e.prediction);
        }
    }

    void
    restore(serial::Reader &r)
    {
        if (r.u64() != _fifo.capacity()) {
            r.fail();
            return;
        }
        clear();
        const std::size_t n = r.seq(60);
        if (n > _fifo.capacity()) {
            r.fail();
            return;
        }
        for (std::size_t i = 0; i < n; ++i) {
            CqEntry e;
            e.idx = r.u32();
            e.id = r.u64();
            e.enqueuedAt = r.u64();
            e.status = static_cast<CqStatus>(r.u8());
            e.reason = static_cast<DeferReason>(r.u8());
            e.groupEnd = r.boolean();
            e.predTrue = r.boolean();
            e.writesDst = r.boolean();
            e.writesDst2 = r.boolean();
            e.dstVal = r.u64();
            e.dst2Val = r.u64();
            e.readyAt = r.u64();
            e.isLoad = r.boolean();
            e.isStore = r.boolean();
            e.addr = r.u64();
            e.size = r.u32();
            e.isBranch = r.boolean();
            e.branchResolvedInA = r.boolean();
            e.actualTaken = r.boolean();
            e.predictedTaken = r.boolean();
            e.fallthrough = r.u32();
            branch::restorePrediction(r, e.prediction);
            if (!r.ok())
                return;
            push(e);
        }
    }

  private:
    static bool
    isDeferredStore(const CqEntry &e)
    {
        return e.status == CqStatus::kDeferred && e.isStore;
    }

    BoundedFifo<CqEntry> _fifo;
    unsigned _deferredStores = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_COUPLING_QUEUE_HH
