/**
 * @file
 * The coupling queue (CQ) and coupling result store (CRS) of
 * Section 3.1. Every instruction flows, in order, from the A-pipe's
 * dispatch into this FIFO on its way to the B-pipe. Pre-executed
 * entries carry their results (the CRS payload, folded into the
 * entry); deferred entries carry only identity and will execute for
 * the first time in the B-pipe.
 *
 * Storage is a structure-of-arrays ring: each logical field lives in
 * its own dense array indexed head+i, and the ten per-entry booleans
 * are packed into one flag word. The B-pipe's prescan and regrouping
 * loops read two or three fields per entry per cycle; with the old
 * array-of-structs deque every such read dragged a whole ~100-byte
 * entry through the cache. CqEntry remains as the staging record used
 * to enqueue and the by-value view returned by entry(); there is
 * deliberately no reference-returning accessor.
 */

#ifndef FF_CPU_TWOPASS_COUPLING_QUEUE_HH
#define FF_CPU_TWOPASS_COUPLING_QUEUE_HH

#include <vector>

#include "branch/gshare.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "cpu/model_stats.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** Disposition of an instruction as it left the A-pipe. */
enum class CqStatus : std::uint8_t
{
    kPreExecuted, ///< completed in A (result, possibly in-flight, in CRS)
    kDeferred,    ///< suppressed in A; executes in B
};

// DeferReason lives in cpu/model_stats.hh so the core layer's
// observer seam can name it without depending on two-pass headers.

/** One CQ entry with its CRS payload (staging/view record). */
struct CqEntry
{
    InstIdx idx = 0;       ///< static instruction index
    DynId id = 0;          ///< dynamic id
    Cycle enqueuedAt = 0;  ///< A-pipe dispatch cycle
    CqStatus status = CqStatus::kDeferred;
    DeferReason reason = DeferReason::kNone;
    bool groupEnd = false; ///< carries the (original) stop bit

    // ---- CRS payload (meaningful when pre-executed) -----------------
    bool predTrue = false;
    bool writesDst = false;
    bool writesDst2 = false;
    RegVal dstVal = 0;
    RegVal dst2Val = 0;
    Cycle readyAt = 0;     ///< when the result is usable ("dangling"
                           ///< dependences scoreboard on this)

    // ---- memory bookkeeping ----------------------------------------
    bool isLoad = false;
    bool isStore = false;
    Addr addr = 0;
    unsigned size = 0;

    // ---- branch bookkeeping -----------------------------------------
    bool isBranch = false;
    bool branchResolvedInA = false;
    bool actualTaken = false;     ///< valid when resolved in A
    bool predictedTaken = false;
    InstIdx fallthrough = 0;      ///< next leader when not taken
    branch::Prediction prediction{};
};

/** The bounded, flushable instruction FIFO between the pipes. */
class CouplingQueue
{
  public:
    explicit CouplingQueue(std::size_t capacity)
        : _idx(capacity), _id(capacity), _enq(capacity), _status(capacity),
          _reason(capacity), _flags(capacity), _dstVal(capacity),
          _dst2Val(capacity), _readyAt(capacity), _addr(capacity),
          _size(capacity), _fallthrough(capacity), _prediction(capacity),
          _cap(capacity)
    {
    }

    bool empty() const { return _count == 0; }
    bool full() const { return _count == _cap; }
    std::size_t size() const { return _count; }
    std::size_t freeSlots() const { return _cap - _count; }
    std::size_t capacity() const { return _cap; }

    void
    push(const CqEntry &e)
    {
        ff_panic_if(full(), "push to full fifo");
        const std::size_t p = phys(_count++);
        _idx[p] = e.idx;
        _id[p] = e.id;
        _enq[p] = e.enqueuedAt;
        _status[p] = static_cast<std::uint8_t>(e.status);
        _reason[p] = static_cast<std::uint8_t>(e.reason);
        _flags[p] = packFlags(e);
        _dstVal[p] = e.dstVal;
        _dst2Val[p] = e.dst2Val;
        _readyAt[p] = e.readyAt;
        _addr[p] = e.addr;
        _size[p] = e.size;
        _fallthrough[p] = e.fallthrough;
        _prediction[p] = e.prediction;
        if (e.status == CqStatus::kDeferred && e.isStore)
            ++_deferredStores;
    }

    // ---- single-field hot accessors (logical index from the head) ---
    InstIdx idx(std::size_t i) const { return _idx[phys(i)]; }
    DynId id(std::size_t i) const { return _id[phys(i)]; }
    Cycle enqueuedAt(std::size_t i) const { return _enq[phys(i)]; }
    CqStatus
    status(std::size_t i) const
    {
        return static_cast<CqStatus>(_status[phys(i)]);
    }
    bool
    preExecuted(std::size_t i) const
    {
        return status(i) == CqStatus::kPreExecuted;
    }
    bool
    deferred(std::size_t i) const
    {
        return status(i) == CqStatus::kDeferred;
    }
    DeferReason
    reason(std::size_t i) const
    {
        return static_cast<DeferReason>(_reason[phys(i)]);
    }
    bool groupEnd(std::size_t i) const { return flag(i, kGroupEnd); }
    bool predTrue(std::size_t i) const { return flag(i, kPredTrue); }
    bool writesDst(std::size_t i) const { return flag(i, kWritesDst); }
    bool writesDst2(std::size_t i) const { return flag(i, kWritesDst2); }
    bool isLoad(std::size_t i) const { return flag(i, kIsLoad); }
    bool isStore(std::size_t i) const { return flag(i, kIsStore); }
    bool isBranch(std::size_t i) const { return flag(i, kIsBranch); }
    bool
    branchResolvedInA(std::size_t i) const
    {
        return flag(i, kBranchResolvedInA);
    }
    bool actualTaken(std::size_t i) const { return flag(i, kActualTaken); }
    bool
    predictedTaken(std::size_t i) const
    {
        return flag(i, kPredictedTaken);
    }
    RegVal dstVal(std::size_t i) const { return _dstVal[phys(i)]; }
    RegVal dst2Val(std::size_t i) const { return _dst2Val[phys(i)]; }
    Cycle readyAt(std::size_t i) const { return _readyAt[phys(i)]; }
    Addr addr(std::size_t i) const { return _addr[phys(i)]; }
    unsigned accessSize(std::size_t i) const { return _size[phys(i)]; }
    InstIdx fallthrough(std::size_t i) const { return _fallthrough[phys(i)]; }
    const branch::Prediction &
    prediction(std::size_t i) const
    {
        return _prediction[phys(i)];
    }

    /** Gathers logical entry @p i back into a CqEntry, by value. */
    CqEntry
    entry(std::size_t i) const
    {
        ff_panic_if(i >= _count, "fifo index out of range");
        const std::size_t p = phys(i);
        CqEntry e;
        e.idx = _idx[p];
        e.id = _id[p];
        e.enqueuedAt = _enq[p];
        e.status = static_cast<CqStatus>(_status[p]);
        e.reason = static_cast<DeferReason>(_reason[p]);
        const std::uint16_t f = _flags[p];
        e.groupEnd = (f & kGroupEnd) != 0;
        e.predTrue = (f & kPredTrue) != 0;
        e.writesDst = (f & kWritesDst) != 0;
        e.writesDst2 = (f & kWritesDst2) != 0;
        e.isLoad = (f & kIsLoad) != 0;
        e.isStore = (f & kIsStore) != 0;
        e.isBranch = (f & kIsBranch) != 0;
        e.branchResolvedInA = (f & kBranchResolvedInA) != 0;
        e.actualTaken = (f & kActualTaken) != 0;
        e.predictedTaken = (f & kPredictedTaken) != 0;
        e.dstVal = _dstVal[p];
        e.dst2Val = _dst2Val[p];
        e.readyAt = _readyAt[p];
        e.addr = _addr[p];
        e.size = _size[p];
        e.fallthrough = _fallthrough[p];
        e.prediction = _prediction[p];
        return e;
    }

    void
    pop()
    {
        ff_panic_if(empty(), "pop of empty fifo");
        if (deferred(0) && isStore(0))
            --_deferredStores;
        _head = _head + 1 == _cap ? 0 : _head + 1;
        --_count;
    }

    void
    clear()
    {
        _head = 0;
        _count = 0;
        _deferredStores = 0;
    }

    /** Removes every entry with id greater than @p boundary. */
    void
    squashYoungerThan(DynId boundary)
    {
        while (_count != 0 && id(_count - 1) > boundary) {
            if (deferred(_count - 1) && isStore(_count - 1))
                --_deferredStores;
            --_count;
        }
    }

    /**
     * Number of deferred stores currently queued (Sec. 4 stat). The
     * A-pipe asks this for every dispatched load, so it is maintained
     * incrementally rather than scanned; entries are immutable once
     * queued (there is deliberately no mutable accessor), which keeps
     * the count exact.
     */
    unsigned deferredStores() const { return _deferredStores; }

    /**
     * Snapshot hooks: every entry (CRS payload included) in queue
     * order. The deferred-store count is rebuilt by re-pushing.
     */
    void
    save(serial::Writer &w) const
    {
        w.u64(_cap);
        w.u64(_count);
        for (std::size_t i = 0; i < _count; ++i) {
            const CqEntry e = entry(i);
            w.u32(e.idx);
            w.u64(e.id);
            w.u64(e.enqueuedAt);
            w.u8(static_cast<std::uint8_t>(e.status));
            w.u8(static_cast<std::uint8_t>(e.reason));
            w.boolean(e.groupEnd);
            w.boolean(e.predTrue);
            w.boolean(e.writesDst);
            w.boolean(e.writesDst2);
            w.u64(e.dstVal);
            w.u64(e.dst2Val);
            w.u64(e.readyAt);
            w.boolean(e.isLoad);
            w.boolean(e.isStore);
            w.u64(e.addr);
            w.u32(e.size);
            w.boolean(e.isBranch);
            w.boolean(e.branchResolvedInA);
            w.boolean(e.actualTaken);
            w.boolean(e.predictedTaken);
            w.u32(e.fallthrough);
            branch::savePrediction(w, e.prediction);
        }
    }

    void
    restore(serial::Reader &r)
    {
        if (r.u64() != _cap) {
            r.fail();
            return;
        }
        clear();
        const std::size_t n = r.seq(60);
        if (n > _cap) {
            r.fail();
            return;
        }
        for (std::size_t i = 0; i < n; ++i) {
            CqEntry e;
            e.idx = r.u32();
            e.id = r.u64();
            e.enqueuedAt = r.u64();
            e.status = static_cast<CqStatus>(r.u8());
            e.reason = static_cast<DeferReason>(r.u8());
            e.groupEnd = r.boolean();
            e.predTrue = r.boolean();
            e.writesDst = r.boolean();
            e.writesDst2 = r.boolean();
            e.dstVal = r.u64();
            e.dst2Val = r.u64();
            e.readyAt = r.u64();
            e.isLoad = r.boolean();
            e.isStore = r.boolean();
            e.addr = r.u64();
            e.size = r.u32();
            e.isBranch = r.boolean();
            e.branchResolvedInA = r.boolean();
            e.actualTaken = r.boolean();
            e.predictedTaken = r.boolean();
            e.fallthrough = r.u32();
            branch::restorePrediction(r, e.prediction);
            if (!r.ok())
                return;
            push(e);
        }
    }

  private:
    enum : std::uint16_t
    {
        kGroupEnd = 1u << 0,
        kPredTrue = 1u << 1,
        kWritesDst = 1u << 2,
        kWritesDst2 = 1u << 3,
        kIsLoad = 1u << 4,
        kIsStore = 1u << 5,
        kIsBranch = 1u << 6,
        kBranchResolvedInA = 1u << 7,
        kActualTaken = 1u << 8,
        kPredictedTaken = 1u << 9,
    };

    static std::uint16_t
    packFlags(const CqEntry &e)
    {
        std::uint16_t f = 0;
        f |= e.groupEnd ? kGroupEnd : 0;
        f |= e.predTrue ? kPredTrue : 0;
        f |= e.writesDst ? kWritesDst : 0;
        f |= e.writesDst2 ? kWritesDst2 : 0;
        f |= e.isLoad ? kIsLoad : 0;
        f |= e.isStore ? kIsStore : 0;
        f |= e.isBranch ? kIsBranch : 0;
        f |= e.branchResolvedInA ? kBranchResolvedInA : 0;
        f |= e.actualTaken ? kActualTaken : 0;
        f |= e.predictedTaken ? kPredictedTaken : 0;
        return f;
    }

    /** Physical array index of logical entry @p i. */
    std::size_t
    phys(std::size_t i) const
    {
        const std::size_t p = _head + i;
        return p >= _cap ? p - _cap : p;
    }

    bool flag(std::size_t i, std::uint16_t bit) const
    {
        return (_flags[phys(i)] & bit) != 0;
    }

    // One dense array per logical field, ring-indexed by _head/_count.
    std::vector<InstIdx> _idx;
    std::vector<DynId> _id;
    std::vector<Cycle> _enq;
    std::vector<std::uint8_t> _status;
    std::vector<std::uint8_t> _reason;
    std::vector<std::uint16_t> _flags;
    std::vector<RegVal> _dstVal;
    std::vector<RegVal> _dst2Val;
    std::vector<Cycle> _readyAt;
    std::vector<Addr> _addr;
    std::vector<unsigned> _size;
    std::vector<InstIdx> _fallthrough;
    std::vector<branch::Prediction> _prediction;

    std::size_t _cap;
    std::size_t _head = 0;
    std::size_t _count = 0;
    unsigned _deferredStores = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_COUPLING_QUEUE_HH
