/**
 * @file
 * The coupling queue (CQ) and coupling result store (CRS) of
 * Section 3.1. Every instruction flows, in order, from the A-pipe's
 * dispatch into this FIFO on its way to the B-pipe. Pre-executed
 * entries carry their results (the CRS payload, folded into the
 * entry); deferred entries carry only identity and will execute for
 * the first time in the B-pipe.
 */

#ifndef FF_CPU_TWOPASS_COUPLING_QUEUE_HH
#define FF_CPU_TWOPASS_COUPLING_QUEUE_HH

#include "branch/gshare.hh"
#include "common/fifo.hh"
#include "common/types.hh"
#include "cpu/model_stats.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** Disposition of an instruction as it left the A-pipe. */
enum class CqStatus : std::uint8_t
{
    kPreExecuted, ///< completed in A (result, possibly in-flight, in CRS)
    kDeferred,    ///< suppressed in A; executes in B
};

// DeferReason lives in cpu/model_stats.hh so the core layer's
// observer seam can name it without depending on two-pass headers.

/** One CQ entry with its CRS payload. */
struct CqEntry
{
    InstIdx idx = 0;       ///< static instruction index
    DynId id = 0;          ///< dynamic id
    Cycle enqueuedAt = 0;  ///< A-pipe dispatch cycle
    CqStatus status = CqStatus::kDeferred;
    DeferReason reason = DeferReason::kNone;
    bool groupEnd = false; ///< carries the (original) stop bit

    // ---- CRS payload (meaningful when pre-executed) -----------------
    bool predTrue = false;
    bool writesDst = false;
    bool writesDst2 = false;
    RegVal dstVal = 0;
    RegVal dst2Val = 0;
    Cycle readyAt = 0;     ///< when the result is usable ("dangling"
                           ///< dependences scoreboard on this)

    // ---- memory bookkeeping ----------------------------------------
    bool isLoad = false;
    bool isStore = false;
    Addr addr = 0;
    unsigned size = 0;

    // ---- branch bookkeeping -----------------------------------------
    bool isBranch = false;
    bool branchResolvedInA = false;
    bool actualTaken = false;     ///< valid when resolved in A
    bool predictedTaken = false;
    InstIdx fallthrough = 0;      ///< next leader when not taken
    branch::Prediction prediction{};
};

/** The bounded, flushable instruction FIFO between the pipes. */
class CouplingQueue
{
  public:
    explicit CouplingQueue(std::size_t capacity) : _fifo(capacity) {}

    bool empty() const { return _fifo.empty(); }
    bool full() const { return _fifo.full(); }
    std::size_t size() const { return _fifo.size(); }
    std::size_t freeSlots() const { return _fifo.freeSlots(); }
    std::size_t capacity() const { return _fifo.capacity(); }

    void
    push(const CqEntry &e)
    {
        _fifo.push(e);
        if (isDeferredStore(e))
            ++_deferredStores;
    }

    const CqEntry &at(std::size_t i) const { return _fifo.at(i); }

    void
    pop()
    {
        if (isDeferredStore(_fifo.at(0)))
            --_deferredStores;
        _fifo.pop();
    }

    void
    clear()
    {
        _fifo.clear();
        _deferredStores = 0;
    }

    /** Removes every entry with id greater than @p boundary. */
    void
    squashYoungerThan(DynId boundary)
    {
        while (!_fifo.empty() && _fifo.at(_fifo.size() - 1).id > boundary) {
            if (isDeferredStore(_fifo.at(_fifo.size() - 1)))
                --_deferredStores;
            _fifo.popBack();
        }
    }

    /**
     * Number of deferred stores currently queued (Sec. 4 stat). The
     * A-pipe asks this for every dispatched load, so it is maintained
     * incrementally rather than scanned; entries are immutable once
     * queued (there is deliberately no mutable at()), which keeps the
     * count exact.
     */
    unsigned deferredStores() const { return _deferredStores; }

  private:
    static bool
    isDeferredStore(const CqEntry &e)
    {
        return e.status == CqStatus::kDeferred && e.isStore;
    }

    BoundedFifo<CqEntry> _fifo;
    unsigned _deferredStores = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_COUPLING_QUEUE_HH
