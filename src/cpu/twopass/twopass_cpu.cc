#include "cpu/twopass/twopass_cpu.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "cpu/stats_report.hh"

namespace ff
{
namespace cpu
{

TwoPassCpu::TwoPassCpu(const isa::Program &prog,
                       const CoreConfig &cfg, bool load_image)
    : CoreBase(prog, cfg, memory::Initiator::kApipe, load_image),
      _sbuf(cfg.storeBufferSize),
      _alat(cfg.alatCapacity),
      _ctx{_prog, _cfg, _fe, *_pred, _hier, _mem, _ms, _sbuf, _alat,
           _stats},
      _feedback(_cfg, _ms, _stats),
      _apipe(_ctx),
      _bpipe(_ctx, _feedback)
{
    // A queue narrower than the widest legal issue group could never
    // accept a full-width dispatch: the A-pipe would starve forever.
    ff_fatal_if(cfg.couplingQueueSize < cfg.limits.issueWidth,
                "coupling queue (", cfg.couplingQueueSize,
                ") must hold at least one full issue group (",
                cfg.limits.issueWidth, ")");
}

CycleClass
TwoPassCpu::tick(Cycle now, RunResult &res)
{
    _feedback.apply(now);
    const CycleClass cls = _bpipe.step(now, res);
    if (!res.halted)
        _apipe.step(now);
    _cqDepth.sample(static_cast<std::int64_t>(_ms.cq.size()));
    if (_cfg.selfCheckInterval != 0 &&
        now % _cfg.selfCheckInterval == 0) {
        checkAFileCoherence(now);
    }
    return cls;
}

void
TwoPassCpu::checkAFileCoherence(Cycle now) const
{
    // The coupling queue must hold strictly increasing dynamic ids
    // (program order), and the store buffer likewise.
    for (std::size_t k = 1; k < _ms.cq.size(); ++k) {
        ff_panic_if(_ms.cq.id(k - 1) >= _ms.cq.id(k),
                    "coupling queue out of program order at cycle ",
                    now);
    }
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
        const isa::RegId r = slotReg(slot);
        if (r.idx == 0)
            continue;
        if (!_ms.afile.valid(r) || _ms.afile.speculative(r))
            continue;
        ff_panic_if(_ms.afile.read(r) != _ms.regs.read(r),
                    "A-file coherence violation at cycle ", now, ": ",
                    isa::regName(r), " A=", _ms.afile.read(r),
                    " B=", _ms.regs.read(r));
    }
}

std::string
TwoPassCpu::statsReport() const
{
    stats::StatGroup g("twopass");
    g.addScalar("dispatched") += _stats.dispatched;
    g.addScalar("pre_executed") += _stats.preExecuted;
    g.addScalar("deferred") += _stats.deferred;
    for (unsigned r = 1; r < kNumDeferReasons; ++r) {
        g.addScalar(std::string("deferred.") +
                    deferReasonName(static_cast<DeferReason>(r))) +=
            _stats.deferredByReason[r];
    }
    g.addScalar("loads_in_a") += _stats.loadsInA;
    g.addScalar("loads_in_b") += _stats.loadsInB;
    g.addScalar("stores_in_a") += _stats.storesInA;
    g.addScalar("stores_in_b") += _stats.storesInB;
    g.addScalar("loads_past_deferred_store") +=
        _stats.loadsPastDeferredStore;
    g.addScalar("store_conflict_flushes") +=
        _stats.storeConflictFlushes;
    g.addScalar("store_forwardings") += _stats.storeForwardings;
    g.addScalar("branches_resolved_a") += _stats.branchesResolvedInA;
    g.addScalar("branches_resolved_b") += _stats.branchesResolvedInB;
    g.addScalar("adet_mispredicts") += _stats.aDetMispredicts;
    g.addScalar("bdet_mispredicts") += _stats.bDetMispredicts;
    g.addScalar("a_stall_cq_full") += _stats.aStallCqFull;
    g.addScalar("a_stall_anticipable") += _stats.aStallAnticipable;
    g.addScalar("a_stall_throttled") += _stats.aStallThrottled;
    g.addScalar("regrouped_groups") += _stats.regroupedGroups;
    g.addScalar("feedback_applied") += _stats.feedbackApplied;
    g.addScalar("feedback_dropped") += _stats.feedbackDropped;
    g.addScalar("registers_repaired") += _stats.registersRepaired;

    stats::StatGroup a("alat");
    a.addScalar("allocations") += _alat.stats().allocations;
    a.addScalar("store_invalidations") +=
        _alat.stats().storeInvalidations;
    a.addScalar("capacity_evictions") +=
        _alat.stats().capacityEvictions;
    a.addScalar("checks_passed") += _alat.stats().checksPassed;
    a.addScalar("checks_failed") += _alat.stats().checksFailed;

    stats::StatGroup q("cq");
    q.addScalar("mean_depth_x1000") +=
        static_cast<std::uint64_t>(_cqDepth.mean() * 1000.0);
    q.addScalar("samples") += _cqDepth.samples();

    return commonStatsReport(_acct, _pred->stats(),
                             _hier.accessStats()) +
           g.dump() + a.dump() + q.dump();
}

namespace
{

void
saveTwoPassStats(serial::Writer &w, const TwoPassStats &s)
{
    w.u64(s.dispatched);
    w.u64(s.preExecuted);
    w.u64(s.deferred);
    for (const std::uint64_t c : s.deferredByReason)
        w.u64(c);
    w.u64(s.loadsInA);
    w.u64(s.loadsInB);
    w.u64(s.storesInA);
    w.u64(s.storesInB);
    w.u64(s.loadsPastDeferredStore);
    w.u64(s.storeConflictFlushes);
    w.u64(s.storeForwardings);
    w.u64(s.branchesResolvedInA);
    w.u64(s.branchesResolvedInB);
    w.u64(s.aDetMispredicts);
    w.u64(s.bDetMispredicts);
    w.u64(s.aStallCqFull);
    w.u64(s.aStallAnticipable);
    w.u64(s.aStallThrottled);
    w.u64(s.regroupedGroups);
    w.u64(s.feedbackApplied);
    w.u64(s.feedbackDropped);
    w.u64(s.registersRepaired);
}

void
restoreTwoPassStats(serial::Reader &r, TwoPassStats &s)
{
    s.dispatched = r.u64();
    s.preExecuted = r.u64();
    s.deferred = r.u64();
    for (std::uint64_t &c : s.deferredByReason)
        c = r.u64();
    s.loadsInA = r.u64();
    s.loadsInB = r.u64();
    s.storesInA = r.u64();
    s.storesInB = r.u64();
    s.loadsPastDeferredStore = r.u64();
    s.storeConflictFlushes = r.u64();
    s.storeForwardings = r.u64();
    s.branchesResolvedInA = r.u64();
    s.branchesResolvedInB = r.u64();
    s.aDetMispredicts = r.u64();
    s.bDetMispredicts = r.u64();
    s.aStallCqFull = r.u64();
    s.aStallAnticipable = r.u64();
    s.aStallThrottled = r.u64();
    s.regroupedGroups = r.u64();
    s.feedbackApplied = r.u64();
    s.feedbackDropped = r.u64();
    s.registersRepaired = r.u64();
}

} // namespace

void
TwoPassCpu::saveModelState(serial::Writer &w) const
{
    _ms.afile.save(w);
    _ms.regs.save(w);
    _ms.sb.save(w);
    _ms.cq.save(w);
    _sbuf.save(w);
    _alat.save(w);

    w.u64(_ms.nextId);
    w.boolean(_ms.aHalted);
    // conflictRetry is a membership-only set, kept sorted — the
    // encoding is byte-stable as-is.
    w.u64(_ms.conflictRetry().size());
    for (const InstIdx idx : _ms.conflictRetry())
        w.u32(idx);

    saveTwoPassStats(w, _stats);
    _feedback.save(w);
    _apipe.save(w);
    _cqDepth.save(w);
}

void
TwoPassCpu::restoreModelState(serial::Reader &r)
{
    _ms.afile.restore(r);
    _ms.regs.restore(r);
    _ms.sb.restore(r);
    _ms.cq.restore(r);
    _sbuf.restore(r);
    _alat.restore(r);

    _ms.nextId = r.u64();
    _ms.aHalted = r.boolean();
    _ms.conflictRetryClear();
    const std::size_t retry = r.seq(4);
    for (std::size_t i = 0; i < retry; ++i)
        _ms.conflictRetryInsert(r.u32());

    restoreTwoPassStats(r, _stats);
    _feedback.restore(r);
    _apipe.restore(r);
    _cqDepth.restore(r);
}

} // namespace cpu
} // namespace ff
