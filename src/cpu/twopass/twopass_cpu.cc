#include "cpu/twopass/twopass_cpu.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "cpu/exec.hh"
#include "cpu/stats_report.hh"

namespace ff
{
namespace cpu
{

// The per-reason defer histogram in ModelStats must stay in lockstep
// with the DeferReason enum the pipes index it with.
static_assert(kNumDeferReasons == kNumDeferReasonsStats,
              "DeferReason count drifted from TwoPassStats histogram");

using isa::Instruction;

TwoPassCpu::TwoPassCpu(const isa::Program &prog, const CoreConfig &cfg)
    : _prog(prog),
      _cfg(cfg),
      _hier(cfg.mem),
      _pred(branch::makePredictor(cfg.predictorKind,
                                  cfg.predictorEntries)),
      _fe(prog, _cfg, *_pred, _hier, memory::Initiator::kApipe),
      _cq(cfg.couplingQueueSize),
      _sbuf(cfg.storeBufferSize),
      _alat(cfg.alatCapacity)
{
    const std::string err = prog.validate(cfg.limits);
    ff_fatal_if(!err.empty(), "invalid program '", prog.name(), "': ",
                err);
    // A queue narrower than the widest legal issue group could never
    // accept a full-width dispatch: the A-pipe would starve forever.
    ff_fatal_if(cfg.couplingQueueSize < cfg.limits.issueWidth,
                "coupling queue (", cfg.couplingQueueSize,
                ") must hold at least one full issue group (",
                cfg.limits.issueWidth, ")");
    _mem.loadPages(prog.dataImage().pages());
}

// --------------------------------------------------------------------
// Feedback path (Sec. 3.5): committed B-pipe results update the A-file
// after a configurable latency, gated by the DynID match.
// --------------------------------------------------------------------

void
TwoPassCpu::applyFeedback(Cycle now)
{
    while (!_feedback.empty() && _feedback.front().applyAt <= now) {
        const Feedback f = _feedback.front();
        _feedback.pop_front();
        if (_afile.applyFeedback(f.reg, f.value, f.id)) {
            ++_stats.feedbackApplied;
            ff_trace(trace::kFeedback, now, "FEEDBK",
                     isa::regName(f.reg) << " <- " << f.value << " (id "
                                         << f.id << ")");
        } else {
            ++_stats.feedbackDropped;
        }
    }
}

void
TwoPassCpu::scheduleFeedback(const Instruction &in, DynId id, Cycle now)
{
    if (!_cfg.feedbackEnabled)
        return;
    std::array<isa::RegId, 2> dsts;
    const unsigned nd = in.destinations(dsts);
    for (unsigned d = 0; d < nd; ++d) {
        // Feed back the architectural value of the register as of
        // this retirement: for a nullified instruction that is the
        // (unchanged) older value, which correctly revalidates the
        // conservatively-cleared V bit.
        _feedback.push_back({dsts[d], _bfile.read(dsts[d]), id,
                             now + _cfg.feedbackLatency});
    }
}

// --------------------------------------------------------------------
// A-pipe (Sec. 3.1): greedy, non-stalling dispatch.
// --------------------------------------------------------------------

bool
TwoPassCpu::anticipableStall(const FetchedGroup &g, Cycle now) const
{
    for (InstIdx i = g.leader; i < g.end; ++i) {
        const Instruction &in = _prog.inst(i);
        std::array<isa::RegId, 4> srcs;
        const unsigned ns = in.sources(srcs);
        for (unsigned s = 0; s < ns; ++s) {
            const isa::RegId r = srcs[s];
            if (_afile.valid(r) && !_afile.readyBy(r, now) &&
                _afile.kindOf(r) == PendingKind::kNonLoad) {
                return true;
            }
        }
    }
    return false;
}

void
TwoPassCpu::stepApipe(Cycle now)
{
    if (_aHalted || !_fe.headReady(now))
        return;
    if (_cfg.aPipeThrottlePercent != 0) {
        // Issue moderation: when run-ahead is mostly producing
        // deferred instructions, pre-execution has stopped paying for
        // the queue space it consumes -- pause and let the B-pipe
        // clear the backlog (Sec. 3.5's suggested investigation).
        if (_throttled) {
            if (_cq.size() * 4 <= _cq.capacity()) {
                _throttled = false;
            } else {
                ++_stats.aStallThrottled;
                return;
            }
        } else if (_deferHistoryCount * 100 >=
                       _cfg.aPipeThrottlePercent * 64 &&
                   _cq.size() * 2 > _cq.capacity()) {
            _throttled = true;
            ++_stats.aStallThrottled;
            return;
        }
    }
    const FetchedGroup g = _fe.head();
    if (_cq.freeSlots() < static_cast<std::size_t>(g.end - g.leader)) {
        ++_stats.aStallCqFull;
        return;
    }
    if (_cfg.aPipeStallsOnAnticipable && anticipableStall(g, now)) {
        ++_stats.aStallAnticipable;
        return;
    }
    _fe.pop(); // before any A-DET redirect clears the fetch queue
    dispatchGroup(g, now);
}

void
TwoPassCpu::dispatchGroup(const FetchedGroup &g, Cycle now)
{
    for (InstIdx i = g.leader; i < g.end; ++i) {
        const Instruction &in = _prog.inst(i);
        const DynId id = _nextId++;
        ++_stats.dispatched;

        CqEntry e;
        e.idx = i;
        e.id = id;
        e.enqueuedAt = now;
        e.groupEnd = (i + 1 == g.end);
        e.isLoad = in.isLoad();
        e.isStore = in.isStore();
        e.isBranch = in.isBranch();
        if (e.isBranch) {
            e.predictedTaken = g.predictedTaken;
            e.prediction = g.prediction;
            e.fallthrough = g.end;
        }

        // ---- operand availability in the A-file ---------------------
        DeferReason reason = DeferReason::kNone;
        auto check = [&](isa::RegId r) {
            if (reason != DeferReason::kNone || !r.valid())
                return;
            if (!_afile.valid(r))
                reason = DeferReason::kOperandInvalid;
            else if (!_afile.readyBy(r, now))
                reason = DeferReason::kOperandInFlight;
        };
        check(in.qpred);
        bool qp = false;
        if (reason == DeferReason::kNone) {
            qp = _afile.readPred(in.qpred);
            if (qp || in.isBranch()) {
                check(in.src1);
                if (!in.src2IsImm)
                    check(in.src2);
            }
        }

        // ---- structural availability ---------------------------------
        if (reason == DeferReason::kNone && !_cfg.aPipeHasFpUnits &&
            in.unit() == isa::UnitClass::kFp) {
            // Partial replication (Sec. 3.7): no FP units in the
            // A-pipe; the B-pipe keeps the complete set.
            reason = DeferReason::kNoFunctionalUnit;
        }
        if (reason == DeferReason::kNone && in.isLoad() &&
            _conflictRetry.count(i) != 0) {
            // Fallback after this load's conflict flush; lifted once
            // the machine makes retirement progress.
            reason = DeferReason::kConflictRetry;
        }
        if (reason == DeferReason::kNone && qp && in.isLoad() &&
            !_hier.loadSlotAvailable(now)) {
            reason = DeferReason::kMshrFull;
        }
        if (reason == DeferReason::kNone && qp && in.isStore() &&
            _sbuf.full()) {
            reason = DeferReason::kStoreBufferFull;
        }

        // Track the recent deferral rate for the issue throttle.
        const bool is_deferred = reason != DeferReason::kNone;
        _deferHistoryCount += (is_deferred ? 1 : 0);
        _deferHistoryCount -= (_deferHistory >> 63) & 1;
        _deferHistory = (_deferHistory << 1) | (is_deferred ? 1 : 0);

        if (reason != DeferReason::kNone) {
            // ---- defer to the B-pipe --------------------------------
            e.status = CqStatus::kDeferred;
            e.reason = reason;
            ++_stats.deferred;
            ++_stats.deferredByReason[static_cast<unsigned>(reason)];
            std::array<isa::RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                _afile.markDeferred(dsts[d], id);
            ff_trace(trace::kApipe, now, "A-DEFER",
                     "@" << i << " id " << id << " reason "
                         << static_cast<unsigned>(reason));
            _cq.push(e);
            continue;
        }

        // ---- pre-execute in the A-pipe ------------------------------
        e.status = CqStatus::kPreExecuted;
        e.predTrue = qp;
        e.readyAt = now;
        ++_stats.preExecuted;

        if (in.isBranch()) {
            // The direction is known: resolve the prediction at A-DET.
            e.branchResolvedInA = true;
            e.actualTaken = qp;
            ++_stats.branchesResolvedInA;
            _pred->update(e.prediction, qp);
            if (qp != g.predictedTaken) {
                ++_stats.aDetMispredicts;
                const InstIdx target =
                    qp ? static_cast<InstIdx>(in.imm) : g.end;
                _fe.redirect(target, now + 1 + _cfg.branchResolveDelay);
                ff_trace(trace::kBranch, now, "A-DET",
                         "mispredict @" << i << " -> @" << target);
            }
            _cq.push(e);
            continue;
        }

        if (in.isHalt()) {
            _aHalted = true;
            _cq.push(e);
            continue;
        }

        if (!qp) {
            // Nullified: completes with no effects.
            _cq.push(e);
            continue;
        }

        const RegVal s1 = in.src1.valid() ? _afile.read(in.src1) : 0;
        const RegVal s2 = operandSrc2(
            in, in.src2.valid() ? _afile.read(in.src2) : 0);
        EvalResult ev = evaluate(in, qp, s1, s2);

        if (in.isLoad()) {
            ++_stats.loadsInA;
            if (_cq.deferredStores() > 0)
                ++_stats.loadsPastDeferredStore;
            bool forwarded = false;
            const std::uint64_t raw =
                _sbuf.read(id, ev.addr, ev.size, _mem, &forwarded);
            if (forwarded)
                ++_stats.storeForwardings;
            _alat.allocate(id, ev.addr, ev.size);
            const memory::AccessResult ar =
                _hier.access(memory::AccessKind::kLoad,
                             memory::Initiator::kApipe, ev.addr, now);
            e.writesDst = true;
            e.dstVal = loadExtend(in.op, raw);
            e.readyAt = now + ar.latency;
            e.addr = ev.addr;
            e.size = ev.size;
            _afile.writeExecuted(in.dst, e.dstVal, id, e.readyAt,
                                 PendingKind::kLoad);
            ff_trace(trace::kApipe, now, "A-LOAD",
                     "@" << i << " id " << id << " ["
                         << std::hex << ev.addr << std::dec << "] "
                         << memory::memLevelName(ar.level) << " ready@"
                         << e.readyAt);
        } else if (in.isStore()) {
            ++_stats.storesInA;
            _sbuf.insert(id, ev.addr, ev.size, ev.storeVal);
            _hier.access(memory::AccessKind::kStore,
                         memory::Initiator::kApipe, ev.addr, now);
            e.addr = ev.addr;
            e.size = ev.size;
            ff_trace(trace::kApipe, now, "A-STORE",
                     "@" << i << " id " << id << " [" << std::hex
                         << ev.addr << std::dec << "] buffered");
        } else {
            const unsigned lat = in.execLatency();
            e.readyAt = now + lat;
            e.writesDst = ev.writesDst;
            e.writesDst2 = ev.writesDst2;
            e.dstVal = ev.dstVal;
            e.dst2Val = ev.dst2Val;
            if (ev.writesDst) {
                _afile.writeExecuted(in.dst, ev.dstVal, id, e.readyAt,
                                     PendingKind::kNonLoad);
            }
            if (ev.writesDst2) {
                _afile.writeExecuted(in.dst2, ev.dst2Val, id, e.readyAt,
                                     PendingKind::kNonLoad);
            }
        }
        _cq.push(e);
    }
}

// --------------------------------------------------------------------
// B-pipe (Sec. 3.1): in-order merge of pre-executed results and
// first execution of deferred instructions.
// --------------------------------------------------------------------

CycleClass
TwoPassCpu::prescanWindow(const RetireWindow &w, Cycle now) const
{
    auto class_for = [&](isa::RegId r) {
        return _bsb.kindOf(r) == PendingKind::kLoad
                   ? CycleClass::kLoadStall
                   : CycleClass::kNonLoadDepStall;
    };

    unsigned deferred_loads = 0;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = _cq.at(k);
        const Instruction &in = _prog.inst(e.idx);
        if (e.status == CqStatus::kPreExecuted) {
            if (e.readyAt > now) {
                // A "dangling dependence": the result was started in
                // the A-pipe but has not arrived (Sec. 3.1).
                return e.isLoad ? CycleClass::kLoadStall
                                : CycleClass::kNonLoadDepStall;
            }
            continue;
        }
        // Deferred: operand readiness against B-pipe producers. The
        // nullification shortcut uses the current predicate value;
        // in-window pre-executed producers may still flip it at apply
        // time, a deliberate (conservatively safe) simplification.
        if (!_bsb.ready(in.qpred, now))
            return class_for(in.qpred);
        const bool qp = _bfile.readPred(in.qpred);
        if (qp || in.isBranch()) {
            if (in.src1.valid() && !_bsb.ready(in.src1, now))
                return class_for(in.src1);
            if (in.src2.valid() && !in.src2IsImm &&
                !_bsb.ready(in.src2, now)) {
                return class_for(in.src2);
            }
        }
        if (e.isLoad && qp)
            ++deferred_loads;
    }
    if (deferred_loads > 0 && _hier.outstandingLoads(now) > 0 &&
        _hier.outstandingLoads(now) + deferred_loads >
            _cfg.mem.maxOutstandingLoads) {
        // Stalling only helps while an outstanding load could retire
        // and free an MSHR; a group carrying more loads than the
        // machine has MSHRs must still issue eventually.
        return CycleClass::kResourceStall;
    }
    return CycleClass::kUnstalled;
}

CycleClass
TwoPassCpu::stepBpipe(Cycle now, RunResult &res)
{
    if (_cq.empty()) {
        // Distinguish "the A-pipe has work but has not delivered it"
        // (the paper's A-pipe stall: A must stay a cycle ahead) from
        // a genuinely starved front end.
        if (_fe.headReady(now))
            return CycleClass::kApipeStall;
        return CycleClass::kFrontEndStall;
    }
    ff_panic_if(_cq.at(0).enqueuedAt >= now,
                "B-pipe observed a same-cycle A-pipe dispatch");

    RetireWindow w = headGroupWindow(_cq);
    const CycleClass cls = prescanWindow(w, now);
    if (cls != CycleClass::kUnstalled)
        return cls;

    if (_cfg.regroup) {
        // Fuse follow-on groups whose every entry could retire right
        // now: pre-execution made their leading stop bits
        // superfluous.
        auto entry_ready = [&](const CqEntry &e) {
            if (e.status == CqStatus::kPreExecuted)
                return e.readyAt <= now;
            const isa::Instruction &in = _prog.inst(e.idx);
            if (!_bsb.ready(in.qpred, now))
                return false;
            const bool qp = _bfile.readPred(in.qpred);
            if (qp || in.isBranch()) {
                if (in.src1.valid() && !_bsb.ready(in.src1, now))
                    return false;
                if (in.src2.valid() && !in.src2IsImm &&
                    !_bsb.ready(in.src2, now)) {
                    return false;
                }
            }
            if (e.isLoad && qp && !_hier.loadSlotAvailable(now))
                return false;
            return true;
        };
        w = extendRetireWindow(_cq, _prog, _cfg.limits, now, w,
                               entry_ready);
    }

    // Merge-time ALAT checks (Sec. 3.4). Only reached when the whole
    // window is otherwise ready; a missing entry is a store conflict.
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = _cq.at(k);
        if (e.status == CqStatus::kPreExecuted && e.isLoad &&
            e.predTrue && !_alat.check(e.id)) {
            ++_stats.storeConflictFlushes;
            ff_trace(trace::kFlush, now, "CONFLICT",
                     "load id " << e.id << " @" << e.idx
                                << " lost its ALAT entry");
            conflictFlush(e, now);
            return CycleClass::kFrontEndStall;
        }
    }

    applyWindow(w, now, res);
    return CycleClass::kUnstalled;
}

void
TwoPassCpu::applyWindow(const RetireWindow &w, Cycle now, RunResult &res)
{
    _stats.regroupedGroups += w.groups - 1;

    std::size_t applied = 0;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const CqEntry &e = _cq.at(k);
        const Instruction &in = _prog.inst(e.idx);
        ++res.instsRetired;
        ++applied;
        if (e.groupEnd)
            ++res.groupsRetired;

        if (in.isHalt()) {
            res.halted = true;
            break;
        }

        if (e.status == CqStatus::kPreExecuted) {
            // ---- merge (MRG stage) ----------------------------------
            if (e.predTrue && !e.isBranch) {
                if (e.isStore)
                    _sbuf.commitOldest(e.id, _mem);
                if (e.isLoad)
                    _alat.remove(e.id);
                if (e.writesDst)
                    _bfile.write(in.dst, e.dstVal);
                if (e.writesDst2)
                    _bfile.write(in.dst2, e.dst2Val);
            }
            // Mark the A-file copy of these values architectural.
            std::array<isa::RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                _afile.commitMatch(dsts[d], e.id);
            continue;
        }

        // ---- first execution of a deferred instruction --------------
        const bool qp = _bfile.readPred(in.qpred);
        const RegVal s1 = in.src1.valid() ? _bfile.read(in.src1) : 0;
        const RegVal s2 = operandSrc2(
            in, in.src2.valid() ? _bfile.read(in.src2) : 0);
        EvalResult ev = evaluate(in, qp, s1, s2);

        if (ev.isBranch) {
            ++_stats.branchesResolvedInB;
            _pred->update(e.prediction, ev.taken);
            if (ev.taken != e.predictedTaken) {
                ++_stats.bDetMispredicts;
                // Retire everything up to and including the branch,
                // then flush the wrong path (Sec. 3.6).
                bDetFlush(e, k, ev.taken, now);
                for (std::size_t p = 0; p < applied; ++p)
                    _cq.pop();
                _cq.clear(); // everything remaining is younger
                return;
            }
            scheduleFeedback(in, e.id, now);
            continue;
        }

        if (ev.predTrue) {
            if (ev.isMemAccess) {
                if (in.isLoad()) {
                    ++_stats.loadsInB;
                    const memory::AccessResult ar = _hier.access(
                        memory::AccessKind::kLoad,
                        memory::Initiator::kBpipe, ev.addr, now);
                    ev.dstVal =
                        loadExtend(in.op, _mem.read(ev.addr, ev.size));
                    _bfile.write(in.dst, ev.dstVal);
                    _bsb.setPending(in.dst, now + ar.latency,
                                    PendingKind::kLoad);
                    ff_trace(trace::kBpipe, now, "B-LOAD",
                             "@" << e.idx << " id " << e.id << " "
                                 << memory::memLevelName(ar.level));
                } else {
                    ++_stats.storesInB;
                    _mem.write(ev.addr, ev.storeVal, ev.size);
                    // Deferred stores kill matching ALAT entries: any
                    // younger pre-executed load that read this address
                    // will fail its merge-time check (Sec. 3.4).
                    _alat.invalidateOverlap(ev.addr, ev.size);
                    _hier.access(memory::AccessKind::kStore,
                                 memory::Initiator::kBpipe, ev.addr,
                                 now);
                }
            } else {
                const unsigned lat = in.execLatency();
                if (ev.writesDst) {
                    _bfile.write(in.dst, ev.dstVal);
                    if (lat > 1) {
                        _bsb.setPending(in.dst, now + lat,
                                        PendingKind::kNonLoad);
                    }
                }
                if (ev.writesDst2) {
                    _bfile.write(in.dst2, ev.dst2Val);
                    if (lat > 1) {
                        _bsb.setPending(in.dst2, now + lat,
                                        PendingKind::kNonLoad);
                    }
                }
            }
        }
        scheduleFeedback(in, e.id, now);
    }

    for (std::size_t p = 0; p < applied; ++p)
        _cq.pop();
    // Retirement progress: the conflicted window is past; lift the
    // non-speculative fallback.
    _conflictRetry.clear();
}

void
TwoPassCpu::checkAFileCoherence(Cycle now) const
{
    // The coupling queue must hold strictly increasing dynamic ids
    // (program order), and the store buffer likewise.
    for (std::size_t k = 1; k < _cq.size(); ++k) {
        ff_panic_if(_cq.at(k - 1).id >= _cq.at(k).id,
                    "coupling queue out of program order at cycle ",
                    now);
    }
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
        const isa::RegId r = slotReg(slot);
        if (r.idx == 0)
            continue;
        if (!_afile.valid(r) || _afile.speculative(r))
            continue;
        ff_panic_if(_afile.read(r) != _bfile.read(r),
                    "A-file coherence violation at cycle ", now, ": ",
                    isa::regName(r), " A=", _afile.read(r),
                    " B=", _bfile.read(r));
    }
}

// --------------------------------------------------------------------
// Flush routines (Secs. 3.4, 3.6).
// --------------------------------------------------------------------

void
TwoPassCpu::bDetFlush(const CqEntry &branch, std::size_t branch_pos,
                      bool taken, Cycle now)
{
    (void)branch_pos;
    const Instruction &in = _prog.inst(branch.idx);
    const InstIdx target =
        taken ? static_cast<InstIdx>(in.imm) : branch.fallthrough;

    _sbuf.squashYoungerThan(branch.id);
    _alat.squashYoungerThan(branch.id);
    while (!_feedback.empty() && _feedback.back().id > branch.id)
        _feedback.pop_back();

    _stats.registersRepaired += _afile.repairFromArch(_bfile);
    _fe.redirect(target, now + 1 + _cfg.branchResolveDelay +
                             _cfg.bFlushRepairPenalty);
    _aHalted = false;
    ff_trace(trace::kFlush, now, "B-DET",
             "mispredict id " << branch.id << " -> @" << target);
}

void
TwoPassCpu::conflictFlush(const CqEntry &offender, Cycle now)
{
    // Forward progress: the offending load executes in the B-pipe on
    // its retries instead of speculating again.
    _conflictRetry.insert(offender.idx);
    // Nothing from the head window has been applied; restart the
    // whole speculative machine at the head group's leader. (The
    // paper resumes at the offending load; restarting at its group
    // boundary is slightly coarser and strictly safe.)
    const InstIdx leader = _prog.groupStart(_cq.at(0).idx);
    _cq.clear();
    _sbuf.clear();
    _alat.clear();
    _feedback.clear();
    _stats.registersRepaired += _afile.repairFromArch(_bfile);
    _fe.redirect(leader, now + 1 + _cfg.branchResolveDelay +
                             _cfg.bFlushRepairPenalty);
    _aHalted = false;
}

std::string
TwoPassCpu::statsReport() const
{
    stats::StatGroup g("twopass");
    g.addScalar("dispatched") += _stats.dispatched;
    g.addScalar("pre_executed") += _stats.preExecuted;
    g.addScalar("deferred") += _stats.deferred;
    static const char *kReasons[] = {
        "none",      "operand_invalid",  "operand_in_flight",
        "mshr_full", "store_buffer_full", "conflict_retry",
        "no_functional_unit"};
    for (unsigned r = 1; r < kNumDeferReasons; ++r) {
        g.addScalar(std::string("deferred.") + kReasons[r]) +=
            _stats.deferredByReason[r];
    }
    g.addScalar("loads_in_a") += _stats.loadsInA;
    g.addScalar("loads_in_b") += _stats.loadsInB;
    g.addScalar("stores_in_a") += _stats.storesInA;
    g.addScalar("stores_in_b") += _stats.storesInB;
    g.addScalar("loads_past_deferred_store") +=
        _stats.loadsPastDeferredStore;
    g.addScalar("store_conflict_flushes") +=
        _stats.storeConflictFlushes;
    g.addScalar("store_forwardings") += _stats.storeForwardings;
    g.addScalar("branches_resolved_a") += _stats.branchesResolvedInA;
    g.addScalar("branches_resolved_b") += _stats.branchesResolvedInB;
    g.addScalar("adet_mispredicts") += _stats.aDetMispredicts;
    g.addScalar("bdet_mispredicts") += _stats.bDetMispredicts;
    g.addScalar("a_stall_cq_full") += _stats.aStallCqFull;
    g.addScalar("a_stall_anticipable") += _stats.aStallAnticipable;
    g.addScalar("a_stall_throttled") += _stats.aStallThrottled;
    g.addScalar("regrouped_groups") += _stats.regroupedGroups;
    g.addScalar("feedback_applied") += _stats.feedbackApplied;
    g.addScalar("feedback_dropped") += _stats.feedbackDropped;
    g.addScalar("registers_repaired") += _stats.registersRepaired;

    stats::StatGroup a("alat");
    a.addScalar("allocations") += _alat.stats().allocations;
    a.addScalar("store_invalidations") +=
        _alat.stats().storeInvalidations;
    a.addScalar("capacity_evictions") +=
        _alat.stats().capacityEvictions;
    a.addScalar("checks_passed") += _alat.stats().checksPassed;
    a.addScalar("checks_failed") += _alat.stats().checksFailed;

    stats::StatGroup q("cq");
    q.addScalar("mean_depth_x1000") +=
        static_cast<std::uint64_t>(_cqDepth.mean() * 1000.0);
    q.addScalar("samples") += _cqDepth.samples();

    return commonStatsReport(_acct, _pred->stats(),
                             _hier.accessStats()) +
           g.dump() + a.dump() + q.dump();
}

// --------------------------------------------------------------------
// Main loop.
// --------------------------------------------------------------------

RunResult
TwoPassCpu::run(std::uint64_t max_cycles)
{
    ff_panic_if(_ran, "CPU models are single-shot; construct anew");
    _ran = true;

    RunResult res;
    Cycle now = 0;
    while (!res.halted && now < max_cycles) {
        _hier.tick(now);
        applyFeedback(now);
        const CycleClass cls = stepBpipe(now, res);
        _acct.record(cls);
        if (!res.halted)
            stepApipe(now);
        _fe.tick(now);
        _cqDepth.sample(static_cast<std::int64_t>(_cq.size()));
        if (_cfg.selfCheckInterval != 0 &&
            now % _cfg.selfCheckInterval == 0) {
            checkAFileCoherence(now);
        }
        ++now;
    }
    res.cycles = now;
    return res;
}

} // namespace cpu
} // namespace ff
