/**
 * @file
 * The advance pipeline (Sections 3.1–3.3): greedy, non-stalling
 * dispatch from the front end into the coupling queue. Instructions
 * with ready operands pre-execute against the A-file (loads start
 * their misses early, branches resolve at A-DET); instructions with
 * unready or invalid operands are deferred — their first execution
 * happens in the B-pipe — and their destinations are invalidated so
 * dependence successors defer too. Also owns the issue-moderation
 * throttle ring (Sec. 3.5 / future work).
 */

#ifndef FF_CPU_TWOPASS_APIPE_HH
#define FF_CPU_TWOPASS_APIPE_HH

#include "cpu/twopass/pipe_context.hh"

namespace ff
{
namespace cpu
{

/** The A-pipe dispatch stage unit. */
class APipe
{
  public:
    explicit APipe(const PipeContext &ctx) : _ctx(ctx) {}

    /**
     * Dispatches at most one issue group at @p now: pre-executing
     * ready slots into the coupling queue and deferring the rest.
     * Holds the group (and burns the cycle) when the queue lacks
     * room, the throttle is draining, or ablation A2 says an
     * anticipable in-flight latency is worth stalling for.
     */
    void step(Cycle now);

    /** Snapshot hooks: the issue-moderation throttle ring. */
    void
    save(serial::Writer &w) const
    {
        w.u64(_deferHistory);
        w.u32(_deferHistoryCount);
        w.boolean(_throttled);
    }

    void
    restore(serial::Reader &r)
    {
        _deferHistory = r.u64();
        _deferHistoryCount = r.u32();
        _throttled = r.boolean();
    }

  private:
    /** True when ablation A2 says the A-pipe should hold this group. */
    bool anticipableStall(const FetchedGroup &g, Cycle now) const;
    void dispatchGroup(const FetchedGroup &g, Cycle now);

    PipeContext _ctx;

    // ---- A-pipe issue moderation (Sec. 3.5 / future work) ----------
    /** Ring of the last 64 dispatch outcomes (1 = deferred). */
    std::uint64_t _deferHistory = 0;
    unsigned _deferHistoryCount = 0; ///< deferred bits in the ring
    bool _throttled = false;         ///< dispatch paused, draining
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_APIPE_HH
