#include "cpu/twopass/afile.hh"

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

bool
AFile::valid(isa::RegId r) const
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "A-file access to unused operand");
    if (r.idx == 0)
        return true; // hardwired registers are always valid
    return _e[slot].valid;
}

bool
AFile::readyBy(isa::RegId r, Cycle now) const
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "A-file access to unused operand");
    if (r.idx == 0)
        return true;
    return _e[slot].readyAt <= now;
}

PendingKind
AFile::kindOf(isa::RegId r) const
{
    const int slot = regSlot(r);
    if (slot < 0 || r.idx == 0)
        return PendingKind::kNone;
    return _e[slot].kind;
}

Cycle
AFile::readyAt(isa::RegId r) const
{
    const int slot = regSlot(r);
    if (slot < 0 || r.idx == 0)
        return 0;
    return _e[slot].readyAt;
}

RegVal
AFile::read(isa::RegId r) const
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "A-file read of unused operand");
    if (r.idx == 0)
        return r.cls == isa::RegClass::kPred ? 1 : 0;
    return _e[slot].value;
}

DynId
AFile::lastWriter(isa::RegId r) const
{
    const int slot = regSlot(r);
    if (slot < 0 || r.idx == 0)
        return kInvalidDynId;
    return _e[slot].lastWriter;
}

void
AFile::writeExecuted(isa::RegId r, RegVal v, DynId id, Cycle ready_at,
                     PendingKind kind)
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "A-file write to unused operand");
    if (r.idx == 0)
        return;
    if (r.cls == isa::RegClass::kPred)
        v = v ? 1 : 0;
    _e[slot] = {v, true, true, id, ready_at, kind};
}

void
AFile::markDeferred(isa::RegId r, DynId id)
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "A-file deferral mark on unused operand");
    if (r.idx == 0)
        return;
    Entry &e = _e[slot];
    e.valid = false;
    e.spec = true;
    e.lastWriter = id;
    e.readyAt = 0;
    e.kind = PendingKind::kNone;
}

bool
AFile::applyFeedback(isa::RegId r, RegVal v, DynId id)
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "A-file feedback to unused operand");
    if (r.idx == 0)
        return false;
    Entry &e = _e[slot];
    if (e.lastWriter != id)
        return false; // a younger writer owns this register now
    if (r.cls == isa::RegClass::kPred)
        v = v ? 1 : 0;
    e.value = v;
    e.valid = true;
    e.spec = false; // the value is architecturally committed
    e.readyAt = 0;
    e.kind = PendingKind::kNone;
    return true;
}

void
AFile::commitMatch(isa::RegId r, DynId id)
{
    const int slot = regSlot(r);
    if (slot < 0 || r.idx == 0)
        return;
    Entry &e = _e[slot];
    if (e.lastWriter == id)
        e.spec = false;
}

unsigned
AFile::repairFromArch(const RegFile &bfile)
{
    unsigned repaired = 0;
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
        Entry &e = _e[slot];
        if (!e.spec && e.valid)
            continue;
        e.value = bfile.slotValue(slot);
        e.valid = true;
        e.spec = false;
        e.lastWriter = kInvalidDynId;
        e.readyAt = 0;
        e.kind = PendingKind::kNone;
        ++repaired;
    }
    return repaired;
}

bool
AFile::speculative(isa::RegId r) const
{
    const int slot = regSlot(r);
    if (slot < 0 || r.idx == 0)
        return false;
    return _e[slot].spec;
}

void
AFile::reset()
{
    for (auto &e : _e)
        e = Entry();
}

} // namespace cpu
} // namespace ff
