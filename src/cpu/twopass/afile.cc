#include "cpu/twopass/afile.hh"

#include <bit>

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

unsigned
AFile::repairFromArch(const RegFile &bfile)
{
    unsigned repaired = 0;
    // A slot needs repair iff it is invalid or speculative; scan the
    // packed words so runs of clean registers cost one test per 64.
    for (unsigned wi = 0; wi < PackedBits<kNumRegSlots>::kWords; ++wi) {
        std::uint64_t need = ~_valid.word(wi) | _spec.word(wi);
        while (need != 0) {
            const unsigned slot =
                wi * 64 + static_cast<unsigned>(std::countr_zero(need));
            need &= need - 1;
            if (slot >= kNumRegSlots)
                break; // tail bits past the last register
            _value[slot] = bfile.slotValue(slot);
            _lastWriter[slot] = kInvalidDynId;
            _readyAt[slot] = 0;
            _kind[slot] = PendingKind::kNone;
            ++repaired;
        }
    }
    _valid.setAll();
    _spec.clearAll();
    return repaired;
}

void
AFile::syncFromArch(const RegFile &bfile)
{
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
        _value[slot] = bfile.slotValue(slot);
        _lastWriter[slot] = kInvalidDynId;
        _readyAt[slot] = 0;
        _kind[slot] = PendingKind::kNone;
    }
    _valid.setAll();
    _spec.clearAll();
}

void
AFile::reset()
{
    _value.fill(0);
    _lastWriter.fill(kInvalidDynId);
    _readyAt.fill(0);
    _kind.fill(PendingKind::kNone);
    _valid.setAll();
    _spec.clearAll();
}

void
AFile::save(serial::Writer &w) const
{
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
        w.u64(_value[slot]);
        w.boolean(_valid.test(slot));
        w.boolean(_spec.test(slot));
        w.u64(_lastWriter[slot]);
        w.u64(_readyAt[slot]);
        w.u8(static_cast<std::uint8_t>(_kind[slot]));
    }
}

void
AFile::restore(serial::Reader &r)
{
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
        _value[slot] = r.u64();
        _valid.assign(slot, r.boolean());
        _spec.assign(slot, r.boolean());
        _lastWriter[slot] = r.u64();
        _readyAt[slot] = r.u64();
        _kind[slot] = static_cast<PendingKind>(r.u8());
    }
}

} // namespace cpu
} // namespace ff
