/**
 * @file
 * The A-file of Section 3.3: the speculative register file of the
 * advance pipeline. Each register carries, beyond its value:
 *
 *  - V (valid): cleared in the destinations of deferred instructions;
 *    an A-pipe consumer of an invalid register must itself defer.
 *  - S (speculative): set by any A-pipe write (or deferral marking)
 *    that the B-pipe has not yet committed; bounds the repair set on
 *    a B-pipe flush.
 *  - DynID: the dynamic id of the last writer (or deferral marker),
 *    enabling the selective acceptance of B-pipe feedback updates.
 *  - readyAt / kind: in-flight timing of A-pipe-started producers
 *    (loads, multi-cycle ops); an operand that is valid but not yet
 *    ready at dispatch also defers its consumer.
 *
 * Storage is structure-of-arrays: values/writers/timing in dense
 * parallel arrays, V and S as packed bit words. Flush repair scans
 * the (~V | S) words and touches only dirty slots, and the
 * dispatch-path accessors are inline — they run for every operand of
 * every A-pipe slot every cycle.
 */

#ifndef FF_CPU_TWOPASS_AFILE_HH
#define FF_CPU_TWOPASS_AFILE_HH

#include <array>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "cpu/regfile.hh"
#include "cpu/scoreboard.hh"
#include "cpu/state/bitset.hh"

namespace ff
{
namespace cpu
{

/** Speculative register file with V/S/DynID/timing sidecar state. */
class AFile
{
  public:
    AFile() { reset(); }

    /** True if the register holds a usable (V=1) value. */
    bool
    valid(isa::RegId r) const
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "A-file access to unused operand");
        if (r.idx == 0)
            return true; // hardwired registers are always valid
        return _valid.test(slot);
    }

    /** True if the value is available by cycle @p now. */
    bool
    readyBy(isa::RegId r, Cycle now) const
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "A-file access to unused operand");
        if (r.idx == 0)
            return true;
        return _readyAt[slot] <= now;
    }

    /** Producer kind of an in-flight register (stall taxonomy). */
    PendingKind
    kindOf(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return PendingKind::kNone;
        return _kind[slot];
    }

    Cycle
    readyAt(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return 0;
        return _readyAt[slot];
    }

    RegVal
    read(isa::RegId r) const
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "A-file read of unused operand");
        if (r.idx == 0)
            return r.cls == isa::RegClass::kPred ? 1 : 0;
        return _value[slot];
    }

    bool readPred(isa::RegId r) const { return read(r) != 0; }

    DynId
    lastWriter(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return kInvalidDynId;
        return _lastWriter[slot];
    }

    /** An A-pipe instruction computed a result. */
    void
    writeExecuted(isa::RegId r, RegVal v, DynId id, Cycle ready_at,
                  PendingKind kind)
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "A-file write to unused operand");
        if (r.idx == 0)
            return;
        if (r.cls == isa::RegClass::kPred)
            v = v ? 1 : 0;
        _value[slot] = v;
        _valid.set(slot);
        _spec.set(slot);
        _lastWriter[slot] = id;
        _readyAt[slot] = ready_at;
        _kind[slot] = kind;
    }

    /** An instruction deferring to the B-pipe marks its target. */
    void
    markDeferred(isa::RegId r, DynId id)
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "A-file deferral mark on unused operand");
        if (r.idx == 0)
            return;
        _valid.clear(slot);
        _spec.set(slot);
        _lastWriter[slot] = id;
        _readyAt[slot] = 0;
        _kind[slot] = PendingKind::kNone;
    }

    /**
     * B-pipe feedback: accepted only if the register's outstanding
     * invalidation (or write) was by instruction @p id.
     * @return true if the update was applied
     */
    bool
    applyFeedback(isa::RegId r, RegVal v, DynId id)
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "A-file feedback to unused operand");
        if (r.idx == 0)
            return false;
        if (_lastWriter[slot] != id)
            return false; // a younger writer owns this register now
        if (r.cls == isa::RegClass::kPred)
            v = v ? 1 : 0;
        _value[slot] = v;
        _valid.set(slot);
        _spec.clear(slot); // the value is architecturally committed
        _readyAt[slot] = 0;
        _kind[slot] = PendingKind::kNone;
        return true;
    }

    /**
     * A pre-executed instruction retired in the B-pipe: clear the S
     * bit if this register still belongs to it.
     */
    void
    commitMatch(isa::RegId r, DynId id)
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return;
        if (_lastWriter[slot] == id)
            _spec.clear(slot);
    }

    /**
     * Flush repair: every register that is speculative or invalid is
     * restored from the architectural file @p bfile.
     * @return number of registers repaired (for stats)
     */
    unsigned repairFromArch(const RegFile &bfile);

    /**
     * Unconditionally adopts the architectural file @p bfile: every
     * slot value is copied, all entries become valid, committed and
     * idle. repairFromArch() cannot do this — a fresh A-file is
     * all-valid zeros, so its dirty scan would copy nothing. Used by
     * architectural warping, where the B-file itself was just
     * replaced wholesale.
     */
    void syncFromArch(const RegFile &bfile);

    void reset();

    /** True if the entry is speculative (A-written, not committed). */
    bool
    speculative(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return false;
        return _spec.test(slot);
    }

    /** Packed V/S words, for observers and whole-file scans. */
    const PackedBits<kNumRegSlots> &validMask() const { return _valid; }
    const PackedBits<kNumRegSlots> &specMask() const { return _spec; }

    /** Snapshot hooks: the full V/S/DynID/timing sidecar per slot. */
    void save(serial::Writer &w) const;
    void restore(serial::Reader &r);

  private:
    std::array<RegVal, kNumRegSlots> _value;
    std::array<DynId, kNumRegSlots> _lastWriter;
    std::array<Cycle, kNumRegSlots> _readyAt;
    std::array<PendingKind, kNumRegSlots> _kind;
    PackedBits<kNumRegSlots> _valid;
    PackedBits<kNumRegSlots> _spec;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_AFILE_HH
