/**
 * @file
 * The A-file of Section 3.3: the speculative register file of the
 * advance pipeline. Each register carries, beyond its value:
 *
 *  - V (valid): cleared in the destinations of deferred instructions;
 *    an A-pipe consumer of an invalid register must itself defer.
 *  - S (speculative): set by any A-pipe write (or deferral marking)
 *    that the B-pipe has not yet committed; bounds the repair set on
 *    a B-pipe flush.
 *  - DynID: the dynamic id of the last writer (or deferral marker),
 *    enabling the selective acceptance of B-pipe feedback updates.
 *  - readyAt / kind: in-flight timing of A-pipe-started producers
 *    (loads, multi-cycle ops); an operand that is valid but not yet
 *    ready at dispatch also defers its consumer.
 */

#ifndef FF_CPU_TWOPASS_AFILE_HH
#define FF_CPU_TWOPASS_AFILE_HH

#include <array>

#include "common/serialize.hh"
#include "cpu/regfile.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

/** Speculative register file with V/S/DynID/timing sidecar state. */
class AFile
{
  public:
    AFile() { reset(); }

    /** True if the register holds a usable (V=1) value. */
    bool valid(isa::RegId r) const;

    /** True if the value is available by cycle @p now. */
    bool readyBy(isa::RegId r, Cycle now) const;

    /** Producer kind of an in-flight register (stall taxonomy). */
    PendingKind kindOf(isa::RegId r) const;

    Cycle readyAt(isa::RegId r) const;

    RegVal read(isa::RegId r) const;
    bool readPred(isa::RegId r) const { return read(r) != 0; }

    DynId lastWriter(isa::RegId r) const;

    /** An A-pipe instruction computed a result. */
    void writeExecuted(isa::RegId r, RegVal v, DynId id, Cycle ready_at,
                       PendingKind kind);

    /** An instruction deferring to the B-pipe marks its target. */
    void markDeferred(isa::RegId r, DynId id);

    /**
     * B-pipe feedback: accepted only if the register's outstanding
     * invalidation (or write) was by instruction @p id.
     * @return true if the update was applied
     */
    bool applyFeedback(isa::RegId r, RegVal v, DynId id);

    /**
     * A pre-executed instruction retired in the B-pipe: clear the S
     * bit if this register still belongs to it.
     */
    void commitMatch(isa::RegId r, DynId id);

    /**
     * Flush repair: every register that is speculative or invalid is
     * restored from the architectural file @p bfile.
     * @return number of registers repaired (for stats)
     */
    unsigned repairFromArch(const RegFile &bfile);

    void reset();

    /** True if the entry is speculative (A-written, not committed). */
    bool speculative(isa::RegId r) const;

    /** Snapshot hooks: the full V/S/DynID/timing sidecar per slot. */
    void
    save(serial::Writer &w) const
    {
        for (const Entry &e : _e) {
            w.u64(e.value);
            w.boolean(e.valid);
            w.boolean(e.spec);
            w.u64(e.lastWriter);
            w.u64(e.readyAt);
            w.u8(static_cast<std::uint8_t>(e.kind));
        }
    }

    void
    restore(serial::Reader &r)
    {
        for (Entry &e : _e) {
            e.value = r.u64();
            e.valid = r.boolean();
            e.spec = r.boolean();
            e.lastWriter = r.u64();
            e.readyAt = r.u64();
            e.kind = static_cast<PendingKind>(r.u8());
        }
    }

  private:
    struct Entry
    {
        RegVal value = 0;
        bool valid = true;
        bool spec = false;
        DynId lastWriter = kInvalidDynId;
        Cycle readyAt = 0;
        PendingKind kind = PendingKind::kNone;
    };

    std::array<Entry, kNumRegSlots> _e;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_AFILE_HH
