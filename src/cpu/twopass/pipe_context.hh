/**
 * @file
 * The explicit interface between the two-pass core's stage units.
 * TwoPassCpu owns every structure; APipe, BPipe and FeedbackPath see
 * them only through PipeContext references plus the small
 * TwoPassShared block of state both pipes mutate (dynamic-id
 * allocation, the A-pipe halt latch, the conflict-retry fallback
 * set, and the observer attachment). A test can stand up the
 * components by hand, wrap them in a PipeContext, and drive a single
 * stage unit in isolation.
 */

#ifndef FF_CPU_TWOPASS_PIPE_CONTEXT_HH
#define FF_CPU_TWOPASS_PIPE_CONTEXT_HH

#include <unordered_set>

#include "branch/predictor.hh"
#include "cpu/config.hh"
#include "cpu/core/observer.hh"
#include "cpu/frontend.hh"
#include "cpu/model_stats.hh"
#include "cpu/scoreboard.hh"
#include "cpu/twopass/afile.hh"
#include "cpu/twopass/coupling_queue.hh"
#include "memory/alat.hh"
#include "memory/hierarchy.hh"
#include "memory/sparse_memory.hh"
#include "memory/store_buffer.hh"

namespace ff
{
namespace cpu
{

/** State both pipes read and write. */
struct TwoPassShared
{
    DynId nextId = 1;     ///< dynamic-id allocator (A-pipe dispatch)
    bool aHalted = false; ///< A-pipe saw HALT dispatch; flushes clear

    /**
     * Forward-progress guarantee: static loads whose ALAT entries
     * conflicted since the last successful retirement are deferred
     * (executed architecturally in the B-pipe) on re-dispatch. The
     * set grows by one load per flush and clears once the stuck
     * window retires, so a pathological ALAT (or persistent aliasing
     * pattern) cannot livelock the flush loop.
     */
    std::unordered_set<InstIdx> conflictRetry;

    /** Observer the stage units notify; kept in sync by setObserver. */
    CoreObserver *observer = nullptr;
};

/** Reference bundle handed to each stage unit at construction. */
struct PipeContext
{
    const isa::Program &prog;
    const CoreConfig &cfg;
    FrontEnd &fe;
    branch::DirectionPredictor &pred;
    memory::Hierarchy &hier;
    memory::SparseMemory &mem;   ///< architectural memory
    AFile &afile;                ///< speculative register file
    RegFile &bfile;              ///< architectural register file
    Scoreboard &bsb;             ///< B-pipe in-flight producers
    CouplingQueue &cq;
    memory::StoreBuffer &sbuf;
    memory::Alat &alat;
    TwoPassShared &shared;
    TwoPassStats &stats;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_PIPE_CONTEXT_HH
