/**
 * @file
 * The explicit interface between the two-pass core's stage units.
 * TwoPassCpu (via CoreBase) owns every structure; APipe, BPipe and
 * FeedbackPath see the dense per-cycle state through one MachineState
 * reference — the A-file, the B-file and its scoreboard, the coupling
 * queue, and the shared pipe state both pipes mutate (dynamic-id
 * allocation, the A-pipe halt latch, the conflict-retry fallback set,
 * the observer attachment) — plus references to the structural
 * subsystems (front end, hierarchy, store buffer, ALAT). A test can
 * stand up the components by hand, wrap them in a PipeContext, and
 * drive a single stage unit in isolation.
 */

#ifndef FF_CPU_TWOPASS_PIPE_CONTEXT_HH
#define FF_CPU_TWOPASS_PIPE_CONTEXT_HH

#include "branch/predictor.hh"
#include "cpu/config.hh"
#include "cpu/frontend.hh"
#include "cpu/model_stats.hh"
#include "cpu/state/machine_state.hh"
#include "memory/alat.hh"
#include "memory/hierarchy.hh"
#include "memory/sparse_memory.hh"
#include "memory/store_buffer.hh"

namespace ff
{
namespace cpu
{

/** Reference bundle handed to each stage unit at construction. */
struct PipeContext
{
    const isa::Program &prog;
    const CoreConfig &cfg;
    FrontEnd &fe;
    branch::DirectionPredictor &pred;
    memory::Hierarchy &hier;
    memory::SparseMemory &mem; ///< architectural memory
    MachineState &ms;          ///< A-file, B-file/scoreboard, CQ, shared
    memory::StoreBuffer &sbuf;
    memory::Alat &alat;
    TwoPassStats &stats;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_PIPE_CONTEXT_HH
