/**
 * @file
 * The latency-configurable B-to-A feedback path of Section 3.5:
 * committed B-pipe results flow back to the A-file after
 * cfg.feedbackLatency cycles, each update accepted only if the
 * A-file register's outstanding invalidation (or write) was by the
 * same dynamic instruction — the DynID gate that keeps stale
 * feedback from clobbering younger speculative values.
 */

#ifndef FF_CPU_TWOPASS_FEEDBACK_HH
#define FF_CPU_TWOPASS_FEEDBACK_HH

#include <deque>

#include "cpu/config.hh"
#include "cpu/model_stats.hh"
#include "cpu/state/machine_state.hh"
#include "cpu/twopass/afile.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** Deferred B-file-to-A-file update queue. */
class FeedbackPath
{
  public:
    /**
     * @param ms the machine state whose A-file receives updates and
     *        whose architectural B-file values are read at schedule
     *        time (retirement order makes this exact); also carries
     *        the observer attachment for onFeedbackApply events
     */
    FeedbackPath(const CoreConfig &cfg, MachineState &ms,
                 TwoPassStats &stats)
        : _cfg(cfg), _ms(ms), _stats(stats)
    {
    }

    /**
     * Queues one update per destination of @p in, carrying the
     * architectural value as of this retirement: for a nullified
     * instruction that is the (unchanged) older value, which
     * correctly revalidates the conservatively-cleared V bit.
     * No-op when cfg.feedbackEnabled is off (Figure 8's "inf").
     */
    void schedule(const isa::Instruction &in, DynId id, Cycle now);

    /** Applies every update due by @p now, oldest first. */
    void apply(Cycle now);

    /** B-DET flush: drops updates younger than the branch. */
    void squashYoungerThan(DynId boundary);

    /** Conflict flush: drops everything in flight. */
    void clear() { _q.clear(); }

    bool empty() const { return _q.empty(); }
    std::size_t size() const { return _q.size(); }

    /** Snapshot hooks: the pending update queue, oldest first. */
    void
    save(serial::Writer &w) const
    {
        w.u64(_q.size());
        for (const Pending &p : _q) {
            w.u8(static_cast<std::uint8_t>(p.reg.cls));
            w.u8(p.reg.idx);
            w.u64(p.value);
            w.u64(p.id);
            w.u64(p.applyAt);
        }
    }

    void
    restore(serial::Reader &r)
    {
        _q.clear();
        const std::size_t n = r.seq(26);
        for (std::size_t i = 0; i < n; ++i) {
            Pending p;
            p.reg.cls = static_cast<isa::RegClass>(r.u8());
            p.reg.idx = r.u8();
            p.value = r.u64();
            p.id = r.u64();
            p.applyAt = r.u64();
            _q.push_back(p);
        }
    }

  private:
    /** One pending B-to-A update. */
    struct Pending
    {
        isa::RegId reg;
        RegVal value;
        DynId id;
        Cycle applyAt;
    };

    const CoreConfig &_cfg;
    MachineState &_ms;
    TwoPassStats &_stats;
    std::deque<Pending> _q;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_FEEDBACK_HH
