/**
 * @file
 * B-pipe dispatch instruction regrouping (the "2Pre" configuration of
 * Section 3.1): adjacent issue groups at the head of the coupling
 * queue are fused into one retire window when pre-execution has
 * removed the dependences that forced the stop bit — regrouping, but
 * never reordering.
 *
 * extendRetireWindow is a template over the readiness predicate so
 * the B-pipe's per-entry check inlines into the scan; the old
 * std::function indirection showed up in tick-loop profiles.
 */

#ifndef FF_CPU_TWOPASS_REGROUPER_HH
#define FF_CPU_TWOPASS_REGROUPER_HH

#include <array>
#include <bitset>
#include <cstddef>

#include "common/logging.hh"
#include "cpu/regfile.hh"
#include "cpu/twopass/coupling_queue.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** The set of CQ-head entries retiring together this cycle. */
struct RetireWindow
{
    std::size_t entries = 0; ///< CQ entries [0, entries)
    unsigned groups = 0;     ///< original issue groups covered
};

/**
 * The head's full original group — the always-legal retire window.
 * Panics if the queue holds a torn group (the A-pipe dispatches
 * groups atomically, so that would be a simulator bug).
 */
RetireWindow headGroupWindow(const CouplingQueue &cq);

namespace detail
{

/** Mutable resource tally for a window under construction. */
struct WindowResources
{
    unsigned total = 0;
    unsigned alu = 0;
    unsigned mem = 0;
    unsigned fp = 0;
    unsigned br = 0;

    bool
    add(const isa::Instruction &in, const isa::GroupLimits &lim)
    {
        if (total + 1 > lim.issueWidth)
            return false;
        switch (in.unit()) {
          case isa::UnitClass::kAlu:
            if (alu + 1 > lim.aluUnits)
                return false;
            ++alu;
            break;
          case isa::UnitClass::kMem:
            if (mem + 1 > lim.memUnits)
                return false;
            ++mem;
            break;
          case isa::UnitClass::kFp:
            if (fp + 1 > lim.fpUnits)
                return false;
            ++fp;
            break;
          case isa::UnitClass::kBranch:
            if (br + 1 > lim.branchUnits)
                return false;
            ++br;
            break;
        }
        ++total;
        return true;
    }
};

} // namespace detail

/**
 * Extends @p w by fusing subsequent fully-queued groups, never
 * reordering. A group fuses only while:
 *  - it is completely in the CQ and was enqueued before @p now (the
 *    A-pipe stays a cycle ahead),
 *  - combined resource usage fits @p limits,
 *  - no fused instruction sources a register written by a *deferred*
 *    instruction earlier in the window (those values materialize only
 *    when the deferred producer executes, so the stop bit is still
 *    load-bearing),
 *  - every entry of the group is itself ready to retire this cycle,
 *    as judged by @p entry_ready (called with the entry's logical CQ
 *    index; dangling results arrived, deferred operands ready) —
 *    fusing must never stall work that could have retired alone,
 *  - no *pre-executed load* fuses behind a deferred store (its
 *    merge-time ALAT check would run before the store's
 *    invalidations apply); deferred loads and non-loads may,
 *  - the window so far contains no unresolved (deferred) branch and
 *    no halt.
 *
 * The caller must have established that @p w itself is ready.
 */
template <typename EntryReady>
RetireWindow
extendRetireWindow(const CouplingQueue &cq, const isa::Program &prog,
                   const isa::GroupLimits &limits, Cycle now,
                   RetireWindow w, EntryReady &&entry_ready)
{
    // Window-so-far properties for the fusion rules.
    detail::WindowResources res;
    std::bitset<kNumRegSlots> deferred_writes;
    bool has_deferred_store = false;
    bool blocked = false;
    for (std::size_t k = 0; k < w.entries; ++k) {
        const isa::Instruction &in = prog.inst(cq.idx(k));
        // The head group is taken as-is: it was a legal issue group,
        // so add() cannot overflow on it.
        res.add(in, limits);
        if (cq.deferred(k)) {
            if (in.isBranch()) {
                blocked = true;
                break;
            }
            if (in.isStore())
                has_deferred_store = true;
            std::array<isa::RegId, 2> dsts;
            unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d)
                deferred_writes.set(regSlot(dsts[d]));
        }
        if (in.isHalt()) {
            blocked = true;
            break;
        }
    }

    while (!blocked) {
        // Locate the next group [w.entries, g_end] fully in the CQ.
        std::size_t g_end = w.entries;
        bool complete = false;
        while (g_end < cq.size()) {
            if (cq.groupEnd(g_end)) {
                complete = true;
                break;
            }
            ++g_end;
        }
        if (!complete)
            break;
        if (cq.enqueuedAt(w.entries) >= now)
            break; // the A-pipe must stay a cycle ahead

        // Trial-fuse: all rules must pass before committing.
        detail::WindowResources trial = res;
        std::bitset<kNumRegSlots> trial_deferred = deferred_writes;
        bool trial_def_store = has_deferred_store;
        bool ok = true;
        bool trial_blocked = false;
        for (std::size_t k = w.entries; k <= g_end; ++k) {
            const isa::Instruction &in = prog.inst(cq.idx(k));
            if (!trial.add(in, limits) || !entry_ready(k)) {
                ok = false;
                break;
            }
            // A pre-executed load's merge-time ALAT check must see
            // every older store invalidation: it cannot fuse behind
            // a deferred store.
            if (trial_def_store && cq.isLoad(k) && cq.preExecuted(k)) {
                ok = false;
                break;
            }
            std::array<isa::RegId, 4> srcs;
            unsigned ns = in.sources(srcs);
            for (unsigned s = 0; s < ns && ok; ++s) {
                const int slot = regSlot(srcs[s]);
                if (slot >= 0 && srcs[s].idx != 0 &&
                    trial_deferred.test(slot)) {
                    ok = false; // still dependent on a deferred result
                }
            }
            if (!ok)
                break;
            if (cq.deferred(k)) {
                if (in.isBranch())
                    trial_blocked = true; // unresolved control
                if (in.isStore())
                    trial_def_store = true;
                std::array<isa::RegId, 2> dsts;
                unsigned nd = in.destinations(dsts);
                for (unsigned d = 0; d < nd; ++d)
                    trial_deferred.set(regSlot(dsts[d]));
            }
            if (in.isHalt())
                trial_blocked = true;
        }
        if (!ok)
            break;
        res = trial;
        deferred_writes = trial_deferred;
        has_deferred_store = trial_def_store;
        blocked = trial_blocked;
        w.entries = g_end + 1;
        ++w.groups;
    }
    return w;
}

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_REGROUPER_HH
