/**
 * @file
 * B-pipe dispatch instruction regrouping (the "2Pre" configuration of
 * Section 3.1): adjacent issue groups at the head of the coupling
 * queue are fused into one retire window when pre-execution has
 * removed the dependences that forced the stop bit — regrouping, but
 * never reordering.
 */

#ifndef FF_CPU_TWOPASS_REGROUPER_HH
#define FF_CPU_TWOPASS_REGROUPER_HH

#include <cstddef>
#include <functional>

#include "cpu/twopass/coupling_queue.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** The set of CQ-head entries retiring together this cycle. */
struct RetireWindow
{
    std::size_t entries = 0; ///< CQ entries [0, entries)
    unsigned groups = 0;     ///< original issue groups covered
};

/**
 * The head's full original group — the always-legal retire window.
 * Panics if the queue holds a torn group (the A-pipe dispatches
 * groups atomically, so that would be a simulator bug).
 */
RetireWindow headGroupWindow(const CouplingQueue &cq);

/**
 * Extends @p base by fusing subsequent fully-queued groups, never
 * reordering. A group fuses only while:
 *  - it is completely in the CQ and was enqueued before @p now (the
 *    A-pipe stays a cycle ahead),
 *  - combined resource usage fits @p limits,
 *  - no fused instruction sources a register written by a *deferred*
 *    instruction earlier in the window (those values materialize only
 *    when the deferred producer executes, so the stop bit is still
 *    load-bearing),
 *  - every entry of the group is itself ready to retire this cycle,
 *    as judged by @p entry_ready (dangling results arrived; deferred
 *    operands ready) — fusing must never stall work that could have
 *    retired alone,
 *  - no *pre-executed load* fuses behind a deferred store (its
 *    merge-time ALAT check would run before the store's
 *    invalidations apply); deferred loads and non-loads may,
 *  - the window so far contains no unresolved (deferred) branch and
 *    no halt.
 *
 * The caller must have established that @p base itself is ready.
 */
RetireWindow extendRetireWindow(
    const CouplingQueue &cq, const isa::Program &prog,
    const isa::GroupLimits &limits, Cycle now, RetireWindow base,
    const std::function<bool(const CqEntry &)> &entry_ready);

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_REGROUPER_HH
