/**
 * @file
 * The flea-flicker two-pass pipeline (Sections 3.1–3.6): an advance
 * A-pipe that never stalls on unready operands (deferring such
 * instructions and their dependence successors through the coupling
 * queue) and an architectural backup B-pipe that merges pre-executed
 * results, scoreboards dangling (in-flight) ones, executes deferred
 * instructions, detects store conflicts with a DynID-indexed ALAT,
 * resolves deferred branch mispredictions (B-DET), and feeds
 * committed values back to the A-file over a latency-configurable
 * path.
 */

#ifndef FF_CPU_TWOPASS_TWOPASS_CPU_HH
#define FF_CPU_TWOPASS_TWOPASS_CPU_HH

#include <deque>
#include <unordered_set>

#include <memory>

#include "cpu/config.hh"
#include "cpu/cpu.hh"
#include "cpu/frontend.hh"
#include "cpu/scoreboard.hh"
#include "cpu/twopass/afile.hh"
#include "cpu/twopass/coupling_queue.hh"
#include "common/stats.hh"
#include "cpu/twopass/regrouper.hh"
#include "memory/alat.hh"
#include "memory/store_buffer.hh"

namespace ff
{
namespace cpu
{

// TwoPassStats lives in cpu/model_stats.hh (below cpu.hh) so the
// abstract model can expose the collectStats() hook.

/** The two-pass pipelined core. */
class TwoPassCpu : public CpuModel
{
  public:
    TwoPassCpu(const isa::Program &prog, const CoreConfig &cfg);
    /** The model holds a reference: temporaries would dangle. */
    TwoPassCpu(isa::Program &&, const CoreConfig &) = delete;

    RunResult run(std::uint64_t max_cycles) override;

    const RegFile &archRegs() const override { return _bfile; }
    const memory::SparseMemory &memState() const override
    {
        return _mem;
    }
    const CycleAccounting &cycleAccounting() const override
    {
        return _acct;
    }
    memory::Hierarchy &hierarchy() override { return _hier; }
    const branch::DirectionPredictor &predictor() const override
    {
        return *_pred;
    }

    const TwoPassStats &stats() const { return _stats; }
    const memory::AlatStats &alatStats() const { return _alat.stats(); }

    void
    collectStats(ModelStats &out) const override
    {
        out.twopass = _stats;
        out.alat = _alat.stats();
    }

    std::string statsReport() const override;

    /** Test access to internal structures. */
    const AFile &afile() const { return _afile; }
    const CouplingQueue &couplingQueue() const { return _cq; }
    const memory::StoreBuffer &storeBuffer() const { return _sbuf; }

  private:
    /** One pending B-to-A feedback update. */
    struct Feedback
    {
        isa::RegId reg;
        RegVal value;
        DynId id;
        Cycle applyAt;
    };

    // ---- per-cycle phases -------------------------------------------
    void applyFeedback(Cycle now);
    CycleClass stepBpipe(Cycle now, RunResult &res);
    void stepApipe(Cycle now);

    // ---- A-pipe helpers -----------------------------------------------
    /** True when ablation A2 says the A-pipe should hold this group. */
    bool anticipableStall(const FetchedGroup &g, Cycle now) const;
    void dispatchGroup(const FetchedGroup &g, Cycle now);

    // ---- B-pipe helpers -----------------------------------------------
    /**
     * Scans the retire window for the first blocker.
     * @return kUnstalled when the whole window may retire
     */
    CycleClass prescanWindow(const RetireWindow &w, Cycle now) const;
    void applyWindow(const RetireWindow &w, Cycle now, RunResult &res);

    /** Queues feedback for every potential destination of @p in. */
    void scheduleFeedback(const isa::Instruction &in, DynId id,
                          Cycle now);

    /**
     * Debug invariant (cfg.selfCheckInterval): every valid,
     * non-speculative A-file register must equal its B-file copy —
     * the structural statement of "the B-pipe trusts the A-pipe".
     */
    void checkAFileCoherence(Cycle now) const;

    // ---- flush routines -----------------------------------------------
    /** B-DET misprediction flush (Sec. 3.6). */
    void bDetFlush(const CqEntry &branch, std::size_t branch_pos,
                   bool taken, Cycle now);
    /** Store-conflict flush (Sec. 3.4). */
    void conflictFlush(const CqEntry &offender, Cycle now);

    const isa::Program &_prog;
    CoreConfig _cfg;
    memory::SparseMemory _mem;       ///< architectural memory
    memory::Hierarchy _hier;
    std::unique_ptr<branch::DirectionPredictor> _pred;
    FrontEnd _fe;

    AFile _afile;                    ///< speculative register file
    RegFile _bfile;                  ///< architectural register file
    Scoreboard _bsb;                 ///< B-pipe in-flight producers
    CouplingQueue _cq;
    memory::StoreBuffer _sbuf;
    memory::Alat _alat;
    std::deque<Feedback> _feedback;

    DynId _nextId = 1;
    bool _aHalted = false;           ///< A-pipe saw HALT dispatch

    /**
     * Forward-progress guarantee: static loads whose ALAT entries
     * conflicted since the last successful retirement are deferred
     * (executed architecturally in the B-pipe) on re-dispatch. The
     * set grows by one load per flush and clears once the stuck
     * window retires, so a pathological ALAT (or persistent aliasing
     * pattern) cannot livelock the flush loop.
     */
    std::unordered_set<InstIdx> _conflictRetry;

    // ---- A-pipe issue moderation (Sec. 3.5 / future work) ----------
    /** Ring of the last 64 dispatch outcomes (1 = deferred). */
    std::uint64_t _deferHistory = 0;
    unsigned _deferHistoryCount = 0; ///< deferred bits in the ring
    bool _throttled = false;         ///< dispatch paused, draining

    CycleAccounting _acct;
    TwoPassStats _stats;
    /** Per-cycle coupling-queue occupancy (A-pipe lead histogram). */
    stats::Distribution _cqDepth{0, 257, 16};
    bool _ran = false;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_TWOPASS_CPU_HH
