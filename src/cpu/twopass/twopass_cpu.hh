/**
 * @file
 * The flea-flicker two-pass pipeline (Sections 3.1–3.6): an advance
 * A-pipe that never stalls on unready operands (deferring such
 * instructions and their dependence successors through the coupling
 * queue) and an architectural backup B-pipe that merges pre-executed
 * results, scoreboards dangling (in-flight) ones, executes deferred
 * instructions, detects store conflicts with a DynID-indexed ALAT,
 * resolves deferred branch mispredictions (B-DET), and feeds
 * committed values back to the A-file over a latency-configurable
 * path. TwoPassCpu itself is a thin composition over the CoreBase
 * kernel: the dense per-cycle state (A-file, B-file, scoreboard,
 * coupling queue) lives in CoreBase's MachineState; this class adds
 * the two-pass-only structures, wires everything into a PipeContext,
 * and sequences the APipe / BPipe / FeedbackPath stage units each
 * tick.
 */

#ifndef FF_CPU_TWOPASS_TWOPASS_CPU_HH
#define FF_CPU_TWOPASS_TWOPASS_CPU_HH

#include "common/stats.hh"
#include "cpu/core/core_base.hh"
#include "cpu/scoreboard.hh"
#include "cpu/twopass/apipe.hh"
#include "cpu/twopass/bpipe.hh"
#include "cpu/twopass/feedback.hh"
#include "cpu/twopass/pipe_context.hh"
#include "memory/alat.hh"
#include "memory/store_buffer.hh"

namespace ff
{
namespace cpu
{

// TwoPassStats lives in cpu/model_stats.hh (below cpu.hh) so the
// abstract model can expose the collectStats() hook.

/** The two-pass pipelined core. */
class TwoPassCpu : public CoreBase
{
  public:
    TwoPassCpu(const isa::Program &prog, const CoreConfig &cfg,
               bool load_image = true);

    RunResult
    run(std::uint64_t max_cycles) final
    {
        return runLoop(
            [this](Cycle now, RunResult &res) { return tick(now, res); },
            max_cycles);
    }

    const RegFile &archRegs() const override { return _ms.regs; }

    const TwoPassStats &stats() const { return _stats; }
    const memory::AlatStats &alatStats() const { return _alat.stats(); }

    void
    collectStats(ModelStats &out) const override
    {
        out.twopass = _stats;
        out.alat = _alat.stats();
    }

    std::string statsReport() const override;

    /** Adds the two-pass structures to the common occupancy probe. */
    OccupancySample
    occupancy(Cycle now) const override
    {
        OccupancySample s = CoreBase::occupancy(now);
        s.cqDepth = static_cast<unsigned>(_ms.cq.size());
        s.pendingFeedback = static_cast<unsigned>(_feedback.size());
        return s;
    }

    /** Test access to internal structures. */
    const AFile &afile() const { return _ms.afile; }
    const CouplingQueue &couplingQueue() const { return _ms.cq; }
    const memory::StoreBuffer &storeBuffer() const { return _sbuf; }

  protected:
    void saveModelState(serial::Writer &w) const override;
    void restoreModelState(serial::Reader &r) override;

    /** Architectural warp replaced the B-file; adopt it wholesale. */
    void warpModelState() override { _ms.afile.syncFromArch(_ms.regs); }

  private:
    CycleClass tick(Cycle now, RunResult &res);

    /**
     * Debug invariant (cfg.selfCheckInterval): every valid,
     * non-speculative A-file register must equal its B-file copy —
     * the structural statement of "the B-pipe trusts the A-pipe".
     */
    void checkAFileCoherence(Cycle now) const;

    memory::StoreBuffer _sbuf;
    memory::Alat _alat;
    TwoPassStats _stats;

    // The context must follow every structure it references; the
    // stage units must follow the context (and FeedbackPath).
    PipeContext _ctx;
    FeedbackPath _feedback;
    APipe _apipe;
    BPipe _bpipe;

    /** Per-cycle coupling-queue occupancy (A-pipe lead histogram). */
    stats::Distribution _cqDepth{0, 257, 16};
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_TWOPASS_TWOPASS_CPU_HH
