/**
 * @file
 * A checkpoint-based run-ahead in-order core in the style the paper
 * synthesizes from Dundas and Mutlu (Sec. 2): when the issue stage
 * blocks on a load, the machine checkpoints register state and keeps
 * executing speculatively — propagating INV marks through
 * miss-dependent results, prefetching down the instruction stream,
 * and buffering stores in a discardable overlay — until the blocking
 * load returns, then restores the checkpoint and resumes normally,
 * discarding all run-ahead results.
 *
 * This is the comparison point against which two-pass pipelining's
 * retention of pre-executed work is evaluated (bench_runahead).
 */

#ifndef FF_CPU_RUNAHEAD_RUNAHEAD_CPU_HH
#define FF_CPU_RUNAHEAD_RUNAHEAD_CPU_HH

#include <array>
#include <map>

#include <memory>

#include "cpu/config.hh"
#include "cpu/cpu.hh"
#include "cpu/frontend.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

// RunaheadStats lives in cpu/model_stats.hh (below cpu.hh) so the
// abstract model can expose the collectStats() hook.

/** In-order core with run-ahead pre-execution under load stalls. */
class RunaheadCpu : public CpuModel
{
  public:
    RunaheadCpu(const isa::Program &prog, const CoreConfig &cfg);
    /** The model holds a reference: temporaries would dangle. */
    RunaheadCpu(isa::Program &&, const CoreConfig &) = delete;

    RunResult run(std::uint64_t max_cycles) override;

    const RegFile &archRegs() const override { return _regs; }
    const memory::SparseMemory &memState() const override
    {
        return _mem;
    }
    const CycleAccounting &cycleAccounting() const override
    {
        return _acct;
    }
    memory::Hierarchy &hierarchy() override { return _hier; }
    const branch::DirectionPredictor &predictor() const override
    {
        return *_pred;
    }

    const RunaheadStats &runaheadStats() const { return _raStats; }

    void
    collectStats(ModelStats &out) const override
    {
        out.runahead = _raStats;
    }

    std::string statsReport() const override;

  private:
    CycleClass tryIssue(Cycle now, RunResult &res);
    CycleClass stallClassFor(isa::RegId blocking) const;

    /** Enters run-ahead: checkpoint and mark pending regs INV. */
    void enterRunahead(Cycle now, Cycle exit_at);
    /** Exits run-ahead: restore the checkpoint and refetch. */
    void exitRunahead(Cycle now);
    /** One cycle of run-ahead pre-execution. */
    void runaheadStep(Cycle now);

    const isa::Program &_prog;
    CoreConfig _cfg;
    memory::SparseMemory _mem;
    memory::Hierarchy _hier;
    std::unique_ptr<branch::DirectionPredictor> _pred;
    FrontEnd _fe;
    RegFile _regs;
    Scoreboard _sb;
    CycleAccounting _acct;
    RunaheadStats _raStats;

    // ---- run-ahead mode state ---------------------------------------
    bool _inRunahead = false;
    Cycle _raExitAt = 0;
    InstIdx _raResumePc = 0;
    RegFile _raRegs;                       ///< speculative copy
    std::array<bool, kNumRegSlots> _raInv{}; ///< INV marks
    Scoreboard _raSb;                      ///< run-ahead load timing
    std::map<Addr, std::uint8_t> _raStoreOverlay;

    bool _ran = false;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_RUNAHEAD_RUNAHEAD_CPU_HH
