/**
 * @file
 * A checkpoint-based run-ahead in-order core in the style the paper
 * synthesizes from Dundas and Mutlu (Sec. 2): when the issue stage
 * blocks on a load, the machine checkpoints register state and keeps
 * executing speculatively — propagating INV marks through
 * miss-dependent results, prefetching down the instruction stream,
 * and buffering stores in a discardable overlay — until the blocking
 * load returns, then restores the checkpoint and resumes normally,
 * discarding all run-ahead results.
 *
 * The architectural file/scoreboard and the run-ahead shadow copies
 * (checkpoint file, INV bitset, shadow scoreboard) all live in
 * CoreBase's MachineState; checkpointing copies only the slots dirty
 * since the last episode instead of the whole file.
 *
 * This is the comparison point against which two-pass pipelining's
 * retention of pre-executed work is evaluated (bench_runahead).
 */

#ifndef FF_CPU_RUNAHEAD_RUNAHEAD_CPU_HH
#define FF_CPU_RUNAHEAD_RUNAHEAD_CPU_HH

#include <map>

#include "cpu/core/core_base.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

// RunaheadStats lives in cpu/model_stats.hh (below cpu.hh) so the
// abstract model can expose the collectStats() hook.

/** In-order core with run-ahead pre-execution under load stalls. */
class RunaheadCpu : public CoreBase
{
  public:
    RunaheadCpu(const isa::Program &prog, const CoreConfig &cfg,
                bool load_image = true);

    RunResult
    run(std::uint64_t max_cycles) final
    {
        return runLoop(
            [this](Cycle now, RunResult &res) { return tick(now, res); },
            max_cycles);
    }

    const RegFile &archRegs() const override { return _ms.regs; }

    const RunaheadStats &runaheadStats() const { return _raStats; }

    void
    collectStats(ModelStats &out) const override
    {
        out.runahead = _raStats;
    }

    std::string statsReport() const override;

  protected:
    void saveModelState(serial::Writer &w) const override;
    void restoreModelState(serial::Reader &r) override;

  private:
    CycleClass tick(Cycle now, RunResult &res);

    CycleClass tryIssue(Cycle now, RunResult &res);

    /** Enters run-ahead: checkpoint and mark pending regs INV. */
    void enterRunahead(Cycle now, Cycle exit_at);
    /** Exits run-ahead: restore the checkpoint and refetch. */
    void exitRunahead(Cycle now);
    /** One cycle of run-ahead pre-execution. */
    void runaheadStep(Cycle now);

    RunaheadStats _raStats;

    // ---- run-ahead mode state ---------------------------------------
    bool _inRunahead = false;
    Cycle _raExitAt = 0;
    InstIdx _raResumePc = 0;
    std::map<Addr, std::uint8_t> _raStoreOverlay;

    /** Consecutive load-stall cycles in normal mode (entry trigger). */
    unsigned _stallStreak = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_RUNAHEAD_RUNAHEAD_CPU_HH
