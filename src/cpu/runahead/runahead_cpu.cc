#include "cpu/runahead/runahead_cpu.hh"

#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "cpu/exec.hh"
#include "cpu/issue_check.hh"
#include "cpu/stats_report.hh"

namespace ff
{
namespace cpu
{

using isa::Instruction;

RunaheadCpu::RunaheadCpu(const isa::Program &prog,
                         const CoreConfig &cfg, bool load_image)
    : CoreBase(prog, cfg, memory::Initiator::kRunahead, load_image)
{
}

CycleClass
RunaheadCpu::tick(Cycle now, RunResult &res)
{
    if (_inRunahead) {
        if (now >= _raExitAt) {
            // The refetch begins; this cycle is still a stall.
            exitRunahead(now);
        } else {
            runaheadStep(now);
        }
        return CycleClass::kLoadStall;
    }

    const CycleClass cls = tryIssue(now, res);
    if (cls == CycleClass::kLoadStall) {
        ++_stallStreak;
        if (_stallStreak > _cfg.runaheadEntryDelay) {
            // Find when the blocking producer completes.
            Cycle exit_at = now + 1;
            const FetchedGroup &g = _fe.head();
            for (InstIdx i = g.leader; i < g.end; ++i) {
                const Instruction &in = _prog.inst(i);
                std::array<isa::RegId, 4> srcs;
                unsigned ns = in.sources(srcs);
                for (unsigned s = 0; s < ns; ++s) {
                    if (!_ms.sb.ready(srcs[s], now)) {
                        exit_at = std::max(exit_at,
                                           _ms.sb.readyAt(srcs[s]));
                    }
                }
            }
            enterRunahead(now, exit_at);
            _stallStreak = 0;
        }
    } else {
        _stallStreak = 0;
    }
    return cls;
}

CycleClass
RunaheadCpu::tryIssue(Cycle now, RunResult &res)
{
    // Normal-mode issue: identical semantics to the baseline core.
    if (!_fe.headReady(now))
        return CycleClass::kFrontEndStall;

    const FetchedGroup &g = _fe.head();
    const InstIdx leader = g.leader;
    const InstIdx end = g.end;

    const CycleClass stall = checkGroupIssue(
        _prog, leader, end, _ms.sb, _ms.regs, _hier, _cfg, now);
    if (stall != CycleClass::kUnstalled)
        return stall;

    // The group issues now: consume it from the front end before
    // executing, so a mispredict redirect (which clears the fetch
    // queue) does not race with the head pop.
    const FetchedGroup group = g;
    _fe.pop();

    struct SlotOperands
    {
        bool qpred;
        RegVal s1;
        RegVal s2;
    };
    std::vector<SlotOperands> ops(end - leader);
    for (InstIdx i = leader; i < end; ++i) {
        const Instruction &in = _prog.inst(i);
        SlotOperands &o = ops[i - leader];
        o.qpred = _ms.regs.readPred(in.qpred);
        o.s1 = in.src1.valid() ? _ms.regs.read(in.src1) : 0;
        o.s2 = operandSrc2(
            in, in.src2.valid() ? _ms.regs.read(in.src2) : 0);
    }

    for (InstIdx i = leader; i < end; ++i) {
        const Instruction &in = _prog.inst(i);
        const SlotOperands &o = ops[i - leader];
        ++res.instsRetired;
        if (in.isHalt()) {
            res.halted = true;
            break;
        }
        EvalResult ev = evaluate(in, o.qpred, o.s1, o.s2);
        if (ev.isBranch) {
            _pred->update(group.prediction, ev.taken);
            if (ev.taken != group.predictedTaken) {
                const InstIdx target =
                    ev.taken ? static_cast<InstIdx>(in.imm) : end;
                _fe.redirect(target, now + 1 + _cfg.branchResolveDelay);
            }
            continue;
        }
        if (!ev.predTrue)
            continue;
        if (ev.isMemAccess) {
            if (in.isLoad()) {
                const memory::AccessResult ar =
                    _hier.access(memory::AccessKind::kLoad,
                                 memory::Initiator::kRunahead, ev.addr,
                                 now);
                ev.dstVal =
                    loadExtend(in.op, _mem.read(ev.addr, ev.size));
                _ms.regs.write(in.dst, ev.dstVal);
                _ms.sb.setPending(in.dst, now + ar.latency,
                                  PendingKind::kLoad);
                continue;
            }
            _mem.write(ev.addr, ev.storeVal, ev.size);
            _hier.access(memory::AccessKind::kStore,
                         memory::Initiator::kRunahead, ev.addr, now);
            continue;
        }
        const unsigned lat = in.execLatency();
        if (ev.writesDst) {
            _ms.regs.write(in.dst, ev.dstVal);
            if (lat > 1) {
                _ms.sb.setPending(in.dst, now + lat,
                                  PendingKind::kNonLoad);
            }
        }
        if (ev.writesDst2) {
            _ms.regs.write(in.dst2, ev.dst2Val);
            if (lat > 1) {
                _ms.sb.setPending(in.dst2, now + lat,
                                  PendingKind::kNonLoad);
            }
        }
    }

    ++res.groupsRetired;
    notifyGroupRetire(now, leader, static_cast<unsigned>(end - leader));
    return CycleClass::kUnstalled;
}

void
RunaheadCpu::enterRunahead(Cycle now, Cycle exit_at)
{
    ++_raStats.episodes;
    _inRunahead = true;
    _raExitAt = exit_at;
    _raResumePc = _fe.head().leader;
    // Checkpoint: only slots written since the last episode differ
    // between the two files; the merge-copy skips the rest.
    _ms.checkpointRegsToRa();
    _ms.raInv.clearAll();
    // The miss (and friends) are unknown: every slot still pending is
    // INV. The busy bitset is a superset of "pending now", filtered
    // by ready time.
    _ms.sb.forEachBusy([&](unsigned slot) {
        if (_ms.sb.readyAtSlot(slot) > now)
            _ms.raInv.set(slot);
    });
    _ms.raSb.clear();
    _raStoreOverlay.clear();
    ff_trace(trace::kExec, now, "RA-IN",
             "resume @" << _raResumePc << " exit@" << exit_at);
}

void
RunaheadCpu::exitRunahead(Cycle now)
{
    _inRunahead = false;
    _raStoreOverlay.clear();
    // All run-ahead results are discarded; architectural state was
    // never modified. Refetch from the stalled group.
    _fe.redirect(_raResumePc, now + 1);
    ff_trace(trace::kExec, now, "RA-OUT", "refetch @" << _raResumePc);
}

void
RunaheadCpu::runaheadStep(Cycle now)
{
    ++_raStats.runaheadCycles;
    if (!_fe.headReady(now))
        return;
    const FetchedGroup g = _fe.head();
    _fe.pop();

    auto inv = [&](isa::RegId r) {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return false;
        return _ms.raInv.test(slot) || !_ms.raSb.ready(r, now);
    };
    auto mark_inv = [&](isa::RegId r) {
        const int slot = regSlot(r);
        if (slot >= 0 && r.idx != 0) {
            _ms.raInv.set(slot);
            ++_raStats.invResults;
        }
    };
    auto mark_valid = [&](isa::RegId r, RegVal v) {
        const int slot = regSlot(r);
        if (slot >= 0 && r.idx != 0) {
            _ms.raInv.clear(slot);
            _ms.raRegs.write(r, v);
        }
    };

    for (InstIdx i = g.leader; i < g.end; ++i) {
        const Instruction &in = _prog.inst(i);
        ++_raStats.runaheadInsts;
        if (in.isHalt())
            return; // idle out the rest of the episode

        std::array<isa::RegId, 2> dsts;
        const unsigned nd = in.destinations(dsts);

        if (inv(in.qpred)) {
            for (unsigned d = 0; d < nd; ++d)
                mark_inv(dsts[d]);
            continue;
        }
        const bool qp = _ms.raRegs.readPred(in.qpred);

        if (in.isBranch()) {
            // Resolve locally when possible; never trains the real
            // predictor (results are discarded at exit).
            const bool taken = qp;
            if (taken != g.predictedTaken) {
                const InstIdx target =
                    taken ? static_cast<InstIdx>(in.imm) : g.end;
                _fe.redirect(target, now + 1 + _cfg.branchResolveDelay);
            }
            return; // branches are group-final
        }
        if (!qp)
            continue;

        bool operands_inv = false;
        if (in.src1.valid() && inv(in.src1))
            operands_inv = true;
        if (in.src2.valid() && !in.src2IsImm && inv(in.src2))
            operands_inv = true;
        if (operands_inv) {
            for (unsigned d = 0; d < nd; ++d)
                mark_inv(dsts[d]);
            continue;
        }

        const RegVal s1 =
            in.src1.valid() ? _ms.raRegs.read(in.src1) : 0;
        const RegVal s2 = operandSrc2(
            in, in.src2.valid() ? _ms.raRegs.read(in.src2) : 0);
        EvalResult ev = evaluate(in, qp, s1, s2);

        if (ev.isMemAccess) {
            if (in.isLoad()) {
                if (!_hier.loadSlotAvailable(now)) {
                    mark_inv(in.dst);
                    continue;
                }
                ++_raStats.runaheadLoads;
                const memory::AccessResult ar =
                    _hier.access(memory::AccessKind::kLoad,
                                 memory::Initiator::kRunahead, ev.addr,
                                 now);
                std::uint64_t raw = 0;
                for (unsigned b = 0; b < ev.size; ++b) {
                    auto it = _raStoreOverlay.find(ev.addr + b);
                    const std::uint8_t byte =
                        it != _raStoreOverlay.end()
                            ? it->second
                            : _mem.readByte(ev.addr + b);
                    raw |= static_cast<std::uint64_t>(byte) << (8 * b);
                }
                mark_valid(in.dst, loadExtend(in.op, raw));
                _ms.raSb.setPending(in.dst, now + ar.latency,
                                    PendingKind::kLoad);
            } else {
                for (unsigned b = 0; b < ev.size; ++b) {
                    _raStoreOverlay[ev.addr + b] =
                        static_cast<std::uint8_t>(ev.storeVal >> (8 * b));
                }
            }
            continue;
        }
        if (ev.writesDst)
            mark_valid(in.dst, ev.dstVal);
        if (ev.writesDst2)
            mark_valid(in.dst2, ev.dst2Val);
    }
}

std::string
RunaheadCpu::statsReport() const
{
    stats::StatGroup g("runahead");
    g.addScalar("episodes") += _raStats.episodes;
    g.addScalar("runahead_cycles") += _raStats.runaheadCycles;
    g.addScalar("runahead_loads") += _raStats.runaheadLoads;
    g.addScalar("runahead_insts") += _raStats.runaheadInsts;
    g.addScalar("inv_results") += _raStats.invResults;
    return commonStatsReport(_acct, _pred->stats(),
                             _hier.accessStats()) +
           g.dump();
}

void
RunaheadCpu::saveModelState(serial::Writer &w) const
{
    _ms.regs.save(w);
    _ms.sb.save(w);
    w.u64(_raStats.episodes);
    w.u64(_raStats.runaheadCycles);
    w.u64(_raStats.runaheadLoads);
    w.u64(_raStats.runaheadInsts);
    w.u64(_raStats.invResults);

    w.boolean(_inRunahead);
    w.u64(_raExitAt);
    w.u32(_raResumePc);
    _ms.raRegs.save(w);
    // One boolean per slot: the packed INV bitset keeps the original
    // per-slot byte encoding on the wire.
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot)
        w.boolean(_ms.raInv.test(slot));
    _ms.raSb.save(w);
    w.u64(_raStoreOverlay.size());
    for (const auto &[addr, byte] : _raStoreOverlay) {
        w.u64(addr);
        w.u8(byte);
    }
    w.u32(_stallStreak);
}

void
RunaheadCpu::restoreModelState(serial::Reader &r)
{
    _ms.regs.restore(r);
    _ms.sb.restore(r);
    _raStats.episodes = r.u64();
    _raStats.runaheadCycles = r.u64();
    _raStats.runaheadLoads = r.u64();
    _raStats.runaheadInsts = r.u64();
    _raStats.invResults = r.u64();

    _inRunahead = r.boolean();
    _raExitAt = r.u64();
    _raResumePc = r.u32();
    _ms.raRegs.restore(r);
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot)
        _ms.raInv.assign(slot, r.boolean());
    _ms.raSb.restore(r);
    _raStoreOverlay.clear();
    const std::size_t overlay = r.seq(9);
    for (std::size_t i = 0; i < overlay; ++i) {
        const Addr addr = r.u64();
        _raStoreOverlay[addr] = r.u8();
    }
    _stallStreak = r.u32();
}

} // namespace cpu
} // namespace ff
