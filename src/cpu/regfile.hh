/**
 * @file
 * Architectural register state: 64 integer, 64 FP and 64 predicate
 * registers in one dense array (FP values stored as raw IEEE-754
 * bits). Register zero of each class is hardwired (r0 = 0, f0 = +0.0,
 * p0 = true): reads return the constant and writes are rejected by
 * the program validator.
 */

#ifndef FF_CPU_REGFILE_HH
#define FF_CPU_REGFILE_HH

#include <array>
#include <cstdint>

#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace ff
{
namespace cpu
{

/** Total dense register slots across all classes. */
inline constexpr unsigned kNumRegSlots =
    isa::kNumIntRegs + isa::kNumFpRegs + isa::kNumPredRegs;

/**
 * Dense slot index of a register id; -1 for RegClass::kNone.
 * Shared by the register files, scoreboards and the A-file.
 */
inline int
regSlot(isa::RegId r)
{
    switch (r.cls) {
      case isa::RegClass::kInt:
        return r.idx;
      case isa::RegClass::kFp:
        return isa::kNumIntRegs + r.idx;
      case isa::RegClass::kPred:
        return isa::kNumIntRegs + isa::kNumFpRegs + r.idx;
      case isa::RegClass::kNone:
        return -1;
    }
    return -1;
}

/** Inverse of regSlot, for diagnostics. */
isa::RegId slotReg(unsigned slot);

/** Architectural (or speculative) register value state. */
class RegFile
{
  public:
    RegFile() { reset(); }

    /** Reads a register; hardwired zeros included. */
    RegVal read(isa::RegId r) const;

    /** Reads a predicate register as a boolean. */
    bool readPred(isa::RegId r) const { return read(r) != 0; }

    /** Writes a register. Writes to index-0 registers are ignored. */
    void write(isa::RegId r, RegVal v);

    /** Raw slot access (used by flush/repair routines). */
    RegVal slotValue(unsigned slot) const { return _vals[slot]; }
    void setSlotValue(unsigned slot, RegVal v) { _vals[slot] = v; }

    void reset() { _vals.fill(0); }

    /** FNV-1a digest of the full file, for equivalence tests. */
    std::uint64_t fingerprint() const;

    /** Snapshot hooks: the dense slot array, in slot order. */
    void
    save(serial::Writer &w) const
    {
        for (const RegVal v : _vals)
            w.u64(v);
    }

    void
    restore(serial::Reader &r)
    {
        for (RegVal &v : _vals)
            v = r.u64();
    }

  private:
    std::array<RegVal, kNumRegSlots> _vals;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_REGFILE_HH
