/**
 * @file
 * Architectural register state: 64 integer, 64 FP and 64 predicate
 * registers in one dense array (FP values stored as raw IEEE-754
 * bits). Register zero of each class is hardwired (r0 = 0, f0 = +0.0,
 * p0 = true): reads return the constant and writes are rejected by
 * the program validator.
 *
 * The file carries a dirty mask (one bit per slot, set on every
 * write) so checkpoint/shadow consumers — the run-ahead register
 * checkpoint in MachineState — can re-sync by copying only the words
 * that changed since the last sync instead of all kNumRegSlots values.
 */

#ifndef FF_CPU_REGFILE_HH
#define FF_CPU_REGFILE_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "cpu/state/bitset.hh"
#include "isa/isa.hh"

namespace ff
{
namespace cpu
{

/** Total dense register slots across all classes. */
inline constexpr unsigned kNumRegSlots =
    isa::kNumIntRegs + isa::kNumFpRegs + isa::kNumPredRegs;

/**
 * Dense slot index of a register id; -1 for RegClass::kNone.
 * Shared by the register files, scoreboards and the A-file.
 */
inline int
regSlot(isa::RegId r)
{
    switch (r.cls) {
      case isa::RegClass::kInt:
        return r.idx;
      case isa::RegClass::kFp:
        return isa::kNumIntRegs + r.idx;
      case isa::RegClass::kPred:
        return isa::kNumIntRegs + isa::kNumFpRegs + r.idx;
      case isa::RegClass::kNone:
        return -1;
    }
    return -1;
}

/** Inverse of regSlot, for diagnostics. */
isa::RegId slotReg(unsigned slot);

/** Architectural (or speculative) register value state. */
class RegFile
{
  public:
    RegFile() { reset(); }

    /** Reads a register; hardwired zeros included. */
    RegVal
    read(isa::RegId r) const
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "read of unused operand slot");
        if (r.idx == 0) {
            // Hardwired: r0 = 0, f0 = +0.0 (bits zero), p0 = true.
            return r.cls == isa::RegClass::kPred ? 1 : 0;
        }
        return _vals[slot];
    }

    /** Reads a predicate register as a boolean. */
    bool readPred(isa::RegId r) const { return read(r) != 0; }

    /** Writes a register. Writes to index-0 registers are ignored. */
    void
    write(isa::RegId r, RegVal v)
    {
        const int slot = regSlot(r);
        ff_panic_if(slot < 0, "write of unused operand slot");
        if (r.idx == 0)
            return; // hardwired
        if (r.cls == isa::RegClass::kPred)
            v = v ? 1 : 0;
        _vals[slot] = v;
        _dirty.set(slot);
    }

    /** Raw slot access (used by flush/repair routines). */
    RegVal slotValue(unsigned slot) const { return _vals[slot]; }
    void
    setSlotValue(unsigned slot, RegVal v)
    {
        _vals[slot] = v;
        _dirty.set(slot);
    }

    void
    reset()
    {
        _vals.fill(0);
        // Conservative: a shadow copy synced before reset() differs
        // everywhere afterwards.
        _dirty.setAll();
    }

    /**
     * Slots written since the last clearDirty(). A set bit means the
     * slot MAY have changed; clean bits are guaranteed untouched.
     */
    const PackedBits<kNumRegSlots> &dirtyMask() const { return _dirty; }
    void clearDirty() { _dirty.clearAll(); }

    /** FNV-1a digest of the full file, for equivalence tests. */
    std::uint64_t fingerprint() const;

    /** Snapshot hooks: the dense slot array, in slot order. */
    void
    save(serial::Writer &w) const
    {
        for (const RegVal v : _vals)
            w.u64(v);
    }

    void
    restore(serial::Reader &r)
    {
        for (RegVal &v : _vals)
            v = r.u64();
        _dirty.setAll();
    }

  private:
    std::array<RegVal, kNumRegSlots> _vals;
    PackedBits<kNumRegSlots> _dirty;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_REGFILE_HH
