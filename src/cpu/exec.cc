#include "cpu/exec.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

using isa::CmpCond;
using isa::Instruction;
using isa::Opcode;

namespace
{

double
asDouble(RegVal v)
{
    return std::bit_cast<double>(v);
}

RegVal
fromDouble(double d)
{
    return std::bit_cast<RegVal>(d);
}

bool
intCompare(CmpCond c, RegVal a, RegVal b)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (c) {
      case CmpCond::kEq: return a == b;
      case CmpCond::kNe: return a != b;
      case CmpCond::kLt: return sa < sb;
      case CmpCond::kLe: return sa <= sb;
      case CmpCond::kGt: return sa > sb;
      case CmpCond::kGe: return sa >= sb;
      case CmpCond::kLtu: return a < b;
    }
    return false;
}

bool
fpCompare(CmpCond c, double a, double b)
{
    switch (c) {
      case CmpCond::kEq: return a == b;
      case CmpCond::kNe: return a != b;
      case CmpCond::kLt: return a < b;
      case CmpCond::kLe: return a <= b;
      case CmpCond::kGt: return a > b;
      case CmpCond::kGe: return a >= b;
      case CmpCond::kLtu: return a < b;
    }
    return false;
}

} // namespace

unsigned
memSize(Opcode op)
{
    switch (op) {
      case Opcode::kLd4:
      case Opcode::kSt4:
        return 4;
      case Opcode::kLd8:
      case Opcode::kSt8:
        return 8;
      default:
        ff_panic("memSize of non-memory opcode");
    }
}

RegVal
loadExtend(Opcode op, std::uint64_t raw)
{
    if (op == Opcode::kLd4) {
        // Sign-extend the low 32 bits.
        return static_cast<RegVal>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(raw)));
    }
    return raw;
}

EvalResult
evaluate(const Instruction &in, bool qpred, RegVal s1, RegVal s2)
{
    EvalResult r;
    r.predTrue = qpred;
    if (in.isBranch()) {
        r.isBranch = true;
        r.taken = qpred;
        return r;
    }
    if (!qpred)
        return r; // nullified: no writes, no memory access

    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
        break;
      case Opcode::kAdd:
        r.writesDst = true;
        r.dstVal = s1 + s2;
        break;
      case Opcode::kSub:
        r.writesDst = true;
        r.dstVal = s1 - s2;
        break;
      case Opcode::kAnd:
        r.writesDst = true;
        r.dstVal = s1 & s2;
        break;
      case Opcode::kOr:
        r.writesDst = true;
        r.dstVal = s1 | s2;
        break;
      case Opcode::kXor:
        r.writesDst = true;
        r.dstVal = s1 ^ s2;
        break;
      case Opcode::kShl:
        r.writesDst = true;
        r.dstVal = s1 << (s2 & 63);
        break;
      case Opcode::kShr:
        r.writesDst = true;
        r.dstVal = s1 >> (s2 & 63);
        break;
      case Opcode::kSra:
        r.writesDst = true;
        r.dstVal = static_cast<RegVal>(static_cast<std::int64_t>(s1) >>
                                       (s2 & 63));
        break;
      case Opcode::kMul:
        r.writesDst = true;
        r.dstVal = s1 * s2;
        break;
      case Opcode::kMov:
        r.writesDst = true;
        r.dstVal = s1;
        break;
      case Opcode::kMovi:
        r.writesDst = true;
        r.dstVal = static_cast<RegVal>(in.imm);
        break;
      case Opcode::kCmp: {
        const bool t = intCompare(in.cond, s1, s2);
        r.writesDst = true;
        r.dstVal = t ? 1 : 0;
        r.writesDst2 = true;
        r.dst2Val = t ? 0 : 1;
        break;
      }
      case Opcode::kItof:
        r.writesDst = true;
        r.dstVal =
            fromDouble(static_cast<double>(static_cast<std::int64_t>(s1)));
        break;
      case Opcode::kFtoi: {
        const double d = asDouble(s1);
        std::int64_t v;
        // Deterministic saturation instead of UB on out-of-range.
        if (std::isnan(d)) {
            v = 0;
        } else if (d >= 9.2233720368547758e18) {
            v = INT64_MAX;
        } else if (d <= -9.2233720368547758e18) {
            v = INT64_MIN;
        } else {
            v = static_cast<std::int64_t>(d);
        }
        r.writesDst = true;
        r.dstVal = static_cast<RegVal>(v);
        break;
      }
      case Opcode::kFadd:
        r.writesDst = true;
        r.dstVal = fromDouble(asDouble(s1) + asDouble(s2));
        break;
      case Opcode::kFsub:
        r.writesDst = true;
        r.dstVal = fromDouble(asDouble(s1) - asDouble(s2));
        break;
      case Opcode::kFmul:
        r.writesDst = true;
        r.dstVal = fromDouble(asDouble(s1) * asDouble(s2));
        break;
      case Opcode::kFdiv:
        r.writesDst = true;
        r.dstVal = fromDouble(asDouble(s1) / asDouble(s2));
        break;
      case Opcode::kFcmp: {
        const bool t = fpCompare(in.cond, asDouble(s1), asDouble(s2));
        r.writesDst = true;
        r.dstVal = t ? 1 : 0;
        r.writesDst2 = true;
        r.dst2Val = t ? 0 : 1;
        break;
      }
      case Opcode::kLd4:
      case Opcode::kLd8:
        r.isMemAccess = true;
        r.addr = s1 + static_cast<Addr>(in.imm);
        r.size = memSize(in.op);
        r.writesDst = true; // caller supplies dstVal from memory
        break;
      case Opcode::kSt4:
      case Opcode::kSt8:
        r.isMemAccess = true;
        r.addr = s1 + static_cast<Addr>(in.imm);
        r.size = memSize(in.op);
        r.storeVal = s2;
        break;
      case Opcode::kBr:
      case Opcode::kNumOpcodes:
        ff_panic("unreachable opcode in evaluate()");
    }
    return r;
}

} // namespace cpu
} // namespace ff
