#include "cpu/core/profile_observer.hh"

#include <algorithm>

namespace ff
{
namespace cpu
{

std::uint64_t
InstProfile::totalCycles() const
{
    std::uint64_t t = 0;
    for (std::uint64_t c : cycles)
        t += c;
    return t;
}

std::uint64_t
InstProfile::stallCycles() const
{
    return totalCycles() -
           cycles[static_cast<unsigned>(CycleClass::kUnstalled)];
}

std::uint64_t
InstProfile::totalDefers() const
{
    std::uint64_t t = 0;
    for (std::uint64_t d : defers)
        t += d;
    return t;
}

ProfileObserver::ProfileObserver(const isa::Program &prog)
    : _prog(prog), _table(prog.size())
{
}

void
ProfileObserver::onCycle(Cycle now, CycleClass cls)
{
    (void)now;
    if (cls == CycleClass::kUnstalled) {
        // The run loop delivers onCycle after the tick that retired,
        // so this cycle's own retirement already set _lastLeader.
        ++_table[_lastLeader]
              .cycles[static_cast<unsigned>(CycleClass::kUnstalled)];
    } else {
        ++_pending[static_cast<unsigned>(cls)];
    }
}

void
ProfileObserver::onGroupRetire(Cycle now, InstIdx leader,
                               unsigned slots)
{
    (void)now;
    if (leader >= _table.size())
        return; // defensive: a malformed hook site must not crash
    InstProfile &row = _table[leader];
    for (unsigned c = 0; c < kNumCycleClasses; ++c) {
        row.cycles[c] += _pending[c];
        _pending[c] = 0;
    }
    ++row.retires;
    row.slots += slots;
    _lastLeader = leader;
}

void
ProfileObserver::onDefer(Cycle now, InstIdx idx, DynId id,
                         DeferReason reason)
{
    (void)now;
    (void)id;
    if (idx >= _table.size())
        return;
    ++_table[idx].defers[static_cast<unsigned>(reason)];
}

void
ProfileObserver::onFlush(Cycle now, FlushKind kind, InstIdx target)
{
    (void)now;
    if (target >= _table.size())
        return;
    ++_table[target].flushes[static_cast<unsigned>(kind)];
}

std::vector<InstIdx>
ProfileObserver::topByStallCycles(unsigned k) const
{
    std::vector<InstIdx> active;
    for (InstIdx i = 0; i < _table.size(); ++i) {
        const InstProfile &row = _table[i];
        if (row.totalCycles() != 0 || row.totalDefers() != 0 ||
            row.retires != 0) {
            active.push_back(i);
        }
    }
    std::sort(active.begin(), active.end(),
              [this](InstIdx a, InstIdx b) {
                  const std::uint64_t sa = _table[a].stallCycles();
                  const std::uint64_t sb = _table[b].stallCycles();
                  return sa != sb ? sa > sb : a < b;
              });
    if (k != 0 && active.size() > k)
        active.resize(k);
    return active;
}

} // namespace cpu
} // namespace ff
