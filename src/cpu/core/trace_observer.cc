#include "cpu/core/trace_observer.hh"

#include "common/trace.hh"
#include "cpu/core/core_base.hh"

namespace ff
{
namespace cpu
{

void
TraceObserver::onCycle(Cycle now, CycleClass cls)
{
    ++_counts.cycles;
    if (_traceCycles) {
        ff_trace(trace::kCore, now, "CYCLE",
                 cycleClassName(cls));
    }
}

void
TraceObserver::onGroupRetire(Cycle now, InstIdx leader, unsigned slots)
{
    ++_counts.groupRetires;
    _counts.slotsRetired += slots;
    ff_trace(trace::kCore, now, "RETIRE",
             "@" << leader << " x" << slots);
}

void
TraceObserver::onDefer(Cycle now, InstIdx idx, DynId id,
                       DeferReason reason)
{
    ++_counts.defers;
    ff_trace(trace::kCore, now, "DEFER",
             "@" << idx << " id " << id << " reason "
                 << static_cast<unsigned>(reason));
}

void
TraceObserver::onFlush(Cycle now, FlushKind kind, InstIdx target)
{
    ++_counts.flushes;
    ff_trace(trace::kCore, now, "FLUSH",
             flushKindName(kind) << " -> @" << target);
}

void
TraceObserver::onDispatch(Cycle now, InstIdx idx, DynId id)
{
    ++_counts.dispatches;
    ff_trace(trace::kCore, now, "DISP", "@" << idx << " id " << id);
}

void
TraceObserver::onReplay(Cycle now, InstIdx idx, DynId id)
{
    ++_counts.replays;
    ff_trace(trace::kCore, now, "REPLAY", "@" << idx << " id " << id);
}

void
TraceObserver::onFeedbackApply(Cycle now, DynId id, unsigned regSlot)
{
    ++_counts.feedbackApplies;
    ff_trace(trace::kCore, now, "FEEDBK",
             "id " << id << " slot " << regSlot);
}

} // namespace cpu
} // namespace ff
