#include "cpu/core/core_base.hh"

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

CoreBase::CoreBase(const isa::Program &prog, const CoreConfig &cfg,
                   memory::Initiator who)
    : _prog(prog),
      _cfg(cfg),
      _hier(cfg.mem),
      _pred(branch::makePredictor(cfg.predictorKind,
                                  cfg.predictorEntries)),
      _fe(prog, _cfg, *_pred, _hier, who)
{
    const std::string err = prog.validate(cfg.limits);
    ff_fatal_if(!err.empty(), "invalid program '", prog.name(), "': ",
                err);
    _mem.loadPages(prog.dataImage().pages());
}

RunResult
CoreBase::run(std::uint64_t max_cycles)
{
    ff_panic_if(_ran, "CPU models are single-shot; construct anew");
    _ran = true;

    RunResult res;
    Cycle now = 0;
    while (!res.halted && now < max_cycles) {
        _hier.tick(now);
        const CycleClass cls = tick(now, res);
        _acct.record(cls);
        if (_observer != nullptr)
            _observer->onCycle(now, cls);
        _fe.tick(now);
        ++now;
    }
    res.cycles = now;
    return res;
}

OccupancySample
CoreBase::occupancy(Cycle now) const
{
    OccupancySample s;
    s.inFlightLoads = _hier.outstandingLoads(now);
    return s;
}

const char *
flushKindName(FlushKind k)
{
    switch (k) {
      case FlushKind::kBDet: return "bdet";
      case FlushKind::kConflict: return "conflict";
    }
    return "?";
}

} // namespace cpu
} // namespace ff
