#include "cpu/core/core_base.hh"

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

CoreBase::CoreBase(const isa::Program &prog, const CoreConfig &cfg,
                   memory::Initiator who, bool load_image)
    : _prog(prog),
      _cfg(cfg),
      _hier(cfg.mem),
      _pred(branch::makePredictor(cfg.predictorKind,
                                  cfg.predictorEntries)),
      _fe(prog, _cfg, *_pred, _hier, who),
      _ms(_cfg)
{
    const std::string err = prog.validate(cfg.limits);
    ff_fatal_if(!err.empty(), "invalid program '", prog.name(), "': ",
                err);
    if (load_image)
        _mem.loadPages(prog.dataImage().pages());
}

void
CoreBase::saveState(serial::Writer &w) const
{
    w.section(serial::tag("CORE"));
    w.u64(_now);
    w.boolean(_ran);
    w.boolean(_res.halted);
    w.u64(_res.cycles);
    w.u64(_res.instsRetired);
    w.u64(_res.groupsRetired);
    for (const std::uint64_t c : _acct.counts)
        w.u64(c);

    w.section(serial::tag("SMEM"));
    _mem.save(w);
    w.section(serial::tag("HIER"));
    _hier.save(w);
    w.section(serial::tag("PRED"));
    _pred->save(w);
    w.section(serial::tag("FTCH"));
    _fe.save(w);
    w.section(serial::tag("MODL"));
    saveModelState(w);
    w.section(serial::tag("DONE"));
}

void
CoreBase::restoreState(serial::Reader &r)
{
    if (!r.section(serial::tag("CORE")))
        return;
    _now = r.u64();
    _ran = r.boolean();
    _res.halted = r.boolean();
    _res.cycles = r.u64();
    _res.instsRetired = r.u64();
    _res.groupsRetired = r.u64();
    for (std::uint64_t &c : _acct.counts)
        c = r.u64();

    if (!r.section(serial::tag("SMEM")))
        return;
    _mem.restore(r);
    if (!r.section(serial::tag("HIER")))
        return;
    _hier.restore(r);
    if (!r.section(serial::tag("PRED")))
        return;
    _pred->restore(r);
    if (!r.section(serial::tag("FTCH")))
        return;
    _fe.restore(r);
    if (!r.section(serial::tag("MODL")))
        return;
    restoreModelState(r);
    if (!r.section(serial::tag("DONE")))
        return;

    _resumable = true;
}

void
CoreBase::warpArchState(const RegFile &regs,
                        const memory::SparseMemory &mem, InstIdx entry)
{
    ff_panic_if(_ran, "warpArchState() on a model that already ran; "
                      "warping is construction-time only");
    ff_panic_if(entry >= _prog.size() ||
                    !_prog.isGroupLeader(entry),
                "warp entry ", entry, " is not an issue-group leader "
                "of '", _prog.name(), "'");
    _ms.regs = regs;
    _mem = mem;
    _fe.reset(entry);
    warpModelState();
}

void
CoreBase::warmMicroArch(const WarmSnapshot &warm)
{
    ff_panic_if(_ran, "warmMicroArch() on a model that already ran; "
                      "warming is construction-time only");
    // Code first, then data: the streams only interleave in the
    // shared L2/L3, where the (typically small) code footprint should
    // not displace the most recent data lines.
    for (const Addr a : warm.fetch)
        _hier.warmAccess(memory::AccessKind::kInstFetch, a);
    for (const WarmHistory::MemEvent &e : warm.mem) {
        _hier.warmAccess(e.store ? memory::AccessKind::kStore
                                 : memory::AccessKind::kLoad,
                         e.addr);
    }
    // predict() + update() is exactly one resolve-trained branch:
    // history shifts speculatively at predict and the counters (and
    // any misprediction repair) train at update.
    for (const WarmSnapshot::BranchEvent &e : warm.branch)
        _pred->update(_pred->predict(e.pc), e.taken);
}

OccupancySample
CoreBase::occupancy(Cycle now) const
{
    OccupancySample s;
    s.inFlightLoads = _hier.outstandingLoads(now);
    return s;
}

const char *
flushKindName(FlushKind k)
{
    switch (k) {
      case FlushKind::kBDet: return "bdet";
      case FlushKind::kConflict: return "conflict";
    }
    return "?";
}

} // namespace cpu
} // namespace ff
