/**
 * @file
 * CoreBase: the shared kernel of every timed CPU model. It owns the
 * structural state all models duplicate — the program reference, the
 * CoreConfig copy, architectural memory, the cache hierarchy, the
 * direction predictor, the decoupled front end, and the Figure-6
 * cycle accounting — performs the validate-and-load-pages dance once
 * in its constructor, and provides the single-shot run() skeleton
 * that ticks the hierarchy, calls the per-model tick() hook, records
 * the returned cycle class, and advances the front end. Models
 * implement only their genuinely distinct per-cycle logic.
 */

#ifndef FF_CPU_CORE_CORE_BASE_HH
#define FF_CPU_CORE_CORE_BASE_HH

#include <memory>

#include "common/logging.hh"
#include "cpu/config.hh"
#include "cpu/core/observer.hh"
#include "cpu/cpu.hh"
#include "cpu/frontend.hh"
#include "cpu/state/machine_state.hh"

namespace ff
{
namespace cpu
{

/** Shared skeleton of the timed models. */
class CoreBase : public CpuModel, public OccupancyProbe
{
  public:
    /**
     * Validates @p prog against the configured group limits (fatal on
     * violation), loads its data image, and builds the common
     * subsystems. @p who tags this core's memory accesses.
     *
     * @p load_image false skips materializing the program's data
     * image into architectural memory — only for callers that warp
     * the model to a complete memory state before running (sampled
     * replay constructs one model per interval, and the image load is
     * O(footprint) work the warp would immediately replace).
     */
    CoreBase(const isa::Program &prog, const CoreConfig &cfg,
             memory::Initiator who, bool load_image = true);
    /** Models hold a reference: temporaries would dangle. */
    CoreBase(isa::Program &&, const CoreConfig &,
             memory::Initiator) = delete;

    CoreBase *asCoreBase() final { return this; }

    bool supportsSnapshot() const final { return true; }
    Cycle currentCycle() const final { return _now; }

    /**
     * See CpuModel::warpArchState(). Copies the architectural
     * register file and memory, restarts the front end at @p entry,
     * and invokes warpModelState() so models with extra architectural
     * mirrors (the two-pass A-file) re-synchronize. Only legal on a
     * model that has never run: warping is a construction-time
     * operation, not a mid-run rewrite.
     */
    void warpArchState(const RegFile &regs,
                       const memory::SparseMemory &mem,
                       InstIdx entry) final;

    /**
     * See CpuModel::warmMicroArch(). Replays the history into the
     * cache hierarchy (untimed tag/LRU fills) and the direction
     * predictor (one predict/update pair per recorded outcome). Like
     * warping, only legal before the first run().
     */
    void warmMicroArch(const WarmSnapshot &warm) final;

    /** See CpuModel::rearmResume(). */
    void
    rearmResume() final
    {
        ff_panic_if(!_ran, "rearmResume() before any run()");
        ff_panic_if(_res.halted, "rearmResume() after HALT retired");
        _resumable = true;
    }

    /**
     * Serializes every CoreBase-owned subsystem (cycle cursor, run
     * result, accounting, memory, hierarchy, predictor, front end)
     * then the model section via the saveModelState() hook.
     */
    void saveState(serial::Writer &w) const final;
    void restoreState(serial::Reader &r) final;

    const memory::SparseMemory &memState() const final { return _mem; }
    const CycleAccounting &cycleAccounting() const final
    {
        return _acct;
    }
    memory::Hierarchy &hierarchy() final { return _hier; }
    const branch::DirectionPredictor &predictor() const final
    {
        return *_pred;
    }

    /**
     * Attaches (or detaches, with nullptr) an observer. The pointer
     * is mirrored into MachineState so stage units composed over the
     * state block see the same attachment.
     */
    void
    setObserver(CoreObserver *obs)
    {
        _observer = obs;
        _ms.observer = obs;
    }

    /** The dense machine state, for observers and tests (read-only). */
    const MachineState &machineState() const { return _ms; }

    /**
     * Occupancy every model shares: loads outstanding past the L1.
     * Models with more pipeline structure (the two-pass coupling
     * queue and feedback path) override and extend the sample.
     */
    OccupancySample occupancy(Cycle now) const override;

  protected:
    /**
     * The shared run loop, instantiated per model: per cycle, ticks
     * the hierarchy, invokes @p tick_fn (the model's statically-bound
     * tick), records the cycle class, notifies any observer, and
     * ticks the front end. Each model's run() wraps its own tick in a
     * lambda so the per-cycle call devirtualizes and inlines instead
     * of going through a vtable — the old `virtual tick()` cost an
     * indirect call per simulated cycle.
     *
     * Single-shot — except that a restoreState() re-arms it to
     * continue from the restored cycle, and the loop state lives in
     * members so a run stopped by max_cycles resumes exactly where it
     * left off after a snapshot round trip.
     */
    template <typename TickFn>
    RunResult
    runLoop(TickFn &&tick_fn, std::uint64_t max_cycles)
    {
        ff_panic_if(_ran && !_resumable,
                    "CPU models are single-shot; construct anew (or "
                    "restore a snapshot to resume)");
        _ran = true;
        _resumable = false;

        while (!_res.halted && _now < max_cycles) {
            _hier.tick(_now);
            const CycleClass cls = tick_fn(_now, _res);
            _acct.record(cls);
            if (_observer != nullptr)
                _observer->onCycle(_now, cls);
            _fe.tick(_now);
            ++_now;
        }
        _res.cycles = _now;
        return _res;
    }

    /**
     * Serializes the state the concrete model owns beyond the shared
     * subsystems (register files, scoreboards, queues, counters).
     * restoreModelState() is its exact inverse on a same-config
     * instance.
     */
    virtual void saveModelState(serial::Writer &w) const = 0;
    virtual void restoreModelState(serial::Reader &r) = 0;

    /**
     * warpArchState() hook for model-owned mirrors of architectural
     * state: called after the B-file and memory have been replaced,
     * before the model runs. The default is a no-op (the baseline and
     * run-ahead models re-derive their shadows lazily); the two-pass
     * models synchronize the A-file here.
     */
    virtual void warpModelState() {}

    /** The attached observer, or nullptr. */
    CoreObserver *observer() const { return _observer; }

    /** Observer convenience used by models at group retirement. */
    void
    notifyGroupRetire(Cycle now, InstIdx leader, unsigned slots) const
    {
        if (_observer != nullptr)
            _observer->onGroupRetire(now, leader, slots);
    }

    const isa::Program &_prog;
    CoreConfig _cfg;
    memory::SparseMemory _mem;   ///< architectural memory
    memory::Hierarchy _hier;
    std::unique_ptr<branch::DirectionPredictor> _pred;
    FrontEnd _fe;
    CycleAccounting _acct;
    MachineState _ms; ///< the dense per-cycle hot state (see state/)

  private:
    CoreObserver *_observer = nullptr;
    bool _ran = false;
    bool _resumable = false; ///< set by restoreState, spent by run
    Cycle _now = 0;          ///< cycles simulated so far
    RunResult _res;          ///< accumulated run outcome
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_CORE_BASE_HH
