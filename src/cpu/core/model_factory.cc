#include "cpu/core/model_factory.hh"

#include "cpu/baseline/baseline_cpu.hh"
#include "cpu/runahead/runahead_cpu.hh"
#include "cpu/twopass/twopass_cpu.hh"

namespace ff
{
namespace cpu
{

const char *
cpuKindName(CpuKind k)
{
    switch (k) {
      case CpuKind::kBaseline: return "base";
      case CpuKind::kTwoPass: return "2P";
      case CpuKind::kTwoPassRegroup: return "2Pre";
      case CpuKind::kRunahead: return "runahead";
    }
    return "?";
}

std::unique_ptr<CpuModel>
makeModel(CpuKind kind, const isa::Program &prog,
          const CoreConfig &cfg, bool load_image)
{
    switch (kind) {
      case CpuKind::kBaseline:
        return std::make_unique<BaselineCpu>(prog, cfg, load_image);
      case CpuKind::kTwoPass:
        return std::make_unique<TwoPassCpu>(prog, cfg, load_image);
      case CpuKind::kTwoPassRegroup: {
        CoreConfig regroup_cfg = cfg;
        regroup_cfg.regroup = true;
        return std::make_unique<TwoPassCpu>(prog, regroup_cfg,
                                            load_image);
      }
      case CpuKind::kRunahead:
        return std::make_unique<RunaheadCpu>(prog, cfg, load_image);
    }
    return nullptr;
}

} // namespace cpu
} // namespace ff
