/**
 * @file
 * PipeViewObserver: the pipeline-lifecycle tracer behind the ffpipe
 * format and the ffview tool. It records one compact event per
 * observer hook firing — dispatch, defer, replay, feedback apply,
 * flush, group retire — plus run-length-encoded cycle-class changes,
 * so a whole two-pass run can be reconstructed into per-dynamic-
 * instruction timelines (the gem5 O3PipeView / Konata record shape)
 * after the fact. The observer itself only appends to a vector: it
 * never touches simulation state, never looks at the program, and is
 * bounded by an event cap with an explicit dropped-event counter so
 * a pathological run cannot exhaust memory silently.
 */

#ifndef FF_CPU_CORE_PIPEVIEW_OBSERVER_HH
#define FF_CPU_CORE_PIPEVIEW_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "cpu/core/observer.hh"

namespace ff
{
namespace cpu
{

/** Discriminator of one recorded pipeline event. */
enum class PipeEventKind : std::uint8_t
{
    kDispatch = 0,   ///< A-pipe dispatch into the coupling queue
    kDefer = 1,      ///< dispatch deferred; a = DeferReason
    kReplay = 2,     ///< B-pipe first execution of a deferred entry
    kFeedback = 3,   ///< B-to-A feedback landed; b = register slot
    kFlush = 4,      ///< pipeline flush; idx = target, a = FlushKind
    kRetire = 5,     ///< group retire; idx = leader, b = slot count
    kCycleClass = 6, ///< cycle-class run starts; a = CycleClass
};
inline constexpr unsigned kNumPipeEventKinds = 7;

const char *pipeEventKindName(PipeEventKind k);

/**
 * One recorded event, 24 bytes. The @c a and @c b payload fields are
 * kind-dependent (see PipeEventKind); @c id is 0 for events that do
 * not belong to a single dynamic instruction (flush, retire,
 * cycle-class).
 */
struct PipeEvent
{
    Cycle cycle = 0;       ///< when the event fired
    DynId id = 0;          ///< dynamic instruction, or 0
    InstIdx idx = 0;       ///< static index / flush target / leader
    PipeEventKind kind = PipeEventKind::kDispatch;
    std::uint8_t a = 0;    ///< DeferReason / FlushKind / CycleClass
    std::uint16_t b = 0;   ///< register slot / retired slot count
};

/**
 * Appends one PipeEvent per observer hook firing, with cycle classes
 * run-length encoded (an event only when the class changes). All
 * state is private to the observer; the purity suite pins that
 * attaching one leaves every simulation output bit-identical.
 */
class PipeViewObserver : public CoreObserver
{
  public:
    /** Default event cap: ~4M events, ~96 MB, minutes of trace. */
    static constexpr std::size_t kDefaultMaxEvents = 1u << 22;

    /** @param max_events cap on recorded events; later events are
     *  counted in dropped() instead of recorded. */
    explicit PipeViewObserver(std::size_t max_events = kDefaultMaxEvents)
        : _max(max_events)
    {
    }

    void onCycle(Cycle now, CycleClass cls) override;
    void onGroupRetire(Cycle now, InstIdx leader,
                       unsigned slots) override;
    void onDefer(Cycle now, InstIdx idx, DynId id,
                 DeferReason reason) override;
    void onFlush(Cycle now, FlushKind kind, InstIdx target) override;
    void onDispatch(Cycle now, InstIdx idx, DynId id) override;
    void onReplay(Cycle now, InstIdx idx, DynId id) override;
    void onFeedbackApply(Cycle now, DynId id,
                         unsigned regSlot) override;

    /** Recorded events in firing order. */
    const std::vector<PipeEvent> &events() const { return _events; }

    /** Events discarded after the cap was reached. */
    std::uint64_t dropped() const { return _dropped; }

    /** Moves the event stream out, leaving the observer empty. */
    std::vector<PipeEvent> take() { return std::move(_events); }

  private:
    void
    push(const PipeEvent &e)
    {
        if (_events.size() >= _max) {
            ++_dropped;
            return;
        }
        _events.push_back(e);
    }

    std::vector<PipeEvent> _events;
    std::uint64_t _dropped = 0;
    std::size_t _max;
    CycleClass _lastCls = CycleClass::kUnstalled;
    bool _haveCls = false;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_PIPEVIEW_OBSERVER_HH
