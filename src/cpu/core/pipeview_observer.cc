#include "cpu/core/pipeview_observer.hh"

namespace ff
{
namespace cpu
{

const char *
pipeEventKindName(PipeEventKind k)
{
    switch (k) {
      case PipeEventKind::kDispatch:   return "dispatch";
      case PipeEventKind::kDefer:      return "defer";
      case PipeEventKind::kReplay:     return "replay";
      case PipeEventKind::kFeedback:   return "feedback";
      case PipeEventKind::kFlush:      return "flush";
      case PipeEventKind::kRetire:     return "retire";
      case PipeEventKind::kCycleClass: return "cycle_class";
    }
    return "?";
}

void
PipeViewObserver::onCycle(Cycle now, CycleClass cls)
{
    if (_haveCls && cls == _lastCls)
        return;
    _haveCls = true;
    _lastCls = cls;
    PipeEvent e;
    e.cycle = now;
    e.kind = PipeEventKind::kCycleClass;
    e.a = static_cast<std::uint8_t>(cls);
    push(e);
}

void
PipeViewObserver::onGroupRetire(Cycle now, InstIdx leader,
                                unsigned slots)
{
    PipeEvent e;
    e.cycle = now;
    e.idx = leader;
    e.kind = PipeEventKind::kRetire;
    e.b = static_cast<std::uint16_t>(slots);
    push(e);
}

void
PipeViewObserver::onDefer(Cycle now, InstIdx idx, DynId id,
                          DeferReason reason)
{
    PipeEvent e;
    e.cycle = now;
    e.id = id;
    e.idx = idx;
    e.kind = PipeEventKind::kDefer;
    e.a = static_cast<std::uint8_t>(reason);
    push(e);
}

void
PipeViewObserver::onFlush(Cycle now, FlushKind kind, InstIdx target)
{
    PipeEvent e;
    e.cycle = now;
    e.idx = target;
    e.kind = PipeEventKind::kFlush;
    e.a = static_cast<std::uint8_t>(kind);
    push(e);
}

void
PipeViewObserver::onDispatch(Cycle now, InstIdx idx, DynId id)
{
    PipeEvent e;
    e.cycle = now;
    e.id = id;
    e.idx = idx;
    e.kind = PipeEventKind::kDispatch;
    push(e);
}

void
PipeViewObserver::onReplay(Cycle now, InstIdx idx, DynId id)
{
    PipeEvent e;
    e.cycle = now;
    e.id = id;
    e.idx = idx;
    e.kind = PipeEventKind::kReplay;
    push(e);
}

void
PipeViewObserver::onFeedbackApply(Cycle now, DynId id,
                                  unsigned regSlot)
{
    PipeEvent e;
    e.cycle = now;
    e.id = id;
    e.kind = PipeEventKind::kFeedback;
    e.b = static_cast<std::uint16_t>(regSlot);
    push(e);
}

} // namespace cpu
} // namespace ff
