#include "cpu/core/telemetry_observer.hh"

#include <algorithm>

namespace ff
{
namespace cpu
{

namespace
{

/** Unit-width buckets over [0, cap], bounded to keep exports small. */
std::size_t
bucketsFor(unsigned cap)
{
    return std::min<std::size_t>(cap + 1, 256);
}

} // namespace

TelemetryObserver::TelemetryObserver(const OccupancyProbe &probe,
                                     unsigned cq_capacity,
                                     unsigned max_loads,
                                     Cycle epoch_cycles)
    : _probe(probe),
      _epoch(epoch_cycles),
      _cqDepth(_reg.histogram("cq_depth", 0, cq_capacity + 1,
                              bucketsFor(cq_capacity))),
      _inFlight(_reg.histogram("inflight_loads", 0, max_loads + 1,
                               bucketsFor(max_loads))),
      _feedback(_reg.histogram("pending_feedback", 0, 129, 129)),
      _cqSeries(_reg.series("cq_depth", epoch_cycles)),
      _loadSeries(_reg.series("inflight_loads", epoch_cycles)),
      _feedbackSeries(_reg.series("pending_feedback", epoch_cycles)),
      _stallSeries(_reg.series("stall_fraction", epoch_cycles)),
      _cycles(_reg.counter("cycles")),
      _stallCycles(_reg.counter("stall_cycles")),
      _defers(_reg.counter("defers")),
      _flushes(_reg.counter("flushes"))
{
}

void
TelemetryObserver::onCycle(Cycle now, CycleClass cls)
{
    const OccupancySample s = _probe.occupancy(now);
    _cqDepth.sample(s.cqDepth);
    _inFlight.sample(s.inFlightLoads);
    _feedback.sample(s.pendingFeedback);
    _cqSeries.sample(now, s.cqDepth);
    _loadSeries.sample(now, s.inFlightLoads);
    _feedbackSeries.sample(now, s.pendingFeedback);

    const bool stalled = cls != CycleClass::kUnstalled;
    _stallSeries.sample(now, stalled ? 1.0 : 0.0);
    ++_cycles;
    if (stalled)
        ++_stallCycles;
}

void
TelemetryObserver::onDefer(Cycle now, InstIdx idx, DynId id,
                           DeferReason reason)
{
    (void)now;
    (void)idx;
    (void)id;
    (void)reason;
    ++_defers;
}

void
TelemetryObserver::onFlush(Cycle now, FlushKind kind, InstIdx target)
{
    (void)now;
    (void)kind;
    (void)target;
    ++_flushes;
}

} // namespace cpu
} // namespace ff
