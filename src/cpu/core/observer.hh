/**
 * @file
 * The CoreObserver hook seam: a zero-cost (one null-pointer test per
 * event site) way for tooling to watch a timed core execute without
 * the core knowing who is listening. CoreBase owns the attachment
 * point; models and their stage units fire the hooks at the
 * architecturally meaningful moments. The trace subsystem is the
 * first client (TraceObserver); richer observability — sampling
 * profilers, pipeline visualizers, per-region accounting — plugs in
 * here without touching model code.
 */

#ifndef FF_CPU_CORE_OBSERVER_HH
#define FF_CPU_CORE_OBSERVER_HH

#include "common/types.hh"
#include "cpu/cycle_classes.hh"
#include "cpu/model_stats.hh"

namespace ff
{
namespace cpu
{

/** Which flush recovery a two-pass core performed. */
enum class FlushKind : std::uint8_t
{
    kBDet,     ///< deferred-branch misprediction flush (Sec. 3.6)
    kConflict, ///< store-conflict (ALAT) flush (Sec. 3.4)
};

const char *flushKindName(FlushKind k);

/**
 * Observation interface over a running core. All hooks default to
 * no-ops so observers implement only what they need. Hooks must not
 * mutate simulation state: the contract is strictly read-only
 * observation, and the bit-identical-stats guarantee of the bench
 * gate depends on it.
 */
class CoreObserver
{
  public:
    virtual ~CoreObserver() = default;

    /** Fired once per simulated cycle with its Figure-6 class. */
    virtual void
    onCycle(Cycle now, CycleClass cls)
    {
        (void)now;
        (void)cls;
    }

    /**
     * Fired when the architectural pipe retires an issue group (or a
     * regrouped retire window): @p leader is the static index of the
     * first retired slot, @p slots the number of slots retired.
     */
    virtual void
    onGroupRetire(Cycle now, InstIdx leader, unsigned slots)
    {
        (void)now;
        (void)leader;
        (void)slots;
    }

    /** Fired when the A-pipe defers instruction @p idx to the B-pipe. */
    virtual void
    onDefer(Cycle now, InstIdx idx, DynId id, DeferReason reason)
    {
        (void)now;
        (void)idx;
        (void)id;
        (void)reason;
    }

    /** Fired on a B-pipe flush; @p target is the refetch leader. */
    virtual void
    onFlush(Cycle now, FlushKind kind, InstIdx target)
    {
        (void)now;
        (void)kind;
        (void)target;
    }
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_OBSERVER_HH
