/**
 * @file
 * The CoreObserver hook seam: a zero-cost (one null-pointer test per
 * event site) way for tooling to watch a timed core execute without
 * the core knowing who is listening. CoreBase owns the attachment
 * point; models and their stage units fire the hooks at the
 * architecturally meaningful moments. The trace subsystem is the
 * first client (TraceObserver); richer observability — sampling
 * profilers, pipeline visualizers, per-region accounting — plugs in
 * here without touching model code.
 */

#ifndef FF_CPU_CORE_OBSERVER_HH
#define FF_CPU_CORE_OBSERVER_HH

#include <vector>

#include "common/types.hh"
#include "cpu/cycle_classes.hh"
#include "cpu/model_stats.hh"

namespace ff
{
namespace cpu
{

/** Which flush recovery a two-pass core performed. */
enum class FlushKind : std::uint8_t
{
    kBDet,     ///< deferred-branch misprediction flush (Sec. 3.6)
    kConflict, ///< store-conflict (ALAT) flush (Sec. 3.4)
};
inline constexpr unsigned kNumFlushKinds = 2;

const char *flushKindName(FlushKind k);

/** One read-only occupancy snapshot of a core's pipeline structures. */
struct OccupancySample
{
    unsigned cqDepth = 0;         ///< coupling-queue entries (two-pass)
    unsigned inFlightLoads = 0;   ///< loads outstanding past the L1
    unsigned pendingFeedback = 0; ///< queued B-to-A updates (two-pass)
};

/**
 * Read-only occupancy probe over a running core. CoreBase implements
 * it with what every model shares (in-flight loads); models with more
 * pipeline structure (the two-pass coupling queue and feedback path)
 * override it. Strictly observational: implementations must not
 * mutate simulation state.
 */
class OccupancyProbe
{
  public:
    virtual ~OccupancyProbe() = default;

    /** Occupancy of the core's structures as of cycle @p now. */
    virtual OccupancySample occupancy(Cycle now) const = 0;
};

/**
 * Observation interface over a running core. All hooks default to
 * no-ops so observers implement only what they need. Hooks must not
 * mutate simulation state: the contract is strictly read-only
 * observation, and the bit-identical-stats guarantee of the bench
 * gate depends on it.
 */
class CoreObserver
{
  public:
    virtual ~CoreObserver() = default;

    /** Fired once per simulated cycle with its Figure-6 class. */
    virtual void
    onCycle(Cycle now, CycleClass cls)
    {
        (void)now;
        (void)cls;
    }

    /**
     * Fired when the architectural pipe retires an issue group (or a
     * regrouped retire window): @p leader is the static index of the
     * first retired slot, @p slots the number of slots retired.
     */
    virtual void
    onGroupRetire(Cycle now, InstIdx leader, unsigned slots)
    {
        (void)now;
        (void)leader;
        (void)slots;
    }

    /** Fired when the A-pipe defers instruction @p idx to the B-pipe. */
    virtual void
    onDefer(Cycle now, InstIdx idx, DynId id, DeferReason reason)
    {
        (void)now;
        (void)idx;
        (void)id;
        (void)reason;
    }

    /** Fired on a B-pipe flush; @p target is the refetch leader. */
    virtual void
    onFlush(Cycle now, FlushKind kind, InstIdx target)
    {
        (void)now;
        (void)kind;
        (void)target;
    }

    /**
     * Fired when the A-pipe dispatches a dynamic instruction into the
     * coupling queue, before its defer/pre-execute outcome is known
     * (an onDefer for the same @p id follows in the same cycle when
     * it defers). The first event in every dynamic lifetime.
     */
    virtual void
    onDispatch(Cycle now, InstIdx idx, DynId id)
    {
        (void)now;
        (void)idx;
        (void)id;
    }

    /**
     * Fired when the B-pipe first-executes (replays) a deferred
     * instruction at the head of the coupling queue.
     */
    virtual void
    onReplay(Cycle now, InstIdx idx, DynId id)
    {
        (void)now;
        (void)idx;
        (void)id;
    }

    /**
     * Fired when a B-to-A feedback update from dynamic instruction
     * @p id lands in the A-file; @p regSlot is the dense register
     * slot (regSlot()) the update revalidated.
     */
    virtual void
    onFeedbackApply(Cycle now, DynId id, unsigned regSlot)
    {
        (void)now;
        (void)id;
        (void)regSlot;
    }
};

/**
 * Fans every observer event out to a fixed set of clients, so a run
 * can attach a tracer and a profiler and a telemetry sampler through
 * the single CoreBase attachment point. Pointers must outlive the
 * fanout; nullptr entries are skipped at add().
 */
class FanoutObserver : public CoreObserver
{
  public:
    /** Registers @p obs (ignored when null). */
    void
    add(CoreObserver *obs)
    {
        if (obs != nullptr)
            _clients.push_back(obs);
    }

    bool empty() const { return _clients.empty(); }

    void
    onCycle(Cycle now, CycleClass cls) override
    {
        for (CoreObserver *o : _clients)
            o->onCycle(now, cls);
    }

    void
    onGroupRetire(Cycle now, InstIdx leader, unsigned slots) override
    {
        for (CoreObserver *o : _clients)
            o->onGroupRetire(now, leader, slots);
    }

    void
    onDefer(Cycle now, InstIdx idx, DynId id,
            DeferReason reason) override
    {
        for (CoreObserver *o : _clients)
            o->onDefer(now, idx, id, reason);
    }

    void
    onFlush(Cycle now, FlushKind kind, InstIdx target) override
    {
        for (CoreObserver *o : _clients)
            o->onFlush(now, kind, target);
    }

    void
    onDispatch(Cycle now, InstIdx idx, DynId id) override
    {
        for (CoreObserver *o : _clients)
            o->onDispatch(now, idx, id);
    }

    void
    onReplay(Cycle now, InstIdx idx, DynId id) override
    {
        for (CoreObserver *o : _clients)
            o->onReplay(now, idx, id);
    }

    void
    onFeedbackApply(Cycle now, DynId id, unsigned regSlot) override
    {
        for (CoreObserver *o : _clients)
            o->onFeedbackApply(now, id, regSlot);
    }

  private:
    std::vector<CoreObserver *> _clients;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_OBSERVER_HH
