/**
 * @file
 * ProfileObserver: per-static-instruction cycle and event accounting
 * as a CoreObserver client. It attributes every simulated cycle to a
 * static instruction with a retire-centric charging rule: stall
 * cycles accrue in a pending pool and are charged to the leader of
 * the next issue group to retire (the group that was blocked), while
 * unstalled cycles charge to the group that retired that cycle.
 * Defer and flush events carry their static index directly. Joined
 * with the srcLine provenance the assembler threads through every
 * instruction, the result is the Figure-6 decomposition at
 * instruction granularity — which static loads the stall cycles
 * belong to, and which deferrals won them back.
 */

#ifndef FF_CPU_CORE_PROFILE_OBSERVER_HH
#define FF_CPU_CORE_PROFILE_OBSERVER_HH

#include <array>
#include <vector>

#include "cpu/core/observer.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** Per-static-instruction profile accumulators. */
struct InstProfile
{
    /** Cycles charged to this leader, by Figure-6 class. */
    std::array<std::uint64_t, kNumCycleClasses> cycles{};
    /** Deferrals of this instruction, by reason. */
    std::array<std::uint64_t, kNumDeferReasons> defers{};
    /** Flushes refetching at this leader, by kind. */
    std::array<std::uint64_t, kNumFlushKinds> flushes{};
    std::uint64_t retires = 0; ///< groups retired with this leader
    std::uint64_t slots = 0;   ///< slots retired in those groups

    /** Total cycles charged (all classes). */
    std::uint64_t totalCycles() const;
    /** Charged cycles minus the unstalled class. */
    std::uint64_t stallCycles() const;
    /** Total deferrals (all reasons). */
    std::uint64_t totalDefers() const;
};

/** Attributes observer events to static instruction indices. */
class ProfileObserver : public CoreObserver
{
  public:
    /** @p prog must outlive the observer (indices size the table). */
    explicit ProfileObserver(const isa::Program &prog);

    void onCycle(Cycle now, CycleClass cls) override;
    void onGroupRetire(Cycle now, InstIdx leader,
                       unsigned slots) override;
    void onDefer(Cycle now, InstIdx idx, DynId id,
                 DeferReason reason) override;
    void onFlush(Cycle now, FlushKind kind, InstIdx target) override;

    const isa::Program &program() const { return _prog; }

    /** Profile row of static instruction @p i. */
    const InstProfile &at(InstIdx i) const { return _table.at(i); }
    const std::vector<InstProfile> &table() const { return _table; }

    /**
     * Cycles still pending at the end of the run (accrued after the
     * final retirement), by class; kept so sum(profile) + unattributed
     * equals the run's total cycle count exactly.
     */
    const std::array<std::uint64_t, kNumCycleClasses> &
    unattributed() const
    {
        return _pending;
    }

    /**
     * Static indices with any charged activity, ordered by descending
     * stall cycles (ties by index). @p k bounds the result; 0 means
     * all active rows.
     */
    std::vector<InstIdx> topByStallCycles(unsigned k = 0) const;

  private:
    const isa::Program &_prog;
    std::vector<InstProfile> _table;
    /** Stall cycles accrued since the last retirement. */
    std::array<std::uint64_t, kNumCycleClasses> _pending{};
    /** Leader of the most recent retirement (charges its own
     *  unstalled cycle, which the hook order delivers after the
     *  retire event). */
    InstIdx _lastLeader = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_PROFILE_OBSERVER_HH
