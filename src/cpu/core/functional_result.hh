/**
 * @file
 * The outcome record of untimed functional execution. Hoisted out of
 * FunctionalCpu so harness-level interfaces (SimOutcome's functional
 * sibling) can carry it without including any concrete model header.
 */

#ifndef FF_CPU_CORE_FUNCTIONAL_RESULT_HH
#define FF_CPU_CORE_FUNCTIONAL_RESULT_HH

#include <cstdint>

namespace ff
{
namespace cpu
{

/** Outcome of functional (golden-model) execution. */
struct FunctionalResult
{
    bool halted = false;
    std::uint64_t instsExecuted = 0; ///< slots (incl. nullified)
    std::uint64_t groupsExecuted = 0;
    std::uint64_t branchesExecuted = 0;
    std::uint64_t branchesTaken = 0;
    std::uint64_t loadsExecuted = 0;  ///< pred-true loads
    std::uint64_t storesExecuted = 0; ///< pred-true stores
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_FUNCTIONAL_RESULT_HH
