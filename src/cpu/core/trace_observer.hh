/**
 * @file
 * TraceObserver: the trace subsystem as a CoreObserver client. It
 * renders the core's observer events as trace lines under the
 * trace::kCore category, giving any model a uniform event stream
 * (retires, deferrals, flushes, optionally every cycle) without the
 * model emitting those lines itself. Attach with
 * CoreBase::setObserver; enable trace::kCore to see the output.
 */

#ifndef FF_CPU_CORE_TRACE_OBSERVER_HH
#define FF_CPU_CORE_TRACE_OBSERVER_HH

#include "cpu/core/observer.hh"

namespace ff
{
namespace cpu
{

/** Renders observer events through the trace subsystem. */
class TraceObserver : public CoreObserver
{
  public:
    /**
     * @param trace_cycles when true, every cycle emits a line with
     *        its class — verbose; off by default so the group/defer/
     *        flush stream stays readable.
     */
    explicit TraceObserver(bool trace_cycles = false)
        : _traceCycles(trace_cycles)
    {
    }

    void onCycle(Cycle now, CycleClass cls) override;
    void onGroupRetire(Cycle now, InstIdx leader,
                       unsigned slots) override;
    void onDefer(Cycle now, InstIdx idx, DynId id,
                 DeferReason reason) override;
    void onFlush(Cycle now, FlushKind kind, InstIdx target) override;
    void onDispatch(Cycle now, InstIdx idx, DynId id) override;
    void onReplay(Cycle now, InstIdx idx, DynId id) override;
    void onFeedbackApply(Cycle now, DynId id,
                         unsigned regSlot) override;

    /** Event counts, for tests and cheap summaries. */
    struct Counts
    {
        std::uint64_t cycles = 0;
        std::uint64_t groupRetires = 0;
        std::uint64_t slotsRetired = 0;
        std::uint64_t defers = 0;
        std::uint64_t flushes = 0;
        std::uint64_t dispatches = 0;
        std::uint64_t replays = 0;
        std::uint64_t feedbackApplies = 0;
    };

    const Counts &counts() const { return _counts; }

  private:
    bool _traceCycles;
    Counts _counts;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_TRACE_OBSERVER_HH
