/**
 * @file
 * TelemetryObserver: pipeline-occupancy sampling as a CoreObserver
 * client. Each cycle it reads the core's read-only OccupancyProbe
 * (coupling-queue depth, loads outstanding past the L1, pending
 * B-to-A feedback updates) and folds the sample into histograms plus
 * fixed-rate per-epoch time series in a metrics::Registry, alongside
 * a per-epoch stall-fraction series derived from the cycle class.
 * The registry is owned by the observer and harvested after the run
 * by the export path.
 */

#ifndef FF_CPU_CORE_TELEMETRY_OBSERVER_HH
#define FF_CPU_CORE_TELEMETRY_OBSERVER_HH

#include "common/metrics.hh"
#include "cpu/core/observer.hh"

namespace ff
{
namespace cpu
{

/** Samples occupancy through a probe into a metrics registry. */
class TelemetryObserver : public CoreObserver
{
  public:
    /** Default epoch length of the occupancy time series. */
    static constexpr Cycle kDefaultEpochCycles = 4096;

    /**
     * @param probe the core's occupancy probe; must outlive the
     *        observer
     * @param cq_capacity sizes the CQ-depth histogram (entries)
     * @param max_loads sizes the in-flight-load histogram (MSHRs)
     * @param epoch_cycles time-series resolution in cycles
     */
    TelemetryObserver(const OccupancyProbe &probe, unsigned cq_capacity,
                      unsigned max_loads,
                      Cycle epoch_cycles = kDefaultEpochCycles);

    void onCycle(Cycle now, CycleClass cls) override;
    void onDefer(Cycle now, InstIdx idx, DynId id,
                 DeferReason reason) override;
    void onFlush(Cycle now, FlushKind kind, InstIdx target) override;

    /** Closes the partial trailing epoch of every series. */
    void finish() { _reg.finish(); }

    /** The collected histograms, counters and series. */
    const metrics::Registry &registry() const { return _reg; }

    /**
     * Moves the collected registry out (for harvest into a
     * MetricsRecord). The observer must not sample afterwards.
     */
    metrics::Registry takeRegistry() { return std::move(_reg); }

    Cycle epochCycles() const { return _epoch; }

  private:
    const OccupancyProbe &_probe;
    Cycle _epoch;
    metrics::Registry _reg;

    // Cached handles: map lookups stay off the per-cycle path.
    metrics::Histogram &_cqDepth;
    metrics::Histogram &_inFlight;
    metrics::Histogram &_feedback;
    metrics::TimeSeries &_cqSeries;
    metrics::TimeSeries &_loadSeries;
    metrics::TimeSeries &_feedbackSeries;
    metrics::TimeSeries &_stallSeries;
    metrics::Counter &_cycles;
    metrics::Counter &_stallCycles;
    metrics::Counter &_defers;
    metrics::Counter &_flushes;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_TELEMETRY_OBSERVER_HH
