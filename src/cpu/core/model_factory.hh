/**
 * @file
 * The single construction path for timed CPU models. Benches, tests,
 * tools and the experiment harness name a CpuKind and get back an
 * abstract CpuModel; only this factory's translation unit knows the
 * concrete model headers. CpuKind lives here (not in sim/) so the
 * cpu layer can own the kind-to-model mapping; the sim namespace
 * re-exports it for its historical spelling (sim::CpuKind).
 */

#ifndef FF_CPU_CORE_MODEL_FACTORY_HH
#define FF_CPU_CORE_MODEL_FACTORY_HH

#include <memory>

#include "cpu/config.hh"
#include "cpu/cpu.hh"
#include "isa/program.hh"

namespace ff
{
namespace cpu
{

/** Which timed model to construct. */
enum class CpuKind
{
    kBaseline,       ///< Figure 6 "base"
    kTwoPass,        ///< Figure 6 "2P"
    kTwoPassRegroup, ///< Figure 6 "2Pre"
    kRunahead,       ///< Sec. 2 comparison model
};
inline constexpr unsigned kNumCpuKinds = 4;

/** The bench-facing short name ("base", "2P", "2Pre", "runahead"). */
const char *cpuKindName(CpuKind k);

/**
 * Builds a fresh single-shot model of @p kind over @p prog.
 * kTwoPassRegroup forces cfg.regroup on, so every caller gets the
 * same 2Pre semantics without touching its config. @p prog must
 * outlive the model (models hold a reference).
 *
 * @p load_image false constructs the model with empty architectural
 * memory — strictly for callers that warpArchState() a complete
 * memory image in before running (see CoreBase's constructor doc).
 */
std::unique_ptr<CpuModel> makeModel(CpuKind kind,
                                    const isa::Program &prog,
                                    const CoreConfig &cfg,
                                    bool load_image = true);

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CORE_MODEL_FACTORY_HH
