/**
 * @file
 * Bounded recent-state summaries of architectural events —
 * instruction fetches, data accesses, branch outcomes — recorded by
 * the functional CPU and replayed untimed into a timed model's caches
 * and predictor. This is the "functional warming" half of sampled
 * simulation (SMARTS-style): warpArchState() installs exact
 * architectural state but leaves the micro-architecture cold, and a
 * detailed warm-up long enough to fill multi-megabyte caches would
 * dwarf the measured window. Replaying the recent access history
 * instead reconstructs the hot tag/LRU and predictor state in
 * microseconds, so the detailed warm-up only has to fill the
 * pipeline.
 *
 * Cache state is summarized as the set of unique recently-touched
 * blocks in last-access order (WarmLruSet), not as a raw access
 * ring: an LRU set retains exactly "the most recent unique blocks in
 * recency order", which is also all that a cache's final tag and LRU
 * state depend on — so replaying the set, least recent first, warms
 * to the same state as replaying the full access stream, at a cost
 * bounded by cache capacity instead of access count. Branch outcomes
 * stay a raw ring; history-based predictors train on the sequence,
 * so deduplication would change their state.
 *
 * Events hold raw block addresses and directions — no cache
 * geometry, no predictor kind — so one recorded history warms any
 * (model kind, machine configuration) pair and checkpoint plans stay
 * shareable.
 */

#ifndef FF_CPU_WARM_HISTORY_HH
#define FF_CPU_WARM_HISTORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ff
{
namespace cpu
{

/**
 * Tracking granularity: accesses coalesce to aligned blocks of this
 * many bytes. A cache replays same-line accesses as tag hits with no
 * LRU movement, so for line sizes of at least this granularity the
 * block-granular history warms to the exact same state. 64 matches
 * the smallest line in the Table 1 machine; configurations with
 * smaller lines merely warm a hair conservatively.
 */
inline constexpr Addr kWarmCoalesceBytes = 64;

/**
 * Default capacities, in unique blocks (data, fetch) and raw events
 * (branch). The data set is sized to cover the Table 1 L3 — 12288
 * lines of 128 bytes, up to 24576 64-byte blocks when a line is
 * touched in both halves; the fetch set covers a code footprint far
 * beyond the 16KB L1I; the branch ring saturates a few-K-entry
 * predictor.
 */
inline constexpr std::size_t kWarmMemBlocks = 24576;
inline constexpr std::size_t kWarmFetchBlocks = 2048;
inline constexpr std::size_t kWarmBranchEvents = 8192;

/**
 * A bounded set of unique blocks kept in last-access order, the
 * least recently touched evicted on overflow — i.e. exactly the
 * retention policy of a fully-associative LRU cache of the same
 * capacity. Storage is two flat arrays (an entry slab threaded into
 * an intrusive doubly-linked recency list, and an open-addressing
 * index of slab positions), so copying a set — which checkpointing
 * does a lot — is a pair of flat vector copies, never a node-based
 * rehash.
 */
class WarmLruSet
{
  public:
    struct Event
    {
        Addr addr = 0; ///< block-aligned address
        bool store = false; ///< direction of the latest access
    };

    explicit WarmLruSet(std::size_t cap) : _cap(cap)
    {
        std::size_t slots = 2;
        while (slots < cap * 2)
            slots <<= 1;
        _mask = static_cast<std::uint32_t>(slots - 1);
        _table.assign(slots, -1);
        _entries.reserve(cap);
    }

    /** Records an access, moving @p addr's block to most-recent. */
    void
    touch(Addr addr, bool store)
    {
        std::uint32_t h = slotFor(addr);
        if (_table[h] >= 0) {
            const std::int32_t idx = _table[h];
            _entries[idx].ev.store = store;
            moveToBack(idx);
            return;
        }
        std::int32_t idx;
        if (_entries.size() == _cap) {
            idx = _head; // evict the least recently touched block
            unlink(idx);
            erase(_entries[idx].ev.addr);
            h = slotFor(addr); // erase may have shifted the cluster
        } else {
            idx = static_cast<std::int32_t>(_entries.size());
            _entries.push_back(Entry{});
        }
        _entries[idx].ev = {addr, store};
        linkBack(idx);
        _table[h] = idx;
    }

    std::size_t size() const { return _entries.size(); }

    /** Visits every retained block, least recently touched first. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::int32_t i = _head; i >= 0; i = _entries[i].next)
            f(_entries[i].ev);
    }

  private:
    struct Entry
    {
        Event ev{};
        std::int32_t prev = -1;
        std::int32_t next = -1;
    };

    static std::uint64_t
    mix(Addr a)
    {
        const std::uint64_t x = a * 0x9E3779B97F4A7C15ull;
        return x ^ (x >> 29);
    }

    /** The slot holding @p addr, or the empty slot it would go in. */
    std::uint32_t
    slotFor(Addr addr) const
    {
        std::uint32_t h =
            static_cast<std::uint32_t>(mix(addr)) & _mask;
        while (_table[h] >= 0 && _entries[_table[h]].ev.addr != addr)
            h = (h + 1) & _mask;
        return h;
    }

    /** Clears @p addr's slot, backward-shifting its probe cluster. */
    void
    erase(Addr addr)
    {
        std::uint32_t hole = slotFor(addr);
        std::uint32_t next = (hole + 1) & _mask;
        while (_table[next] >= 0) {
            const std::uint32_t ideal =
                static_cast<std::uint32_t>(
                    mix(_entries[_table[next]].ev.addr)) &
                _mask;
            if (((next - ideal) & _mask) >= ((next - hole) & _mask)) {
                _table[hole] = _table[next];
                hole = next;
            }
            next = (next + 1) & _mask;
        }
        _table[hole] = -1;
    }

    void
    unlink(std::int32_t idx)
    {
        Entry &e = _entries[idx];
        (e.prev >= 0 ? _entries[e.prev].next : _head) = e.next;
        (e.next >= 0 ? _entries[e.next].prev : _tail) = e.prev;
        e.prev = e.next = -1;
    }

    void
    linkBack(std::int32_t idx)
    {
        Entry &e = _entries[idx];
        e.prev = _tail;
        e.next = -1;
        (_tail >= 0 ? _entries[_tail].next : _head) = idx;
        _tail = idx;
    }

    void
    moveToBack(std::int32_t idx)
    {
        if (_tail == idx)
            return;
        unlink(idx);
        linkBack(idx);
    }

    std::size_t _cap;
    std::uint32_t _mask = 0;
    std::int32_t _head = -1; ///< least recently touched
    std::int32_t _tail = -1; ///< most recently touched
    std::vector<Entry> _entries;
    std::vector<std::int32_t> _table; ///< open addressing, -1 empty
};

/** Fixed-capacity ring preserving insertion order. */
template <typename T>
class WarmRing
{
  public:
    explicit WarmRing(std::size_t cap) : _cap(cap)
    {
        _items.reserve(cap);
    }

    void
    push(const T &v)
    {
        if (_items.size() < _cap) {
            _items.push_back(v);
        } else {
            _items[_head] = v;
            _head = (_head + 1) % _cap;
        }
    }

    std::size_t size() const { return _items.size(); }

    /** Visits every retained event, oldest first. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < _items.size(); ++i)
            f(_items[(_head + i) % _items.size()]);
    }

  private:
    std::size_t _cap;
    std::size_t _head = 0; ///< index of the oldest element when full
    std::vector<T> _items;
};

/**
 * A frozen WarmHistory: the same events flattened into plain vectors
 * in replay order (mem/fetch least recently touched first, branches
 * oldest first). Checkpoints store this form — it drops the live
 * structures' hash tables and recency links, so a checkpoint copy is
 * three straight vector copies and replay is a linear scan.
 */
struct WarmSnapshot
{
    struct BranchEvent
    {
        Addr pc; ///< address of the branch slot (predictor index)
        bool taken;
    };

    std::vector<WarmLruSet::Event> mem;
    std::vector<Addr> fetch;
    std::vector<BranchEvent> branch;
};

/** The recorded warming events around one point of the execution. */
class WarmHistory
{
  public:
    using MemEvent = WarmLruSet::Event;
    using BranchEvent = WarmSnapshot::BranchEvent;

    WarmHistory(std::size_t mem_cap = kWarmMemBlocks,
                std::size_t fetch_cap = kWarmFetchBlocks,
                std::size_t branch_cap = kWarmBranchEvents)
        : _mem(mem_cap), _fetch(fetch_cap), _branch(branch_cap)
    {
    }

    void
    recordMem(Addr a, bool store)
    {
        const Addr blk = a & ~(kWarmCoalesceBytes - 1);
        if (blk == _lastMemBlk && store == _lastMemStore)
            return;
        _lastMemBlk = blk;
        _lastMemStore = store;
        _mem.touch(blk, store);
    }

    void
    recordFetch(Addr a)
    {
        const Addr blk = a & ~(kWarmCoalesceBytes - 1);
        if (blk == _lastFetchBlk)
            return;
        _lastFetchBlk = blk;
        _fetch.touch(blk, false);
    }

    /** Branches train counters, so every outcome is kept. */
    void recordBranch(Addr pc, bool t) { _branch.push({pc, t}); }

    /** Freezes the current state into its replay-ordered flat form. */
    WarmSnapshot
    snapshot() const
    {
        WarmSnapshot s;
        s.mem.reserve(_mem.size());
        _mem.forEach(
            [&](const WarmLruSet::Event &e) { s.mem.push_back(e); });
        s.fetch.reserve(_fetch.size());
        _fetch.forEach([&](const WarmLruSet::Event &e) {
            s.fetch.push_back(e.addr);
        });
        s.branch.reserve(_branch.size());
        _branch.forEach(
            [&](const BranchEvent &e) { s.branch.push_back(e); });
        return s;
    }

    template <typename F>
    void forEachMem(F &&f) const { _mem.forEach(f); }
    template <typename F>
    void
    forEachFetch(F &&f) const
    {
        _fetch.forEach([&](const WarmLruSet::Event &e) { f(e.addr); });
    }
    template <typename F>
    void forEachBranch(F &&f) const { _branch.forEach(f); }

    std::size_t memEvents() const { return _mem.size(); }
    std::size_t fetchEvents() const { return _fetch.size(); }
    std::size_t branchEvents() const { return _branch.size(); }

  private:
    WarmLruSet _mem;
    WarmLruSet _fetch;
    WarmRing<BranchEvent> _branch;
    Addr _lastMemBlk = ~Addr(0); ///< coalescing state (recordMem)
    bool _lastMemStore = false;
    Addr _lastFetchBlk = ~Addr(0);
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_WARM_HISTORY_HH
