/**
 * @file
 * The whole-group dependence-and-resource check shared by the
 * in-order issue stages (baseline and run-ahead normal mode): an
 * issue group stalls atomically when any contained instruction's
 * operands are pending (Figure 2(a)), and conservatively when its
 * loads could overflow the MSHRs. The two models previously carried
 * verbatim copies of this loop; the shared helper also adds the
 * scoreboard-quiescence fast path, which skips the per-operand scan
 * entirely on the (common) cycles where nothing is in flight.
 */

#ifndef FF_CPU_ISSUE_CHECK_HH
#define FF_CPU_ISSUE_CHECK_HH

#include <array>

#include "cpu/config.hh"
#include "cpu/regfile.hh"
#include "cpu/scoreboard.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"

namespace ff
{
namespace cpu
{

/**
 * Dependence + MSHR check for the issue group [@p leader, @p end).
 * Returns kUnstalled when the whole group may issue at @p now, else
 * the Figure-6 class of the first blocking hazard in slot order.
 */
inline CycleClass
checkGroupIssue(const isa::Program &prog, InstIdx leader, InstIdx end,
                const Scoreboard &sb, const RegFile &regs,
                const memory::Hierarchy &hier, const CoreConfig &cfg,
                Cycle now)
{
    // Fast path: with no producer in flight anywhere, every ready()
    // query below is vacuously true and the MSHR bound cannot bind.
    if (sb.quiescentBy(now) && hier.outstandingLoads(now) == 0)
        return CycleClass::kUnstalled;

    unsigned loads_wanted = 0;
    for (InstIdx i = leader; i < end; ++i) {
        const isa::Instruction &in = prog.inst(i);
        if (!sb.ready(in.qpred, now))
            return stallClassFor(sb, in.qpred);
        const bool qp = regs.readPred(in.qpred);
        if (!qp && !in.isBranch())
            continue; // nullified slot needs no operands
        if (in.src1.valid() && !sb.ready(in.src1, now))
            return stallClassFor(sb, in.src1);
        if (in.src2.valid() && !in.src2IsImm &&
            !sb.ready(in.src2, now)) {
            return stallClassFor(sb, in.src2);
        }
        if (cfg.wawStall) {
            std::array<isa::RegId, 2> dsts;
            const unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d) {
                if (!sb.ready(dsts[d], now))
                    return stallClassFor(sb, dsts[d]);
            }
        }
        if (in.isLoad() && qp)
            ++loads_wanted;
    }

    // Resource check: conservatively assume every load misses.
    if (loads_wanted > 0 && hier.outstandingLoads(now) > 0 &&
        hier.outstandingLoads(now) + loads_wanted >
            cfg.mem.maxOutstandingLoads) {
        // Stalling only helps while an outstanding load could retire
        // and free an MSHR; a group carrying more loads than the
        // machine has MSHRs must still issue eventually.
        return CycleClass::kResourceStall;
    }
    return CycleClass::kUnstalled;
}

} // namespace cpu
} // namespace ff

#endif // FF_CPU_ISSUE_CHECK_HH
