/**
 * @file
 * PackedBits<N>: the fixed-width bitset container of the machine-state
 * layer. The per-cycle hot structures keep their boolean sidecar state
 * (A-file V/S flags, run-ahead INV marks, register dirty masks,
 * scoreboard busy bits) as words of this type so whole-file scans —
 * flush repair, run-ahead checkpointing, coherence checks — run one
 * 64-bit word at a time instead of one flag at a time.
 *
 * Unlike std::bitset it exposes its words (observers and repair loops
 * want to skip clean words wholesale) and serializes through the
 * standard snapshot Writer/Reader.
 */

#ifndef FF_CPU_STATE_BITSET_HH
#define FF_CPU_STATE_BITSET_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/serialize.hh"

namespace ff
{
namespace cpu
{

/** Dense bitset over N bits, stored as 64-bit words. */
template <unsigned N>
class PackedBits
{
  public:
    static constexpr unsigned kBits = N;
    static constexpr unsigned kWords = (N + 63) / 64;

    PackedBits() { clearAll(); }

    bool
    test(unsigned i) const
    {
        return (_w[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(unsigned i)
    {
        _w[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

    void
    clear(unsigned i)
    {
        _w[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    void
    assign(unsigned i, bool v)
    {
        if (v)
            set(i);
        else
            clear(i);
    }

    void clearAll() { _w.fill(0); }

    void
    setAll()
    {
        _w.fill(~std::uint64_t{0});
        trimTail();
    }

    /** True if any bit is set. */
    bool
    any() const
    {
        for (const std::uint64_t w : _w) {
            if (w != 0)
                return true;
        }
        return false;
    }

    /** Number of set bits. */
    unsigned
    count() const
    {
        unsigned n = 0;
        for (const std::uint64_t w : _w)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /** Raw word access for whole-word scans. */
    std::uint64_t word(unsigned wi) const { return _w[wi]; }
    void
    setWord(unsigned wi, std::uint64_t w)
    {
        _w[wi] = w;
        if (wi == kWords - 1)
            trimTail();
    }

    /**
     * Calls @p fn(bit_index) for every set bit, ascending. The scan
     * consumes one countr_zero per set bit and skips clean words.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (unsigned wi = 0; wi < kWords; ++wi) {
            std::uint64_t w = _w[wi];
            while (w != 0) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(w));
                fn(wi * 64 + b);
                w &= w - 1;
            }
        }
    }

    bool
    operator==(const PackedBits &o) const
    {
        return _w == o._w;
    }
    bool operator!=(const PackedBits &o) const { return !(*this == o); }

    /** Snapshot hooks: the words, low to high. */
    void
    save(serial::Writer &w) const
    {
        for (const std::uint64_t v : _w)
            w.u64(v);
    }

    void
    restore(serial::Reader &r)
    {
        for (std::uint64_t &v : _w)
            v = r.u64();
        trimTail();
    }

  private:
    /** Masks off bits past N so count()/any() stay exact. */
    void
    trimTail()
    {
        constexpr unsigned tail = N & 63;
        if constexpr (tail != 0)
            _w[kWords - 1] &= (std::uint64_t{1} << tail) - 1;
    }

    std::array<std::uint64_t, kWords> _w;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_STATE_BITSET_HH
