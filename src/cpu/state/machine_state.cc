#include "cpu/state/machine_state.hh"

#include <bit>

namespace ff
{
namespace cpu
{

void
MachineState::checkpointRegsToRa()
{
    using Bits = PackedBits<kNumRegSlots>;
    for (unsigned wi = 0; wi < Bits::kWords; ++wi) {
        std::uint64_t stale =
            regs.dirtyMask().word(wi) | raRegs.dirtyMask().word(wi);
        while (stale != 0) {
            const unsigned slot =
                wi * 64 + static_cast<unsigned>(std::countr_zero(stale));
            stale &= stale - 1;
            if (slot >= kNumRegSlots)
                break;
            raRegs.setSlotValue(slot, regs.slotValue(slot));
        }
    }
    regs.clearDirty();
    raRegs.clearDirty();
}

} // namespace cpu
} // namespace ff
