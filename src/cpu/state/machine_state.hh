/**
 * @file
 * MachineState: the structure-of-arrays home of every per-cycle hot
 * structure a core model mutates. One object, owned by CoreBase,
 * aggregates:
 *
 *  - the architectural register file (the two-pass B-file) and its
 *    scoreboard (the two-pass B-pipe scoreboard), both dense arrays
 *    with packed busy/dirty bit words;
 *  - the two-pass A-file (values + packed V/S flags) and the
 *    coupling queue (a field-per-array ring);
 *  - the shared two-pass pipe state that used to live in the ad-hoc
 *    TwoPassShared block: the dynamic-id allocator, the A-pipe halt
 *    latch, the conflict-retry set, and the observer attachment;
 *  - the run-ahead checkpoint block: shadow register file, shadow
 *    scoreboard, and the INV mark bits as one packed word array.
 *
 * Models touch only the members they model (the baseline never looks
 * at the A-file), but ownership in one flat object keeps the hot
 * state dense, makes observers read arrays instead of objects, and
 * gives tests a single hand-buildable fixture.
 */

#ifndef FF_CPU_STATE_MACHINE_STATE_HH
#define FF_CPU_STATE_MACHINE_STATE_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"
#include "cpu/config.hh"
#include "cpu/core/observer.hh"
#include "cpu/regfile.hh"
#include "cpu/scoreboard.hh"
#include "cpu/state/bitset.hh"
#include "cpu/twopass/afile.hh"
#include "cpu/twopass/coupling_queue.hh"

namespace ff
{
namespace cpu
{

/** Dense aggregate of the per-cycle mutable machine state. */
struct MachineState
{
    explicit MachineState(const CoreConfig &cfg)
        : cq(cfg.couplingQueueSize)
    {
    }

    // ---- architectural state (every model) --------------------------
    RegFile regs;  ///< architectural register file (two-pass B-file)
    Scoreboard sb; ///< in-flight producers (two-pass B-pipe scoreboard)

    // ---- two-pass speculative state ---------------------------------
    AFile afile;      ///< A-pipe speculative register file
    CouplingQueue cq; ///< A-to-B instruction FIFO with CRS payload

    // ---- shared two-pass pipe state (was TwoPassShared) -------------
    DynId nextId = 1;     ///< dynamic-id allocator (A-pipe dispatch)
    bool aHalted = false; ///< A-pipe saw HALT dispatch; flushes clear

    /** Observer the stage units notify; kept in sync by setObserver. */
    CoreObserver *observer = nullptr;

    /**
     * Forward-progress guarantee: static loads whose ALAT entries
     * conflicted since the last successful retirement are deferred
     * (executed architecturally in the B-pipe) on re-dispatch. The
     * set grows by one load per flush and clears once the stuck
     * window retires, so a pathological ALAT (or persistent aliasing
     * pattern) cannot livelock the flush loop. Kept as a sorted
     * vector: it holds at most a handful of static indices and is
     * probed once per dispatched load.
     */
    bool
    conflictRetryContains(InstIdx idx) const
    {
        return std::binary_search(_conflictRetry.begin(),
                                  _conflictRetry.end(), idx);
    }

    void
    conflictRetryInsert(InstIdx idx)
    {
        const auto it = std::lower_bound(_conflictRetry.begin(),
                                         _conflictRetry.end(), idx);
        if (it == _conflictRetry.end() || *it != idx)
            _conflictRetry.insert(it, idx);
    }

    void conflictRetryClear() { _conflictRetry.clear(); }
    const std::vector<InstIdx> &conflictRetry() const
    {
        return _conflictRetry;
    }

    // ---- run-ahead checkpoint block ---------------------------------
    RegFile raRegs;   ///< checkpointed registers for run-ahead episodes
    Scoreboard raSb;  ///< run-ahead-local scoreboard
    PackedBits<kNumRegSlots> raInv; ///< INV (poisoned) result marks

    /**
     * Re-syncs the run-ahead shadow register file with the
     * architectural file: copies exactly the slots whose values may
     * differ — those written architecturally since the last sync plus
     * those the previous run-ahead episode scribbled over — as flagged
     * by the two dirty masks, then clears both masks. Replaces the
     * full kNumRegSlots copy at every episode entry.
     */
    void checkpointRegsToRa();

  private:
    std::vector<InstIdx> _conflictRetry;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_STATE_MACHINE_STATE_HH
