/**
 * @file
 * The six-way cycle classification of Figure 6. Every simulated
 * cycle of the architectural pipe (the baseline's issue stage, or
 * the two-pass B-pipe) lands in exactly one class.
 */

#ifndef FF_CPU_CYCLE_CLASSES_HH
#define FF_CPU_CYCLE_CLASSES_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ff
{
namespace cpu
{

/** Condition of the architectural pipe in one cycle. */
enum class CycleClass : std::uint8_t
{
    kUnstalled = 0,      ///< a group issued/retired
    kLoadStall = 1,      ///< blocked on a load result
    kNonLoadDepStall = 2,///< blocked on a multi-cycle non-load result
    kResourceStall = 3,  ///< blocked on MSHRs / buffers
    kFrontEndStall = 4,  ///< nothing available from fetch
    kApipeStall = 5,     ///< (two-pass) waiting for the A-pipe lead
};
inline constexpr unsigned kNumCycleClasses = 6;

const char *cycleClassName(CycleClass c);

/** Per-class cycle counters. */
struct CycleAccounting
{
    std::array<std::uint64_t, kNumCycleClasses> counts{};

    void record(CycleClass c) { ++counts[static_cast<unsigned>(c)]; }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto c : counts)
            t += c;
        return t;
    }

    std::uint64_t
    of(CycleClass c) const
    {
        return counts[static_cast<unsigned>(c)];
    }

    /** Load + non-load + resource stalls (memory-ish stall cycles). */
    std::uint64_t
    memoryStallCycles() const
    {
        return of(CycleClass::kLoadStall);
    }

    void reset() { counts = {}; }

    /** One-line render for reports. */
    std::string render() const;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CYCLE_CLASSES_HH
