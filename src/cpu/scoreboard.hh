/**
 * @file
 * Register scoreboard: tracks, per architectural register, when an
 * in-flight producer's value becomes usable and what kind of producer
 * it is (a load or a multi-cycle non-load). The stall taxonomy of
 * Figure 6 needs the kind to split "Load stall" from "Non-load dep.
 * stall".
 *
 * Layout is structure-of-arrays: dense ready-time and kind arrays
 * plus a packed busy bitset. The bitset makes two hot queries cheap:
 * quiescentBy() lets a whole group's dependence check short-circuit
 * when nothing is in flight, and forEachBusy() lets the run-ahead
 * checkpoint scan only the (few) pending slots instead of all
 * kNumRegSlots.
 */

#ifndef FF_CPU_SCOREBOARD_HH
#define FF_CPU_SCOREBOARD_HH

#include <array>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "cpu/cycle_classes.hh"
#include "cpu/regfile.hh"
#include "cpu/state/bitset.hh"

namespace ff
{
namespace cpu
{

/** What kind of producer a pending register is waiting on. */
enum class PendingKind : std::uint8_t
{
    kNone,
    kLoad,
    kNonLoad,
};

/** Per-register ready-time tracker. */
class Scoreboard
{
  public:
    Scoreboard() { clear(); }

    /** Marks @p r busy until @p ready_at. */
    void
    setPending(isa::RegId r, Cycle ready_at, PendingKind kind)
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return;
        _readyAt[slot] = ready_at;
        _kind[slot] = kind;
        _busy.set(slot);
        if (ready_at > _maxReadyAt)
            _maxReadyAt = ready_at;
    }

    /** True if @p r is usable at @p now. */
    bool
    ready(isa::RegId r, Cycle now) const
    {
        if (_maxReadyAt <= now)
            return true; // nothing anywhere is still pending
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return true;
        return !_busy.test(slot) || _readyAt[slot] <= now;
    }

    /**
     * True when no register anywhere is pending past @p now — lets a
     * group dependence check skip per-operand queries entirely.
     */
    bool quiescentBy(Cycle now) const { return _maxReadyAt <= now; }

    Cycle
    readyAt(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return 0;
        return _readyAt[slot];
    }

    PendingKind
    kindOf(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return PendingKind::kNone;
        return _kind[slot];
    }

    /** Raw per-slot reads for bitset-driven scans. */
    Cycle readyAtSlot(unsigned slot) const { return _readyAt[slot]; }
    PendingKind kindAtSlot(unsigned slot) const { return _kind[slot]; }

    /**
     * Calls @p fn(slot) for every slot that has ever been marked
     * pending since the last clear(). A superset of the slots still
     * pending at any given cycle: the callee filters on readyAtSlot().
     */
    template <typename Fn>
    void
    forEachBusy(Fn &&fn) const
    {
        _busy.forEachSet(fn);
    }

    void
    clear()
    {
        _readyAt.fill(0);
        _kind.fill(PendingKind::kNone);
        _busy.clearAll();
        _maxReadyAt = 0;
    }

    /** Snapshot hooks: ready times and producer kinds per slot. */
    void
    save(serial::Writer &w) const
    {
        for (const Cycle c : _readyAt)
            w.u64(c);
        for (const PendingKind k : _kind)
            w.u8(static_cast<std::uint8_t>(k));
    }

    void
    restore(serial::Reader &r)
    {
        _busy.clearAll();
        _maxReadyAt = 0;
        for (Cycle &c : _readyAt)
            c = r.u64();
        for (PendingKind &k : _kind)
            k = static_cast<PendingKind>(r.u8());
        // Rebuild the derived busy view: any slot with a recorded
        // ready time was pending at some point.
        for (unsigned slot = 0; slot < kNumRegSlots; ++slot) {
            if (_readyAt[slot] != 0) {
                _busy.set(slot);
                if (_readyAt[slot] > _maxReadyAt)
                    _maxReadyAt = _readyAt[slot];
            }
        }
    }

  private:
    std::array<Cycle, kNumRegSlots> _readyAt;
    std::array<PendingKind, kNumRegSlots> _kind;
    /**
     * Slots ever marked pending since clear(); bits are never lazily
     * dropped as producers complete, so this is a monotone superset
     * of "pending at cycle t" and readyAt stays authoritative.
     */
    PackedBits<kNumRegSlots> _busy;
    /** Max ready_at ever recorded; drives quiescentBy(). */
    Cycle _maxReadyAt;
};

/** Maps a producer kind to its Figure-6 stall class; kNone panics. */
inline CycleClass
stallClassForKind(PendingKind kind)
{
    switch (kind) {
      case PendingKind::kLoad:
        return CycleClass::kLoadStall;
      case PendingKind::kNonLoad:
        return CycleClass::kNonLoadDepStall;
      case PendingKind::kNone:
        break;
    }
    ff_panic("stall on a register with no pending producer");
}

/**
 * Maps a blocking register's producer kind on @p sb to its Figure-6
 * stall class. The caller must have established that @p blocking is
 * actually pending (not ready): a stall on a register with no
 * in-flight producer is a scoreboarding bug and panics.
 */
inline CycleClass
stallClassFor(const Scoreboard &sb, isa::RegId blocking)
{
    return stallClassForKind(sb.kindOf(blocking));
}

} // namespace cpu
} // namespace ff

#endif // FF_CPU_SCOREBOARD_HH
