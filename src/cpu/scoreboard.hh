/**
 * @file
 * Register scoreboard: tracks, per architectural register, when an
 * in-flight producer's value becomes usable and what kind of producer
 * it is (a load or a multi-cycle non-load). The stall taxonomy of
 * Figure 6 needs the kind to split "Load stall" from "Non-load dep.
 * stall".
 */

#ifndef FF_CPU_SCOREBOARD_HH
#define FF_CPU_SCOREBOARD_HH

#include <array>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "cpu/cycle_classes.hh"
#include "cpu/regfile.hh"

namespace ff
{
namespace cpu
{

/** What kind of producer a pending register is waiting on. */
enum class PendingKind : std::uint8_t
{
    kNone,
    kLoad,
    kNonLoad,
};

/** Per-register ready-time tracker. */
class Scoreboard
{
  public:
    Scoreboard() { clear(); }

    /** Marks @p r busy until @p ready_at. */
    void
    setPending(isa::RegId r, Cycle ready_at, PendingKind kind)
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return;
        _readyAt[slot] = ready_at;
        _kind[slot] = kind;
    }

    /** True if @p r is usable at @p now. */
    bool
    ready(isa::RegId r, Cycle now) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return true;
        return _readyAt[slot] <= now;
    }

    Cycle
    readyAt(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return 0;
        return _readyAt[slot];
    }

    PendingKind
    kindOf(isa::RegId r) const
    {
        const int slot = regSlot(r);
        if (slot < 0 || r.idx == 0)
            return PendingKind::kNone;
        return _kind[slot];
    }

    void
    clear()
    {
        _readyAt.fill(0);
        _kind.fill(PendingKind::kNone);
    }

    /** Snapshot hooks: ready times and producer kinds per slot. */
    void
    save(serial::Writer &w) const
    {
        for (const Cycle c : _readyAt)
            w.u64(c);
        for (const PendingKind k : _kind)
            w.u8(static_cast<std::uint8_t>(k));
    }

    void
    restore(serial::Reader &r)
    {
        for (Cycle &c : _readyAt)
            c = r.u64();
        for (PendingKind &k : _kind)
            k = static_cast<PendingKind>(r.u8());
    }

  private:
    std::array<Cycle, kNumRegSlots> _readyAt;
    std::array<PendingKind, kNumRegSlots> _kind;
};

/**
 * Maps a blocking register's producer kind on @p sb to its Figure-6
 * stall class. The caller must have established that @p blocking is
 * actually pending (not ready): a stall on a register with no
 * in-flight producer is a scoreboarding bug and panics.
 */
inline CycleClass
stallClassFor(const Scoreboard &sb, isa::RegId blocking)
{
    switch (sb.kindOf(blocking)) {
      case PendingKind::kLoad:
        return CycleClass::kLoadStall;
      case PendingKind::kNonLoad:
        return CycleClass::kNonLoadDepStall;
      case PendingKind::kNone:
        break;
    }
    ff_panic("stall on a register with no pending producer");
}

} // namespace cpu
} // namespace ff

#endif // FF_CPU_SCOREBOARD_HH
