#include "cpu/cycle_classes.hh"

#include <sstream>

namespace ff
{
namespace cpu
{

const char *
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::kUnstalled: return "unstalled";
      case CycleClass::kLoadStall: return "load_stall";
      case CycleClass::kNonLoadDepStall: return "nonload_dep_stall";
      case CycleClass::kResourceStall: return "resource_stall";
      case CycleClass::kFrontEndStall: return "frontend_stall";
      case CycleClass::kApipeStall: return "apipe_stall";
    }
    return "?";
}

std::string
CycleAccounting::render() const
{
    std::ostringstream oss;
    for (unsigned i = 0; i < kNumCycleClasses; ++i) {
        if (i)
            oss << ' ';
        oss << cycleClassName(static_cast<CycleClass>(i)) << '='
            << counts[i];
    }
    return oss.str();
}

} // namespace cpu
} // namespace ff
