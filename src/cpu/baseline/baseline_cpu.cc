#include "cpu/baseline/baseline_cpu.hh"

#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "cpu/exec.hh"
#include "cpu/issue_check.hh"
#include "cpu/stats_report.hh"

namespace ff
{
namespace cpu
{

using isa::Instruction;

BaselineCpu::BaselineCpu(const isa::Program &prog,
                         const CoreConfig &cfg, bool load_image)
    : CoreBase(prog, cfg, memory::Initiator::kBaseline, load_image)
{
}

CycleClass
BaselineCpu::tryIssue(Cycle now, RunResult &res)
{
    if (!_fe.headReady(now))
        return CycleClass::kFrontEndStall;

    const FetchedGroup &g = _fe.head();
    const InstIdx leader = g.leader;
    const InstIdx end = g.end;

    // ---- dependence + resource check (REG stage): whole-group stall
    const CycleClass stall = checkGroupIssue(
        _prog, leader, end, _ms.sb, _ms.regs, _hier, _cfg, now);
    if (stall != CycleClass::kUnstalled)
        return stall;

    // ---- execute: snapshot reads, apply in slot order --------------
    // The group issues now: consume it from the front end before
    // executing, so a mispredict redirect (which clears the fetch
    // queue) does not race with the head pop.
    const FetchedGroup group = g;
    _fe.pop();

    struct SlotOperands
    {
        bool qpred;
        RegVal s1;
        RegVal s2;
    };
    std::vector<SlotOperands> ops(end - leader);
    for (InstIdx i = leader; i < end; ++i) {
        const Instruction &in = _prog.inst(i);
        SlotOperands &o = ops[i - leader];
        o.qpred = _ms.regs.readPred(in.qpred);
        o.s1 = in.src1.valid() ? _ms.regs.read(in.src1) : 0;
        o.s2 = operandSrc2(
            in, in.src2.valid() ? _ms.regs.read(in.src2) : 0);
    }

    for (InstIdx i = leader; i < end; ++i) {
        const Instruction &in = _prog.inst(i);
        const SlotOperands &o = ops[i - leader];
        ++res.instsRetired;

        if (in.isHalt()) {
            res.halted = true;
            break;
        }

        EvalResult ev = evaluate(in, o.qpred, o.s1, o.s2);

        if (ev.isBranch) {
            ++_stats.branchesRetired;
            _pred->update(group.prediction, ev.taken);
            if (ev.taken != group.predictedTaken) {
                ++_stats.mispredicts;
                const InstIdx target =
                    ev.taken ? static_cast<InstIdx>(in.imm) : end;
                _fe.redirect(target, now + 1 + _cfg.branchResolveDelay);
                ff_trace(trace::kBranch, now, "MISPRED",
                         "@" << i << " actual "
                             << (ev.taken ? "T" : "N") << " -> @"
                             << target);
            }
            continue;
        }
        if (!ev.predTrue)
            continue;

        if (ev.isMemAccess) {
            if (in.isLoad()) {
                ++_stats.loadsIssued;
                const memory::AccessResult ar =
                    _hier.access(memory::AccessKind::kLoad,
                                 memory::Initiator::kBaseline, ev.addr,
                                 now);
                ev.dstVal = loadExtend(in.op, _mem.read(ev.addr,
                                                        ev.size));
                _ms.regs.write(in.dst, ev.dstVal);
                _ms.sb.setPending(in.dst, now + ar.latency,
                                  PendingKind::kLoad);
                ff_trace(trace::kMem, now, "LOAD",
                         "@" << i << " [" << std::hex << ev.addr
                             << std::dec << "] "
                             << memory::memLevelName(ar.level) << " +"
                             << ar.latency);
                continue;
            }
            ++_stats.storesIssued;
            _mem.write(ev.addr, ev.storeVal, ev.size);
            _hier.access(memory::AccessKind::kStore,
                         memory::Initiator::kBaseline, ev.addr, now);
            continue;
        }

        const unsigned lat = in.execLatency();
        if (ev.writesDst) {
            _ms.regs.write(in.dst, ev.dstVal);
            if (lat > 1) {
                _ms.sb.setPending(in.dst, now + lat,
                                  PendingKind::kNonLoad);
            }
        }
        if (ev.writesDst2) {
            _ms.regs.write(in.dst2, ev.dst2Val);
            if (lat > 1) {
                _ms.sb.setPending(in.dst2, now + lat,
                                  PendingKind::kNonLoad);
            }
        }
    }

    ++res.groupsRetired;
    notifyGroupRetire(now, leader, static_cast<unsigned>(end - leader));
    return CycleClass::kUnstalled;
}

std::string
BaselineCpu::statsReport() const
{
    stats::StatGroup g("baseline");
    g.addScalar("loads_issued") += _stats.loadsIssued;
    g.addScalar("stores_issued") += _stats.storesIssued;
    g.addScalar("branches_retired") += _stats.branchesRetired;
    g.addScalar("mispredicts") += _stats.mispredicts;
    return commonStatsReport(_acct, _pred->stats(),
                             _hier.accessStats()) +
           g.dump();
}

void
BaselineCpu::saveModelState(serial::Writer &w) const
{
    _ms.regs.save(w);
    _ms.sb.save(w);
    w.u64(_stats.loadsIssued);
    w.u64(_stats.storesIssued);
    w.u64(_stats.branchesRetired);
    w.u64(_stats.mispredicts);
}

void
BaselineCpu::restoreModelState(serial::Reader &r)
{
    _ms.regs.restore(r);
    _ms.sb.restore(r);
    _stats.loadsIssued = r.u64();
    _stats.storesIssued = r.u64();
    _stats.branchesRetired = r.u64();
    _stats.mispredicts = r.u64();
}

} // namespace cpu
} // namespace ff
