/**
 * @file
 * The baseline in-order EPIC core (Figure 2(a)): issue groups stall
 * atomically in the dependence-check stage whenever any contained
 * instruction's operands are not ready, exactly the behaviour whose
 * stall cycles the two-pass design attacks.
 */

#ifndef FF_CPU_BASELINE_BASELINE_CPU_HH
#define FF_CPU_BASELINE_BASELINE_CPU_HH

#include <memory>

#include "cpu/config.hh"
#include "cpu/cpu.hh"
#include "cpu/frontend.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

/** Counters specific to the baseline model. */
struct BaselineStats
{
    std::uint64_t loadsIssued = 0;
    std::uint64_t storesIssued = 0;
    std::uint64_t branchesRetired = 0;
    std::uint64_t mispredicts = 0;

    void reset() { *this = BaselineStats(); }
};

/** In-order, stall-on-use EPIC pipeline. */
class BaselineCpu : public CpuModel
{
  public:
    BaselineCpu(const isa::Program &prog, const CoreConfig &cfg);
    /** The model holds a reference: temporaries would dangle. */
    BaselineCpu(isa::Program &&, const CoreConfig &) = delete;

    RunResult run(std::uint64_t max_cycles) override;

    const RegFile &archRegs() const override { return _regs; }
    const memory::SparseMemory &memState() const override
    {
        return _mem;
    }
    const CycleAccounting &cycleAccounting() const override
    {
        return _acct;
    }
    memory::Hierarchy &hierarchy() override { return _hier; }
    const branch::DirectionPredictor &predictor() const override
    {
        return *_pred;
    }

    const BaselineStats &stats() const { return _stats; }

    std::string statsReport() const override;

  private:
    /**
     * Attempts to issue the head issue group at @p now.
     * @return the cycle's classification; retires the group when
     *         kUnstalled
     */
    CycleClass tryIssue(Cycle now, RunResult &res);

    /** Maps a blocking register's producer kind to a stall class. */
    CycleClass stallClassFor(isa::RegId blocking) const;

    const isa::Program &_prog;
    CoreConfig _cfg;
    memory::SparseMemory _mem;
    memory::Hierarchy _hier;
    std::unique_ptr<branch::DirectionPredictor> _pred;
    FrontEnd _fe;
    RegFile _regs;
    Scoreboard _sb;
    CycleAccounting _acct;
    BaselineStats _stats;
    bool _ran = false;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_BASELINE_BASELINE_CPU_HH
