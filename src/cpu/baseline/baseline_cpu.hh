/**
 * @file
 * The baseline in-order EPIC core (Figure 2(a)): issue groups stall
 * atomically in the dependence-check stage whenever any contained
 * instruction's operands are not ready, exactly the behaviour whose
 * stall cycles the two-pass design attacks. The register file and
 * scoreboard live in CoreBase's MachineState; this class adds only
 * the issue loop and its counters.
 */

#ifndef FF_CPU_BASELINE_BASELINE_CPU_HH
#define FF_CPU_BASELINE_BASELINE_CPU_HH

#include "cpu/core/core_base.hh"
#include "cpu/scoreboard.hh"

namespace ff
{
namespace cpu
{

/** Counters specific to the baseline model. */
struct BaselineStats
{
    std::uint64_t loadsIssued = 0;
    std::uint64_t storesIssued = 0;
    std::uint64_t branchesRetired = 0;
    std::uint64_t mispredicts = 0;

    void reset() { *this = BaselineStats(); }
};

/** In-order, stall-on-use EPIC pipeline. */
class BaselineCpu : public CoreBase
{
  public:
    BaselineCpu(const isa::Program &prog, const CoreConfig &cfg,
                bool load_image = true);

    RunResult
    run(std::uint64_t max_cycles) final
    {
        return runLoop(
            [this](Cycle now, RunResult &res) {
                return tryIssue(now, res);
            },
            max_cycles);
    }

    const RegFile &archRegs() const override { return _ms.regs; }

    const BaselineStats &stats() const { return _stats; }

    std::string statsReport() const override;

  protected:
    void saveModelState(serial::Writer &w) const override;
    void restoreModelState(serial::Reader &r) override;

  private:
    /**
     * Attempts to issue the head issue group at @p now.
     * @return the cycle's classification; retires the group when
     *         kUnstalled
     */
    CycleClass tryIssue(Cycle now, RunResult &res);

    BaselineStats _stats;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_BASELINE_BASELINE_CPU_HH
