#include "cpu/model_stats.hh"

namespace ff
{
namespace cpu
{

const char *
deferReasonName(DeferReason r)
{
    switch (r) {
      case DeferReason::kNone: return "none";
      case DeferReason::kOperandInvalid: return "operand_invalid";
      case DeferReason::kOperandInFlight: return "operand_in_flight";
      case DeferReason::kMshrFull: return "mshr_full";
      case DeferReason::kStoreBufferFull: return "store_buffer_full";
      case DeferReason::kConflictRetry: return "conflict_retry";
      case DeferReason::kNoFunctionalUnit: return "no_functional_unit";
    }
    return "?";
}

} // namespace cpu
} // namespace ff
