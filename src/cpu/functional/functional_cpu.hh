/**
 * @file
 * The untimed functional reference machine: executes a program group
 * by group with exact EPIC semantics (register reads observe
 * pre-group state; memory operations execute in slot order). Every
 * timed model must finish with identical register and memory state —
 * the backbone of this repo's correctness testing.
 */

#ifndef FF_CPU_FUNCTIONAL_FUNCTIONAL_CPU_HH
#define FF_CPU_FUNCTIONAL_FUNCTIONAL_CPU_HH

#include <cstdint>

#include "cpu/core/functional_result.hh"
#include "cpu/regfile.hh"
#include "isa/program.hh"
#include "memory/sparse_memory.hh"

namespace ff
{
namespace cpu
{

/** Golden-model executor. */
class FunctionalCpu
{
  public:
    /** Outcome of functional execution (see cpu/core). */
    using Result = FunctionalResult;

    explicit FunctionalCpu(const isa::Program &prog);
    /** The model holds a reference: temporaries would dangle. */
    explicit FunctionalCpu(isa::Program &&) = delete;

    /**
     * Executes until HALT or @p max_insts instruction slots.
     * @return statistics of the run
     */
    Result run(std::uint64_t max_insts = UINT64_MAX);

    const RegFile &regs() const { return _regs; }
    const memory::SparseMemory &mem() const { return _mem; }
    memory::SparseMemory &mem() { return _mem; }

  private:
    const isa::Program &_prog;
    RegFile _regs;
    memory::SparseMemory _mem;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_FUNCTIONAL_FUNCTIONAL_CPU_HH
