/**
 * @file
 * The untimed functional reference machine: executes a program group
 * by group with exact EPIC semantics (register reads observe
 * pre-group state; memory operations execute in slot order). Every
 * timed model must finish with identical register and memory state —
 * the backbone of this repo's correctness testing.
 *
 * Execution is resumable: run() keeps its cursor and cumulative
 * statistics in members, so a caller can execute to a slot budget,
 * inspect the machine (the sampled-simulation checkpoint pass copies
 * the register file and memory at interval starts), and continue.
 */

#ifndef FF_CPU_FUNCTIONAL_FUNCTIONAL_CPU_HH
#define FF_CPU_FUNCTIONAL_FUNCTIONAL_CPU_HH

#include <cstdint>
#include <vector>

#include "cpu/core/functional_result.hh"
#include "cpu/regfile.hh"
#include "cpu/warm_history.hh"
#include "isa/program.hh"
#include "memory/sparse_memory.hh"

namespace ff
{
namespace cpu
{

/** Golden-model executor. */
class FunctionalCpu
{
  public:
    /** Outcome of functional execution (see cpu/core). */
    using Result = FunctionalResult;

    explicit FunctionalCpu(const isa::Program &prog);
    /** The model holds a reference: temporaries would dangle. */
    explicit FunctionalCpu(isa::Program &&) = delete;

    /**
     * Executes until HALT or the cumulative slot count reaches
     * @p max_insts (the budget counts total slots executed across
     * every run() call, at issue-group granularity — the last group
     * may overshoot the budget). Calling run() again continues from
     * the stopping point with accumulated statistics.
     * @return cumulative statistics of the execution so far
     */
    Result run(std::uint64_t max_insts = UINT64_MAX);

    /**
     * Attaches a warming-event recorder (or detaches with nullptr):
     * subsequent run() calls log every group fetch, data access and
     * branch outcome into @p warm for cache/predictor warming in the
     * sampled-simulation replay. Recording costs one bounded-ring
     * push per event; the null default costs one branch per group.
     */
    void setWarmHistory(WarmHistory *warm) { _warm = warm; }

    /** Leader of the next unexecuted issue group (the resume point). */
    InstIdx pc() const { return _pc; }

    const RegFile &regs() const { return _regs; }
    const memory::SparseMemory &mem() const { return _mem; }
    memory::SparseMemory &mem() { return _mem; }

  private:
    /** Pre-group operand snapshot of one slot (phase 1 of a group). */
    struct SlotOperands
    {
        bool qpred;
        RegVal s1;
        RegVal s2;
    };

    const isa::Program &_prog;
    RegFile _regs;
    memory::SparseMemory _mem;
    InstIdx _pc = 0;  ///< next group leader
    Result _res;      ///< cumulative across run() calls
    WarmHistory *_warm = nullptr; ///< optional warming recorder
    /** Group operand buffer, hoisted out of the per-group loop so the
     *  hot path never allocates. */
    std::vector<SlotOperands> _ops;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_FUNCTIONAL_FUNCTIONAL_CPU_HH
