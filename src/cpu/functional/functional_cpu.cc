#include "cpu/functional/functional_cpu.hh"

#include "common/logging.hh"
#include "cpu/exec.hh"

namespace ff
{
namespace cpu
{

FunctionalCpu::FunctionalCpu(const isa::Program &prog) : _prog(prog)
{
    const std::string err = prog.validate();
    ff_fatal_if(!err.empty(), "invalid program '", prog.name(), "': ",
                err);
    _mem.loadPages(prog.dataImage().pages());
}

FunctionalCpu::Result
FunctionalCpu::run(std::uint64_t max_insts)
{
    while (!_res.halted && _res.instsExecuted < max_insts) {
        const InstIdx end = _prog.groupEnd(_pc);
        ++_res.groupsExecuted;
        if (_warm != nullptr)
            _warm->recordFetch(isa::Program::instAddr(_pc));

        // Phase 1: snapshot all operand reads (pre-group state).
        _ops.resize(end - _pc);
        for (InstIdx i = _pc; i < end; ++i) {
            const isa::Instruction &in = _prog.inst(i);
            SlotOperands &o = _ops[i - _pc];
            o.qpred = _regs.readPred(in.qpred);
            o.s1 = in.src1.valid() ? _regs.read(in.src1) : 0;
            o.s2 = operandSrc2(in, in.src2.valid() ? _regs.read(in.src2)
                                                   : 0);
        }

        // Phase 2: evaluate and apply in slot order.
        InstIdx next_pc = end;
        for (InstIdx i = _pc; i < end; ++i) {
            const isa::Instruction &in = _prog.inst(i);
            const SlotOperands &o = _ops[i - _pc];
            ++_res.instsExecuted;

            if (in.isHalt()) {
                _res.halted = true;
                break;
            }

            EvalResult ev = evaluate(in, o.qpred, o.s1, o.s2);
            if (ev.isBranch) {
                ++_res.branchesExecuted;
                if (_warm != nullptr) {
                    _warm->recordBranch(isa::Program::instAddr(i),
                                        ev.taken);
                }
                if (ev.taken) {
                    ++_res.branchesTaken;
                    next_pc = static_cast<InstIdx>(in.imm);
                }
                continue;
            }
            if (!ev.predTrue)
                continue;
            if (ev.isMemAccess) {
                if (_warm != nullptr)
                    _warm->recordMem(ev.addr, !in.isLoad());
                if (in.isLoad()) {
                    ++_res.loadsExecuted;
                    ev.dstVal =
                        loadExtend(in.op, _mem.read(ev.addr, ev.size));
                } else {
                    ++_res.storesExecuted;
                    _mem.write(ev.addr, ev.storeVal, ev.size);
                }
            }
            if (ev.writesDst)
                _regs.write(in.dst, ev.dstVal);
            if (ev.writesDst2)
                _regs.write(in.dst2, ev.dst2Val);
        }

        if (_res.halted)
            break;
        ff_panic_if(next_pc >= _prog.size(),
                    "functional execution ran off the program end in '",
                    _prog.name(), "'");
        _pc = next_pc;
    }
    return _res;
}

} // namespace cpu
} // namespace ff
