/**
 * @file
 * Configuration of a simulated core. Defaults reproduce Table 1 of
 * the paper (plus pipeline-shape parameters the paper describes in
 * prose: an Itanium-2-like front end one stage longer, a 64-entry
 * coupling queue, a perfect ALAT, single-cycle B-to-A feedback).
 */

#ifndef FF_CPU_CONFIG_HH
#define FF_CPU_CONFIG_HH

#include "branch/predictor.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"

namespace ff
{
namespace cpu
{

/** Full machine configuration shared by every CPU model. */
struct CoreConfig
{
    /** Issue widths (Table 1: 8-issue, 5 ALU, 3 Mem, 3 FP, 3 Br). */
    isa::GroupLimits limits;

    /** Cache hierarchy and memory parameters (Table 1). */
    memory::MemoryConfig mem;

    /** gshare direction predictor entries (Table 1: 1024). */
    unsigned predictorEntries = 1024;

    /** Direction predictor design (Table 1: gshare). */
    branch::PredictorKind predictorKind =
        branch::PredictorKind::kGshare;

    /**
     * Stages between a fetch and the group's availability at the
     * dependence-check/issue point; the branch-misprediction refill
     * time. Itanium 2's main pipe is 8 stages; the paper models one
     * more.
     */
    unsigned frontEndDepth = 7;

    /** Decoupling queue between fetch and issue, in groups. */
    unsigned fetchQueueGroups = 8;

    /** Extra cycles between branch resolution and fetch redirect. */
    unsigned branchResolveDelay = 2;

    // ----- two-pass parameters --------------------------------------

    /** Coupling queue capacity in instructions (Table 1: 64). */
    unsigned couplingQueueSize = 64;

    /** ALAT capacity; 0 models the paper's perfect ALAT. */
    unsigned alatCapacity = 0;

    /** Speculative store buffer entries. */
    unsigned storeBufferSize = 64;

    /** Latency of the B-to-A committed-result feedback path. */
    unsigned feedbackLatency = 1;

    /** Disable feedback entirely (the "inf" point of Figure 8). */
    bool feedbackEnabled = true;

    /** Enable B-pipe dispatch instruction regrouping (the 2Pre bar). */
    bool regroup = false;

    /**
     * Ablation A2 (suggested in Sec. 4): the A-pipe stalls for
     * anticipable in-flight non-load latencies (FP/MUL) instead of
     * deferring their consumers.
     */
    bool aPipeStallsOnAnticipable = false;

    /**
     * Partial functional-unit replication (Sec. 3.7): when false, the
     * A-pipe has no FP units and every FP instruction is deferred to
     * the (fully-equipped) B-pipe.
     */
    bool aPipeHasFpUnits = true;

    /**
     * A-pipe issue moderation (Sec. 3.5 / future work): when more
     * than aPipeThrottlePercent of the last 64 dispatched
     * instructions were deferred AND the coupling queue is more than
     * half full, the A-pipe pauses dispatch until the B-pipe drains
     * the queue below a quarter. 0 disables the throttle.
     */
    unsigned aPipeThrottlePercent = 0;

    /**
     * Extra penalty cycles charged when a flush resolves in the
     * B-pipe (B-DET misprediction or store-conflict flush) to cover
     * A-file repair from the B-file.
     */
    unsigned bFlushRepairPenalty = 5;

    /** Baseline EPIC cores stall on WAW against in-flight results. */
    bool wawStall = true;

    /**
     * Debug self-check cadence for the two-pass core: every N cycles,
     * verify the A-file coherence invariant (every valid,
     * non-speculative A-file entry equals the architectural B-file).
     * 0 disables (the default; checks are O(registers) per firing).
     */
    unsigned selfCheckInterval = 0;

    // ----- run-ahead (Sec. 2 comparison model) ----------------------

    /**
     * Run-ahead entry threshold: enter run-ahead mode when the issue
     * stage has been blocked on a load for at least this many cycles.
     * 0 enters immediately on any load-dependence stall.
     */
    unsigned runaheadEntryDelay = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CONFIG_HH
