#include "cpu/regfile.hh"

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

isa::RegId
slotReg(unsigned slot)
{
    if (slot < isa::kNumIntRegs)
        return isa::intReg(slot);
    slot -= isa::kNumIntRegs;
    if (slot < isa::kNumFpRegs)
        return isa::fpReg(slot);
    slot -= isa::kNumFpRegs;
    ff_panic_if(slot >= isa::kNumPredRegs, "bad register slot");
    return isa::predReg(slot);
}

RegVal
RegFile::read(isa::RegId r) const
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "read of unused operand slot");
    if (r.idx == 0) {
        // Hardwired: r0 = 0, f0 = +0.0 (bits zero), p0 = true.
        return r.cls == isa::RegClass::kPred ? 1 : 0;
    }
    return _vals[slot];
}

void
RegFile::write(isa::RegId r, RegVal v)
{
    const int slot = regSlot(r);
    ff_panic_if(slot < 0, "write of unused operand slot");
    if (r.idx == 0)
        return; // hardwired
    if (r.cls == isa::RegClass::kPred)
        v = v ? 1 : 0;
    _vals[slot] = v;
}

std::uint64_t
RegFile::fingerprint() const
{
    std::uint64_t h = 1469598103934665603ULL;
    for (RegVal v : _vals) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= static_cast<std::uint8_t>(v >> (8 * b));
            h *= 1099511628211ULL;
        }
    }
    return h;
}

} // namespace cpu
} // namespace ff
