#include "cpu/regfile.hh"

#include "common/logging.hh"

namespace ff
{
namespace cpu
{

isa::RegId
slotReg(unsigned slot)
{
    if (slot < isa::kNumIntRegs)
        return isa::intReg(slot);
    slot -= isa::kNumIntRegs;
    if (slot < isa::kNumFpRegs)
        return isa::fpReg(slot);
    slot -= isa::kNumFpRegs;
    ff_panic_if(slot >= isa::kNumPredRegs, "bad register slot");
    return isa::predReg(slot);
}

std::uint64_t
RegFile::fingerprint() const
{
    std::uint64_t h = 1469598103934665603ULL;
    for (RegVal v : _vals) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= static_cast<std::uint8_t>(v >> (8 * b));
            h *= 1099511628211ULL;
        }
    }
    return h;
}

} // namespace cpu
} // namespace ff
