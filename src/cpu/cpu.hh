/**
 * @file
 * The common interface of the timed CPU models (baseline in-order,
 * two-pass, run-ahead). The experiment harness runs any model to
 * completion and compares architectural results and cycle accounting.
 */

#ifndef FF_CPU_CPU_HH
#define FF_CPU_CPU_HH

#include <cstdint>

#include "branch/predictor.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "cpu/cycle_classes.hh"
#include "cpu/model_stats.hh"
#include "cpu/regfile.hh"
#include "cpu/warm_history.hh"
#include "memory/hierarchy.hh"
#include "memory/sparse_memory.hh"

namespace ff
{
namespace cpu
{

/** Outcome of a simulation run. */
struct RunResult
{
    bool halted = false;          ///< the program's HALT retired
    Cycle cycles = 0;             ///< simulated cycles consumed
    std::uint64_t instsRetired = 0; ///< slots retired (incl. nullified)
    std::uint64_t groupsRetired = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instsRetired) /
                  static_cast<double>(cycles);
    }
};

class CoreBase;

/** Abstract timed CPU. */
class CpuModel
{
  public:
    virtual ~CpuModel() = default;

    /**
     * The CoreBase kernel under this model, or nullptr for models
     * (e.g. the functional CPU) not built on it. Replaces
     * dynamic_cast probes in the metrics/observer plumbing.
     */
    virtual CoreBase *asCoreBase() { return nullptr; }

    /**
     * Runs until HALT retires or @p max_cycles elapse. Models are
     * single-shot per construction, with one exception: an instance
     * that just hit restoreState() may run() once more, continuing
     * from the restored cycle — the fork half of warm-up sharing.
     */
    virtual RunResult run(std::uint64_t max_cycles) = 0;

    /** True if saveState()/restoreState() are implemented. */
    virtual bool supportsSnapshot() const { return false; }

    /**
     * Warps a freshly constructed (never-run) model to an
     * architectural state reached by the functional reference:
     * register file and memory are copied in, fetch restarts at
     * issue-group leader @p entry, and every microarchitectural
     * structure (caches, predictor, queues, scoreboards) stays cold —
     * the sampled-simulation replay pays a detailed warm-up to flush
     * that cold-start bias. The cycle cursor remains 0. The default
     * panics; CoreBase-derived models implement it.
     */
    virtual void
    warpArchState(const RegFile &regs, const memory::SparseMemory &mem,
                  InstIdx entry)
    {
        (void)regs;
        (void)mem;
        (void)entry;
        ff_panic("model does not support architectural warping");
    }

    /**
     * Replays a recorded event history untimed into the caches and
     * the direction predictor of a never-run model — the functional-
     * warming companion of warpArchState(), turning the cold micro-
     * architecture the warp leaves behind into the hot state the true
     * execution would have carried to that point. The default panics;
     * CoreBase-derived models implement it.
     */
    virtual void
    warmMicroArch(const WarmSnapshot &warm)
    {
        (void)warm;
        ff_panic("model does not support micro-architectural warming");
    }

    /**
     * Re-arms the single-shot run() latch so a run stopped by its
     * cycle budget (not by HALT) may continue under a larger budget —
     * the hook sampled replay uses to split one resume into a warm-up
     * leg and a measured leg. Panics if the model never ran or
     * already halted.
     */
    virtual void
    rearmResume()
    {
        ff_panic("model does not support mid-run re-arming");
    }

    /** Cycles simulated so far — the resume point of a snapshot. */
    virtual Cycle currentCycle() const { return 0; }

    /**
     * Serializes the model's complete simulation state (shared core
     * subsystems plus model-owned structures). The default panics;
     * models advertising supportsSnapshot() override it.
     */
    virtual void
    saveState(serial::Writer &w) const
    {
        (void)w;
        ff_panic("model does not support snapshots");
    }

    /**
     * Inverse of saveState() onto a freshly constructed instance of
     * the identical (program, config) pair. Structural mismatches
     * surface through the reader's failure flag.
     */
    virtual void
    restoreState(serial::Reader &r)
    {
        (void)r;
        ff_panic("model does not support snapshots");
    }

    /** Architectural register state (the B-file for two-pass). */
    virtual const RegFile &archRegs() const = 0;

    /** Architectural memory state. */
    virtual const memory::SparseMemory &memState() const = 0;

    /** Figure-6 cycle classification of the architectural pipe. */
    virtual const CycleAccounting &cycleAccounting() const = 0;

    virtual memory::Hierarchy &hierarchy() = 0;
    virtual const branch::DirectionPredictor &predictor() const = 0;

    /**
     * Fills the sections of @p out this model owns (two-pass and
     * run-ahead counters); models without extra statistics leave it
     * untouched. Replaces per-model dynamic_casts in the harness.
     */
    virtual void collectStats(ModelStats &out) const { (void)out; }

    /**
     * Renders every statistic the model keeps as "group.stat value"
     * lines (gem5-style), for drivers and debugging.
     */
    virtual std::string statsReport() const = 0;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_CPU_HH
