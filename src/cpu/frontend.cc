#include "cpu/frontend.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace ff
{
namespace cpu
{

FrontEnd::FrontEnd(const isa::Program &prog, const CoreConfig &cfg,
                   branch::DirectionPredictor &pred,
                   memory::Hierarchy &mem, memory::Initiator who)
    : _prog(prog), _cfg(cfg), _pred(pred), _mem(mem), _who(who)
{
    reset(0);
}

void
FrontEnd::reset(InstIdx entry)
{
    _queue.clear();
    _pc = entry;
    _pcValid = entry < _prog.size();
    _resumeAt = 0;
}

void
FrontEnd::tick(Cycle now)
{
    if (!_pcValid || now < _resumeAt)
        return;
    if (_queue.size() >= _cfg.fetchQueueGroups)
        return;

    FetchedGroup g;
    g.leader = _pc;
    g.end = _prog.groupEnd(_pc);

    const Addr fetch_addr = isa::Program::instAddr(_pc);
    const memory::AccessResult icache = _mem.access(
        memory::AccessKind::kInstFetch, _who, fetch_addr, now);
    const unsigned l1i_lat = _mem.config().l1i.latency;
    const unsigned extra =
        icache.latency > l1i_lat ? icache.latency - l1i_lat : 0;
    g.readyAt = now + _cfg.frontEndDepth + extra;
    _stats.icacheMissCycles += extra;

    // Decode-time branch handling: branches are group-final.
    const isa::Instruction &last = _prog.inst(g.end - 1);
    bool saw_halt = false;
    for (InstIdx i = g.leader; i < g.end; ++i) {
        if (_prog.inst(i).isHalt())
            saw_halt = true;
    }
    if (last.isBranch()) {
        g.hasBranch = true;
        g.prediction = _pred.predict(isa::Program::instAddr(g.end - 1));
        g.predictedTaken = g.prediction.taken;
        g.predictedNext = g.predictedTaken
                              ? static_cast<InstIdx>(last.imm)
                              : g.end;
    } else {
        g.predictedNext = g.end;
    }

    ff_trace(trace::kFetch, now, "FETCH",
             "group @" << g.leader << ".." << (g.end - 1)
                       << (g.hasBranch
                               ? (g.predictedTaken ? " pred-T" : " pred-N")
                               : "")
                       << " ready@" << g.readyAt);

    _queue.push_back(g);
    ++_stats.groupsFetched;

    if (saw_halt || g.predictedNext >= _prog.size()) {
        // Stop at a halt or past the program end; a redirect (flush
        // recovery) restarts fetch if this was a wrong path.
        _pcValid = false;
    } else {
        _pc = g.predictedNext;
    }
}

void
FrontEnd::redirect(InstIdx target, Cycle resume_at)
{
    _queue.clear();
    _pc = target;
    _pcValid = target < _prog.size();
    _resumeAt = resume_at;
    ++_stats.redirects;
}

void
FrontEnd::save(serial::Writer &w) const
{
    w.u64(_queue.size());
    for (const FetchedGroup &g : _queue) {
        w.u32(g.leader);
        w.u32(g.end);
        w.u64(g.readyAt);
        w.boolean(g.hasBranch);
        w.boolean(g.predictedTaken);
        w.u32(g.predictedNext);
        branch::savePrediction(w, g.prediction);
    }
    w.u32(_pc);
    w.boolean(_pcValid);
    w.u64(_resumeAt);
    w.u64(_stats.groupsFetched);
    w.u64(_stats.icacheMissCycles);
    w.u64(_stats.redirects);
}

void
FrontEnd::restore(serial::Reader &r)
{
    _queue.clear();
    const std::size_t n = r.seq(24);
    for (std::size_t i = 0; i < n; ++i) {
        FetchedGroup g;
        g.leader = r.u32();
        g.end = r.u32();
        g.readyAt = r.u64();
        g.hasBranch = r.boolean();
        g.predictedTaken = r.boolean();
        g.predictedNext = r.u32();
        branch::restorePrediction(r, g.prediction);
        _queue.push_back(g);
    }
    _pc = r.u32();
    _pcValid = r.boolean();
    _resumeAt = r.u64();
    _stats.groupsFetched = r.u64();
    _stats.icacheMissCycles = r.u64();
    _stats.redirects = r.u64();
}

} // namespace cpu
} // namespace ff
