/**
 * @file
 * Pure functional evaluation of one ffvm instruction given its
 * operand values. Every execution engine (functional reference,
 * baseline pipe, A-pipe, B-pipe, run-ahead) funnels through this so
 * instruction semantics exist in exactly one place.
 */

#ifndef FF_CPU_EXEC_HH
#define FF_CPU_EXEC_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ff
{
namespace cpu
{

/** Result of evaluating an instruction's non-memory semantics. */
struct EvalResult
{
    /** Did the qualifying predicate allow execution? */
    bool predTrue = false;

    bool writesDst = false;
    bool writesDst2 = false;
    RegVal dstVal = 0;
    RegVal dst2Val = 0;

    /** Memory access request (loads leave dstVal for the caller). */
    bool isMemAccess = false;
    Addr addr = 0;
    unsigned size = 0;
    RegVal storeVal = 0;

    /** Branch outcome (taken iff predTrue for ffvm branches). */
    bool isBranch = false;
    bool taken = false;
};

/**
 * Evaluates @p in with operand values @p qpred / @p s1 / @p s2.
 * @p s2 must already be the immediate when src2IsImm is set (callers
 * use operandSrc2()). For loads the caller performs the memory read
 * and applies loadExtend(); evaluate() only computes the address.
 */
EvalResult evaluate(const isa::Instruction &in, bool qpred, RegVal s1,
                    RegVal s2);

/** Returns the src2 operand value: the immediate or @p reg_val. */
inline RegVal
operandSrc2(const isa::Instruction &in, RegVal reg_val)
{
    return in.src2IsImm ? static_cast<RegVal>(in.imm) : reg_val;
}

/** Applies a load's width/sign treatment to raw little-endian bytes. */
RegVal loadExtend(isa::Opcode op, std::uint64_t raw);

/** Bytes accessed by a memory opcode. */
unsigned memSize(isa::Opcode op);

} // namespace cpu
} // namespace ff

#endif // FF_CPU_EXEC_HH
