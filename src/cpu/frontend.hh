/**
 * @file
 * The shared processor front end (IPG/ROT/EXP/DEC of Figure 3): it
 * fetches one issue group per cycle through the L1I, predicts branch
 * directions with gshare, and presents decoded groups to the issue
 * logic after a configurable pipeline depth. Redirects (misprediction
 * or flush recovery) empty the queue and suspend fetch until the
 * resume cycle, which is how misprediction penalties manifest.
 */

#ifndef FF_CPU_FRONTEND_HH
#define FF_CPU_FRONTEND_HH

#include <deque>

#include "branch/predictor.hh"
#include "common/serialize.hh"
#include "cpu/config.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"

namespace ff
{
namespace cpu
{

/** A fetched, decoded, branch-predicted issue group. */
struct FetchedGroup
{
    InstIdx leader;  ///< static index of the group's first slot
    InstIdx end;     ///< one past the group's last slot
    Cycle readyAt;   ///< cycle the group reaches the issue point
    bool hasBranch = false;
    bool predictedTaken = false;
    InstIdx predictedNext; ///< leader the front end fetches next
    branch::Prediction prediction{}; ///< for resolve-time training
};

/** Front-end statistics. */
struct FrontEndStats
{
    std::uint64_t groupsFetched = 0;
    std::uint64_t icacheMissCycles = 0;
    std::uint64_t redirects = 0;

    void reset() { *this = FrontEndStats(); }
};

/** Decoupled fetch unit feeding one or two back-end pipes. */
class FrontEnd
{
  public:
    FrontEnd(const isa::Program &prog, const CoreConfig &cfg,
             branch::DirectionPredictor &pred, memory::Hierarchy &mem,
             memory::Initiator who);

    /** Restarts fetch at @p entry with an empty queue. */
    void reset(InstIdx entry);

    /** Fetches up to one group; call once per cycle. */
    void tick(Cycle now);

    bool empty() const { return _queue.empty(); }

    /** True if the oldest fetched group is available for issue. */
    bool
    headReady(Cycle now) const
    {
        return !_queue.empty() && _queue.front().readyAt <= now;
    }

    const FetchedGroup &head() const { return _queue.front(); }
    void pop() { _queue.pop_front(); }

    /**
     * Squashes all fetched groups and restarts fetch at @p target
     * from cycle @p resume_at (redirect latency models the resolve-
     * to-fetch distance plus any repair penalty).
     */
    void redirect(InstIdx target, Cycle resume_at);

    /** True if fetch has stopped at a halt or past the program end. */
    bool fetchStopped() const { return !_pcValid; }

    /** True if fetch is suspended recovering from a redirect. */
    bool redirecting(Cycle now) const { return now < _resumeAt; }

    const FrontEndStats &stats() const { return _stats; }

    /** Snapshot hooks: queue, fetch PC, resume cycle and stats. */
    void save(serial::Writer &w) const;
    void restore(serial::Reader &r);

  private:
    const isa::Program &_prog;
    const CoreConfig &_cfg;
    branch::DirectionPredictor &_pred;
    memory::Hierarchy &_mem;
    memory::Initiator _who;

    std::deque<FetchedGroup> _queue;
    InstIdx _pc = 0;
    bool _pcValid = true;
    Cycle _resumeAt = 0;

    FrontEndStats _stats;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_FRONTEND_HH
