/**
 * @file
 * Shared rendering of CPU-model statistics into gem5-style
 * "group.stat value" dumps via the stats::StatGroup registry.
 */

#ifndef FF_CPU_STATS_REPORT_HH
#define FF_CPU_STATS_REPORT_HH

#include <string>

#include "branch/gshare.hh"
#include "cpu/cycle_classes.hh"
#include "memory/hierarchy.hh"

namespace ff
{
namespace cpu
{

/** Cycle classes, branch and per-level access stats common to all
 *  timed models. */
std::string commonStatsReport(const CycleAccounting &acct,
                              const branch::PredictorStats &branches,
                              const memory::AccessStats &accesses);

} // namespace cpu
} // namespace ff

#endif // FF_CPU_STATS_REPORT_HH
