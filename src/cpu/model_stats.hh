/**
 * @file
 * Model-specific statistic bundles, and the ModelStats sink through
 * which the harness collects them. These live below cpu.hh so the
 * abstract CpuModel can expose a virtual collectStats() hook instead
 * of forcing callers to dynamic_cast to each concrete model.
 */

#ifndef FF_CPU_MODEL_STATS_HH
#define FF_CPU_MODEL_STATS_HH

#include <array>
#include <cstdint>

#include "memory/alat.hh"

namespace ff
{
namespace cpu
{

/**
 * Why an instruction was deferred to the B-pipe. Lives here (not in
 * the two-pass headers) so the core observer seam and the per-reason
 * statistics histogram can name the reason without pulling in the
 * coupling-queue machinery.
 */
enum class DeferReason : std::uint8_t
{
    kNone = 0,
    kOperandInvalid = 1,   ///< source register V=0
    kOperandInFlight = 2,  ///< source valid but not ready at dispatch
    kMshrFull = 3,         ///< load could not get an MSHR
    kStoreBufferFull = 4,  ///< store could not be buffered
    kConflictRetry = 5,    ///< forward-progress fallback after a
                           ///< store-conflict flush (the offending
                           ///< load re-executes non-speculatively)
    kNoFunctionalUnit = 6, ///< the A-pipe lacks the unit (Sec. 3.7
                           ///< partial replication)
};
inline constexpr unsigned kNumDeferReasons = 7;
/** Alias kept for the histogram declaration below. */
inline constexpr unsigned kNumDeferReasonsStats = kNumDeferReasons;

/**
 * Stable snake_case name of @p r, used by the statsReport dump, the
 * profile tables and the JSON metrics export (and pinned by the
 * name-table tests so a new reason cannot ship nameless).
 */
const char *deferReasonName(DeferReason r);

/** Counters reported by the two-pass experiments. */
struct TwoPassStats
{
    // A-pipe dispatch outcomes.
    std::uint64_t dispatched = 0;     ///< instructions entering the CQ
    std::uint64_t preExecuted = 0;    ///< completed in the A-pipe
    std::uint64_t deferred = 0;       ///< suppressed to the B-pipe
    std::array<std::uint64_t, kNumDeferReasonsStats> deferredByReason{};

    // Memory behaviour.
    std::uint64_t loadsInA = 0;
    std::uint64_t loadsInB = 0;       ///< deferred loads executed in B
    std::uint64_t storesInA = 0;      ///< buffered speculatively
    std::uint64_t storesInB = 0;      ///< deferred stores executed in B
    std::uint64_t loadsPastDeferredStore = 0; ///< A-loads issued while
                                              ///< a deferred store was
                                              ///< queued (Sec. 4 stat)
    std::uint64_t storeConflictFlushes = 0;
    std::uint64_t storeForwardings = 0; ///< A-loads fed by the buffer

    // Branch resolution split (Sec. 4: 32% A / 68% B in the paper).
    std::uint64_t branchesResolvedInA = 0;
    std::uint64_t branchesResolvedInB = 0;
    std::uint64_t aDetMispredicts = 0;
    std::uint64_t bDetMispredicts = 0;

    // Pipe-coupling behaviour.
    std::uint64_t aStallCqFull = 0;    ///< A-pipe cycles lost to CQ room
    std::uint64_t aStallAnticipable = 0; ///< ablation-A2 stall cycles
    std::uint64_t aStallThrottled = 0; ///< issue-moderation pause cycles
    std::uint64_t regroupedGroups = 0; ///< extra groups fused by 2Pre
    std::uint64_t feedbackApplied = 0;
    std::uint64_t feedbackDropped = 0;
    std::uint64_t registersRepaired = 0; ///< A-file repair volume

    void reset() { *this = TwoPassStats(); }
};

/** Run-ahead-specific counters. */
struct RunaheadStats
{
    std::uint64_t episodes = 0;        ///< run-ahead entries
    std::uint64_t runaheadCycles = 0;
    std::uint64_t runaheadLoads = 0;   ///< prefetching accesses issued
    std::uint64_t runaheadInsts = 0;   ///< pseudo-retired in run-ahead
    std::uint64_t invResults = 0;      ///< INV-propagated results

    void reset() { *this = RunaheadStats(); }
};

/**
 * Everything a model can hand the harness beyond the common
 * interface. Models fill only the sections they own; the rest stay
 * default-initialized.
 */
struct ModelStats
{
    TwoPassStats twopass;
    memory::AlatStats alat;
    RunaheadStats runahead;
};

} // namespace cpu
} // namespace ff

#endif // FF_CPU_MODEL_STATS_HH
