#include "isa/instruction.hh"

#include "common/logging.hh"

namespace ff
{
namespace isa
{

namespace detail
{

const OpInfo kOpTable[] = {
    /* kNop  */ {"nop", UnitClass::kAlu, 1},
    /* kHalt */ {"halt", UnitClass::kAlu, 1},
    /* kAdd  */ {"add", UnitClass::kAlu, 1},
    /* kSub  */ {"sub", UnitClass::kAlu, 1},
    /* kAnd  */ {"and", UnitClass::kAlu, 1},
    /* kOr   */ {"or", UnitClass::kAlu, 1},
    /* kXor  */ {"xor", UnitClass::kAlu, 1},
    /* kShl  */ {"shl", UnitClass::kAlu, 1},
    /* kShr  */ {"shr", UnitClass::kAlu, 1},
    /* kSra  */ {"sra", UnitClass::kAlu, 1},
    /* kMul  */ {"mul", UnitClass::kAlu, 3},
    /* kMov  */ {"mov", UnitClass::kAlu, 1},
    /* kMovi */ {"movi", UnitClass::kAlu, 1},
    /* kCmp  */ {"cmp", UnitClass::kAlu, 1},
    /* kItof */ {"itof", UnitClass::kAlu, 2},
    /* kFtoi */ {"ftoi", UnitClass::kAlu, 2},
    /* kFadd */ {"fadd", UnitClass::kFp, 4},
    /* kFsub */ {"fsub", UnitClass::kFp, 4},
    /* kFmul */ {"fmul", UnitClass::kFp, 4},
    /* kFdiv */ {"fdiv", UnitClass::kFp, 16},
    /* kFcmp */ {"fcmp", UnitClass::kFp, 2},
    /* kLd4  */ {"ld4", UnitClass::kMem, 0},
    /* kLd8  */ {"ld8", UnitClass::kMem, 0},
    /* kSt4  */ {"st4", UnitClass::kMem, 1},
    /* kSt8  */ {"st8", UnitClass::kMem, 1},
    /* kBr   */ {"br", UnitClass::kBranch, 1},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<std::size_t>(Opcode::kNumOpcodes),
              "opcode table out of sync");

void
badOpcode(std::size_t i)
{
    ff_panic("bad opcode ", i);
}

} // namespace detail

std::string
regName(RegId r)
{
    switch (r.cls) {
      case RegClass::kNone:
        return "-";
      case RegClass::kInt:
        return "r" + std::to_string(r.idx);
      case RegClass::kFp:
        return "f" + std::to_string(r.idx);
      case RegClass::kPred:
        return "p" + std::to_string(r.idx);
    }
    return "?";
}

const char *
condName(CmpCond c)
{
    switch (c) {
      case CmpCond::kEq: return "eq";
      case CmpCond::kNe: return "ne";
      case CmpCond::kLt: return "lt";
      case CmpCond::kLe: return "le";
      case CmpCond::kGt: return "gt";
      case CmpCond::kGe: return "ge";
      case CmpCond::kLtu: return "ltu";
    }
    return "?";
}

} // namespace isa
} // namespace ff
