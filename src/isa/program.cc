#include "isa/program.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace ff
{
namespace isa
{

Program
sequentialize(const Program &prog)
{
    std::vector<Instruction> insts = prog.insts();
    for (Instruction &in : insts)
        in.stop = true;
    Program out(prog.name(), std::move(insts));
    for (const auto &[base, page] : prog.dataImage().pages())
        out.pokeBytes(base, page.data(), page.size());
    return out;
}

Program::Program(std::string name, std::vector<Instruction> insts)
    : _name(std::move(name)), _insts(std::move(insts))
{
    rebuildGroups();
}

namespace
{

/** splitmix64 finalizer: the mixing step of the stream hash. */
std::uint64_t
mix64(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    return h ^ (h >> 27);
}

std::uint64_t
mixReg(std::uint64_t h, RegId r)
{
    return mix64(h, (static_cast<std::uint64_t>(r.cls) << 8) |
                        static_cast<std::uint64_t>(r.idx));
}

} // namespace

void
Program::rebuildGroups()
{
    const InstIdx n = static_cast<InstIdx>(_insts.size());
    _groupStart.assign(n, 0);
    _groupEnd.assign(n, 0);
    InstIdx leader = 0;
    std::uint64_t h = 0x8f1e'c0de'0000'0000ULL ^ n;
    for (InstIdx i = 0; i < n; ++i) {
        _groupStart[i] = leader;
        if (_insts[i].stop || i + 1 == n) {
            for (InstIdx j = leader; j <= i; ++j)
                _groupEnd[j] = i + 1;
            leader = i + 1;
        }
        // Fold every semantic field (not raw bytes: padding and the
        // srcLine provenance must not perturb the identity).
        const Instruction &in = _insts[i];
        h = mix64(h, static_cast<std::uint64_t>(in.op));
        h = mix64(h, static_cast<std::uint64_t>(in.cond));
        h = mixReg(h, in.qpred);
        h = mixReg(h, in.dst);
        h = mixReg(h, in.dst2);
        h = mixReg(h, in.src1);
        h = mixReg(h, in.src2);
        h = mix64(h, static_cast<std::uint64_t>(in.imm));
        h = mix64(h, (in.src2IsImm ? 2u : 0u) | (in.stop ? 1u : 0u));
    }
    _instHash = h;
}

void
DataImage::write(Addr addr, const void *bytes, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    std::size_t done = 0;
    while (done < len) {
        const Addr a = addr + done;
        const Addr page_base = a - (a % kPageBytes);
        auto [it, inserted] = _pages.try_emplace(page_base);
        if (inserted)
            it->second.assign(kPageBytes, 0);
        const std::size_t off = a % kPageBytes;
        const std::size_t chunk =
            std::min(len - done, static_cast<std::size_t>(kPageBytes) -
                                     off);
        std::memcpy(it->second.data() + off, p + done, chunk);
        done += chunk;
    }
}

std::uint8_t
DataImage::read(Addr addr) const
{
    const Addr page_base = addr - (addr % kPageBytes);
    auto it = _pages.find(page_base);
    return it == _pages.end() ? 0 : it->second[addr % kPageBytes];
}

void
Program::pokeBytes(Addr addr, const void *bytes, std::size_t len)
{
    _data.write(addr, bytes, len);
}

void
Program::poke64(Addr addr, std::uint64_t value)
{
    pokeBytes(addr, &value, sizeof(value));
}

void
Program::poke32(Addr addr, std::uint32_t value)
{
    pokeBytes(addr, &value, sizeof(value));
}

void
Program::pokeDouble(Addr addr, double value)
{
    pokeBytes(addr, &value, sizeof(value));
}

namespace
{

bool
regInRange(RegId r)
{
    switch (r.cls) {
      case RegClass::kNone:
        return true;
      case RegClass::kInt:
        return r.idx < kNumIntRegs;
      case RegClass::kFp:
        return r.idx < kNumFpRegs;
      case RegClass::kPred:
        return r.idx < kNumPredRegs;
    }
    return false;
}

} // namespace

std::string
Program::validate(const GroupLimits &limits) const
{
    std::ostringstream err;
    const InstIdx n = size();
    if (n == 0)
        return "empty program";
    if (!_insts[n - 1].stop)
        return "final instruction lacks a stop bit";

    bool has_halt = false;
    for (InstIdx i = 0; i < n; ++i) {
        const Instruction &in = _insts[i];
        if (in.isHalt())
            has_halt = true;
        if (!regInRange(in.qpred) || !regInRange(in.dst) ||
            !regInRange(in.dst2) || !regInRange(in.src1) ||
            !regInRange(in.src2)) {
            err << "inst " << i << ": register index out of range";
            return err.str();
        }
        if (in.qpred.cls != RegClass::kPred) {
            err << "inst " << i << ": qualifying predicate is not a "
                << "predicate register";
            return err.str();
        }
        if (in.isBranch()) {
            // A taken branch squashes younger slots of its own group;
            // we sidestep that complexity by requiring branches to be
            // group-final (the scheduler always emits them that way).
            if (!in.stop) {
                err << "inst " << i << ": branch is not the final slot "
                    << "of its issue group";
                return err.str();
            }
            if (in.imm < 0 || in.imm >= static_cast<std::int64_t>(n)) {
                err << "inst " << i << ": branch target " << in.imm
                    << " out of range";
                return err.str();
            }
            if (!isGroupLeader(static_cast<InstIdx>(in.imm))) {
                err << "inst " << i << ": branch target " << in.imm
                    << " is not an issue-group leader";
                return err.str();
            }
        }
    }
    if (!has_halt)
        return "program has no halt instruction";

    // Per-group resource and dependence checks.
    for (InstIdx leader = 0; leader < n; leader = _groupEnd[leader]) {
        const InstIdx end = _groupEnd[leader];
        unsigned alu = 0, mem = 0, fp = 0, br = 0;
        // Written registers in this group, for RAW/WAW detection.
        std::vector<RegId> written;
        bool group_has_store = false;
        for (InstIdx i = leader; i < end; ++i) {
            const Instruction &in = _insts[i];
            // Memory ordering within a group: once a store appears,
            // no further memory operation may share the group (the
            // two-pass merge logic relies on this; the scheduler's
            // conservative memory edges always satisfy it).
            if (in.isMem()) {
                if (group_has_store) {
                    err << "inst " << i
                        << ": memory op follows a store in its group";
                    return err.str();
                }
                if (in.isStore())
                    group_has_store = true;
            }
            switch (in.unit()) {
              case UnitClass::kAlu: ++alu; break;
              case UnitClass::kMem: ++mem; break;
              case UnitClass::kFp: ++fp; break;
              case UnitClass::kBranch: ++br; break;
            }
            std::array<RegId, 4> srcs;
            unsigned ns = in.sources(srcs);
            for (unsigned s = 0; s < ns; ++s) {
                for (const RegId &w : written) {
                    if (srcs[s] == w) {
                        err << "inst " << i << ": intra-group RAW on "
                            << regName(w);
                        return err.str();
                    }
                }
            }
            std::array<RegId, 2> dsts;
            unsigned nd = in.destinations(dsts);
            for (unsigned d = 0; d < nd; ++d) {
                // Hardwired registers may not be written.
                if ((dsts[d].cls == RegClass::kInt && dsts[d].idx == 0) ||
                    (dsts[d].cls == RegClass::kFp && dsts[d].idx == 0) ||
                    (dsts[d].cls == RegClass::kPred && dsts[d].idx == 0)) {
                    err << "inst " << i << ": write to hardwired "
                        << regName(dsts[d]);
                    return err.str();
                }
                for (const RegId &w : written) {
                    if (dsts[d] == w) {
                        err << "inst " << i << ": intra-group WAW on "
                            << regName(w);
                        return err.str();
                    }
                }
                written.push_back(dsts[d]);
            }
        }
        const unsigned total = end - leader;
        if (total > limits.issueWidth || alu > limits.aluUnits ||
            mem > limits.memUnits || fp > limits.fpUnits ||
            br > limits.branchUnits) {
            err << "group at " << leader << " oversubscribes resources ("
                << total << " slots, " << alu << " alu, " << mem
                << " mem, " << fp << " fp, " << br << " br)";
            return err.str();
        }
    }
    return "";
}

} // namespace isa
} // namespace ff
