/**
 * @file
 * A fluent assembler for ffvm programs. Workloads and tests construct
 * code through this interface; labels are resolved at finalize time.
 *
 * Two usage modes:
 *  - sequential (default): every instruction ends its own issue group
 *    (stop bit set). The compiler's list scheduler later regroups the
 *    code into wide issue groups, playing the role of the IMPACT/Intel
 *    compilers in the paper.
 *  - explicit grouping: construct with auto_stop = false and call
 *    stop() to delimit groups by hand (used by pipeline unit tests).
 */

#ifndef FF_ISA_BUILDER_HH
#define FF_ISA_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace ff
{
namespace isa
{

/** Builds Programs instruction by instruction with label support. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name, bool auto_stop = true);

    /** Binds a label to the next appended instruction. */
    void label(const std::string &name);

    /** Sets the stop bit on the most recently appended instruction. */
    void stop();

    /**
     * Sets the qualifying predicate of the most recently appended
     * instruction. @return *this for chaining.
     */
    ProgramBuilder &pred(RegId p);

    // --- Integer ALU -----------------------------------------------
    ProgramBuilder &add(RegId dst, RegId a, RegId b);
    ProgramBuilder &addi(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &sub(RegId dst, RegId a, RegId b);
    ProgramBuilder &subi(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &and_(RegId dst, RegId a, RegId b);
    ProgramBuilder &andi(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &or_(RegId dst, RegId a, RegId b);
    ProgramBuilder &ori(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &xor_(RegId dst, RegId a, RegId b);
    ProgramBuilder &xori(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &shl(RegId dst, RegId a, RegId b);
    ProgramBuilder &shli(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &shri(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &srai(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &mul(RegId dst, RegId a, RegId b);
    ProgramBuilder &muli(RegId dst, RegId a, std::int64_t imm);
    ProgramBuilder &mov(RegId dst, RegId a);
    ProgramBuilder &movi(RegId dst, std::int64_t imm);

    // --- Compares ---------------------------------------------------
    /** pt = (a cond b), pf = !(a cond b). */
    ProgramBuilder &cmp(CmpCond c, RegId pt, RegId pf, RegId a, RegId b);
    ProgramBuilder &cmpi(CmpCond c, RegId pt, RegId pf, RegId a,
                         std::int64_t imm);

    // --- Conversions / FP ------------------------------------------
    ProgramBuilder &itof(RegId fdst, RegId isrc);
    ProgramBuilder &ftoi(RegId idst, RegId fsrc);
    ProgramBuilder &fadd(RegId dst, RegId a, RegId b);
    ProgramBuilder &fsub(RegId dst, RegId a, RegId b);
    ProgramBuilder &fmul(RegId dst, RegId a, RegId b);
    ProgramBuilder &fdiv(RegId dst, RegId a, RegId b);
    ProgramBuilder &fcmp(CmpCond c, RegId pt, RegId pf, RegId a, RegId b);

    // --- Memory ------------------------------------------------------
    ProgramBuilder &ld4(RegId dst, RegId base, std::int64_t off);
    ProgramBuilder &ld8(RegId dst, RegId base, std::int64_t off);
    ProgramBuilder &st4(RegId base, std::int64_t off, RegId val);
    ProgramBuilder &st8(RegId base, std::int64_t off, RegId val);

    // --- Control ------------------------------------------------------
    /** Branch to @p target when the qualifying predicate is true.
     *  Call pred() afterwards to set a condition; default is always. */
    ProgramBuilder &br(const std::string &target);
    ProgramBuilder &halt();
    ProgramBuilder &nop();

    /** Number of instructions appended so far. */
    InstIdx size() const { return static_cast<InstIdx>(_insts.size()); }

    /**
     * Resolves labels and produces the Program. Fails fatally on
     * undefined labels. The result still needs Program::validate()
     * (run by the scheduler and by simulators on load).
     */
    Program finalize();

  private:
    Instruction &emit(Opcode op);
    ProgramBuilder &alu(Opcode op, RegId dst, RegId a, RegId b);
    ProgramBuilder &alui(Opcode op, RegId dst, RegId a, std::int64_t imm);

    std::string _name;
    bool _autoStop;
    std::vector<Instruction> _insts;
    std::map<std::string, InstIdx> _labels;
    std::vector<std::pair<InstIdx, std::string>> _pendingBranches;
};

} // namespace isa
} // namespace ff

#endif // FF_ISA_BUILDER_HH
