#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"

namespace ff
{
namespace isa
{

namespace
{

/** Cursor over one source line. */
struct Scanner
{
    const std::string &line;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < line.size() &&
               std::isspace(static_cast<unsigned char>(line[pos]))) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= line.size();
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos < line.size() && line[pos] == c;
    }

    bool
    consume(char c)
    {
        if (!peek(c))
            return false;
        ++pos;
        return true;
    }

    /** Reads an identifier-like token ([A-Za-z0-9_.]+). */
    std::string
    ident()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                line[pos] == '_' || line[pos] == '.')) {
            ++pos;
        }
        return line.substr(start, pos - start);
    }

    /** Reads a signed integer (decimal or 0x hex). */
    bool
    integer(std::int64_t *out)
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < line.size() && (line[pos] == '-' || line[pos] == '+'))
            ++pos;
        bool hex = false;
        if (pos + 1 < line.size() && line[pos] == '0' &&
            (line[pos + 1] == 'x' || line[pos + 1] == 'X')) {
            pos += 2;
            hex = true;
        }
        std::size_t digits = 0;
        while (pos < line.size() &&
               (hex ? std::isxdigit(
                          static_cast<unsigned char>(line[pos]))
                    : std::isdigit(
                          static_cast<unsigned char>(line[pos])))) {
            ++pos;
            ++digits;
        }
        if (digits == 0) {
            pos = start;
            return false;
        }
        // Parse as unsigned to allow full 64-bit hex constants.
        const std::string text = line.substr(start, pos - start);
        errno = 0;
        if (hex || text[0] != '-') {
            *out = static_cast<std::int64_t>(
                std::strtoull(text.c_str(), nullptr, 0));
        } else {
            *out = std::strtoll(text.c_str(), nullptr, 0);
        }
        return true;
    }

    std::string rest() { return line.substr(pos); }
};

/** Parses "r5" / "f2" / "p7". */
bool
parseReg(Scanner &s, RegId *out)
{
    s.skipSpace();
    const std::size_t save = s.pos;
    const std::string tok = s.ident();
    if (tok.size() < 2) {
        s.pos = save;
        return false;
    }
    RegClass cls;
    switch (tok[0]) {
      case 'r': cls = RegClass::kInt; break;
      case 'f': cls = RegClass::kFp; break;
      case 'p': cls = RegClass::kPred; break;
      default:
        s.pos = save;
        return false;
    }
    unsigned idx = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
            s.pos = save;
            return false;
        }
        idx = idx * 10 + static_cast<unsigned>(tok[i] - '0');
    }
    if (idx >= 64) {
        s.pos = save;
        return false;
    }
    out->cls = cls;
    out->idx = static_cast<std::uint8_t>(idx);
    return true;
}

bool
parseCond(const std::string &name, CmpCond *out)
{
    static const std::map<std::string, CmpCond> kConds = {
        {"eq", CmpCond::kEq}, {"ne", CmpCond::kNe},
        {"lt", CmpCond::kLt}, {"le", CmpCond::kLe},
        {"gt", CmpCond::kGt}, {"ge", CmpCond::kGe},
        {"ltu", CmpCond::kLtu},
    };
    auto it = kConds.find(name);
    if (it == kConds.end())
        return false;
    *out = it->second;
    return true;
}

/** "[rN]" / "[rN+imm]" / "[rN-imm]". */
bool
parseMemOperand(Scanner &s, RegId *base, std::int64_t *off)
{
    if (!s.consume('['))
        return false;
    if (!parseReg(s, base))
        return false;
    *off = 0;
    s.skipSpace();
    if (s.peek(']')) {
        s.consume(']');
        return true;
    }
    // The sign is part of the offset expression.
    if (!s.integer(off))
        return false;
    return s.consume(']');
}

struct PendingBranch
{
    InstIdx idx;
    std::string target; // label, or "@N"
    int lineNo;
};

} // namespace

std::string
assemble(const std::string &source, const std::string &name,
         Program *out)
{
    std::vector<Instruction> insts;
    std::map<std::string, InstIdx> labels;
    std::vector<PendingBranch> branches;
    Program scratch; // collects .poke directives

    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    auto err = [&](const std::string &msg) {
        return "line " + std::to_string(line_no) + ": " + msg;
    };

    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments.
        for (const char *c : {"#", "//"}) {
            const auto p = raw.find(c);
            if (p != std::string::npos)
                raw.erase(p);
        }
        Scanner s{raw};
        if (s.atEnd())
            continue;

        // Directives.
        if (s.peek('.')) {
            const std::string dir = s.ident();
            std::int64_t addr = 0;
            if (!s.integer(&addr))
                return err("expected address after " + dir);
            if (dir == ".poke64") {
                std::int64_t v = 0;
                if (!s.integer(&v))
                    return err("expected value after .poke64");
                scratch.poke64(static_cast<Addr>(addr),
                               static_cast<std::uint64_t>(v));
            } else if (dir == ".poke32") {
                std::int64_t v = 0;
                if (!s.integer(&v))
                    return err("expected value after .poke32");
                scratch.poke32(static_cast<Addr>(addr),
                               static_cast<std::uint32_t>(v));
            } else if (dir == ".pokedouble") {
                s.skipSpace();
                char *end = nullptr;
                const std::string tail = s.rest();
                const double d = std::strtod(tail.c_str(), &end);
                if (end == tail.c_str())
                    return err("expected value after .pokedouble");
                scratch.pokeDouble(static_cast<Addr>(addr), d);
            } else {
                return err("unknown directive " + dir);
            }
            continue;
        }

        // Optional qualifying-predicate prefix.
        Instruction inst;
        if (s.peek('(')) {
            s.consume('(');
            RegId qp;
            if (!parseReg(s, &qp) || qp.cls != RegClass::kPred)
                return err("expected predicate register after '('");
            if (!s.consume(')'))
                return err("expected ')'");
            inst.qpred = qp;
        }

        // Label?
        {
            const std::size_t save = s.pos;
            const std::string tok = s.ident();
            if (!tok.empty() && s.peek(':')) {
                s.consume(':');
                if (labels.count(tok))
                    return err("duplicate label '" + tok + "'");
                labels[tok] = static_cast<InstIdx>(insts.size());
                if (s.atEnd())
                    continue;
                return err("label must be alone on its line");
            }
            s.pos = save;
        }

        // Mnemonic (possibly "cmp.lt").
        std::string mnem = s.ident();
        if (mnem.empty())
            return err("expected mnemonic");
        std::string cond_name;
        const auto dot = mnem.find('.');
        if (dot != std::string::npos) {
            cond_name = mnem.substr(dot + 1);
            mnem = mnem.substr(0, dot);
        }

        static const std::map<std::string, Opcode> kAlu3 = {
            {"add", Opcode::kAdd},   {"sub", Opcode::kSub},
            {"and", Opcode::kAnd},   {"or", Opcode::kOr},
            {"xor", Opcode::kXor},   {"shl", Opcode::kShl},
            {"shr", Opcode::kShr},   {"sra", Opcode::kSra},
            {"mul", Opcode::kMul},   {"fadd", Opcode::kFadd},
            {"fsub", Opcode::kFsub}, {"fmul", Opcode::kFmul},
            {"fdiv", Opcode::kFdiv},
        };

        if (mnem == "nop") {
            inst.op = Opcode::kNop;
        } else if (mnem == "halt") {
            inst.op = Opcode::kHalt;
        } else if (mnem == "movi") {
            inst.op = Opcode::kMovi;
            if (!parseReg(s, &inst.dst) || !s.consume('=') ||
                !s.integer(&inst.imm)) {
                return err("movi expects 'movi rD = imm'");
            }
        } else if (mnem == "mov" || mnem == "itof" || mnem == "ftoi") {
            inst.op = mnem == "mov"
                          ? Opcode::kMov
                          : (mnem == "itof" ? Opcode::kItof
                                            : Opcode::kFtoi);
            if (!parseReg(s, &inst.dst) || !s.consume('=') ||
                !parseReg(s, &inst.src1)) {
                return err(mnem + " expects '" + mnem + " xD = xS'");
            }
        } else if (mnem == "cmp" || mnem == "fcmp") {
            inst.op = mnem == "cmp" ? Opcode::kCmp : Opcode::kFcmp;
            if (!parseCond(cond_name, &inst.cond))
                return err("bad or missing condition '." + cond_name +
                           "'");
            if (!parseReg(s, &inst.dst) || !s.consume(',') ||
                !parseReg(s, &inst.dst2) || !s.consume('=') ||
                !parseReg(s, &inst.src1) || !s.consume(',')) {
                return err(mnem + " expects 'pT, pF = src, src'");
            }
            if (!parseReg(s, &inst.src2)) {
                if (!s.integer(&inst.imm))
                    return err("expected register or immediate");
                inst.src2IsImm = true;
            }
        } else if (mnem == "ld4" || mnem == "ld8") {
            inst.op = mnem == "ld4" ? Opcode::kLd4 : Opcode::kLd8;
            if (!parseReg(s, &inst.dst) || !s.consume('=') ||
                !parseMemOperand(s, &inst.src1, &inst.imm)) {
                return err(mnem + " expects 'rD = [rB+off]'");
            }
        } else if (mnem == "st4" || mnem == "st8") {
            inst.op = mnem == "st4" ? Opcode::kSt4 : Opcode::kSt8;
            if (!parseMemOperand(s, &inst.src1, &inst.imm) ||
                !s.consume('=') || !parseReg(s, &inst.src2)) {
                return err(mnem + " expects '[rB+off] = rS'");
            }
        } else if (mnem == "br") {
            inst.op = Opcode::kBr;
            s.skipSpace();
            if (s.peek('@')) {
                s.consume('@');
                std::int64_t t = 0;
                if (!s.integer(&t))
                    return err("expected index after '@'");
                inst.imm = t;
            } else {
                const std::string target = s.ident();
                if (target.empty())
                    return err("br expects a label or '@index'");
                branches.push_back(
                    {static_cast<InstIdx>(insts.size()), target,
                     line_no});
            }
        } else if (auto it = kAlu3.find(mnem); it != kAlu3.end()) {
            inst.op = it->second;
            if (!parseReg(s, &inst.dst) || !s.consume('=') ||
                !parseReg(s, &inst.src1) || !s.consume(',')) {
                return err(mnem + " expects 'xD = xA, xB|imm'");
            }
            if (!parseReg(s, &inst.src2)) {
                if (!s.integer(&inst.imm))
                    return err("expected register or immediate");
                inst.src2IsImm = true;
            }
        } else {
            return err("unknown mnemonic '" + mnem + "'");
        }

        // Stop bit.
        s.skipSpace();
        if (s.pos + 1 < s.line.size() + 1 &&
            s.line.compare(s.pos, 2, ";;") == 0) {
            inst.stop = true;
            s.pos += 2;
        }
        if (inst.isBranch())
            inst.stop = true; // branches always end their group
        if (!s.atEnd())
            return err("trailing junk: '" + s.rest() + "'");

        inst.srcLine = line_no;
        insts.push_back(inst);
    }

    if (insts.empty())
        return "empty program";
    insts.back().stop = true;

    for (const PendingBranch &b : branches) {
        auto it = labels.find(b.target);
        if (it == labels.end()) {
            return "line " + std::to_string(b.lineNo) +
                   ": undefined label '" + b.target + "'";
        }
        insts[b.idx].imm = static_cast<std::int64_t>(it->second);
    }

    Program prog(name, std::move(insts));
    for (const auto &[base, page] : scratch.dataImage().pages())
        prog.pokeBytes(base, page.data(), page.size());
    *out = std::move(prog);
    return "";
}

Program
assembleOrDie(const std::string &source, const std::string &name)
{
    Program p;
    const std::string e = assemble(source, name, &p);
    ff_fatal_if(!e.empty(), "assembly of '", name, "' failed: ", e);
    return p;
}

std::string
toAssembly(const Program &prog)
{
    // Branch targets get generated labels.
    std::map<InstIdx, std::string> target_labels;
    for (InstIdx i = 0; i < prog.size(); ++i) {
        const Instruction &in = prog.inst(i);
        if (in.isBranch()) {
            const auto t = static_cast<InstIdx>(in.imm);
            if (!target_labels.count(t))
                target_labels[t] = "L" + std::to_string(t);
        }
    }

    std::ostringstream oss;
    oss << "# program '" << prog.name() << "'\n";
    for (InstIdx i = 0; i < prog.size(); ++i) {
        auto lbl = target_labels.find(i);
        if (lbl != target_labels.end())
            oss << lbl->second << ":\n";
        const Instruction &in = prog.inst(i);
        if (in.isBranch()) {
            if (!(in.qpred.cls == RegClass::kPred && in.qpred.idx == 0))
                oss << "(" << regName(in.qpred) << ") ";
            oss << "br "
                << target_labels.at(static_cast<InstIdx>(in.imm));
        } else {
            oss << disasm(in);
        }
        if (in.stop)
            oss << "  ;;";
        oss << '\n';
    }
    // Data image as directives (64-bit words; zero words elided).
    for (const auto &[base, page] : prog.dataImage().pages()) {
        for (std::size_t off = 0; off + 8 <= page.size(); off += 8) {
            std::uint64_t v = 0;
            for (unsigned b = 0; b < 8; ++b)
                v |= static_cast<std::uint64_t>(page[off + b])
                     << (8 * b);
            if (v != 0) {
                oss << ".poke64 0x" << std::hex << (base + off)
                    << " 0x" << v << std::dec << '\n';
            }
        }
    }
    return oss.str();
}

} // namespace isa
} // namespace ff
