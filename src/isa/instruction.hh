/**
 * @file
 * The static instruction record: one slot of an issue group, carrying
 * a qualifying predicate, register operands, an immediate, and the
 * EPIC stop bit that delimits issue groups.
 */

#ifndef FF_ISA_INSTRUCTION_HH
#define FF_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>

#include "isa/isa.hh"

namespace ff
{
namespace isa
{

/**
 * A static ffvm instruction. All instructions are predicated on
 * @c qpred (p0 == always). CMP/FCMP write a complementary predicate
 * pair (dst = cond, dst2 = !cond). Loads/stores address memory at
 * [src1 + imm]; stores carry the value in src2. Branches jump to the
 * group whose leader has instruction index @c imm when qpred is true.
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    CmpCond cond = CmpCond::kEq;

    RegId qpred = predReg(0); ///< qualifying predicate
    RegId dst;                ///< value destination (or first predicate)
    RegId dst2;               ///< second predicate for CMP/FCMP
    RegId src1;
    RegId src2;

    std::int64_t imm = 0;     ///< immediate / offset / branch target
    bool src2IsImm = false;   ///< ALU src2 comes from imm, not a register
    bool stop = false;        ///< stop bit: this slot ends its issue group

    /**
     * Source provenance: the 1-based .s line this slot was assembled
     * from, or -1 for instructions without one (builder-produced
     * kernels). Rides along through sequentialize/schedule reordering
     * so diagnostics can point at source even after group formation.
     */
    std::int32_t srcLine = -1;

    bool isLoad() const { return op == Opcode::kLd4 || op == Opcode::kLd8; }
    bool isStore() const { return op == Opcode::kSt4 || op == Opcode::kSt8; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return op == Opcode::kBr; }
    bool isHalt() const { return op == Opcode::kHalt; }
    bool isNop() const { return op == Opcode::kNop; }
    bool isFp() const { return opInfo(op).unit == UnitClass::kFp; }

    /** Functional-unit class consumed at issue. */
    UnitClass unit() const { return opInfo(op).unit; }

    /** Non-memory execution latency (see OpInfo::latency). */
    unsigned execLatency() const { return opInfo(op).latency; }

    /**
     * Collects the register sources this instruction reads, including
     * the qualifying predicate (first). The fixed-size result avoids
     * allocation on the issue path; inline because every dependence
     * check of every model runs it per slot per cycle.
     *
     * @param out receives up to 4 RegIds
     * @return number of sources written
     */
    unsigned
    sources(std::array<RegId, 4> &out) const
    {
        unsigned n = 0;
        // The qualifying predicate is always a source (p0 included;
        // the consumer decides whether p0 needs dependence tracking).
        out[n++] = qpred;
        if (src1.valid())
            out[n++] = src1;
        if (src2.valid() && !src2IsImm)
            out[n++] = src2;
        return n;
    }

    /**
     * Collects the register destinations this instruction writes when
     * its qualifying predicate is true.
     *
     * @param out receives up to 2 RegIds
     * @return number of destinations written
     */
    unsigned
    destinations(std::array<RegId, 2> &out) const
    {
        unsigned n = 0;
        if (dst.valid())
            out[n++] = dst;
        if (dst2.valid())
            out[n++] = dst2;
        return n;
    }
};

} // namespace isa
} // namespace ff

#endif // FF_ISA_INSTRUCTION_HH
