#include "isa/disasm.hh"

#include <sstream>

namespace ff
{
namespace isa
{

std::string
disasm(const Instruction &in)
{
    std::ostringstream oss;
    if (!(in.qpred.cls == RegClass::kPred && in.qpred.idx == 0))
        oss << "(" << regName(in.qpred) << ") ";

    const char *m = opInfo(in.op).mnemonic;
    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
        oss << m;
        break;
      case Opcode::kMovi:
        oss << m << ' ' << regName(in.dst) << " = " << in.imm;
        break;
      case Opcode::kMov:
      case Opcode::kItof:
      case Opcode::kFtoi:
        oss << m << ' ' << regName(in.dst) << " = " << regName(in.src1);
        break;
      case Opcode::kCmp:
      case Opcode::kFcmp:
        oss << m << '.' << condName(in.cond) << ' ' << regName(in.dst)
            << ", " << regName(in.dst2) << " = " << regName(in.src1)
            << ", ";
        if (in.src2IsImm)
            oss << in.imm;
        else
            oss << regName(in.src2);
        break;
      case Opcode::kLd4:
      case Opcode::kLd8:
        oss << m << ' ' << regName(in.dst) << " = ["
            << regName(in.src1);
        if (in.imm != 0)
            oss << (in.imm > 0 ? "+" : "") << in.imm;
        oss << ']';
        break;
      case Opcode::kSt4:
      case Opcode::kSt8:
        oss << m << " [" << regName(in.src1);
        if (in.imm != 0)
            oss << (in.imm > 0 ? "+" : "") << in.imm;
        oss << "] = " << regName(in.src2);
        break;
      case Opcode::kBr:
        oss << m << " @" << in.imm;
        break;
      default:
        oss << m << ' ' << regName(in.dst) << " = " << regName(in.src1)
            << ", ";
        if (in.src2IsImm)
            oss << in.imm;
        else
            oss << regName(in.src2);
        break;
    }
    return oss.str();
}

std::string
disasmProgram(const Program &prog)
{
    std::ostringstream oss;
    oss << "program '" << prog.name() << "' (" << prog.size()
        << " insts)\n";
    for (InstIdx i = 0; i < prog.size(); ++i) {
        const Instruction &in = prog.inst(i);
        oss << (prog.isGroupLeader(i) ? '>' : ' ') << ' ';
        oss.width(5);
        oss << i << "  " << disasm(in);
        if (in.stop)
            oss << "  ;;";
        oss << '\n';
    }
    return oss.str();
}

} // namespace isa
} // namespace ff
