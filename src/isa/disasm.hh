/**
 * @file
 * Textual disassembly of ffvm instructions and programs, used by the
 * case-study example and by failing-test diagnostics.
 */

#ifndef FF_ISA_DISASM_HH
#define FF_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace ff
{
namespace isa
{

/** Renders one instruction, e.g. "(p3) add r4 = r5, r6". */
std::string disasm(const Instruction &in);

/**
 * Renders a whole program with instruction indices, issue-group
 * separators (";;" like IA-64 stop bits) and branch-target markers.
 */
std::string disasmProgram(const Program &prog);

} // namespace isa
} // namespace ff

#endif // FF_ISA_DISASM_HH
