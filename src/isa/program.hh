/**
 * @file
 * A complete ffvm program: the static instruction stream (with stop
 * bits delimiting issue groups), an initial data image, and derived
 * issue-group navigation tables used by the fetch and issue logic.
 */

#ifndef FF_ISA_PROGRAM_HH
#define FF_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace ff
{
namespace isa
{

/**
 * Page-based sparse initial-memory image. Pages are 4 KiB and
 * zero-filled on first touch, so initializing megabytes of workload
 * data stays cheap.
 */
class DataImage
{
  public:
    static constexpr Addr kPageBytes = 4096;

    /** Writes raw bytes at @p addr. */
    void write(Addr addr, const void *bytes, std::size_t len);

    /** Reads one byte (zero if untouched); for tests. */
    std::uint8_t read(Addr addr) const;

    /** Page-base -> page-content map (pages are kPageBytes long). */
    const std::map<Addr, std::vector<std::uint8_t>> &pages() const
    {
        return _pages;
    }

  private:
    std::map<Addr, std::vector<std::uint8_t>> _pages;
};

class Program;

/**
 * Returns a copy of @p prog with a stop bit on every instruction —
 * one-instruction issue groups, i.e. plain sequential semantics.
 * Branch targets stay valid (every instruction becomes a leader).
 * This is the canonical way to hand arbitrary grouped (or ungrouped)
 * code to the scheduler, which re-forms the groups itself.
 */
Program sequentialize(const Program &prog);

/** Machine resource widths used to validate issue groups. */
struct GroupLimits
{
    unsigned issueWidth = 8;
    unsigned aluUnits = 5;
    unsigned memUnits = 3;
    unsigned fpUnits = 3;
    unsigned branchUnits = 3;
};

/**
 * An executable program image. Instruction addresses are instruction
 * indices; the I-cache maps them to byte addresses by a fixed 16-byte
 * encoding per instruction (an IA-64 bundle is 16 bytes for 3 slots;
 * we charge a generous fixed size per slot to keep the I-side simple).
 */
class Program
{
  public:
    /** Bytes charged per instruction for I-cache purposes. */
    static constexpr Addr kBytesPerInst = 16;

    /** Base virtual address of the text segment. */
    static constexpr Addr kTextBase = 0x4000'0000;

    Program() = default;
    Program(std::string name, std::vector<Instruction> insts);

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    const std::vector<Instruction> &insts() const { return _insts; }
    const Instruction &inst(InstIdx i) const { return _insts.at(i); }
    InstIdx size() const { return static_cast<InstIdx>(_insts.size()); }

    /** Index of the first instruction of the group containing @p i. */
    InstIdx groupStart(InstIdx i) const { return _groupStart.at(i); }

    /**
     * Index one past the last instruction of the group containing
     * @p i (i.e., the start of the next group, or size()).
     */
    InstIdx groupEnd(InstIdx i) const { return _groupEnd.at(i); }

    /** Instruction index of the fall-through successor group. */
    InstIdx nextGroup(InstIdx group_leader) const
    {
        return groupEnd(group_leader);
    }

    /** True if @p i is the first slot of an issue group. */
    bool isGroupLeader(InstIdx i) const
    {
        return i < size() && _groupStart[i] == i;
    }

    /**
     * Content hash of the instruction stream (opcodes, operands,
     * immediates, stop bits), computed once at construction. Two
     * programs with equal hashes hold, for verification purposes,
     * the same code — the harness keys its verification memo on it.
     */
    std::uint64_t instStreamHash() const { return _instHash; }

    /** Fetch-time byte address of instruction @p i. */
    static Addr instAddr(InstIdx i)
    {
        return kTextBase + static_cast<Addr>(i) * kBytesPerInst;
    }

    /** Writes raw bytes into the initial data image. */
    void pokeBytes(Addr addr, const void *bytes, std::size_t len);

    /** Convenience: poke a 64-bit little-endian word. */
    void poke64(Addr addr, std::uint64_t value);

    /** Convenience: poke a 32-bit little-endian word. */
    void poke32(Addr addr, std::uint32_t value);

    /** Convenience: poke an IEEE double. */
    void pokeDouble(Addr addr, double value);

    /** The initial data image. */
    const DataImage &dataImage() const { return _data; }

    /**
     * Structural validation: stop bit on the final instruction,
     * branch targets land on group leaders, group resource usage fits
     * @p limits, register indices in range, no intra-group RAW or WAW
     * register dependences (EPIC group semantics: reads observe
     * pre-group state).
     *
     * @return empty string if valid, else a description of the first
     *         violation found.
     */
    std::string validate(const GroupLimits &limits = GroupLimits()) const;

  private:
    void rebuildGroups();

    std::string _name;
    std::vector<Instruction> _insts;
    std::vector<InstIdx> _groupStart;
    std::vector<InstIdx> _groupEnd;
    std::uint64_t _instHash = 0;
    DataImage _data;
};

} // namespace isa
} // namespace ff

#endif // FF_ISA_PROGRAM_HH
