/**
 * @file
 * A textual assembler for ffvm, completing the toolchain round trip
 * with the disassembler: programs can be written, stored and loaded
 * as plain text.
 *
 * Syntax (one instruction per line; the disassembler's rendering is
 * valid input):
 *
 *     # comment                     // comment
 *     label:                        — binds to the next instruction
 *     (p3) add r1 = r2, r3  ;;      — qualifying predicate, stop bit
 *     movi r9 = 1234
 *     cmp.lt p1, p2 = r3, 10
 *     ld8 r4 = [r5+8]
 *     st4 [r1-4] = r2
 *     br loop                       — label or @<index>
 *     halt
 *     .poke64 0x1000 42             — initial-memory directives
 *     .pokedouble 0x2000 1.5
 *
 * Immediates accept decimal and 0x hex, with optional sign.
 */

#ifndef FF_ISA_ASSEMBLER_HH
#define FF_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace ff
{
namespace isa
{

/**
 * Assembles @p source into @p out.
 *
 * @param source assembler text
 * @param name   program name for diagnostics
 * @param out    receives the program on success
 * @return empty string on success, else "line N: <message>"
 */
std::string assemble(const std::string &source, const std::string &name,
                     Program *out);

/** Assembles or dies (for tests and tools with trusted input). */
Program assembleOrDie(const std::string &source,
                      const std::string &name = "asm");

/**
 * Renders @p prog as re-assemblable text: branch targets become
 * generated labels, stop bits become ";;", and the data image is
 * emitted as .poke64 directives. assemble(toAssembly(p)) reproduces
 * p's instruction stream and data exactly.
 */
std::string toAssembly(const Program &prog);

} // namespace isa
} // namespace ff

#endif // FF_ISA_ASSEMBLER_HH
