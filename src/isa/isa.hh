/**
 * @file
 * Core ISA definitions for the ffvm virtual EPIC architecture: an
 * Itanium-flavoured, fully predicated, explicitly issue-grouped
 * instruction set. It is intentionally small but carries everything
 * the paper's phenomena need: predication, stop bits, variable
 * latency loads, multi-cycle integer/FP operations, and compare
 * instructions writing complementary predicate pairs.
 */

#ifndef FF_ISA_ISA_HH
#define FF_ISA_ISA_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ff
{
namespace isa
{

/** Number of integer registers (r0 is hardwired to zero). */
inline constexpr unsigned kNumIntRegs = 64;
/** Number of floating-point registers (f0 is hardwired to +0.0). */
inline constexpr unsigned kNumFpRegs = 64;
/** Number of 1-bit predicate registers (p0 is hardwired to true). */
inline constexpr unsigned kNumPredRegs = 64;

/** Architectural register class. */
enum class RegClass : std::uint8_t
{
    kNone, ///< operand slot unused
    kInt,  ///< general-purpose integer register
    kFp,   ///< floating-point register
    kPred, ///< 1-bit predicate register
};

/** A register operand: class plus index within the class's file. */
struct RegId
{
    RegClass cls = RegClass::kNone;
    std::uint8_t idx = 0;

    bool valid() const { return cls != RegClass::kNone; }
    bool operator==(const RegId &) const = default;
};

/** Convenience constructors mirroring assembly syntax. */
inline RegId intReg(unsigned i)
{
    return {RegClass::kInt, static_cast<std::uint8_t>(i)};
}
inline RegId fpReg(unsigned i)
{
    return {RegClass::kFp, static_cast<std::uint8_t>(i)};
}
inline RegId predReg(unsigned i)
{
    return {RegClass::kPred, static_cast<std::uint8_t>(i)};
}
inline RegId noReg() { return {}; }

/** Functional-unit class an instruction occupies for issue. */
enum class UnitClass : std::uint8_t
{
    kAlu,    ///< integer ALU (also compares, moves, conversions)
    kMem,    ///< load/store unit
    kFp,     ///< floating-point unit
    kBranch, ///< branch unit
};

/** Comparison conditions for CMP/FCMP (signed for integers). */
enum class CmpCond : std::uint8_t
{
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kLtu, ///< unsigned less-than (integer CMP only)
};

/** Opcodes of the ffvm ISA. */
enum class Opcode : std::uint8_t
{
    kNop,
    kHalt, ///< stop simulation; final architectural state is the result

    // Integer ALU (1 cycle unless noted).
    kAdd,
    kSub,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr, ///< logical right shift
    kSra, ///< arithmetic right shift
    kMul, ///< 3-cycle integer multiply
    kMov,
    kMovi, ///< dst = 64-bit immediate
    kCmp,  ///< writes complementary predicate pair (dst, dst2)

    // Conversions (ALU class).
    kItof, ///< fp dst = (double) signed int src
    kFtoi, ///< int dst = truncated signed value of fp src

    // Floating point (multi-cycle).
    kFadd,
    kFsub,
    kFmul,
    kFdiv, ///< long-latency divide (the "anticipable" latency of Sec. 4)
    kFcmp, ///< FP compare writing a predicate pair

    // Memory. Effective address is [src1 + imm].
    kLd4, ///< sign-extending 32-bit load
    kLd8,
    kSt4, ///< stores low 32 bits of src2
    kSt8,

    // Control. Direction is the qualifying predicate; target is imm
    // (instruction index of an issue-group leader after resolution).
    kBr,

    kNumOpcodes,
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    UnitClass unit;
    /**
     * Execution latency in cycles from issue to result availability,
     * excluding memory time for loads (a load's total latency is this
     * pipeline component plus the hierarchy's response time; we fold
     * the L1 access time into the hierarchy so this is 0 for loads).
     */
    unsigned latency;
};

namespace detail
{
/** The opcode property table, indexed by Opcode; see instruction.cc. */
extern const OpInfo kOpTable[];

/** Panics on an out-of-range opcode; out of line, never taken. */
[[noreturn]] void badOpcode(std::size_t i);
} // namespace detail

/**
 * Looks up the static properties of @p op. Inline: the per-cycle issue
 * and regrouping paths query unit class and latency for every slot of
 * every group, so this must compile to a table index, not a call.
 */
inline const OpInfo &
opInfo(Opcode op)
{
    const auto i = static_cast<std::size_t>(op);
    if (i >= static_cast<std::size_t>(Opcode::kNumOpcodes))
        detail::badOpcode(i);
    return detail::kOpTable[i];
}

/** Printable register name ("r5", "f2", "p7"). */
std::string regName(RegId r);

/** Printable condition name ("eq", "ltu", ...). */
const char *condName(CmpCond c);

} // namespace isa
} // namespace ff

#endif // FF_ISA_ISA_HH
