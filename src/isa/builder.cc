#include "isa/builder.hh"

#include "common/logging.hh"

namespace ff
{
namespace isa
{

ProgramBuilder::ProgramBuilder(std::string name, bool auto_stop)
    : _name(std::move(name)), _autoStop(auto_stop)
{
}

void
ProgramBuilder::label(const std::string &name)
{
    auto [it, inserted] = _labels.emplace(name, size());
    ff_fatal_if(!inserted, "duplicate label '", name, "'");
}

void
ProgramBuilder::stop()
{
    ff_fatal_if(_insts.empty(), "stop() before any instruction");
    _insts.back().stop = true;
}

ProgramBuilder &
ProgramBuilder::pred(RegId p)
{
    ff_fatal_if(_insts.empty(), "pred() before any instruction");
    ff_fatal_if(p.cls != RegClass::kPred, "pred() needs a predicate reg");
    _insts.back().qpred = p;
    return *this;
}

Instruction &
ProgramBuilder::emit(Opcode op)
{
    Instruction in;
    in.op = op;
    in.stop = _autoStop;
    // Builder-made programs have no source file; stamp the 1-based
    // emission index as a pseudo line so diagnostics (ffcheck SARIF,
    // --metrics-out profiles) can point at the builder call site.
    in.srcLine = static_cast<std::int32_t>(_insts.size()) + 1;
    _insts.push_back(in);
    return _insts.back();
}

ProgramBuilder &
ProgramBuilder::alu(Opcode op, RegId dst, RegId a, RegId b)
{
    Instruction &in = emit(op);
    in.dst = dst;
    in.src1 = a;
    in.src2 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::alui(Opcode op, RegId dst, RegId a, std::int64_t imm)
{
    Instruction &in = emit(op);
    in.dst = dst;
    in.src1 = a;
    in.imm = imm;
    in.src2IsImm = true;
    return *this;
}

ProgramBuilder &
ProgramBuilder::add(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kAdd, d, a, b);
}
ProgramBuilder &
ProgramBuilder::addi(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kAdd, d, a, i);
}
ProgramBuilder &
ProgramBuilder::sub(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kSub, d, a, b);
}
ProgramBuilder &
ProgramBuilder::subi(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kSub, d, a, i);
}
ProgramBuilder &
ProgramBuilder::and_(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kAnd, d, a, b);
}
ProgramBuilder &
ProgramBuilder::andi(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kAnd, d, a, i);
}
ProgramBuilder &
ProgramBuilder::or_(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kOr, d, a, b);
}
ProgramBuilder &
ProgramBuilder::ori(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kOr, d, a, i);
}
ProgramBuilder &
ProgramBuilder::xor_(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kXor, d, a, b);
}
ProgramBuilder &
ProgramBuilder::xori(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kXor, d, a, i);
}
ProgramBuilder &
ProgramBuilder::shl(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kShl, d, a, b);
}
ProgramBuilder &
ProgramBuilder::shli(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kShl, d, a, i);
}
ProgramBuilder &
ProgramBuilder::shri(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kShr, d, a, i);
}
ProgramBuilder &
ProgramBuilder::srai(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kSra, d, a, i);
}
ProgramBuilder &
ProgramBuilder::mul(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kMul, d, a, b);
}
ProgramBuilder &
ProgramBuilder::muli(RegId d, RegId a, std::int64_t i)
{
    return alui(Opcode::kMul, d, a, i);
}

ProgramBuilder &
ProgramBuilder::mov(RegId d, RegId a)
{
    Instruction &in = emit(Opcode::kMov);
    in.dst = d;
    in.src1 = a;
    return *this;
}

ProgramBuilder &
ProgramBuilder::movi(RegId d, std::int64_t imm)
{
    Instruction &in = emit(Opcode::kMovi);
    in.dst = d;
    in.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::cmp(CmpCond c, RegId pt, RegId pf, RegId a, RegId b)
{
    Instruction &in = emit(Opcode::kCmp);
    in.cond = c;
    in.dst = pt;
    in.dst2 = pf;
    in.src1 = a;
    in.src2 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::cmpi(CmpCond c, RegId pt, RegId pf, RegId a,
                     std::int64_t imm)
{
    Instruction &in = emit(Opcode::kCmp);
    in.cond = c;
    in.dst = pt;
    in.dst2 = pf;
    in.src1 = a;
    in.imm = imm;
    in.src2IsImm = true;
    return *this;
}

ProgramBuilder &
ProgramBuilder::itof(RegId fdst, RegId isrc)
{
    Instruction &in = emit(Opcode::kItof);
    in.dst = fdst;
    in.src1 = isrc;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ftoi(RegId idst, RegId fsrc)
{
    Instruction &in = emit(Opcode::kFtoi);
    in.dst = idst;
    in.src1 = fsrc;
    return *this;
}

ProgramBuilder &
ProgramBuilder::fadd(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kFadd, d, a, b);
}
ProgramBuilder &
ProgramBuilder::fsub(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kFsub, d, a, b);
}
ProgramBuilder &
ProgramBuilder::fmul(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kFmul, d, a, b);
}
ProgramBuilder &
ProgramBuilder::fdiv(RegId d, RegId a, RegId b)
{
    return alu(Opcode::kFdiv, d, a, b);
}

ProgramBuilder &
ProgramBuilder::fcmp(CmpCond c, RegId pt, RegId pf, RegId a, RegId b)
{
    Instruction &in = emit(Opcode::kFcmp);
    in.cond = c;
    in.dst = pt;
    in.dst2 = pf;
    in.src1 = a;
    in.src2 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ld4(RegId dst, RegId base, std::int64_t off)
{
    Instruction &in = emit(Opcode::kLd4);
    in.dst = dst;
    in.src1 = base;
    in.imm = off;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ld8(RegId dst, RegId base, std::int64_t off)
{
    Instruction &in = emit(Opcode::kLd8);
    in.dst = dst;
    in.src1 = base;
    in.imm = off;
    return *this;
}

ProgramBuilder &
ProgramBuilder::st4(RegId base, std::int64_t off, RegId val)
{
    Instruction &in = emit(Opcode::kSt4);
    in.src1 = base;
    in.src2 = val;
    in.imm = off;
    return *this;
}

ProgramBuilder &
ProgramBuilder::st8(RegId base, std::int64_t off, RegId val)
{
    Instruction &in = emit(Opcode::kSt8);
    in.src1 = base;
    in.src2 = val;
    in.imm = off;
    return *this;
}

ProgramBuilder &
ProgramBuilder::br(const std::string &target)
{
    Instruction &in = emit(Opcode::kBr);
    in.stop = true; // branches always end their group
    _pendingBranches.emplace_back(size() - 1, target);
    return *this;
}

ProgramBuilder &
ProgramBuilder::halt()
{
    emit(Opcode::kHalt);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    emit(Opcode::kNop);
    return *this;
}

Program
ProgramBuilder::finalize()
{
    ff_fatal_if(_insts.empty(), "finalizing empty program '", _name, "'");
    _insts.back().stop = true;
    for (auto &[idx, label_name] : _pendingBranches) {
        auto it = _labels.find(label_name);
        ff_fatal_if(it == _labels.end(), "undefined label '", label_name,
                    "' in program '", _name, "'");
        _insts[idx].imm = static_cast<std::int64_t>(it->second);
    }
    return Program(_name, _insts);
}

} // namespace isa
} // namespace ff
