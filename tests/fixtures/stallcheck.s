# Cross-validation fixture for the static stall predictor (ffstall):
# a pointer chase whose working set is one L1 line, so the effective
# load-use latency is exactly the L1D hit time and every bubble the
# baseline core takes is a schedule-visible load-use stall. Each
# iteration chases two dependent loads; neither can be covered, so
# the model and the simulator must both see two bubble cycles per
# trip around the loop.
#
#   ffstall --schedule --tolerance=15 tests/fixtures/stallcheck.s

movi r1 = 0x1000            # &ring (self-pointing slot)
movi r10 = 20000            # iterations

loop:
ld8 r2 = [r1]
ld8 r3 = [r2]
ld8 r4 = [r3]
sub r10 = r10, 1
cmp.gt p1, p2 = r10, 0
(p1) br loop

movi r5 = 0x100
st8 [r5] = r4
halt

.poke64 0x1000 0x1000       # slot points at itself
