// Golden-fixture program for the SARIF / JSON renderers: a small,
// deliberately diverse set of findings with stable source lines.
// Regenerate the .golden files with:
//   ffcheck --sarif=diagnostics.sarif.golden \
//           --json=diagnostics.json.golden tests/fixtures/diagnostics.s
ld8 r1 = [r2] ;;
movi r4 = 0x1001 ;;
ld8 r5 = [r4] ;;
movi r6 = 0x2000 ;;
st8 [r6] = r1
ld8 r7 = [r6]
halt
