/** @file Unit tests for the gshare direction predictor. */

#include <gtest/gtest.h>

#include "branch/gshare.hh"

namespace
{

using namespace ff;
using namespace ff::branch;

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor g(1024);
    const Addr pc = 0x40000100;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 200; ++i) {
        Prediction p = g.predict(pc);
        g.update(p, true);
        if (i >= 50 && !p.taken)
            ++late_mispredicts;
    }
    // After warmup (history convergence + counter training), the
    // loop-back branch must be predicted taken.
    EXPECT_EQ(late_mispredicts, 0u);
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    GsharePredictor g(1024);
    const Addr pc = 0x40000200;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 200; ++i) {
        Prediction p = g.predict(pc);
        g.update(p, false);
        if (i >= 50 && p.taken)
            ++late_mispredicts;
    }
    EXPECT_EQ(late_mispredicts, 0u);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor g(1024);
    const Addr pc = 0x40000300;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        Prediction p = g.predict(pc);
        g.update(p, actual);
        if (i >= 100 && p.taken != actual)
            ++late_mispredicts;
    }
    // The alternation is perfectly predictable with global history.
    EXPECT_EQ(late_mispredicts, 0u);
}

TEST(Gshare, MispredictRestoresHistory)
{
    GsharePredictor g(1024);
    const Addr pc = 0x40000400;
    Prediction p = g.predict(pc);
    // Wrong-path predictions pollute the history...
    g.predict(pc + 16);
    g.predict(pc + 32);
    // ...until the mispredicted older branch resolves.
    const bool actual = !p.taken;
    g.update(p, actual);
    const std::uint64_t expected =
        ((p.historyBefore << 1) | (actual ? 1 : 0)) & 1023;
    EXPECT_EQ(g.history(), expected);
}

TEST(Gshare, CorrectPredictionKeepsSpeculativeHistory)
{
    GsharePredictor g(1024);
    const Addr pc = 0x40000500;
    Prediction p = g.predict(pc);
    const std::uint64_t after_predict = g.history();
    g.update(p, p.taken);
    EXPECT_EQ(g.history(), after_predict);
}

TEST(Gshare, StatsCountLookupsAndMispredicts)
{
    GsharePredictor g(256);
    const Addr pc = 0x40000600;
    for (int i = 0; i < 10; ++i) {
        Prediction p = g.predict(pc);
        g.update(p, true);
    }
    EXPECT_EQ(g.stats().lookups, 10u);
    EXPECT_GT(g.stats().mispredicts, 0u); // cold start misses
    EXPECT_LT(g.stats().mispredicts, 10u);
}

TEST(Gshare, ResetRestoresColdState)
{
    GsharePredictor g(256);
    for (int i = 0; i < 50; ++i) {
        Prediction p = g.predict(0x40000700);
        g.update(p, true);
    }
    g.reset();
    EXPECT_EQ(g.stats().lookups, 0u);
    EXPECT_EQ(g.history(), 0u);
    // Weakly-not-taken after reset.
    Prediction p = g.predict(0x40000700);
    EXPECT_FALSE(p.taken);
}

TEST(Gshare, DistinctBranchesUseDistinctCounters)
{
    GsharePredictor g(1024);
    // Train pc1 strongly taken with zero history (single branch).
    // Predict/update in lockstep so the history stays 1s.
    const Addr pc1 = 0x40000000;
    for (int i = 0; i < 100; ++i)
        g.update(g.predict(pc1), true);
    // A pc indexing a different counter should still start cold.
    Prediction p = g.predict(0x40000040);
    EXPECT_FALSE(p.taken);
}

TEST(GshareDeathTest, NonPowerOfTwoIsFatal)
{
    EXPECT_EXIT(GsharePredictor(1000), ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
