/** @file Unit tests for the bimodal and tournament predictors. */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"

namespace
{

using namespace ff;
using namespace ff::branch;

TEST(Bimodal, LearnsBiasedBranches)
{
    BimodalPredictor b(1024);
    const Addr pc = 0x40000100;
    unsigned late_misses = 0;
    for (int i = 0; i < 100; ++i) {
        Prediction p = b.predict(pc);
        b.update(p, true);
        if (i >= 10 && !p.taken)
            ++late_misses;
    }
    EXPECT_EQ(late_misses, 0u);
}

TEST(Bimodal, CannotLearnAlternation)
{
    // No history: a strict alternation defeats a 2-bit counter.
    BimodalPredictor b(1024);
    const Addr pc = 0x40000200;
    unsigned late_misses = 0;
    for (int i = 0; i < 200; ++i) {
        const bool actual = (i % 2) == 0;
        Prediction p = b.predict(pc);
        b.update(p, actual);
        if (i >= 100 && p.taken != actual)
            ++late_misses;
    }
    EXPECT_GT(late_misses, 30u); // ~50% misprediction
}

TEST(Bimodal, IndependentPcsIndependentCounters)
{
    BimodalPredictor b(1024);
    for (int i = 0; i < 50; ++i)
        b.update(b.predict(0x40000000), true);
    // A different counter stays cold.
    EXPECT_FALSE(b.predict(0x40000040).taken);
}

TEST(Tournament, LearnsAlternationViaGshare)
{
    TournamentPredictor t(1024);
    const Addr pc = 0x40000300;
    unsigned late_misses = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        Prediction p = t.predict(pc);
        t.update(p, actual);
        if (i >= 200 && p.taken != actual)
            ++late_misses;
    }
    // The chooser migrates to the gshare component, which nails it.
    EXPECT_LT(late_misses, 5u);
}

TEST(Tournament, LearnsBiasViaEitherComponent)
{
    TournamentPredictor t(1024);
    const Addr pc = 0x40000400;
    unsigned late_misses = 0;
    for (int i = 0; i < 200; ++i) {
        Prediction p = t.predict(pc);
        t.update(p, true);
        if (i >= 50 && !p.taken)
            ++late_misses;
    }
    EXPECT_EQ(late_misses, 0u);
}

TEST(Tournament, TracksStats)
{
    TournamentPredictor t(256);
    for (int i = 0; i < 20; ++i)
        t.update(t.predict(0x40000500), true);
    EXPECT_EQ(t.stats().lookups, 20u);
    EXPECT_LT(t.stats().mispredicts, 20u);
}

TEST(Factory, BuildsEveryKind)
{
    for (PredictorKind k :
         {PredictorKind::kGshare, PredictorKind::kBimodal,
          PredictorKind::kTournament}) {
        auto p = makePredictor(k, 256);
        ASSERT_NE(p, nullptr);
        Prediction pr = p->predict(0x40000000);
        p->update(pr, true);
        EXPECT_EQ(p->stats().lookups, 1u);
        p->reset();
        EXPECT_EQ(p->stats().lookups, 0u);
    }
}

TEST(Factory, KindNames)
{
    EXPECT_STREQ(predictorKindName(PredictorKind::kGshare), "gshare");
    EXPECT_STREQ(predictorKindName(PredictorKind::kBimodal),
                 "bimodal");
    EXPECT_STREQ(predictorKindName(PredictorKind::kTournament),
                 "tournament");
}

TEST(BimodalDeathTest, NonPowerOfTwoIsFatal)
{
    EXPECT_EXIT(BimodalPredictor(100), ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
