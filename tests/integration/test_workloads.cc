/** @file Integration tests over the Table 2 workload suite. */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, BuildsAndValidates)
{
    const workloads::Workload w = workloads::buildWorkload(GetParam(), 3);
    EXPECT_EQ(w.program.validate(), "");
    EXPECT_FALSE(w.input.empty());
    EXPECT_EQ(w.program.name(), GetParam());
    EXPECT_FALSE(isa::disasmProgram(w.program).empty());
}

TEST_P(WorkloadTest, DeterministicAcrossBuilds)
{
    const workloads::Workload a = workloads::buildWorkload(GetParam(), 4);
    const workloads::Workload b = workloads::buildWorkload(GetParam(), 4);
    const sim::FunctionalOutcome ra = sim::runFunctional(a.program);
    const sim::FunctionalOutcome rb = sim::runFunctional(b.program);
    EXPECT_EQ(ra.checksum, rb.checksum);
    EXPECT_EQ(ra.result.instsExecuted, rb.result.instsExecuted);
    EXPECT_EQ(ra.memFingerprint, rb.memFingerprint);
}

TEST_P(WorkloadTest, InstructionCountScalesWithInput)
{
    const workloads::Workload small =
        workloads::buildWorkload(GetParam(), 4);
    const workloads::Workload large =
        workloads::buildWorkload(GetParam(), 12);
    const auto rs = sim::runFunctional(small.program);
    const auto rl = sim::runFunctional(large.program);
    EXPECT_GT(rl.result.instsExecuted,
              rs.result.instsExecuted * 2);
}

TEST_P(WorkloadTest, ExercisesMemory)
{
    const workloads::Workload w = workloads::buildWorkload(GetParam(), 4);
    const auto r = sim::runFunctional(w.program);
    EXPECT_GT(r.result.loadsExecuted, 0u);
    EXPECT_GT(r.result.branchesExecuted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        return n;
    });

TEST_P(WorkloadTest, AlternateInputDiffersButStaysValid)
{
    const workloads::Workload def =
        workloads::buildWorkload(GetParam(), 4);
    const workloads::Workload alt = workloads::buildWorkload(
        GetParam(), 4, compiler::SchedulerConfig(),
        workloads::InputSet::kAlternate);
    EXPECT_EQ(alt.program.validate(), "");
    EXPECT_NE(alt.input.find("[alternate]"), std::string::npos);

    const auto rd = sim::runFunctional(def.program);
    const auto ra = sim::runFunctional(alt.program);
    // Different data, longer run: a genuinely different input.
    EXPECT_NE(rd.memFingerprint, ra.memFingerprint);
    EXPECT_GT(ra.result.instsExecuted, rd.result.instsExecuted);
}

TEST(WorkloadAlternate, EquivalenceHoldsOnAlternateInputs)
{
    // The correctness property is input-independent: spot-check the
    // alternate set on the conflict-prone benchmarks.
    for (const char *name : {"175.vpr", "300.twolf", "181.mcf"}) {
        const workloads::Workload w = workloads::buildWorkload(
            name, 5, compiler::SchedulerConfig(),
            workloads::InputSet::kAlternate);
        const auto ref = sim::runFunctional(w.program);
        for (sim::CpuKind kind :
             {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
              sim::CpuKind::kTwoPassRegroup}) {
            const auto o = sim::simulate(w.program, kind);
            EXPECT_EQ(o.regFingerprint, ref.regFingerprint)
                << name << "/" << sim::cpuKindName(kind);
            EXPECT_EQ(o.memFingerprint, ref.memFingerprint)
                << name << "/" << sim::cpuKindName(kind);
        }
    }
}

TEST(WorkloadRegistry, InputSetNames)
{
    EXPECT_STREQ(workloads::inputSetName(workloads::InputSet::kDefault),
                 "default");
    EXPECT_STREQ(
        workloads::inputSetName(workloads::InputSet::kAlternate),
        "alternate");
}

TEST(WorkloadRegistry, NamesAreStable)
{
    const auto &names = workloads::workloadNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "099.go");
    EXPECT_EQ(names.back(), "300.twolf");
}

TEST(WorkloadRegistry, BuildAllCoversTheSuite)
{
    const auto all = workloads::buildAllWorkloads(3);
    EXPECT_EQ(all.size(), workloads::workloadNames().size());
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(workloads::buildWorkload("999.nope", 3),
                ::testing::ExitedWithCode(1), "unknown workload");
}

} // namespace
