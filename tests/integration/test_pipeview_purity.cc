/**
 * @file
 * Purity and consistency of the pipeline tracer: attaching a
 * PipeViewObserver (and enabling engine timeline recording) must
 * leave every architectural and statistical output bit-identical to
 * an unobserved run — the tracer is strictly read-only — and the
 * event stream it records must agree with the independently
 * maintained accounting: cycle-class runs tile the whole run,
 * per-instruction defer events match the profile's defer counts, and
 * retired slots sum to the retired instruction count.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "common/engine_trace.hh"
#include "cpu/core/model_factory.hh"
#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/pipe_trace.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

/** Bound the tracer's memory across the whole workload sweep. */
constexpr std::size_t kTestMaxEvents = 1u << 16;

/** Everything a run can tell us, as one comparable record. */
struct RunRecord
{
    cpu::RunResult run;
    std::string stats;
    std::uint64_t regFingerprint = 0;
    std::uint64_t memFingerprint = 0;
};

RunRecord
runModel(const isa::Program &prog, cpu::CpuKind kind, bool traced)
{
    const cpu::CoreConfig cfg;
    auto model = cpu::makeModel(kind, prog, cfg);

    sim::MetricsOptions mopt;
    mopt.pipeview = traced;
    mopt.pipeviewMaxEvents = kTestMaxEvents;
    sim::MetricsSession session(prog, cfg, mopt);
    session.attach(*model);
    if (traced)
        engine::traceEnable();

    RunRecord rec;
    rec.run = model->run(20'000'000);
    if (session.attached())
        session.harvest();
    if (traced)
        engine::traceStop();
    rec.stats = model->statsReport();
    rec.regFingerprint = model->archRegs().fingerprint();
    rec.memFingerprint = model->memState().fingerprint();
    return rec;
}

class PipeViewPurityTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PipeViewPurityTest, TracedRunIsBitIdentical)
{
    const workloads::Workload w =
        workloads::buildWorkload(GetParam(), /*scale=*/3);
    for (unsigned k = 0; k < cpu::kNumCpuKinds; ++k) {
        const cpu::CpuKind kind = static_cast<cpu::CpuKind>(k);
        const RunRecord plain = runModel(w.program, kind, false);
        const RunRecord traced = runModel(w.program, kind, true);
        ASSERT_TRUE(plain.run.halted)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.run.cycles, traced.run.cycles)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.run.instsRetired, traced.run.instsRetired)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.stats, traced.stats)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.regFingerprint, traced.regFingerprint)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.memFingerprint, traced.memFingerprint)
            << w.name << " on " << cpuKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipeViewPurityTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

/** The recorded event stream must agree with the run's independently
 *  maintained accounting (and with the ProfileObserver, which walks
 *  the same hooks through entirely separate arithmetic). */
TEST(PipeViewConsistency, EventsMatchProfileAndRunTotals)
{
    const workloads::Workload w =
        workloads::buildWorkload("181.mcf", /*scale=*/2);
    sim::MetricsOptions mopt;
    mopt.profile = true;
    mopt.pipeview = true;
    const sim::SimOutcome out =
        sim::simulate(w.program, cpu::CpuKind::kTwoPass,
                      sim::table1Config(), sim::kDefaultMaxCycles,
                      mopt);
    ASSERT_TRUE(out.run.halted);
    ASSERT_NE(out.metrics, nullptr);
    const sim::MetricsRecord &rec = *out.metrics;
    ASSERT_EQ(rec.pipeDropped, 0u);
    ASSERT_FALSE(rec.pipeEvents.empty());

    // Cycle-class runs tile [first onCycle, run end] with no gaps:
    // each run extends to the next class change, the last to the
    // final cycle of the run.
    std::array<std::uint64_t, cpu::kNumCycleClasses> classCycles{};
    const cpu::PipeEvent *open = nullptr;
    for (const cpu::PipeEvent &e : rec.pipeEvents) {
        if (e.kind != cpu::PipeEventKind::kCycleClass)
            continue;
        if (open != nullptr)
            classCycles[open->a] += e.cycle - open->cycle;
        open = &e;
    }
    ASSERT_NE(open, nullptr);
    classCycles[open->a] += out.run.cycles - open->cycle;
    std::uint64_t classTotal = 0;
    for (const std::uint64_t c : classCycles)
        classTotal += c;
    EXPECT_EQ(classTotal, out.run.cycles);

    // Defer events per static index match the profile's defer
    // counts, and retire-event slots sum to instsRetired.
    std::vector<std::uint64_t> defersByIdx(w.program.size(), 0);
    std::uint64_t slotsRetired = 0;
    for (const cpu::PipeEvent &e : rec.pipeEvents) {
        if (e.kind == cpu::PipeEventKind::kDefer)
            ++defersByIdx.at(e.idx);
        else if (e.kind == cpu::PipeEventKind::kRetire)
            slotsRetired += e.b;
    }
    EXPECT_EQ(slotsRetired, out.run.instsRetired);
    for (const sim::MetricsRecord::ProfileRow &row : rec.profile) {
        EXPECT_EQ(defersByIdx.at(row.idx), row.prof.totalDefers())
            << "@" << row.idx << " " << row.text;
    }

    // And the reconstructed lifetimes account for every retired
    // instruction: retired lifetimes == instsRetired.
    const std::vector<sim::PipeLifetime> lives =
        sim::buildPipeLifetimes(rec.pipeEvents);
    std::uint64_t retired = 0;
    for (const sim::PipeLifetime &l : lives)
        if (l.retire != kNeverCycle)
            ++retired;
    EXPECT_EQ(retired, out.run.instsRetired);
}

/** Engine tracing across a parallel batch must not perturb outcomes:
 *  --jobs 1 and --jobs 4 stay bit-identical with the recorder live. */
TEST(PipeViewConsistency, BatchOutcomesUnchangedUnderEngineTracing)
{
    const workloads::Workload w =
        workloads::buildWorkload("181.mcf", 3);
    std::vector<sim::SimJob> jobs;
    for (unsigned k = 0; k < cpu::kNumCpuKinds; ++k) {
        sim::SimJob j;
        j.program = &w.program;
        j.kind = static_cast<cpu::CpuKind>(k);
        j.maxCycles = 20'000'000;
        jobs.push_back(j);
    }

    const std::vector<sim::SimOutcome> serial =
        sim::runBatch(jobs, /*threads=*/1);

    engine::traceEnable();
    const std::vector<sim::SimOutcome> parallel =
        sim::runBatch(jobs, /*threads=*/4);
    const engine::TraceData data = engine::traceStop();

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].run.cycles, parallel[i].run.cycles) << i;
        EXPECT_EQ(serial[i].regFingerprint,
                  parallel[i].regFingerprint)
            << i;
        EXPECT_EQ(serial[i].memFingerprint,
                  parallel[i].memFingerprint)
            << i;
        EXPECT_EQ(serial[i].checksum, parallel[i].checksum) << i;
    }

    // The recorder saw the batch: one "job" span per job, and every
    // span indexes a valid name and lane.
    std::uint64_t jobSpans = 0;
    for (const engine::TraceSpan &s : data.spans) {
        ASSERT_LT(s.name, data.names.size());
        ASSERT_LT(s.lane, data.lanes.size());
        if (data.names[s.name] == "job" && !s.instant)
            ++jobSpans;
    }
    EXPECT_EQ(jobSpans, jobs.size());
}

} // namespace
