/**
 * @file
 * The cycle-accounting conservation law: every simulated cycle of
 * the architectural pipe lands in exactly one Figure-6 class, so the
 * per-class counts of CycleAccounting must sum to RunResult.cycles —
 * for every model, on every bundled workload. The shared CoreBase
 * run loop makes this true by construction (one record() per cycle);
 * this test pins the invariant across all four model kinds so a
 * future model or run-loop change cannot silently double-count or
 * skip cycles.
 */

#include <gtest/gtest.h>

#include <string>

#include "cpu/core/model_factory.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;

class AccountingInvariantTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AccountingInvariantTest, ClassCountsSumToRunCycles)
{
    const workloads::Workload w =
        workloads::buildWorkload(GetParam(), /*scale=*/3);
    for (unsigned k = 0; k < kNumCpuKinds; ++k) {
        const CpuKind kind = static_cast<CpuKind>(k);
        auto model = makeModel(kind, w.program, CoreConfig());
        const RunResult r = model->run(20'000'000);
        ASSERT_TRUE(r.halted)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(model->cycleAccounting().total(), r.cycles)
            << w.name << " on " << cpuKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AccountingInvariantTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

/** The invariant holds on a truncated (non-halting) run too. */
TEST(AccountingInvariant, HoldsWhenMaxCyclesTruncatesTheRun)
{
    const workloads::Workload w =
        workloads::buildWorkload("181.mcf", 3);
    for (unsigned k = 0; k < kNumCpuKinds; ++k) {
        const CpuKind kind = static_cast<CpuKind>(k);
        auto model = makeModel(kind, w.program, CoreConfig());
        const RunResult r = model->run(1000);
        EXPECT_FALSE(r.halted) << cpuKindName(kind);
        EXPECT_EQ(r.cycles, 1000u) << cpuKindName(kind);
        EXPECT_EQ(model->cycleAccounting().total(), r.cycles)
            << cpuKindName(kind);
    }
}

} // namespace
