/**
 * @file
 * The observer-purity guarantee: CoreObserver clients are strictly
 * read-only, so attaching the full metrics stack (profile +
 * telemetry observers through a MetricsSession) must leave every
 * architectural and statistical output of a run bit-identical to an
 * unobserved run — statsReport() text, cycle counts, and state
 * fingerprints — for every model kind on every bundled workload.
 * This is the regression wall behind "metrics are free to leave on":
 * an observer that mutates model state, or a model change that
 * branches on observer presence, fails here.
 */

#include <gtest/gtest.h>

#include <string>

#include "cpu/core/model_factory.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

/** Everything a run can tell us, as one comparable record. */
struct RunRecord
{
    cpu::RunResult run;
    std::string stats;
    std::uint64_t regFingerprint = 0;
    std::uint64_t memFingerprint = 0;
};

RunRecord
runModel(const isa::Program &prog, cpu::CpuKind kind, bool observed)
{
    const cpu::CoreConfig cfg;
    auto model = cpu::makeModel(kind, prog, cfg);

    sim::MetricsOptions mopt;
    mopt.profile = observed;
    mopt.telemetry = observed;
    sim::MetricsSession session(prog, cfg, mopt);
    session.attach(*model);

    RunRecord rec;
    rec.run = model->run(20'000'000);
    if (session.attached())
        session.harvest();
    rec.stats = model->statsReport();
    rec.regFingerprint = model->archRegs().fingerprint();
    rec.memFingerprint = model->memState().fingerprint();
    return rec;
}

class ObserverPurityTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ObserverPurityTest, StatsBitIdenticalWithObserversAttached)
{
    const workloads::Workload w =
        workloads::buildWorkload(GetParam(), /*scale=*/3);
    for (unsigned k = 0; k < cpu::kNumCpuKinds; ++k) {
        const cpu::CpuKind kind = static_cast<cpu::CpuKind>(k);
        const RunRecord plain = runModel(w.program, kind, false);
        const RunRecord observed = runModel(w.program, kind, true);
        ASSERT_TRUE(plain.run.halted)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.run.cycles, observed.run.cycles)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.run.instsRetired, observed.run.instsRetired)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.stats, observed.stats)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.regFingerprint, observed.regFingerprint)
            << w.name << " on " << cpuKindName(kind);
        EXPECT_EQ(plain.memFingerprint, observed.memFingerprint)
            << w.name << " on " << cpuKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ObserverPurityTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

/** The harness-level path: simulate() with metrics produces the same
 *  aggregate outcome as simulate() without, plus a record whose
 *  attributed + unattributed cycles conserve the run total. */
TEST(ObserverPurity, SimulateOutcomeUnchangedAndCyclesConserve)
{
    const workloads::Workload w =
        workloads::buildWorkload("181.mcf", 3);
    for (const cpu::CpuKind kind :
         {cpu::CpuKind::kBaseline, cpu::CpuKind::kTwoPass,
          cpu::CpuKind::kTwoPassRegroup, cpu::CpuKind::kRunahead}) {
        const sim::SimOutcome plain = sim::simulate(w.program, kind);
        sim::MetricsOptions mopt;
        mopt.profile = true;
        mopt.telemetry = true;
        const sim::SimOutcome metered =
            sim::simulate(w.program, kind, sim::table1Config(),
                          sim::kDefaultMaxCycles, mopt);

        EXPECT_EQ(plain.run.cycles, metered.run.cycles)
            << cpuKindName(kind);
        EXPECT_EQ(plain.regFingerprint, metered.regFingerprint)
            << cpuKindName(kind);
        EXPECT_EQ(plain.memFingerprint, metered.memFingerprint)
            << cpuKindName(kind);
        EXPECT_EQ(plain.checksum, metered.checksum)
            << cpuKindName(kind);
        EXPECT_EQ(plain.metrics, nullptr);

        ASSERT_NE(metered.metrics, nullptr) << cpuKindName(kind);
        const sim::MetricsRecord &rec = *metered.metrics;
        std::uint64_t attributed = 0;
        for (const auto &row : rec.profile)
            attributed += row.prof.totalCycles();
        for (std::uint64_t c : rec.unattributed)
            attributed += c;
        EXPECT_EQ(attributed, metered.run.cycles)
            << cpuKindName(kind);
    }
}

} // namespace
