/**
 * @file
 * The backbone correctness property: every timed CPU model finishes
 * every workload with exactly the architectural register file and
 * memory image of the functional reference. Any divergence in the
 * two-pass machinery (A-file management, store forwarding, ALAT
 * flushes, feedback races, regrouping) shows up here.
 */

#include <gtest/gtest.h>

#include "sim/harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

class EquivalenceTest : public ::testing::TestWithParam<std::string>
{
};

void
expectMatches(const sim::FunctionalOutcome &ref,
              const sim::SimOutcome &got, const std::string &label)
{
    EXPECT_EQ(ref.regFingerprint, got.regFingerprint)
        << label << ": architectural registers diverged";
    EXPECT_EQ(ref.memFingerprint, got.memFingerprint)
        << label << ": architectural memory diverged";
    EXPECT_EQ(ref.checksum, got.checksum)
        << label << ": workload checksum diverged";
    EXPECT_EQ(ref.result.instsExecuted, got.run.instsRetired)
        << label << ": retired instruction count diverged";
}

TEST_P(EquivalenceTest, AllModelsMatchFunctionalReference)
{
    const workloads::Workload w =
        workloads::buildWorkload(GetParam(), /*scale=*/6);
    const sim::FunctionalOutcome ref = sim::runFunctional(w.program);
    ASSERT_TRUE(ref.result.halted);

    for (sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
          sim::CpuKind::kTwoPassRegroup, sim::CpuKind::kRunahead}) {
        SCOPED_TRACE(sim::cpuKindName(kind));
        const sim::SimOutcome got = sim::simulate(w.program, kind);
        expectMatches(ref, got, std::string(sim::cpuKindName(kind)) +
                                    "/" + w.name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EquivalenceTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        return n;
    });

} // namespace
