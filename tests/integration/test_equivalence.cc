/**
 * @file
 * The backbone correctness property: every timed CPU model finishes
 * every workload with exactly the architectural register file and
 * memory image of the functional reference. Any divergence in the
 * two-pass machinery (A-file management, store forwarding, ALAT
 * flushes, feedback races, regrouping) shows up here. The four models
 * run as one runBatch(), so this also exercises the parallel
 * experiment engine end to end.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

class EquivalenceTest : public ::testing::TestWithParam<std::string>
{
};

void
expectMatches(const sim::FunctionalOutcome &ref,
              const sim::SimOutcome &got, const std::string &label)
{
    EXPECT_EQ(ref.regFingerprint, got.regFingerprint)
        << label << ": architectural registers diverged";
    EXPECT_EQ(ref.memFingerprint, got.memFingerprint)
        << label << ": architectural memory diverged";
    EXPECT_EQ(ref.checksum, got.checksum)
        << label << ": workload checksum diverged";
    EXPECT_EQ(ref.result.instsExecuted, got.run.instsRetired)
        << label << ": retired instruction count diverged";
}

TEST_P(EquivalenceTest, AllModelsMatchFunctionalReference)
{
    const workloads::Workload w =
        workloads::buildWorkload(GetParam(), /*scale=*/6);
    const sim::FunctionalOutcome ref = sim::runFunctional(w.program);
    ASSERT_TRUE(ref.result.halted);

    const std::vector<sim::CpuKind> kinds = {
        sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
        sim::CpuKind::kTwoPassRegroup, sim::CpuKind::kRunahead};
    std::vector<sim::SimJob> jobs;
    for (sim::CpuKind kind : kinds) {
        sim::SimJob j;
        j.program = &w.program;
        j.kind = kind;
        jobs.push_back(j);
    }
    const std::vector<sim::SimOutcome> outcomes = sim::runBatch(jobs);
    ASSERT_EQ(outcomes.size(), kinds.size());

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        SCOPED_TRACE(sim::cpuKindName(kinds[i]));
        EXPECT_EQ(outcomes[i].kind, kinds[i]);
        expectMatches(ref, outcomes[i],
                      std::string(sim::cpuKindName(kinds[i])) + "/" +
                          w.name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EquivalenceTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        return n;
    });

} // namespace
