/**
 * @file
 * Property-based testing: randomly generated (but always valid and
 * terminating) EPIC programs must produce identical architectural
 * state on every model — functional reference, baseline, two-pass,
 * two-pass with regrouping, and run-ahead — across a matrix of
 * hostile machine configurations (tiny coupling queues, finite
 * ALATs that fire false-positive flushes, disabled feedback, single
 * MSHRs). This is the widest net over the speculative machinery.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/random.hh"
#include "compiler/scheduler.hh"
#include "cpu/core/model_factory.hh"
#include "cpu/functional/functional_cpu.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"

#include "support/random_program.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

using ff::testsupport::randomProgram;
using ff::testsupport::g_data_mask;

struct FuzzCase
{
    std::uint64_t seed;
    const char *config;
};

CoreConfig
configNamed(const std::string &name)
{
    CoreConfig cfg;
    if (name == "default")
        return cfg;
    if (name == "tiny_cq") {
        cfg.couplingQueueSize = 8;
    } else if (name == "finite_alat") {
        cfg.alatCapacity = 4; // false-positive conflict flushes
    } else if (name == "alat2") {
        // Pathological: forward progress rests on the conflict-retry
        // fallback alone.
        cfg.alatCapacity = 2;
    } else if (name == "no_feedback") {
        cfg.feedbackEnabled = false;
    } else if (name == "one_mshr") {
        cfg.mem.maxOutstandingLoads = 1;
    } else if (name == "tiny_sbuf") {
        cfg.storeBufferSize = 2;
    } else if (name == "fp_stall") {
        cfg.aPipeStallsOnAnticipable = true;
    } else if (name == "slow_feedback") {
        cfg.feedbackLatency = 16;
    } else if (name == "selfcheck") {
        cfg.selfCheckInterval = 1; // A/B coherence audited every cycle
    } else if (name == "bimodal") {
        cfg.predictorKind = branch::PredictorKind::kBimodal;
    } else if (name == "tournament") {
        cfg.predictorKind = branch::PredictorKind::kTournament;
    } else if (name == "alias_heavy") {
        // handled by the fixture: shrinks the data window
    } else {
        ADD_FAILURE() << "unknown config " << name;
    }
    return cfg;
}

class PropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>>
{
};

TEST_P(PropertyTest, AllModelsAgreeOnRandomPrograms)
{
    const auto [seed, config_name] = GetParam();
    // The aliasing-heavy mode funnels every access into 256 bytes.
    g_data_mask = config_name == "alias_heavy" ? 0xF8 : 0x7FF8;
    const Program p = randomProgram(static_cast<std::uint64_t>(seed));
    ASSERT_EQ(p.validate(), "");
    const CoreConfig cfg = configNamed(config_name);

    FunctionalCpu ref(p);
    const auto fr = ref.run(2'000'000);
    ASSERT_TRUE(fr.halted) << "reference did not terminate";

    auto check = [&](CpuModel &m, const char *label) {
        const RunResult r = m.run(50'000'000);
        ASSERT_TRUE(r.halted) << label << " seed " << seed;
        EXPECT_EQ(r.instsRetired, fr.instsExecuted)
            << label << " seed " << seed;
        EXPECT_EQ(m.archRegs().fingerprint(),
                  ref.regs().fingerprint())
            << label << " seed " << seed << "\n"
            << disasmProgram(p);
        EXPECT_EQ(m.memState().fingerprint(), ref.mem().fingerprint())
            << label << " seed " << seed;
    };

    // Every model through the one construction path; kTwoPassRegroup
    // applies the regroup override inside the factory.
    for (unsigned k = 0; k < kNumCpuKinds; ++k) {
        const CpuKind kind = static_cast<CpuKind>(k);
        auto m = makeModel(kind, p, cfg);
        check(*m, cpuKindName(kind));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertyTest,
    ::testing::Combine(::testing::Range(1, 25),
                       ::testing::Values("default")),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    HostileConfigs, PropertyTest,
    ::testing::Combine(
        ::testing::Range(100, 106),
        ::testing::Values("tiny_cq", "finite_alat", "alat2",
                          "no_feedback", "one_mshr", "tiny_sbuf",
                          "fp_stall", "slow_feedback", "selfcheck",
                          "alias_heavy", "bimodal", "tournament")),
    [](const auto &info) {
        return std::get<1>(info.param) + "_seed" +
               std::to_string(std::get<0>(info.param));
    });

} // namespace
