/**
 * @file
 * Guard-rail tests on the *shape* of the reproduced results: who
 * wins, who loses, and the qualitative claims of Section 4. These
 * run the real workloads at a reduced scale, so the bounds are
 * deliberately loose — they exist to catch regressions that would
 * invalidate the paper's story, not to pin exact numbers. Each
 * test's model variants run as one runBatch() over the experiment
 * engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

constexpr int kScale = 25;

/** Runs @p kinds on @p w as one batch; outcome[i] is kinds[i]. */
std::vector<sim::SimOutcome>
runKinds(const workloads::Workload &w,
         std::initializer_list<sim::CpuKind> kinds)
{
    std::vector<sim::SimJob> jobs;
    for (sim::CpuKind kind : kinds) {
        sim::SimJob j;
        j.program = &w.program;
        j.kind = kind;
        jobs.push_back(j);
    }
    return sim::runBatch(jobs);
}

double
speedup(const workloads::Workload &w, sim::CpuKind kind,
        sim::SimOutcome *out = nullptr)
{
    const auto r = runKinds(w, {sim::CpuKind::kBaseline, kind});
    if (out)
        *out = r[1];
    return static_cast<double>(r[0].run.cycles) /
           static_cast<double>(r[1].run.cycles);
}

TEST(Shape, McfIsTheHeadlineWin)
{
    const auto w = workloads::buildWorkload("181.mcf", kScale);
    const auto r =
        runKinds(w, {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass});
    const sim::SimOutcome &base = r[0];
    const sim::SimOutcome &o = r[1];
    EXPECT_GT(static_cast<double>(base.run.cycles) /
                  static_cast<double>(o.run.cycles),
              1.25);
    // And the win comes from memory stalls (S3's direction): at
    // least a third of the load-stall cycles disappear.
    EXPECT_LT(o.cycles.of(cpu::CycleClass::kLoadStall) * 3,
              base.cycles.of(cpu::CycleClass::kLoadStall) * 2);
}

TEST(Shape, EquakeOverlapsLongMisses)
{
    const auto w = workloads::buildWorkload("183.equake", kScale);
    EXPECT_GT(speedup(w, sim::CpuKind::kTwoPass), 1.2);
}

TEST(Shape, VprIsTheOnlyNetLoss)
{
    // vpr's loss accrues with warm caches and a long conflict
    // history, so this one runs at full input scale.
    const auto w = workloads::buildWorkload("175.vpr", 100);
    sim::SimOutcome o;
    const double s = speedup(w, sim::CpuKind::kTwoPass, &o);
    EXPECT_LT(s, 1.0);
    EXPECT_GT(s, 0.75); // a loss, not a collapse
    // The paper's attribution: deferral of FP chains + conflicts.
    EXPECT_GT(o.twopass.storeConflictFlushes, 0u);
    const auto &r = o.twopass;
    EXPECT_GT(r.deferred, r.dispatched / 5);
}

TEST(Shape, GapGainsLittle)
{
    const auto w = workloads::buildWorkload("254.gap", kScale);
    sim::SimOutcome o;
    const double s = speedup(w, sim::CpuKind::kTwoPass, &o);
    EXPECT_GT(s, 0.97);
    EXPECT_LT(s, 1.2);
    // Figure 7's gap claim: the B-pipe initiates most access cycles.
    double a = 0, b = 0;
    for (unsigned l = 0; l < memory::kNumMemLevels; ++l) {
        a += static_cast<double>(
            o.accesses.weightedCycles[static_cast<unsigned>(
                memory::Initiator::kApipe)][l]);
        b += static_cast<double>(
            o.accesses.weightedCycles[static_cast<unsigned>(
                memory::Initiator::kBpipe)][l]);
    }
    EXPECT_GT(b, a);
}

TEST(Shape, TwolfMemoryWinOffsetByFrontEnd)
{
    const auto w = workloads::buildWorkload("300.twolf", kScale);
    const auto r =
        runKinds(w, {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass});
    const sim::SimOutcome &base = r[0];
    const sim::SimOutcome &o = r[1];
    // Memory stalls shrink...
    EXPECT_LT(o.cycles.of(cpu::CycleClass::kLoadStall),
              base.cycles.of(cpu::CycleClass::kLoadStall));
    // ...front-end stalls grow (B-DET lengthening)...
    EXPECT_GT(o.cycles.of(cpu::CycleClass::kFrontEndStall),
              base.cycles.of(cpu::CycleClass::kFrontEndStall));
    // ...and the net lands near break-even.
    const double s = static_cast<double>(base.run.cycles) /
                     static_cast<double>(o.run.cycles);
    EXPECT_GT(s, 0.85);
    EXPECT_LT(s, 1.25);
}

TEST(Shape, MajorityOfAccessCyclesStartInApipe)
{
    // Figure 7's headline, checked on the miss-heavy benchmarks.
    for (const char *name : {"181.mcf", "183.equake", "129.compress"}) {
        const auto w = workloads::buildWorkload(name, kScale);
        const sim::SimOutcome o =
            runKinds(w, {sim::CpuKind::kTwoPass})[0];
        double a = 0, b = 0;
        for (unsigned l = 0; l < memory::kNumMemLevels; ++l) {
            a += static_cast<double>(
                o.accesses.weightedCycles[static_cast<unsigned>(
                    memory::Initiator::kApipe)][l]);
            b += static_cast<double>(
                o.accesses.weightedCycles[static_cast<unsigned>(
                    memory::Initiator::kBpipe)][l]);
        }
        EXPECT_GT(a, b) << name;
    }
}

TEST(Shape, MispredictionsSplitBetweenDets)
{
    // S1: a meaningful fraction resolves at each DET across the suite.
    std::uint64_t a = 0, b = 0;
    for (const char *name : {"099.go", "300.twolf", "197.parser"}) {
        const auto w = workloads::buildWorkload(name, kScale);
        const sim::SimOutcome o =
            runKinds(w, {sim::CpuKind::kTwoPass})[0];
        a += o.twopass.aDetMispredicts;
        b += o.twopass.bDetMispredicts;
    }
    const double a_share =
        static_cast<double>(a) / static_cast<double>(a + b);
    EXPECT_GT(a_share, 0.02);
    EXPECT_LT(a_share, 0.90);
}

TEST(Shape, ConflictFreeRateIsHigh)
{
    // S2: nearly all A-loads issued past deferred stores survive.
    // One batch across the whole suite.
    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(),
                                    kScale / 2);
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kTwoPass, {}},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);
    std::uint64_t past = 0, conflicts = 0;
    for (const sim::SimOutcome &o : outcomes) {
        past += o.twopass.loadsPastDeferredStore;
        conflicts += o.twopass.storeConflictFlushes;
    }
    ASSERT_GT(past, 0u);
    const double free_rate =
        1.0 - static_cast<double>(conflicts) /
                  static_cast<double>(past);
    EXPECT_GT(free_rate, 0.80); // paper: 97%
}

TEST(Shape, RegroupingHelpsOnAverage)
{
    // S4's direction: 2Pre beats 2P in the geomean.
    double log_sum = 0.0;
    for (const char *name :
         {"181.mcf", "129.compress", "300.twolf", "175.vpr"}) {
        const auto w = workloads::buildWorkload(name, kScale);
        const auto r = runKinds(
            w, {sim::CpuKind::kTwoPass, sim::CpuKind::kTwoPassRegroup});
        log_sum += std::log(static_cast<double>(r[0].run.cycles) /
                            static_cast<double>(r[1].run.cycles));
    }
    EXPECT_GT(std::exp(log_sum / 4.0), 1.0);
}

TEST(Shape, FeedbackRemovalHurtsMcf)
{
    // Figure 8: mcf without feedback defers more and runs slower.
    const auto w = workloads::buildWorkload("181.mcf", kScale);
    cpu::CoreConfig off = sim::table1Config();
    off.feedbackEnabled = false;
    std::vector<sim::SimJob> jobs(2);
    jobs[0].program = &w.program;
    jobs[0].kind = sim::CpuKind::kTwoPass;
    jobs[1].program = &w.program;
    jobs[1].kind = sim::CpuKind::kTwoPass;
    jobs[1].cfg = off;
    const auto r = sim::runBatch(jobs);
    const sim::SimOutcome &o_on = r[0];
    const sim::SimOutcome &o_off = r[1];
    EXPECT_GT(o_off.twopass.deferred, o_on.twopass.deferred);
    EXPECT_GE(o_off.run.cycles, o_on.run.cycles);
}

TEST(Shape, RunaheadHelpsLongMissesButNotShortOnes)
{
    // The paper's Sec. 2/5 positioning: run-ahead (which discards
    // its work and refetches) pays off on long overlappable misses,
    // while two-pass uniquely absorbs the short, diffuse ones and
    // serial chases.
    {
        const auto w = workloads::buildWorkload("181.mcf", kScale);
        const auto r = runKinds(
            w, {sim::CpuKind::kBaseline, sim::CpuKind::kRunahead});
        EXPECT_LT(r[1].run.cycles, r[0].run.cycles);
    }
    {
        // Short L2-hit misses: entering/exiting run-ahead costs more
        // than the 5-cycle stall it hides; two-pass wins.
        const auto w = workloads::buildWorkload("129.compress", kScale);
        const auto r = runKinds(
            w, {sim::CpuKind::kRunahead, sim::CpuKind::kTwoPass});
        EXPECT_LT(r[1].run.cycles, r[0].run.cycles);
    }
    {
        // A serial chase gives run-ahead nothing to prefetch; the
        // refetch overhead makes it a net loss. Two-pass never loses
        // here.
        const auto w = workloads::buildWorkload("254.gap", kScale);
        const auto r =
            runKinds(w, {sim::CpuKind::kBaseline,
                         sim::CpuKind::kRunahead,
                         sim::CpuKind::kTwoPass});
        EXPECT_GT(r[1].run.cycles, r[2].run.cycles);
        EXPECT_LE(r[2].run.cycles, r[0].run.cycles);
    }
}

} // namespace
