/**
 * @file
 * The on-disk result cache: content addresses must separate every
 * input that can change an outcome, hits must reproduce the stored
 * outcome bit for bit, and — the safety property — corrupt or stale
 * entries must degrade to misses, never to wrong results.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/result_cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;
namespace fs = std::filesystem;

constexpr int kScale = 6;

const workloads::Workload &
workload()
{
    static const workloads::Workload w =
        workloads::buildWorkload("129.compress", kScale);
    return w;
}

/**
 * Every test runs against a private temp directory and restores the
 * disabled-cache default afterwards, so the cache globals never leak
 * into the other suites of this binary.
 */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = fs::path(::testing::TempDir()) /
               ("ffcache_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(_dir);
        sim::setResultCacheDir(_dir.string());
        sim::setResultCacheBypass(false);
        sim::resetResultCacheStats();
    }

    void
    TearDown() override
    {
        sim::setResultCacheDir("");
        sim::setResultCacheBypass(false);
        sim::resetResultCacheStats();
        fs::remove_all(_dir);
    }

    /** The single .ffr file under the cache dir (asserts exactly 1). */
    fs::path
    onlyEntry() const
    {
        std::vector<fs::path> found;
        for (const auto &e : fs::recursive_directory_iterator(_dir))
            if (e.path().extension() == ".ffr")
                found.push_back(e.path());
        EXPECT_EQ(found.size(), 1u);
        return found.empty() ? fs::path() : found.front();
    }

    fs::path _dir;
};

void
expectSameOutcome(const sim::SimOutcome &a, const sim::SimOutcome &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.run.halted, b.run.halted);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.instsRetired, b.run.instsRetired);
    EXPECT_EQ(a.run.groupsRetired, b.run.groupsRetired);
    EXPECT_EQ(a.cycles.counts, b.cycles.counts);
    EXPECT_EQ(a.accesses.counts, b.accesses.counts);
    EXPECT_EQ(a.accesses.weightedCycles, b.accesses.weightedCycles);
    EXPECT_EQ(a.branches.lookups, b.branches.lookups);
    EXPECT_EQ(a.branches.mispredicts, b.branches.mispredicts);
    EXPECT_EQ(a.twopass.dispatched, b.twopass.dispatched);
    EXPECT_EQ(a.twopass.deferred, b.twopass.deferred);
    EXPECT_EQ(a.twopass.deferredByReason, b.twopass.deferredByReason);
    EXPECT_EQ(a.alat.allocations, b.alat.allocations);
    EXPECT_EQ(a.runahead.episodes, b.runahead.episodes);
    EXPECT_EQ(a.regFingerprint, b.regFingerprint);
    EXPECT_EQ(a.memFingerprint, b.memFingerprint);
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST_F(ResultCacheTest, KeySeparatesEveryInput)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const isa::Program &p = workload().program;
    const std::string base = sim::resultCacheKey(
        p, sim::CpuKind::kTwoPass, cfg, sim::kDefaultMaxCycles);
    EXPECT_EQ(base.size(), 64u); // SHA-256 hex

    EXPECT_EQ(base,
              sim::resultCacheKey(p, sim::CpuKind::kTwoPass, cfg,
                                  sim::kDefaultMaxCycles));
    EXPECT_NE(base,
              sim::resultCacheKey(p, sim::CpuKind::kTwoPassRegroup,
                                  cfg, sim::kDefaultMaxCycles));
    EXPECT_NE(base, sim::resultCacheKey(p, sim::CpuKind::kTwoPass,
                                        cfg, 12345));
    cpu::CoreConfig other = cfg;
    other.alatCapacity = 8;
    EXPECT_NE(base,
              sim::resultCacheKey(p, sim::CpuKind::kTwoPass, other,
                                  sim::kDefaultMaxCycles));
    isa::Program poked = p;
    poked.poke64(0xa000, 7);
    EXPECT_NE(base,
              sim::resultCacheKey(poked, sim::CpuKind::kTwoPass, cfg,
                                  sim::kDefaultMaxCycles));
}

TEST_F(ResultCacheTest, MissStoreHitRoundTrip)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const sim::SimOutcome cold = sim::simulate(
        workload().program, sim::CpuKind::kTwoPass, cfg);
    const std::string key =
        sim::resultCacheKey(workload().program, sim::CpuKind::kTwoPass,
                            cfg, sim::kDefaultMaxCycles);

    sim::SimOutcome loaded;
    EXPECT_FALSE(sim::resultCacheLookup(key, loaded));
    EXPECT_TRUE(sim::resultCacheStore(key, cold));
    ASSERT_TRUE(sim::resultCacheLookup(key, loaded));
    expectSameOutcome(cold, loaded);

    const sim::ResultCacheStats s = sim::resultCacheStats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.errors, 0u);
}

TEST_F(ResultCacheTest, DisabledCacheNeverTouchesDisk)
{
    sim::setResultCacheDir("");
    const cpu::CoreConfig cfg = sim::table1Config();
    const sim::SimOutcome cold = sim::simulate(
        workload().program, sim::CpuKind::kBaseline, cfg);
    sim::SimOutcome loaded;
    EXPECT_FALSE(sim::resultCacheEnabled());
    EXPECT_FALSE(sim::resultCacheLookup("00deadbeef", loaded));
    EXPECT_FALSE(sim::resultCacheStore("00deadbeef", cold));
    const sim::ResultCacheStats s = sim::resultCacheStats();
    EXPECT_EQ(s.hits + s.misses + s.stores + s.errors, 0u);
}

TEST_F(ResultCacheTest, BypassSkipsLookupButRefreshesStore)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const sim::SimOutcome cold = sim::simulate(
        workload().program, sim::CpuKind::kBaseline, cfg);
    const std::string key =
        sim::resultCacheKey(workload().program,
                            sim::CpuKind::kBaseline, cfg,
                            sim::kDefaultMaxCycles);
    EXPECT_TRUE(sim::resultCacheStore(key, cold));

    sim::setResultCacheBypass(true);
    sim::SimOutcome loaded;
    EXPECT_FALSE(sim::resultCacheLookup(key, loaded));
    EXPECT_TRUE(sim::resultCacheStore(key, cold));

    sim::setResultCacheBypass(false);
    ASSERT_TRUE(sim::resultCacheLookup(key, loaded));
    expectSameOutcome(cold, loaded);
}

TEST_F(ResultCacheTest, CorruptEntriesDegradeToMisses)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const sim::SimOutcome cold = sim::simulate(
        workload().program, sim::CpuKind::kTwoPass, cfg);
    const std::string key =
        sim::resultCacheKey(workload().program, sim::CpuKind::kTwoPass,
                            cfg, sim::kDefaultMaxCycles);
    ASSERT_TRUE(sim::resultCacheStore(key, cold));
    const fs::path entry = onlyEntry();

    // Truncate the entry: lookup must miss, count an error, and
    // remove the bad file.
    fs::resize_file(entry, fs::file_size(entry) / 2);
    sim::SimOutcome loaded;
    EXPECT_FALSE(sim::resultCacheLookup(key, loaded));
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_GE(sim::resultCacheStats().errors, 1u);

    // Garbage bytes: same story.
    ASSERT_TRUE(sim::resultCacheStore(key, cold));
    {
        std::ofstream out(entry, std::ios::binary | std::ios::trunc);
        out << "not a cache entry";
    }
    EXPECT_FALSE(sim::resultCacheLookup(key, loaded));

    // A fresh store repairs the slot.
    ASSERT_TRUE(sim::resultCacheStore(key, cold));
    ASSERT_TRUE(sim::resultCacheLookup(key, loaded));
    expectSameOutcome(cold, loaded);
}

TEST_F(ResultCacheTest, MeteredOutcomesAreNeverCached)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    sim::MetricsOptions mopt;
    mopt.profile = true;
    const sim::SimOutcome metered =
        sim::simulate(workload().program, sim::CpuKind::kTwoPass, cfg,
                      sim::kDefaultMaxCycles, mopt);
    ASSERT_NE(metered.metrics, nullptr);
    const std::string key =
        sim::resultCacheKey(workload().program, sim::CpuKind::kTwoPass,
                            cfg, sim::kDefaultMaxCycles);
    EXPECT_FALSE(sim::resultCacheStore(key, metered));
    sim::SimOutcome loaded;
    EXPECT_FALSE(sim::resultCacheLookup(key, loaded));
}

TEST_F(ResultCacheTest, BatchSecondRunIsAllHits)
{
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPassRegroup, {}},
    };
    const std::vector<workloads::Workload> suite = {workload()};

    const auto cold = sim::runSweep(suite, variants, 2);
    const sim::ResultCacheStats after1 = sim::resultCacheStats();
    EXPECT_EQ(after1.hits, 0u);
    EXPECT_EQ(after1.misses, variants.size());
    EXPECT_EQ(after1.stores, variants.size());

    const auto warm = sim::runSweep(suite, variants, 2);
    const sim::ResultCacheStats after2 = sim::resultCacheStats();
    EXPECT_EQ(after2.hits, variants.size());
    EXPECT_EQ(after2.misses, variants.size());

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameOutcome(cold[i], warm[i]);
    }
}

TEST_F(ResultCacheTest, ForkedSweepUsesAndFillsTheCache)
{
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kRunahead, {}},
    };
    const std::vector<workloads::Workload> suite = {workload()};
    sim::SweepOptions opts;
    opts.warmupCycles = 1500;
    opts.threads = 2;

    const auto cold = sim::runSweep(suite, variants, opts);
    EXPECT_EQ(sim::resultCacheStats().stores, variants.size());

    const auto warm = sim::runSweep(suite, variants, opts);
    EXPECT_EQ(sim::resultCacheStats().hits, variants.size());
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameOutcome(cold[i], warm[i]);
    }
}

// --- verification cache ---------------------------------------------

TEST_F(ResultCacheTest, VerifyCacheKeySeparatesItsInputs)
{
    const isa::Program a = isa::assembleOrDie("movi r1 = 1 ;;\nhalt\n",
                                              "a");
    const isa::Program b = isa::assembleOrDie("movi r1 = 2 ;;\nhalt\n",
                                              "b");
    const isa::GroupLimits lim;
    isa::GroupLimits narrow;
    narrow.memUnits = 1;

    EXPECT_NE(sim::verifyCacheKey(a, lim), sim::verifyCacheKey(b, lim));
    EXPECT_NE(sim::verifyCacheKey(a, lim),
              sim::verifyCacheKey(a, narrow));

    // Source-line provenance is excluded: shifting the same stream
    // down the file must not invalidate the verdict.
    const isa::Program shifted = isa::assembleOrDie(
        "// pushed down\n\n\nmovi r1 = 1 ;;\nhalt\n", "a");
    EXPECT_EQ(sim::verifyCacheKey(a, lim),
              sim::verifyCacheKey(shifted, lim));
}

TEST_F(ResultCacheTest, VerifyCacheRoundTripCountsSeparately)
{
    sim::resetVerifyCacheStats();
    const isa::Program p =
        isa::assembleOrDie("movi r2 = 3 ;;\nhalt\n", "vc");
    const std::string key =
        sim::verifyCacheKey(p, isa::GroupLimits());

    EXPECT_FALSE(sim::verifyCacheLookup(key));
    EXPECT_TRUE(sim::verifyCacheStore(key));
    EXPECT_TRUE(sim::verifyCacheLookup(key));

    const sim::VerifyCacheStats vs = sim::verifyCacheStats();
    EXPECT_EQ(vs.hits, 1u);
    EXPECT_EQ(vs.misses, 1u);
    EXPECT_EQ(vs.stores, 1u);
    // The verification population never touches the result counters.
    const sim::ResultCacheStats rs = sim::resultCacheStats();
    EXPECT_EQ(rs.hits + rs.misses + rs.stores, 0u);
}

TEST_F(ResultCacheTest, VerifyCacheCorruptEntryDegradesToMiss)
{
    sim::resetVerifyCacheStats();
    const isa::Program p =
        isa::assembleOrDie("movi r3 = 4 ;;\nhalt\n", "vcx");
    const std::string key =
        sim::verifyCacheKey(p, isa::GroupLimits());
    ASSERT_TRUE(sim::verifyCacheStore(key));

    fs::path entry;
    for (const auto &e : fs::recursive_directory_iterator(_dir))
        if (e.path().extension() == ".ffv")
            entry = e.path();
    ASSERT_FALSE(entry.empty());
    {
        std::ofstream out(entry, std::ios::binary | std::ios::trunc);
        out << "garbage";
    }
    EXPECT_FALSE(sim::verifyCacheLookup(key));
    EXPECT_EQ(sim::verifyCacheStats().errors, 1u);
    // The corrupt file was dropped so a refresh can replace it.
    EXPECT_FALSE(fs::exists(entry));
}

TEST_F(ResultCacheTest, VerificationWallFillsTheVerifyCache)
{
    sim::resetVerifyCacheStats();
    // A program this process has never verified (unique constant),
    // so the in-memory memo cannot satisfy the wall.
    const isa::Program p = isa::assembleOrDie(
        "movi r4 = 0x51a17 ;;\nmovi r5 = 0x100 ;;\n"
        "st8 [r5] = r4\nhalt\n",
        "vcfill");
    const sim::FunctionalOutcome out = sim::runFunctional(p);
    EXPECT_TRUE(out.result.halted);
    EXPECT_TRUE(sim::verifyCacheLookup(
        sim::verifyCacheKey(p, isa::GroupLimits())));
    EXPECT_EQ(sim::verifyCacheStats().stores, 1u);
}

} // namespace
