/** @file Unit tests for the text-report helpers. */

#include <gtest/gtest.h>

#include "sim/report.hh"

namespace
{

using namespace ff;
using namespace ff::sim;

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    const std::string out = t.render();

    // Every row has the value column starting at the same offset.
    const auto header_pos = out.find("value");
    const auto row1_line = out.find("a ");
    ASSERT_NE(header_pos, std::string::npos);
    ASSERT_NE(row1_line, std::string::npos);
    EXPECT_NE(out.find("longer-name  22"), std::string::npos);
}

TEST(TextTable, HeaderRule)
{
    TextTable t;
    t.header({"x"});
    t.row({"y"});
    const std::string out = t.render();
    EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(TextTable, NoHeaderNoRule)
{
    TextTable t;
    t.row({"just", "data"});
    EXPECT_EQ(t.render().find('-'), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3"});
    const std::string out = t.render();
    EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(Fixed, Precision)
{
    EXPECT_EQ(fixed(1.23456, 3), "1.235");
    EXPECT_EQ(fixed(2.0, 1), "2.0");
    EXPECT_EQ(fixed(-0.5, 2), "-0.50");
}

TEST(Pct, Formatting)
{
    EXPECT_EQ(pct(0.5), "50.0%");
    EXPECT_EQ(pct(0.123), "12.3%");
    EXPECT_EQ(pct(1.0), "100.0%");
    EXPECT_EQ(pct(0.0), "0.0%");
}

TEST(Fig6Cells, NormalizesToBaseline)
{
    cpu::CycleAccounting acct;
    acct.counts[0] = 50; // unstalled
    acct.counts[1] = 25; // load
    acct.counts[4] = 25; // frontend
    const auto cells = fig6Cells(acct, 100);
    ASSERT_EQ(cells.size(), cpu::kNumCycleClasses + 1);
    EXPECT_EQ(cells[0], "0.500");
    EXPECT_EQ(cells[1], "0.250");
    EXPECT_EQ(cells[4], "0.250");
    EXPECT_EQ(cells.back(), "1.000"); // total
}

TEST(Fig6Cells, ZeroBaselineIsSafe)
{
    cpu::CycleAccounting acct;
    acct.counts[0] = 3;
    const auto cells = fig6Cells(acct, 0);
    EXPECT_EQ(cells[0], "3.000"); // falls back to a unit norm
}

} // namespace
