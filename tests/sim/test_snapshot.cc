/**
 * @file
 * Snapshot correctness: the warm-up fork machinery is only usable if
 * a restored model is bit-for-bit the machine that was saved. Every
 * model kind is saved at a mid-run cycle, restored into a fresh
 * instance, run to completion, and compared against an uninterrupted
 * run — full statsReport() text (every counter in the simulator) plus
 * architectural fingerprints. The container format and the
 * warm-up-sharing sweep engine are covered on top.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core/model_factory.hh"
#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/snapshot.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

constexpr int kScale = 6;

const std::vector<sim::CpuKind> &
allKinds()
{
    static const std::vector<sim::CpuKind> kinds = {
        sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
        sim::CpuKind::kTwoPassRegroup, sim::CpuKind::kRunahead};
    return kinds;
}

/** Shared workloads, built once per test binary. */
const std::vector<workloads::Workload> &
suite()
{
    static const std::vector<workloads::Workload> s = [] {
        std::vector<workloads::Workload> v;
        v.push_back(workloads::buildWorkload("181.mcf", kScale));
        v.push_back(workloads::buildWorkload("129.compress", kScale));
        return v;
    }();
    return s;
}

/**
 * A deterministic "random" mid-run cycle: derived from the program
 * and kind so every (workload, kind) pair snapshots somewhere
 * different, but reruns reproduce failures exactly.
 */
std::uint64_t
midRunCycle(const isa::Program &prog, sim::CpuKind kind)
{
    std::uint64_t h = prog.instStreamHash() * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(kind);
    h ^= h >> 33;
    return 500 + h % 4000;
}

TEST(Snapshot, RoundTripMidRunEveryKindEveryWorkload)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    for (const workloads::Workload &w : suite()) {
        for (const sim::CpuKind kind : allKinds()) {
            SCOPED_TRACE(w.name + " / " + sim::cpuKindName(kind));

            // Uninterrupted reference run.
            const std::unique_ptr<cpu::CpuModel> ref =
                cpu::makeModel(kind, w.program, cfg);
            const cpu::RunResult refRun =
                ref->run(sim::kDefaultMaxCycles);
            ASSERT_TRUE(refRun.halted);

            // Interrupted run: stop mid-flight, snapshot, restore
            // into a fresh model, continue to completion.
            const std::uint64_t cut = midRunCycle(w.program, kind);
            const std::unique_ptr<cpu::CpuModel> first =
                cpu::makeModel(kind, w.program, cfg);
            const cpu::RunResult firstRun = first->run(cut);
            ASSERT_FALSE(firstRun.halted)
                << "workload too small to cut at " << cut;
            ASSERT_TRUE(first->supportsSnapshot());
            EXPECT_EQ(first->currentCycle(), cut);
            const sim::Snapshot snap =
                sim::saveSnapshot(*first, kind, w.program, cfg);
            EXPECT_EQ(snap.cycle, cut);

            const std::unique_ptr<cpu::CpuModel> second =
                cpu::makeModel(kind, w.program, cfg);
            sim::restoreSnapshot(*second, snap, kind, w.program, cfg);
            const cpu::RunResult resumed =
                second->run(sim::kDefaultMaxCycles);

            ASSERT_TRUE(resumed.halted);
            EXPECT_EQ(resumed.cycles, refRun.cycles);
            EXPECT_EQ(resumed.instsRetired, refRun.instsRetired);
            EXPECT_EQ(resumed.groupsRetired, refRun.groupsRetired);
            EXPECT_EQ(second->archRegs().fingerprint(),
                      ref->archRegs().fingerprint());
            EXPECT_EQ(second->memState().fingerprint(),
                      ref->memState().fingerprint());
            // The statsReport dump covers every counter the model
            // keeps (accounting, caches, predictor, model stats,
            // distributions): textual equality means the restored
            // machine is statistically indistinguishable too.
            EXPECT_EQ(second->statsReport(), ref->statsReport());
        }
    }
}

TEST(Snapshot, SaveIsReadOnlyAndRepeatable)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const sim::CpuKind kind = sim::CpuKind::kTwoPass;

    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(kind, w.program, cfg);
    (void)m->run(1500);
    const sim::Snapshot a = sim::saveSnapshot(*m, kind, w.program, cfg);
    const sim::Snapshot b = sim::saveSnapshot(*m, kind, w.program, cfg);
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.cycle, b.cycle);
}

TEST(Snapshot, EncodeDecodeRoundTrip)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const sim::CpuKind kind = sim::CpuKind::kTwoPassRegroup;

    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(kind, w.program, cfg);
    (void)m->run(1200);
    const sim::Snapshot snap =
        sim::saveSnapshot(*m, kind, w.program, cfg);

    const std::vector<std::uint8_t> bytes = sim::encodeSnapshot(snap);
    sim::Snapshot back;
    ASSERT_TRUE(sim::decodeSnapshot(bytes, back));
    EXPECT_EQ(back.kind, snap.kind);
    EXPECT_EQ(back.cycle, snap.cycle);
    EXPECT_EQ(back.programHash, snap.programHash);
    EXPECT_EQ(back.configHash, snap.configHash);
    EXPECT_EQ(back.state, snap.state);
}

TEST(Snapshot, DecodeRejectsCorruptContainers)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(sim::CpuKind::kBaseline, w.program, cfg);
    (void)m->run(800);
    const std::vector<std::uint8_t> bytes = sim::encodeSnapshot(
        sim::saveSnapshot(*m, sim::CpuKind::kBaseline, w.program,
                          cfg));

    sim::Snapshot out;
    // Truncation at several depths.
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{3}, std::size_t{10},
          bytes.size() / 2, bytes.size() - 1}) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + len);
        EXPECT_FALSE(sim::decodeSnapshot(cut, out)) << len;
    }
    // Bad magic / version.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(sim::decodeSnapshot(bad, out));
    bad = bytes;
    bad[4] ^= 0xff;
    EXPECT_FALSE(sim::decodeSnapshot(bad, out));
    // Trailing garbage.
    bad = bytes;
    bad.push_back(0);
    EXPECT_FALSE(sim::decodeSnapshot(bad, out));
}

TEST(SnapshotDeathTest, StaleFormatVersionIsFatal)
{
    // A container written by the previous format version must be
    // rejected — and decodeSnapshotOrDie() must say why, naming both
    // the container's version and the version this build expects.
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(sim::CpuKind::kBaseline, w.program, cfg);
    (void)m->run(800);
    const std::vector<std::uint8_t> bytes = sim::encodeSnapshot(
        sim::saveSnapshot(*m, sim::CpuKind::kBaseline, w.program,
                          cfg));

    // The good container decodes fatally-free.
    const sim::Snapshot ok = sim::decodeSnapshotOrDie(bytes);
    EXPECT_EQ(ok.kind, sim::CpuKind::kBaseline);

    // Rewrite the version field (bytes 4..8, little-endian) to v(N-1).
    std::vector<std::uint8_t> stale = bytes;
    const std::uint32_t prev = sim::kSnapshotFormatVersion - 1;
    std::memcpy(stale.data() + 4, &prev, sizeof(prev));

    sim::Snapshot out;
    EXPECT_FALSE(sim::decodeSnapshot(stale, out));
    EXPECT_DEATH(sim::decodeSnapshotOrDie(stale),
                 "format version 1 but this build reads version 2");

    // Bad magic and truncation die with their own diagnosis.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_DEATH(sim::decodeSnapshotOrDie(bad), "bad magic");
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + 6);
    EXPECT_DEATH(sim::decodeSnapshotOrDie(cut),
                 "truncated or corrupt");
}

TEST(Snapshot, ConfigHashSeparatesEveryKnob)
{
    const cpu::CoreConfig base = sim::table1Config();
    const std::uint64_t h0 = sim::canonicalConfigHash(base);
    EXPECT_EQ(h0, sim::canonicalConfigHash(base));

    cpu::CoreConfig c = base;
    c.couplingQueueSize = 32;
    EXPECT_NE(sim::canonicalConfigHash(c), h0);
    c = base;
    c.feedbackEnabled = false;
    EXPECT_NE(sim::canonicalConfigHash(c), h0);
    c = base;
    c.mem.memoryLatency += 1;
    EXPECT_NE(sim::canonicalConfigHash(c), h0);
    c = base;
    c.mem.l2.assoc *= 2;
    EXPECT_NE(sim::canonicalConfigHash(c), h0);
    c = base;
    c.limits.issueWidth = 4;
    EXPECT_NE(sim::canonicalConfigHash(c), h0);
    c = base;
    c.predictorKind = branch::PredictorKind::kBimodal;
    EXPECT_NE(sim::canonicalConfigHash(c), h0);
}

TEST(Snapshot, ProgramContentHashCoversDataImage)
{
    isa::Program a = suite().front().program;
    isa::Program b = a;
    b.poke64(0x9000, 0xfeedULL);
    // Same instruction stream, different initial data: the verify
    // memo may treat them alike, but snapshots and cache keys must
    // not.
    EXPECT_EQ(a.instStreamHash(), b.instStreamHash());
    EXPECT_NE(sim::programContentHash(a), sim::programContentHash(b));
}

TEST(SnapshotDeathTest, RestoreRejectsMismatchedIdentity)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const sim::CpuKind kind = sim::CpuKind::kTwoPass;
    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(kind, w.program, cfg);
    (void)m->run(1000);
    const sim::Snapshot snap =
        sim::saveSnapshot(*m, kind, w.program, cfg);

    // Wrong kind.
    {
        std::unique_ptr<cpu::CpuModel> other = cpu::makeModel(
            sim::CpuKind::kBaseline, w.program, cfg);
        EXPECT_DEATH(sim::restoreSnapshot(*other, snap,
                                          sim::CpuKind::kBaseline,
                                          w.program, cfg),
                     "snapshot");
    }
    // Wrong config.
    {
        cpu::CoreConfig small = cfg;
        small.couplingQueueSize = 16;
        std::unique_ptr<cpu::CpuModel> other =
            cpu::makeModel(kind, w.program, small);
        EXPECT_DEATH(sim::restoreSnapshot(*other, snap, kind,
                                          w.program, small),
                     "configuration");
    }
}

TEST(Snapshot, WarmupPastHaltReportsCompletedOutcome)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const sim::SimOutcome cold =
        sim::simulate(w.program, sim::CpuKind::kBaseline, cfg);

    const sim::WarmupResult warm = sim::runWarmup(
        w.program, sim::CpuKind::kBaseline, cfg,
        cold.run.cycles + 1000, sim::kDefaultMaxCycles);
    ASSERT_TRUE(warm.completed);
    EXPECT_EQ(warm.outcome.run.cycles, cold.run.cycles);
    EXPECT_EQ(warm.outcome.memFingerprint, cold.memFingerprint);
}

TEST(Snapshot, WarmupThenResumeMatchesCold)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    for (const sim::CpuKind kind : allKinds()) {
        SCOPED_TRACE(sim::cpuKindName(kind));
        const workloads::Workload &w = suite()[1];
        const sim::SimOutcome cold = sim::simulate(w.program, kind, cfg);

        const sim::WarmupResult warm =
            sim::runWarmup(w.program, kind, cfg, 2000);
        ASSERT_FALSE(warm.completed);
        const sim::SimOutcome forked = sim::resumeSnapshot(
            w.program, kind, cfg, warm.snap);

        EXPECT_EQ(forked.run.cycles, cold.run.cycles);
        EXPECT_EQ(forked.run.instsRetired, cold.run.instsRetired);
        EXPECT_EQ(forked.regFingerprint, cold.regFingerprint);
        EXPECT_EQ(forked.memFingerprint, cold.memFingerprint);
        EXPECT_EQ(forked.checksum, cold.checksum);
        EXPECT_EQ(forked.twopass.deferred, cold.twopass.deferred);
        EXPECT_EQ(forked.branches.mispredicts,
                  cold.branches.mispredicts);
        EXPECT_EQ(forked.cycles.counts, cold.cycles.counts);
        EXPECT_EQ(forked.accesses.counts, cold.accesses.counts);
    }
}

void
expectIdentical(const std::vector<sim::SimOutcome> &a,
                const std::vector<sim::SimOutcome> &b,
                const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(label + ", outcome " + std::to_string(i));
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].run.cycles, b[i].run.cycles);
        EXPECT_EQ(a[i].run.instsRetired, b[i].run.instsRetired);
        EXPECT_EQ(a[i].regFingerprint, b[i].regFingerprint);
        EXPECT_EQ(a[i].memFingerprint, b[i].memFingerprint);
        EXPECT_EQ(a[i].checksum, b[i].checksum);
        EXPECT_EQ(a[i].cycles.counts, b[i].cycles.counts);
        EXPECT_EQ(a[i].twopass.deferred, b[i].twopass.deferred);
        EXPECT_EQ(a[i].twopass.dispatched, b[i].twopass.dispatched);
        EXPECT_EQ(a[i].branches.mispredicts,
                  b[i].branches.mispredicts);
        EXPECT_EQ(a[i].runahead.episodes, b[i].runahead.episodes);
    }
}

TEST(Snapshot, ForkedSweepBitIdenticalToColdAtAnyJobCount)
{
    cpu::CoreConfig nofb = sim::table1Config();
    nofb.feedbackEnabled = false;
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPass, {}}, // duplicate cell: shared group
        {sim::CpuKind::kTwoPass, nofb},
        {sim::CpuKind::kTwoPassRegroup, {}},
        {sim::CpuKind::kRunahead, {}},
    };

    const auto cold = sim::runSweep(suite(), variants, 1);

    sim::SweepOptions opts;
    opts.warmupCycles = 1800;
    opts.threads = 1;
    const auto forked1 = sim::runSweep(suite(), variants, opts);
    expectIdentical(cold, forked1, "cold vs forked jobs=1");

    opts.threads = 4;
    const auto forked4 = sim::runSweep(suite(), variants, opts);
    expectIdentical(cold, forked4, "cold vs forked jobs=4");
}

TEST(SnapshotDeathTest, ResumeBudgetAtOrBelowWarmupPointIsFatal)
{
    // resumeSnapshot()'s budget counts total simulated cycles from
    // cycle 0 (header contract): a budget at or below the snapshot
    // cycle leaves no room to advance and must be rejected instead
    // of reporting a spurious timeout.
    const cpu::CoreConfig cfg = sim::table1Config();
    const workloads::Workload &w = suite().front();
    const sim::CpuKind kind = sim::CpuKind::kBaseline;
    const sim::WarmupResult warm =
        sim::runWarmup(w.program, kind, cfg, 2000);
    ASSERT_FALSE(warm.completed);
    ASSERT_EQ(warm.snap.cycle, 2000u);

    EXPECT_DEATH(sim::resumeSnapshot(w.program, kind, cfg, warm.snap,
                                     warm.snap.cycle),
                 "does not reach past the snapshot's warm-up point");
    EXPECT_DEATH(sim::resumeSnapshot(w.program, kind, cfg, warm.snap,
                                     warm.snap.cycle - 1),
                 "does not reach past the snapshot's warm-up point");
    // A budget with room past the warm-up point is legal.
    const sim::SimOutcome ok = sim::resumeSnapshot(
        w.program, kind, cfg, warm.snap, sim::kDefaultMaxCycles);
    EXPECT_TRUE(ok.run.halted);
}

TEST(Snapshot, ChainedSnapshotByteIdenticalToStraightLine)
{
    // Snapshot-chain determinism: checkpointing at N, resuming, and
    // checkpointing again at 2N must produce the same bytes as one
    // uninterrupted run snapshotted at 2N. Sampled simulation leans
    // on this transitivity — any divergence would compound across a
    // checkpoint chain.
    const cpu::CoreConfig cfg = sim::table1Config();
    for (const workloads::Workload &w : suite()) {
        for (const sim::CpuKind kind : allKinds()) {
            SCOPED_TRACE(w.name + " / " + sim::cpuKindName(kind));
            const std::uint64_t n =
                500 + midRunCycle(w.program, kind) % 1500;

            // Chained: run to N, snapshot, restore into a fresh
            // model, run to 2N (total cycles), snapshot again.
            const std::unique_ptr<cpu::CpuModel> first =
                cpu::makeModel(kind, w.program, cfg);
            ASSERT_FALSE(first->run(n).halted);
            const sim::Snapshot at_n =
                sim::saveSnapshot(*first, kind, w.program, cfg);

            const std::unique_ptr<cpu::CpuModel> resumed =
                cpu::makeModel(kind, w.program, cfg);
            sim::restoreSnapshot(*resumed, at_n, kind, w.program, cfg);
            ASSERT_FALSE(resumed->run(2 * n).halted);
            const sim::Snapshot chained =
                sim::saveSnapshot(*resumed, kind, w.program, cfg);

            // Straight line: one cold run to 2N.
            const std::unique_ptr<cpu::CpuModel> straight =
                cpu::makeModel(kind, w.program, cfg);
            ASSERT_FALSE(straight->run(2 * n).halted);
            const sim::Snapshot direct =
                sim::saveSnapshot(*straight, kind, w.program, cfg);

            EXPECT_EQ(chained.cycle, direct.cycle);
            EXPECT_EQ(chained.state, direct.state);
        }
    }
}

TEST(Snapshot, ForkedSweepZeroWarmupFallsBackToPlainBatch)
{
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
    };
    sim::SweepOptions opts; // warmupCycles = 0
    opts.threads = 2;
    const auto plain = sim::runSweep(suite(), variants, 2);
    const auto viaOpts = sim::runSweep(suite(), variants, opts);
    expectIdentical(plain, viaOpts, "threads-arg vs options-arg");
}

} // namespace
