/**
 * @file
 * Sampled simulation correctness: the checkpoint plan must carry the
 * exact architectural state (warping a model to any checkpoint and
 * running to completion reproduces the reference fingerprints), the
 * estimator must land near ground truth and be bit-identical at any
 * thread count, and sampled results must never collide with full
 * detailed results in the result cache.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core/model_factory.hh"
#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/result_cache.hh"
#include "sim/sampled.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;
namespace fs = std::filesystem;

/** Long enough for several sampling strata, short enough for CI. */
constexpr int kScale = 40;

const workloads::Workload &
workload()
{
    static const workloads::Workload w =
        workloads::buildWorkload("181.mcf", kScale);
    return w;
}

sim::SampledOptions
testOptions()
{
    sim::SampledOptions o;
    o.intervalCycles = 8000;
    o.detailCycles = 1000;
    return o;
}

TEST(Sampled, NormalizedDerivesDocumentedDefaults)
{
    sim::SampledOptions o;
    o.intervalCycles = 32000;
    const sim::SampledOptions n = o.normalized();
    EXPECT_EQ(n.intervalCycles, 32000u);
    EXPECT_EQ(n.detailCycles, 4000u); // interval / 8
    EXPECT_EQ(n.warmupCycles, 4000u); // detail, floored at 512
    EXPECT_EQ(n.maxIntervals, 64u);

    // Explicit fields survive; maxIntervals floors at 2 (one window
    // has no variance estimate).
    o.detailCycles = 500;
    o.warmupCycles = 250;
    o.maxIntervals = 1;
    const sim::SampledOptions m = o.normalized();
    EXPECT_EQ(m.detailCycles, 500u);
    EXPECT_EQ(m.warmupCycles, 250u);
    EXPECT_EQ(m.maxIntervals, 2u);
}

TEST(Sampled, PlanCheckpointsCarryExactArchState)
{
    // Warp a fresh timed model to each checkpoint's architectural
    // state and run it to completion: the final register and memory
    // fingerprints must equal the functional reference's. This is
    // the foundation the replay phase stands on — a checkpoint that
    // dropped one byte would bias every window after it.
    const workloads::Workload &w = workload();
    const cpu::CoreConfig cfg = sim::table1Config();
    const sim::SampledPlan plan =
        sim::sampledCheckpointPass(w.program, testOptions());
    ASSERT_GE(plan.checkpoints.size(), 3u);

    // Entry checkpoint is pinned at instruction 0 (the exact-prefix
    // estimator depends on it); later ones are jittered into their
    // strata.
    EXPECT_EQ(plan.checkpoints.front().instsBefore, 0u);
    for (std::size_t i = 1; i < plan.checkpoints.size(); ++i) {
        EXPECT_GT(plan.checkpoints[i].instsBefore,
                  plan.checkpoints[i - 1].instsBefore);
    }

    // First, middle, last — a full scan would dominate test time.
    for (const std::size_t i :
         {std::size_t{0}, plan.checkpoints.size() / 2,
          plan.checkpoints.size() - 1}) {
        SCOPED_TRACE("checkpoint " + std::to_string(i));
        const sim::SampledCheckpoint &cp = plan.checkpoints[i];
        const std::unique_ptr<cpu::CpuModel> m = cpu::makeModel(
            sim::CpuKind::kTwoPass, w.program, cfg,
            /*load_image=*/false);
        m->warpArchState(cp.regs, cp.mem, cp.pc);
        m->warmMicroArch(cp.warm);
        const cpu::RunResult run = m->run(sim::kDefaultMaxCycles);
        ASSERT_TRUE(run.halted);
        EXPECT_EQ(run.instsRetired,
                  plan.functional.instsExecuted - cp.instsBefore);
        EXPECT_EQ(m->archRegs().fingerprint(), plan.regFingerprint);
        EXPECT_EQ(m->memState().fingerprint(), plan.memFingerprint);
    }
}

TEST(Sampled, EstimateTracksGroundTruth)
{
    // A loose sanity corridor; the tight 2% accuracy gate runs at
    // bench scale as the sampled_accuracy ctest (bench_sampled).
    const workloads::Workload &w = workload();
    for (const sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass}) {
        SCOPED_TRACE(sim::cpuKindName(kind));
        const sim::SimOutcome full = sim::simulate(w.program, kind);
        const sim::SimOutcome est = sim::simulateSampled(
            w.program, kind, sim::table1Config(), testOptions());

        ASSERT_NE(est.sampled, nullptr);
        const sim::SampledEstimate &e = *est.sampled;
        EXPECT_TRUE(est.run.halted);
        // Instruction totals and architectural fingerprints are
        // exact — they come from the functional pass, not sampling.
        EXPECT_EQ(e.totalInsts, full.run.instsRetired);
        EXPECT_EQ(est.run.instsRetired, full.run.instsRetired);
        EXPECT_EQ(est.regFingerprint, full.regFingerprint);
        EXPECT_EQ(est.memFingerprint, full.memFingerprint);
        EXPECT_EQ(est.checksum, full.checksum);

        const double rel =
            std::fabs(e.ipcMean - full.run.ipc()) / full.run.ipc();
        EXPECT_LT(rel, 0.10) << "sampled " << e.ipcMean << " vs full "
                             << full.run.ipc();

        // Internal consistency of the estimate record.
        EXPECT_GT(e.intervalsTotal, 0u);
        EXPECT_LE(e.intervalsMeasured, e.intervalsTotal);
        EXPECT_GE(e.prefixCycles, 1u);
        EXPECT_GE(e.spacing, e.options.intervalCycles);
        EXPECT_NEAR(e.ipcCi95, 1.96 * e.ipcStdErr, 1e-12);
        EXPECT_NEAR(e.ipcMean,
                    static_cast<double>(e.totalInsts) /
                        e.estimatedCycles,
                    1e-9);
        // Cycle-class accounting scales to the estimated length.
        std::uint64_t classes = 0;
        for (const std::uint64_t c : est.cycles.counts)
            classes += c;
        EXPECT_EQ(classes, est.run.cycles);
    }
}

TEST(Sampled, BitIdenticalAtAnyThreadCount)
{
    const workloads::Workload &w = workload();
    const cpu::CoreConfig cfg = sim::table1Config();
    const sim::SimOutcome serial = sim::simulateSampled(
        w.program, sim::CpuKind::kTwoPass, cfg, testOptions(),
        sim::kDefaultMaxCycles, /*threads=*/1);
    const sim::SimOutcome pooled = sim::simulateSampled(
        w.program, sim::CpuKind::kTwoPass, cfg, testOptions(),
        sim::kDefaultMaxCycles, /*threads=*/4);

    ASSERT_NE(serial.sampled, nullptr);
    ASSERT_NE(pooled.sampled, nullptr);
    EXPECT_EQ(serial.run.cycles, pooled.run.cycles);
    EXPECT_EQ(serial.cycles.counts, pooled.cycles.counts);
    // Double-precision equality must be exact, not approximate:
    // stitching folds windows in checkpoint order regardless of
    // completion order.
    EXPECT_EQ(serial.sampled->estimatedCycles,
              pooled.sampled->estimatedCycles);
    EXPECT_EQ(serial.sampled->ipcMean, pooled.sampled->ipcMean);
    EXPECT_EQ(serial.sampled->ipcStdDev, pooled.sampled->ipcStdDev);
    EXPECT_EQ(serial.sampled->sampledCycles,
              pooled.sampled->sampledCycles);
}

TEST(Sampled, BatchSharesOnePlanAcrossKinds)
{
    // Three sampled jobs over one program: outcomes must equal the
    // standalone estimates (the shared checkpoint plan is a pure
    // function of program and sampling options, never of the kind).
    const workloads::Workload &w = workload();
    const cpu::CoreConfig cfg = sim::table1Config();
    std::vector<sim::SimJob> jobs(3);
    const sim::CpuKind kinds[] = {sim::CpuKind::kBaseline,
                                  sim::CpuKind::kTwoPass,
                                  sim::CpuKind::kTwoPassRegroup};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].program = &w.program;
        jobs[i].kind = kinds[i];
        jobs[i].cfg = cfg;
        jobs[i].sampled = testOptions();
    }
    const std::vector<sim::SimOutcome> batch =
        sim::runBatch(jobs, /*threads=*/2);
    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(sim::cpuKindName(kinds[i]));
        const sim::SimOutcome alone = sim::simulateSampled(
            w.program, kinds[i], cfg, testOptions());
        ASSERT_NE(batch[i].sampled, nullptr);
        EXPECT_EQ(batch[i].run.cycles, alone.run.cycles);
        EXPECT_EQ(batch[i].sampled->ipcMean, alone.sampled->ipcMean);
        EXPECT_EQ(batch[i].sampled->estimatedCycles,
                  alone.sampled->estimatedCycles);
    }
}

TEST(Sampled, CacheKeysSeparateSampledFromFullAndAcrossConfigs)
{
    const isa::Program &p = workload().program;
    const cpu::CoreConfig cfg = sim::table1Config();
    const std::string full_key = sim::resultCacheKey(
        p, sim::CpuKind::kTwoPass, cfg, sim::kDefaultMaxCycles);
    const std::string sampled_key = sim::resultCacheKey(
        p, sim::CpuKind::kTwoPass, cfg, sim::kDefaultMaxCycles,
        testOptions());
    EXPECT_NE(full_key, sampled_key);

    // Different sampling parameters are different estimates.
    sim::SampledOptions other = testOptions();
    other.intervalCycles *= 2;
    EXPECT_NE(sampled_key,
              sim::resultCacheKey(p, sim::CpuKind::kTwoPass, cfg,
                                  sim::kDefaultMaxCycles, other));

    // Normalization happens before keying: spelling the derived
    // defaults out changes nothing.
    EXPECT_EQ(sampled_key,
              sim::resultCacheKey(p, sim::CpuKind::kTwoPass, cfg,
                                  sim::kDefaultMaxCycles,
                                  testOptions().normalized()));
}

TEST(Sampled, CacheRoundTripPreservesTheEstimate)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "ffcache_sampled";
    fs::remove_all(dir);
    sim::setResultCacheDir(dir.string());
    sim::resetResultCacheStats();

    const workloads::Workload &w = workload();
    sim::SimJob job;
    job.program = &w.program;
    job.kind = sim::CpuKind::kTwoPass;
    job.cfg = sim::table1Config();
    job.sampled = testOptions();

    const sim::SimOutcome miss = sim::simulateCached(job);
    const sim::SimOutcome hit = sim::simulateCached(job);
    sim::setResultCacheDir("");
    fs::remove_all(dir);

    const sim::ResultCacheStats stats = sim::resultCacheStats();
    EXPECT_EQ(stats.hits, 1u);
    ASSERT_NE(miss.sampled, nullptr);
    ASSERT_NE(hit.sampled, nullptr);
    EXPECT_EQ(hit.run.cycles, miss.run.cycles);
    EXPECT_EQ(hit.cycles.counts, miss.cycles.counts);
    EXPECT_EQ(hit.sampled->ipcMean, miss.sampled->ipcMean);
    EXPECT_EQ(hit.sampled->ipcCi95, miss.sampled->ipcCi95);
    EXPECT_EQ(hit.sampled->estimatedCycles,
              miss.sampled->estimatedCycles);
    EXPECT_EQ(hit.sampled->spacing, miss.sampled->spacing);
    EXPECT_EQ(hit.sampled->prefixCycles, miss.sampled->prefixCycles);
    EXPECT_EQ(hit.sampled->prefixInsts, miss.sampled->prefixInsts);
    EXPECT_EQ(hit.sampled->totalInsts, miss.sampled->totalInsts);
}

TEST(Sampled, ThinningCapsCheckpointCountAndKeepsEntry)
{
    // A tiny maxIntervals forces geometric thinning: the plan must
    // respect the cap, keep the entry checkpoint (the exact-prefix
    // estimator needs it), and report the doubled spacing.
    const workloads::Workload &w = workload();
    sim::SampledOptions o = testOptions();
    o.maxIntervals = 4;
    const sim::SampledPlan plan =
        sim::sampledCheckpointPass(w.program, o);
    EXPECT_LE(plan.checkpoints.size(), 4u);
    ASSERT_FALSE(plan.checkpoints.empty());
    EXPECT_EQ(plan.checkpoints.front().instsBefore, 0u);
    EXPECT_GE(plan.spacing, o.intervalCycles);
    // Checkpoints stay sorted and inside their doubled strata.
    for (std::size_t i = 1; i < plan.checkpoints.size(); ++i) {
        EXPECT_GE(plan.checkpoints[i].instsBefore, i * plan.spacing);
        EXPECT_LT(plan.checkpoints[i].instsBefore,
                  (i + 1) * plan.spacing);
    }
}

} // namespace
