/** @file Unit tests for the experiment harness and machine configs. */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "isa/builder.hh"
#include "sim/harness.hh"
#include "sim/machine_config.hh"

namespace
{

using namespace ff;
using namespace ff::isa;

Program
tinyProgram()
{
    ProgramBuilder b("tiny");
    b.movi(intReg(1), 41);
    b.addi(intReg(2), intReg(1), 1);
    b.movi(intReg(3), 0x100);
    b.st8(intReg(3), 0, intReg(2));
    b.halt();
    return compiler::schedule(b.finalize());
}

TEST(Harness, CpuKindNames)
{
    EXPECT_STREQ(sim::cpuKindName(sim::CpuKind::kBaseline), "base");
    EXPECT_STREQ(sim::cpuKindName(sim::CpuKind::kTwoPass), "2P");
    EXPECT_STREQ(sim::cpuKindName(sim::CpuKind::kTwoPassRegroup),
                 "2Pre");
    EXPECT_STREQ(sim::cpuKindName(sim::CpuKind::kRunahead),
                 "runahead");
}

TEST(Harness, SimulateFillsOutcome)
{
    const Program p = tinyProgram();
    const sim::SimOutcome o = sim::simulate(p, sim::CpuKind::kTwoPass);
    EXPECT_TRUE(o.run.halted);
    EXPECT_GT(o.run.cycles, 0u);
    EXPECT_EQ(o.run.instsRetired, 5u);
    EXPECT_EQ(o.checksum, 42u);
    EXPECT_EQ(o.cycles.total(), o.run.cycles);
    EXPECT_NE(o.regFingerprint, 0u);
    EXPECT_NE(o.memFingerprint, 0u);
}

TEST(Harness, RegroupKindSetsRegroupFlag)
{
    // 2Pre must behave like 2P with cfg.regroup forced on, even when
    // the caller passes a config with it off.
    const Program p = tinyProgram();
    cpu::CoreConfig cfg = sim::table1Config();
    cfg.regroup = false;
    const sim::SimOutcome a =
        sim::simulate(p, sim::CpuKind::kTwoPassRegroup, cfg);
    cfg.regroup = true;
    const sim::SimOutcome b =
        sim::simulate(p, sim::CpuKind::kTwoPass, cfg);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
}

TEST(Harness, FunctionalOutcome)
{
    const Program p = tinyProgram();
    const sim::FunctionalOutcome f = sim::runFunctional(p);
    EXPECT_TRUE(f.result.halted);
    EXPECT_EQ(f.checksum, 42u);

    const sim::SimOutcome o = sim::simulate(p, sim::CpuKind::kBaseline);
    EXPECT_EQ(f.regFingerprint, o.regFingerprint);
    EXPECT_EQ(f.memFingerprint, o.memFingerprint);
}

TEST(Harness, TwoPassStatsOnlyForTwoPassKinds)
{
    const Program p = tinyProgram();
    const sim::SimOutcome base =
        sim::simulate(p, sim::CpuKind::kBaseline);
    EXPECT_EQ(base.twopass.dispatched, 0u);
    const sim::SimOutcome twop =
        sim::simulate(p, sim::CpuKind::kTwoPass);
    EXPECT_GT(twop.twopass.dispatched, 0u);
}

TEST(HarnessDeathTest, NonHaltingModelIsFatal)
{
    // A statically terminating loop (so it passes the load-time
    // verifier) whose trip count far exceeds the cycle budget.
    ProgramBuilder b("spin");
    b.movi(intReg(1), 1000000);
    b.label("l");
    b.subi(intReg(1), intReg(1), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(1), 0);
    b.br("l");
    b.pred(predReg(1));
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    EXPECT_EXIT(sim::simulate(p, sim::CpuKind::kBaseline,
                              sim::table1Config(), 500),
                ::testing::ExitedWithCode(1), "did not halt");
}

TEST(MachineConfig, Table1Defaults)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    EXPECT_EQ(cfg.limits.issueWidth, 8u);
    EXPECT_EQ(cfg.limits.aluUnits, 5u);
    EXPECT_EQ(cfg.limits.memUnits, 3u);
    EXPECT_EQ(cfg.limits.fpUnits, 3u);
    EXPECT_EQ(cfg.limits.branchUnits, 3u);
    EXPECT_EQ(cfg.mem.l1d.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.mem.l1d.latency, 2u);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(cfg.mem.l2.latency, 5u);
    EXPECT_EQ(cfg.mem.l3.sizeBytes, 1536u * 1024);
    EXPECT_EQ(cfg.mem.l3.latency, 15u);
    EXPECT_EQ(cfg.mem.memoryLatency, 145u);
    EXPECT_EQ(cfg.mem.maxOutstandingLoads, 16u);
    EXPECT_EQ(cfg.predictorEntries, 1024u);
    EXPECT_EQ(cfg.couplingQueueSize, 64u);
    EXPECT_EQ(cfg.alatCapacity, 0u); // perfect
}

TEST(MachineConfig, DescriptionMentionsTable1Rows)
{
    const std::string d = sim::describeConfig(sim::table1Config());
    EXPECT_NE(d.find("8-issue, 5 ALU, 3 Memory, 3 FP, 3 Branch"),
              std::string::npos);
    EXPECT_NE(d.find("145 cycles"), std::string::npos);
    EXPECT_NE(d.find("1024-entry gshare"), std::string::npos);
    EXPECT_NE(d.find("perfect"), std::string::npos);
    EXPECT_NE(d.find("64 entry"), std::string::npos);
}

TEST(MachineConfig, DescriptionTracksOverrides)
{
    cpu::CoreConfig cfg = sim::table1Config();
    cfg.alatCapacity = 32;
    cfg.feedbackEnabled = false;
    const std::string d = sim::describeConfig(cfg);
    EXPECT_NE(d.find("32 entries"), std::string::npos);
    EXPECT_NE(d.find("disabled (inf)"), std::string::npos);
}

} // namespace
