/**
 * @file
 * Tests of the parallel experiment engine: runBatch must return
 * outcomes in submission order and produce bit-identical results
 * regardless of the job count — the property that lets every bench
 * print the same tables at --jobs 1 and --jobs N.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;

constexpr int kScale = 6;

std::vector<sim::SimJob>
suiteJobs(const std::vector<workloads::Workload> &suite)
{
    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload &w : suite) {
        for (sim::CpuKind kind :
             {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
              sim::CpuKind::kTwoPassRegroup, sim::CpuKind::kRunahead}) {
            sim::SimJob j;
            j.program = &w.program;
            j.kind = kind;
            jobs.push_back(j);
        }
    }
    return jobs;
}

void
expectIdentical(const std::vector<sim::SimOutcome> &a,
                const std::vector<sim::SimOutcome> &b,
                const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(label + ", outcome " + std::to_string(i));
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].run.cycles, b[i].run.cycles);
        EXPECT_EQ(a[i].run.instsRetired, b[i].run.instsRetired);
        EXPECT_EQ(a[i].regFingerprint, b[i].regFingerprint);
        EXPECT_EQ(a[i].memFingerprint, b[i].memFingerprint);
        EXPECT_EQ(a[i].checksum, b[i].checksum);
        EXPECT_EQ(a[i].twopass.deferred, b[i].twopass.deferred);
        EXPECT_EQ(a[i].twopass.dispatched, b[i].twopass.dispatched);
        EXPECT_EQ(a[i].branches.mispredicts, b[i].branches.mispredicts);
    }
}

TEST(Batch, EmptyBatchReturnsEmpty)
{
    EXPECT_TRUE(sim::runBatch({}).empty());
    EXPECT_TRUE(sim::runBatch({}, 4).empty());
}

TEST(Batch, DeterministicAcrossJobCountsAndRepeats)
{
    // A couple of workloads x all four models, serially, on 4 jobs,
    // and again on 4 jobs: all three runs must agree bit for bit.
    std::vector<workloads::Workload> suite;
    suite.push_back(workloads::buildWorkload("181.mcf", kScale));
    suite.push_back(workloads::buildWorkload("129.compress", kScale));
    const std::vector<sim::SimJob> jobs = suiteJobs(suite);

    const auto serial = sim::runBatch(jobs, 1);
    const auto par = sim::runBatch(jobs, 4);
    const auto par2 = sim::runBatch(jobs, 4);
    expectIdentical(serial, par, "jobs=1 vs jobs=4");
    expectIdentical(par, par2, "jobs=4 repeat");
}

TEST(Batch, OutcomesArriveInSubmissionOrder)
{
    std::vector<workloads::Workload> suite;
    suite.push_back(workloads::buildWorkload("181.mcf", kScale));
    const std::vector<sim::SimJob> jobs = suiteJobs(suite);
    const auto outcomes = sim::runBatch(jobs, 4);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(outcomes[i].kind, jobs[i].kind) << "slot " << i;
}

TEST(Batch, SweepIsRowMajorAndMatchesDirectCalls)
{
    std::vector<workloads::Workload> suite;
    suite.push_back(workloads::buildWorkload("129.compress", kScale));
    suite.push_back(workloads::buildWorkload("130.li", kScale));

    cpu::CoreConfig nofb = sim::table1Config();
    nofb.feedbackEnabled = false;
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPass, nofb},
    };
    const auto grid = sim::runSweep(suite, variants, 4);
    ASSERT_EQ(grid.size(), suite.size() * variants.size());

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const sim::SimOutcome &got =
                grid[wi * variants.size() + vi];
            const sim::SimOutcome direct = sim::simulate(
                suite[wi].program, variants[vi].kind, variants[vi].cfg);
            EXPECT_EQ(got.kind, variants[vi].kind);
            EXPECT_EQ(got.run.cycles, direct.run.cycles)
                << suite[wi].name << " variant " << vi;
            EXPECT_EQ(got.checksum, direct.checksum);
        }
    }
}

TEST(Batch, FunctionalBatchMatchesDirectCalls)
{
    std::vector<workloads::Workload> suite;
    suite.push_back(workloads::buildWorkload("181.mcf", kScale));
    suite.push_back(workloads::buildWorkload("099.go", kScale));
    std::vector<const isa::Program *> programs;
    for (const auto &w : suite)
        programs.push_back(&w.program);

    const auto batch = sim::runFunctionalBatch(programs, 4);
    ASSERT_EQ(batch.size(), programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const sim::FunctionalOutcome direct =
            sim::runFunctional(*programs[i]);
        EXPECT_EQ(batch[i].checksum, direct.checksum);
        EXPECT_EQ(batch[i].result.instsExecuted,
                  direct.result.instsExecuted);
    }
}

TEST(Batch, BuildWorkloadsParallelMatchesSerialBuild)
{
    const std::vector<std::string> names = {"181.mcf", "129.compress",
                                            "183.equake"};
    const auto par = sim::buildWorkloadsParallel(
        names, kScale, workloads::InputSet::kDefault, 4);
    ASSERT_EQ(par.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        const workloads::Workload direct =
            workloads::buildWorkload(names[i], kScale);
        EXPECT_EQ(par[i].name, direct.name);
        EXPECT_EQ(par[i].program.size(), direct.program.size());
        EXPECT_EQ(par[i].program.instStreamHash(),
                  direct.program.instStreamHash());
    }
}

TEST(Batch, ResolveJobsPrefersOverrideThenDefault)
{
    EXPECT_EQ(sim::resolveJobs(7), 7u);
    sim::setJobs(3);
    EXPECT_EQ(sim::resolveJobs(0), 3u);
    EXPECT_EQ(sim::resolveJobs(2), 2u);
    sim::setJobs(0);
    EXPECT_GE(sim::resolveJobs(0), 1u);
}

TEST(Batch, ParseJobsFlagStripsArguments)
{
    const char *argv_in[] = {"bench", "--jobs", "5", "25", "alt",
                             nullptr};
    char *argv[6];
    for (int i = 0; i < 5; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[5] = nullptr;
    int argc = 5;
    EXPECT_EQ(sim::parseJobsFlag(argc, argv), 5u);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "25");
    EXPECT_STREQ(argv[2], "alt");
    EXPECT_EQ(sim::resolveJobs(0), 5u);
    sim::setJobs(0);
}

TEST(Batch, ParseJobsFlagHandlesEqualsForm)
{
    const char *argv_in[] = {"bench", "--jobs=2", nullptr};
    char *argv[3];
    for (int i = 0; i < 2; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[2] = nullptr;
    int argc = 2;
    EXPECT_EQ(sim::parseJobsFlag(argc, argv), 2u);
    EXPECT_EQ(argc, 1);
    sim::setJobs(0);
}

/**
 * Metrics collection composes with the parallel engine: every job of
 * a metered parallel batch carries its own MetricsRecord (observers
 * are per-job, nothing shared across workers), and the aggregate
 * outcome fields stay bit-identical to an unmetered serial run —
 * the bench_fig6 guarantee with profiling left on.
 */
TEST(Batch, MetricsRecordsArePerJobAndResultsUnchanged)
{
    std::vector<workloads::Workload> suite;
    suite.push_back(workloads::buildWorkload("181.mcf", kScale));
    suite.push_back(workloads::buildWorkload("130.li", kScale));

    std::vector<sim::SimJob> plain = suiteJobs(suite);
    std::vector<sim::SimJob> metered = plain;
    for (sim::SimJob &j : metered) {
        j.metrics.profile = true;
        j.metrics.telemetry = true;
    }

    const auto serial = sim::runBatch(plain, 1);
    const auto par = sim::runBatch(metered, 4);
    expectIdentical(serial, par, "unmetered jobs=1 vs metered jobs=4");

    for (std::size_t i = 0; i < par.size(); ++i) {
        ASSERT_NE(par[i].metrics, nullptr) << "slot " << i;
        EXPECT_EQ(serial[i].metrics, nullptr) << "slot " << i;
        std::uint64_t attributed = 0;
        for (const auto &row : par[i].metrics->profile)
            attributed += row.prof.totalCycles();
        for (std::uint64_t c : par[i].metrics->unattributed)
            attributed += c;
        EXPECT_EQ(attributed, par[i].run.cycles) << "slot " << i;
    }
}

TEST(Batch, ParseJobsFlagAbsentLeavesArgsAlone)
{
    const char *argv_in[] = {"bench", "25", nullptr};
    char *argv[3];
    for (int i = 0; i < 2; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[2] = nullptr;
    int argc = 2;
    EXPECT_EQ(sim::parseJobsFlag(argc, argv), 0u);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "25");
}

} // namespace
