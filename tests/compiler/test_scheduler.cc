/** @file Unit tests for the issue-group-forming list scheduler. */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::isa;
using namespace ff::compiler;

TEST(BlockLeaders, EntryBranchTargetsAndFallthroughs)
{
    ProgramBuilder b("blocks");
    b.movi(intReg(1), 0);      // 0
    b.label("loop");           // 1 is a target
    b.addi(intReg(1), intReg(1), 1);
    b.cmpi(CmpCond::kLt, predReg(1), predReg(2), intReg(1), 3);
    b.br("loop");              // 3; fallthrough leader at 4
    b.pred(predReg(1));
    b.halt();                  // 4
    Program p = b.finalize();

    const std::vector<InstIdx> leaders = findBlockLeaders(p);
    EXPECT_EQ(leaders, (std::vector<InstIdx>{0, 1, 4}));
}

TEST(Scheduler, PacksIndependentInstructions)
{
    ProgramBuilder b("pack");
    for (unsigned i = 1; i <= 4; ++i)
        b.movi(intReg(i), i);
    b.halt();
    Program scheduled = schedule(b.finalize());
    // Four independent movis must land in the first group (the halt
    // joins it too, sep-0).
    EXPECT_GE(scheduled.groupEnd(0), 4u);
}

TEST(Scheduler, SeparatesDependentInstructions)
{
    ProgramBuilder b("dep");
    b.movi(intReg(1), 1);
    b.addi(intReg(2), intReg(1), 1);
    b.addi(intReg(3), intReg(2), 1);
    b.halt();
    Program s = schedule(b.finalize());
    // The chain cannot share groups: each add is in a later group.
    InstIdx movi_pos = 0, add1_pos = 0, add2_pos = 0;
    for (InstIdx i = 0; i < s.size(); ++i) {
        if (s.inst(i).op == Opcode::kMovi && s.inst(i).dst == intReg(1))
            movi_pos = i;
        if (s.inst(i).dst == intReg(2))
            add1_pos = i;
        if (s.inst(i).dst == intReg(3))
            add2_pos = i;
    }
    EXPECT_LT(s.groupStart(movi_pos), s.groupStart(add1_pos));
    EXPECT_LT(s.groupStart(add1_pos), s.groupStart(add2_pos));
}

TEST(Scheduler, RespectsResourceWidths)
{
    ProgramBuilder b("width");
    for (unsigned i = 1; i <= 12; ++i)
        b.movi(intReg(i), i);
    b.halt();
    GroupLimits limits;
    Program s = schedule(b.finalize(), SchedulerConfig{limits, {}});
    EXPECT_EQ(s.validate(limits), "");
    // No group may hold more than 5 ALU operations.
    for (InstIdx leader = 0; leader < s.size();
         leader = s.groupEnd(leader)) {
        unsigned alu = 0;
        for (InstIdx i = leader; i < s.groupEnd(leader); ++i) {
            if (s.inst(i).unit() == UnitClass::kAlu)
                ++alu;
        }
        EXPECT_LE(alu, 5u);
    }
}

TEST(Scheduler, BranchStaysGroupFinalAndTargetsRemap)
{
    ProgramBuilder b("br");
    b.movi(intReg(1), 0);
    b.movi(intReg(9), 100);
    b.label("loop");
    b.addi(intReg(1), intReg(1), 1);
    b.cmpi(CmpCond::kLt, predReg(1), predReg(2), intReg(1), 5);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program s = schedule(b.finalize());
    EXPECT_EQ(s.validate(), "");

    for (InstIdx i = 0; i < s.size(); ++i) {
        if (s.inst(i).isBranch()) {
            EXPECT_TRUE(s.inst(i).stop);
            EXPECT_TRUE(s.isGroupLeader(
                static_cast<InstIdx>(s.inst(i).imm)));
        }
    }
}

TEST(Scheduler, NeverMovesInstructionsAcrossBlocks)
{
    ProgramBuilder b("cross");
    b.movi(intReg(1), 0);
    b.label("second");
    b.movi(intReg(2), 2);
    b.halt();
    // Force "second" to be a leader by branching to it.
    ProgramBuilder b2("cross2");
    b2.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(9), 0);
    b2.br("skip");
    b2.pred(predReg(1));
    b2.movi(intReg(1), 1);
    b2.label("skip");
    b2.movi(intReg(2), 2);
    b2.halt();
    Program s = schedule(b2.finalize());
    EXPECT_EQ(s.validate(), "");
    // The movi r2 (block "skip") may not share a group with movi r1.
    InstIdx r1 = 0, r2 = 0;
    for (InstIdx i = 0; i < s.size(); ++i) {
        if (s.inst(i).op == Opcode::kMovi && s.inst(i).dst == intReg(1))
            r1 = i;
        if (s.inst(i).op == Opcode::kMovi && s.inst(i).dst == intReg(2))
            r2 = i;
    }
    EXPECT_NE(s.groupStart(r1), s.groupStart(r2));
}

TEST(Scheduler, PreservesSemantics)
{
    // A program with predication, memory traffic and a loop; the
    // scheduled version must compute the same final state.
    ProgramBuilder b("sem");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 10);
    b.movi(intReg(3), 0);
    b.label("loop");
    b.ld8(intReg(4), intReg(1), 0);
    b.add(intReg(3), intReg(3), intReg(4));
    b.andi(intReg(5), intReg(3), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(5), 1);
    b.st8(intReg(1), 8, intReg(3));
    b.pred(predReg(3));
    b.addi(intReg(1), intReg(1), 16);
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i < 16; ++i)
        seq.poke64(0x1000 + i * 16, i * 3 + 1);

    Program sched = schedule(seq);
    ASSERT_LT(sched.size(), seq.size() + 1); // same instruction count
    EXPECT_EQ(sched.size(), seq.size());

    cpu::FunctionalCpu a(seq), c(sched);
    auto ra = a.run();
    auto rc = c.run();
    EXPECT_TRUE(ra.halted);
    EXPECT_TRUE(rc.halted);
    EXPECT_EQ(ra.instsExecuted, rc.instsExecuted);
    EXPECT_EQ(a.regs().fingerprint(), c.regs().fingerprint());
    EXPECT_EQ(a.mem().fingerprint(), c.mem().fingerprint());
}

TEST(Scheduler, CarriesDataImage)
{
    ProgramBuilder b("img");
    b.movi(intReg(1), 1);
    b.halt();
    Program seq = b.finalize();
    seq.poke64(0x5000, 0xDEADBEEF);
    Program s = schedule(seq);
    EXPECT_EQ(s.dataImage().read(0x5000), 0xEF);
}

TEST(Scheduler, EmptyCyclesAreElided)
{
    // An FDIV (16 cycles) followed by its consumer: the schedule
    // orders them in consecutive groups (gaps are not padded with
    // nops; the hardware scoreboard provides the wait).
    ProgramBuilder b("gap");
    b.fdiv(fpReg(1), fpReg(2), fpReg(3));
    b.fadd(fpReg(4), fpReg(1), fpReg(2));
    b.halt();
    Program s = schedule(b.finalize());
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.validate(), "");
}

} // namespace
