/** @file Unit tests for basic-block dependence analysis. */

#include <gtest/gtest.h>

#include "compiler/depgraph.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff::isa;
using namespace ff::compiler;

/** Builds instructions via the builder and wraps a DepGraph. */
DepGraph
graphOf(const std::vector<Instruction> &insts,
        const SchedLatencies &lat = SchedLatencies())
{
    return DepGraph(insts, 0, static_cast<std::uint32_t>(insts.size()),
                    lat);
}

std::vector<Instruction>
instsOf(ProgramBuilder &b)
{
    return b.finalize().insts();
}

/** Finds the edge a->b and returns its separation; -1 if absent. */
int
sep(const DepGraph &g, std::uint32_t from, std::uint32_t to)
{
    for (const DepEdge &e : g.edges()) {
        if (e.from == from && e.to == to)
            return static_cast<int>(e.minSep);
    }
    return -1;
}

TEST(DepGraph, RawEdgeCarriesProducerLatency)
{
    ProgramBuilder b("raw");
    b.mul(intReg(1), intReg(2), intReg(3)); // 3-cycle MUL
    b.addi(intReg(4), intReg(1), 1);        // consumer
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), 3);
}

TEST(DepGraph, LoadConsumerUsesAssumedLoadLatency)
{
    ProgramBuilder b("ld");
    b.ld8(intReg(1), intReg(2), 0);
    b.addi(intReg(3), intReg(1), 1);
    b.halt();
    SchedLatencies lat;
    lat.loadLatency = 2;
    DepGraph g = graphOf(instsOf(b), lat);
    EXPECT_EQ(sep(g, 0, 1), 2);
}

TEST(DepGraph, WawEdgeIsOneCycle)
{
    ProgramBuilder b("waw");
    b.movi(intReg(1), 1);
    b.movi(intReg(1), 2);
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), 1);
}

TEST(DepGraph, WarEdgeIsZeroCycles)
{
    ProgramBuilder b("war");
    b.addi(intReg(2), intReg(1), 0); // read r1
    b.movi(intReg(1), 9);            // later write to r1
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), 0);
}

TEST(DepGraph, HardwiredRegistersCarryNoDependences)
{
    ProgramBuilder b("hw");
    b.addi(intReg(1), intReg(0), 1); // reads r0
    b.addi(intReg(2), intReg(0), 2); // reads r0 again
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), -1);
}

TEST(DepGraph, QpredIsADependence)
{
    ProgramBuilder b("qp");
    b.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(3), 0);
    b.movi(intReg(4), 7);
    b.pred(predReg(1));
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), 1);
}

TEST(DepGraph, StoresOrderBehindAllMemoryOps)
{
    ProgramBuilder b("mem");
    b.ld8(intReg(1), intReg(9), 0);
    b.st8(intReg(9), 8, intReg(2));
    b.st8(intReg(9), 16, intReg(3));
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), 1); // load -> store
    EXPECT_EQ(sep(g, 1, 2), 1); // store -> store
}

TEST(DepGraph, LoadsOrderBehindStoresOnly)
{
    ProgramBuilder b("ld2");
    b.ld8(intReg(1), intReg(9), 0);
    b.ld8(intReg(2), intReg(9), 8); // two loads may share a group
    b.st8(intReg(9), 16, intReg(3));
    b.ld8(intReg(4), intReg(9), 24); // behind the store
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 1), -1);
    EXPECT_EQ(sep(g, 2, 3), 1);
}

TEST(DepGraph, EverythingPrecedesBlockTerminator)
{
    ProgramBuilder b("term");
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(sep(g, 0, 2), 0);
    EXPECT_EQ(sep(g, 1, 2), 0);
}

TEST(DepGraph, HeightsFollowCriticalPath)
{
    ProgramBuilder b("h");
    b.mul(intReg(1), intReg(2), intReg(3)); // 3 cycles
    b.addi(intReg(4), intReg(1), 1);        // +1
    b.movi(intReg(5), 9);                   // independent
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    // inst0 -> inst1 (sep 3) -> halt (sep 0); height(0) >= 3.
    EXPECT_GE(g.height(0), 3u);
    EXPECT_GT(g.height(0), g.height(1));
    EXPECT_EQ(g.height(3), 0u); // the halt is the sink
}

TEST(DepGraph, InDegreeCountsIncomingEdges)
{
    ProgramBuilder b("deg");
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.add(intReg(3), intReg(1), intReg(2));
    b.halt();
    DepGraph g = graphOf(instsOf(b));
    EXPECT_EQ(g.inDegree(0), 0u);
    EXPECT_EQ(g.inDegree(2), 2u);
}

} // namespace
