/**
 * @file
 * Unit tests for the alias-oracle hook in the dependence graph and
 * scheduler: a null oracle must reproduce the legacy conservative
 * edge set bit for bit, and a pruning oracle must only ever *remove*
 * memory-ordering constraints.
 */

#include <gtest/gtest.h>

#include "compiler/depgraph.hh"
#include "compiler/scheduler.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using compiler::AliasOracle;
using compiler::AliasResult;
using compiler::DepGraph;
using compiler::DepKind;
using compiler::SchedLatencies;

/** Oracle stub answering from a fixed verdict. */
class FixedOracle : public AliasOracle
{
  public:
    explicit FixedOracle(AliasResult r) : _r(r) {}

    AliasResult
    alias(InstIdx, InstIdx) const override
    {
        return _r;
    }

  private:
    AliasResult _r;
};

unsigned
memOrderEdges(const DepGraph &g)
{
    unsigned n = 0;
    for (const compiler::DepEdge &e : g.edges())
        n += e.kind == DepKind::kMemOrder ? 1 : 0;
    return n;
}

isa::Program
memProg()
{
    // st, ld, st, ld in one straight-line block.
    return isa::sequentialize(
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "st8 [r1] = r9\n"
                           "ld8 r2 = [r1+8]\n"
                           "st8 [r1+16] = r9\n"
                           "ld8 r3 = [r1+24]\n"
                           "halt\n",
                           "mp"));
}

TEST(DepGraphAlias, MayAliasOracleKeepsEveryStorePairOrdered)
{
    const isa::Program p = memProg();
    const SchedLatencies lat;
    const DepGraph plain(p.insts(), 0, p.size(), lat, nullptr);
    const FixedOracle may(AliasResult::kMayAlias);
    const DepGraph kept(p.insts(), 0, p.size(), lat, &may);

    // The legacy chain relies on transitivity; the pairwise oracle
    // path must cover at least those constraints (possibly more
    // edges, never fewer ordered pairs). With four memory ops and
    // no pruning every store-involving pair is ordered: 5 pairs.
    EXPECT_GE(memOrderEdges(kept), memOrderEdges(plain));
    EXPECT_EQ(memOrderEdges(kept), 5u);
}

TEST(DepGraphAlias, MustNotAliasOracleDropsAllMemoryOrdering)
{
    const isa::Program p = memProg();
    const SchedLatencies lat;
    const FixedOracle disjoint(AliasResult::kMustNotAlias);
    const DepGraph pruned(p.insts(), 0, p.size(), lat, &disjoint);
    EXPECT_EQ(memOrderEdges(pruned), 0u);
}

TEST(DepGraphAlias, LoadsNeverOrderAgainstLoads)
{
    const isa::Program p = isa::sequentialize(
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "ld8 r2 = [r1]\n"
                           "ld8 r3 = [r1]\n"
                           "halt\n",
                           "ll"));
    const SchedLatencies lat;
    const FixedOracle may(AliasResult::kMayAlias);
    const DepGraph g(p.insts(), 0, p.size(), lat, &may);
    EXPECT_EQ(memOrderEdges(g), 0u);
}

TEST(SchedulerAlias, NullOracleIsBitIdenticalToTheDefault)
{
    const isa::Program seq = memProg();
    const isa::Program base = compiler::schedule(seq);

    compiler::SchedulerConfig cfg;
    cfg.alias = nullptr;
    const isa::Program same = compiler::schedule(seq, cfg);
    EXPECT_EQ(base.instStreamHash(), same.instStreamHash());
}

TEST(SchedulerAlias, MayAliasOracleScheduleStaysLegal)
{
    const isa::Program seq = memProg();
    const FixedOracle may(AliasResult::kMayAlias);
    compiler::SchedulerConfig cfg;
    cfg.alias = &may;
    const isa::Program out = compiler::schedule(seq, cfg);
    EXPECT_TRUE(out.validate().empty()) << out.validate();
    // Semantics of the sequential program are preserved: the store
    // to [r1] still precedes (or shares no group with) the loads.
    EXPECT_EQ(out.size(), seq.size());
}

} // namespace
} // namespace ff
