/** @file Unit tests for the timed memory hierarchy. */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace
{

using namespace ff;
using namespace ff::memory;

AccessResult
load(Hierarchy &h, Addr a, Cycle now,
     Initiator who = Initiator::kBaseline)
{
    h.tick(now);
    return h.access(AccessKind::kLoad, who, a, now);
}

TEST(Hierarchy, ColdLoadGoesToMemory)
{
    Hierarchy h((MemoryConfig()));
    const AccessResult r = load(h, 0x1000, 0);
    EXPECT_EQ(r.level, MemLevel::kMemory);
    EXPECT_EQ(r.latency, 145u);
}

TEST(Hierarchy, FillArrivesAtCompletionCycle)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0); // completes at 145
    // Before the fill, a re-access merges into the in-flight miss.
    const AccessResult early = load(h, 0x1000, 100);
    EXPECT_TRUE(early.mergedInFlight);
    EXPECT_EQ(early.latency, 45u);
    // After the fill, it is an L1 hit.
    const AccessResult late = load(h, 0x1000, 150);
    EXPECT_EQ(late.level, MemLevel::kL1);
    EXPECT_EQ(late.latency, 2u);
}

TEST(Hierarchy, MergedAccessNeverFasterThanL1)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0);
    const AccessResult r = load(h, 0x1000, 144);
    EXPECT_TRUE(r.mergedInFlight);
    EXPECT_EQ(r.latency, 2u); // max(l1, remaining)
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryConfig cfg;
    Hierarchy h(cfg);
    load(h, 0x0, 0);
    h.tick(200);
    // Evict line 0 from the 4-way L1 by filling its set: same set
    // every 16KB/4 = 4096 bytes... walk addresses mapping to set 0.
    const Addr set_stride = cfg.l1d.sizeBytes / cfg.l1d.assoc;
    for (int w = 1; w <= 4; ++w)
        load(h, static_cast<Addr>(w) * set_stride, 200 + w);
    h.tick(600);
    const AccessResult r = load(h, 0x0, 600);
    // Line 0 left the L1 but remains in the bigger L2.
    EXPECT_EQ(r.level, MemLevel::kL2);
    EXPECT_EQ(r.latency, 5u);
}

TEST(Hierarchy, DistinctLinesMissIndependently)
{
    Hierarchy h((MemoryConfig()));
    const AccessResult a = load(h, 0x0000, 0);
    const AccessResult b = load(h, 0x4000, 0);
    EXPECT_EQ(a.level, MemLevel::kMemory);
    EXPECT_EQ(b.level, MemLevel::kMemory);
    EXPECT_FALSE(b.mergedInFlight);
}

TEST(Hierarchy, MshrOccupancyAndExpiry)
{
    MemoryConfig cfg;
    cfg.maxOutstandingLoads = 2;
    Hierarchy h(cfg);
    load(h, 0x0000, 0);
    load(h, 0x4000, 0);
    EXPECT_EQ(h.outstandingLoads(0), 2u);
    EXPECT_FALSE(h.loadSlotAvailable(0));
    // After completion they expire.
    h.tick(146);
    EXPECT_EQ(h.outstandingLoads(146), 0u);
    EXPECT_TRUE(h.loadSlotAvailable(146));
}

TEST(Hierarchy, L1HitsDoNotTakeMshrs)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0);
    h.tick(200);
    const unsigned before = h.outstandingLoads(200);
    load(h, 0x1000, 200); // L1 hit
    EXPECT_EQ(h.outstandingLoads(200), before);
}

TEST(Hierarchy, MergedLoadsDoNotTakeNewMshrs)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0);
    load(h, 0x1008, 1); // same line, merged
    EXPECT_EQ(h.outstandingLoads(1), 1u);
}

TEST(Hierarchy, StoresAllocateDirtyLines)
{
    Hierarchy h((MemoryConfig()));
    h.tick(0);
    h.access(AccessKind::kStore, Initiator::kBaseline, 0x2000, 0);
    EXPECT_EQ(h.outstandingLoads(0), 0u); // stores take no MSHR
    h.tick(200);
    EXPECT_TRUE(h.l1d().contains(0x2000));
}

TEST(Hierarchy, InstAndDataSidesAreSeparate)
{
    Hierarchy h((MemoryConfig()));
    h.tick(0);
    h.access(AccessKind::kInstFetch, Initiator::kBaseline, 0x3000, 0);
    h.tick(200);
    EXPECT_TRUE(h.l1i().contains(0x3000));
    EXPECT_FALSE(h.l1d().contains(0x3000));
    // But the L2 is unified: a data access to the same line hits it.
    const AccessResult r = load(h, 0x3000, 200);
    EXPECT_EQ(r.level, MemLevel::kL2);
}

TEST(Hierarchy, AccessStatsByInitiatorAndLevel)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0, Initiator::kApipe);
    h.tick(200);
    load(h, 0x1000, 200, Initiator::kBpipe);

    const AccessStats &s = h.accessStats();
    const auto apipe = static_cast<unsigned>(Initiator::kApipe);
    const auto bpipe = static_cast<unsigned>(Initiator::kBpipe);
    const auto mem = static_cast<unsigned>(MemLevel::kMemory);
    const auto l1 = static_cast<unsigned>(MemLevel::kL1);
    EXPECT_EQ(s.counts[apipe][mem], 1u);
    EXPECT_EQ(s.weightedCycles[apipe][mem], 145u);
    EXPECT_EQ(s.counts[bpipe][l1], 1u);
    EXPECT_EQ(s.weightedCycles[bpipe][l1], 2u);
}

TEST(Hierarchy, InstFetchesRecordedSeparately)
{
    Hierarchy h((MemoryConfig()));
    h.tick(0);
    h.access(AccessKind::kInstFetch, Initiator::kApipe, 0x100, 0);
    const auto apipe = static_cast<unsigned>(Initiator::kApipe);
    const auto mem = static_cast<unsigned>(MemLevel::kMemory);
    EXPECT_EQ(h.accessStats().counts[apipe][mem], 0u);
    EXPECT_EQ(h.instAccessStats().counts[apipe][mem], 1u);
}

TEST(Hierarchy, ResetClearsEverything)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0);
    h.reset();
    EXPECT_EQ(h.outstandingLoads(0), 0u);
    EXPECT_FALSE(h.l1d().contains(0x1000));
    const AccessResult r = load(h, 0x1000, 0);
    EXPECT_EQ(r.level, MemLevel::kMemory);
}

TEST(Hierarchy, PrefetchDisabledByDefault)
{
    Hierarchy h((MemoryConfig()));
    load(h, 0x1000, 0);
    EXPECT_EQ(h.prefetchesIssued(), 0u);
}

TEST(Hierarchy, NextLinePrefetchWarmsFollowingLines)
{
    MemoryConfig cfg;
    cfg.prefetchDegree = 2;
    Hierarchy h(cfg);
    load(h, 0x1000, 0); // demand miss prefetches 0x1040, 0x1080
    EXPECT_EQ(h.prefetchesIssued(), 2u);
    h.tick(200);
    EXPECT_TRUE(h.l1d().contains(0x1040));
    EXPECT_TRUE(h.l1d().contains(0x1080));
    EXPECT_FALSE(h.l1d().contains(0x10C0)); // beyond the degree
    const AccessResult r = load(h, 0x1040, 200);
    EXPECT_EQ(r.level, MemLevel::kL1);
}

TEST(Hierarchy, PrefetchSkipsPresentAndInFlightLines)
{
    MemoryConfig cfg;
    cfg.prefetchDegree = 1;
    Hierarchy h(cfg);
    load(h, 0x1000, 0); // prefetches 0x1040
    const auto after_first = h.prefetchesIssued();
    load(h, 0x1040, 1); // merges into the in-flight prefetch...
    EXPECT_EQ(h.prefetchesIssued(), after_first);
    h.tick(300);
    load(h, 0x2000, 300);
    EXPECT_EQ(h.prefetchesIssued(), after_first + 1);
}

TEST(Hierarchy, PrefetchesTakeNoMshrs)
{
    MemoryConfig cfg;
    cfg.prefetchDegree = 4;
    cfg.maxOutstandingLoads = 2;
    Hierarchy h(cfg);
    load(h, 0x1000, 0);
    EXPECT_EQ(h.outstandingLoads(0), 1u); // the demand miss only
}

TEST(Hierarchy, MemLevelNames)
{
    EXPECT_STREQ(memLevelName(MemLevel::kL1), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::kL2), "L2");
    EXPECT_STREQ(memLevelName(MemLevel::kL3), "L3");
    EXPECT_STREQ(memLevelName(MemLevel::kMemory), "Mem");
}

} // namespace
