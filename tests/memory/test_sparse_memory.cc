/** @file Unit tests for the sparse memory model. */

#include <gtest/gtest.h>

#include "memory/sparse_memory.hh"

namespace
{

using ff::Addr;
using ff::memory::SparseMemory;

TEST(SparseMemory, UntouchedReadsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.readByte(0), 0);
    EXPECT_EQ(m.read64(0xDEADBEEF000), 0u);
    EXPECT_EQ(m.touchedPages(), 0u);
}

TEST(SparseMemory, ByteRoundTrip)
{
    SparseMemory m;
    m.writeByte(5, 0xAB);
    EXPECT_EQ(m.readByte(5), 0xAB);
    EXPECT_EQ(m.readByte(4), 0);
    EXPECT_EQ(m.readByte(6), 0);
}

TEST(SparseMemory, LittleEndianMultiByte)
{
    SparseMemory m;
    m.write64(0x100, 0x1122334455667788ULL);
    EXPECT_EQ(m.readByte(0x100), 0x88);
    EXPECT_EQ(m.readByte(0x107), 0x11);
    EXPECT_EQ(m.read32(0x100), 0x55667788u);
    EXPECT_EQ(m.read(0x102, 2), 0x5566u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory m;
    const Addr a = SparseMemory::kPageBytes - 3;
    m.write64(a, 0x0807060504030201ULL);
    EXPECT_EQ(m.read64(a), 0x0807060504030201ULL);
    EXPECT_EQ(m.touchedPages(), 2u);
}

TEST(SparseMemory, PartialOverwrite)
{
    SparseMemory m;
    m.write64(0x10, ~0ULL);
    m.write32(0x12, 0);
    EXPECT_EQ(m.read64(0x10), 0xFFFF00000000FFFFULL);
}

TEST(SparseMemory, FingerprintDistinguishesContent)
{
    SparseMemory a, b;
    a.write64(0x100, 1);
    b.write64(0x100, 2);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b.write64(0x100, 1);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(SparseMemory, FingerprintIgnoresZeroPages)
{
    SparseMemory a, b;
    a.write64(0x100, 7);
    b.write64(0x100, 7);
    // Touch (but zero) an extra page in b only.
    b.writeByte(0x900000, 1);
    b.writeByte(0x900000, 0);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(SparseMemory, FingerprintIsAddressSensitive)
{
    SparseMemory a, b;
    a.write64(0x0000, 7);
    b.write64(0x9000, 7); // different page
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(SparseMemory, LoadPages)
{
    std::map<Addr, std::vector<std::uint8_t>> pages;
    pages[0] = std::vector<std::uint8_t>(SparseMemory::kPageBytes, 0);
    pages[0][10] = 0x5A;
    SparseMemory m;
    m.loadPages(pages);
    EXPECT_EQ(m.readByte(10), 0x5A);
    EXPECT_EQ(m.readByte(11), 0);
}

TEST(SparseMemoryDeathTest, OversizedAccessPanics)
{
    SparseMemory m;
    EXPECT_DEATH(m.read(0, 9), "oversized");
    EXPECT_DEATH(m.write(0, 0, 16), "oversized");
}

} // namespace
