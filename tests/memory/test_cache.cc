/** @file Unit tests for the set-associative tag store. */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace
{

using ff::Addr;
using ff::memory::Cache;
using ff::memory::CacheGeometry;
using ff::memory::Eviction;

// Tiny cache for precise control: 4 sets x 2 ways x 64B = 512B.
CacheGeometry
tinyGeom()
{
    return {512, 2, 64, 2};
}

TEST(Cache, MissThenHitAfterInsert)
{
    Cache c("t", tinyGeom());
    EXPECT_FALSE(c.access(0x1000, false));
    c.insert(0x1000, false);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineGranularity)
{
    Cache c("t", tinyGeom());
    c.insert(0x1000, false);
    EXPECT_TRUE(c.access(0x103F, false));  // same 64B line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
}

TEST(Cache, LruEviction)
{
    Cache c("t", tinyGeom());
    // Set index = (addr/64) % 4. These three all map to set 0.
    const Addr a = 0 * 256, b = 1 * 256, d = 2 * 256;
    c.insert(a, false);
    c.insert(b, false);
    c.access(a, false); // a is now MRU
    Eviction ev = c.insert(d, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, b); // b was LRU
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c("t", tinyGeom());
    c.insert(0 * 256, true); // dirty
    c.insert(1 * 256, false);
    Eviction ev = c.insert(2 * 256, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(c.writebacks(), 1u);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, StoreHitDirtiesLine)
{
    Cache c("t", tinyGeom());
    c.insert(0 * 256, false);
    c.access(0 * 256, true); // store hit
    c.insert(1 * 256, false);
    Eviction ev = c.insert(2 * 256, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, ReinsertRefreshesInsteadOfEvicting)
{
    Cache c("t", tinyGeom());
    c.insert(0x1000, false);
    Eviction ev = c.insert(0x1000, true);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(c.contains(0x1000));
}

TEST(Cache, ContainsDoesNotTouchLru)
{
    Cache c("t", tinyGeom());
    c.insert(0 * 256, false);
    c.insert(1 * 256, false);
    // contains() must not promote line 0 to MRU...
    EXPECT_TRUE(c.contains(0 * 256));
    Eviction ev = c.insert(2 * 256, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u); // ...so line 0 is still the LRU victim
}

TEST(Cache, Invalidate)
{
    Cache c("t", tinyGeom());
    c.insert(0x1000, false);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.contains(0x1000));
    c.invalidate(0x2000); // no-op on absent lines
}

TEST(Cache, SetsAreIndependent)
{
    Cache c("t", tinyGeom());
    // Four consecutive lines land in four different sets.
    for (Addr a = 0; a < 4 * 64; a += 64)
        c.insert(a, false);
    for (Addr a = 0; a < 4 * 64; a += 64)
        EXPECT_TRUE(c.contains(a));
}

TEST(Cache, Reset)
{
    Cache c("t", tinyGeom());
    c.insert(0x1000, false);
    c.access(0x1000, false);
    c.reset();
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, Table1Geometries)
{
    // The real configurations must construct cleanly.
    Cache l1("l1", {16 * 1024, 4, 64, 2});
    Cache l2("l2", {256 * 1024, 8, 128, 5});
    Cache l3("l3", {3 * 512 * 1024, 12, 128, 15});
    EXPECT_FALSE(l3.access(0x100, false));
    l3.insert(0x100, false);
    EXPECT_TRUE(l3.access(0x100, false));
}

TEST(CacheDeathTest, BadGeometryIsFatal)
{
    EXPECT_EXIT(Cache("bad", {512, 2, 48, 1}),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(Cache("bad", {512, 0, 64, 1}),
                ::testing::ExitedWithCode(1), "associativity");
    EXPECT_EXIT(Cache("bad", {500, 2, 64, 1}),
                ::testing::ExitedWithCode(1), "divisible");
}

} // namespace
