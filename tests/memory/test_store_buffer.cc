/** @file Unit tests for the speculative store buffer. */

#include <gtest/gtest.h>

#include "memory/store_buffer.hh"

namespace
{

using namespace ff;
using namespace ff::memory;

TEST(StoreBuffer, CapacityTracking)
{
    StoreBuffer sb(2);
    EXPECT_TRUE(sb.empty());
    sb.insert(1, 0x100, 8, 1);
    EXPECT_FALSE(sb.full());
    sb.insert(2, 0x108, 8, 2);
    EXPECT_TRUE(sb.full());
    EXPECT_EQ(sb.size(), 2u);
}

TEST(StoreBuffer, ForwardFullContainment)
{
    StoreBuffer sb(8);
    SparseMemory mem;
    sb.insert(1, 0x100, 8, 0xAABBCCDDEEFF0011ULL);
    bool fwd = false;
    EXPECT_EQ(sb.read(5, 0x100, 8, mem, &fwd),
              0xAABBCCDDEEFF0011ULL);
    EXPECT_TRUE(fwd);
}

TEST(StoreBuffer, ForwardSubsetOfStore)
{
    StoreBuffer sb(8);
    SparseMemory mem;
    sb.insert(1, 0x100, 8, 0x1122334455667788ULL);
    // A 4-byte load from the middle of the stored range.
    EXPECT_EQ(sb.read(5, 0x102, 4, mem, nullptr), 0x33445566u);
}

TEST(StoreBuffer, ComposesMultipleStoresAndMemory)
{
    StoreBuffer sb(8);
    SparseMemory mem;
    mem.write64(0x100, 0xFFFFFFFFFFFFFFFFULL);
    sb.insert(1, 0x100, 4, 0x44332211);
    sb.insert(2, 0x104, 2, 0x6655);
    // 8-byte load: bytes 0-3 from store 1, 4-5 from store 2,
    // 6-7 from memory.
    EXPECT_EQ(sb.read(9, 0x100, 8, mem, nullptr),
              0xFFFF665544332211ULL);
}

TEST(StoreBuffer, YoungerOfTwoOverlappingStoresWins)
{
    StoreBuffer sb(8);
    SparseMemory mem;
    sb.insert(1, 0x100, 8, 0x1111111111111111ULL);
    sb.insert(2, 0x100, 8, 0x2222222222222222ULL);
    EXPECT_EQ(sb.read(9, 0x100, 8, mem, nullptr),
              0x2222222222222222ULL);
}

TEST(StoreBuffer, EntriesNotOlderThanLoadAreIgnored)
{
    StoreBuffer sb(8);
    SparseMemory mem;
    mem.write64(0x100, 7);
    sb.insert(10, 0x100, 8, 99);
    bool fwd = true;
    // The load (id 5) is older than the store (id 10).
    EXPECT_EQ(sb.read(5, 0x100, 8, mem, &fwd), 7u);
    EXPECT_FALSE(fwd);
}

TEST(StoreBuffer, CommitOldestWritesMemoryInOrder)
{
    StoreBuffer sb(8);
    SparseMemory mem;
    sb.insert(1, 0x100, 8, 11);
    sb.insert(2, 0x108, 4, 22);
    sb.commitOldest(1, mem);
    EXPECT_EQ(mem.read64(0x100), 11u);
    EXPECT_EQ(sb.size(), 1u);
    sb.commitOldest(2, mem);
    EXPECT_EQ(mem.read32(0x108), 22u);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, SquashYoungerThan)
{
    StoreBuffer sb(8);
    sb.insert(1, 0x100, 8, 1);
    sb.insert(5, 0x108, 8, 5);
    sb.insert(9, 0x110, 8, 9);
    sb.squashYoungerThan(5);
    EXPECT_EQ(sb.size(), 2u);
    EXPECT_EQ(sb.entries().back().id, 5u);
}

TEST(StoreBuffer, ClearEmpties)
{
    StoreBuffer sb(4);
    sb.insert(1, 0x100, 8, 1);
    sb.clear();
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBufferDeathTest, OverflowPanics)
{
    StoreBuffer sb(1);
    sb.insert(1, 0x100, 8, 1);
    EXPECT_DEATH(sb.insert(2, 0x108, 8, 2), "overflow");
}

TEST(StoreBufferDeathTest, OutOfOrderInsertPanics)
{
    StoreBuffer sb(4);
    sb.insert(5, 0x100, 8, 1);
    EXPECT_DEATH(sb.insert(3, 0x108, 8, 2), "out of order");
}

TEST(StoreBufferDeathTest, CommitOrderViolationPanics)
{
    StoreBuffer sb(4);
    SparseMemory mem;
    sb.insert(1, 0x100, 8, 1);
    sb.insert(2, 0x108, 8, 2);
    EXPECT_DEATH(sb.commitOldest(2, mem), "order violation");
}

TEST(StoreBufferDeathTest, CommitFromEmptyPanics)
{
    StoreBuffer sb(4);
    SparseMemory mem;
    EXPECT_DEATH(sb.commitOldest(1, mem), "empty store buffer");
}

} // namespace
