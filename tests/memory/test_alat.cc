/** @file Unit tests for the DynID-indexed ALAT. */

#include <gtest/gtest.h>

#include "memory/alat.hh"

namespace
{

using ff::memory::Alat;

TEST(Alat, AllocateCheckRemove)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    EXPECT_TRUE(a.check(1));
    a.remove(1);
    EXPECT_FALSE(a.check(1));
    EXPECT_EQ(a.stats().allocations, 1u);
    EXPECT_EQ(a.stats().checksPassed, 1u);
    EXPECT_EQ(a.stats().checksFailed, 1u);
}

TEST(Alat, StoreInvalidatesOverlappingEntry)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    a.invalidateOverlap(0x104, 8); // overlaps [0x100,0x108)
    EXPECT_FALSE(a.check(1));
    EXPECT_EQ(a.stats().storeInvalidations, 1u);
}

TEST(Alat, AdjacentStoreDoesNotInvalidate)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    a.invalidateOverlap(0x108, 8); // starts exactly at the end
    a.invalidateOverlap(0x0F8, 8); // ends exactly at the start
    EXPECT_TRUE(a.check(1));
}

TEST(Alat, OneByteOverlapInvalidates)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    a.invalidateOverlap(0x107, 1);
    EXPECT_FALSE(a.check(1));
}

TEST(Alat, StoreKillsAllOverlappingEntries)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    a.allocate(2, 0x104, 8);
    a.allocate(3, 0x200, 8);
    a.invalidateOverlap(0x100, 16);
    EXPECT_FALSE(a.check(1));
    EXPECT_FALSE(a.check(2));
    EXPECT_TRUE(a.check(3));
    EXPECT_EQ(a.stats().storeInvalidations, 2u);
}

TEST(Alat, SquashYoungerThan)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    a.allocate(5, 0x200, 8);
    a.allocate(9, 0x300, 8);
    a.squashYoungerThan(5);
    EXPECT_TRUE(a.check(1));
    EXPECT_TRUE(a.check(5));
    EXPECT_FALSE(a.check(9));
}

TEST(Alat, PerfectModeIsUnbounded)
{
    Alat a(0);
    for (ff::DynId id = 1; id <= 1000; ++id)
        a.allocate(id, id * 8, 8);
    EXPECT_EQ(a.liveEntries(), 1000u);
    EXPECT_EQ(a.stats().capacityEvictions, 0u);
    EXPECT_TRUE(a.check(1));
}

TEST(Alat, FiniteCapacityEvictsFifoOrder)
{
    Alat a(2);
    a.allocate(1, 0x100, 8);
    a.allocate(2, 0x200, 8);
    a.allocate(3, 0x300, 8); // evicts id 1
    EXPECT_EQ(a.liveEntries(), 2u);
    EXPECT_EQ(a.stats().capacityEvictions, 1u);
    EXPECT_FALSE(a.check(1)); // false positive: safe, slower
    EXPECT_TRUE(a.check(2));
    EXPECT_TRUE(a.check(3));
}

TEST(Alat, Clear)
{
    Alat a(0);
    a.allocate(1, 0x100, 8);
    a.clear();
    EXPECT_EQ(a.liveEntries(), 0u);
    EXPECT_FALSE(a.check(1));
}

TEST(Alat, ReallocationAfterRemove)
{
    Alat a(2);
    a.allocate(1, 0x100, 8);
    a.remove(1);
    a.allocate(2, 0x200, 8);
    a.allocate(3, 0x300, 8);
    // Only 2 live entries; no capacity eviction should have fired.
    EXPECT_EQ(a.stats().capacityEvictions, 0u);
    EXPECT_TRUE(a.check(2));
    EXPECT_TRUE(a.check(3));
}

} // namespace
