/** @file Unit and round-trip tests for the textual assembler. */

#include <gtest/gtest.h>

#include "cpu/functional/functional_cpu.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

#include "support/random_program.hh"

namespace
{

using namespace ff;
using namespace ff::isa;

Program
mustAssemble(const std::string &src)
{
    Program p;
    const std::string err = assemble(src, "test", &p);
    EXPECT_EQ(err, "") << src;
    return p;
}

TEST(Assembler, AluForms)
{
    const Program p = mustAssemble("add r1 = r2, r3\n"
                                   "sub r4 = r5, -17\n"
                                   "xor r6 = r7, 0x1F\n"
                                   "halt\n");
    EXPECT_EQ(p.inst(0).op, Opcode::kAdd);
    EXPECT_EQ(p.inst(0).dst, intReg(1));
    EXPECT_EQ(p.inst(0).src2, intReg(3));
    EXPECT_FALSE(p.inst(0).src2IsImm);
    EXPECT_TRUE(p.inst(1).src2IsImm);
    EXPECT_EQ(p.inst(1).imm, -17);
    EXPECT_EQ(p.inst(2).imm, 0x1F);
}

TEST(Assembler, MoviAndMoves)
{
    const Program p = mustAssemble("movi r1 = -9\n"
                                   "mov r2 = r1\n"
                                   "itof f1 = r2\n"
                                   "ftoi r3 = f1\n"
                                   "halt\n");
    EXPECT_EQ(p.inst(0).op, Opcode::kMovi);
    EXPECT_EQ(p.inst(0).imm, -9);
    EXPECT_EQ(p.inst(1).op, Opcode::kMov);
    EXPECT_EQ(p.inst(2).op, Opcode::kItof);
    EXPECT_EQ(p.inst(2).dst, fpReg(1));
    EXPECT_EQ(p.inst(3).op, Opcode::kFtoi);
}

TEST(Assembler, Compares)
{
    const Program p = mustAssemble("cmp.ltu p1, p2 = r3, 10\n"
                                   "fcmp.ge p3, p4 = f1, f2\n"
                                   "halt\n");
    EXPECT_EQ(p.inst(0).op, Opcode::kCmp);
    EXPECT_EQ(p.inst(0).cond, CmpCond::kLtu);
    EXPECT_EQ(p.inst(0).dst, predReg(1));
    EXPECT_EQ(p.inst(0).dst2, predReg(2));
    EXPECT_TRUE(p.inst(0).src2IsImm);
    EXPECT_EQ(p.inst(1).op, Opcode::kFcmp);
    EXPECT_EQ(p.inst(1).cond, CmpCond::kGe);
}

TEST(Assembler, MemoryForms)
{
    const Program p = mustAssemble("ld8 r1 = [r2]\n"
                                   "ld4 r3 = [r4+16]\n"
                                   "st8 [r5-8] = r6\n"
                                   "halt\n");
    EXPECT_EQ(p.inst(0).imm, 0);
    EXPECT_EQ(p.inst(1).op, Opcode::kLd4);
    EXPECT_EQ(p.inst(1).imm, 16);
    EXPECT_EQ(p.inst(2).op, Opcode::kSt8);
    EXPECT_EQ(p.inst(2).imm, -8);
    EXPECT_EQ(p.inst(2).src2, intReg(6));
}

TEST(Assembler, PredicatesStopsAndLabels)
{
    const Program p = mustAssemble("movi r1 = 3  ;;\n"
                                   "loop:\n"
                                   "add r1 = r1, -1  ;;\n"
                                   "cmp.gt p1, p2 = r1, 0\n"
                                   "movi r9 = 7  ;;\n"
                                   "(p1) br loop\n"
                                   "halt\n");
    EXPECT_TRUE(p.inst(0).stop);
    EXPECT_TRUE(p.inst(1).stop);
    EXPECT_FALSE(p.inst(2).stop);
    const Instruction &br = p.inst(4);
    ASSERT_TRUE(br.isBranch());
    EXPECT_EQ(br.qpred, predReg(1));
    EXPECT_EQ(br.imm, 1); // the label binds past the stop bit
    EXPECT_TRUE(br.stop);
    EXPECT_EQ(p.validate(), "");
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = mustAssemble("# a comment\n"
                                   "\n"
                                   "movi r1 = 1 // trailing\n"
                                   "halt  ;; # done\n");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, PokeDirectives)
{
    const Program p = mustAssemble(".poke64 0x1000 0xDEADBEEF\n"
                                   ".poke32 0x2000 7\n"
                                   ".pokedouble 0x3000 1.5\n"
                                   "halt\n");
    EXPECT_EQ(p.dataImage().read(0x1000), 0xEF);
    EXPECT_EQ(p.dataImage().read(0x2000), 0x07);
    EXPECT_NE(p.dataImage().read(0x3006), 0x00); // 1.5's high bytes
}

TEST(Assembler, BranchByIndex)
{
    const Program p = mustAssemble("movi r1 = 1  ;;\n"
                                   "br @0\n"
                                   "halt\n");
    EXPECT_EQ(p.inst(1).imm, 0);
}

TEST(Assembler, ErrorMessagesCarryLineNumbers)
{
    Program p;
    EXPECT_EQ(assemble("frobnicate r1 = r2, r3\n", "e", &p),
              "line 1: unknown mnemonic 'frobnicate'");
    EXPECT_NE(assemble("movi r1 =\nhalt\n", "e", &p).find("line 1"),
              std::string::npos);
    EXPECT_NE(assemble("add r1 = r2, r3 junk\nhalt\n", "e", &p)
                  .find("trailing junk"),
              std::string::npos);
    EXPECT_NE(assemble("br nowhere\nhalt\n", "e", &p)
                  .find("undefined label"),
              std::string::npos);
    EXPECT_NE(assemble("x:\nx:\nhalt\n", "e", &p)
                  .find("duplicate label"),
              std::string::npos);
    EXPECT_EQ(assemble("", "e", &p), "empty program");
    EXPECT_NE(assemble("cmp.zz p1, p2 = r1, r2\nhalt\n", "e", &p)
                  .find("condition"),
              std::string::npos);
}

TEST(Assembler, RegisterIndexBounds)
{
    Program p;
    EXPECT_NE(assemble("movi r64 = 1\nhalt\n", "e", &p), "");
}

TEST(AssemblerDeathTest, AssembleOrDieOnBadInput)
{
    EXPECT_EXIT(assembleOrDie("bogus\n"), ::testing::ExitedWithCode(1),
                "assembly of");
}

/** Field-level equality of two instruction streams. */
void
expectSameInstructions(const Program &a, const Program &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (InstIdx i = 0; i < a.size(); ++i) {
        const Instruction &x = a.inst(i);
        const Instruction &y = b.inst(i);
        EXPECT_EQ(x.op, y.op) << "inst " << i;
        EXPECT_EQ(x.cond, y.cond) << "inst " << i;
        EXPECT_EQ(x.qpred, y.qpred) << "inst " << i;
        EXPECT_EQ(x.dst, y.dst) << "inst " << i;
        EXPECT_EQ(x.dst2, y.dst2) << "inst " << i;
        EXPECT_EQ(x.src1, y.src1) << "inst " << i;
        EXPECT_EQ(x.src2, y.src2) << "inst " << i;
        EXPECT_EQ(x.imm, y.imm) << "inst " << i;
        EXPECT_EQ(x.src2IsImm, y.src2IsImm) << "inst " << i;
        EXPECT_EQ(x.stop, y.stop) << "inst " << i;
    }
}

class AssemblerRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AssemblerRoundTrip, WorkloadSurvivesTextRoundTrip)
{
    const workloads::Workload w =
        workloads::buildWorkload(GetParam(), 3);
    const std::string text = toAssembly(w.program);

    Program back;
    const std::string err = assemble(text, w.name, &back);
    ASSERT_EQ(err, "");
    expectSameInstructions(w.program, back);

    // And identical behaviour, data image included.
    cpu::FunctionalCpu ref(w.program);
    cpu::FunctionalCpu got(back);
    auto rr = ref.run();
    auto rg = got.run();
    EXPECT_TRUE(rr.halted);
    EXPECT_TRUE(rg.halted);
    EXPECT_EQ(ref.regs().fingerprint(), got.regs().fingerprint());
    EXPECT_EQ(ref.mem().fingerprint(), got.mem().fingerprint());
}

TEST(AssemblerRoundTrip, RandomProgramsSurviveTextRoundTrip)
{
    for (std::uint64_t seed = 500; seed < 512; ++seed) {
        const Program p = ff::testsupport::randomProgram(seed);
        Program back;
        const std::string err =
            assemble(toAssembly(p), "fuzz", &back);
        ASSERT_EQ(err, "") << "seed " << seed;
        expectSameInstructions(p, back);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AssemblerRoundTrip,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        return n;
    });

} // namespace
