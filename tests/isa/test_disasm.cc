/** @file Unit tests for the disassembler. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/disasm.hh"

namespace
{

using namespace ff::isa;

Instruction
makeAdd()
{
    Instruction in;
    in.op = Opcode::kAdd;
    in.dst = intReg(1);
    in.src1 = intReg(2);
    in.src2 = intReg(3);
    return in;
}

TEST(Disasm, AluRegReg)
{
    EXPECT_EQ(disasm(makeAdd()), "add r1 = r2, r3");
}

TEST(Disasm, AluImmediate)
{
    Instruction in = makeAdd();
    in.src2IsImm = true;
    in.imm = -5;
    EXPECT_EQ(disasm(in), "add r1 = r2, -5");
}

TEST(Disasm, PredicatedPrefix)
{
    Instruction in = makeAdd();
    in.qpred = predReg(6);
    EXPECT_EQ(disasm(in), "(p6) add r1 = r2, r3");
}

TEST(Disasm, P0QualifierIsImplicit)
{
    EXPECT_EQ(disasm(makeAdd()).find("(p0)"), std::string::npos);
}

TEST(Disasm, LoadWithOffset)
{
    Instruction in;
    in.op = Opcode::kLd8;
    in.dst = intReg(4);
    in.src1 = intReg(5);
    in.imm = 8;
    EXPECT_EQ(disasm(in), "ld8 r4 = [r5+8]");
    in.imm = 0;
    EXPECT_EQ(disasm(in), "ld8 r4 = [r5]");
    in.imm = -16;
    EXPECT_EQ(disasm(in), "ld8 r4 = [r5-16]");
}

TEST(Disasm, Store)
{
    Instruction in;
    in.op = Opcode::kSt4;
    in.src1 = intReg(1);
    in.src2 = intReg(2);
    in.imm = 4;
    EXPECT_EQ(disasm(in), "st4 [r1+4] = r2");
}

TEST(Disasm, CompareWithCondition)
{
    Instruction in;
    in.op = Opcode::kCmp;
    in.cond = CmpCond::kLtu;
    in.dst = predReg(1);
    in.dst2 = predReg(2);
    in.src1 = intReg(3);
    in.imm = 10;
    in.src2IsImm = true;
    EXPECT_EQ(disasm(in), "cmp.ltu p1, p2 = r3, 10");
}

TEST(Disasm, Branch)
{
    Instruction in;
    in.op = Opcode::kBr;
    in.imm = 17;
    EXPECT_EQ(disasm(in), "br @17");
}

TEST(Disasm, Movi)
{
    Instruction in;
    in.op = Opcode::kMovi;
    in.dst = intReg(9);
    in.imm = 1234;
    EXPECT_EQ(disasm(in), "movi r9 = 1234");
}

TEST(Disasm, NopAndHalt)
{
    Instruction in;
    in.op = Opcode::kNop;
    EXPECT_EQ(disasm(in), "nop");
    in.op = Opcode::kHalt;
    EXPECT_EQ(disasm(in), "halt");
}

TEST(Disasm, ProgramRendering)
{
    ProgramBuilder b("render", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.stop();
    b.halt();
    const std::string text = disasmProgram(b.finalize());

    EXPECT_NE(text.find("program 'render'"), std::string::npos);
    EXPECT_NE(text.find(";;"), std::string::npos);
    EXPECT_NE(text.find("movi r1 = 1"), std::string::npos);
    // Group leaders are marked with '>'.
    EXPECT_NE(text.find("> "), std::string::npos);
}

} // namespace
